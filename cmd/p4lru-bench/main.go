// Command p4lru-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	p4lru-bench list
//	p4lru-bench run    [-scale small|default] [-csv] [-plot] [-o dir] <id>... | all
//	p4lru-bench verify [-scale small|default]
//
// Each experiment prints the same rows/series the paper reports (§4); -csv
// additionally writes one CSV per panel into -o, -plot renders terminal
// charts, and verify re-checks the paper's headline claims (exit 1 on any
// failure) — the artifact-evaluation entry point.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/p4lru/p4lru/internal/asciiplot"
	"github.com/p4lru/p4lru/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, r := range experiments.All() {
			fmt.Printf("%-18s %s\n", r.ID, r.Description)
		}
	case "run":
		if err := runCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "p4lru-bench:", err)
			os.Exit(1)
		}
	case "verify":
		if err := verifyCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "p4lru-bench:", err)
			os.Exit(1)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  p4lru-bench list
  p4lru-bench run    [-scale small|default] [-csv] [-plot] [-o dir] <id>... | all
  p4lru-bench verify [-scale small|default]`)
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	scaleName := fs.String("scale", "default", "experiment scale: small or default")
	csv := fs.Bool("csv", false, "also write CSV files")
	plot := fs.Bool("plot", false, "render terminal charts")
	outDir := fs.String("o", ".", "directory for CSV output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no experiment ids given (try 'all' or 'p4lru-bench list')")
	}

	scale, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}

	var runners []experiments.Runner
	if fs.NArg() == 1 && fs.Arg(0) == "all" {
		runners = experiments.All()
	} else {
		for _, id := range fs.Args() {
			r, ok := experiments.Find(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			runners = append(runners, r)
		}
	}

	for _, r := range runners {
		start := time.Now()
		figs := r.Run(scale)
		fmt.Printf("== %s (%s) — %v\n\n", r.ID, r.Description, time.Since(start).Round(time.Millisecond))
		for _, f := range figs {
			fmt.Println(f.Format())
			if *plot {
				fmt.Println(plotFigure(f))
			}
			if *csv {
				path := filepath.Join(*outDir, f.ID+".csv")
				if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
					return fmt.Errorf("writing %s: %w", path, err)
				}
				fmt.Printf("(csv written to %s)\n\n", path)
			}
		}
	}
	return nil
}

func scaleByName(name string) (experiments.Scale, error) {
	switch name {
	case "small":
		return experiments.TestScale(), nil
	case "default":
		return experiments.DefaultScale(), nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q", name)
	}
}

// plotFigure renders a figure as a terminal chart; memory/ΔT sweeps get a
// log x-axis.
func plotFigure(f experiments.Figure) string {
	series := make([]asciiplot.Series, 0, len(f.Series))
	logX := true
	for _, s := range f.Series {
		ps := asciiplot.Series{Name: s.Name}
		for _, p := range s.Points {
			ps.Xs = append(ps.Xs, p.X)
			ps.Ys = append(ps.Ys, p.Y)
			if p.X <= 0 {
				logX = false
			}
		}
		series = append(series, ps)
	}
	// Log scale only pays off across ≥2 decades.
	if logX {
		lo, hi := series[0].Xs[0], series[0].Xs[0]
		for _, s := range series {
			for _, x := range s.Xs {
				if x < lo {
					lo = x
				}
				if x > hi {
					hi = x
				}
			}
		}
		logX = hi/lo >= 50
	}
	return asciiplot.Render(series, asciiplot.Options{
		Title:  f.ID + " — " + f.Title,
		XLabel: f.XLabel,
		LogX:   logX,
	})
}

func verifyCmd(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	scaleName := fs.String("scale", "default", "experiment scale: small or default")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}

	start := time.Now()
	claims := experiments.Verify(scale)
	failed := 0
	for _, c := range claims {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Printf("[%s] %-16s %s\n%22s%s\n", status, c.ID, c.Statement, "", c.Detail)
	}
	fmt.Printf("\n%d/%d claims hold (%v)\n", len(claims)-failed, len(claims),
		time.Since(start).Round(time.Millisecond))
	if failed > 0 {
		return fmt.Errorf("%d claim(s) failed", failed)
	}
	return nil
}
