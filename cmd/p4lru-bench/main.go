// Command p4lru-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	p4lru-bench list
//	p4lru-bench run    [-scale small|default] [-csv] [-json] [-plot] [-o dir]
//	                   [-metrics :addr] [-progress=false] <id>... | all
//	p4lru-bench verify [-scale small|default] [-metrics :addr]
//	p4lru-bench replay [-trace file.p4lt] [-policy spec] [-shards N]
//	                   [-parallel N] ...
//	p4lru-bench netbench [-queries N] [-batches 1,8,32,64] ...
//	p4lru-bench cluster  [-nodes N] [-replicas R] [-net] [-kill] ...
//
// Each experiment prints the same rows/series the paper reports (§4); -csv
// additionally writes one CSV per panel into -o, -json one JSON object per
// panel (machine-readable bench trajectory), -plot renders terminal charts,
// and verify re-checks the paper's headline claims (exit 1 on any failure)
// — the artifact-evaluation entry point.
//
// replay pushes a packet trace through the sharded serving engine
// (internal/engine) from -parallel concurrent goroutines and reports
// throughput, hit rate and per-shard accounting — the concurrency
// counterpart of the single-threaded policy experiments. With -backing the
// replay serves look-through: misses fetch from a backing store (map, btree,
// or remote:host:port over the wire protocol) through the miss-path loader,
// and the report adds miss-latency quantiles plus loader/write-behind
// accounting; -attempts, -fetch-timeout, -hedge and -inflight shape the
// loader, -writebehind drains evictions back into the store.
//
// -metrics serves live run counters on the given address while experiments
// execute: /metrics (Prometheus text), /metrics.json (JSON snapshot),
// /debug/vars (expvar) and /debug/pprof. A progress line (experiments done,
// packets simulated, packets/sec) is printed to stderr every two seconds
// during multi-experiment runs; -progress=false silences it.
//
// netbench runs the wire-path packets/sec ladder: an in-process server +
// switch + client stack on loopback, one timed rung per batch size, so the
// recvmmsg/sendmmsg batching win over the single-datagram path is measurable
// from the command line.
//
// cluster spins an N-node consistent-hash ring inside one process and
// replays a Zipf workload through cluster.Router — hot-key replication,
// heartbeat failure detection and warm range migration in one command.
// -net reaches each node over real loopback UDP/TCP; -kill murders a node
// mid-replay and reports the failover time and recovered hit ratio.
//
// -cpuprofile/-memprofile (on run and replay) write whole-run pprof files
// for offline diffing across commits — the complement of the live -metrics
// pprof server for diagnosing hot-path regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/asciiplot"
	"github.com/p4lru/p4lru/internal/experiments"
	"github.com/p4lru/p4lru/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, r := range experiments.All() {
			fmt.Printf("%-18s %s\n", r.ID, r.Description)
		}
	case "run":
		if err := runCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "p4lru-bench:", err)
			os.Exit(1)
		}
	case "verify":
		if err := verifyCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "p4lru-bench:", err)
			os.Exit(1)
		}
	case "replay":
		if err := replayCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "p4lru-bench:", err)
			os.Exit(1)
		}
	case "netbench":
		if err := netbenchCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "p4lru-bench:", err)
			os.Exit(1)
		}
	case "cluster":
		if err := clusterCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "p4lru-bench:", err)
			os.Exit(1)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  p4lru-bench list
  p4lru-bench run    [-scale small|default] [-csv] [-json] [-plot] [-o dir]
                     [-metrics :addr] [-progress=false]
                     [-cpuprofile f] [-memprofile f] <id>... | all
  p4lru-bench verify [-scale small|default] [-metrics :addr]
  p4lru-bench replay [-trace file.p4lt] [-packets N] [-flows N] [-segments n]
                     [-policy spec] [-mem bytes] [-shards N] [-parallel N]
                     [-batch N] [-queue N] [-block] [-metrics :addr]
                     [-backing spec] [-attempts N] [-fetch-timeout d]
                     [-hedge d] [-inflight N] [-writebehind]
                     [-cpuprofile f] [-memprofile f]
  p4lru-bench netbench [-queries N] [-batches 1,8,32,64] [-items N]
                     [-skew z] [-levels N] [-units N] [-readers N] [-warm N]
  p4lru-bench cluster [-nodes N] [-replicas R] [-hotk N] [-vnodes N]
                     [-policy spec] [-mem bytes] [-shards N] [-queries N]
                     [-flows N] [-skew z] [-seed s] [-net] [-kill]`)
}

// serveMetrics wires the default registry into the experiment runs and, when
// addr is non-empty, serves it over HTTP. It returns the registry.
func serveMetrics(addr string) (*obs.Registry, error) {
	reg := obs.Default()
	experiments.Instrument(reg)
	if addr == "" {
		return reg, nil
	}
	resolved, _, err := obs.Serve(addr, reg)
	if err != nil {
		return nil, fmt.Errorf("serving metrics: %w", err)
	}
	fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics (json: /metrics.json, pprof: /debug/pprof)\n", resolved)
	return reg, nil
}

// packetsSimulated sums the per-system work counters: one unit per simulated
// NAT packet, telemetry packet, or completed query.
func packetsSimulated(reg *obs.Registry) uint64 {
	return reg.CounterValue("nat_packets_total") +
		reg.CounterValue("telemetry_packets_total") +
		reg.CounterValue("kvindex_queries_total")
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	scaleName := fs.String("scale", "default", "experiment scale: small or default")
	csv := fs.Bool("csv", false, "also write CSV files")
	jsonOut := fs.Bool("json", false, "also write one JSON file per panel")
	plot := fs.Bool("plot", false, "render terminal charts")
	outDir := fs.String("o", ".", "directory for CSV/JSON output")
	metricsAddr := fs.String("metrics", "", "serve /metrics and pprof on this address during the run")
	progress := fs.Bool("progress", true, "print a periodic progress line to stderr")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile at the end of the run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no experiment ids given (try 'all' or 'p4lru-bench list')")
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "p4lru-bench:", perr)
		}
	}()

	scale, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}

	var runners []experiments.Runner
	if fs.NArg() == 1 && fs.Arg(0) == "all" {
		runners = experiments.All()
	} else {
		for _, id := range fs.Args() {
			r, ok := experiments.Find(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			runners = append(runners, r)
		}
	}

	reg, err := serveMetrics(*metricsAddr)
	if err != nil {
		return err
	}
	defer experiments.Instrument(nil)

	// Progress reporter: experiments completed, packets simulated,
	// packets/sec over the last tick.
	var done atomic.Int64
	var current atomic.Value // string: the experiment now running
	stopProgress := func() {}
	if *progress && len(runners) > 1 {
		const tick = 2 * time.Second
		stop := make(chan struct{})
		stopped := make(chan struct{})
		go func() {
			defer close(stopped)
			t := time.NewTicker(tick)
			defer t.Stop()
			last := packetsSimulated(reg)
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					now := packetsSimulated(reg)
					id, _ := current.Load().(string)
					fmt.Fprintf(os.Stderr, "progress: %d/%d experiments (%s) · %.2fM packets · %.0fk pkt/s\n",
						done.Load(), len(runners), id,
						float64(now)/1e6, float64(now-last)/tick.Seconds()/1e3)
					last = now
				}
			}
		}()
		stopProgress = func() { close(stop); <-stopped }
	}
	defer stopProgress()

	for _, r := range runners {
		current.Store(r.ID)
		packetsBefore := packetsSimulated(reg)
		start := time.Now()
		figs := r.Run(scale)
		wall := time.Since(start)
		packets := packetsSimulated(reg) - packetsBefore
		done.Add(1)
		fmt.Printf("== %s (%s) — %v\n\n", r.ID, r.Description, wall.Round(time.Millisecond))
		for _, f := range figs {
			fmt.Println(f.Format())
			if *plot {
				fmt.Println(plotFigure(f))
			}
			if *csv {
				path := filepath.Join(*outDir, f.ID+".csv")
				if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
					return fmt.Errorf("writing %s: %w", path, err)
				}
				fmt.Printf("(csv written to %s)\n\n", path)
			}
			if *jsonOut {
				path := filepath.Join(*outDir, f.ID+".json")
				if err := writePanelJSON(path, r, f, wall, packets); err != nil {
					return err
				}
				fmt.Printf("(json written to %s)\n\n", path)
			}
		}
	}
	return nil
}

// panelJSON is the machine-readable per-panel result record the bench
// trajectory tracks across PRs.
type panelJSON struct {
	Experiment    string       `json:"experiment"`
	ID            string       `json:"id"`
	Title         string       `json:"title"`
	XLabel        string       `json:"x_label"`
	YLabel        string       `json:"y_label"`
	Rows          int          `json:"rows"`
	Series        []seriesJSON `json:"series"`
	WallMS        float64      `json:"wall_ms"`
	PacketsPerSec float64      `json:"packets_per_sec"`
}

type seriesJSON struct {
	Name   string       `json:"name"`
	Points [][2]float64 `json:"points"`
}

func writePanelJSON(path string, r experiments.Runner, f experiments.Figure, wall time.Duration, packets uint64) error {
	p := panelJSON{
		Experiment: r.ID,
		ID:         f.ID,
		Title:      f.Title,
		XLabel:     f.XLabel,
		YLabel:     f.YLabel,
		Rows:       f.Rows(),
		WallMS:     float64(wall.Microseconds()) / 1e3,
	}
	if wall > 0 {
		p.PacketsPerSec = float64(packets) / wall.Seconds()
	}
	for _, s := range f.Series {
		sj := seriesJSON{Name: s.Name, Points: make([][2]float64, 0, len(s.Points))}
		for _, pt := range s.Points {
			sj.Points = append(sj.Points, [2]float64{pt.X, pt.Y})
		}
		p.Series = append(p.Series, sj)
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

func scaleByName(name string) (experiments.Scale, error) {
	switch name {
	case "small":
		return experiments.TestScale(), nil
	case "default":
		return experiments.DefaultScale(), nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q", name)
	}
}

// plotFigure renders a figure as a terminal chart; memory/ΔT sweeps get a
// log x-axis.
func plotFigure(f experiments.Figure) string {
	series := make([]asciiplot.Series, 0, len(f.Series))
	logX := true
	for _, s := range f.Series {
		ps := asciiplot.Series{Name: s.Name}
		for _, p := range s.Points {
			ps.Xs = append(ps.Xs, p.X)
			ps.Ys = append(ps.Ys, p.Y)
			if p.X <= 0 {
				logX = false
			}
		}
		series = append(series, ps)
	}
	// Log scale only pays off across ≥2 decades.
	if logX {
		lo, hi := series[0].Xs[0], series[0].Xs[0]
		for _, s := range series {
			for _, x := range s.Xs {
				if x < lo {
					lo = x
				}
				if x > hi {
					hi = x
				}
			}
		}
		logX = hi/lo >= 50
	}
	return asciiplot.Render(series, asciiplot.Options{
		Title:  f.ID + " — " + f.Title,
		XLabel: f.XLabel,
		LogX:   logX,
	})
}

func verifyCmd(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	scaleName := fs.String("scale", "default", "experiment scale: small or default")
	metricsAddr := fs.String("metrics", "", "serve /metrics and pprof on this address during the run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scale, err := scaleByName(*scaleName)
	if err != nil {
		return err
	}
	if _, err := serveMetrics(*metricsAddr); err != nil {
		return err
	}
	defer experiments.Instrument(nil)

	start := time.Now()
	claims := experiments.Verify(scale)
	failed := 0
	for _, c := range claims {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Printf("[%s] %-16s %s\n%22s%s\n", status, c.ID, c.Statement, "", c.Detail)
	}
	fmt.Printf("\n%d/%d claims hold (%v)\n", len(claims)-failed, len(claims),
		time.Since(start).Round(time.Millisecond))
	if failed > 0 {
		return fmt.Errorf("%d claim(s) failed", failed)
	}
	return nil
}
