package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/backing"
	"github.com/p4lru/p4lru/internal/engine"
	"github.com/p4lru/p4lru/internal/netproto"
	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/trace"
)

// replayCmd drives the sharded serving engine with a packet trace from N
// concurrent replay goroutines: the throughput counterpart of `run`, which
// measures policy quality single-threaded. Each goroutine owns a stride
// partition of the trace and a batching Submitter; queries go through the
// engine's read path and misses are submitted as updates, so the workload
// exercises both sides of the single-writer-per-shard design.
//
// With -backing the replay switches to look-through serving: misses fetch
// from the named backing store through the loader (coalesced, bounded,
// retried, optionally hedged) and the report adds end-to-end miss-latency
// quantiles and the loader/write-behind accounting.
func replayCmd(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	traceFile := fs.String("trace", "", "trace file (P4LT); synthesized when empty")
	packets := fs.Int("packets", 2_000_000, "synthesized packets")
	flows := fs.Int("flows", 50_000, "synthesized base flows")
	segments := fs.Int("segments", 60, "CAIDA_n segments")
	seed := fs.Int64("seed", 1, "seed")
	pol := fs.String("policy", "p4lru3", "policy spec (kind[:key=value,...])")
	mem := fs.Int("mem", 400*1024, "total cache memory (bytes)")
	shards := fs.Int("shards", 0, "engine shards (0 = GOMAXPROCS)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "replay goroutines")
	batch := fs.Int("batch", 0, "submit batch size (0 = engine default)")
	queue := fs.Int("queue", 0, "per-shard queue depth in batches (0 = engine default)")
	block := fs.Bool("block", false, "block on full queues instead of dropping")
	metricsAddr := fs.String("metrics", "", "serve /metrics and pprof on this address during the run")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the replay to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile at the end of the replay to this file")
	backingSpec := fs.String("backing", "",
		"serve look-through against a backing store: map[:k=v,...], btree[:k=v,...], or remote:host:port")
	attempts := fs.Int("attempts", 3, "miss-path fetch attempts per load (with -backing)")
	fetchTimeout := fs.Duration("fetch-timeout", 100*time.Millisecond, "per-attempt fetch timeout (with -backing)")
	hedge := fs.Duration("hedge", 0, "hedged second fetch after this delay; 0 disables (with -backing)")
	inflight := fs.Int("inflight", 64, "max concurrent store fetches (with -backing)")
	writeBehind := fs.Bool("writebehind", false, "drain evictions into the backing store (with -backing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *writeBehind && *backingSpec == "" {
		return fmt.Errorf("-writebehind requires -backing")
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be ≥ 1")
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "p4lru-bench:", perr)
		}
	}()

	spec, err := policy.ParseSpec(*pol)
	if err != nil {
		return err
	}
	if spec.MemBytes == 0 {
		spec.MemBytes = *mem
	}
	if spec.Seed == 0 {
		spec.Seed = uint64(*seed)
	}

	// Serve metrics before the (potentially slow) trace load so the
	// endpoint is scrapeable for the whole run.
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.Default()
		addr, _, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", addr)
	}

	// The backing-mode report reads loader metrics back out of the registry,
	// so look-through runs always get one even without -metrics.
	if *backingSpec != "" && reg == nil {
		reg = obs.Default()
	}

	tr, err := loadReplayTrace(*traceFile, *packets, *flows, *segments, *seed)
	if err != nil {
		return err
	}
	if len(tr.Packets) == 0 {
		return fmt.Errorf("empty trace")
	}

	store, closeStore, err := buildBackingStore(*backingSpec, *parallel, *fetchTimeout)
	if err != nil {
		return err
	}
	defer closeStore()

	engCfg := engine.Config{
		Shards:     *shards,
		QueueDepth: *queue,
		BatchSize:  *batch,
		Seed:       uint64(*seed),
		Block:      *block,
		Obs:        reg,
	}
	var wb *backing.WriteBehind
	if *writeBehind {
		wb = backing.NewWriteBehind(store, backing.WriteBehindConfig{Seed: uint64(*seed), Obs: reg})
		defer wb.Close()
		engCfg.OnEvict = wb.OnEvict
	}

	eng, err := engine.NewFromSpec(spec, engCfg)
	if err != nil {
		return err
	}
	defer eng.Close()

	var tiered *engine.Tiered
	if store != nil {
		tiered = engine.NewTiered(eng, store, backing.LoaderConfig{
			Attempts:    *attempts,
			Timeout:     *fetchTimeout,
			Hedge:       *hedge,
			MaxInflight: *inflight,
			Seed:        uint64(*seed),
			Obs:         reg,
		})
	}

	// Stride-partition the trace: worker w replays packets w, w+P, w+2P, …
	// so every worker sees the same mix of hot and cold flows and all of
	// them hit every shard — the adversarial case for shard routing.
	var hits, queries, loadErrs atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *parallel; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sub := eng.NewSubmitter()
			defer sub.Flush()
			ctx := context.Background()
			var localHits, localQueries, localErrs uint64
			for i := w; i < len(tr.Packets); i += *parallel {
				p := tr.Packets[i]
				localQueries++
				if tiered == nil {
					_, tok, ok := eng.Query(p.Flow)
					if ok {
						localHits++
					}
					sub.Submit(engine.Op{Key: p.Flow, Value: uint64(p.Size), Token: tok, Now: p.Time})
					continue
				}
				// Look-through: hits promote with their token; misses are
				// fetched (and installed by the loader's fill hook).
				v, tok, hit, err := tiered.GetOrLoad(ctx, p.Flow)
				switch {
				case err != nil:
					localErrs++
				case hit:
					localHits++
					sub.Submit(engine.Op{Key: p.Flow, Value: v, Token: tok, Now: p.Time})
				}
			}
			hits.Add(localHits)
			queries.Add(localQueries)
			loadErrs.Add(localErrs)
		}(w)
	}
	wg.Wait()
	eng.Flush()
	wall := time.Since(start)

	q := queries.Load()
	fmt.Printf("engine=%s shards=%d parallel=%d mem=%dB entries=%d\n",
		eng.Name(), eng.Shards(), *parallel, spec.MemBytes, eng.Capacity())
	fmt.Printf("packets=%d wall=%v throughput=%.2fM pkt/s\n",
		q, wall.Round(time.Millisecond), float64(q)/wall.Seconds()/1e6)
	fmt.Printf("hitRate=%.4f dropped=%d occupancy=%d\n",
		float64(hits.Load())/float64(q), eng.Dropped(), eng.Len())
	for i, s := range eng.Stats() {
		fmt.Printf("shard %2d: submitted=%d applied=%d dropped=%d len=%d\n",
			i, s.Submitted, s.Applied, s.Dropped, s.Len)
	}
	if tiered != nil {
		reportBacking(reg, *backingSpec, loadErrs.Load(), wb)
	}
	return nil
}

// buildBackingStore resolves the -backing spec. "remote:host:port" dials the
// wire protocol with one pooled client per replay goroutine; everything else
// goes through backing.ParseStore. A nil store (empty spec) means the classic
// query+submit replay.
func buildBackingStore(spec string, pool int, timeout time.Duration) (backing.Store, func(), error) {
	noop := func() {}
	if spec == "" {
		return nil, noop, nil
	}
	if rest, ok := strings.CutPrefix(spec, "remote:"); ok {
		addr, err := net.ResolveUDPAddr("udp", rest)
		if err != nil {
			return nil, noop, fmt.Errorf("-backing %q: %w", spec, err)
		}
		// The loader's attempt budget already retries; give each wire client
		// a single shot per loader attempt.
		rs, err := netproto.NewRemoteStore(addr, pool, timeout, 0)
		if err != nil {
			return nil, noop, err
		}
		return rs, rs.Close, nil
	}
	st, err := backing.ParseStore(spec)
	if err != nil {
		return nil, noop, err
	}
	return st, noop, nil
}

// reportBacking prints the miss-path section of the replay report: hit/miss
// split, end-to-end miss-latency quantiles from the loader histogram, and
// the loader and write-behind accounting.
func reportBacking(reg *obs.Registry, spec string, loadErrs uint64, wb *backing.WriteBehind) {
	snap := reg.Snapshot()
	h := snap.Histograms["backing_miss_latency_seconds"]
	secs := func(q float64) time.Duration {
		return time.Duration(h.Quantile(q) * float64(time.Second)).Round(time.Microsecond)
	}
	fmt.Printf("backing=%s loadErrors=%d\n", spec, loadErrs)
	fmt.Printf("missLatency n=%d p50=%v p90=%v p99=%v\n",
		h.Count, secs(0.50), secs(0.90), secs(0.99))
	fmt.Printf("loader loads=%d fetches=%d coalesced=%d retries=%d hedges=%d errors=%d\n",
		reg.CounterValue("backing_loads_total"),
		reg.CounterValue("backing_fetches_total"),
		reg.CounterValue("backing_coalesced_total"),
		reg.CounterValue("backing_retries_total"),
		reg.CounterValue("backing_hedges_total"),
		reg.CounterValue("backing_errors_total"))
	if wb != nil {
		wb.Flush()
		offered, drained, dropped, failures := wb.Stats()
		fmt.Printf("writeBehind offered=%d drained=%d dropped=%d failures=%d\n",
			offered, drained, dropped, failures)
	}
}

func loadReplayTrace(file string, packets, flows, segments int, seed int64) (*trace.Trace, error) {
	if file == "" {
		return trace.Synthesize(trace.SynthConfig{
			Packets:   packets,
			BaseFlows: flows,
			Segments:  segments,
			Duration:  time.Second,
			Seed:      seed,
		}), nil
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}
