package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/p4lru/p4lru/internal/backing"
	"github.com/p4lru/p4lru/internal/engine"
	"github.com/p4lru/p4lru/internal/netproto"
	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/obs/span"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/resilience"
	"github.com/p4lru/p4lru/internal/trace"
)

// replayCmd drives the sharded serving engine with a packet trace from N
// concurrent replay goroutines: the throughput counterpart of `run`, which
// measures policy quality single-threaded. Each goroutine owns a stride
// partition of the trace and a batching Submitter; queries go through the
// engine's read path and misses are submitted as updates, so the workload
// exercises both sides of the single-writer-per-shard design.
//
// With -backing the replay switches to look-through serving: misses fetch
// from the named backing store through the loader (coalesced, bounded,
// retried, optionally hedged) and the report adds end-to-end miss-latency
// quantiles and the loader/write-behind accounting.
func replayCmd(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	traceFile := fs.String("trace", "", "trace file (P4LT); synthesized when empty")
	packets := fs.Int("packets", 2_000_000, "synthesized packets")
	flows := fs.Int("flows", 50_000, "synthesized base flows")
	segments := fs.Int("segments", 60, "CAIDA_n segments")
	seed := fs.Int64("seed", 1, "seed")
	pol := fs.String("policy", "p4lru3", "policy spec (kind[:key=value,...])")
	mem := fs.Int("mem", 400*1024, "total cache memory (bytes)")
	shards := fs.Int("shards", 0, "engine shards (0 = GOMAXPROCS)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "replay goroutines")
	batch := fs.Int("batch", 0, "submit batch size (0 = engine default)")
	queue := fs.Int("queue", 0, "per-shard queue depth in batches (0 = engine default)")
	block := fs.Bool("block", false, "block on full queues instead of dropping")
	metricsAddr := fs.String("metrics", "", "serve /metrics and pprof on this address during the run")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the replay to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile at the end of the replay to this file")
	backingSpec := fs.String("backing", "",
		"serve look-through against a backing store: map[:k=v,...], btree[:k=v,...], or remote:host:port")
	attempts := fs.Int("attempts", 3, "miss-path fetch attempts per load (with -backing)")
	fetchTimeout := fs.Duration("fetch-timeout", 100*time.Millisecond, "per-attempt fetch timeout (with -backing)")
	hedge := fs.Duration("hedge", 0, "hedged second fetch after this delay; 0 disables (with -backing)")
	inflight := fs.Int("inflight", 64, "max concurrent store fetches (with -backing)")
	writeBehind := fs.Bool("writebehind", false, "drain evictions into the backing store (with -backing)")
	snapshotPath := fs.String("snapshot", "",
		"snapshot file: restored at start when present, written on exit (warm restarts across SIGTERM)")
	shedTarget := fs.Duration("shed-target", 0,
		"enable load shedding with this EWMA latency target; 0 disables")
	useBreaker := fs.Bool("breaker", false,
		"wrap backing fetches in a circuit breaker so a blacked-out store fails fast (with -backing)")
	spansOn := fs.Bool("spans", true,
		"per-op stage tracing: span histograms, tail-sampled ring captures, /debug/ops (with -metrics)")
	spanSample := fs.Int("span-sample", 8192,
		"uniform span capture period, 1 in N ops (ops over the live p99 threshold are always captured)")
	console := fs.Bool("console", false,
		"live ops console: per-shard queue heatmap, per-stage p50/p99, slowest waterfalls")
	progress := fs.Bool("progress", true,
		"one-line live progress on stderr (throughput, hit ratio, p99 miss latency)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *console {
		*spansOn = true // the console reads the tracer's rings
	}
	if *writeBehind && *backingSpec == "" {
		return fmt.Errorf("-writebehind requires -backing")
	}
	if *useBreaker && *backingSpec == "" {
		return fmt.Errorf("-breaker requires -backing")
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be ≥ 1")
	}
	// SIGINT/SIGTERM interrupts the replay instead of killing it: workers
	// stop at the next checkpoint, the engine drains, and the report (and
	// snapshot, if requested) covers the completed prefix. Installed before
	// the slow pieces (trace load, store dial) so a signal at any point
	// gets the graceful path.
	runCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "p4lru-bench:", perr)
		}
	}()

	spec, err := policy.ParseSpec(*pol)
	if err != nil {
		return err
	}
	if spec.MemBytes == 0 {
		spec.MemBytes = *mem
	}
	if spec.Seed == 0 {
		spec.Seed = uint64(*seed)
	}

	// Serve metrics before the (potentially slow) trace load so the
	// endpoint is scrapeable for the whole run. Health checks register as
	// the pieces come up, so /readyz starts strict and relaxes into ready.
	health := resilience.NewHealth()
	var reg *obs.Registry
	// The backing-mode report and the progress/console UIs read metrics back
	// out of the registry, so those modes get one even without -metrics.
	if *metricsAddr != "" || *backingSpec != "" || *spansOn || *progress {
		reg = obs.Default()
	}

	// The tracer exists before the HTTP listener so /debug/ops is mounted
	// (and scrapeable) for the whole run, like /metrics.
	var tracer *span.Tracer
	if *spansOn {
		traceShards := *shards
		if traceShards <= 0 {
			traceShards = runtime.GOMAXPROCS(0)
		}
		tracer = span.New(span.Config{Shards: traceShards, SampleN: *spanSample, Obs: reg})
		tracer.SetEnabled(true)
	}

	if *metricsAddr != "" {
		addr, err := serveOps(*metricsAddr, reg, health, tracer)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics  ops: http://%s/debug/ops  ready: http://%s/readyz\n",
			addr, addr, addr)
	}

	var shedder *resilience.Shedder
	if *shedTarget > 0 {
		shedder = resilience.NewShedder(resilience.ShedderConfig{TargetLatency: *shedTarget, Obs: reg})
		health.Register("shedder", shedder.Check)
	}

	tr, err := loadReplayTrace(*traceFile, *packets, *flows, *segments, *seed)
	if err != nil {
		return err
	}
	if len(tr.Packets) == 0 {
		return fmt.Errorf("empty trace")
	}

	store, closeStore, err := buildBackingStore(*backingSpec, *parallel, *fetchTimeout)
	if err != nil {
		return err
	}
	defer closeStore()

	engCfg := engine.Config{
		Shards:     *shards,
		QueueDepth: *queue,
		BatchSize:  *batch,
		Seed:       uint64(*seed),
		Block:      *block,
		Obs:        reg,
		Shedder:    shedder,
		Span:       tracer,
	}
	var wb *backing.WriteBehind
	if *writeBehind {
		wb = backing.NewWriteBehind(store, backing.WriteBehindConfig{Seed: uint64(*seed), Obs: reg})
		defer wb.Close()
		engCfg.OnEvict = wb.OnEvict
	}

	eng, err := engine.NewFromSpec(spec, engCfg)
	if err != nil {
		return err
	}
	defer eng.Close()
	health.Register("engine", eng.Healthy)

	if *snapshotPath != "" {
		if f, err := os.Open(*snapshotPath); err == nil {
			n, rerr := eng.RestoreSnapshot(f)
			f.Close()
			if rerr != nil {
				fmt.Fprintf(os.Stderr, "p4lru-bench: snapshot restore: %v (starting cold)\n", rerr)
			} else {
				fmt.Fprintf(os.Stderr, "snapshot: restored %d entries from %s\n", n, *snapshotPath)
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}

	var tiered *engine.Tiered
	if store != nil {
		var breaker *resilience.Breaker
		if *useBreaker {
			breaker = resilience.NewBreaker(resilience.BreakerConfig{Name: "backing", Obs: reg})
			health.Register("breaker", breaker.Check)
		}
		tiered = engine.NewTiered(eng, store, backing.LoaderConfig{
			Attempts:    *attempts,
			Timeout:     *fetchTimeout,
			Hedge:       *hedge,
			MaxInflight: *inflight,
			Seed:        uint64(*seed),
			Obs:         reg,
			Breaker:     breaker,
		})
	}

	// Stride-partition the trace: worker w replays packets w, w+P, w+2P, …
	// so every worker sees the same mix of hot and cold flows and all of
	// them hit every shard — the adversarial case for shard routing.
	var hits, queries, loadErrs atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *parallel; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sub := eng.NewSubmitter()
			defer sub.Flush()
			ctx := runCtx
			var localHits, localQueries, localErrs uint64
			for i, n := w, 0; i < len(tr.Packets); i, n = i+*parallel, n+1 {
				if n&0xfff == 0 {
					if runCtx.Err() != nil {
						break
					}
					// Publish the local counters so the live progress line
					// and the console see fresh numbers mid-run.
					hits.Add(localHits)
					queries.Add(localQueries)
					loadErrs.Add(localErrs)
					localHits, localQueries, localErrs = 0, 0, 0
				}
				p := tr.Packets[i]
				localQueries++
				if tiered == nil {
					_, tok, ok := eng.Query(p.Flow)
					if ok {
						localHits++
					}
					sub.Submit(engine.Op{Key: p.Flow, Value: uint64(p.Size), Token: tok, Now: p.Time})
					continue
				}
				// Look-through: hits promote with their token; misses are
				// fetched (and installed by the loader's fill hook).
				v, tok, hit, err := tiered.GetOrLoad(ctx, p.Flow)
				switch {
				case err != nil:
					localErrs++
				case hit:
					localHits++
					sub.Submit(engine.Op{Key: p.Flow, Value: v, Token: tok, Now: p.Time})
				}
			}
			hits.Add(localHits)
			queries.Add(localQueries)
			loadErrs.Add(localErrs)
		}(w)
	}
	stopUI := func() {}
	switch {
	case *console:
		stopUI = startConsole(eng, tracer, reg, &hits, &queries, start)
	case *progress:
		stopUI = startProgress(reg, &hits, &queries, start)
	}
	wg.Wait()
	stopUI()
	interrupted := runCtx.Err() != nil
	if interrupted {
		fmt.Fprintln(os.Stderr, "p4lru-bench: interrupted — draining engine")
		drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if derr := eng.Drain(drainCtx); derr != nil {
			fmt.Fprintln(os.Stderr, "p4lru-bench: drain:", derr)
		}
		cancel()
	} else {
		eng.Flush()
	}
	wall := time.Since(start)

	q := queries.Load()
	if interrupted {
		fmt.Printf("interrupted=true completedPrefix=%d of %d\n", q, len(tr.Packets))
	}
	fmt.Printf("engine=%s shards=%d parallel=%d mem=%dB entries=%d\n",
		eng.Name(), eng.Shards(), *parallel, spec.MemBytes, eng.Capacity())
	fmt.Printf("packets=%d wall=%v throughput=%.2fM pkt/s\n",
		q, wall.Round(time.Millisecond), float64(q)/wall.Seconds()/1e6)
	hitRate := 0.0
	if q > 0 {
		hitRate = float64(hits.Load()) / float64(q)
	}
	fmt.Printf("hitRate=%.4f dropped=%d occupancy=%d\n", hitRate, eng.Dropped(), eng.Len())
	for i, s := range eng.Stats() {
		fmt.Printf("shard %2d: submitted=%d applied=%d dropped=%d len=%d\n",
			i, s.Submitted, s.Applied, s.Dropped, s.Len)
	}
	if tiered != nil {
		reportBacking(reg, *backingSpec, loadErrs.Load(), wb)
	}
	if tracer != nil {
		recorded, captured := tracer.Stats()
		fmt.Printf("spans recorded=%d captured=%d tailThreshold=%v\n",
			recorded, captured, tracer.TailThreshold().Round(time.Microsecond))
		for _, rec := range tracer.Slowest(3) {
			fmt.Println("  " + rec.Waterfall())
		}
	}
	if *snapshotPath != "" {
		if err := writeSnapshot(eng, *snapshotPath); err != nil {
			fmt.Fprintln(os.Stderr, "p4lru-bench: snapshot:", err)
		} else {
			fmt.Fprintf(os.Stderr, "snapshot: wrote %d entries to %s\n", eng.Len(), *snapshotPath)
		}
	}
	return nil
}

// serveOps serves the registry plus health probes on one listener: the obs
// handler at its usual paths, the resilience aggregator on /healthz and
// /readyz, and — when tracing — the captured-trace waterfalls on /debug/ops.
func serveOps(addr string, reg *obs.Registry, health *resilience.Health, tracer *span.Tracer) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	reg.PublishExpvar("p4lru")
	mux := http.NewServeMux()
	mux.Handle("/", reg.Handler())
	mux.Handle("/healthz", health)
	mux.Handle("/readyz", health)
	if tracer != nil {
		mux.Handle("/debug/ops", tracer.Handler())
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// writeSnapshot writes the engine snapshot atomically (tmp file + rename) so
// a crash mid-write can't clobber the previous good image.
func writeSnapshot(eng *engine.Engine, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := eng.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// buildBackingStore resolves the -backing spec. "remote:host:port" dials the
// wire protocol with one pooled client per replay goroutine; everything else
// goes through backing.ParseStore. A nil store (empty spec) means the classic
// query+submit replay.
func buildBackingStore(spec string, pool int, timeout time.Duration) (backing.Store, func(), error) {
	noop := func() {}
	if spec == "" {
		return nil, noop, nil
	}
	if rest, ok := strings.CutPrefix(spec, "remote:"); ok {
		addr, err := net.ResolveUDPAddr("udp", rest)
		if err != nil {
			return nil, noop, fmt.Errorf("-backing %q: %w", spec, err)
		}
		// The loader's attempt budget already retries; give each wire client
		// a single shot per loader attempt.
		rs, err := netproto.NewRemoteStore(addr, pool, timeout, netproto.NoRetries)
		if err != nil {
			return nil, noop, err
		}
		return rs, rs.Close, nil
	}
	st, err := backing.ParseStore(spec)
	if err != nil {
		return nil, noop, err
	}
	return st, noop, nil
}

// reportBacking prints the miss-path section of the replay report: hit/miss
// split, end-to-end miss-latency quantiles from the loader histogram, and
// the loader and write-behind accounting.
func reportBacking(reg *obs.Registry, spec string, loadErrs uint64, wb *backing.WriteBehind) {
	snap := reg.Snapshot()
	h := snap.Histograms["backing_miss_latency_seconds"]
	secs := func(q float64) time.Duration {
		return time.Duration(h.Quantile(q) * float64(time.Second)).Round(time.Microsecond)
	}
	fmt.Printf("backing=%s loadErrors=%d\n", spec, loadErrs)
	fmt.Printf("missLatency n=%d p50=%v p90=%v p99=%v\n",
		h.Count, secs(0.50), secs(0.90), secs(0.99))
	fmt.Printf("loader loads=%d fetches=%d coalesced=%d retries=%d hedges=%d errors=%d\n",
		reg.CounterValue("backing_loads_total"),
		reg.CounterValue("backing_fetches_total"),
		reg.CounterValue("backing_coalesced_total"),
		reg.CounterValue("backing_retries_total"),
		reg.CounterValue("backing_hedges_total"),
		reg.CounterValue("backing_errors_total"))
	if wb != nil {
		wb.Flush()
		offered, drained, dropped, failures := wb.Stats()
		fmt.Printf("writeBehind offered=%d drained=%d dropped=%d failures=%d\n",
			offered, drained, dropped, failures)
	}
}

func loadReplayTrace(file string, packets, flows, segments int, seed int64) (*trace.Trace, error) {
	if file == "" {
		return trace.Synthesize(trace.SynthConfig{
			Packets:   packets,
			BaseFlows: flows,
			Segments:  segments,
			Duration:  time.Second,
			Seed:      seed,
		}), nil
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}
