package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/engine"
	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/trace"
)

// replayCmd drives the sharded serving engine with a packet trace from N
// concurrent replay goroutines: the throughput counterpart of `run`, which
// measures policy quality single-threaded. Each goroutine owns a stride
// partition of the trace and a batching Submitter; queries go through the
// engine's read path and misses are submitted as updates, so the workload
// exercises both sides of the single-writer-per-shard design.
func replayCmd(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	traceFile := fs.String("trace", "", "trace file (P4LT); synthesized when empty")
	packets := fs.Int("packets", 2_000_000, "synthesized packets")
	flows := fs.Int("flows", 50_000, "synthesized base flows")
	segments := fs.Int("segments", 60, "CAIDA_n segments")
	seed := fs.Int64("seed", 1, "seed")
	pol := fs.String("policy", "p4lru3", "policy spec (kind[:key=value,...])")
	mem := fs.Int("mem", 400*1024, "total cache memory (bytes)")
	shards := fs.Int("shards", 0, "engine shards (0 = GOMAXPROCS)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "replay goroutines")
	batch := fs.Int("batch", 0, "submit batch size (0 = engine default)")
	queue := fs.Int("queue", 0, "per-shard queue depth in batches (0 = engine default)")
	block := fs.Bool("block", false, "block on full queues instead of dropping")
	metricsAddr := fs.String("metrics", "", "serve /metrics and pprof on this address during the run")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the replay to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile at the end of the replay to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be ≥ 1")
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "p4lru-bench:", perr)
		}
	}()

	spec, err := policy.ParseSpec(*pol)
	if err != nil {
		return err
	}
	if spec.MemBytes == 0 {
		spec.MemBytes = *mem
	}
	if spec.Seed == 0 {
		spec.Seed = uint64(*seed)
	}

	// Serve metrics before the (potentially slow) trace load so the
	// endpoint is scrapeable for the whole run.
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.Default()
		addr, _, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", addr)
	}

	tr, err := loadReplayTrace(*traceFile, *packets, *flows, *segments, *seed)
	if err != nil {
		return err
	}
	if len(tr.Packets) == 0 {
		return fmt.Errorf("empty trace")
	}

	eng, err := engine.NewFromSpec(spec, engine.Config{
		Shards:     *shards,
		QueueDepth: *queue,
		BatchSize:  *batch,
		Seed:       uint64(*seed),
		Block:      *block,
		Obs:        reg,
	})
	if err != nil {
		return err
	}
	defer eng.Close()

	// Stride-partition the trace: worker w replays packets w, w+P, w+2P, …
	// so every worker sees the same mix of hot and cold flows and all of
	// them hit every shard — the adversarial case for shard routing.
	var hits, queries atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *parallel; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sub := eng.NewSubmitter()
			defer sub.Flush()
			var localHits, localQueries uint64
			for i := w; i < len(tr.Packets); i += *parallel {
				p := tr.Packets[i]
				_, tok, ok := eng.Query(p.Flow)
				localQueries++
				if ok {
					localHits++
				}
				sub.Submit(engine.Op{Key: p.Flow, Value: uint64(p.Size), Token: tok, Now: p.Time})
			}
			hits.Add(localHits)
			queries.Add(localQueries)
		}(w)
	}
	wg.Wait()
	eng.Flush()
	wall := time.Since(start)

	q := queries.Load()
	fmt.Printf("engine=%s shards=%d parallel=%d mem=%dB entries=%d\n",
		eng.Name(), eng.Shards(), *parallel, spec.MemBytes, eng.Capacity())
	fmt.Printf("packets=%d wall=%v throughput=%.2fM pkt/s\n",
		q, wall.Round(time.Millisecond), float64(q)/wall.Seconds()/1e6)
	fmt.Printf("hitRate=%.4f dropped=%d occupancy=%d\n",
		float64(hits.Load())/float64(q), eng.Dropped(), eng.Len())
	for i, s := range eng.Stats() {
		fmt.Printf("shard %2d: submitted=%d applied=%d dropped=%d len=%d\n",
			i, s.Submitted, s.Applied, s.Dropped, s.Len)
	}
	return nil
}

func loadReplayTrace(file string, packets, flows, segments int, seed int64) (*trace.Trace, error) {
	if file == "" {
		return trace.Synthesize(trace.SynthConfig{
			Packets:   packets,
			BaseFlows: flows,
			Segments:  segments,
			Duration:  time.Second,
			Seed:      seed,
		}), nil
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}
