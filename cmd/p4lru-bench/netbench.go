package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/p4lru/p4lru/internal/netproto"
	"github.com/p4lru/p4lru/internal/policy"
)

// netbenchCmd runs the packets-per-second ladder over the wire stack: an
// in-process server + switch + client on loopback, the same Zipf workload
// driven once per batch size. batch=1 is the one-datagram-per-syscall
// request/response baseline; larger rungs pipeline whole windows through
// QueryBatch so recvmmsg/sendmmsg amortize the syscall cost — the ladder
// makes the batching win measurable outside the Go bench harness.
func netbenchCmd(args []string) error {
	fs := flag.NewFlagSet("netbench", flag.ExitOnError)
	queries := fs.Int("queries", 200000, "queries per ladder rung")
	batches := fs.String("batches", "1,8,32,64", "comma-separated batch sizes")
	items := fs.Int("items", 10000, "distinct keys in the server database")
	skew := fs.Float64("skew", 1.2, "Zipf skew of the query workload")
	levels := fs.Int("levels", 4, "series cache depth on the switch")
	units := fs.Int("units", 512, "total units across the switch cache")
	readers := fs.Int("readers", 0, "reader goroutines per component (0 = auto)")
	warm := fs.Int("warm", 2048, "warm-up queries before timing each rung")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sizes []int
	for _, s := range strings.Split(*batches, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad batch size %q", s)
		}
		sizes = append(sizes, n)
	}

	fmt.Printf("netbench: %d queries/rung, %d items, skew %.2f, batched syscalls: %v\n\n",
		*queries, *items, *skew, netproto.Batched())
	fmt.Printf("%-10s %12s %10s %10s %10s %10s %10s\n",
		"batch", "queries/s", "p50", "p99", "p99.9", "hit-rate", "failures")

	var base float64
	for _, batch := range sizes {
		qps, st, err := netbenchRung(*items, *skew, *levels, *units, *readers, *warm, *queries, batch)
		if err != nil {
			return fmt.Errorf("rung batch=%d: %w", batch, err)
		}
		speedup := ""
		if base == 0 {
			base = qps
		} else {
			speedup = fmt.Sprintf("  (%.2fx batch=%d)", qps/base, sizes[0])
		}
		fmt.Printf("%-10d %12.0f %10s %10s %10s %9.1f%% %10d%s\n",
			batch, qps,
			st.P50.Round(time.Microsecond), st.P99.Round(time.Microsecond),
			st.P999.Round(time.Microsecond),
			float64(st.Cached)/float64(st.Queries)*100, st.Failures, speedup)
	}
	return nil
}

// netbenchRung stands up a fresh stack and drives one timed rung through it.
func netbenchRung(items int, skew float64, levels, units, readers, warm, queries, batch int) (qps float64, st netproto.RunStats, err error) {
	srv, err := netproto.NewServer("127.0.0.1:0", items)
	if err != nil {
		return 0, st, err
	}
	defer srv.Close()
	sw, err := netproto.NewSwitch(netproto.SwitchConfig{
		ServerAddr: srv.Addr(),
		Policy: policy.Spec{
			Kind:     policy.KindSeries,
			Levels:   levels,
			MemBytes: policy.SeriesMemBytes(levels, 3, units),
			Seed:     1,
		},
		Readers: readers,
	})
	if err != nil {
		return 0, st, err
	}
	defer sw.Close()
	cl, err := netproto.NewClient(sw.Addr(), netproto.ClientConfig{
		Items: items, Skew: skew, Seed: 1, Batch: batch,
	})
	if err != nil {
		return 0, st, err
	}
	defer cl.Close()

	for i := 0; i < warm; i++ {
		if _, qerr := cl.Query(cl.NextKey()); qerr != nil {
			return 0, st, fmt.Errorf("warm-up: %w", qerr)
		}
	}

	start := time.Now()
	if batch == 1 {
		st = cl.Run(queries)
	} else {
		st = cl.RunBatch(queries)
	}
	elapsed := time.Since(start)
	if st.Invalid > 0 {
		fmt.Fprintf(os.Stderr, "netbench: %d invalid values on batch=%d rung\n", st.Invalid, batch)
	}
	if st.Queries == 0 {
		return 0, st, fmt.Errorf("no queries completed")
	}
	return float64(st.Queries) / elapsed.Seconds(), st, nil
}
