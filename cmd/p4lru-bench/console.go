package main

import (
	"fmt"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/asciiplot"
	"github.com/p4lru/p4lru/internal/engine"
	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/obs/span"
	"github.com/p4lru/p4lru/internal/quantile"
)

// This file is the replay command's live UI: a one-line progress ticker
// (default) and the -console full-screen ops dashboard. Both read only
// shared-safe state — atomic counters, registry snapshots, engine stats and
// tracer ring snapshots — so they never perturb the replay workers beyond
// the snapshot cost itself.

// histDelta returns the per-interval histogram between two cumulative
// snapshots, so quantiles reflect the last interval instead of the whole
// run. Falls back to cur when the shapes differ (first frame, new metric).
func histDelta(prev, cur obs.HistogramSnapshot) obs.HistogramSnapshot {
	if len(prev.Counts) != len(cur.Counts) || cur.Count < prev.Count {
		return cur
	}
	d := obs.HistogramSnapshot{
		Count:  cur.Count - prev.Count,
		Sum:    cur.Sum - prev.Sum,
		Bounds: cur.Bounds,
		Counts: make([]uint64, len(cur.Counts)),
	}
	for i := range cur.Counts {
		d.Counts[i] = cur.Counts[i] - prev.Counts[i]
	}
	return d
}

// fmtDur renders a histogram quantile (in seconds) compactly; "-" when the
// histogram saw nothing.
func fmtDur(h obs.HistogramSnapshot, q float64) string {
	if h.Count == 0 {
		return "-"
	}
	return time.Duration(h.Quantile(q) * float64(time.Second)).Round(time.Microsecond).String()
}

// startProgress runs the default one-line ticker on stderr: packet count,
// interval throughput, live hit ratio, and the last interval's p99 miss
// latency. The returned func stops the ticker and terminates the line.
func startProgress(reg *obs.Registry, hits, queries *atomic.Uint64, start time.Time) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var prevQ uint64
		prevT := start
		var prevMiss obs.HistogramSnapshot
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-tick.C:
				q, h := queries.Load(), hits.Load()
				dt := now.Sub(prevT).Seconds()
				rate := float64(q-prevQ) / dt / 1e6
				prevQ, prevT = q, now

				hitPct := 0.0
				if q > 0 {
					hitPct = 100 * float64(h) / float64(q)
				}
				missP99 := "-"
				if reg != nil {
					cur := reg.Snapshot().Histograms["backing_miss_latency_seconds"]
					missP99 = fmtDur(histDelta(prevMiss, cur), 0.99)
					prevMiss = cur
				}
				fmt.Fprintf(os.Stderr,
					"\rreplay: %6.2fM pkts  %6.2fM pkt/s  hit %5.1f%%  p99 miss %-10s",
					float64(q)/1e6, rate, hitPct, missP99)
			}
		}
	}()
	return func() {
		close(stop)
		<-done
		fmt.Fprintln(os.Stderr)
	}
}

// queueGlyphs renders one shade glyph per shard by queue fullness — the
// per-shard heatmap row of the console.
var queueShades = []rune("▁▂▃▄▅▆▇█")

func queueGlyphs(stats []engine.ShardStats) string {
	var b strings.Builder
	for _, s := range stats {
		frac := 0.0
		if s.QueueCap > 0 {
			frac = float64(s.QueueLen) / float64(s.QueueCap)
		}
		i := int(frac * float64(len(queueShades)))
		if i >= len(queueShades) {
			i = len(queueShades) - 1
		}
		b.WriteRune(queueShades[i])
	}
	return b.String()
}

// consoleStages is the display order of the stage table.
var consoleStages = []span.Stage{
	span.StageDecode, span.StageQueue, span.StageApply, span.StageQuery,
	span.StageMiss, span.StageFetch, span.StageWire,
}

// startConsole runs the full-screen live dashboard on stderr: run header,
// per-shard queue-depth heatmap, per-stage p50/p99 (per-interval histogram
// deltas), a throughput sparkline, P² quantiles over the tracer's captured
// ops, and the current slowest waterfalls. The returned func stops it and
// leaves the last frame on screen.
func startConsole(eng *engine.Engine, tracer *span.Tracer, reg *obs.Registry,
	hits, queries *atomic.Uint64, start time.Time) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var prevQ uint64
		prevT := start
		prevStage := map[span.Stage]obs.HistogramSnapshot{}
		// P² estimators over every op the tracer captures (tail + uniform):
		// constant memory, no stored samples, per the quantile package.
		capP50, capP99 := quantile.New(0.5), quantile.New(0.99)
		var lastCapID uint64
		var xs, ys []float64 // throughput sparkline, last 60 frames
		fmt.Fprint(os.Stderr, "\033[2J") // clear once; frames repaint from home
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-tick.C:
				q, h := queries.Load(), hits.Load()
				dt := now.Sub(prevT).Seconds()
				rate := float64(q-prevQ) / dt / 1e6
				prevQ, prevT = q, now
				hitPct := 0.0
				if q > 0 {
					hitPct = 100 * float64(h) / float64(q)
				}

				var b strings.Builder
				fmt.Fprintf(&b, "p4lru replay · %v elapsed · %.2fM pkts · %.2fM pkt/s · hit %.1f%%\n",
					time.Since(start).Round(time.Second), float64(q)/1e6, rate, hitPct)

				stats := eng.Stats()
				fmt.Fprintf(&b, "\nshard queues (%d shards, ▁=empty █=full)\n  %s\n",
					len(stats), queueGlyphs(stats))

				if reg != nil {
					snap := reg.Snapshot()
					fmt.Fprintf(&b, "\n%-12s %12s %12s\n", "stage", "p50", "p99")
					for _, st := range consoleStages {
						cur := snap.Histograms[`span_stage_seconds{stage="`+st.String()+`"}`]
						d := histDelta(prevStage[st], cur)
						prevStage[st] = cur
						fmt.Fprintf(&b, "%-12s %12s %12s\n", st.String(), fmtDur(d, 0.50), fmtDur(d, 0.99))
					}
				}

				if tracer != nil {
					recorded, captured := tracer.Stats()
					recs := tracer.Snapshot()
					// Feed each newly captured record into the estimators
					// exactly once (IDs are the capture sequence).
					maxSeen := lastCapID
					for _, rec := range recs {
						if rec.ID <= lastCapID {
							continue
						}
						if rec.ID > maxSeen {
							maxSeen = rec.ID
						}
						capP50.Add(float64(rec.Total))
						capP99.Add(float64(rec.Total))
					}
					lastCapID = maxSeen
					slowest := recs
					if len(slowest) > 3 {
						top := append([]span.Record(nil), recs...)
						for i := 0; i < 3; i++ { // partial selection: top 3 by Total
							for j := i + 1; j < len(top); j++ {
								if top[j].Total > top[i].Total {
									top[i], top[j] = top[j], top[i]
								}
							}
						}
						slowest = top[:3]
					}
					fmt.Fprintf(&b, "\nspans recorded=%d captured=%d tail>%v · captured p50=%v p99=%v\n",
						recorded, captured, tracer.TailThreshold().Round(time.Microsecond),
						time.Duration(capP50.Value()).Round(time.Microsecond),
						time.Duration(capP99.Value()).Round(time.Microsecond))
					fmt.Fprintln(&b, "slowest ops:")
					for _, rec := range slowest {
						fmt.Fprintf(&b, "  %s\n", rec.Waterfall())
					}
				}

				xs = append(xs, time.Since(start).Seconds())
				ys = append(ys, rate)
				if len(xs) > 60 {
					xs, ys = xs[len(xs)-60:], ys[len(ys)-60:]
				}
				if len(xs) >= 2 {
					b.WriteString("\n")
					b.WriteString(asciiplot.Render(
						[]asciiplot.Series{{Name: "Mpkt/s", Xs: xs, Ys: ys}},
						asciiplot.Options{Width: 60, Height: 6, Title: "throughput", XLabel: "seconds"},
					))
				}

				// Home the cursor, paint the frame, clear whatever the
				// previous (possibly taller) frame left below.
				fmt.Fprint(os.Stderr, "\033[H"+b.String()+"\033[J")
			}
		}
	}()
	return func() {
		close(stop)
		<-done
		fmt.Fprintln(os.Stderr)
	}
}
