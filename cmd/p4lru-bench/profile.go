package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles starts offline profiling for a run: a CPU profile recording
// immediately (when cpuFile is non-empty) and a heap profile written at
// stop time (when memFile is non-empty). The returned stop function must be
// called exactly once after the measured work, and is safe to call when
// neither profile was requested.
//
// This complements the live -metrics pprof server: -cpuprofile/-memprofile
// capture a whole run in files that `go tool pprof` can diff across
// commits, so hot-path regressions are diagnosable offline.
func startProfiles(cpuFile, memFile string) (stop func() error, err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("starting cpu profile: %w", err)
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return fmt.Errorf("closing cpu profile: %w", err)
			}
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", cpuFile)
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				return fmt.Errorf("creating mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle live heap so the profile shows retention, not noise
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("writing mem profile: %w", err)
			}
			fmt.Fprintf(os.Stderr, "mem profile written to %s\n", memFile)
		}
		return nil
	}, nil
}
