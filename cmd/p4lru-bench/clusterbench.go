package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/p4lru/p4lru/internal/cluster"
	"github.com/p4lru/p4lru/internal/engine"
	"github.com/p4lru/p4lru/internal/netproto"
	"github.com/p4lru/p4lru/internal/policy"
)

// clusterCmd spins an N-node cluster inside one process and drives a Zipf
// replay through a cluster.Router: consistent-hash placement, hot-key
// replication, and (with -kill) a mid-replay node death showing breaker
// trip, replica-sourced range migration and hit-ratio recovery. Nodes are
// in-process engines by default; -net reaches each one over real loopback
// UDP/TCP through netproto.NodeServer instead.
func clusterCmd(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	nodes := fs.Int("nodes", 4, "engine nodes in the ring")
	replicas := fs.Int("replicas", 2, "copies per hot key, owner included")
	hotk := fs.Int("hotk", 256, "hot keys promoted to the replicated set")
	vnodes := fs.Int("vnodes", 64, "virtual nodes per member")
	pol := fs.String("policy", "p4lru3", "per-node policy spec (kind[:key=value,...])")
	mem := fs.Int("mem", 400*1024, "cache memory per node (bytes)")
	shards := fs.Int("shards", 2, "engine shards per node")
	queries := fs.Int("queries", 200000, "queries per timed phase")
	flows := fs.Int("flows", 1<<16, "distinct flow keys in the workload")
	skew := fs.Float64("skew", 1.2, "Zipf skew of the workload (≤1 = uniform)")
	seed := fs.Uint64("seed", 42, "ring seed (and workload seed)")
	useNet := fs.Bool("net", false, "reach nodes over loopback UDP/TCP instead of in-process")
	kill := fs.Bool("kill", false, "kill one node mid-replay and report recovery")
	gossip := fs.Bool("gossip", false, "gossip membership: breaker trips escalate suspect → dead, no explicit Fail")
	partition := fs.Bool("partition", false, "cut one node's link mid-replay, heal it, and report hinted-handoff replay (in-process only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodes < 1 {
		return fmt.Errorf("need at least one node")
	}
	if *partition && *useNet {
		return fmt.Errorf("-partition needs in-process nodes (a loopback socket has no link to cut)")
	}
	spec, err := policy.ParseSpec(*pol)
	if err != nil {
		return err
	}
	spec.MemBytes = *mem
	if spec.Seed == 0 {
		spec.Seed = *seed + 1
	}

	// With gossip the suspicion window is short so a -kill demo converges
	// quickly — unless -partition, where the heal must win the race against
	// the confirm or the cut node would be evicted instead of replayed into.
	suspectAfter := 150 * time.Millisecond
	if *partition {
		suspectAfter = 10 * time.Second
	}
	r := cluster.New(cluster.Config{
		Seed:           *seed,
		VNodes:         *vnodes,
		Replicas:       *replicas,
		HotK:           *hotk,
		HeartbeatEvery: 25 * time.Millisecond,
		DualReadFor:    5 * time.Second,
		Gossip:         *gossip,
		SuspectAfter:   suspectAfter,
	})
	defer r.Close()

	// One engine per node; LocalPeer in-process, or a NodeServer + client
	// pair when the replay should cross real sockets.
	locals := make(map[string]*cluster.LocalPeer, *nodes)
	servers := make(map[string]*netproto.NodeServer, *nodes)
	for i := 0; i < *nodes; i++ {
		e, err := engine.NewFromSpec(spec, engine.Config{Shards: *shards, Block: true})
		if err != nil {
			return err
		}
		defer e.Close()
		id := fmt.Sprintf("node-%d", i)
		var peer cluster.Peer
		if *useNet {
			ncfg := netproto.NodeConfig{Engine: e, RingSeed: *seed}
			if *gossip {
				ncfg.Gossip = cluster.NewMembership(id, "", "").Exchange
			}
			srv, err := netproto.NewNodeServer("127.0.0.1:0", ncfg)
			if err != nil {
				return err
			}
			defer srv.Close()
			cl, err := netproto.DialNode(srv.UDPAddr(), srv.TCPAddr(), 100*time.Millisecond, 2)
			if err != nil {
				return err
			}
			defer cl.Close()
			servers[id] = srv
			peer = cl
		} else {
			lp := cluster.NewLocalPeer(e, *seed)
			if *gossip {
				lp.AttachMembership(cluster.NewMembership(id, "", ""))
			}
			locals[id] = lp
			peer = lp
		}
		if err := r.Join(id, peer); err != nil {
			return err
		}
	}

	rng := rand.New(rand.NewSource(int64(*seed)))
	var zipf *rand.Zipf
	if *skew > 1 {
		zipf = rand.NewZipf(rng, *skew, 1, uint64(*flows-1))
	}
	nextKey := func() uint64 {
		if zipf != nil {
			return zipf.Uint64() + 1
		}
		return uint64(rng.Intn(*flows)) + 1
	}
	value := func(k uint64) uint64 { return k ^ 0xabcdef }

	// replay drives n queries through the router's look-through path and
	// reports the hit ratio (loads = misses) and throughput.
	replay := func(n int) (hit float64, qps float64) {
		loads := 0
		start := time.Now()
		for i := 0; i < n; i++ {
			k := nextKey()
			if _, err := r.GetOrLoad(k, func(key uint64) (uint64, error) {
				loads++
				return value(key), nil
			}); err != nil {
				fmt.Fprintf(os.Stderr, "cluster: query %d: %v\n", k, err)
			}
		}
		wall := time.Since(start)
		return 1 - float64(loads)/float64(n), float64(n) / wall.Seconds()
	}

	mode := "in-process"
	if *useNet {
		mode = "loopback UDP/TCP"
	}
	fmt.Printf("cluster: %d nodes (%s), %d vnodes, replicas %d, hotk %d, policy %s, %d flows, skew %.2f\n\n",
		*nodes, mode, *vnodes, *replicas, *hotk, *pol, *flows, *skew)

	replay(*queries / 4) // warm the ring before the timed phase
	hit, qps := replay(*queries)
	fmt.Printf("%-16s %10.0f queries/s   %6.2f%% hits   %d nodes   %d hot keys\n",
		"steady", qps, hit*100, len(r.Members()), len(r.HotKeys()))

	if *partition {
		// Partition drill: cut one node's link (the node is healthy, the
		// path to it is not), keep serving — writes to its arcs park as
		// hints — then heal and watch the hint log drain back into it.
		victim := fmt.Sprintf("node-%d", *nodes-1)
		locals[victim].CutLink()
		fmt.Printf("\ncut link to %s mid-replay...\n", victim)
		cutStart := time.Now()
		for time.Since(cutStart) < time.Second {
			replay(512)
		}
		hit, _ = replay(*queries / 4)
		fmt.Printf("%-16s %6.2f%% hits   %d hints parked   degraded=%v   members %v\n",
			"partitioned", hit*100, r.PendingHints(), r.Degraded(), r.Members())

		locals[victim].HealLink()
		healStart := time.Now()
		for r.PendingHints() > 0 && time.Since(healStart) < 10*time.Second {
			replay(512) // keep traffic flowing while the breaker re-proves the node
		}
		fmt.Printf("%-16s hints drained in %v after heal\n",
			"healed", time.Since(healStart).Round(time.Millisecond))
		replay(*queries / 4)
		hit, qps = replay(*queries)
		fmt.Printf("%-16s %10.0f queries/s   %6.2f%% hits   %d nodes   %d hints pending\n",
			"post-heal", qps, hit*100, len(r.Members()), r.PendingHints())
	}

	if !*kill {
		return nil
	}

	// Chaos demo: kill the last node and keep replaying until the failure
	// detector evicts it, then measure the recovered cluster.
	// With -gossip there is no explicit Fail anywhere: breaker trip files a
	// suspect accusation, the suspicion window hardens it to dead, and
	// reconcile prunes the ring.
	victim := fmt.Sprintf("node-%d", *nodes-1)
	if lp := locals[victim]; lp != nil {
		lp.Kill()
	} else if srv := servers[victim]; srv != nil {
		srv.Close()
	}
	fmt.Printf("\nkilled %s mid-replay...\n", victim)
	start := time.Now()
	// The eviction cannot land before the suspicion window hardens the
	// accusation, so the stall cap must sit beyond it.
	stallCap := 10*time.Second + suspectAfter
	for len(r.Members()) == *nodes && time.Since(start) < stallCap {
		replay(512)
	}
	if len(r.Members()) == *nodes {
		return fmt.Errorf("%s not evicted within %v", victim, stallCap)
	}
	how := "breaker auto-fail"
	if *gossip {
		how = "gossip suspect → dead verdict"
	}
	fmt.Printf("%-16s evicted after %v via %s (survivors absorbed its ranges)\n",
		victim, time.Since(start).Round(time.Millisecond), how)

	replay(*queries / 4) // let survivors re-warm
	hit, qps = replay(*queries)
	fmt.Printf("%-16s %10.0f queries/s   %6.2f%% hits   %d nodes   %d hot keys\n",
		"post-failure", qps, hit*100, len(r.Members()), len(r.HotKeys()))
	return nil
}
