// Command lruindex runs the LruIndex query-acceleration simulator (§3.2):
// closed-loop Zipf clients against a B+ tree database, with the in-network
// index cache in between.
//
// Usage:
//
//	lruindex [-items N] [-threads T] [-queries N] [-levels L] [-mem bytes]
//	         [-policy spec|none] [-cores C]
//	         [-metrics :addr] [-trace-events N]
//
// -policy takes a policy spec (policy.ParseSpec), e.g. "series:levels=4",
// "series:levels=2,mem=1MiB", "p4lru1", "timeout:timeout=50ms", or "none"
// for the Naive Solution (no cache). The -mem/-seed/-levels flags fill
// fields the spec string leaves unset.
//
// -metrics serves /metrics, /metrics.json and /debug/pprof on addr while the
// simulation runs; -trace-events keeps the last N simulator events (query
// completions) in a ring and dumps them, virtual-time-stamped, at exit.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/p4lru/p4lru/internal/kvindex"
	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/policy"
)

func main() {
	items := flag.Int("items", 200_000, "database items")
	threads := flag.Int("threads", 8, "closed-loop client threads")
	queries := flag.Int("queries", 500_000, "total queries")
	levels := flag.Int("levels", 4, "series connection levels (policy=series)")
	mem := flag.Int("mem", 400*1024, "total cache memory (bytes)")
	pol := flag.String("policy", "series", "cache policy (series = P4LRU3 series connection; none = naive)")
	cores := flag.Int("cores", 4, "server cores")
	seed := flag.Int64("seed", 1, "seed")
	metricsAddr := flag.String("metrics", "", "serve /metrics and pprof on this address during the run")
	traceEvents := flag.Int("trace-events", 0, "ring-buffer the last N simulator events and dump them at exit")
	flag.Parse()

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.Default()
		addr, _, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lruindex:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", addr)
	}
	var tracer *obs.Tracer
	if *traceEvents > 0 {
		tracer = obs.NewTracer(*traceEvents)
	}

	var cache policy.Cache
	if *pol != "none" {
		spec, err := policy.ParseSpec(*pol)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lruindex:", err)
			os.Exit(2)
		}
		// Flags fill whatever the spec string left unset.
		if spec.MemBytes == 0 {
			spec.MemBytes = *mem
		}
		if spec.Seed == 0 {
			spec.Seed = uint64(*seed)
		}
		if spec.Kind == policy.KindSeries && spec.Levels == 0 {
			spec.Levels = *levels
		}
		cache, err = policy.NewFromSpec(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lruindex:", err)
			os.Exit(2)
		}
	}

	res := kvindex.Run(kvindex.Config{
		Items:       *items,
		Threads:     *threads,
		Queries:     *queries,
		Seed:        *seed,
		Cache:       cache,
		ServerCores: *cores,
		Obs:         reg,
		Tracer:      tracer,
	})
	if tracer != nil {
		fmt.Fprintf(os.Stderr, "-- last %d of %d events --\n", tracer.Len(), tracer.Total())
		tracer.Dump(os.Stderr)
	}
	if res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "lruindex: %d value errors (stale cached index?)\n", res.Errors)
		os.Exit(1)
	}

	name := "naive"
	capacity := 0
	if cache != nil {
		name = cache.Name()
		capacity = cache.Capacity()
	}
	fmt.Printf("policy=%s entries=%d items=%d threads=%d\n", name, capacity, *items, *threads)
	fmt.Printf("queries=%d hitRate=%.4f avgLatency=%v p50=%v p99=%v\n",
		res.Queries, res.HitRate, res.AvgLatency, res.P50Latency, res.P99Latency)
	fmt.Printf("throughput=%.1f KTPS indexNodesWalked=%d\n", res.ThroughputTPS/1e3, res.NodesWalked)
}
