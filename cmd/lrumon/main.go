// Command lrumon runs the LruMon telemetry simulator (§3.3): the Tower/CM/CU
// filter plus the P4LRU3 write-cache, reporting upload volume and
// measurement error.
//
// Usage:
//
//	lrumon [-trace file.p4lt] [-packets N] [-flows N] [-segments n]
//	       [-filter tower|cm|cu|none] [-threshold 1500] [-reset 10ms]
//	       [-policy spec] [-mem bytes]
//	       [-metrics :addr] [-trace-events N]
//
// -policy takes a policy spec (policy.ParseSpec), e.g. "p4lru3" or
// "p4lru3:mem=1MiB,seed=7"; the -mem/-seed flags fill fields the spec
// string leaves unset.
//
// -metrics serves /metrics, /metrics.json and /debug/pprof on addr while the
// simulation runs; -trace-events keeps the last N upload events in a ring and
// dumps them, packet-time-stamped, at exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/sketch"
	"github.com/p4lru/p4lru/internal/telemetry"
	"github.com/p4lru/p4lru/internal/trace"
)

func main() {
	traceFile := flag.String("trace", "", "trace file (P4LT); synthesized when empty")
	packets := flag.Int("packets", 1_000_000, "synthesized packets")
	flows := flag.Int("flows", 50_000, "synthesized base flows")
	segments := flag.Int("segments", 60, "CAIDA_n segments")
	seed := flag.Int64("seed", 1, "seed")
	filterName := flag.String("filter", "tower", "pre-filter: tower, cm, cu or none")
	threshold := flag.Uint("threshold", 1500, "filter threshold L (bytes)")
	reset := flag.Duration("reset", 10*time.Millisecond, "counter reset period")
	pol := flag.String("policy", "p4lru3", "cache replacement policy")
	mem := flag.Int("mem", 400*1024, "cache memory (bytes)")
	metricsAddr := flag.String("metrics", "", "serve /metrics and pprof on this address during the run")
	traceEvents := flag.Int("trace-events", 0, "ring-buffer the last N upload events and dump them at exit")
	flag.Parse()

	tr, err := loadTrace(*traceFile, *packets, *flows, *segments, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrumon:", err)
		os.Exit(1)
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.Default()
		addr, _, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lrumon:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", addr)
	}
	var tracer *obs.Tracer
	if *traceEvents > 0 {
		tracer = obs.NewTracer(*traceEvents)
	}

	scale := float64(*packets) / 25 / float64(1<<20)
	var filter sketch.Filter
	switch *filterName {
	case "tower":
		filter = sketch.NewTowerDefault(scale, *reset, uint64(*seed)+3)
	case "cm":
		filter = sketch.NewCountMin(2, int(scale*float64(1<<19)), *reset, uint64(*seed)+3)
	case "cu":
		filter = sketch.NewCU(2, int(scale*float64(1<<19)), *reset, uint64(*seed)+3)
	case "none":
		filter = nil
	default:
		fmt.Fprintf(os.Stderr, "lrumon: unknown filter %q\n", *filterName)
		os.Exit(2)
	}

	spec, err := policy.ParseSpec(*pol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrumon:", err)
		os.Exit(2)
	}
	// Flags fill whatever the spec string left unset.
	if spec.MemBytes == 0 {
		spec.MemBytes = *mem
	}
	if spec.Seed == 0 {
		spec.Seed = uint64(*seed)
	}
	spec.Merge = telemetry.Merge
	cache, err := policy.NewFromSpec(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrumon:", err)
		os.Exit(2)
	}
	res, an := telemetry.Run(tr, telemetry.Config{
		Filter:    filter,
		Cache:     cache,
		Threshold: uint32(*threshold),
		Obs:       reg,
		Tracer:    tracer,
	}, *reset)
	if tracer != nil {
		fmt.Fprintf(os.Stderr, "-- last %d of %d events --\n", tracer.Len(), tracer.Total())
		tracer.Dump(os.Stderr)
	}

	fmt.Printf("filter=%s threshold=%dB reset=%v policy=%s entries=%d\n",
		*filterName, *threshold, *reset, cache.Name(), cache.Capacity())
	fmt.Printf("packets=%d bytes=%d filtered=%d (%.2f%% of packets)\n",
		res.Packets, res.TotalBytes, res.Filtered, 100*float64(res.Filtered)/float64(res.Packets))
	fmt.Printf("cacheHits=%d cacheMisses=%d uploads=%d uploadRate=%.1f KPPS\n",
		res.CacheHits, res.CacheMisses, res.Uploads, res.UploadRatePPS/1e3)
	fmt.Printf("totalErrorRate=%.5f maxFlowError=%dB analyzerFlows=%d fpCollisions=%d\n",
		res.TotalErrorRate, res.MaxFlowError, res.AnalyzerFlows, an.Collisions)
}

func loadTrace(file string, packets, flows, segments int, seed int64) (*trace.Trace, error) {
	if file == "" {
		return trace.Synthesize(trace.SynthConfig{
			Packets:   packets,
			BaseFlows: flows,
			Segments:  segments,
			Duration:  time.Second,
			Seed:      seed,
		}), nil
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}
