// Command benchjson converts `go test -bench` output into a JSON record and
// optionally enforces orderings between benchmarks — the tooling behind
// `make bench` (which commits the result as BENCH_<n>.json, the repo's perf
// trajectory) and the CI bench-smoke step (which fails the build when the
// flat P4LRU core is slower than the generic one).
//
// Usage:
//
//	go test -bench ... -benchmem | benchjson [-o out.json]
//	    [-faster A<B ...] [-zeroalloc P ...] [-maxratio 'A<=F*B' ...]
//	    [-baseline FILE] [-within P=FACTOR ...]
//
// Each -faster constraint names two benchmark substrings: the (unique)
// benchmark matching A must have strictly lower ns/op than the one matching
// B, or benchjson exits 1. Matching is by substring over the full benchmark
// name (e.g. "core=flat-batch<core=generic"). -maxratio bounds a same-run
// ratio instead of an ordering: the benchmark matching A must run at no more
// than F times the ns/op of the one matching B — the overhead-budget gate
// (e.g. 'TraceOverhead/trace=on<=1.05*TraceOverhead/trace=off').
//
// When `-count N` repeats a benchmark, the fastest of its runs is kept
// (interference only ever slows a benchmark down, so best-of-N is the
// noise-robust estimate); tight-ratio gates should pair with -count.
//
// -zeroalloc fails the run if the matching benchmark allocates (allocs/op
// > 0) — the hit-path gate. -within compares against a previously committed
// report: the matching benchmark's ns/op must be ≤ FACTOR × the same-named
// benchmark in -baseline (a factor well above 1 absorbs CI noise while still
// catching order-of-magnitude regressions). Custom benchmark metrics
// (b.ReportMetric, e.g. p99-miss-ns) are parsed into each benchmark's
// "metrics" map, and benchmarks reporting *-miss-ns metrics are summarized
// in the report's miss_latency panel.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric values by unit (e.g.
	// "p99-miss-ns": 5086).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the JSON document benchjson writes.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
	// Speedups records every -faster constraint as A, B and the measured
	// ratio nsB/nsA (>1 means A is faster).
	Speedups []Speedup `json:"speedups,omitempty"`
	// MissLatency summarizes every benchmark that reported *-miss-ns custom
	// metrics — the miss-path latency panel of the perf trajectory.
	MissLatency []MissLatency `json:"miss_latency,omitempty"`
}

// Speedup is one verified ordering.
type Speedup struct {
	Fast  string  `json:"fast"`
	Slow  string  `json:"slow"`
	Ratio float64 `json:"ratio"`
}

// MissLatency is one benchmark's miss-latency quantile summary.
type MissLatency struct {
	Name  string  `json:"name"`
	P50Ns float64 `json:"p50_ns,omitempty"`
	P99Ns float64 `json:"p99_ns,omitempty"`
}

// benchLine matches "BenchmarkName-8  123  45.6 ns/op[  7 B/op  0 allocs/op]".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// metricPair matches one "<value> <unit>" pair in a benchmark line's tail,
// covering both builtin units (B/op) and custom ReportMetric ones
// (p99-miss-ns).
var metricPair = regexp.MustCompile(`([\d.eE+-]+) ([\w/-]+)`)

type stringList []string

func (f *stringList) String() string     { return strings.Join(*f, " ") }
func (f *stringList) Set(s string) error { *f = append(*f, s); return nil }

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	var constraints, zeroallocs, withins, maxratios stringList
	flag.Var(&constraints, "faster", "constraint A<B: benchmark matching A must beat the one matching B (repeatable)")
	flag.Var(&zeroallocs, "zeroalloc", "benchmark matching P must report 0 allocs/op (repeatable)")
	flag.Var(&maxratios, "maxratio", "constraint A<=F*B: benchmark matching A must run within F× the ns/op of the one matching B (repeatable)")
	baseline := flag.String("baseline", "", "prior benchjson report to compare -within constraints against")
	flag.Var(&withins, "within", "constraint P=FACTOR: benchmark matching P must run within FACTOR× its ns/op in -baseline (repeatable)")
	flag.Parse()

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	rep.buildMissLatencyPanel()

	var base *Report
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		base = &Report{}
		if err := json.Unmarshal(data, base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing -baseline %s: %v\n", *baseline, err)
			os.Exit(2)
		}
	} else if len(withins) > 0 {
		fmt.Fprintln(os.Stderr, "benchjson: -within requires -baseline")
		os.Exit(2)
	}

	failed := false
	for _, c := range constraints {
		fast, slow, ok := strings.Cut(c, "<")
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: bad -faster %q (want A<B)\n", c)
			os.Exit(2)
		}
		fb, err1 := rep.find(fast)
		sb, err2 := rep.find(slow)
		if err1 != nil || err2 != nil {
			for _, e := range []error{err1, err2} {
				if e != nil {
					fmt.Fprintln(os.Stderr, "benchjson:", e)
				}
			}
			os.Exit(2)
		}
		ratio := sb.NsPerOp / fb.NsPerOp
		rep.Speedups = append(rep.Speedups, Speedup{Fast: fb.Name, Slow: sb.Name, Ratio: ratio})
		if fb.NsPerOp >= sb.NsPerOp {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s (%.2f ns/op) is not faster than %s (%.2f ns/op)\n",
				fb.Name, fb.NsPerOp, sb.Name, sb.NsPerOp)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: ok %s is %.2fx faster than %s\n", fb.Name, ratio, sb.Name)
		}
	}

	for _, c := range maxratios {
		// Shape: A<=F*B. Benchmark names never contain "<=", and the factor
		// never contains '*', so both cuts are unambiguous.
		a, rest, ok := strings.Cut(c, "<=")
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: bad -maxratio %q (want A<=F*B)\n", c)
			os.Exit(2)
		}
		factorStr, bPat, ok := strings.Cut(rest, "*")
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: bad -maxratio %q (want A<=F*B)\n", c)
			os.Exit(2)
		}
		factor, err := strconv.ParseFloat(factorStr, 64)
		if err != nil || factor <= 0 {
			fmt.Fprintf(os.Stderr, "benchjson: bad -maxratio factor %q\n", factorStr)
			os.Exit(2)
		}
		ab, err1 := rep.find(a)
		bb, err2 := rep.find(bPat)
		if err1 != nil || err2 != nil {
			for _, e := range []error{err1, err2} {
				if e != nil {
					fmt.Fprintln(os.Stderr, "benchjson:", e)
				}
			}
			os.Exit(2)
		}
		limit := factor * bb.NsPerOp
		if ab.NsPerOp > limit {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s at %.2f ns/op exceeds %.2fx %s (%.2f ns/op)\n",
				ab.Name, ab.NsPerOp, factor, bb.Name, bb.NsPerOp)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: ok %s %.2f ns/op within %.2fx of %s (%.2f ns/op)\n",
				ab.Name, ab.NsPerOp, factor, bb.Name, bb.NsPerOp)
		}
	}

	for _, p := range zeroallocs {
		b, err := rep.find(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if b.AllocsPerOp > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s allocates %d objects/op, want 0\n", b.Name, b.AllocsPerOp)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: ok %s is allocation-free\n", b.Name)
		}
	}

	for _, c := range withins {
		// Split on the LAST '=': benchmark names carry k=v sub-bench labels.
		eq := strings.LastIndex(c, "=")
		if eq < 1 {
			fmt.Fprintf(os.Stderr, "benchjson: bad -within %q (want P=FACTOR)\n", c)
			os.Exit(2)
		}
		pat, factorStr := c[:eq], c[eq+1:]
		factor, err := strconv.ParseFloat(factorStr, 64)
		if err != nil || factor <= 0 {
			fmt.Fprintf(os.Stderr, "benchjson: bad -within factor %q\n", factorStr)
			os.Exit(2)
		}
		cur, err := rep.find(pat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		old, err := base.find(cur.Name)
		if err != nil {
			// A benchmark absent from the baseline (new this PR) cannot
			// regress against it; report and move on.
			fmt.Fprintf(os.Stderr, "benchjson: skip %s: not in baseline (%v)\n", cur.Name, err)
			continue
		}
		limit := factor * old.NsPerOp
		if cur.NsPerOp > limit {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s at %.2f ns/op exceeds %.1fx baseline %.2f ns/op\n",
				cur.Name, cur.NsPerOp, factor, old.NsPerOp)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: ok %s %.2f ns/op within %.1fx of baseline %.2f ns/op\n",
				cur.Name, cur.NsPerOp, factor, old.NsPerOp)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}

// buildMissLatencyPanel collects every benchmark that reported *-miss-ns
// custom metrics into the report's miss_latency section.
func (r *Report) buildMissLatencyPanel() {
	for _, b := range r.Benchmarks {
		p50, ok50 := b.Metrics["p50-miss-ns"]
		p99, ok99 := b.Metrics["p99-miss-ns"]
		if !ok50 && !ok99 {
			continue
		}
		r.MissLatency = append(r.MissLatency, MissLatency{Name: b.Name, P50Ns: p50, P99Ns: p99})
	}
}

// find returns the single benchmark whose name contains substr. An exact
// name match (with or without the Benchmark prefix) wins outright, so
// "X/core=flat" stays unambiguous next to "X/core=flat-batch".
func (r *Report) find(substr string) (Result, error) {
	var hit Result
	n := 0
	for _, b := range r.Benchmarks {
		if b.Name == substr || b.Name == "Benchmark"+substr {
			return b, nil
		}
		if strings.Contains(b.Name, substr) {
			hit = b
			n++
		}
	}
	switch n {
	case 0:
		return hit, fmt.Errorf("no benchmark matches %q", substr)
	case 1:
		return hit, nil
	default:
		return hit, fmt.Errorf("%d benchmarks match %q; be more specific", n, substr)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	seen := make(map[string]int)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		b := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		rest := m[4]
		if mb := regexp.MustCompile(`([\d.]+) MB/s`).FindStringSubmatch(rest); mb != nil {
			b.MBPerSec, _ = strconv.ParseFloat(mb[1], 64)
		}
		if bo := regexp.MustCompile(`(\d+) B/op`).FindStringSubmatch(rest); bo != nil {
			b.BytesPerOp, _ = strconv.ParseInt(bo[1], 10, 64)
		}
		if ao := regexp.MustCompile(`(\d+) allocs/op`).FindStringSubmatch(rest); ao != nil {
			b.AllocsPerOp, _ = strconv.ParseInt(ao[1], 10, 64)
		}
		// Anything else in the tail is a custom b.ReportMetric pair.
		for _, m := range metricPair.FindAllStringSubmatch(rest, -1) {
			switch unit := m[2]; unit {
			case "MB/s", "B/op", "allocs/op":
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit], _ = strconv.ParseFloat(m[1], 64)
			}
		}
		// -count>1 repeats a benchmark name: keep the fastest run (the
		// classic noise-robust estimator — interference only ever slows a
		// benchmark down), so gates compare best-of-N, not one noisy sample.
		if i, ok := seen[b.Name]; ok {
			if b.NsPerOp < rep.Benchmarks[i].NsPerOp {
				rep.Benchmarks[i] = b
			}
			continue
		}
		seen[b.Name] = len(rep.Benchmarks)
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, sc.Err()
}
