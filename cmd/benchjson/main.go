// Command benchjson converts `go test -bench` output into a JSON record and
// optionally enforces orderings between benchmarks — the tooling behind
// `make bench` (which commits the result as BENCH_<n>.json, the repo's perf
// trajectory) and the CI bench-smoke step (which fails the build when the
// flat P4LRU core is slower than the generic one).
//
// Usage:
//
//	go test -bench ... -benchmem | benchjson [-o out.json] [-faster A<B ...]
//
// Each -faster constraint names two benchmark substrings: the (unique)
// benchmark matching A must have strictly lower ns/op than the one matching
// B, or benchjson exits 1. Matching is by substring over the full benchmark
// name (e.g. "core=flat-batch<core=generic").
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the JSON document benchjson writes.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
	// Speedups records every -faster constraint as A, B and the measured
	// ratio nsB/nsA (>1 means A is faster).
	Speedups []Speedup `json:"speedups,omitempty"`
}

// Speedup is one verified ordering.
type Speedup struct {
	Fast  string  `json:"fast"`
	Slow  string  `json:"slow"`
	Ratio float64 `json:"ratio"`
}

// benchLine matches "BenchmarkName-8  123  45.6 ns/op[  7 B/op  0 allocs/op]".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

type fasterList []string

func (f *fasterList) String() string     { return strings.Join(*f, " ") }
func (f *fasterList) Set(s string) error { *f = append(*f, s); return nil }

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	var constraints fasterList
	flag.Var(&constraints, "faster", "constraint A<B: benchmark matching A must beat the one matching B (repeatable)")
	flag.Parse()

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	failed := false
	for _, c := range constraints {
		fast, slow, ok := strings.Cut(c, "<")
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: bad -faster %q (want A<B)\n", c)
			os.Exit(2)
		}
		fb, err1 := rep.find(fast)
		sb, err2 := rep.find(slow)
		if err1 != nil || err2 != nil {
			for _, e := range []error{err1, err2} {
				if e != nil {
					fmt.Fprintln(os.Stderr, "benchjson:", e)
				}
			}
			os.Exit(2)
		}
		ratio := sb.NsPerOp / fb.NsPerOp
		rep.Speedups = append(rep.Speedups, Speedup{Fast: fb.Name, Slow: sb.Name, Ratio: ratio})
		if fb.NsPerOp >= sb.NsPerOp {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s (%.2f ns/op) is not faster than %s (%.2f ns/op)\n",
				fb.Name, fb.NsPerOp, sb.Name, sb.NsPerOp)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "benchjson: ok %s is %.2fx faster than %s\n", fb.Name, ratio, sb.Name)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}

// find returns the single benchmark whose name contains substr. An exact
// name match (with or without the Benchmark prefix) wins outright, so
// "X/core=flat" stays unambiguous next to "X/core=flat-batch".
func (r *Report) find(substr string) (Result, error) {
	var hit Result
	n := 0
	for _, b := range r.Benchmarks {
		if b.Name == substr || b.Name == "Benchmark"+substr {
			return b, nil
		}
		if strings.Contains(b.Name, substr) {
			hit = b
			n++
		}
	}
	switch n {
	case 0:
		return hit, fmt.Errorf("no benchmark matches %q", substr)
	case 1:
		return hit, nil
	default:
		return hit, fmt.Errorf("%d benchmarks match %q; be more specific", n, substr)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		b := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		rest := m[4]
		if mb := regexp.MustCompile(`([\d.]+) MB/s`).FindStringSubmatch(rest); mb != nil {
			b.MBPerSec, _ = strconv.ParseFloat(mb[1], 64)
		}
		if bo := regexp.MustCompile(`(\d+) B/op`).FindStringSubmatch(rest); bo != nil {
			b.BytesPerOp, _ = strconv.ParseInt(bo[1], 10, 64)
		}
		if ao := regexp.MustCompile(`(\d+) allocs/op`).FindStringSubmatch(rest); ao != nil {
			b.AllocsPerOp, _ = strconv.ParseInt(ao[1], 10, 64)
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return rep, sc.Err()
}
