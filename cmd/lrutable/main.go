// Command lrutable runs the LruTable NAT simulator (§3.1) over a trace file
// or a synthesized CAIDA_n-like workload and reports fast-path miss rate and
// added latency.
//
// Usage:
//
//	lrutable [-trace file.p4lt] [-packets N] [-flows N] [-segments n]
//	         [-policy spec] [-mem bytes] [-delta 1ms] [-timeout 100ms]
//	         [-similarity] [-metrics :addr] [-trace-events N]
//
// -policy takes a policy spec: a kind (p4lru3, p4lru1, p4lru2, p4lru4,
// ideal, timeout, elastic, coco, clock, series) optionally followed by
// parameters, e.g. "p4lru3:mem=1MiB,seed=7" — see policy.ParseSpec. The
// -mem/-seed/-timeout flags fill fields the spec string leaves unset.
//
// -metrics serves /metrics, /metrics.json and /debug/pprof on addr while the
// simulation runs; -trace-events keeps the last N simulator events (slow-path
// issues/installs) in a ring and dumps them, virtual-time-stamped, at exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/p4lru/p4lru/internal/nat"
	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/trace"
)

func main() {
	traceFile := flag.String("trace", "", "trace file (P4LT); synthesized when empty")
	packets := flag.Int("packets", 1_000_000, "synthesized packets")
	flows := flag.Int("flows", 50_000, "synthesized base flows")
	segments := flag.Int("segments", 60, "CAIDA_n segments")
	seed := flag.Int64("seed", 1, "seed")
	pol := flag.String("policy", "p4lru3", "replacement policy spec (kind[:key=value,...])")
	mem := flag.Int("mem", 400*1024, "cache memory (bytes)")
	delta := flag.Duration("delta", time.Millisecond, "slow-path latency ΔT")
	timeout := flag.Duration("timeout", 100*time.Millisecond, "timeout policy threshold")
	similarity := flag.Bool("similarity", false, "track LRU similarity")
	metricsAddr := flag.String("metrics", "", "serve /metrics and pprof on this address during the run")
	traceEvents := flag.Int("trace-events", 0, "ring-buffer the last N simulator events and dump them at exit")
	flag.Parse()

	tr, err := loadTrace(*traceFile, *packets, *flows, *segments, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrutable:", err)
		os.Exit(1)
	}

	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.Default()
		addr, _, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lrutable:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", addr)
	}
	var tracer *obs.Tracer
	if *traceEvents > 0 {
		tracer = obs.NewTracer(*traceEvents)
	}

	spec, err := policy.ParseSpec(*pol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrutable:", err)
		os.Exit(2)
	}
	// Flags fill whatever the spec string left unset.
	if spec.MemBytes == 0 {
		spec.MemBytes = *mem
	}
	if spec.Seed == 0 {
		spec.Seed = uint64(*seed)
	}
	if spec.TimeoutThreshold == 0 {
		spec.TimeoutThreshold = *timeout
	}
	spec.Merge = nat.MergeNAT
	cache, err := policy.NewFromSpec(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lrutable:", err)
		os.Exit(2)
	}
	res := nat.Run(tr, nat.Config{
		Cache:           cache,
		SlowPathDelay:   *delta,
		TrackSimilarity: *similarity,
		Obs:             reg,
		Tracer:          tracer,
	})

	fmt.Printf("policy=%s mem=%dB entries=%d ΔT=%v\n", cache.Name(), spec.MemBytes, cache.Capacity(), *delta)
	fmt.Printf("packets=%d hits=%d placeholderHits=%d misses=%d\n",
		res.Packets, res.Hits, res.PlaceholderHits, res.Misses)
	fmt.Printf("missRate=%.4f slowPathRate=%.4f avgAddedLatency=%v\n",
		res.MissRate, float64(res.SlowPathTrips)/float64(res.Packets), res.AvgAddedLatency)
	if *similarity {
		fmt.Printf("lruSimilarity=%.4f\n", res.Similarity)
	}
	if tracer != nil {
		fmt.Fprintf(os.Stderr, "-- last %d of %d events --\n", tracer.Len(), tracer.Total())
		tracer.Dump(os.Stderr)
	}
}

func loadTrace(file string, packets, flows, segments int, seed int64) (*trace.Trace, error) {
	if file == "" {
		return trace.Synthesize(trace.SynthConfig{
			Packets:   packets,
			BaseFlows: flows,
			Segments:  segments,
			Duration:  time.Second,
			Seed:      seed,
		}), nil
	}
	f, err := os.Open(file)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}
