// Command tracegen synthesizes, inspects, and converts the CAIDA_n-like
// traces used by the simulators.
//
// Usage:
//
//	tracegen gen  -o trace.p4lt [-packets N] [-flows N] [-segments n] [-seed S] [-duration D]
//	tracegen stat trace.p4lt
//	tracegen topcap   trace.p4lt out.pcap   # render as an Ethernet capture
//	tracegen frompcap in.pcap   trace.p4lt  # extract 5-tuple flows from a capture
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/p4lru/p4lru/internal/packet"
	"github.com/p4lru/p4lru/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = genCmd(os.Args[2:])
	case "stat":
		err = statCmd(os.Args[2:])
	case "topcap":
		err = toPcapCmd(os.Args[2:])
	case "frompcap":
		err = fromPcapCmd(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tracegen gen      -o trace.p4lt [-packets N] [-flows N] [-segments n] [-seed S] [-duration D]
  tracegen stat     trace.p4lt
  tracegen topcap   trace.p4lt out.pcap
  tracegen frompcap in.pcap trace.p4lt`)
}

func genCmd(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("o", "trace.p4lt", "output file")
	packets := fs.Int("packets", 1_000_000, "total packets")
	flows := fs.Int("flows", 50_000, "base flow population (CAIDA_1)")
	segments := fs.Int("segments", 1, "CAIDA_n segment count n")
	seed := fs.Int64("seed", 1, "random seed")
	duration := fs.Duration("duration", time.Second, "trace duration")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tr := trace.Synthesize(trace.SynthConfig{
		Packets:   *packets,
		BaseFlows: *flows,
		Segments:  *segments,
		Duration:  *duration,
		Seed:      *seed,
	})
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s\n", *out, trace.ComputeStats(tr))
	return nil
}

func statCmd(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("stat needs exactly one trace file")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	fmt.Println(trace.ComputeStats(tr))
	return nil
}

func toPcapCmd(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("topcap needs <trace.p4lt> <out.pcap>")
	}
	in, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer in.Close()
	tr, err := trace.Read(in)
	if err != nil {
		return err
	}
	out, err := os.Create(args[1])
	if err != nil {
		return err
	}
	defer out.Close()
	if err := packet.WritePcap(out, tr); err != nil {
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d frames\n", args[1], len(tr.Packets))
	return nil
}

func fromPcapCmd(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("frompcap needs <in.pcap> <trace.p4lt>")
	}
	in, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer in.Close()
	tr, skipped, err := packet.ReadPcap(in)
	if err != nil {
		return err
	}
	out, err := os.Create(args[1])
	if err != nil {
		return err
	}
	defer out.Close()
	if err := trace.Write(out, tr); err != nil {
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s (%d foreign frames skipped)\n", args[1], trace.ComputeStats(tr), skipped)
	return nil
}
