// bench_test.go holds one testing.B benchmark per table and figure of the
// paper's evaluation (§4), plus micro-benchmarks of the core P4LRU update
// path. Each experiment benchmark executes the full parameter sweep once per
// iteration at test scale and reports its headline quantities as custom
// metrics; run with
//
//	go test -bench=. -benchmem            # everything, test scale
//	go test -bench=Fig12 -benchtime=1x -v # one experiment, log the series
//
// The cmd/p4lru-bench binary runs the same experiments at paper-like scale
// and prints the full series.
package p4lru_test

import (
	"math/rand"
	"testing"

	"github.com/p4lru/p4lru/internal/experiments"
	"github.com/p4lru/p4lru/internal/lru"
)

// runExperiment executes a registered experiment once per b.N iteration and
// reports the supplied metrics from its figures.
func runExperiment(b *testing.B, id string, metrics func(figs []experiments.Figure, b *testing.B)) {
	b.Helper()
	r, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	scale := experiments.TestScale()
	var figs []experiments.Figure
	for i := 0; i < b.N; i++ {
		figs = r.Run(scale)
	}
	if metrics != nil {
		metrics(figs, b)
	}
	if testing.Verbose() {
		for _, f := range figs {
			b.Log("\n" + f.Format())
		}
	}
}

// lastOf returns the final y value of a named series in figure idx.
func lastOf(b *testing.B, figs []experiments.Figure, idx int, series string) float64 {
	b.Helper()
	s := figs[idx].Get(series)
	if s == nil || len(s.Points) == 0 {
		b.Fatalf("series %q missing in %s", series, figs[idx].ID)
	}
	return s.Points[len(s.Points)-1].Y
}

func BenchmarkTable2Resources(b *testing.B) {
	runExperiment(b, "table2", func(figs []experiments.Figure, b *testing.B) {
		// Stateful ALU utilization per system (x=2 is the SALU row).
		for _, s := range figs[0].Series {
			for _, p := range s.Points {
				if p.X == 2 {
					b.ReportMetric(p.Y, s.Name+"-salu-%")
				}
			}
		}
	})
}

func BenchmarkFig09LruTableTestbed(b *testing.B) {
	runExperiment(b, "fig9", func(figs []experiments.Figure, b *testing.B) {
		b.ReportMetric(lastOf(b, figs, 0, "p4lru3"), "p4lru3-missrate")
		b.ReportMetric(lastOf(b, figs, 0, "baseline"), "baseline-missrate")
		b.ReportMetric(lastOf(b, figs, 1, "p4lru3"), "p4lru3-latency-us")
	})
}

func BenchmarkFig10LruIndexTestbed(b *testing.B) {
	runExperiment(b, "fig10", func(figs []experiments.Figure, b *testing.B) {
		b.ReportMetric(lastOf(b, figs, 0, "p4lru3"), "p4lru3-ktps")
		b.ReportMetric(lastOf(b, figs, 0, "naive"), "naive-ktps")
		b.ReportMetric(lastOf(b, figs, 1, "p4lru3"), "p4lru3-speedup")
	})
}

func BenchmarkFig11LruMonTestbed(b *testing.B) {
	runExperiment(b, "fig11", func(figs []experiments.Figure, b *testing.B) {
		b.ReportMetric(lastOf(b, figs, 0, "p4lru3"), "p4lru3-upload-kpps")
		b.ReportMetric(lastOf(b, figs, 0, "baseline"), "baseline-upload-kpps")
	})
}

func BenchmarkFig12LruTableComparative(b *testing.B) {
	runExperiment(b, "fig12", func(figs []experiments.Figure, b *testing.B) {
		for _, name := range []string{"p4lru3", "timeout", "elastic", "coco"} {
			b.ReportMetric(lastOf(b, figs, 0, name), name+"-missrate")
		}
	})
}

func BenchmarkFig13LruIndexComparative(b *testing.B) {
	runExperiment(b, "fig13", func(figs []experiments.Figure, b *testing.B) {
		for _, name := range []string{"p4lru3", "timeout", "elastic", "coco"} {
			b.ReportMetric(lastOf(b, figs, 0, name), name+"-missrate")
		}
	})
}

func BenchmarkFig14LruMonComparative(b *testing.B) {
	runExperiment(b, "fig14", func(figs []experiments.Figure, b *testing.B) {
		for _, name := range []string{"p4lru3", "timeout", "elastic", "coco"} {
			b.ReportMetric(lastOf(b, figs, 0, name), name+"-missrate")
		}
	})
}

func BenchmarkFig15LruTableParameter(b *testing.B) {
	runExperiment(b, "fig15", func(figs []experiments.Figure, b *testing.B) {
		b.ReportMetric(lastOf(b, figs, 1, "p4lru3"), "p4lru3-similarity")
		b.ReportMetric(lastOf(b, figs, 1, "p4lru1"), "p4lru1-similarity")
	})
}

func BenchmarkFig16LruIndexParameter(b *testing.B) {
	runExperiment(b, "fig16", func(figs []experiments.Figure, b *testing.B) {
		b.ReportMetric(lastOf(b, figs, 0, "p4lru3"), "p4lru3-missrate")
		b.ReportMetric(lastOf(b, figs, 0, "p4lru1"), "p4lru1-missrate")
	})
}

func BenchmarkFig17LruMonParameter(b *testing.B) {
	runExperiment(b, "fig17", func(figs []experiments.Figure, b *testing.B) {
		b.ReportMetric(lastOf(b, figs, 0, "10ms"), "err-at-max-bw-10ms")
		b.ReportMetric(lastOf(b, figs, 1, "10ms"), "upload-kpps-10ms")
	})
}

func BenchmarkAblationSeries(b *testing.B) {
	runExperiment(b, "ablation-series", func(figs []experiments.Figure, b *testing.B) {
		b.ReportMetric(lastOf(b, figs, 0, "reply-path"), "replypath-hitrate")
		b.ReportMetric(lastOf(b, figs, 0, "immediate"), "immediate-hitrate")
	})
}

func BenchmarkAblationP4LRU4(b *testing.B) {
	runExperiment(b, "ablation-p4lru4", nil)
}

func BenchmarkAblationClock(b *testing.B) {
	runExperiment(b, "ablation-clock", func(figs []experiments.Figure, b *testing.B) {
		b.ReportMetric(lastOf(b, figs, 0, "p4lru3"), "p4lru3-missrate")
		b.ReportMetric(lastOf(b, figs, 0, "clock"), "clock-missrate")
	})
}

func BenchmarkAblationEncoding(b *testing.B) {
	runExperiment(b, "ablation-encoding", nil)
}

// ---------------------------------------------------------------------------
// Micro-benchmarks: the per-packet update path of the core structures.
// ---------------------------------------------------------------------------

func zipfKeys(n int) []uint64 {
	r := rand.New(rand.NewSource(1))
	z := rand.NewZipf(r, 1.1, 1, 1<<20)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = z.Uint64() + 1
	}
	return keys
}

func BenchmarkCoreUnit3Update(b *testing.B) {
	u := lru.NewUnit3[uint64](nil)
	keys := zipfKeys(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Update(keys[i&(1<<16-1)]%8, uint64(i))
	}
}

func BenchmarkCoreArrayUpdate(b *testing.B) {
	a := lru.NewArray3[uint64](1<<16, 1, nil)
	keys := zipfKeys(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Update(keys[i&(1<<16-1)], uint64(i))
	}
}

func BenchmarkCoreIdealUpdate(b *testing.B) {
	c := lru.NewIdeal[uint64](3<<16, nil)
	keys := zipfKeys(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Update(keys[i&(1<<16-1)], uint64(i))
	}
}

func BenchmarkCoreSeriesQueryReply(b *testing.B) {
	s := lru.NewSeries3[uint64](4, 1<<14, 1, nil)
	keys := zipfKeys(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(1<<16-1)]
		_, level, _ := s.Query(k)
		s.Reply(k, uint64(i), level)
	}
}
