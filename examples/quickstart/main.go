// Quickstart: build a P4LRU3 cache array, feed it a skewed key stream, and
// compare its hit rate and LRU similarity against the ideal LRU and the
// plain hash table at equal memory.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"github.com/p4lru/p4lru/internal/lru"
)

func main() {
	const (
		units   = 4096      // P4LRU3 units (3 entries each)
		keys    = 1 << 17   // key universe
		packets = 2_000_000 // stream length
		entries = units * 3 // equal-entry budget for the competitors
	)

	// The three contenders: classic LRU (impossible on a switch pipeline),
	// the hash-table cache every prior data plane system falls back to, and
	// the paper's P4LRU3 array (deployable: Tofino-style arithmetic only).
	ideal := lru.NewIdeal[uint64](entries, nil)
	hashTable := lru.NewArray(entries, 1, func() lru.UnitCache[uint64] {
		return lru.NewUnit[uint64](1, nil)
	})
	p4lru3 := lru.NewArray3[uint64](units, 1, nil)

	type contender struct {
		name    string
		update  func(k uint64, v uint64) lru.Result[uint64]
		tracker *lru.SimilarityTracker
		hits    int
	}
	cs := []*contender{
		{name: "ideal LRU", update: ideal.Update, tracker: lru.NewSimilarityTracker()},
		{name: "hash table", update: hashTable.Update, tracker: lru.NewSimilarityTracker()},
		{name: "P4LRU3", update: p4lru3.Update, tracker: lru.NewSimilarityTracker()},
	}

	// A Zipf stream whose hot set drifts over time: recency matters, which
	// is exactly where LRU beats frequency-based replacement.
	r := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(r, 1.1, 1, keys)
	for i := 0; i < packets; i++ {
		k := zipf.Uint64() + uint64(i/50_000)*131
		for _, c := range cs {
			res := c.update(k, uint64(i))
			if res.Hit {
				c.hits++
			}
			c.tracker.Touch(k)
			if res.Evicted {
				c.tracker.Evict(res.EvictedKey)
			}
		}
	}

	fmt.Printf("%-12s %9s %12s\n", "cache", "hit rate", "similarity")
	for _, c := range cs {
		fmt.Printf("%-12s %8.2f%% %12.3f\n",
			c.name, 100*float64(c.hits)/float64(packets), c.tracker.Similarity())
	}
	fmt.Println("\nP4LRU3 approaches the ideal LRU using only pipeline-legal state")
	fmt.Println("(per-register single access, XOR/± state arithmetic).")
}
