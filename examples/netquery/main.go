// Net-query example: the LruIndex protocol as real UDP traffic on loopback.
// A database server, an in-network switch carrying the series-connected
// P4LRU3 index cache, and a Zipf client run as separate sockets; the client
// measures how the cache changes round trips once it warms up.
//
// Run: go run ./examples/netquery
package main

import (
	"fmt"
	"log"

	"github.com/p4lru/p4lru/internal/netproto"
	"github.com/p4lru/p4lru/internal/policy"
)

func main() {
	const items = 20_000

	srv, err := netproto.NewServer("127.0.0.1:0", items)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	sw, err := netproto.NewSwitch(netproto.SwitchConfig{
		ServerAddr: srv.Addr(),
		Policy: policy.Spec{
			Kind:     policy.KindSeries,
			Levels:   4,
			MemBytes: policy.SeriesMemBytes(4, 3, 1024),
			Seed:     1,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sw.Close()

	cl, err := netproto.NewClient(sw.Addr(), netproto.ClientConfig{
		Items: items, Skew: 1.2, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	fmt.Printf("server %v ⇄ switch %v (4-level P4LRU3 series, 12288 entries)\n\n",
		srv.Addr(), sw.Addr())

	for _, phase := range []struct {
		name    string
		queries int
	}{{"cold", 2000}, {"warm", 2000}, {"hot", 2000}} {
		st := cl.Run(phase.queries)
		if st.Invalid > 0 {
			log.Fatalf("%d invalid values — a cached index went stale", st.Invalid)
		}
		fmt.Printf("%-5s %5d queries: cache hits %5.1f%%, avg RTT %v, failures %d\n",
			phase.name, st.Queries,
			100*float64(st.Cached)/float64(st.Queries), st.AvgRTT, st.Failures)
	}

	sst := srv.Stats()
	fmt.Printf("\nserver: %d queries, %d B+ tree walks (%d nodes) — the rest arrived pre-resolved\n",
		sst.Queries, sst.IndexWalks, sst.NodesWalked)
	wst := sw.Stats()
	fmt.Printf("switch: %d queries, %d index-cache hits, %d entries cached (batched wire: %v)\n",
		wst.Queries, wst.Hits, wst.CacheLen, wst.Batched)
}
