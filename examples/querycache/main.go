// Query-cache example: the LruIndex scenario (§3.2). Closed-loop clients
// issue Zipf-distributed point queries against a B+ tree database; the
// in-network series-connected P4LRU3 cache stores each hot key's index so
// the server can skip the tree walk.
//
// Run: go run ./examples/querycache
package main

import (
	"fmt"

	"github.com/p4lru/p4lru/internal/kvindex"
	"github.com/p4lru/p4lru/internal/policy"
)

func main() {
	base := kvindex.Config{
		Items:   200_000,
		Threads: 8,
		Queries: 400_000,
		Seed:    5,
	}

	srv := kvindex.NewServer(base.Items)
	fmt.Printf("database: %d items, B+ tree height %d, 64B values\n\n",
		srv.Items(), srv.IndexHeight())

	type variant struct {
		name  string
		cache policy.Cache
	}
	const mem = 300 * 1024
	variants := []variant{
		{"naive (no cache)", nil},
		{"hash-table cache", policy.NewForMemory(policy.KindP4LRU1, mem, policy.Options{Seed: 1})},
		{"P4LRU3 ×4 series", policy.NewSeries(4, mem/4/25, 1, nil)},
	}

	var naiveTPS float64
	fmt.Printf("%-18s %9s %12s %12s %9s\n", "cache", "hitRate", "avgLatency", "throughput", "speedup")
	for _, v := range variants {
		cfg := base
		cfg.Cache = v.cache
		res := kvindex.Run(cfg)
		if res.Errors > 0 {
			panic(fmt.Sprintf("%d value errors", res.Errors))
		}
		if v.cache == nil {
			naiveTPS = res.ThroughputTPS
		}
		fmt.Printf("%-18s %8.2f%% %12v %9.1f KTPS %8.2fx\n",
			v.name, 100*res.HitRate, res.AvgLatency,
			res.ThroughputTPS/1e3, res.ThroughputTPS/naiveTPS)
	}
	fmt.Println("\na cached 48-bit index lets the server skip its whole B+ tree walk;")
	fmt.Println("the series connection updates the cache only on reply packets, so a")
	fmt.Println("key is never duplicated across the four arrays.")
}
