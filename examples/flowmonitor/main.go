// Flow-monitor example: the LruMon scenario (§3.3). A Tower sketch filters
// mouse flows; elephants aggregate in a P4LRU3 write-cache keyed by 32-bit
// fingerprints; evicted entries stream to the analyzer. The better the
// cache, the fewer upload packets — with measurement accuracy untouched.
//
// Run: go run ./examples/flowmonitor
package main

import (
	"fmt"
	"time"

	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/sketch"
	"github.com/p4lru/p4lru/internal/telemetry"
	"github.com/p4lru/p4lru/internal/trace"
)

func main() {
	fmt.Println("synthesizing a CAIDA_60-like trace (1M packets)...")
	tr := trace.Synthesize(trace.SynthConfig{
		Packets:   1_000_000,
		BaseFlows: 60_000,
		Segments:  60,
		Duration:  time.Second,
		Seed:      9,
	})
	fmt.Println(trace.ComputeStats(tr))
	fmt.Println()

	const (
		reset     = 10 * time.Millisecond
		threshold = 1500
		mem       = 200 * 1024
	)

	fmt.Printf("%-10s %10s %10s %12s %13s %13s\n",
		"policy", "hits", "misses", "uploads", "uploadKPPS", "totalError")
	for _, kind := range []policy.Kind{policy.KindP4LRU3, policy.KindP4LRU1, policy.KindElastic} {
		cache := policy.NewForMemory(kind, mem, policy.Options{Seed: 2, Merge: telemetry.Merge})
		res, _ := telemetry.Run(tr, telemetry.Config{
			Filter:    sketch.NewTowerDefault(0.04, reset, 7),
			Cache:     cache,
			Threshold: threshold,
		}, reset)
		fmt.Printf("%-10s %10d %10d %12d %13.1f %12.4f%%\n",
			cache.Name(), res.CacheHits, res.CacheMisses, res.Uploads,
			res.UploadRatePPS/1e3, 100*res.TotalErrorRate)
	}
	fmt.Println("\nthe total error is identical across policies — only the filter drops")
	fmt.Println("bytes. The LRU cache simply uploads less, unburdening the analyzer.")
}
