// Pipeline-check example: runs P4LRU3 as a program on the Tofino-style
// pipeline model, demonstrating (1) the per-packet constraint checker that
// rejects second data traversals, (2) behavioural equivalence with the plain
// Go implementation, and (3) the Table 2 style resource report for all three
// systems.
//
// Run: go run ./examples/pipelinecheck
package main

import (
	"fmt"
	"math/rand"

	"github.com/p4lru/p4lru/internal/lru"
	"github.com/p4lru/p4lru/internal/pipeline"
)

func main() {
	// 1. The constraint the whole paper is about: a program that touches
	// the same register twice in one packet is illegal.
	fmt.Println("== constraint checker ==")
	b := pipeline.NewBuilder("illegal-lru", pipeline.TofinoBudget, 1)
	st := b.Stage()
	reg := st.Register("head", 32, 16)
	st.Action(reg, pipeline.SALUAction{
		Name: "swap",
		True: pipeline.SALUBranch{Op: pipeline.OpSet, Operand: pipeline.F("key"), Out: pipeline.OutOld},
	})
	st.SALU(reg, "swap", pipeline.F("idx"), "ev1")
	st.SALU(reg, "swap", pipeline.F("idx"), "ev2") // classic LRU's second access
	prog, err := b.Build()
	if err != nil {
		panic(err)
	}
	err = prog.Run(pipeline.NewPHV(map[string]uint64{"key": 1, "idx": 0}))
	fmt.Printf("second access to the queue head: %v\n\n", err)

	// 2. P4LRU3 as a pipeline program, checked against the Go reference.
	fmt.Println("== P4LRU3 pipeline vs reference ==")
	pipe, err := pipeline.BuildCacheArray3("demo", 256, 42, pipeline.ModeWrite, pipeline.TofinoBudget)
	if err != nil {
		panic(err)
	}
	ref := lru.NewArray3[uint64](256, 42, func(a, b uint64) uint64 { return a + b })
	r := rand.New(rand.NewSource(1))
	agree := 0
	const packets = 100_000
	for i := 0; i < packets; i++ {
		k := uint64(r.Intn(2000) + 1)
		pr, err := pipe.Update(k, 64, false)
		if err != nil {
			panic(err) // would mean the program violates pipeline rules
		}
		rr := ref.Update(k, 64)
		if pr.Hit == rr.Hit {
			agree++
		}
	}
	fmt.Printf("%d/%d packets agree with the plain-Go P4LRU3 (9 stages, 7 SALUs)\n\n",
		agree, packets)

	// 3. Table 2: resource utilization of the three systems.
	fmt.Println("== Table 2: resource usage ==")
	lt, _ := pipeline.BuildLruTableSystem(1<<16, 1, pipeline.TofinoBudget)
	li, _ := pipeline.BuildLruIndexSystem(4, 1<<16, 1, pipeline.TofinoBudget)
	lm, _ := pipeline.BuildLruMonSystem(1<<17, 1, 1, pipeline.TofinoBudget)
	for _, p := range []*pipeline.Program{lt, li, lm} {
		fmt.Println(p.Report())
		fmt.Println()
	}
}
