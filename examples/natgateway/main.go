// NAT gateway example: the LruTable scenario (§3.1). A synthesized
// CAIDA-like trace flows through the data-plane NAT fast path; misses take a
// control-plane round trip. Compare the P4LRU3 cache against the hash-table
// baseline and a tuned timeout cache at equal memory.
//
// Run: go run ./examples/natgateway
package main

import (
	"fmt"
	"time"

	"github.com/p4lru/p4lru/internal/nat"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/trace"
)

func main() {
	fmt.Println("synthesizing a CAIDA_30-like trace (1M packets)...")
	tr := trace.Synthesize(trace.SynthConfig{
		Packets:   1_000_000,
		BaseFlows: 60_000,
		Segments:  30,
		Duration:  time.Second,
		Seed:      3,
	})
	fmt.Println(trace.ComputeStats(tr))
	fmt.Println()

	const mem = 256 * 1024 // 256 KiB of data-plane cache
	const deltaT = time.Millisecond

	fmt.Printf("%-10s %10s %14s %14s\n", "policy", "missRate", "slowPathRate", "addedLatency")
	for _, kind := range []policy.Kind{policy.KindP4LRU3, policy.KindP4LRU1, policy.KindTimeout} {
		cache := policy.NewForMemory(kind, mem, policy.Options{
			Seed:             1,
			Merge:            nat.MergeNAT,
			TimeoutThreshold: 50 * time.Millisecond,
		})
		res := nat.Run(tr, nat.Config{Cache: cache, SlowPathDelay: deltaT})
		fmt.Printf("%-10s %9.2f%% %13.2f%% %14v\n",
			cache.Name(),
			100*res.MissRate,
			100*float64(res.SlowPathTrips)/float64(res.Packets),
			res.AvgAddedLatency)
	}
	fmt.Println("\nevery slow-path trip costs ΔT =", deltaT, "— the LRU cache keeps hot")
	fmt.Println("translations on the fast path even as the flow mix churns.")
}
