GO ?= go

# The committed perf-trajectory record `make bench` writes; bump the suffix
# when a PR re-baselines the ladder.
BENCH_OUT ?= BENCH_10.json
# The previous record, used as the regression baseline for -within gates.
BENCH_BASE ?= BENCH_9.json
# Fixed iteration counts so runs are comparable across commits.
BENCH_TIME ?= 2000000x
# The wire ladder goes through real loopback sockets (µs per query, not ns),
# so it gets its own much smaller fixed count.
BENCH_NET_TIME ?= 50000x

.PHONY: all build test race chaos bench bench-all verify examples fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/lru/ ./internal/engine/ ./internal/netproto/ ./internal/policy/ ./internal/obs/... ./internal/backing/ ./internal/resilience/ ./internal/cluster/

# chaos runs the failure-injection suite (backing blackouts, writer panics,
# overload shedding, cluster node death mid-replay — with and without gossip
# membership doing the eviction — and a link-cut partition healed by hinted
# handoff) under the race detector.
chaos:
	$(GO) test -race -count=1 -run 'Chaos' ./internal/resilience/ ./internal/engine/ ./internal/cluster/

# bench runs the core benchmark ladder (flat vs generic arrays at every
# data-plane unit capacity plus the series connection, flat query paths,
# wait-free reader scaling under a live writer, engine shard scaling, tiered
# look-through hit/miss, tracing overhead) at a fixed iteration count,
# writes the machine-readable result to $(BENCH_OUT), and fails if a flat
# core is not faster than its generic oracle, if the batched flat walks miss
# the ≥1.4x bar (ns/op ≤ 0.714× generic) on unit2/unit4/series, if Query
# under a live writer degrades as readers are added (readers=8 vs readers=1
# — wait-free reads must not convoy; a lenient 1.1 bound absorbs scheduler
# noise on small hosts), if a hit path allocates (with or without tracing),
# if tracing at the default sampling rate costs more than 5% of batch
# throughput (the TraceOverhead pair runs -count=10 and benchjson keeps each
# side's fastest run, so the tight ratio gate is noise-robust), or if a hit
# path slowed by more than the -within factor against the $(BENCH_BASE)
# baseline (a generous bound that absorbs CI noise while catching real
# regressions).
#
# The netproto leg runs the wire ladder (same loopback stack at batch sizes
# 1/8/32/64) plus the isolated decode benchmark, and gates on the tentpole
# claims: the batched path must be ≥2x the single-datagram baseline
# (batch=64 ≤ 0.5× batch=1 ns/op) and per-packet decode must not allocate.
#
# The cluster leg prices the router veneer: querying a local-owner key
# through a one-node cluster.Router must cost ≤1.3× the bare engine and not
# allocate (runs -count=5, benchjson keeps each side's fastest run) — and
# the same bar holds with the full self-healing stack armed (gossip
# membership, read-repair queue + sweeper, hinted handoff): path=selfheal.
bench:
	{ $(GO) test -run '^$$' -bench 'FlatVsGeneric|FlatQuery|FlatReaders|Engine|Tiered|Breaker|Shedder' -benchmem \
		-benchtime=$(BENCH_TIME) ./internal/lru/ ./internal/engine/ ./internal/resilience/ \
	&& $(GO) test -run '^$$' -bench 'TraceOverhead' -benchmem \
		-benchtime=$(BENCH_TIME) -count=10 ./internal/engine/ \
	&& $(GO) test -run '^$$' -bench 'WireLadder|NetDecode' -benchmem \
		-benchtime=$(BENCH_NET_TIME) ./internal/netproto/ \
	&& $(GO) test -run '^$$' -bench 'ClusterRouter' -benchmem \
		-benchtime=$(BENCH_TIME) -count=5 ./internal/cluster/ ; } \
		| $(GO) run ./cmd/benchjson -o $(BENCH_OUT) \
		-faster 'FlatVsGeneric/core=flat<FlatVsGeneric/core=generic' \
		-faster 'FlatVsGeneric/core=flat-batch<FlatVsGeneric/core=generic' \
		-faster 'FlatVsGeneric2/core=flat<FlatVsGeneric2/core=generic' \
		-faster 'FlatVsGeneric4/core=flat<FlatVsGeneric4/core=generic' \
		-maxratio 'FlatVsGeneric2/core=flat-batch<=0.714*FlatVsGeneric2/core=generic' \
		-maxratio 'FlatVsGeneric4/core=flat-batch<=0.714*FlatVsGeneric4/core=generic' \
		-maxratio 'FlatVsGenericSeries/core=flat<=0.714*FlatVsGenericSeries/core=generic' \
		-maxratio 'FlatReaders/readers=8<=1.1*FlatReaders/readers=1' \
		-faster 'FlatQuery/core=flat<FlatQuery/core=generic' \
		-zeroalloc 'FlatQuery/core=flat' \
		-zeroalloc 'FlatReaders/readers=8' \
		-zeroalloc 'Tiered/op=hit' \
		-zeroalloc 'Tiered/op=hit-traced' \
		-zeroalloc 'BreakerAllow' \
		-zeroalloc 'ShedderAdmit' \
		-maxratio 'TraceOverhead/trace=on<=1.05*TraceOverhead/trace=off' \
		-maxratio 'WireLadder/batch=64<=0.5*WireLadder/batch=1' \
		-zeroalloc 'NetDecode' \
		-maxratio 'ClusterRouter/path=local<=1.3*ClusterRouter/path=single' \
		-zeroalloc 'ClusterRouter/path=local' \
		-maxratio 'ClusterRouter/path=selfheal<=1.3*ClusterRouter/path=single' \
		-zeroalloc 'ClusterRouter/path=selfheal' \
		-baseline $(BENCH_BASE) \
		-within 'EngineQuery=3' \
		-within 'FlatQuery/core=flat=3' \
		-within 'Tiered/op=hit=3'

# bench-all is the exhaustive one-iteration smoke over every benchmark.
bench-all:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

verify:
	$(GO) run ./cmd/p4lru-bench verify

reproduce:
	$(GO) run ./cmd/p4lru-bench run -csv -o results all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/natgateway
	$(GO) run ./examples/querycache
	$(GO) run ./examples/flowmonitor
	$(GO) run ./examples/pipelinecheck
	$(GO) run ./examples/netquery

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -f results/*.csv results/full_run.txt test_output.txt bench_output.txt
