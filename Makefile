GO ?= go

.PHONY: all build test race bench verify examples fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/engine/ ./internal/netproto/ ./internal/policy/ ./internal/obs/

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

verify:
	$(GO) run ./cmd/p4lru-bench verify

reproduce:
	$(GO) run ./cmd/p4lru-bench run -csv -o results all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/natgateway
	$(GO) run ./examples/querycache
	$(GO) run ./examples/flowmonitor
	$(GO) run ./examples/pipelinecheck
	$(GO) run ./examples/netquery

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -f results/*.csv results/full_run.txt test_output.txt bench_output.txt
