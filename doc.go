// Package p4lru is a from-scratch Go reproduction of "P4LRU: Towards An LRU
// Cache Entirely in Programmable Data Plane" (SIGCOMM 2023).
//
// The implementation lives under internal/: the P4LRU cache family
// (internal/lru), the Tofino-style pipeline model that validates the
// data-plane constraints (internal/pipeline), the baseline replacement
// policies (internal/policy), the three in-network systems — LruTable
// (internal/nat), LruIndex (internal/kvindex), LruMon (internal/telemetry) —
// and the experiment harness regenerating every table and figure of the
// paper's evaluation (internal/experiments).
//
// Entry points: cmd/p4lru-bench reruns the evaluation; the examples/
// directory holds runnable scenario walkthroughs; bench_test.go at the
// module root exposes one testing.B benchmark per table/figure.
package p4lru
