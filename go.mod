module github.com/p4lru/p4lru

go 1.22
