package perm_test

import (
	"fmt"

	"github.com/p4lru/p4lru/internal/perm"
)

// The paper's Example 2 (§2.2): updating the cache state by pre-multiplying
// with the inverse key-array rotation.
func ExamplePerm_Compose() {
	// After Example 1 the cache state is (1 2 3 4 5 / 4 1 2 3 5).
	s := perm.MustNew(3, 0, 1, 2, 4)
	// A full miss rotates all five keys: R = (1..5 / 2 3 4 5 1).
	rinv := perm.RotationInverse(5, 4)
	fmt.Println(rinv.Compose(s))
	// Output:
	// (1 2 3 4 5 / 5 4 1 2 3)
}

// S4 factors as coset-representative × Klein-four element — the §2.3.3
// encoding behind P4LRU4.
func ExampleDecomposeS4() {
	g := perm.MustNew(2, 3, 0, 1) // (1 2 3 4 / 3 4 1 2)
	d := perm.DecomposeS4(g)
	fmt.Printf("S3 part %v, V4 index %d\n", d.K, d.H)
	fmt.Println("recomposed:", d.Recompose())
	// Output:
	// S3 part (1 2 3 / 1 2 3), V4 index 2
	// recomposed: (1 2 3 4 / 3 4 1 2)
}
