package perm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentity(t *testing.T) {
	for n := 1; n <= 6; n++ {
		p := Identity(n)
		if !p.IsIdentity() {
			t.Errorf("Identity(%d) not identity: %v", n, p)
		}
		if p.Len() != n {
			t.Errorf("Identity(%d).Len() = %d", n, p.Len())
		}
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		images []int
		ok     bool
	}{
		{[]int{0}, true},
		{[]int{0, 1, 2}, true},
		{[]int{2, 0, 1}, true},
		{[]int{0, 0, 1}, false},
		{[]int{0, 3, 1}, false},
		{[]int{-1, 0, 1}, false},
	}
	for _, c := range cases {
		_, err := New(c.images...)
		if (err == nil) != c.ok {
			t.Errorf("New(%v) err=%v, want ok=%v", c.images, err, c.ok)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with invalid input did not panic")
		}
	}()
	MustNew(0, 0)
}

// TestComposePaperConvention checks the paper's footnote-2 convention with
// the worked Example 2 of §2.2:
//
//	(1 2 3 4 5 / 5 1 2 3 4) × (1 2 3 4 5 / 4 1 2 3 5) = (1 2 3 4 5 / 5 4 1 2 3)
func TestComposePaperConvention(t *testing.T) {
	a := MustNew(4, 0, 1, 2, 3)
	b := MustNew(3, 0, 1, 2, 4)
	want := MustNew(4, 3, 0, 1, 2)
	if got := a.Compose(b); !got.Equal(want) {
		t.Errorf("a×b = %v, want %v", got, want)
	}
}

// TestComposeExample1 checks the paper's worked Example 1 of §2.2:
// R^-1 × identity = R^-1 with R^-1 = (1 2 3 4 5 / 4 1 2 3 5).
func TestComposeExample1(t *testing.T) {
	rinv := RotationInverse(5, 3) // hit at 1-based position 4
	want := MustNew(3, 0, 1, 2, 4)
	if !rinv.Equal(want) {
		t.Fatalf("RotationInverse(5,3) = %v, want %v", rinv, want)
	}
	got := rinv.Compose(Identity(5))
	if !got.Equal(want) {
		t.Errorf("R^-1 × id = %v, want %v", got, want)
	}
}

func TestInverse(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for _, p := range All(n) {
			if !p.Compose(p.Inverse()).IsIdentity() {
				t.Errorf("p×p^-1 != id for %v", p)
			}
			if !p.Inverse().Compose(p).IsIdentity() {
				t.Errorf("p^-1×p != id for %v", p)
			}
		}
	}
}

func TestRotationInverseMatchesInverse(t *testing.T) {
	for n := 1; n <= 6; n++ {
		for i := 0; i < n; i++ {
			r := Rotation(n, i)
			if got, want := RotationInverse(n, i), r.Inverse(); !got.Equal(want) {
				t.Errorf("RotationInverse(%d,%d) = %v, want %v", n, i, got, want)
			}
		}
	}
}

func TestRotationShape(t *testing.T) {
	// Rotation(5, 3) should map 0→1, 1→2, 2→3, 3→0, 4→4
	// (paper: (1 2 3 4 5 / 2 3 4 1 5), 1-based).
	want := MustNew(1, 2, 3, 0, 4)
	if got := Rotation(5, 3); !got.Equal(want) {
		t.Errorf("Rotation(5,3) = %v, want %v", got, want)
	}
	// Full-miss rotation: every position shifts, last wraps to front.
	want = MustNew(1, 2, 3, 4, 0)
	if got := Rotation(5, 4); !got.Equal(want) {
		t.Errorf("Rotation(5,4) = %v, want %v", got, want)
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	for n := 1; n <= 6; n++ {
		for r := 0; r < Factorial(n); r++ {
			p := Unrank(n, r)
			if got := p.Rank(); got != r {
				t.Errorf("n=%d: Unrank(%d).Rank() = %d", n, r, got)
			}
		}
	}
}

func TestRankIdentityIsZero(t *testing.T) {
	for n := 1; n <= 6; n++ {
		if got := Identity(n).Rank(); got != 0 {
			t.Errorf("Identity(%d).Rank() = %d", n, got)
		}
	}
}

func TestAllDistinct(t *testing.T) {
	for n := 1; n <= 5; n++ {
		all := All(n)
		if len(all) != Factorial(n) {
			t.Fatalf("All(%d) has %d elements, want %d", n, len(all), Factorial(n))
		}
		seen := map[string]bool{}
		for _, p := range all {
			s := p.String()
			if seen[s] {
				t.Errorf("All(%d) repeats %v", n, p)
			}
			seen[s] = true
		}
	}
}

func TestParity(t *testing.T) {
	cases := []struct {
		p    Perm
		want int
	}{
		{Identity(3), 0},
		{MustNew(1, 0, 2), 1}, // single transposition
		{MustNew(1, 2, 0), 0}, // 3-cycle
		{MustNew(1, 0, 3, 2), 0},
		{MustNew(0, 1, 3, 2), 1},
	}
	for _, c := range cases {
		if got := c.p.Parity(); got != c.want {
			t.Errorf("Parity(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestParityHomomorphism(t *testing.T) {
	// parity(a×b) = parity(a) XOR parity(b) for all of S4.
	all := All(4)
	for _, a := range all {
		for _, b := range all {
			if got, want := a.Compose(b).Parity(), a.Parity()^b.Parity(); got != want {
				t.Fatalf("parity(%v × %v) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestOrder(t *testing.T) {
	if got := Identity(4).Order(); got != 1 {
		t.Errorf("order(id) = %d", got)
	}
	if got := MustNew(1, 0, 2).Order(); got != 2 {
		t.Errorf("order(transposition) = %d", got)
	}
	if got := MustNew(1, 2, 0).Order(); got != 3 {
		t.Errorf("order(3-cycle) = %d", got)
	}
	if got := MustNew(1, 2, 3, 0).Order(); got != 4 {
		t.Errorf("order(4-cycle) = %d", got)
	}
}

func TestString(t *testing.T) {
	p := MustNew(1, 0, 2)
	if got, want := p.String(), "(1 2 3 / 2 1 3)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestCloneIndependent(t *testing.T) {
	p := MustNew(1, 0, 2)
	q := p.Clone()
	q[0] = 2
	if p[0] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func randomPerm(r *rand.Rand, n int) Perm {
	p := Identity(n)
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Property: composition is associative.
func TestComposeAssociativeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%6) + 1
		rr := rand.New(rand.NewSource(seed))
		a, b, c := randomPerm(rr, n), randomPerm(rr, n), randomPerm(rr, n)
		return a.Compose(b).Compose(c).Equal(a.Compose(b.Compose(c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Error(err)
	}
}

// Property: Rank/Unrank are mutually inverse on random permutations.
func TestRankUnrankProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%6) + 1
		rr := rand.New(rand.NewSource(seed))
		p := randomPerm(rr, n)
		return Unrank(n, p.Rank()).Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestV4IsSubgroup(t *testing.T) {
	for i, a := range V4Elements {
		for j, b := range V4Elements {
			c := a.Compose(b)
			idx := v4Index(c)
			if idx < 0 {
				t.Fatalf("V4 not closed: %v × %v = %v", a, b, c)
			}
			// Composition on indices must be XOR (C2 × C2 structure).
			if idx != i^j {
				t.Errorf("V4 index %d × %d = %d, want %d", i, j, idx, i^j)
			}
		}
	}
}

func TestV4IsNormal(t *testing.T) {
	for _, g := range All(4) {
		for h := range V4Elements {
			ConjV4Index(h, g) // panics if conjugate leaves V4
		}
	}
}

func TestDecomposeS4RoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for _, g := range All(4) {
		d := DecomposeS4(g)
		if !d.Recompose().Equal(g) {
			t.Errorf("Recompose(Decompose(%v)) = %v", g, d.Recompose())
		}
		key := d.K.String() + "|" + string(rune('0'+d.H))
		if seen[key] {
			t.Errorf("decomposition not unique: pair %v repeated", key)
		}
		seen[key] = true
	}
	if len(seen) != 24 {
		t.Errorf("expected 24 distinct (k,h) pairs, got %d", len(seen))
	}
}

func TestQuotientS4Homomorphism(t *testing.T) {
	all := All(4)
	for _, a := range all {
		for _, b := range all {
			got := QuotientS4(a.Compose(b))
			want := QuotientS4(a).Compose(QuotientS4(b))
			if !got.Equal(want) {
				t.Fatalf("φ(%v × %v) = %v, want φ(a)×φ(b) = %v", a, b, got, want)
			}
		}
	}
}

func TestLeftMulS4PairMatchesDirect(t *testing.T) {
	all := All(4)
	for _, a := range all {
		for _, g := range all {
			d := DecomposeS4(g)
			k2, h2 := LeftMulS4Pair(a, d.K, d.H)
			want := DecomposeS4(a.Compose(g))
			if !k2.Equal(want.K) || h2 != want.H {
				t.Fatalf("LeftMulS4Pair(%v, %v, %d) = (%v,%d), want (%v,%d)",
					a, d.K, d.H, k2, h2, want.K, want.H)
			}
		}
	}
}

func TestLeftMulTableS3(t *testing.T) {
	// Left multiplication by the identity is the identity table.
	tab := LeftMulTableS3(Identity(3))
	for i, v := range tab {
		if v != i {
			t.Errorf("identity table[%d] = %d", i, v)
		}
	}
	// Left multiplication tables are permutations of {0..5}.
	for _, m := range All(3) {
		tab := LeftMulTableS3(m)
		seen := [6]bool{}
		for _, v := range tab {
			if v < 0 || v > 5 || seen[v] {
				t.Fatalf("table for %v is not a permutation: %v", m, tab)
			}
			seen[v] = true
		}
	}
}

func TestEmbedS3(t *testing.T) {
	for _, k := range All(3) {
		g := EmbedS3(k)
		if g[3] != 3 {
			t.Errorf("EmbedS3(%v) does not fix 3: %v", k, g)
		}
		if got := QuotientS4(g); !got.Equal(k) {
			t.Errorf("φ(EmbedS3(%v)) = %v, want %v", k, got, k)
		}
	}
}
