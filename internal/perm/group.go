package perm

import "fmt"

// This file implements the group-theoretic machinery of the paper's §2.3.3:
// the Klein four-group V4 inside S4, the quotient isomorphism S4/V4 ≅ S3,
// and the unique factorization g = r(k)·h (k ∈ S3, h ∈ V4) that lets a
// P4LRU4 cache state be stored as a (S3 code, 2-bit V4 code) pair.
//
// Throughout, "·" is the package's Compose convention ((a·b)(i) = b(a(i))).

// V4Elements lists the Klein four-group inside S4: the identity and the three
// double transpositions. Index 0 is the identity; the three non-identity
// elements are indexed so that composition acts as XOR on indices
// (V4 ≅ C2 × C2).
var V4Elements = [4]Perm{
	MustNew(0, 1, 2, 3), // e
	MustNew(1, 0, 3, 2), // (01)(23)
	MustNew(2, 3, 0, 1), // (02)(13)
	MustNew(3, 2, 1, 0), // (03)(12)
}

// v4Index returns the index of g in V4Elements, or -1 if g ∉ V4.
func v4Index(g Perm) int {
	for i, h := range V4Elements {
		if g.Equal(h) {
			return i
		}
	}
	return -1
}

// EmbedS3 lifts a permutation of {0,1,2} to the subgroup of S4 fixing 3.
// This subgroup is a transversal of V4 in S4 (it meets each coset exactly
// once), so it serves as the coset-representative map r(·).
func EmbedS3(p Perm) Perm {
	if len(p) != 3 {
		panic(fmt.Sprintf("perm: EmbedS3 requires size 3, got %d", len(p)))
	}
	return Perm{p[0], p[1], p[2], 3}
}

// S4Decomposition is the factorization g = r(k) · h with k ∈ S3 (embedded as
// the stabilizer of 3) and h ∈ V4, which is unique because the stabilizer
// meets every V4-coset exactly once.
type S4Decomposition struct {
	K Perm // element of S3 (size 3)
	H int  // index into V4Elements
}

// DecomposeS4 factors g ∈ S4 as r(K)·H. It panics if g is not a size-4
// permutation.
func DecomposeS4(g Perm) S4Decomposition {
	if len(g) != 4 {
		panic(fmt.Sprintf("perm: DecomposeS4 requires size 4, got %d", len(g)))
	}
	// Try each of the six coset representatives; exactly one yields
	// r^-1 · g ∈ V4.
	for r := 0; r < 6; r++ {
		k := Unrank(3, r)
		rep := EmbedS3(k)
		h := rep.Inverse().Compose(g)
		if idx := v4Index(h); idx >= 0 {
			return S4Decomposition{K: k, H: idx}
		}
	}
	panic("perm: DecomposeS4: no factorization found (unreachable)")
}

// Recompose inverts DecomposeS4: it returns r(K) · V4Elements[H].
func (d S4Decomposition) Recompose() Perm {
	return EmbedS3(d.K).Compose(V4Elements[d.H])
}

// QuotientS4 is the canonical surjection S4 → S4/V4 ≅ S3 realized through the
// factorization: QuotientS4(g) = K where g = r(K)·h.
func QuotientS4(g Perm) Perm { return DecomposeS4(g).K }

// LeftMulTableS3 returns, for a fixed left multiplier m ∈ S3, the table
// t[rank(k)] = rank(m·k) describing left multiplication on lexicographic
// ranks. P4LRU-style state machines store such tables in tiny SALU lookup
// tables (≤16 entries on Tofino).
func LeftMulTableS3(m Perm) [6]int {
	if len(m) != 3 {
		panic(fmt.Sprintf("perm: LeftMulTableS3 requires size 3, got %d", len(m)))
	}
	var t [6]int
	for r := 0; r < 6; r++ {
		k := Unrank(3, r)
		t[r] = m.Compose(k).Rank()
	}
	return t
}

// ConjV4Index returns the index of s^-1 · V4Elements[h] · s, the conjugation
// action of s ∈ S4 on V4 (well-defined because V4 ⊴ S4). Conjugation permutes
// the three non-identity elements, so on indices it is a permutation of
// {1,2,3} fixing 0.
func ConjV4Index(h int, s Perm) int {
	if len(s) != 4 {
		panic(fmt.Sprintf("perm: ConjV4Index requires size-4 conjugator, got %d", len(s)))
	}
	c := s.Inverse().Compose(V4Elements[h]).Compose(s)
	idx := v4Index(c)
	if idx < 0 {
		panic("perm: ConjV4Index: conjugate left V4 (V4 not normal?)")
	}
	return idx
}

// LeftMulS4Pair computes, entirely in the (S3 code, V4 index) coordinates,
// the pair encoding of a·g given a fixed left multiplier a ∈ S4 and
// g = r(k)·h:
//
//	a·g = a·r(k)·h = r(k')·h'·h,   where a·r(k) = r(k')·h'
//	    = r(k')·(h'·h)
//
// so the S3 part maps k ↦ k' = φ(a)·k and the V4 part XORs in a correction
// h' that depends only on (a, k). This is exactly the structure the paper
// sketches for implementing P4LRU4 with data-plane arithmetic: an S3 state
// machine (as in P4LRU3) plus a 2-bit XOR whose operand comes from a tiny
// table keyed by the operation and current S3 code.
func LeftMulS4Pair(a Perm, k Perm, h int) (Perm, int) {
	if len(a) != 4 {
		panic(fmt.Sprintf("perm: LeftMulS4Pair requires size-4 multiplier, got %d", len(a)))
	}
	d := DecomposeS4(a.Compose(EmbedS3(k)))
	// h'·h in V4 is XOR of indices.
	return d.K, d.H ^ h
}
