// Package perm implements the permutation algebra underlying the P4LRU cache
// state (the DFA S_lru of the paper's §2.2–§2.3).
//
// A Perm represents an element of the symmetric group S_n in one-line
// notation: p[i] is the (0-based) image of position i. In the paper's
// two-row notation
//
//	S = ( 1   2  ...  n )
//	    (p_1 p_2 ... p_n)
//
// the Perm value stores p_1-1, p_2-1, ..., p_n-1.
//
// The paper composes permutations with the convention
//
//	(A × B)(i) = B(A(i))
//
// (footnote 2 of the paper); Compose follows that convention.
package perm

import (
	"fmt"
	"strings"
)

// Perm is a permutation of {0, ..., n-1} in one-line notation.
type Perm []int

// Identity returns the identity permutation of size n.
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// New validates one-line notation and returns it as a Perm.
// It returns an error if images are out of range or repeated.
func New(images ...int) (Perm, error) {
	seen := make([]bool, len(images))
	for _, v := range images {
		if v < 0 || v >= len(images) {
			return nil, fmt.Errorf("perm: image %d out of range [0,%d)", v, len(images))
		}
		if seen[v] {
			return nil, fmt.Errorf("perm: image %d repeated", v)
		}
		seen[v] = true
	}
	p := make(Perm, len(images))
	copy(p, images)
	return p, nil
}

// MustNew is New but panics on invalid input. For tests and constants.
func MustNew(images ...int) Perm {
	p, err := New(images...)
	if err != nil {
		panic(err)
	}
	return p
}

// Len returns the permutation size n.
func (p Perm) Len() int { return len(p) }

// Apply returns the image of position i.
func (p Perm) Apply(i int) int { return p[i] }

// Clone returns a copy of p.
func (p Perm) Clone() Perm {
	q := make(Perm, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q are the same permutation.
func (p Perm) Equal(q Perm) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// IsIdentity reports whether p is the identity.
func (p Perm) IsIdentity() bool {
	for i, v := range p {
		if v != i {
			return false
		}
	}
	return true
}

// Compose returns p × q under the paper's convention: (p × q)(i) = q(p(i)).
func (p Perm) Compose(q Perm) Perm {
	if len(p) != len(q) {
		panic(fmt.Sprintf("perm: compose size mismatch %d vs %d", len(p), len(q)))
	}
	r := make(Perm, len(p))
	for i := range p {
		r[i] = q[p[i]]
	}
	return r
}

// Inverse returns p^-1.
func (p Perm) Inverse() Perm {
	r := make(Perm, len(p))
	for i, v := range p {
		r[v] = i
	}
	return r
}

// Parity returns 0 for even permutations and 1 for odd ones.
// The paper's P4LRU3 encoding maps even permutations to even codes.
func (p Perm) Parity() int {
	visited := make([]bool, len(p))
	parity := 0
	for i := range p {
		if visited[i] {
			continue
		}
		// Walk the cycle containing i; a cycle of length L contributes L-1
		// transpositions.
		cycleLen := 0
		for j := i; !visited[j]; j = p[j] {
			visited[j] = true
			cycleLen++
		}
		parity ^= (cycleLen - 1) & 1
	}
	return parity
}

// Rotation returns the paper's step-1 key-array rotation R for a hit at
// (0-based) position i:
//
//	R = (1 2 ... i-1  i  i+1 ... n)   (1-based, paper notation)
//	    (2 3 ...  i   1  i+1 ... n)
//
// i.e. positions 0..i rotate forward by one and position i maps to 0.
func Rotation(n, i int) Perm {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("perm: rotation position %d out of range [0,%d)", i, n))
	}
	r := make(Perm, n)
	for j := 0; j < i; j++ {
		r[j] = j + 1
	}
	r[i] = 0
	for j := i + 1; j < n; j++ {
		r[j] = j
	}
	return r
}

// RotationInverse returns R^-1 for Rotation(n, i); this is the permutation
// the paper pre-multiplies the cache state by in Step 2:
//
//	R^-1 = (1 2 ...  i  i+1 ... n)   (1-based)
//	       (i 1 ... i-1 i+1 ... n)
func RotationInverse(n, i int) Perm {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("perm: rotation position %d out of range [0,%d)", i, n))
	}
	r := make(Perm, n)
	r[0] = i
	for j := 1; j <= i; j++ {
		r[j] = j - 1
	}
	for j := i + 1; j < n; j++ {
		r[j] = j
	}
	return r
}

// Rank returns the lexicographic rank of p among all permutations of its
// size, using the Lehmer code. Identity has rank 0; ranks are in [0, n!).
func (p Perm) Rank() int {
	n := len(p)
	rank := 0
	fact := factorial(n - 1)
	// Count, for each position, how many smaller unused images remain.
	used := make([]bool, n)
	for i := 0; i < n; i++ {
		smaller := 0
		for v := 0; v < p[i]; v++ {
			if !used[v] {
				smaller++
			}
		}
		rank += smaller * fact
		used[p[i]] = true
		if i < n-1 {
			fact /= n - 1 - i
		}
	}
	return rank
}

// Unrank returns the permutation of size n with lexicographic rank r.
func Unrank(n, r int) Perm {
	if f := factorial(n); r < 0 || r >= f {
		panic(fmt.Sprintf("perm: rank %d out of range [0,%d)", r, f))
	}
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	p := make(Perm, n)
	fact := factorial(n - 1)
	for i := 0; i < n; i++ {
		idx := 0
		if fact > 0 {
			idx = r / fact
			r %= fact
		}
		p[i] = avail[idx]
		avail = append(avail[:idx], avail[idx+1:]...)
		if i < n-1 {
			fact /= n - 1 - i
		}
	}
	return p
}

// All returns every permutation of size n in lexicographic order.
// It is intended for the small n (≤ 5) used by P4LRU state machines.
func All(n int) []Perm {
	f := factorial(n)
	out := make([]Perm, 0, f)
	for r := 0; r < f; r++ {
		out = append(out, Unrank(n, r))
	}
	return out
}

// Order returns the order of p in the symmetric group (the smallest k ≥ 1
// with p^k = identity).
func (p Perm) Order() int {
	order := 1
	q := p.Clone()
	for !q.IsIdentity() {
		q = q.Compose(p)
		order++
	}
	return order
}

// String renders p in the paper's two-row style, 1-based: e.g. "(1 2 3 / 2 1 3)".
func (p Perm) String() string {
	var top, bot strings.Builder
	for i, v := range p {
		if i > 0 {
			top.WriteByte(' ')
			bot.WriteByte(' ')
		}
		fmt.Fprintf(&top, "%d", i+1)
		fmt.Fprintf(&bot, "%d", v+1)
	}
	return "(" + top.String() + " / " + bot.String() + ")"
}

func factorial(n int) int {
	f := 1
	for i := 2; i <= n; i++ {
		f *= i
	}
	return f
}

// Factorial exposes n! for sizing state tables of P4LRUn.
func Factorial(n int) int { return factorial(n) }
