package trace_test

import (
	"bytes"
	"fmt"
	"time"

	"github.com/p4lru/p4lru/internal/trace"
)

// Synthesize builds a reproducible CAIDA_n-like workload; higher n churns
// the flow population faster (the paper's concurrency knob).
func ExampleSynthesize() {
	tr := trace.Synthesize(trace.SynthConfig{
		Packets:   50_000,
		BaseFlows: 5_000,
		Segments:  10, // CAIDA_10
		Duration:  time.Second,
		Seed:      42,
	})
	st := trace.ComputeStats(tr)
	fmt.Printf("packets=%d flows>%d sorted=%v\n",
		st.Packets, 5000, tr.Packets[0].Time <= tr.Packets[1].Time)
	// Output:
	// packets=50000 flows>5000 sorted=true
}

// Traces round-trip through the compact binary format.
func ExampleWrite() {
	tr := trace.Synthesize(trace.SynthConfig{Packets: 1000, BaseFlows: 100, Seed: 7})
	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		panic(err)
	}
	again, err := trace.Read(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println("restored packets:", len(again.Packets) == len(tr.Packets))
	// Output:
	// restored packets: true
}
