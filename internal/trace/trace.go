// Package trace provides the workloads of the paper's evaluation: a seeded
// synthetic substitute for the CAIDA 2018 anonymized traces (including the
// CAIDA_n concurrency-scaling construction of §4) and the Zipf-distributed
// query workloads used by LruIndex (YCSB-style, α = 0.9).
//
// The real CAIDA traces are licensed data we cannot ship; the experiments
// depend on two properties the generator reproduces explicitly: heavy-tailed
// flow sizes (a few elephant flows carry most packets) and a tunable number
// of concurrent flows (the CAIDA_n construction splices 1/n minutes from n
// distinct one-minute segments, so the flow population turns over n times
// within the trace).
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Packet is one trace record. Flow identifies the 5-tuple (already hashed to
// 64 bits, as a data plane would after parsing); Size is the wire length in
// bytes; Time is an offset from the trace start.
type Packet struct {
	Time time.Duration
	Flow uint64
	Size uint16
}

// Trace is an ordered packet sequence.
type Trace struct {
	Packets []Packet
}

// SynthConfig parameterizes Synthesize.
type SynthConfig struct {
	// Packets is the total packet budget (the paper's datasets hold ≈2.6e7;
	// simulations here default to less and scale linearly).
	Packets int
	// BaseFlows is the flow population of a single segment (CAIDA_1).
	BaseFlows int
	// Segments is the CAIDA_n parameter n ≥ 1: the trace is the
	// concatenation of n equal slices, each drawn from an independent flow
	// population, so higher n means faster working-set turnover and more
	// distinct flows overall.
	Segments int
	// Duration is the total trace duration (CAIDA_n always spans one
	// minute in the paper; §4.2 rescales it to one second — set whatever
	// the experiment needs).
	Duration time.Duration
	// ZipfSkew shapes the flow-size distribution (s > 1; the heavy tail
	// that makes caching worthwhile). 0 selects the default 1.05.
	ZipfSkew float64
	// Seed makes the trace reproducible.
	Seed int64
}

func (c *SynthConfig) withDefaults() SynthConfig {
	out := *c
	if out.Packets <= 0 {
		out.Packets = 1_000_000
	}
	if out.BaseFlows <= 0 {
		out.BaseFlows = 50_000
	}
	if out.Segments <= 0 {
		out.Segments = 1
	}
	if out.Duration <= 0 {
		out.Duration = time.Minute
	}
	if out.ZipfSkew == 0 {
		out.ZipfSkew = 1.05
	}
	return out
}

// Synthesize builds a CAIDA_n-like trace. Deterministic for a given config.
//
// Construction, mirroring §4's description: the trace is split into
// cfg.Segments equal time slices. Slice i draws a fresh flow population
// (flow IDs never repeat across slices) whose size follows the paper's
// observation that total flows grow sub-linearly with n (≈ n^0.15: CAIDA_1
// has 1.3e6 flows, CAIDA_60 2.4e6). Within a slice, flow sizes are Zipf
// distributed, each flow is active over a contiguous sub-interval, and its
// packets arrive uniformly within that interval.
func Synthesize(cfg SynthConfig) *Trace {
	c := cfg.withDefaults()
	rng := rand.New(rand.NewSource(c.Seed))

	// Total flows across the trace ≈ BaseFlows × n^0.15, split evenly.
	totalFlows := int(float64(c.BaseFlows) * math.Pow(float64(c.Segments), 0.15))
	if totalFlows < c.Segments {
		totalFlows = c.Segments
	}
	flowsPerSeg := totalFlows / c.Segments
	if flowsPerSeg < 1 {
		flowsPerSeg = 1
	}
	pktsPerSeg := c.Packets / c.Segments
	segDur := c.Duration / time.Duration(c.Segments)

	packets := make([]Packet, 0, c.Packets)
	var nextFlowID uint64 = 1

	for seg := 0; seg < c.Segments; seg++ {
		segStart := time.Duration(seg) * segDur

		// Zipf flow weights. rand.Zipf draws flow *indices* with the
		// heavy-tailed popularity; we invert that into per-flow packet
		// counts by sampling which flow each packet belongs to.
		zipf := rand.NewZipf(rng, c.ZipfSkew, 1, uint64(flowsPerSeg-1))
		counts := make([]int, flowsPerSeg)
		for p := 0; p < pktsPerSeg; p++ {
			counts[zipf.Uint64()]++
		}

		for f := 0; f < flowsPerSeg; f++ {
			n := counts[f]
			if n == 0 {
				continue
			}
			id := nextFlowID
			nextFlowID++

			// Flows persist across much of their slice (CAIDA flows span
			// seconds even after the §4.2 rescale); elephants longer than
			// mice. Active fraction grows with log size.
			frac := 0.25 + 0.55*math.Log1p(float64(n))/math.Log1p(float64(pktsPerSeg))
			if frac > 1 {
				frac = 1
			}
			active := time.Duration(float64(segDur) * frac)
			if active < time.Microsecond {
				active = time.Microsecond
			}
			var start time.Duration
			if segDur > active {
				start = time.Duration(rng.Int63n(int64(segDur - active)))
			}

			size := packetSize(rng, n)
			for p := 0; p < n; p++ {
				t := segStart + start + time.Duration(rng.Int63n(int64(active)))
				packets = append(packets, Packet{Time: t, Flow: id, Size: size(p)})
			}
		}
	}

	sort.Slice(packets, func(i, j int) bool {
		if packets[i].Time != packets[j].Time {
			return packets[i].Time < packets[j].Time
		}
		return packets[i].Flow < packets[j].Flow
	})
	return &Trace{Packets: packets}
}

// packetSize returns a per-packet size generator for a flow of n packets:
// bulk (elephant) flows run mostly full-size frames, small flows mostly
// minimum-size ones — the bimodal mix of real internet traffic.
func packetSize(rng *rand.Rand, n int) func(i int) uint16 {
	bulky := n >= 16
	r := rand.New(rand.NewSource(rng.Int63()))
	return func(i int) uint16 {
		switch {
		case bulky && r.Intn(10) < 7:
			return 1500
		case !bulky && r.Intn(10) < 6:
			return 64
		default:
			return uint16(64 + r.Intn(1437))
		}
	}
}

// Stats summarizes a trace.
type Stats struct {
	Packets       int
	Flows         int
	TotalBytes    int64
	Duration      time.Duration
	MaxConcurrent int // peak number of flows active within a 100ms window
}

// ComputeStats scans the trace once. "Concurrent" counts flows with at least
// one packet inside a sliding 100ms window, matching the paper's use of
// concurrency as the count of simultaneously live flows.
func ComputeStats(tr *Trace) Stats {
	var s Stats
	s.Packets = len(tr.Packets)
	flows := make(map[uint64]struct{})
	for _, p := range tr.Packets {
		flows[p.Flow] = struct{}{}
		s.TotalBytes += int64(p.Size)
		if p.Time > s.Duration {
			s.Duration = p.Time
		}
	}
	s.Flows = len(flows)

	const window = 100 * time.Millisecond
	active := make(map[uint64]time.Duration) // flow → last seen
	lo := 0
	for hi, p := range tr.Packets {
		active[p.Flow] = p.Time
		for lo < hi && tr.Packets[lo].Time < p.Time-window {
			old := tr.Packets[lo]
			if last, ok := active[old.Flow]; ok && last < p.Time-window {
				delete(active, old.Flow)
			}
			lo++
		}
		if len(active) > s.MaxConcurrent {
			s.MaxConcurrent = len(active)
		}
	}
	return s
}

// String renders the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf("packets=%d flows=%d bytes=%d duration=%v maxConcurrent=%d",
		s.Packets, s.Flows, s.TotalBytes, s.Duration, s.MaxConcurrent)
}

// ZipfKeys draws count keys from a Zipf(skew) distribution over [0, items) —
// the LruIndex query workload. The paper generates queries with YCSB's Zipf
// at skewness α = 0.9; math/rand's Zipf requires s > 1, so callers pass the
// closest admissible skew (the experiments use 1.1, which matches YCSB's
// observed head concentration closely). Deterministic per seed.
func ZipfKeys(items int, skew float64, count int, seed int64) []uint64 {
	if items < 2 {
		panic(fmt.Sprintf("trace: ZipfKeys with %d items", items))
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, skew, 1, uint64(items-1))
	keys := make([]uint64, count)
	for i := range keys {
		keys[i] = z.Uint64()
	}
	return keys
}
