package trace

import (
	"bytes"
	"testing"
)

// FuzzRead drives the trace decoder with arbitrary bytes: it must never
// panic and never return both a trace and an error.
func FuzzRead(f *testing.F) {
	// Seed corpus: a valid tiny trace, a truncation of it, and junk.
	tr := Synthesize(SynthConfig{Packets: 50, BaseFlows: 10, Seed: 1})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("P4LT garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err == nil && got == nil {
			t.Fatal("nil trace with nil error")
		}
		if err == nil {
			// A decoded trace must re-encode cleanly.
			var out bytes.Buffer
			if werr := Write(&out, got); werr != nil {
				t.Fatalf("decoded trace fails to encode: %v", werr)
			}
		}
	})
}
