package trace

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"testing"
)

// headerWithCount builds a structurally valid P4LT header claiming count
// records, followed by body (which may be empty or truncated) — the corrupt
// shape that must not translate into a giant upfront allocation.
func headerWithCount(count uint64, body []byte) []byte {
	head := make([]byte, 4+12)
	copy(head, "P4LT")
	binary.LittleEndian.PutUint16(head[4:6], 1)
	binary.LittleEndian.PutUint64(head[8:16], count)
	return append(head, body...)
}

// FuzzRead drives the trace decoder with arbitrary bytes: it must never
// panic and never return both a trace and an error.
func FuzzRead(f *testing.F) {
	// Seed corpus: a valid tiny trace, a truncation of it, and junk.
	tr := Synthesize(SynthConfig{Packets: 50, BaseFlows: 10, Seed: 1})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("P4LT garbage"))
	f.Add([]byte{})
	// Absurd-count headers: a valid header claiming up to the 2^31 record
	// limit with no (or one) record behind it. Read must fail on the missing
	// records without preallocating gigabytes first.
	f.Add(headerWithCount(1<<31, nil))
	f.Add(headerWithCount(1<<31-1, []byte{0, 1, 1}))
	f.Add(headerWithCount(1<<31+1, nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err == nil && got == nil {
			t.Fatal("nil trace with nil error")
		}
		if err == nil {
			// A decoded trace must re-encode cleanly.
			var out bytes.Buffer
			if werr := Write(&out, got); werr != nil {
				t.Fatalf("decoded trace fails to encode: %v", werr)
			}
		}
	})
}

// TestReadCapsPrealloc pins the corrupt-header defence: a header claiming
// the maximum record count with a near-empty body must fail fast without
// Read allocating anywhere near count×sizeof(Packet) up front.
func TestReadCapsPrealloc(t *testing.T) {
	for _, count := range []uint64{1 << 31, 1<<31 - 1, maxPrealloc + 1} {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		if _, err := Read(bytes.NewReader(headerWithCount(count, []byte{0, 1, 1}))); err == nil {
			t.Fatalf("count %d with one record decoded without error", count)
		}
		runtime.ReadMemStats(&after)
		// The capped preallocation is ~24MiB; the uncapped one for these
		// counts would be tens of GiB.
		if grew := after.TotalAlloc - before.TotalAlloc; grew > 64<<20 {
			t.Fatalf("count %d allocated %dMiB before failing", count, grew>>20)
		}
	}
	tr, err := Read(bytes.NewReader(headerWithCount(3, []byte{0, 1, 1, 0, 2, 1, 0, 3, 1})))
	if err != nil {
		t.Fatalf("valid 3-record trace failed: %v", err)
	}
	if got := cap(tr.Packets); got > maxPrealloc {
		t.Fatalf("3-record trace preallocated capacity %d", got)
	}
	if len(tr.Packets) != 3 {
		t.Fatalf("decoded %d packets, want 3", len(tr.Packets))
	}
}
