package trace

import (
	"bytes"
	"errors"
	"math"
	"sort"
	"testing"
	"time"
)

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := SynthConfig{Packets: 20000, BaseFlows: 2000, Segments: 4, Seed: 1}
	a := Synthesize(cfg)
	b := Synthesize(cfg)
	if len(a.Packets) != len(b.Packets) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Packets), len(b.Packets))
	}
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			t.Fatalf("packet %d differs: %+v vs %+v", i, a.Packets[i], b.Packets[i])
		}
	}
}

func TestSynthesizeSeedsDiffer(t *testing.T) {
	a := Synthesize(SynthConfig{Packets: 5000, BaseFlows: 500, Seed: 1})
	b := Synthesize(SynthConfig{Packets: 5000, BaseFlows: 500, Seed: 2})
	same := 0
	for i := range a.Packets {
		if i < len(b.Packets) && a.Packets[i] == b.Packets[i] {
			same++
		}
	}
	if same > len(a.Packets)/10 {
		t.Errorf("different seeds share %d/%d identical packets", same, len(a.Packets))
	}
}

func TestSynthesizeSorted(t *testing.T) {
	tr := Synthesize(SynthConfig{Packets: 30000, BaseFlows: 3000, Segments: 6, Seed: 3})
	if !sort.SliceIsSorted(tr.Packets, func(i, j int) bool {
		return tr.Packets[i].Time < tr.Packets[j].Time
	}) {
		t.Error("trace not sorted by time")
	}
	last := tr.Packets[len(tr.Packets)-1].Time
	if last > time.Minute {
		t.Errorf("last packet at %v exceeds default duration", last)
	}
}

func TestSynthesizePacketBudget(t *testing.T) {
	for _, segs := range []int{1, 4, 60} {
		tr := Synthesize(SynthConfig{Packets: 60000, BaseFlows: 5000, Segments: segs, Seed: 4})
		got := len(tr.Packets)
		if got < 59000 || got > 61000 {
			t.Errorf("segments=%d: %d packets, want ≈60000", segs, got)
		}
	}
}

// TestCAIDAnProperties reproduces the two documented CAIDA_n trends: total
// flows grow sub-linearly with n, and the flow population turns over faster
// (more flows in the same duration with the same packet budget).
func TestCAIDAnProperties(t *testing.T) {
	stats := map[int]Stats{}
	for _, n := range []int{1, 15, 60} {
		tr := Synthesize(SynthConfig{Packets: 200000, BaseFlows: 10000, Segments: n, Seed: 5})
		stats[n] = ComputeStats(tr)
	}
	if !(stats[60].Flows > stats[15].Flows && stats[15].Flows > stats[1].Flows) {
		t.Errorf("flow counts not increasing with n: %d, %d, %d",
			stats[1].Flows, stats[15].Flows, stats[60].Flows)
	}
	ratio := float64(stats[60].Flows) / float64(stats[1].Flows)
	// Paper: 1.3e6 → 2.4e6 (≈1.85×). Sub-linear: far below 60×.
	if ratio < 1.3 || ratio > 4 {
		t.Errorf("flow growth CAIDA_60/CAIDA_1 = %.2f, want ≈1.5–3", ratio)
	}
}

// TestHeavyTail: the top 1% of flows must carry a large share of packets.
func TestHeavyTail(t *testing.T) {
	tr := Synthesize(SynthConfig{Packets: 100000, BaseFlows: 10000, Seed: 6})
	counts := map[uint64]int{}
	for _, p := range tr.Packets {
		counts[p.Flow]++
	}
	sizes := make([]int, 0, len(counts))
	for _, c := range counts {
		sizes = append(sizes, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	top := len(sizes) / 100
	if top == 0 {
		top = 1
	}
	topPkts := 0
	for _, c := range sizes[:top] {
		topPkts += c
	}
	share := float64(topPkts) / float64(len(tr.Packets))
	if share < 0.3 {
		t.Errorf("top 1%% of flows carry %.1f%% of packets, want ≥30%% (heavy tail)", share*100)
	}
}

func TestComputeStats(t *testing.T) {
	tr := &Trace{Packets: []Packet{
		{Time: 0, Flow: 1, Size: 100},
		{Time: time.Millisecond, Flow: 2, Size: 200},
		{Time: 2 * time.Millisecond, Flow: 1, Size: 300},
	}}
	s := ComputeStats(tr)
	if s.Packets != 3 || s.Flows != 2 || s.TotalBytes != 600 {
		t.Errorf("stats = %+v", s)
	}
	if s.MaxConcurrent != 2 {
		t.Errorf("maxConcurrent = %d, want 2", s.MaxConcurrent)
	}
	if s.Duration != 2*time.Millisecond {
		t.Errorf("duration = %v", s.Duration)
	}
}

func TestZipfKeysSkewed(t *testing.T) {
	keys := ZipfKeys(100000, 1.1, 50000, 7)
	counts := map[uint64]int{}
	for _, k := range keys {
		counts[k]++
	}
	if counts[0] < counts[50] {
		t.Errorf("key 0 (%d) not hotter than key 50 (%d)", counts[0], counts[50])
	}
	// Deterministic.
	again := ZipfKeys(100000, 1.1, 50000, 7)
	for i := range keys {
		if keys[i] != again[i] {
			t.Fatal("ZipfKeys not deterministic")
		}
	}
}

func TestZipfKeysPanicsOnFewItems(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ZipfKeys(1, ...) did not panic")
		}
	}()
	ZipfKeys(1, 1.1, 10, 1)
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := Synthesize(SynthConfig{Packets: 10000, BaseFlows: 1000, Segments: 3, Seed: 8})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got.Packets) != len(tr.Packets) {
		t.Fatalf("count %d vs %d", len(got.Packets), len(tr.Packets))
	}
	for i := range tr.Packets {
		if got.Packets[i] != tr.Packets[i] {
			t.Fatalf("packet %d: %+v vs %+v", i, got.Packets[i], tr.Packets[i])
		}
	}
	// Compression sanity: varint+delta should be well under 20 bytes/pkt.
	if perPkt := float64(buf.Len()) / float64(len(tr.Packets)); perPkt > 16 {
		t.Errorf("encoded size %.1f bytes/packet", perPkt)
	}
}

func TestWriteRejectsUnsorted(t *testing.T) {
	tr := &Trace{Packets: []Packet{
		{Time: time.Second, Flow: 1, Size: 1},
		{Time: 0, Flow: 2, Size: 1},
	}}
	if err := Write(&bytes.Buffer{}, tr); err == nil {
		t.Error("Write accepted an unsorted trace")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("shrt"),
		[]byte("XXXX0000000000000000"),
		append([]byte("P4LT"), []byte{9, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0}...), // bad version
	}
	for i, b := range cases {
		if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("case %d: err = %v, want ErrBadFormat", i, err)
		}
	}
}

func TestReadTruncatedBody(t *testing.T) {
	tr := Synthesize(SynthConfig{Packets: 1000, BaseFlows: 100, Seed: 9})
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	if _, err := Read(bytes.NewReader(cut)); err == nil {
		t.Error("Read accepted truncated stream")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Packets: 1, Flows: 2, TotalBytes: 3, Duration: time.Second, MaxConcurrent: 4}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestPacketSizesPlausible(t *testing.T) {
	tr := Synthesize(SynthConfig{Packets: 50000, BaseFlows: 5000, Seed: 10})
	var sum float64
	for _, p := range tr.Packets {
		if p.Size < 64 || p.Size > 1500 {
			t.Fatalf("packet size %d out of [64,1500]", p.Size)
		}
		sum += float64(p.Size)
	}
	mean := sum / float64(len(tr.Packets))
	if mean < 200 || mean > 1400 {
		t.Errorf("mean packet size %.0f implausible", mean)
	}
	if math.IsNaN(mean) {
		t.Error("NaN mean")
	}
}

func BenchmarkSynthesize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Synthesize(SynthConfig{Packets: 100000, BaseFlows: 10000, Segments: 10, Seed: int64(i)})
	}
}
