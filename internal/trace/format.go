package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Binary trace format ("P4LT"):
//
//	header : magic "P4LT" | uint16 version | uint16 reserved | uint64 count
//	record : varint Δtime(ns) | varint flow | varint size
//
// Times are delta-encoded (the stream is sorted by time), which shrinks
// typical traces to a few bytes per packet.

const (
	formatMagic   = "P4LT"
	formatVersion = 1
)

// ErrBadFormat is returned when a stream does not carry a valid trace.
var ErrBadFormat = errors.New("trace: bad format")

// maxPrealloc bounds the packet-slice capacity Read allocates on the
// strength of the header count alone (~24MiB of Packets). Every record in
// the stream still costs at least one byte, so a header would need ~1MiB
// of real input behind it before Read grows past this cap.
const maxPrealloc = 1 << 20

// Write serializes the trace to w.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(formatMagic); err != nil {
		return err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint16(hdr[0:2], formatVersion)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(tr.Packets)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [3 * binary.MaxVarintLen64]byte
	var prev time.Duration
	for i, p := range tr.Packets {
		if p.Time < prev {
			return fmt.Errorf("trace: packet %d out of order (%v after %v)", i, p.Time, prev)
		}
		n := binary.PutUvarint(buf[:], uint64(p.Time-prev))
		n += binary.PutUvarint(buf[n:], p.Flow)
		n += binary.PutUvarint(buf[n:], uint64(p.Size))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prev = p.Time
	}
	return bw.Flush()
}

// Read deserializes a trace from r.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4+12)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadFormat, err)
	}
	if string(head[:4]) != formatMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != formatVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	count := binary.LittleEndian.Uint64(head[8:16])
	const maxPackets = 1 << 31
	if count > maxPackets {
		return nil, fmt.Errorf("%w: implausible packet count %d", ErrBadFormat, count)
	}

	// Preallocate from the header count, but cap the upfront allocation: a
	// corrupt header can claim up to maxPackets (a multi-GiB slice) while
	// carrying no records, so large traces must earn their memory record by
	// record through append's amortized growth.
	prealloc := count
	if prealloc > maxPrealloc {
		prealloc = maxPrealloc
	}
	tr := &Trace{Packets: make([]Packet, 0, prealloc)}
	var now time.Duration
	for i := uint64(0); i < count; i++ {
		dt, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d time: %v", ErrBadFormat, i, err)
		}
		flow, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d flow: %v", ErrBadFormat, i, err)
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d size: %v", ErrBadFormat, i, err)
		}
		if size > 0xffff {
			return nil, fmt.Errorf("%w: record %d size %d exceeds 16 bits", ErrBadFormat, i, size)
		}
		now += time.Duration(dt)
		tr.Packets = append(tr.Packets, Packet{Time: now, Flow: flow, Size: uint16(size)})
	}
	return tr, nil
}
