package netproto

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/p4lru/p4lru/internal/engine"
	"github.com/p4lru/p4lru/internal/policy"
)

func engineOp(k, v uint64) engine.Op {
	return engine.Op{Key: k, Value: v, Token: policy.NoToken}
}

func TestMemberDigestRoundTrip(t *testing.T) {
	in := []MemberDigest{
		{ID: "node-a", UDPAddr: "10.0.0.1:7000", TCPAddr: "10.0.0.1:7001", Status: MemberAlive, Incarnation: 0},
		{ID: "node-b", Status: MemberSuspect, Incarnation: 3},
		{ID: "node-c", UDPAddr: "x", TCPAddr: "y", Status: MemberDead, Incarnation: ^uint64(0)},
		{ID: "node-d", Status: MemberLeft, Incarnation: 1},
	}
	buf, err := appendMemberDigests(make([]byte, 0, packetBufSize), in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := parseMemberDigests(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestMemberDigestEmptyAndTruncated(t *testing.T) {
	buf, err := appendMemberDigests(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := parseMemberDigests(buf); err != nil || len(out) != 0 {
		t.Fatalf("empty digest list = (%v, %v)", out, err)
	}
	full, err := appendMemberDigests(nil, []MemberDigest{{ID: "node", UDPAddr: "u", TCPAddr: "t", Incarnation: 9}})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(full); cut++ {
		if _, err := parseMemberDigests(full[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes parsed successfully", cut, len(full))
		}
	}
}

func TestMemberDigestOverflowRejected(t *testing.T) {
	long := make([]MemberDigest, MaxGossipEntries)
	for i := range long {
		long[i] = MemberDigest{
			ID:      fmt.Sprintf("node-%02d-%s", i, string(make([]byte, 40))),
			UDPAddr: "203.0.113.255:65535",
			TCPAddr: "203.0.113.255:65534",
		}
	}
	if _, err := appendMemberDigests(make([]byte, 0, packetBufSize), long); err == nil {
		t.Fatal("digest list exceeding the datagram bound encoded without error")
	}
}

func TestPairDigestOrderIndependence(t *testing.T) {
	// The arc digest folds with xor, so the pair mix must vary with both key
	// and value and a set's digest must not depend on iteration order.
	if PairDigest(1, 2) == PairDigest(2, 1) {
		t.Fatal("PairDigest symmetric in (key, value)")
	}
	if PairDigest(1, 2) == PairDigest(1, 3) {
		t.Fatal("PairDigest ignores the value")
	}
	var fwd, rev uint64
	for k := uint64(1); k <= 100; k++ {
		fwd ^= PairDigest(k, k*7)
	}
	for k := uint64(100); k >= 1; k-- {
		rev ^= PairDigest(k, k*7)
	}
	if fwd != rev || fwd == 0 {
		t.Fatalf("xor fold not order-independent or degenerate: fwd=%x rev=%x", fwd, rev)
	}
}

// TestNodeGossipExchange runs a digest exchange over the live UDP plane: the
// node's handler merges what the client sends and answers with its own view.
func TestNodeGossipExchange(t *testing.T) {
	eng := newNodeEngine(t)
	nodeView := []MemberDigest{
		{ID: "self", UDPAddr: "u", TCPAddr: "t", Status: MemberAlive, Incarnation: 2},
		{ID: "other", Status: MemberSuspect, Incarnation: 1},
	}
	var sawIn []MemberDigest
	s, err := NewNodeServer("127.0.0.1:0", NodeConfig{
		Engine:   eng,
		RingSeed: 7,
		Gossip: func(in []MemberDigest) []MemberDigest {
			sawIn = in
			return nodeView
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := dialTestNode(t, s)

	sent := []MemberDigest{{ID: "router-knows", Status: MemberAlive, Incarnation: 4}}
	reply, err := c.Gossip(sent)
	if err != nil {
		t.Fatalf("Gossip: %v", err)
	}
	if !reflect.DeepEqual(sawIn, sent) {
		t.Fatalf("handler saw %+v, want %+v", sawIn, sent)
	}
	if !reflect.DeepEqual(reply, nodeView) {
		t.Fatalf("reply = %+v, want the node's view %+v", reply, nodeView)
	}

	// A node with no handler ignores the payload but still answers.
	mute, err := NewNodeServer("127.0.0.1:0", NodeConfig{Engine: newNodeEngine(t), RingSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer mute.Close()
	mc := dialTestNode(t, mute)
	if reply, err := mc.Gossip(sent); err != nil || len(reply) != 0 {
		t.Fatalf("mute node gossip = (%v, %v), want empty reply", reply, err)
	}
}

// TestNodeArcDigest compares the TCP-plane digest against a locally computed
// one and checks divergence detection between two nodes.
func TestNodeArcDigest(t *testing.T) {
	const ringSeed = 7
	a, b := newNodeEngine(t), newNodeEngine(t)
	for k := uint64(1); k <= 500; k++ {
		a.Apply(engineOp(k, k*3))
		b.Apply(engineOp(k, k*3))
	}
	sa, err := NewNodeServer("127.0.0.1:0", NodeConfig{Engine: a, RingSeed: ringSeed})
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	sb, err := NewNodeServer("127.0.0.1:0", NodeConfig{Engine: b, RingSeed: ringSeed})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	ca, cb := dialTestNode(t, sa), dialTestNode(t, sb)

	whole := [][2]uint64{{0, 0}} // degenerate arc covers the full circle
	da, err := ca.Digest(whole)
	if err != nil {
		t.Fatalf("Digest: %v", err)
	}
	if da.Pairs != 500 {
		t.Fatalf("digest pairs = %d, want 500", da.Pairs)
	}
	db, err := cb.Digest(whole)
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Fatalf("identical nodes digest differently: %+v vs %+v", da, db)
	}
	// One divergent value must flip the digest.
	b.Apply(engineOp(250, 999))
	if db, err = cb.Digest(whole); err != nil {
		t.Fatal(err)
	}
	if da == db {
		t.Fatal("digest blind to a divergent value")
	}
}
