package netproto

import (
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/obs/span"
)

// enabledTracer is a capture-everything tracer for wire-path tests.
func enabledTracer() *span.Tracer {
	tr := span.New(span.Config{Shards: 4, SampleN: 1, RingSize: 256, RecalcEvery: 1 << 20})
	tr.SetEnabled(true)
	return tr
}

// TestServerSpans drives queries end to end against a traced server and
// checks the reply records decompose into decode / resolve / wire stages.
func TestServerSpans(t *testing.T) {
	tr := enabledTracer()
	srv, err := NewServer("127.0.0.1:0", 1000, ServerWithSpan(tr))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := NewClient(srv.Addr(), ClientConfig{Items: 1000, Skew: 1.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	for i := 0; i < 10; i++ {
		if _, err := cl.Query(uint64(i + 1)); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}

	var replies int
	for _, rec := range tr.Snapshot() {
		if rec.Kind != span.KindReply {
			continue
		}
		replies++
		if rec.Key == 0 {
			t.Fatalf("reply record without key: %+v", rec)
		}
		if rec.Stages[span.StageApply] <= 0 {
			t.Fatalf("reply record without resolve time: %+v", rec)
		}
		if diff := rec.Total - rec.StageSum(); diff < 0 || diff > int64(time.Millisecond) {
			t.Fatalf("stage sum %v vs total %v: %+v",
				time.Duration(rec.StageSum()), time.Duration(rec.Total), rec)
		}
	}
	if replies == 0 {
		t.Fatal("no KindReply records captured on the server")
	}
}

// TestSwitchSpans checks both proxy directions on a traced switch: query
// packets (KindQuery, FlagHit once cached) and reply packets (KindReply
// with the synchronous cache mutation attributed to StageApply).
func TestSwitchSpans(t *testing.T) {
	tr := enabledTracer()
	srv, err := NewServer("127.0.0.1:0", 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sw, err := NewSwitch(SwitchConfig{
		ServerAddr: srv.Addr(), Policy: seriesSpec(2, 64), Span: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Close()
	cl, err := NewClient(sw.Addr(), ClientConfig{Items: 1000, Skew: 1.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Query the same key twice: miss then cached hit.
	for i := 0; i < 2; i++ {
		res, err := cl.Query(42)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Valid {
			t.Fatal("bad value")
		}
	}

	var queryRecs, hitRecs, replyRecs int
	for _, rec := range tr.Snapshot() {
		switch rec.Kind {
		case span.KindQuery:
			queryRecs++
			if rec.Stages[span.StageQuery] <= 0 {
				t.Fatalf("query record without lookup time: %+v", rec)
			}
			if rec.Flags&span.FlagHit != 0 {
				hitRecs++
			}
		case span.KindReply:
			replyRecs++
			if rec.Stages[span.StageApply] <= 0 {
				t.Fatalf("reply record without mutation time: %+v", rec)
			}
		}
	}
	if queryRecs < 2 {
		t.Fatalf("captured %d KindQuery records, want ≥ 2", queryRecs)
	}
	if hitRecs == 0 {
		t.Fatal("second query of key 42 produced no FlagHit record")
	}
	if replyRecs < 2 {
		t.Fatalf("captured %d KindReply records, want ≥ 2", replyRecs)
	}
}
