package netproto

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/kvindex"
	"github.com/p4lru/p4lru/internal/netproto/batchio"
	"github.com/p4lru/p4lru/internal/obs/span"
	"github.com/p4lru/p4lru/internal/resilience"
)

// Server answers MsgQuery packets over UDP from the kvindex database: when
// the query carries a cached_flag it reads the value straight from the
// arena; otherwise it walks the B+ tree and embeds the resolved index into
// the reply so the switch can cache it.
//
// The serving loop is batched end to end: one recvmmsg drains a batch of
// queries, each query packet is rewritten into its reply in the same ring
// slot (header re-stamped, value copied in — the only copy on the path),
// and one sendmmsg returns the batch to its senders. On Linux every reader
// goroutine owns an SO_REUSEPORT socket, so the kernel fans flows across
// cores.
type Server struct {
	conns   []*batchio.Conn
	db      *kvindex.Server
	shedder *resilience.Shedder
	health  *resilience.Health
	tracer  *span.Tracer
	batch   int

	wg     sync.WaitGroup
	closed atomic.Bool

	// Stats.
	queries     atomic.Int64
	replies     atomic.Int64
	shed        atomic.Int64
	indexWalks  atomic.Int64
	nodesWalked atomic.Int64
	recvBatches atomic.Int64
	recvPackets atomic.Int64
}

// ServerOption tunes a Server beyond the required parameters.
type ServerOption func(*Server)

// ServerWithShedder gates query handling behind the shedder: each query asks
// for admission at normal priority, and the batch's per-query handling
// latency feeds the shedder's EWMA, so a server falling behind sheds (drops)
// queries instead of queueing into collapse. Dropped queries look like
// packet loss to clients, whose retry machinery already absorbs it.
func ServerWithShedder(sh *resilience.Shedder) ServerOption {
	return func(s *Server) { s.shedder = sh }
}

// ServerWithSpan traces each handled query: decode, index resolve (StageApply
// — it's the server's service stage), and reply write land as separate stage
// marks, so a slow server decomposes into parse vs walk vs socket time.
func ServerWithSpan(t *span.Tracer) ServerOption {
	return func(s *Server) { s.tracer = t }
}

// NewServer starts a server on addr (e.g. "127.0.0.1:0") over a database of
// `items` keys. The database is read-only after load, so several loop
// goroutines answer queries concurrently.
func NewServer(addr string, items int, opts ...ServerOption) (*Server, error) {
	s := &Server{db: kvindex.NewServer(items), health: resilience.NewHealth(), batch: 64}
	for _, o := range opts {
		o(s)
	}
	s.health.Register("shutdown", func() error {
		if s.closed.Load() {
			return errors.New("netproto: server shutting down")
		}
		return nil
	})
	if s.shedder != nil {
		s.health.Register("shedder", s.shedder.Check)
	}
	readers := runtime.GOMAXPROCS(0)
	if readers < 2 {
		readers = 2
	}
	if readers > 8 {
		readers = 8
	}
	ucs, err := batchio.ListenReuse(addr, readers)
	if err != nil {
		return nil, fmt.Errorf("netproto: listen: %w", err)
	}
	for _, uc := range ucs {
		bc, err := batchio.NewConn(uc)
		if err != nil {
			for _, c := range s.conns {
				c.Close()
			}
			for _, u := range ucs {
				u.Close()
			}
			return nil, fmt.Errorf("netproto: batch conn: %w", err)
		}
		s.conns = append(s.conns, bc)
	}
	s.wg.Add(readers)
	for i := 0; i < readers; i++ {
		// Portable builds get one socket; the readers share it.
		go s.loop(s.conns[i%len(s.conns)])
	}
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() *net.UDPAddr {
	return s.conns[0].UDP().LocalAddr().(*net.UDPAddr)
}

// ServerStats is one snapshot of the server's serving counters — the single
// accessor that replaced the scattered tuple getters. After a clean Close,
// Queries == Replies + Shed when all traffic was for loaded keys.
type ServerStats struct {
	Queries     int64 // query packets decoded
	Replies     int64 // replies sent
	Shed        int64 // queries dropped by the shedder
	IndexWalks  int64 // full B+ tree walks (uncached queries)
	NodesWalked int64 // total nodes those walks touched
	RecvBatches int64 // batched reads
	RecvPackets int64 // datagrams those reads carried
}

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Queries:     s.queries.Load(),
		Replies:     s.replies.Load(),
		Shed:        s.shed.Load(),
		IndexWalks:  s.indexWalks.Load(),
		NodesWalked: s.nodesWalked.Load(),
		RecvBatches: s.recvBatches.Load(),
		RecvPackets: s.recvPackets.Load(),
	}
}

// Health returns the server's probe aggregator (mount its ServeHTTP on
// /healthz and /readyz). It ships with a "shutdown" check that fails once
// Close begins and, when configured, the shedder's check; callers may
// Register more — e.g. a backing breaker's Check.
func (s *Server) Health() *resilience.Health { return s.health }

// Close stops the server, draining in-flight request handling first: the
// read deadline kicks blocked readers out of their batch reads without
// tearing down the sockets, so handlers mid-resolve still send their
// replies before the conns close. The old order (close, then wait) raced
// handlers against the dying socket and silently ate their replies.
func (s *Server) Close() error {
	s.closed.Store(true)
	now := time.Now()
	for _, c := range s.conns {
		_ = c.SetReadDeadline(now)
	}
	s.wg.Wait()
	var firstErr error
	for _, c := range s.conns {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// loop is one reader's serve cycle: drain a batch, rewrite each query into
// its reply in place, compact out drops (malformed, shed, unknown key), and
// send the surviving batch back in one call.
func (s *Server) loop(c *batchio.Conn) {
	defer s.wg.Done()
	ring := batchio.NewRing(s.batch, packetBufSize)
	spans := make([]span.Span, s.batch)
	for {
		got, err := c.ReadBatch(ring)
		if err != nil {
			if s.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		s.recvBatches.Add(1)
		s.recvPackets.Add(int64(got))
		var start time.Time
		if s.shedder != nil {
			start = time.Now()
		}
		ds := ring.Datagrams()
		keep := 0
		for i := 0; i < got; i++ {
			d := &ds[i]
			sp := s.tracer.Start(0, 0)
			var msg Message
			if err := msg.Unmarshal(d.Bytes()); err != nil || msg.Type != MsgQuery {
				continue // drop malformed traffic
			}
			sp.SetKey(msg.Key)
			sp.Mark(span.StageDecode)
			s.queries.Add(1)
			if s.shedder != nil && !s.shedder.Admit(resilience.PriNormal, 0) {
				s.shed.Add(1)
				sp.SetFlags(span.FlagShed)
				sp.Finish(span.KindShed)
				continue // to the client this is packet loss; retries absorb it
			}

			idx, value, nodes, ok := s.db.Resolve(msg.Key, msg.CachedIndex, msg.CachedFlag != 0)
			sp.Mark(span.StageApply) // the server's service stage: the index resolve
			if !ok {
				continue // unknown key: drop (clients only ask for loaded keys)
			}
			if nodes > 0 {
				s.indexWalks.Add(1)
				s.nodesWalked.Add(int64(nodes))
			}
			if msg.CachedFlag != 0 {
				sp.SetFlags(span.FlagHit) // cached_flag token: arena read, no walk
			}

			// Rewrite the query into its reply in the same ring slot; the
			// source address is already in place as the destination.
			d.N = PutReply(d.Buf, msg.CachedFlag, msg.Key, idx, value)
			if keep != i {
				ring.Swap(keep, i)
			}
			spans[keep] = sp
			keep++
		}
		if keep == 0 {
			continue
		}
		sent, werr := c.WriteBatch(ring, keep)
		s.replies.Add(int64(sent))
		for i := 0; i < sent; i++ {
			spans[i].Mark(span.StageWire)
			spans[i].Finish(span.KindReply)
		}
		if s.shedder != nil {
			// Per-query handling latency: the batch's wall time amortized
			// over the queries it carried.
			s.shedder.Observe(time.Since(start) / time.Duration(keep))
		}
		if werr != nil && s.closed.Load() {
			return
		}
	}
}
