package netproto

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/p4lru/p4lru/internal/kvindex"
)

// Server answers MsgQuery packets over UDP from the kvindex database: when
// the query carries a cached_flag it reads the value straight from the
// arena; otherwise it walks the B+ tree and embeds the resolved index into
// the reply so the switch can cache it.
type Server struct {
	conn *net.UDPConn
	db   *kvindex.Server

	wg     sync.WaitGroup
	closed atomic.Bool

	// Stats.
	queries     atomic.Int64
	indexWalks  atomic.Int64
	nodesWalked atomic.Int64
}

// NewServer starts a server on addr (e.g. "127.0.0.1:0") over a database of
// `items` keys. The database is read-only after load, so several loop
// goroutines answer queries concurrently — the server no longer serializes
// behind one reader.
func NewServer(addr string, items int) (*Server, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netproto: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("netproto: listen: %w", err)
	}
	s := &Server{conn: conn, db: kvindex.NewServer(items)}
	readers := runtime.GOMAXPROCS(0)
	if readers < 2 {
		readers = 2
	}
	if readers > 8 {
		readers = 8
	}
	s.wg.Add(readers)
	for i := 0; i < readers; i++ {
		go s.loop()
	}
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Stats returns (queries served, full index walks, total nodes walked).
func (s *Server) Stats() (queries, walks, nodes int64) {
	return s.queries.Load(), s.indexWalks.Load(), s.nodesWalked.Load()
}

// Close stops the server.
func (s *Server) Close() error {
	s.closed.Store(true)
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *Server) loop() {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			if s.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		var msg Message
		if err := msg.Unmarshal(buf[:n]); err != nil || msg.Type != MsgQuery {
			continue // drop malformed traffic
		}
		s.queries.Add(1)

		idx, value, nodes, ok := s.db.Resolve(msg.Key, msg.CachedIndex, msg.CachedFlag != 0)
		if !ok {
			continue // unknown key: drop (clients only ask for loaded keys)
		}
		if nodes > 0 {
			s.indexWalks.Add(1)
			s.nodesWalked.Add(int64(nodes))
		}

		reply := Message{
			Type:        MsgReply,
			CachedFlag:  msg.CachedFlag,
			Key:         msg.Key,
			CachedIndex: idx,
			Value:       value,
		}
		if _, err := s.conn.WriteToUDP(reply.Marshal(), peer); err != nil && s.closed.Load() {
			return
		}
	}
}
