package netproto

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/kvindex"
	"github.com/p4lru/p4lru/internal/obs/span"
	"github.com/p4lru/p4lru/internal/resilience"
)

// Server answers MsgQuery packets over UDP from the kvindex database: when
// the query carries a cached_flag it reads the value straight from the
// arena; otherwise it walks the B+ tree and embeds the resolved index into
// the reply so the switch can cache it.
type Server struct {
	conn    *net.UDPConn
	db      *kvindex.Server
	shedder *resilience.Shedder
	health  *resilience.Health
	tracer  *span.Tracer

	wg     sync.WaitGroup
	closed atomic.Bool

	// Stats.
	queries     atomic.Int64
	replies     atomic.Int64
	shed        atomic.Int64
	indexWalks  atomic.Int64
	nodesWalked atomic.Int64
}

// ServerOption tunes a Server beyond the required parameters.
type ServerOption func(*Server)

// ServerWithShedder gates query handling behind the shedder: each query asks
// for admission at normal priority and feeds its handling latency back into
// the shedder's EWMA, so a server falling behind sheds (drops) queries
// instead of queueing into collapse. Dropped queries look like packet loss
// to clients, whose retry machinery already absorbs it.
func ServerWithShedder(sh *resilience.Shedder) ServerOption {
	return func(s *Server) { s.shedder = sh }
}

// ServerWithSpan traces each handled query: decode, index resolve (StageApply
// — it's the server's service stage), and reply write land as separate stage
// marks, so a slow server decomposes into parse vs walk vs socket time.
func ServerWithSpan(t *span.Tracer) ServerOption {
	return func(s *Server) { s.tracer = t }
}

// NewServer starts a server on addr (e.g. "127.0.0.1:0") over a database of
// `items` keys. The database is read-only after load, so several loop
// goroutines answer queries concurrently — the server no longer serializes
// behind one reader.
func NewServer(addr string, items int, opts ...ServerOption) (*Server, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netproto: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("netproto: listen: %w", err)
	}
	s := &Server{conn: conn, db: kvindex.NewServer(items), health: resilience.NewHealth()}
	for _, o := range opts {
		o(s)
	}
	s.health.Register("shutdown", func() error {
		if s.closed.Load() {
			return errors.New("netproto: server shutting down")
		}
		return nil
	})
	if s.shedder != nil {
		s.health.Register("shedder", s.shedder.Check)
	}
	readers := runtime.GOMAXPROCS(0)
	if readers < 2 {
		readers = 2
	}
	if readers > 8 {
		readers = 8
	}
	s.wg.Add(readers)
	for i := 0; i < readers; i++ {
		go s.loop()
	}
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Stats returns (queries served, full index walks, total nodes walked).
func (s *Server) Stats() (queries, walks, nodes int64) {
	return s.queries.Load(), s.indexWalks.Load(), s.nodesWalked.Load()
}

// Replies returns the number of replies sent. After a clean Close every
// admitted query for a loaded key has a matching reply: with no shedder and
// no unknown-key traffic, Replies() == queries.
func (s *Server) Replies() int64 { return s.replies.Load() }

// Shed returns the number of queries dropped by the shedder.
func (s *Server) Shed() int64 { return s.shed.Load() }

// Health returns the server's probe aggregator (mount its ServeHTTP on
// /healthz and /readyz). It ships with a "shutdown" check that fails once
// Close begins and, when configured, the shedder's check; callers may
// Register more — e.g. a backing breaker's Check.
func (s *Server) Health() *resilience.Health { return s.health }

// Close stops the server, draining in-flight request handling first: the
// read deadline kicks blocked readers out of ReadFromUDP without tearing
// down the socket, so handlers mid-resolve still send their replies before
// the conn closes. The old order (close, then wait) raced handlers against
// the dying socket and silently ate their replies.
func (s *Server) Close() error {
	s.closed.Store(true)
	_ = s.conn.SetReadDeadline(time.Now())
	s.wg.Wait()
	return s.conn.Close()
}

func (s *Server) loop() {
	defer s.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			if s.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		sp := s.tracer.Start(0, 0)
		var msg Message
		if err := msg.Unmarshal(buf[:n]); err != nil || msg.Type != MsgQuery {
			continue // drop malformed traffic
		}
		sp.SetKey(msg.Key)
		sp.Mark(span.StageDecode)
		s.queries.Add(1)
		var start time.Time
		if s.shedder != nil {
			if !s.shedder.Admit(resilience.PriNormal, 0) {
				s.shed.Add(1)
				sp.SetFlags(span.FlagShed)
				sp.Finish(span.KindShed)
				continue // to the client this is packet loss; retries absorb it
			}
			start = time.Now()
		}

		idx, value, nodes, ok := s.db.Resolve(msg.Key, msg.CachedIndex, msg.CachedFlag != 0)
		sp.Mark(span.StageApply) // the server's service stage: the index resolve
		if !ok {
			continue // unknown key: drop (clients only ask for loaded keys)
		}
		if nodes > 0 {
			s.indexWalks.Add(1)
			s.nodesWalked.Add(int64(nodes))
		}
		if msg.CachedFlag != 0 {
			sp.SetFlags(span.FlagHit) // cached_flag token: arena read, no walk
		}

		reply := Message{
			Type:        MsgReply,
			CachedFlag:  msg.CachedFlag,
			Key:         msg.Key,
			CachedIndex: idx,
			Value:       value,
		}
		if _, err := s.conn.WriteToUDP(reply.Marshal(), peer); err != nil {
			if s.closed.Load() {
				return
			}
			continue
		}
		sp.Mark(span.StageWire)
		sp.Finish(span.KindReply)
		s.replies.Add(1)
		if s.shedder != nil {
			s.shedder.Observe(time.Since(start))
		}
	}
}
