package netproto

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"github.com/p4lru/p4lru/internal/policy"
)

// seriesSpec is the test shorthand for the old positional geometry: a
// `levels`-deep P4LRU3 series with `units` total units.
func seriesSpec(levels, units int) policy.Spec {
	return policy.Spec{
		Kind:     policy.KindSeries,
		Levels:   levels,
		MemBytes: policy.SeriesMemBytes(levels, 3, units),
		Seed:     1,
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := Message{
		Type:        MsgReply,
		CachedFlag:  3,
		Key:         0xdeadbeefcafe,
		CachedIndex: 4096,
		Value:       []byte("sixty-four bytes of payload....."),
	}
	var got Message
	if err := got.Unmarshal(m.Marshal()); err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.CachedFlag != m.CachedFlag ||
		got.Key != m.Key || got.CachedIndex != m.CachedIndex ||
		!bytes.Equal(got.Value, m.Value) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, m)
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(flag uint8, key, idx uint64, val []byte, isQuery bool) bool {
		typ := MsgReply
		if isQuery {
			typ = MsgQuery
		}
		m := Message{Type: typ, CachedFlag: flag, Key: key, CachedIndex: idx, Value: val}
		var got Message
		if err := got.Unmarshal(m.Marshal()); err != nil {
			return false
		}
		return got.Type == m.Type && got.CachedFlag == flag &&
			got.Key == key && got.CachedIndex == idx && bytes.Equal(got.Value, val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 10), // short
		append([]byte{0, 0}, make([]byte, 22)...), // bad magic
		(&Message{Type: 99, Key: 1}).Marshal(),    // bad type
	}
	// Craft a bad-version packet.
	badVer := (&Message{Type: MsgQuery}).Marshal()
	badVer[2] = 99
	cases = append(cases, badVer)

	var m Message
	for i, c := range cases {
		if err := m.Unmarshal(c); !errors.Is(err, ErrBadMessage) {
			t.Errorf("case %d: err = %v, want ErrBadMessage", i, err)
		}
	}
}

// startStack brings up server + switch on loopback.
func startStack(t *testing.T, items, levels, units int) (*Server, *Switch) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", items)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	sw, err := NewSwitch(SwitchConfig{
		ServerAddr: srv.Addr(),
		Policy:     seriesSpec(levels, units),
	})
	if err != nil {
		srv.Close()
		t.Fatalf("switch: %v", err)
	}
	t.Cleanup(func() {
		sw.Close()
		srv.Close()
	})
	return srv, sw
}

func TestEndToEndQuery(t *testing.T) {
	srv, sw := startStack(t, 1000, 2, 64)
	cl, err := NewClient(sw.Addr(), ClientConfig{Items: 1000, Skew: 1.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// First query for a key: a miss that walks the index.
	res, err := cl.Query(42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("first query reported cached")
	}
	if !res.Valid {
		t.Error("first query returned a bad value")
	}

	// Second query: the switch must now resolve the index.
	res, err = cl.Query(42)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("second query not served from the index cache")
	}
	if !res.Valid {
		t.Error("cached query returned a bad value — stale index")
	}

	sst := srv.Stats()
	if sst.Queries != 2 || sst.IndexWalks != 1 {
		t.Errorf("server stats: queries=%d walks=%d, want 2/1", sst.Queries, sst.IndexWalks)
	}
	if sst.NodesWalked == 0 {
		t.Error("no nodes walked on the miss")
	}
	if sst.RecvBatches == 0 || sst.RecvPackets != sst.Queries {
		t.Errorf("server batch accounting: batches=%d packets=%d queries=%d",
			sst.RecvBatches, sst.RecvPackets, sst.Queries)
	}
	if wst := sw.Stats(); wst.Queries != 2 || wst.Hits != 1 {
		t.Errorf("switch stats: queries=%d hits=%d, want 2/1", wst.Queries, wst.Hits)
	}
}

func TestEndToEndWorkload(t *testing.T) {
	srv, sw := startStack(t, 5000, 4, 256)
	cl, err := NewClient(sw.Addr(), ClientConfig{Items: 5000, Skew: 1.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	st := cl.Run(3000)
	if st.Failures > 30 {
		t.Fatalf("%d/%d queries failed", st.Failures, 3000)
	}
	if st.Invalid != 0 {
		t.Fatalf("%d invalid values — cached indexes must stay correct", st.Invalid)
	}
	hitRate := float64(st.Cached) / float64(st.Queries)
	if hitRate < 0.3 {
		t.Errorf("hit rate %.3f too low for a Zipf workload", hitRate)
	}
	if sw.CacheLen() == 0 {
		t.Error("switch cache empty after workload")
	}
	// Cached queries must skip the index walk.
	if sst := srv.Stats(); sst.IndexWalks >= sst.Queries {
		t.Errorf("every query walked the index (%d/%d) despite caching",
			sst.IndexWalks, sst.Queries)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, sw := startStack(t, 2000, 2, 256)
	const clients = 4
	const per = 500

	var wg sync.WaitGroup
	stats := make([]RunStats, clients)
	for i := 0; i < clients; i++ {
		cl, err := NewClient(sw.Addr(), ClientConfig{Items: 2000, Skew: 1.2, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			stats[i] = cl.Run(per)
		}(i, cl)
	}
	wg.Wait()

	totalInvalid, totalOK := 0, 0
	for _, st := range stats {
		totalInvalid += st.Invalid
		totalOK += st.Queries
	}
	if totalInvalid != 0 {
		t.Errorf("%d invalid values under concurrency", totalInvalid)
	}
	if totalOK < clients*per*9/10 {
		t.Errorf("only %d/%d queries completed", totalOK, clients*per)
	}
}

// TestConcurrentClientsShardedProgress is the regression test for the old
// global-mutex hot path: with the engine in place, concurrent clients are
// served from independent shards instead of serializing on one lock. It
// pins a 4-shard engine (regardless of GOMAXPROCS), drives it from two
// clients at once, and checks that both make full progress and that the
// traffic actually spread across shards — the structural property the
// global mutex could not provide.
func TestConcurrentClientsShardedProgress(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 4000)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwitch(SwitchConfig{
		ServerAddr: srv.Addr(),
		Policy:     seriesSpec(2, 256),
		Shards:     4,
		Readers:    4,
	})
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sw.Close()
		srv.Close()
	})
	if got := sw.Engine().Shards(); got != 4 {
		t.Fatalf("engine has %d shards, want 4", got)
	}

	const per = 400
	var wg sync.WaitGroup
	stats := make([]RunStats, 2)
	for i := range stats {
		cl, err := NewClient(sw.Addr(), ClientConfig{Items: 4000, Skew: 1.2, Seed: int64(i) + 10})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			stats[i] = cl.Run(per)
		}(i, cl)
	}
	wg.Wait()

	for i, st := range stats {
		if st.Queries < per*9/10 {
			t.Errorf("client %d completed only %d/%d queries", i, st.Queries, per)
		}
		if st.Invalid != 0 {
			t.Errorf("client %d saw %d invalid values", i, st.Invalid)
		}
	}

	// The cache population must be spread across shards, proving queries
	// and replies were served by per-shard state, not one locked cache.
	active := 0
	for _, s := range sw.Engine().Stats() {
		if s.Len > 0 {
			active++
		}
	}
	if active < 2 {
		t.Errorf("only %d/4 shards hold cache entries — serving is not sharded", active)
	}
}

// TestQueryBatchEndToEnd drives the pipelined window through the full
// client → switch → server stack: one window of distinct keys, then the
// same window again. Every key must come back valid and in order, and the
// second pass must be served from the switch cache.
func TestQueryBatchEndToEnd(t *testing.T) {
	srv, sw := startStack(t, 1000, 2, 128)
	cl, err := NewClient(sw.Addr(), ClientConfig{Items: 1000, Skew: 1.1, Seed: 5, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	keys := make([]uint64, 40) // > Batch, so QueryBatch chunks into windows
	for i := range keys {
		keys[i] = uint64(i + 1)
	}
	results := make([]QueryResult, len(keys))

	for pass := 0; pass < 2; pass++ {
		n, err := cl.QueryBatch(keys, results)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if n != len(keys) {
			t.Fatalf("pass %d: answered %d/%d keys", pass, n, len(keys))
		}
		for i, res := range results {
			if res.Key != keys[i] {
				t.Fatalf("pass %d: result %d carries key %d, want %d", pass, i, res.Key, keys[i])
			}
			if !res.Valid {
				t.Fatalf("pass %d: key %d returned a bad value", pass, keys[i])
			}
		}
	}

	wst := sw.Stats()
	if wst.Hits < int64(len(keys)) {
		t.Errorf("switch hits = %d after repeat pass, want ≥ %d", wst.Hits, len(keys))
	}
	if sst := srv.Stats(); sst.IndexWalks >= sst.Queries {
		t.Errorf("repeat pass still walked the index: walks=%d queries=%d",
			sst.IndexWalks, sst.Queries)
	}

	// RunBatch drives the same windows from the Zipf generator.
	st := cl.RunBatch(500)
	if st.Invalid != 0 {
		t.Fatalf("RunBatch saw %d invalid values: %+v", st.Invalid, st)
	}
	if st.Queries < 490 || st.Failures > 10 {
		t.Fatalf("RunBatch completed %d/500 (failures %d)", st.Queries, st.Failures)
	}
}

func TestCloseIsIdempotentAndUnblocks(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 100)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwitch(SwitchConfig{ServerAddr: srv.Addr(), Policy: seriesSpec(1, 8)})
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Errorf("switch close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("server close: %v", err)
	}
}

func BenchmarkEndToEndQuery(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0", 10000)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	sw, err := NewSwitch(SwitchConfig{ServerAddr: srv.Addr(), Policy: seriesSpec(4, 512)})
	if err != nil {
		b.Fatal(err)
	}
	defer sw.Close()
	cl, err := NewClient(sw.Addr(), ClientConfig{Items: 10000, Skew: 1.2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Query(cl.NextKey()); err != nil {
			b.Fatal(err)
		}
	}
}
