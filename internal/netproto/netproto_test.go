package netproto

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestMessageRoundTrip(t *testing.T) {
	m := Message{
		Type:        MsgReply,
		CachedFlag:  3,
		Key:         0xdeadbeefcafe,
		CachedIndex: 4096,
		Value:       []byte("sixty-four bytes of payload....."),
	}
	var got Message
	if err := got.Unmarshal(m.Marshal()); err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.CachedFlag != m.CachedFlag ||
		got.Key != m.Key || got.CachedIndex != m.CachedIndex ||
		!bytes.Equal(got.Value, m.Value) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, m)
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(flag uint8, key, idx uint64, val []byte, isQuery bool) bool {
		typ := MsgReply
		if isQuery {
			typ = MsgQuery
		}
		m := Message{Type: typ, CachedFlag: flag, Key: key, CachedIndex: idx, Value: val}
		var got Message
		if err := got.Unmarshal(m.Marshal()); err != nil {
			return false
		}
		return got.Type == m.Type && got.CachedFlag == flag &&
			got.Key == key && got.CachedIndex == idx && bytes.Equal(got.Value, val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 10), // short
		append([]byte{0, 0}, make([]byte, 22)...), // bad magic
		(&Message{Type: 9, Key: 1}).Marshal(),     // bad type
	}
	// Craft a bad-version packet.
	badVer := (&Message{Type: MsgQuery}).Marshal()
	badVer[2] = 99
	cases = append(cases, badVer)

	var m Message
	for i, c := range cases {
		if err := m.Unmarshal(c); !errors.Is(err, ErrBadMessage) {
			t.Errorf("case %d: err = %v, want ErrBadMessage", i, err)
		}
	}
}

// startStack brings up server + switch on loopback.
func startStack(t *testing.T, items, levels, units int) (*Server, *Switch) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", items)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	sw, err := NewSwitch("127.0.0.1:0", srv.Addr(), levels, units, 1)
	if err != nil {
		srv.Close()
		t.Fatalf("switch: %v", err)
	}
	t.Cleanup(func() {
		sw.Close()
		srv.Close()
	})
	return srv, sw
}

func TestEndToEndQuery(t *testing.T) {
	srv, sw := startStack(t, 1000, 2, 64)
	cl, err := NewClient(sw.Addr(), 1000, 1.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// First query for a key: a miss that walks the index.
	res, err := cl.Query(42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("first query reported cached")
	}
	if !res.Valid {
		t.Error("first query returned a bad value")
	}

	// Second query: the switch must now resolve the index.
	res, err = cl.Query(42)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("second query not served from the index cache")
	}
	if !res.Valid {
		t.Error("cached query returned a bad value — stale index")
	}

	queries, walks, nodes := srv.Stats()
	if queries != 2 || walks != 1 {
		t.Errorf("server stats: queries=%d walks=%d, want 2/1", queries, walks)
	}
	if nodes == 0 {
		t.Error("no nodes walked on the miss")
	}
	if q, h := sw.Stats(); q != 2 || h != 1 {
		t.Errorf("switch stats: queries=%d hits=%d, want 2/1", q, h)
	}
}

func TestEndToEndWorkload(t *testing.T) {
	srv, sw := startStack(t, 5000, 4, 256)
	cl, err := NewClient(sw.Addr(), 5000, 1.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	st := cl.Run(3000)
	if st.Failures > 30 {
		t.Fatalf("%d/%d queries failed", st.Failures, 3000)
	}
	if st.Invalid != 0 {
		t.Fatalf("%d invalid values — cached indexes must stay correct", st.Invalid)
	}
	hitRate := float64(st.Cached) / float64(st.Queries)
	if hitRate < 0.3 {
		t.Errorf("hit rate %.3f too low for a Zipf workload", hitRate)
	}
	if sw.CacheLen() == 0 {
		t.Error("switch cache empty after workload")
	}
	// Cached queries must skip the index walk.
	q, walks, _ := srv.Stats()
	if walks >= q {
		t.Errorf("every query walked the index (%d/%d) despite caching", walks, q)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, sw := startStack(t, 2000, 2, 256)
	const clients = 4
	const per = 500

	var wg sync.WaitGroup
	stats := make([]RunStats, clients)
	for i := 0; i < clients; i++ {
		cl, err := NewClient(sw.Addr(), 2000, 1.2, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			stats[i] = cl.Run(per)
		}(i, cl)
	}
	wg.Wait()

	totalInvalid, totalOK := 0, 0
	for _, st := range stats {
		totalInvalid += st.Invalid
		totalOK += st.Queries
	}
	if totalInvalid != 0 {
		t.Errorf("%d invalid values under concurrency", totalInvalid)
	}
	if totalOK < clients*per*9/10 {
		t.Errorf("only %d/%d queries completed", totalOK, clients*per)
	}
}

// TestConcurrentClientsShardedProgress is the regression test for the old
// global-mutex hot path: with the engine in place, concurrent clients are
// served from independent shards instead of serializing on one lock. It
// pins a 4-shard engine (regardless of GOMAXPROCS), drives it from two
// clients at once, and checks that both make full progress and that the
// traffic actually spread across shards — the structural property the
// global mutex could not provide.
func TestConcurrentClientsShardedProgress(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 4000)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwitch("127.0.0.1:0", srv.Addr(), 2, 256, 1, WithShards(4), WithReaders(4))
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		sw.Close()
		srv.Close()
	})
	if got := sw.Engine().Shards(); got != 4 {
		t.Fatalf("engine has %d shards, want 4", got)
	}

	const per = 400
	var wg sync.WaitGroup
	stats := make([]RunStats, 2)
	for i := range stats {
		cl, err := NewClient(sw.Addr(), 4000, 1.2, int64(i)+10)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			stats[i] = cl.Run(per)
		}(i, cl)
	}
	wg.Wait()

	for i, st := range stats {
		if st.Queries < per*9/10 {
			t.Errorf("client %d completed only %d/%d queries", i, st.Queries, per)
		}
		if st.Invalid != 0 {
			t.Errorf("client %d saw %d invalid values", i, st.Invalid)
		}
	}

	// The cache population must be spread across shards, proving queries
	// and replies were served by per-shard state, not one locked cache.
	active := 0
	for _, s := range sw.Engine().Stats() {
		if s.Len > 0 {
			active++
		}
	}
	if active < 2 {
		t.Errorf("only %d/4 shards hold cache entries — serving is not sharded", active)
	}
}

func TestCloseIsIdempotentAndUnblocks(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 100)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewSwitch("127.0.0.1:0", srv.Addr(), 1, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Errorf("switch close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("server close: %v", err)
	}
}

func BenchmarkEndToEndQuery(b *testing.B) {
	srv, err := NewServer("127.0.0.1:0", 10000)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	sw, err := NewSwitch("127.0.0.1:0", srv.Addr(), 4, 512, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer sw.Close()
	cl, err := NewClient(sw.Addr(), 10000, 1.2, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Query(cl.NextKey()); err != nil {
			b.Fatal(err)
		}
	}
}
