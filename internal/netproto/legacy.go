package netproto

import (
	"net"
	"time"

	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/obs/span"
	"github.com/p4lru/p4lru/internal/policy"
)

// This file is the one-release compatibility shim for the pre-batching
// construction API: the positional NewSwitch and NewClient signatures and
// their functional options, re-expressed on top of SwitchConfig and
// ClientConfig. New code should use NewSwitch(SwitchConfig{...}) and
// NewClient(addr, ClientConfig{...}) directly; everything here will be
// removed next release.

// Option tunes a Switch built through NewSwitchLegacy.
//
// Deprecated: set the corresponding SwitchConfig field instead.
type Option func(*SwitchConfig)

// WithShards fixes the engine shard count.
//
// Deprecated: set SwitchConfig.Shards.
func WithShards(n int) Option { return func(c *SwitchConfig) { c.Shards = n } }

// WithReaders fixes the per-direction reader goroutine count.
//
// Deprecated: set SwitchConfig.Readers.
func WithReaders(n int) Option { return func(c *SwitchConfig) { c.Readers = n } }

// WithObs instruments the switch's engine on the given registry.
//
// Deprecated: set SwitchConfig.Obs.
func WithObs(r *obs.Registry) Option { return func(c *SwitchConfig) { c.Obs = r } }

// WithSpan traces both proxy directions and the switch's engine.
//
// Deprecated: set SwitchConfig.Span.
func WithSpan(t *span.Tracer) Option { return func(c *SwitchConfig) { c.Span = t } }

// NewSwitchLegacy starts a switch with the old positional geometry: a
// `levels`-deep series of P4LRU3 arrays with numUnits total units split
// across the engine's shards. The unit count is translated into the
// equivalent policy.Spec memory budget, so the cache geometry matches what
// the positional constructor built.
//
// Deprecated: use NewSwitch(SwitchConfig{...}) with a policy.Spec.
func NewSwitchLegacy(listenAddr string, serverAddr *net.UDPAddr, levels, numUnits int, seed uint64, opts ...Option) (*Switch, error) {
	cfg := SwitchConfig{ListenAddr: listenAddr, ServerAddr: serverAddr}
	for _, o := range opts {
		o(&cfg)
	}
	cfg = cfg.withDefaults()
	if cfg.Shards > numUnits {
		cfg.Shards = numUnits // ≥1 unit per shard and level, as before
	}
	unitsPerShard := numUnits / cfg.Shards
	if unitsPerShard < 1 {
		unitsPerShard = 1
	}
	cfg.Policy = policy.Spec{
		Kind:     policy.KindSeries,
		Levels:   levels,
		UnitCap:  3,
		Seed:     seed,
		MemBytes: cfg.Shards * policy.SeriesMemBytes(levels, 3, unitsPerShard),
	}
	return NewSwitch(cfg)
}

// NewClientLegacy dials the switch with the old positional workload
// parameters and the old retry defaults.
//
// Deprecated: use NewClient(switchAddr, ClientConfig{...}).
func NewClientLegacy(switchAddr *net.UDPAddr, items int, skew float64, seed int64) (*Client, error) {
	return NewClient(switchAddr, ClientConfig{Items: items, Skew: skew, Seed: seed})
}

// NewRemoteStoreLegacy preserves the old retry sentinel convention
// (negative retries = default, 0 = single shot).
//
// Deprecated: use NewRemoteStore, whose config follows ClientConfig's
// conventions (0 = default, NoRetries = single shot).
func NewRemoteStoreLegacy(addr *net.UDPAddr, pool int, timeout time.Duration, retries int) (*RemoteStore, error) {
	switch {
	case retries < 0:
		retries = 0
	case retries == 0:
		retries = NoRetries
	}
	return NewRemoteStore(addr, pool, timeout, retries)
}
