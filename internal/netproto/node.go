package netproto

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/engine"
	"github.com/p4lru/p4lru/internal/hashing"
	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/policy"
)

// This file is the cluster tier's wire: a NodeServer fronts one serving
// engine as a peer other nodes (and the cluster router) reach over netproto,
// and a NodeClient is the matching dialer. Two planes share the peer
// address:
//
//   - UDP carries the per-key operations: MsgPing/MsgPong heartbeats,
//     MsgQuery/MsgReply point reads (CachedFlag 1 = hit, CachedIndex = the
//     cached value), and MsgUpdate/MsgUpdateAck synchronous installs — the
//     ack is only sent after engine.Apply returns, so an acked update is
//     applied, which is what lets the router promise zero lost acknowledged
//     updates on surviving nodes.
//   - TCP carries migration: bulk key-range handoff is a stream, not a
//     datagram exchange, so it rides the engine's self-delimiting
//     checksummed Snapshot format framed by a single wire header.
//     MsgMigratePull asks the node to stream the slice of its contents
//     whose ring position falls inside a set of (from, to] hash arcs
//     (engine.SnapshotFiltered); MsgMigratePush hands the node a snapshot
//     to restore, answered by MsgMigrateDone carrying the pair count.
type NodeServer struct {
	eng *engine.Engine
	// posHash places keys on the cluster ring; it must be seeded
	// identically on every node or range-filtered snapshots would slice
	// different key sets on different peers.
	posHash hashing.Hash
	epoch   time.Time
	gossip  func(in []MemberDigest) []MemberDigest

	udp *net.UDPConn
	tcp net.Listener

	closed atomic.Bool
	wg     sync.WaitGroup

	pings, queries, updates, migrations *obs.Counter
	gossips, digests                    *obs.Counter
}

// NodeConfig parameterizes NewNodeServer.
type NodeConfig struct {
	// Engine is the node's serving engine. Required; the server does not
	// own it (Close leaves it running) so a node can be drained, snapshotted
	// and restarted around the same engine.
	Engine *engine.Engine
	// RingSeed seeds the ring-position hash used to filter migration
	// streams. Every node and router in one cluster must share it.
	RingSeed uint64
	// Gossip, when non-nil, answers MsgGossip exchanges: the handler merges
	// the sender's membership digest and returns the node's own view, which
	// rides back on the MsgGossipAck. The cluster layer's Membership.Exchange
	// has exactly this signature. nil nodes ignore gossip datagrams.
	Gossip func(in []MemberDigest) []MemberDigest
	// Obs, when non-nil, receives node_pings_total, node_queries_total,
	// node_updates_total, node_migrations_total, node_gossips_total and
	// node_digests_total.
	Obs *obs.Registry
}

// NewNodeServer binds a UDP socket and a TCP listener on addr (use
// "127.0.0.1:0" in tests; the two planes get independent ports, read them
// back via UDPAddr/TCPAddr) and serves until Close.
func NewNodeServer(addr string, cfg NodeConfig) (*NodeServer, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("netproto: NodeConfig.Engine is required")
	}
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netproto: node addr: %w", err)
	}
	udp, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, fmt.Errorf("netproto: node udp listen: %w", err)
	}
	tcp, err := net.Listen("tcp", addr)
	if err != nil {
		udp.Close()
		return nil, fmt.Errorf("netproto: node tcp listen: %w", err)
	}
	s := &NodeServer{
		eng:     cfg.Engine,
		posHash: hashing.New(cfg.RingSeed),
		epoch:   time.Now(),
		gossip:  cfg.Gossip,
		udp:     udp,
		tcp:     tcp,
	}
	if r := cfg.Obs; r != nil {
		s.pings = r.Counter("node_pings_total")
		s.queries = r.Counter("node_queries_total")
		s.updates = r.Counter("node_updates_total")
		s.migrations = r.Counter("node_migrations_total")
		s.gossips = r.Counter("node_gossips_total")
		s.digests = r.Counter("node_digests_total")
	}
	s.wg.Add(2)
	go s.udpLoop()
	go s.tcpLoop()
	return s, nil
}

// UDPAddr returns the bound operation-plane address.
func (s *NodeServer) UDPAddr() *net.UDPAddr { return s.udp.LocalAddr().(*net.UDPAddr) }

// TCPAddr returns the bound migration-plane address.
func (s *NodeServer) TCPAddr() string { return s.tcp.Addr().String() }

// Close stops both planes. The engine is left running (the caller owns it).
func (s *NodeServer) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	_ = s.udp.Close()
	_ = s.tcp.Close()
	s.wg.Wait()
}

// udpLoop answers pings, point queries and synchronous updates, one
// datagram at a time — the cluster control/operation plane is far below the
// batched data-path rates the switch serves, so the simple loop is enough.
func (s *NodeServer) udpLoop() {
	defer s.wg.Done()
	buf := make([]byte, packetBufSize)
	for {
		n, peer, err := s.udp.ReadFromUDP(buf)
		if err != nil {
			if s.closed.Load() {
				return
			}
			continue
		}
		var msg Message
		if err := msg.Unmarshal(buf[:n]); err != nil {
			continue
		}
		var out int
		switch msg.Type {
		case MsgPing:
			s.pings.Inc()
			putHeader(buf, MsgPong, 0, msg.Key, 0)
			out = headerSize
		case MsgGossip:
			in, err := parseMemberDigests(msg.Value)
			if err != nil {
				continue
			}
			s.gossips.Inc()
			// The merge and the reply digest come from the same handler
			// call, so the ack reflects the post-merge view — one exchange
			// converges both sides, which is what lets a router bootstrap a
			// whole membership from any single live peer. A node with no
			// handler is ignorant, not dead: it acks with an empty view so
			// the sender's breaker doesn't score it unreachable.
			var reply []MemberDigest
			if s.gossip != nil {
				reply = s.gossip(in)
			}
			putHeader(buf, MsgGossipAck, 0, msg.Key, 0)
			full, err := appendMemberDigests(buf[:headerSize], reply)
			if err != nil {
				continue
			}
			out = len(full)
		case MsgQuery:
			s.queries.Inc()
			v, _, ok := s.eng.Query(msg.Key)
			flag := uint8(0)
			if ok {
				flag = 1
			}
			putHeader(buf, MsgReply, flag, msg.Key, v)
			out = headerSize
		case MsgUpdate:
			s.updates.Inc()
			s.eng.Apply(engine.Op{
				Key:   msg.Key,
				Value: msg.CachedIndex,
				Token: policy.NoToken,
				Now:   time.Since(s.epoch),
			})
			// Ack strictly after Apply returned: acked ⇒ applied.
			putHeader(buf, MsgUpdateAck, 0, msg.Key, 0)
			out = headerSize
		default:
			continue
		}
		_, _ = s.udp.WriteToUDP(buf[:out], peer)
	}
}

// tcpLoop accepts migration streams.
func (s *NodeServer) tcpLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			if s.closed.Load() {
				return
			}
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serveMigration(conn)
		}()
	}
}

// serveMigration handles one migration exchange on conn.
func (s *NodeServer) serveMigration(conn net.Conn) {
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	br := bufio.NewReader(conn)
	var head [headerSize]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return
	}
	var msg Message
	if err := msg.Unmarshal(head[:]); err != nil {
		return
	}
	switch msg.Type {
	case MsgMigratePull:
		arcs, err := readArcs(br)
		if err != nil {
			return
		}
		s.migrations.Inc()
		keep := func(key uint64) bool {
			h := s.posHash.Uint64(key)
			for _, a := range arcs {
				if arcContains(a, h) {
					return true
				}
			}
			return false
		}
		// The snapshot image is self-delimiting (terminating chunk +
		// checksummed trailer), so the stream needs no extra framing.
		_ = s.eng.SnapshotFiltered(conn, keep)
	case MsgArcDigest:
		arcs, err := readArcs(br)
		if err != nil {
			return
		}
		s.digests.Inc()
		// Fold the resident pairs inside the arcs through the shared
		// order-independent mix; the anti-entropy sweep compares this
		// against other replicas' answers without moving any pairs.
		var d ArcDigest
		s.eng.Range(func(k, v uint64) bool {
			h := s.posHash.Uint64(k)
			for _, a := range arcs {
				if arcContains(a, h) {
					d.Pairs++
					d.XOR ^= PairDigest(k, v)
					break
				}
			}
			return true
		})
		var ack [headerSize]byte
		putHeader(ack[:], MsgArcDigestAck, 1, d.Pairs, d.XOR)
		_, _ = conn.Write(ack[:])
	case MsgMigratePush:
		s.migrations.Inc()
		restore := s.eng.RestoreSnapshot
		if msg.CachedFlag != 0 {
			// Keep-existing mode: the pusher flipped ring ownership before
			// streaming, so resident keys are fresher than the image.
			restore = s.eng.RestoreSnapshotIfAbsent
		}
		n, err := restore(br)
		flag := uint8(1)
		if err != nil {
			flag = 0
		}
		var done [headerSize]byte
		putHeader(done[:], MsgMigrateDone, flag, 0, uint64(n))
		_, _ = conn.Write(done[:])
	}
}

// arcContains reports whether ring position h falls in the half-open arc
// (from, to], wrapping through zero when from ≥ to. A degenerate arc with
// from == to covers the whole ring (a single-node membership).
func arcContains(a [2]uint64, h uint64) bool {
	from, to := a[0], a[1]
	if from < to {
		return from < h && h <= to
	}
	return h > from || h <= to
}

// readArcs decodes the MsgMigratePull arc list: uint32 n, then n pairs of
// little-endian uint64 (from, to].
func readArcs(r io.Reader) ([][2]uint64, error) {
	var nb [4]byte
	if _, err := io.ReadFull(r, nb[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(nb[:])
	if n > 1<<16 {
		return nil, fmt.Errorf("netproto: %d migration arcs exceeds sanity bound", n)
	}
	arcs := make([][2]uint64, n)
	var buf [16]byte
	for i := range arcs {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, err
		}
		arcs[i][0] = binary.LittleEndian.Uint64(buf[0:8])
		arcs[i][1] = binary.LittleEndian.Uint64(buf[8:16])
	}
	return arcs, nil
}

// writeArcs is readArcs' encoder.
func writeArcs(w io.Writer, arcs [][2]uint64) error {
	var nb [4]byte
	binary.LittleEndian.PutUint32(nb[:], uint32(len(arcs)))
	if _, err := w.Write(nb[:]); err != nil {
		return err
	}
	var buf [16]byte
	for _, a := range arcs {
		binary.LittleEndian.PutUint64(buf[0:8], a[0])
		binary.LittleEndian.PutUint64(buf[8:16], a[1])
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// NodeClient dials one NodeServer. Operations are mutex-serialized over a
// single connected UDP socket (replies are matched by echoed key, so a
// stale reply from a timed-out attempt cannot be mis-delivered); migration
// streams open a fresh TCP connection each. The cluster router keeps one
// NodeClient per peer — peer fan-out is concurrent across clients, serial
// per peer, which matches the one-socket-per-peer heartbeat model.
type NodeClient struct {
	mu      sync.Mutex
	conn    *net.UDPConn
	buf     []byte
	tcpAddr string
	timeout time.Duration
	retries int
	nonce   atomic.Uint64
}

// DialNode connects to a node's UDP and TCP addresses. timeout bounds each
// attempt (0 = 100ms); retries is how many times a timed-out attempt is
// re-sent (0 = 1; NoRetries = single-shot).
func DialNode(udpAddr *net.UDPAddr, tcpAddr string, timeout time.Duration, retries int) (*NodeClient, error) {
	if timeout == 0 {
		timeout = 100 * time.Millisecond
	}
	switch {
	case retries == 0:
		retries = 1
	case retries == NoRetries:
		retries = 0
	case retries < 0:
		return nil, fmt.Errorf("netproto: DialNode retries = %d (use NoRetries for single-shot)", retries)
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, fmt.Errorf("netproto: dial node: %w", err)
	}
	return &NodeClient{
		conn:    conn,
		buf:     make([]byte, packetBufSize),
		tcpAddr: tcpAddr,
		timeout: timeout,
		retries: retries,
	}, nil
}

// Close releases the UDP socket.
func (c *NodeClient) Close() error { return c.conn.Close() }

// Addrs returns the node's two plane addresses (UDP ops, TCP migration) —
// what gossip digests advertise so other routers can dial this node.
func (c *NodeClient) Addrs() (udp, tcp string) {
	return c.conn.RemoteAddr().String(), c.tcpAddr
}

// roundTrip sends one request and waits for the matching reply type echoing
// key, retrying timed-out attempts. Errors carry the ErrTimeout /
// ErrUnreachable classification.
func (c *NodeClient) roundTrip(typ MsgType, key, idx uint64, want MsgType) (Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		putHeader(c.buf, typ, 0, key, idx)
		if _, err := c.conn.Write(c.buf[:headerSize]); err != nil {
			lastErr = err
			continue
		}
		if err := c.conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
			return Message{}, err
		}
		for {
			n, err := c.conn.Read(c.buf)
			if err != nil {
				lastErr = err
				break
			}
			var msg Message
			if err := msg.Unmarshal(c.buf[:n]); err != nil || msg.Type != want || msg.Key != key {
				continue // stale or foreign reply
			}
			return msg, nil
		}
	}
	return Message{}, fmt.Errorf("netproto: node %s %d failed after %d attempts: %w",
		c.conn.RemoteAddr(), typ, c.retries+1, classifyAttempt(lastErr))
}

// Ping round-trips a heartbeat.
func (c *NodeClient) Ping() error {
	_, err := c.roundTrip(MsgPing, c.nonce.Add(1), 0, MsgPong)
	return err
}

// Gossip exchanges membership digests with the node over the heartbeat
// plane: out rides a MsgGossip datagram, the node merges it, and the reply
// is the node's own (post-merge) view. Timed-out attempts retry like every
// other UDP operation; errors carry the ErrTimeout / ErrUnreachable
// classification so breakers treat a mute gossip peer like a mute ping peer.
func (c *NodeClient) Gossip(out []MemberDigest) ([]MemberDigest, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	nonce := c.nonce.Add(1)
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		putHeader(c.buf, MsgGossip, 0, nonce, 0)
		pkt, err := appendMemberDigests(c.buf[:headerSize], out)
		if err != nil {
			return nil, err // over the datagram bound: not retryable
		}
		if _, err := c.conn.Write(pkt); err != nil {
			lastErr = err
			continue
		}
		if err := c.conn.SetReadDeadline(time.Now().Add(c.timeout)); err != nil {
			return nil, err
		}
		for {
			n, err := c.conn.Read(c.buf)
			if err != nil {
				lastErr = err
				break
			}
			var msg Message
			if err := msg.Unmarshal(c.buf[:n]); err != nil || msg.Type != MsgGossipAck || msg.Key != nonce {
				continue // stale or foreign reply
			}
			return parseMemberDigests(msg.Value)
		}
	}
	return nil, fmt.Errorf("netproto: node %s gossip failed after %d attempts: %w",
		c.conn.RemoteAddr(), c.retries+1, classifyAttempt(lastErr))
}

// Query reads key from the node's engine: (value, true) on a hit.
func (c *NodeClient) Query(key uint64) (uint64, bool, error) {
	msg, err := c.roundTrip(MsgQuery, key, 0, MsgReply)
	if err != nil {
		return 0, false, err
	}
	return msg.CachedIndex, msg.CachedFlag != 0, nil
}

// Update installs key → val synchronously; a nil return means the node
// acked after applying.
func (c *NodeClient) Update(key, val uint64) error {
	_, err := c.roundTrip(MsgUpdate, key, val, MsgUpdateAck)
	return err
}

// migrateStreamBudget bounds one whole migration stream once its header
// exchange succeeded — generous because it covers a bulk snapshot transfer,
// not one datagram's RTT.
const migrateStreamBudget = 30 * time.Second

// dialPlane opens one migration-plane connection with the same per-attempt
// deadline discipline as the UDP ops plane: the dial and the header exchange
// are bounded by the client's attempt timeout, and failures carry the typed
// ErrTimeout / ErrUnreachable classification so per-peer breakers score a
// slow migration plane exactly like a slow ops plane.
func (c *NodeClient) dialPlane(op string) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", c.tcpAddr, c.timeout)
	if err != nil {
		return nil, fmt.Errorf("netproto: %s dial: %w", op, classifyAttempt(err))
	}
	// The header exchange must answer within one attempt budget; the caller
	// widens the deadline to the stream budget once the exchange succeeds.
	_ = conn.SetDeadline(time.Now().Add(c.timeout))
	return conn, nil
}

// OpenPull asks the node to stream the slice of its contents inside arcs as
// a snapshot image and returns the stream. The caller must Close it (the
// image is self-delimiting, so a reader may stop at the snapshot trailer).
// Setup failures carry the ErrTimeout / ErrUnreachable classification.
func (c *NodeClient) OpenPull(arcs [][2]uint64) (io.ReadCloser, error) {
	conn, err := c.dialPlane("migration pull")
	if err != nil {
		return nil, err
	}
	var head [headerSize]byte
	putHeader(head[:], MsgMigratePull, 0, 0, 0)
	if _, err := conn.Write(head[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netproto: migration request: %w", classifyAttempt(err))
	}
	if err := writeArcs(conn, arcs); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netproto: migration arcs: %w", classifyAttempt(err))
	}
	_ = conn.SetDeadline(time.Now().Add(migrateStreamBudget))
	return conn, nil
}

// Push streams a snapshot image from r into the node's engine and returns
// the restored pair count from the MsgMigrateDone ack. With keepExisting
// set the node skips keys already resident instead of overwriting them
// (RestoreSnapshotIfAbsent) — the mode cluster migration uses after a ring
// swap, when resident keys are fresher than the image. Transport failures
// carry the ErrTimeout / ErrUnreachable classification.
func (c *NodeClient) Push(r io.Reader, keepExisting bool) (int, error) {
	conn, err := c.dialPlane("migration push")
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	var keep uint8
	if keepExisting {
		keep = 1
	}
	var head [headerSize]byte
	putHeader(head[:], MsgMigratePush, keep, 0, 0)
	if _, err := conn.Write(head[:]); err != nil {
		return 0, fmt.Errorf("netproto: migration push: %w", classifyAttempt(err))
	}
	_ = conn.SetDeadline(time.Now().Add(migrateStreamBudget))
	if _, err := io.Copy(conn, r); err != nil {
		return 0, fmt.Errorf("netproto: migration stream: %w", classifyAttempt(err))
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite() // the node sees EOF... but the snapshot trailer already delimits
	}
	if _, err := io.ReadFull(conn, head[:]); err != nil {
		return 0, fmt.Errorf("netproto: migration ack: %w", classifyAttempt(err))
	}
	var done Message
	if err := done.Unmarshal(head[:]); err != nil || done.Type != MsgMigrateDone {
		return 0, fmt.Errorf("netproto: bad migration ack")
	}
	if done.CachedFlag == 0 {
		return int(done.CachedIndex), fmt.Errorf("netproto: node failed to restore migration stream")
	}
	return int(done.CachedIndex), nil
}

// Digest asks the node for the count + xor summary of its contents inside
// arcs — the anti-entropy sweep's comparison primitive. It rides the TCP
// plane (arc lists outgrow a datagram) with the same typed-error and
// deadline discipline as migration.
func (c *NodeClient) Digest(arcs [][2]uint64) (ArcDigest, error) {
	conn, err := c.dialPlane("digest")
	if err != nil {
		return ArcDigest{}, err
	}
	defer conn.Close()
	var head [headerSize]byte
	putHeader(head[:], MsgArcDigest, 0, 0, 0)
	if _, err := conn.Write(head[:]); err != nil {
		return ArcDigest{}, fmt.Errorf("netproto: digest request: %w", classifyAttempt(err))
	}
	if err := writeArcs(conn, arcs); err != nil {
		return ArcDigest{}, fmt.Errorf("netproto: digest arcs: %w", classifyAttempt(err))
	}
	// Digesting is a Range over the node's residents — bounded by the
	// stream budget, not one RTT, on large nodes.
	_ = conn.SetDeadline(time.Now().Add(migrateStreamBudget))
	if _, err := io.ReadFull(conn, head[:]); err != nil {
		return ArcDigest{}, fmt.Errorf("netproto: digest ack: %w", classifyAttempt(err))
	}
	var ack Message
	if err := ack.Unmarshal(head[:]); err != nil || ack.Type != MsgArcDigestAck {
		return ArcDigest{}, fmt.Errorf("netproto: bad digest ack")
	}
	return ArcDigest{Pairs: ack.Key, XOR: ack.CachedIndex}, nil
}
