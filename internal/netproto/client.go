package netproto

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/netproto/batchio"
	"github.com/p4lru/p4lru/internal/quantile"
)

// Typed failure classes for exhausted query attempts, so callers holding a
// per-peer circuit breaker (the cluster router, a Loader over RemoteStore)
// can tell "node down" from "node slow" without string-matching — the same
// role resilience.ErrOpen plays for breaker rejections.
var (
	// ErrTimeout means every attempt ran out its reply deadline: the peer
	// is slow, overloaded, or silently gone (UDP cannot tell which).
	ErrTimeout = errors.New("netproto: no reply within the attempt budget")
	// ErrUnreachable means the socket layer rejected the exchange (e.g. a
	// connected UDP socket observing ICMP port-unreachable): the peer is
	// down, and the caller should fail fast rather than retry.
	ErrUnreachable = errors.New("netproto: peer unreachable")
)

// classifyAttempt wraps the last per-attempt error with the matching typed
// sentinel: timeouts stay ErrTimeout, anything the socket layer surfaced
// becomes ErrUnreachable.
func classifyAttempt(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w (last: %v)", ErrTimeout, err)
	}
	return fmt.Errorf("%w (last: %v)", ErrUnreachable, err)
}

// NoRetries is the ClientConfig.Retries sentinel for single-shot queries:
// one attempt, no re-send. (0 means "default", so single-shot needs its own
// spelling.)
const NoRetries = -1

// ClientConfig parameterizes NewClient. The zero value is a working
// configuration: 1024-key Zipf(1.1) workload, 500ms attempt timeout, 3
// retries with 10ms..200ms capped exponential backoff, 64-packet batches.
type ClientConfig struct {
	// Items bounds the workload key space (keys 1..Items; 0 = 1024, must
	// be ≥ 2).
	Items int
	// Skew is the Zipf exponent shaping key popularity (0 = 1.1, must be
	// > 1).
	Skew float64
	// Seed drives the workload and jitter randomness.
	Seed int64
	// Timeout bounds each attempt's wait for a reply (0 = 500ms).
	Timeout time.Duration
	// Retries is how many times a timed-out attempt is re-sent (0 = 3;
	// NoRetries = single-shot).
	Retries int
	// Backoff is the delay before the first re-send; it doubles per retry
	// up to BackoffCap (0s = 10ms and 200ms).
	Backoff    time.Duration
	BackoffCap time.Duration
	// Batch is QueryBatch's pipelining window: how many queries are in
	// flight per send batch (0 = 64).
	Batch int
}

func (c ClientConfig) withDefaults() (ClientConfig, error) {
	if c.Items == 0 {
		c.Items = 1024
	}
	if c.Items < 2 {
		return c, fmt.Errorf("netproto: ClientConfig.Items = %d, need ≥ 2", c.Items)
	}
	if c.Skew == 0 {
		c.Skew = 1.1
	}
	if c.Skew <= 1 {
		return c, fmt.Errorf("netproto: ClientConfig.Skew = %v, need > 1", c.Skew)
	}
	if c.Timeout == 0 {
		c.Timeout = 500 * time.Millisecond
	}
	if c.Timeout < 0 {
		return c, fmt.Errorf("netproto: ClientConfig.Timeout = %v, need > 0", c.Timeout)
	}
	switch {
	case c.Retries == 0:
		c.Retries = 3
	case c.Retries == NoRetries:
		c.Retries = 0
	case c.Retries < 0:
		return c, fmt.Errorf("netproto: ClientConfig.Retries = %d (use NoRetries for single-shot)", c.Retries)
	}
	if c.Backoff == 0 {
		c.Backoff = 10 * time.Millisecond
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = 200 * time.Millisecond
	}
	if c.Backoff < 0 || c.BackoffCap < c.Backoff {
		return c, fmt.Errorf("netproto: backoff %v / cap %v out of order", c.Backoff, c.BackoffCap)
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	return c, nil
}

// Client issues point queries through the switch and validates replies.
//
// UDP loses datagrams, so a round trip is an attempt, not a guarantee: each
// attempt waits cfg.Timeout for a matching reply, and a lost packet costs
// one attempt instead of failing the whole query — the request is re-sent
// up to cfg.Retries more times with capped exponential backoff plus jitter.
// Queries are idempotent reads and replies carry the key, so duplicate or
// stale replies from earlier attempts are filtered, never mismatched.
//
// Query is the closed-loop path: one packet in flight, its RTT is the
// latency floor. QueryBatch is the pipelined path: a whole window of
// queries rides one sendmmsg and their replies drain in batches, which is
// where the batched wire pays off. A Client is single-goroutine, like its
// workload rng.
type Client struct {
	conn  *net.UDPConn
	bconn *batchio.Conn
	cfg   ClientConfig
	rng   *rand.Rand
	zipf  *rand.Zipf

	// jitterRng drives backoff jitter; kept separate from the workload rng
	// so retries do not perturb the Zipf key sequence.
	jitterRng *rand.Rand

	// recvBuf is the persistent single-query receive buffer (the batched
	// rings serve QueryBatch): no per-attempt allocation on either path.
	recvBuf []byte
	// send/recv rings back QueryBatch.
	sendRing *batchio.Ring
	recvRing *batchio.Ring
	// done marks answered window positions across a QueryBatch chunk.
	done []bool

	resends atomic.Int64
}

// NewClient dials the switch with the given configuration.
func NewClient(switchAddr *net.UDPAddr, cfg ClientConfig) (*Client, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, switchAddr)
	if err != nil {
		return nil, fmt.Errorf("netproto: dial switch: %w", err)
	}
	bconn, err := batchio.NewConn(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("netproto: batch conn: %w", err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Client{
		conn:      conn,
		bconn:     bconn,
		cfg:       cfg,
		rng:       rng,
		zipf:      rand.NewZipf(rng, cfg.Skew, 1, uint64(cfg.Items-1)),
		jitterRng: rand.New(rand.NewSource(cfg.Seed ^ 0x6a177e12)),
		recvBuf:   make([]byte, packetBufSize),
		sendRing:  batchio.NewRing(cfg.Batch, packetBufSize),
		recvRing:  batchio.NewRing(cfg.Batch, packetBufSize),
		done:      make([]bool, cfg.Batch),
	}, nil
}

// Config returns the client's resolved (defaulted) configuration.
func (c *Client) Config() ClientConfig { return c.cfg }

// Close releases the socket.
func (c *Client) Close() error { return c.conn.Close() }

// Resends returns the number of re-sent requests (attempts beyond each
// query's first).
func (c *Client) Resends() int64 { return c.resends.Load() }

// QueryResult is one completed round trip.
type QueryResult struct {
	Key     uint64
	Index   uint64 // the resolved database index the reply carried
	Latency time.Duration
	Cached  bool // the switch resolved the index
	Valid   bool // the value matched the expected contents
}

// Query performs one synchronous query for key, retrying lost datagrams.
func (c *Client) Query(key uint64) (QueryResult, error) {
	return c.QueryContext(context.Background(), key)
}

// QueryContext is Query bounded by ctx: cancellation is checked between
// attempts and caps each attempt's read deadline.
func (c *Client) QueryContext(ctx context.Context, key uint64) (QueryResult, error) {
	start := time.Now()
	backoff := c.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.resends.Add(1)
			d := c.jitter(backoff)
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return QueryResult{}, ctx.Err()
			}
			backoff *= 2
			if backoff > c.cfg.BackoffCap {
				backoff = c.cfg.BackoffCap
			}
		}
		res, err := c.attempt(ctx, key, start)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return QueryResult{}, ctx.Err()
		}
	}
	return QueryResult{}, fmt.Errorf("netproto: query %d failed after %d attempts: %w",
		key, c.cfg.Retries+1, classifyAttempt(lastErr))
}

// jitter spreads a backoff delay over [d/2, d].
func (c *Client) jitter(d time.Duration) time.Duration {
	if d > 1 {
		d = d/2 + time.Duration(c.jitterRng.Int63n(int64(d/2)+1))
	}
	return d
}

// attempt sends the request once and waits up to cfg.Timeout (clamped by
// ctx's deadline) for a matching reply.
func (c *Client) attempt(ctx context.Context, key uint64, start time.Time) (QueryResult, error) {
	n := PutQuery(c.recvBuf, key)
	if _, err := c.conn.Write(c.recvBuf[:n]); err != nil {
		return QueryResult{}, fmt.Errorf("netproto: send: %w", err)
	}

	deadline := time.Now().Add(c.cfg.Timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := c.conn.SetReadDeadline(deadline); err != nil {
		return QueryResult{}, err
	}
	for {
		n, err := c.conn.Read(c.recvBuf)
		if err != nil {
			return QueryResult{}, fmt.Errorf("netproto: recv: %w", err)
		}
		var msg Message
		if err := msg.Unmarshal(c.recvBuf[:n]); err != nil || msg.Type != MsgReply {
			continue
		}
		if msg.Key != key {
			continue // stale reply from an earlier timed-out query
		}
		return QueryResult{
			Key:     key,
			Index:   msg.CachedIndex,
			Latency: time.Since(start),
			Cached:  msg.CachedFlag != 0,
			Valid:   validValue(key, msg.Value),
		}, nil
	}
}

// validValue checks a reply payload against the kvindex arena contents.
func validValue(key uint64, value []byte) bool {
	return len(value) >= 8 && binary.LittleEndian.Uint64(value) == key^0xbadc0ffee
}

// QueryBatch resolves keys[i] into results[i] with up to cfg.Batch queries
// in flight at once: each window rides one batched send, replies drain in
// batched reads, and only the keys still missing after a timeout are
// re-sent (a partial batch), with the same per-attempt retry budget as
// Query. It returns the number of keys answered; err is non-nil only for
// socket-level failures — an exhausted retry budget just leaves those
// results zero-valued (check QueryResult.Key). Duplicate keys are fine:
// each reply fills the first still-unanswered position for its key.
func (c *Client) QueryBatch(keys []uint64, results []QueryResult) (int, error) {
	if len(results) < len(keys) {
		return 0, fmt.Errorf("netproto: QueryBatch: %d results for %d keys", len(results), len(keys))
	}
	answered := 0
	for base := 0; base < len(keys); base += c.cfg.Batch {
		end := base + c.cfg.Batch
		if end > len(keys) {
			end = len(keys)
		}
		n, err := c.queryWindow(keys[base:end], results[base:end])
		answered += n
		if err != nil {
			return answered, err
		}
	}
	return answered, nil
}

// queryWindow runs one pipelined window (≤ cfg.Batch keys): send all
// missing queries as one batch, drain replies until the window is full or
// the attempt times out, repeat with backoff up to the retry budget.
func (c *Client) queryWindow(keys []uint64, results []QueryResult) (int, error) {
	start := time.Now()
	done := c.done[:len(keys)]
	for i := range done {
		done[i] = false
	}
	answered := 0
	backoff := c.cfg.Backoff
	for attempt := 0; attempt <= c.cfg.Retries && answered < len(keys); attempt++ {
		if attempt > 0 {
			time.Sleep(c.jitter(backoff))
			backoff *= 2
			if backoff > c.cfg.BackoffCap {
				backoff = c.cfg.BackoffCap
			}
		}
		// Send every still-missing key as one batch — the partial-batch
		// re-send after loss.
		ds := c.sendRing.Datagrams()
		pending := 0
		for i, k := range keys {
			if done[i] {
				continue
			}
			if attempt > 0 {
				c.resends.Add(1)
			}
			ds[pending].N = PutQuery(ds[pending].Buf, k)
			ds[pending].Addr = netip.AddrPort{} // zero = the connected peer
			pending++
		}
		if _, err := c.bconn.WriteBatch(c.sendRing, pending); err != nil {
			return answered, fmt.Errorf("netproto: batch send: %w", err)
		}
		deadline := time.Now().Add(c.cfg.Timeout)
		for answered < len(keys) {
			if err := c.bconn.SetReadDeadline(deadline); err != nil {
				return answered, err
			}
			got, err := c.bconn.ReadBatch(c.recvRing)
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					break // attempt over; re-send the stragglers
				}
				return answered, fmt.Errorf("netproto: batch recv: %w", err)
			}
			rds := c.recvRing.Datagrams()
			for j := 0; j < got; j++ {
				var msg Message
				if err := msg.Unmarshal(rds[j].Bytes()); err != nil || msg.Type != MsgReply {
					continue
				}
				// First unanswered position holding this key gets the
				// reply; extras (duplicates of an earlier attempt) fall
				// through harmlessly.
				for i, k := range keys {
					if done[i] || k != msg.Key {
						continue
					}
					done[i] = true
					answered++
					results[i] = QueryResult{
						Key:     msg.Key,
						Index:   msg.CachedIndex,
						Latency: time.Since(start),
						Cached:  msg.CachedFlag != 0,
						Valid:   validValue(msg.Key, msg.Value),
					}
					break
				}
			}
		}
	}
	for i := range keys {
		if !done[i] {
			results[i] = QueryResult{}
		}
	}
	return answered, nil
}

// NextKey draws the next Zipf-popular key (1-based).
func (c *Client) NextKey() uint64 { return c.zipf.Uint64() + 1 }

// RunStats aggregates a Run. Latency is reported as streaming P² quantiles
// (internal/quantile), not just a mean: the batched wire path's win shows
// up in the tail, and a mean hides the retrans/backoff outliers entirely.
type RunStats struct {
	Queries  int
	Cached   int
	Invalid  int
	Failures int
	AvgRTT   time.Duration
	P50      time.Duration
	P99      time.Duration
	P999     time.Duration
}

// latencyTrack is the per-run quantile state behind RunStats.
type latencyTrack struct {
	p50, p99, p999 *quantile.Estimator
	total          time.Duration
	n              int
}

func newLatencyTrack() *latencyTrack {
	return &latencyTrack{p50: quantile.New(0.5), p99: quantile.New(0.99), p999: quantile.New(0.999)}
}

func (l *latencyTrack) observe(d time.Duration) {
	l.n++
	l.total += d
	ns := float64(d)
	l.p50.Add(ns)
	l.p99.Add(ns)
	l.p999.Add(ns)
}

func (l *latencyTrack) fill(st *RunStats) {
	if l.n == 0 {
		return
	}
	st.AvgRTT = l.total / time.Duration(l.n)
	st.P50 = time.Duration(l.p50.Value())
	st.P99 = time.Duration(l.p99.Value())
	st.P999 = time.Duration(l.p999.Value())
}

// Run performs count closed-loop queries.
func (c *Client) Run(count int) RunStats {
	var st RunStats
	lat := newLatencyTrack()
	for i := 0; i < count; i++ {
		res, err := c.Query(c.NextKey())
		if err != nil {
			st.Failures++
			continue
		}
		st.Queries++
		lat.observe(res.Latency)
		if res.Cached {
			st.Cached++
		}
		if !res.Valid {
			st.Invalid++
		}
	}
	lat.fill(&st)
	return st
}

// RunBatch performs count queries through the pipelined QueryBatch path,
// cfg.Batch at a time — the open-loop ladder driver.
func (c *Client) RunBatch(count int) RunStats {
	var st RunStats
	lat := newLatencyTrack()
	keys := make([]uint64, c.cfg.Batch)
	results := make([]QueryResult, c.cfg.Batch)
	for served := 0; served < count; {
		n := c.cfg.Batch
		if rem := count - served; n > rem {
			n = rem
		}
		for i := 0; i < n; i++ {
			keys[i] = c.NextKey()
		}
		answered, err := c.QueryBatch(keys[:n], results[:n])
		served += n
		if err != nil {
			st.Failures += n - answered
			return st
		}
		st.Failures += n - answered
		for i := 0; i < n; i++ {
			if results[i].Key == 0 {
				continue
			}
			st.Queries++
			lat.observe(results[i].Latency)
			if results[i].Cached {
				st.Cached++
			}
			if !results[i].Valid {
				st.Invalid++
			}
		}
	}
	lat.fill(&st)
	return st
}
