package netproto

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"time"
)

// Client issues point queries through the switch and validates replies.
//
// UDP loses datagrams, so a round trip is an attempt, not a guarantee: each
// attempt waits Timeout for a matching reply, and a lost packet costs one
// attempt instead of failing the whole query — the request is re-sent up to
// Retries more times with capped exponential backoff plus jitter. Queries
// are idempotent reads and replies carry the key, so duplicate or stale
// replies from earlier attempts are filtered, never mismatched.
type Client struct {
	conn *net.UDPConn
	rng  *rand.Rand
	zipf *rand.Zipf

	// Timeout bounds each attempt's wait for a reply (default 500ms).
	Timeout time.Duration
	// Retries is how many times a timed-out attempt is re-sent (default 3;
	// 0 restores single-shot behaviour).
	Retries int
	// Backoff is the delay before the first re-send; it doubles per retry
	// up to BackoffCap (defaults 10ms and 200ms).
	Backoff    time.Duration
	BackoffCap time.Duration

	// jitterRng drives backoff jitter; kept separate from the workload rng
	// so retries do not perturb the Zipf key sequence. Guarded by no lock:
	// Client is single-goroutine, like the workload rng.
	jitterRng *rand.Rand

	resends atomic.Int64
}

// NewClient dials the switch. items bounds the key space (keys 1..items);
// skew shapes popularity.
func NewClient(switchAddr *net.UDPAddr, items int, skew float64, seed int64) (*Client, error) {
	conn, err := net.DialUDP("udp", nil, switchAddr)
	if err != nil {
		return nil, fmt.Errorf("netproto: dial switch: %w", err)
	}
	rng := rand.New(rand.NewSource(seed))
	return &Client{
		conn:       conn,
		rng:        rng,
		zipf:       rand.NewZipf(rng, skew, 1, uint64(items-1)),
		Timeout:    500 * time.Millisecond,
		Retries:    3,
		Backoff:    10 * time.Millisecond,
		BackoffCap: 200 * time.Millisecond,
		jitterRng:  rand.New(rand.NewSource(seed ^ 0x6a177e12)),
	}, nil
}

// Close releases the socket.
func (c *Client) Close() error { return c.conn.Close() }

// Resends returns the number of re-sent requests (attempts beyond each
// query's first).
func (c *Client) Resends() int64 { return c.resends.Load() }

// QueryResult is one completed round trip.
type QueryResult struct {
	Key     uint64
	Index   uint64 // the resolved database index the reply carried
	Latency time.Duration
	Cached  bool // the switch resolved the index
	Valid   bool // the value matched the expected contents
}

// Query performs one synchronous query for key, retrying lost datagrams.
func (c *Client) Query(key uint64) (QueryResult, error) {
	return c.QueryContext(context.Background(), key)
}

// QueryContext is Query bounded by ctx: cancellation is checked between
// attempts and caps each attempt's read deadline.
func (c *Client) QueryContext(ctx context.Context, key uint64) (QueryResult, error) {
	start := time.Now()
	backoff := c.Backoff
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			c.resends.Add(1)
			d := backoff
			if d > 1 {
				d = d/2 + time.Duration(c.jitterRng.Int63n(int64(d/2)+1))
			}
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return QueryResult{}, ctx.Err()
			}
			backoff *= 2
			if backoff > c.BackoffCap {
				backoff = c.BackoffCap
			}
		}
		res, err := c.attempt(ctx, key, start)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return QueryResult{}, ctx.Err()
		}
	}
	return QueryResult{}, fmt.Errorf("netproto: query %d failed after %d attempts: %w",
		key, c.Retries+1, lastErr)
}

// attempt sends the request once and waits up to Timeout (clamped by ctx's
// deadline) for a matching reply.
func (c *Client) attempt(ctx context.Context, key uint64, start time.Time) (QueryResult, error) {
	req := Message{Type: MsgQuery, Key: key}
	if _, err := c.conn.Write(req.Marshal()); err != nil {
		return QueryResult{}, fmt.Errorf("netproto: send: %w", err)
	}

	deadline := time.Now().Add(c.Timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := c.conn.SetReadDeadline(deadline); err != nil {
		return QueryResult{}, err
	}
	buf := make([]byte, 64*1024)
	for {
		n, err := c.conn.Read(buf)
		if err != nil {
			return QueryResult{}, fmt.Errorf("netproto: recv: %w", err)
		}
		var msg Message
		if err := msg.Unmarshal(buf[:n]); err != nil || msg.Type != MsgReply {
			continue
		}
		if msg.Key != key {
			continue // stale reply from an earlier timed-out query
		}
		valid := len(msg.Value) >= 8 &&
			binary.LittleEndian.Uint64(msg.Value) == key^0xbadc0ffee
		return QueryResult{
			Key:     key,
			Index:   msg.CachedIndex,
			Latency: time.Since(start),
			Cached:  msg.CachedFlag != 0,
			Valid:   valid,
		}, nil
	}
}

// NextKey draws the next Zipf-popular key (1-based).
func (c *Client) NextKey() uint64 { return c.zipf.Uint64() + 1 }

// RunStats aggregates a Run.
type RunStats struct {
	Queries  int
	Cached   int
	Invalid  int
	Failures int
	AvgRTT   time.Duration
}

// Run performs count closed-loop queries.
func (c *Client) Run(count int) RunStats {
	var st RunStats
	var total time.Duration
	for i := 0; i < count; i++ {
		res, err := c.Query(c.NextKey())
		if err != nil {
			st.Failures++
			continue
		}
		st.Queries++
		total += res.Latency
		if res.Cached {
			st.Cached++
		}
		if !res.Valid {
			st.Invalid++
		}
	}
	if st.Queries > 0 {
		st.AvgRTT = total / time.Duration(st.Queries)
	}
	return st
}
