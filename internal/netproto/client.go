package netproto

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"time"
)

// Client issues point queries through the switch and validates replies.
type Client struct {
	conn *net.UDPConn
	rng  *rand.Rand
	zipf *rand.Zipf

	// Timeout bounds each round trip (lost datagrams count as failures).
	Timeout time.Duration
}

// NewClient dials the switch. items bounds the key space (keys 1..items);
// skew shapes popularity.
func NewClient(switchAddr *net.UDPAddr, items int, skew float64, seed int64) (*Client, error) {
	conn, err := net.DialUDP("udp", nil, switchAddr)
	if err != nil {
		return nil, fmt.Errorf("netproto: dial switch: %w", err)
	}
	rng := rand.New(rand.NewSource(seed))
	return &Client{
		conn:    conn,
		rng:     rng,
		zipf:    rand.NewZipf(rng, skew, 1, uint64(items-1)),
		Timeout: 2 * time.Second,
	}, nil
}

// Close releases the socket.
func (c *Client) Close() error { return c.conn.Close() }

// QueryResult is one completed round trip.
type QueryResult struct {
	Key     uint64
	Latency time.Duration
	Cached  bool // the switch resolved the index
	Valid   bool // the value matched the expected contents
}

// Query performs one synchronous round trip for key.
func (c *Client) Query(key uint64) (QueryResult, error) {
	start := time.Now()
	req := Message{Type: MsgQuery, Key: key}
	if _, err := c.conn.Write(req.Marshal()); err != nil {
		return QueryResult{}, fmt.Errorf("netproto: send: %w", err)
	}

	if err := c.conn.SetReadDeadline(time.Now().Add(c.Timeout)); err != nil {
		return QueryResult{}, err
	}
	buf := make([]byte, 64*1024)
	for {
		n, err := c.conn.Read(buf)
		if err != nil {
			return QueryResult{}, fmt.Errorf("netproto: recv: %w", err)
		}
		var msg Message
		if err := msg.Unmarshal(buf[:n]); err != nil || msg.Type != MsgReply {
			continue
		}
		if msg.Key != key {
			continue // stale reply from an earlier timed-out query
		}
		valid := len(msg.Value) >= 8 &&
			binary.LittleEndian.Uint64(msg.Value) == key^0xbadc0ffee
		return QueryResult{
			Key:     key,
			Latency: time.Since(start),
			Cached:  msg.CachedFlag != 0,
			Valid:   valid,
		}, nil
	}
}

// NextKey draws the next Zipf-popular key (1-based).
func (c *Client) NextKey() uint64 { return c.zipf.Uint64() + 1 }

// RunStats aggregates a Run.
type RunStats struct {
	Queries  int
	Cached   int
	Invalid  int
	Failures int
	AvgRTT   time.Duration
}

// Run performs count closed-loop queries.
func (c *Client) Run(count int) RunStats {
	var st RunStats
	var total time.Duration
	for i := 0; i < count; i++ {
		res, err := c.Query(c.NextKey())
		if err != nil {
			st.Failures++
			continue
		}
		st.Queries++
		total += res.Latency
		if res.Cached {
			st.Cached++
		}
		if !res.Valid {
			st.Invalid++
		}
	}
	if st.Queries > 0 {
		st.AvgRTT = total / time.Duration(st.Queries)
	}
	return st
}
