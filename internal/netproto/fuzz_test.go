package netproto

import (
	"bytes"
	"testing"

	"github.com/p4lru/p4lru/internal/netproto/batchio"
)

// FuzzUnmarshal: the wire decoder must never panic, and anything it accepts
// must re-marshal to an equivalent message.
func FuzzUnmarshal(f *testing.F) {
	f.Add((&Message{Type: MsgQuery, Key: 7}).Marshal())
	f.Add((&Message{Type: MsgReply, CachedFlag: 2, Key: 9, CachedIndex: 64,
		Value: []byte("v")}).Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, headerSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := m.Unmarshal(data); err != nil {
			return
		}
		var again Message
		if err := again.Unmarshal(m.Marshal()); err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if again.Type != m.Type || again.Key != m.Key ||
			again.CachedFlag != m.CachedFlag || again.CachedIndex != m.CachedIndex {
			t.Fatalf("round trip drifted: %+v vs %+v", again, m)
		}
	})
}

// FuzzBatchRoundTrip exercises the zero-copy batch framing: packets encoded
// with PutQuery/PutReply into ring slots, patched in place with PatchCached,
// and decoded straight out of the slot must round-trip exactly — and a
// decode after the ring slot is rewritten (the reuse that follows every
// ReadBatch) must see only the new packet, never residue of the old one.
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add(uint64(7), uint64(0), uint8(0), []byte("value"), []byte("v2"))
	f.Add(uint64(1<<40), uint64(64), uint8(3), bytes.Repeat([]byte{0xab}, 64), []byte{})
	f.Add(uint64(0), uint64(1), uint8(1), []byte{}, bytes.Repeat([]byte{0xcd}, 128))

	f.Fuzz(func(t *testing.T, key, idx uint64, flag uint8, val1, val2 []byte) {
		ring := batchio.NewRing(2, 2048)
		ds := ring.Datagrams()
		if len(val1) > len(ds[0].Buf)-headerSize {
			val1 = val1[:len(ds[0].Buf)-headerSize]
		}
		if len(val2) > len(ds[1].Buf)-headerSize {
			val2 = val2[:len(ds[1].Buf)-headerSize]
		}

		// Slot 0: a query stamped by the switch's in-place patch.
		ds[0].N = PutQuery(ds[0].Buf, key)
		PatchCached(ds[0].Bytes(), flag, idx)
		var q Message
		if err := q.Unmarshal(ds[0].Bytes()); err != nil {
			t.Fatalf("decode of encoded query: %v", err)
		}
		if q.Type != MsgQuery || q.Key != key || q.CachedFlag != flag || q.CachedIndex != idx {
			t.Fatalf("query round trip drifted: %+v", q)
		}
		if len(q.Value) != 0 {
			t.Fatalf("query decoded with %d value bytes", len(q.Value))
		}

		// Slot 1: a reply. The decoded value must alias the ring slot
		// (that is the zero-copy contract) and match exactly.
		ds[1].N = PutReply(ds[1].Buf, flag, key, idx, val1)
		var r Message
		if err := r.Unmarshal(ds[1].Bytes()); err != nil {
			t.Fatalf("decode of encoded reply: %v", err)
		}
		if r.Type != MsgReply || r.Key != key || r.CachedFlag != flag ||
			r.CachedIndex != idx || !bytes.Equal(r.Value, val1) {
			t.Fatalf("reply round trip drifted: %+v (want value %x)", r, val1)
		}
		if len(val1) > 0 && &r.Value[0] != &ds[1].Buf[headerSize] {
			t.Fatal("decoded value does not alias the ring slot — decode copied")
		}

		// Ring reuse: compaction swaps slots, then the next batch rewrites
		// them. The fresh decode must carry val2 with zero residue of val1,
		// even when val2 is shorter.
		ring.Swap(0, 1)
		ds = ring.Datagrams()
		ds[0].N = PutReply(ds[0].Buf, flag^1, key+1, idx+1, val2)
		var fresh Message
		if err := fresh.Unmarshal(ds[0].Bytes()); err != nil {
			t.Fatalf("decode after ring reuse: %v", err)
		}
		if fresh.Key != key+1 || fresh.CachedFlag != flag^1 || fresh.CachedIndex != idx+1 {
			t.Fatalf("post-reuse header drifted: %+v", fresh)
		}
		if !bytes.Equal(fresh.Value, val2) {
			t.Fatalf("stale bytes across ring reuse: got %x, want %x", fresh.Value, val2)
		}
	})
}
