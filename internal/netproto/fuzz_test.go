package netproto

import "testing"

// FuzzUnmarshal: the wire decoder must never panic, and anything it accepts
// must re-marshal to an equivalent message.
func FuzzUnmarshal(f *testing.F) {
	f.Add((&Message{Type: MsgQuery, Key: 7}).Marshal())
	f.Add((&Message{Type: MsgReply, CachedFlag: 2, Key: 9, CachedIndex: 64,
		Value: []byte("v")}).Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, headerSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := m.Unmarshal(data); err != nil {
			return
		}
		var again Message
		if err := again.Unmarshal(m.Marshal()); err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if again.Type != m.Type || again.Key != m.Key ||
			again.CachedFlag != m.CachedFlag || again.CachedIndex != m.CachedIndex {
			t.Fatalf("round trip drifted: %+v vs %+v", again, m)
		}
	})
}
