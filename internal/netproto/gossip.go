package netproto

import (
	"encoding/binary"
	"fmt"
)

// This file is the membership-gossip half of the cluster peer wire: the
// digest entry format piggybacked on the UDP heartbeat plane (MsgGossip /
// MsgGossipAck) and the arc-digest summary the anti-entropy sweep compares
// across replicas (MsgArcDigest / MsgArcDigestAck). netproto only moves the
// bytes — the merge semantics (incarnation precedence, suspicion, refutation)
// live in internal/cluster, which hands the server a callback.

// Member status codes carried in a digest entry. Larger wins at equal
// incarnation, so a death verdict beats a suspicion beats liveness, and a
// deliberate departure is terminal.
const (
	MemberAlive   uint8 = 0
	MemberSuspect uint8 = 1
	MemberDead    uint8 = 2
	MemberLeft    uint8 = 3
)

// MemberDigest is one gossiped membership entry: who, where, and the
// (incarnation, status) pair SWIM-style merge rules order verdicts by.
// UDPAddr/TCPAddr are the member's node-server planes ("" when the member is
// an in-process peer reached through a resolver instead of a dialer).
type MemberDigest struct {
	ID          string
	UDPAddr     string
	TCPAddr     string
	Status      uint8
	Incarnation uint64
}

// ArcDigest summarizes a node's contents inside a set of hash arcs: the
// resident pair count and the xor of PairDigest over every (key, value) —
// order-independent, so two replicas holding the same pairs produce the same
// digest regardless of shard layout or iteration order.
type ArcDigest struct {
	Pairs uint64
	XOR   uint64
}

// PairDigest folds one (key, value) pair into a 64-bit mix for ArcDigest
// accumulation. Both sides of a comparison must use this exact function —
// it is splitmix64 over key ^ rotated value, cheap enough to run inline on
// an engine Range.
func PairDigest(key, val uint64) uint64 {
	x := key ^ (val<<32 | val>>32) ^ 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// MaxGossipEntries bounds one datagram's digest: entries are length-prefixed
// strings (id + two addresses) plus 10 fixed bytes, so 40 entries of
// realistic ids/addresses stay well inside the 2KiB packet buffer. Senders
// with larger tables must select which entries to ship (the cluster layer
// prefers recently-changed ones).
const MaxGossipEntries = 40

// appendMemberDigests encodes entries after buf's header: uint16 count, then
// per entry u8-length-prefixed id/udp/tcp, status byte, uint64 incarnation.
// Returns the extended buffer or an error when an entry cannot fit.
func appendMemberDigests(buf []byte, entries []MemberDigest) ([]byte, error) {
	if len(entries) > MaxGossipEntries {
		return nil, fmt.Errorf("netproto: %d gossip entries exceeds the %d-entry datagram bound",
			len(entries), MaxGossipEntries)
	}
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], uint16(len(entries)))
	buf = append(buf, n[:]...)
	for _, e := range entries {
		if len(e.ID) > 255 || len(e.UDPAddr) > 255 || len(e.TCPAddr) > 255 {
			return nil, fmt.Errorf("netproto: gossip entry %q has a field over 255 bytes", e.ID)
		}
		buf = append(buf, uint8(len(e.ID)))
		buf = append(buf, e.ID...)
		buf = append(buf, uint8(len(e.UDPAddr)))
		buf = append(buf, e.UDPAddr...)
		buf = append(buf, uint8(len(e.TCPAddr)))
		buf = append(buf, e.TCPAddr...)
		buf = append(buf, e.Status)
		var inc [8]byte
		binary.LittleEndian.PutUint64(inc[:], e.Incarnation)
		buf = append(buf, inc[:]...)
	}
	if len(buf) > packetBufSize {
		return nil, fmt.Errorf("netproto: gossip digest of %d bytes exceeds the packet buffer", len(buf))
	}
	return buf, nil
}

// parseMemberDigests decodes appendMemberDigests' payload.
func parseMemberDigests(data []byte) ([]MemberDigest, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("%w: gossip payload of %d bytes", ErrBadMessage, len(data))
	}
	n := int(binary.LittleEndian.Uint16(data[:2]))
	if n > MaxGossipEntries {
		return nil, fmt.Errorf("%w: %d gossip entries", ErrBadMessage, n)
	}
	data = data[2:]
	takeStr := func() (string, bool) {
		if len(data) < 1 {
			return "", false
		}
		l := int(data[0])
		if len(data) < 1+l {
			return "", false
		}
		s := string(data[1 : 1+l])
		data = data[1+l:]
		return s, true
	}
	out := make([]MemberDigest, 0, n)
	for i := 0; i < n; i++ {
		var e MemberDigest
		var ok bool
		if e.ID, ok = takeStr(); !ok {
			return nil, fmt.Errorf("%w: truncated gossip entry", ErrBadMessage)
		}
		if e.UDPAddr, ok = takeStr(); !ok {
			return nil, fmt.Errorf("%w: truncated gossip entry", ErrBadMessage)
		}
		if e.TCPAddr, ok = takeStr(); !ok {
			return nil, fmt.Errorf("%w: truncated gossip entry", ErrBadMessage)
		}
		if len(data) < 9 {
			return nil, fmt.Errorf("%w: truncated gossip entry", ErrBadMessage)
		}
		e.Status = data[0]
		e.Incarnation = binary.LittleEndian.Uint64(data[1:9])
		data = data[9:]
		out = append(out, e)
	}
	return out, nil
}
