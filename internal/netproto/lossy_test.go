package netproto

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// lossyProxy is a deliberately unreliable UDP hop between a client and a
// server: it drops request datagrams according to dropFn (deterministic, so
// the test controls exactly which attempts are lost). Replies always pass.
type lossyProxy struct {
	front    *net.UDPConn // client-facing
	back     *net.UDPConn // server-facing
	reqCount atomic.Int64
	dropped  atomic.Int64
	dropFn   func(n int64) bool
}

func newLossyProxy(t *testing.T, server *net.UDPAddr, dropFn func(n int64) bool) *lossyProxy {
	t.Helper()
	front, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	back, err := net.DialUDP("udp", nil, server)
	if err != nil {
		front.Close()
		t.Fatal(err)
	}
	p := &lossyProxy{front: front, back: back, dropFn: dropFn}
	t.Cleanup(func() { front.Close(); back.Close() })

	var client atomic.Pointer[net.UDPAddr]
	go func() { // requests: client → (maybe) server
		buf := make([]byte, 64*1024)
		for {
			n, addr, err := front.ReadFromUDP(buf)
			if err != nil {
				return
			}
			client.Store(addr)
			seq := p.reqCount.Add(1)
			if p.dropFn(seq) {
				p.dropped.Add(1)
				continue
			}
			back.Write(buf[:n]) //nolint:errcheck
		}
	}()
	go func() { // replies: server → client, never dropped
		buf := make([]byte, 64*1024)
		for {
			n, err := back.Read(buf)
			if err != nil {
				return
			}
			if addr := client.Load(); addr != nil {
				front.WriteToUDP(buf[:n], addr) //nolint:errcheck
			}
		}
	}()
	return p
}

func (p *lossyProxy) Addr() *net.UDPAddr { return p.front.LocalAddr().(*net.UDPAddr) }

// TestClientRetriesLossyPath pins the retry loop against real datagram loss:
// every odd-numbered request is dropped, so each query's first attempt dies
// and the re-send succeeds. All queries must complete and the resend counter
// must show the recovery work.
func TestClientRetriesLossyPath(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy := newLossyProxy(t, srv.Addr(), func(n int64) bool { return n%2 == 1 })

	cl, err := NewClient(proxy.Addr(), ClientConfig{
		Items: 1000, Skew: 1.1, Seed: 1,
		Timeout: 100 * time.Millisecond, Retries: 3,
		Backoff: time.Millisecond, BackoffCap: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const queries = 10
	for key := uint64(1); key <= queries; key++ {
		res, err := cl.Query(key)
		if err != nil {
			t.Fatalf("query %d through lossy path: %v", key, err)
		}
		if !res.Valid {
			t.Errorf("query %d returned an invalid value", key)
		}
	}
	if re := cl.Resends(); re < queries {
		t.Errorf("Resends = %d, want ≥ %d (first attempt of every query dropped)", re, queries)
	}
	if d := proxy.dropped.Load(); d < queries {
		t.Errorf("proxy dropped %d datagrams, want ≥ %d", d, queries)
	}
}

// TestClientExhaustsRetryBudget: against total loss the query fails after
// exactly Retries+1 attempts, within the attempt-budget time bound.
func TestClientExhaustsRetryBudget(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy := newLossyProxy(t, srv.Addr(), func(int64) bool { return true })

	cfg := ClientConfig{
		Items: 1000, Skew: 1.1, Seed: 1,
		Timeout: 30 * time.Millisecond, Retries: 2,
		Backoff: time.Millisecond, BackoffCap: 2 * time.Millisecond,
	}
	cl, err := NewClient(proxy.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	start := time.Now()
	_, err = cl.Query(7)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("query succeeded through a black-hole proxy")
	}
	if got := proxy.reqCount.Load(); got != 3 {
		t.Errorf("proxy saw %d attempts, want 3 (1 + 2 retries)", got)
	}
	if bound := 3*cfg.Timeout + 3*cfg.BackoffCap + 100*time.Millisecond; elapsed > bound {
		t.Errorf("budget exhaustion took %v, want < %v", elapsed, bound)
	}
}

// TestClientQueryContextCancel: a cancelled context cuts the retry loop
// short instead of running out the full budget.
func TestClientQueryContextCancel(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy := newLossyProxy(t, srv.Addr(), func(int64) bool { return true })

	cl, err := NewClient(proxy.Addr(), ClientConfig{
		Items: 1000, Skew: 1.1, Seed: 1,
		Timeout: 10 * time.Second, // would dominate without ctx
		Retries: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := cl.QueryContext(ctx, 7); err == nil {
		t.Fatal("query succeeded through a black-hole proxy")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("cancelled query took %v, want ~50ms", elapsed)
	}
}

// TestQueryBatchPartialResend pins the pipelined path's loss recovery:
// when some of a window's requests are dropped, the next attempt re-sends
// ONLY the missing keys (a partial batch), not the whole window. The proxy's
// request count proves it: a full-window re-send would double the traffic.
func TestQueryBatchPartialResend(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Drop requests 1, 5, 9, ... — two of the first window's eight, then
	// one of the re-sent stragglers.
	proxy := newLossyProxy(t, srv.Addr(), func(n int64) bool { return n%4 == 1 })

	cl, err := NewClient(proxy.Addr(), ClientConfig{
		Items: 1000, Skew: 1.1, Seed: 1, Batch: 8,
		Timeout: 100 * time.Millisecond, Retries: 3,
		Backoff: time.Millisecond, BackoffCap: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	keys := []uint64{10, 20, 30, 40, 50, 60, 70, 80}
	results := make([]QueryResult, len(keys))
	answered, err := cl.QueryBatch(keys, results)
	if err != nil {
		t.Fatalf("QueryBatch through lossy path: %v", err)
	}
	if answered != len(keys) {
		t.Fatalf("answered %d/%d keys", answered, len(keys))
	}
	for i, res := range results {
		if res.Key != keys[i] || !res.Valid {
			t.Fatalf("result %d: %+v, want valid reply for key %d", i, res, keys[i])
		}
	}
	if cl.Resends() == 0 {
		t.Error("no re-sends despite dropped requests")
	}
	// Partial re-send: 8 + the ~3 stragglers. A full-window retry would hit
	// 16+ requests by the second attempt.
	if got := proxy.reqCount.Load(); got >= 16 {
		t.Errorf("proxy saw %d requests — re-sends are not partial batches", got)
	}
	if d := proxy.dropped.Load(); d == 0 {
		t.Error("proxy dropped nothing — test proves nothing")
	}
}

// TestRemoteStoreGet: the backing.Store adapter resolves indexes end to end,
// surviving datagram loss via the pooled clients' retry budget.
func TestRemoteStoreGet(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 1000)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy := newLossyProxy(t, srv.Addr(), func(n int64) bool { return n%3 == 1 })

	rs, err := NewRemoteStore(proxy.Addr(), 2, 100*time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	for key := uint64(1); key <= 5; key++ {
		idx, err := rs.Get(context.Background(), key)
		if err != nil {
			t.Fatalf("Get(%d): %v", key, err)
		}
		// The server stores sequential keys, so the index is the arena slot.
		if want := (key - 1) * 64; idx != want {
			t.Errorf("Get(%d) = %d, want %d", key, idx, want)
		}
	}
	if err := rs.Put(context.Background(), 1, 2); err == nil {
		t.Error("Put on the wire store succeeded, want ErrReadOnly")
	}
}
