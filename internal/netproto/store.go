package netproto

import (
	"context"
	"fmt"
	"net"
	"time"

	"github.com/p4lru/p4lru/internal/backing"
)

// RemoteStore adapts the wire protocol as a backing.Store: Get issues a
// MsgQuery round trip (straight to a Server, or through a Switch) and
// returns the resolved database index — the uint64 the LruIndex deployment
// caches. A small pool of clients carries concurrent fetches; each inherits
// the configured per-attempt timeout and retry budget, so a lost datagram
// costs one attempt, not the fetch.
//
// The protocol has no write message, so Put reports backing.ErrReadOnly;
// run write-behind against a local store or leave it disabled.
type RemoteStore struct {
	pool chan *Client
}

var _ backing.Store = (*RemoteStore)(nil)

// NewRemoteStore dials addr with a pool of `pool` clients (0 = 4). timeout
// and retries follow ClientConfig's conventions: zero keeps the client
// defaults, NoRetries makes each Get single-shot.
func NewRemoteStore(addr *net.UDPAddr, pool int, timeout time.Duration, retries int) (*RemoteStore, error) {
	if pool <= 0 {
		pool = 4
	}
	r := &RemoteStore{pool: make(chan *Client, pool)}
	for i := 0; i < pool; i++ {
		// Key space/skew are irrelevant: the store never draws workload
		// keys, only serves explicit Gets.
		cl, err := NewClient(addr, ClientConfig{
			Seed:    int64(i) + 1,
			Timeout: timeout,
			Retries: retries,
		})
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("netproto: remote store client %d: %w", i, err)
		}
		r.pool <- cl
	}
	return r, nil
}

// Get implements backing.Store.
func (r *RemoteStore) Get(ctx context.Context, key uint64) (uint64, error) {
	var cl *Client
	select {
	case cl = <-r.pool:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	res, err := cl.QueryContext(ctx, key)
	r.pool <- cl
	if err != nil {
		// The server drops unknown keys, so a miss and a lost reply look
		// identical here: both surface through the client's attempt budget,
		// typed as ErrTimeout. A peer that is down outright (socket-level
		// refusal) surfaces as ErrUnreachable instead — a per-peer breaker
		// in front of this store can trip on the latter immediately while
		// treating the former as congestion.
		return 0, err
	}
	return res.Index, nil
}

// Put implements backing.Store.
func (r *RemoteStore) Put(ctx context.Context, key, val uint64) error {
	return backing.ErrReadOnly
}

// Close releases the pooled sockets.
func (r *RemoteStore) Close() {
	for {
		select {
		case cl := <-r.pool:
			cl.Close()
		default:
			return
		}
	}
}
