package netproto

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/engine"
	"github.com/p4lru/p4lru/internal/policy"
)

func newNodeEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e, err := engine.NewFromSpec(
		policy.Spec{Kind: policy.KindIdeal, MemBytes: 512 << 10, Seed: 3},
		engine.Config{Shards: 2, Block: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func dialTestNode(t *testing.T, s *NodeServer) *NodeClient {
	t.Helper()
	c, err := DialNode(s.UDPAddr(), s.TCPAddr(), 200*time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestNodePingQueryUpdate(t *testing.T) {
	eng := newNodeEngine(t)
	s, err := NewNodeServer("127.0.0.1:0", NodeConfig{Engine: eng, RingSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := dialTestNode(t, s)

	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if _, ok, err := c.Query(42); ok || err != nil {
		t.Fatalf("cold Query = (ok=%v, err=%v)", ok, err)
	}
	if err := c.Update(42, 420); err != nil {
		t.Fatalf("Update: %v", err)
	}
	// The ack is post-apply, so the value is visible immediately.
	if v, ok, err := c.Query(42); !ok || v != 420 || err != nil {
		t.Fatalf("Query after acked update = (%d, %v, %v), want (420, true, nil)", v, ok, err)
	}
	if v, _, ok := eng.Query(42); !ok || v != 420 {
		t.Fatalf("engine state = (%d, %v) after acked update", v, ok)
	}
}

// TestNodeMigrationPullPush round-trips a range-filtered snapshot between
// two live nodes over the TCP migration plane.
func TestNodeMigrationPullPush(t *testing.T) {
	const ringSeed = 7
	src, dst := newNodeEngine(t), newNodeEngine(t)
	srcSrv, err := NewNodeServer("127.0.0.1:0", NodeConfig{Engine: src, RingSeed: ringSeed})
	if err != nil {
		t.Fatal(err)
	}
	defer srcSrv.Close()
	dstSrv, err := NewNodeServer("127.0.0.1:0", NodeConfig{Engine: dst, RingSeed: ringSeed})
	if err != nil {
		t.Fatal(err)
	}
	defer dstSrv.Close()
	srcCl, dstCl := dialTestNode(t, srcSrv), dialTestNode(t, dstSrv)

	for k := uint64(1); k <= 2000; k++ {
		if err := srcCl.Update(k, k*7); err != nil {
			t.Fatal(err)
		}
	}

	// Pull only the lower half of the hash circle and push it to dst.
	arcs := [][2]uint64{{0, 1 << 63}}
	stream, err := srcCl.OpenPull(arcs)
	if err != nil {
		t.Fatalf("OpenPull: %v", err)
	}
	n, err := dstCl.Push(stream, false)
	stream.Close()
	if err != nil {
		t.Fatalf("Push: %v", err)
	}
	if n == 0 || n >= 2000 {
		t.Fatalf("migrated %d pairs; a half-circle filter should move some but not all of 2000", n)
	}
	if dst.Len() != n {
		t.Fatalf("dest holds %d pairs, push reported %d", dst.Len(), n)
	}
	// Every migrated pair is inside the requested arcs and queryable.
	posHash := srcSrv.posHash
	dst.Range(func(k, v uint64) bool {
		if h := posHash.Uint64(k); !(h > 0 && h <= 1<<63) {
			t.Errorf("migrated key %d has position %#x outside the pulled arc", k, h)
		}
		if v != k*7 {
			t.Errorf("migrated key %d has value %d, want %d", k, v, k*7)
		}
		return true
	})
}

// TestNodePushKeepExisting: CachedFlag on MsgMigratePush selects the
// if-absent restore, so resident keys survive a stale image.
func TestNodePushKeepExisting(t *testing.T) {
	src, dst := newNodeEngine(t), newNodeEngine(t)
	srcSrv, err := NewNodeServer("127.0.0.1:0", NodeConfig{Engine: src, RingSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer srcSrv.Close()
	dstSrv, err := NewNodeServer("127.0.0.1:0", NodeConfig{Engine: dst, RingSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer dstSrv.Close()
	srcCl, dstCl := dialTestNode(t, srcSrv), dialTestNode(t, dstSrv)

	for k := uint64(1); k <= 100; k++ {
		if err := srcCl.Update(k, 1); err != nil { // stale image values
			t.Fatal(err)
		}
	}
	if err := dstCl.Update(50, 2); err != nil { // fresher resident write
		t.Fatal(err)
	}
	stream, err := srcCl.OpenPull([][2]uint64{{0, 0}}) // whole circle
	if err != nil {
		t.Fatal(err)
	}
	n, err := dstCl.Push(stream, true)
	stream.Close()
	if err != nil {
		t.Fatalf("Push keep-existing: %v", err)
	}
	if n != 99 {
		t.Fatalf("installed %d pairs, want 99 (one key was already resident)", n)
	}
	if v, _, ok := dst.Query(50); !ok || v != 2 {
		t.Fatalf("resident key rolled back to %d (ok=%v), want 2", v, ok)
	}
}

// TestNodeClientTypedErrors: a dead peer surfaces ErrTimeout (datagrams
// vanish) so per-peer breakers can classify the failure.
func TestNodeClientTypedErrors(t *testing.T) {
	eng := newNodeEngine(t)
	s, err := NewNodeServer("127.0.0.1:0", NodeConfig{Engine: eng, RingSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	udp, tcp := s.UDPAddr(), s.TCPAddr()
	s.Close() // the node dies

	c, err := DialNode(udp, tcp, 30*time.Millisecond, NoRetries)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pingErr := c.Ping()
	if pingErr == nil {
		t.Fatal("Ping against a dead node succeeded")
	}
	if !errors.Is(pingErr, ErrTimeout) && !errors.Is(pingErr, ErrUnreachable) {
		t.Fatalf("Ping error %v is not typed as timeout or unreachable", pingErr)
	}
}

// TestRemoteStoreTypedErrors: the backing.Store adapter surfaces the same
// typed sentinels, so a breaker in front of it can tell "down" from "slow".
func TestRemoteStoreTypedErrors(t *testing.T) {
	// An address nothing listens on: every attempt times out.
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addr := conn.LocalAddr().(*net.UDPAddr)
	conn.Close()

	store, err := NewRemoteStore(addr, 1, 30*time.Millisecond, NoRetries)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	_, getErr := store.Get(context.Background(), 1)
	if getErr == nil {
		t.Fatal("Get against a dead address succeeded")
	}
	if !errors.Is(getErr, ErrTimeout) && !errors.Is(getErr, ErrUnreachable) {
		t.Fatalf("Get error %v is not typed as timeout or unreachable", getErr)
	}
}
