// Package netproto is a wire-level deployment of the LruIndex protocol
// (§3.2) over UDP: a client, an in-network switch middlebox holding the
// series-connected P4LRU cache, and a database server.
//
// The paper's packets carry two extra header fields, cached_flag and
// cached_index; this package defines that header, a Server that answers
// queries (skipping its B+ tree walk when the index comes pre-resolved), a
// Switch that proxies packets while maintaining the cache exactly as §3.2
// prescribes (read-only on the query path, mutating on the reply path), and
// a Client driver.
//
// Everything binds to caller-supplied addresses (use "127.0.0.1:0" in
// tests); components run until Close.
package netproto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MsgType discriminates protocol messages.
type MsgType uint8

// Message types.
const (
	// MsgQuery travels client → switch → server.
	MsgQuery MsgType = 1
	// MsgReply travels server → switch → client, carrying the value and
	// the resolved index.
	MsgReply MsgType = 2

	// The cluster tier's peer protocol (node ↔ node / router ↔ node).

	// MsgPing is a heartbeat probe; Key carries an echo nonce.
	MsgPing MsgType = 3
	// MsgPong answers a ping, echoing the nonce in Key.
	MsgPong MsgType = 4
	// MsgUpdate installs (Key → CachedIndex) into the node's engine
	// synchronously; the ack is the durability point the router's
	// zero-lost-acknowledged-updates contract hangs off.
	MsgUpdate MsgType = 5
	// MsgUpdateAck confirms an update was applied, echoing Key.
	MsgUpdateAck MsgType = 6
	// MsgMigratePull opens a migration stream (TCP): the header is followed
	// by uint32 n and n 16-byte (from, to] hash arcs; the node answers with
	// a range-filtered snapshot image and a MsgMigrateDone trailer.
	MsgMigratePull MsgType = 7
	// MsgMigratePush offers a snapshot stream (TCP): the header is followed
	// by a snapshot image the node restores; it answers MsgMigrateDone.
	MsgMigratePush MsgType = 8
	// MsgMigrateDone closes a migration exchange: CachedIndex carries the
	// pair count, CachedFlag 1 on success / 0 on failure.
	MsgMigrateDone MsgType = 9
	// MsgGossip carries a membership digest (UDP): Key is an echo nonce,
	// CachedIndex the sender's membership table version, and the payload an
	// encoded MemberDigest list. The receiver merges it and answers
	// MsgGossipAck with its own digest — one exchange moves information both
	// ways, SWIM-style.
	MsgGossip MsgType = 10
	// MsgGossipAck answers a gossip exchange, echoing the nonce in Key and
	// carrying the responder's digest as payload.
	MsgGossipAck MsgType = 11
	// MsgArcDigest asks a node (TCP plane — arc lists outgrow a datagram)
	// for the count + xor-of-hashes summary of its contents inside a set of
	// hash arcs; the header is followed by the same arc encoding migration
	// pulls use.
	MsgArcDigest MsgType = 12
	// MsgArcDigestAck answers an arc-digest request: Key carries the pair
	// count, CachedIndex the running PairDigest xor.
	MsgArcDigestAck MsgType = 13
)

// Wire layout (little endian):
//
//	offset size field
//	0      2    magic 0x4C50 ("PL")
//	2      1    version (1)
//	3      1    type
//	4      1    cached_flag (0 = not cached, i = series level)
//	5      3    reserved
//	8      8    key
//	16     8    cached_index
//	24     ...  value (replies only)
const (
	headerSize  = 24
	wireMagic   = 0x4C50
	wireVersion = 1
)

// Message is one protocol packet.
type Message struct {
	Type        MsgType
	CachedFlag  uint8
	Key         uint64
	CachedIndex uint64
	Value       []byte // replies only
}

// ErrBadMessage reports a malformed packet.
var ErrBadMessage = errors.New("netproto: bad message")

// Marshal encodes m into a fresh buffer.
func (m *Message) Marshal() []byte {
	buf := make([]byte, headerSize+len(m.Value))
	binary.LittleEndian.PutUint16(buf[0:2], wireMagic)
	buf[2] = wireVersion
	buf[3] = byte(m.Type)
	buf[4] = m.CachedFlag
	binary.LittleEndian.PutUint64(buf[8:16], m.Key)
	binary.LittleEndian.PutUint64(buf[16:24], m.CachedIndex)
	copy(buf[headerSize:], m.Value)
	return buf
}

// putHeader encodes the fixed header into buf (which the batched path
// reuses, so the reserved bytes are explicitly zeroed).
func putHeader(buf []byte, typ MsgType, flag uint8, key, index uint64) {
	binary.LittleEndian.PutUint16(buf[0:2], wireMagic)
	buf[2] = wireVersion
	buf[3] = byte(typ)
	buf[4] = flag
	buf[5], buf[6], buf[7] = 0, 0, 0
	binary.LittleEndian.PutUint64(buf[8:16], key)
	binary.LittleEndian.PutUint64(buf[16:24], index)
}

// PutQuery encodes a MsgQuery for key into buf (≥ header size), returning
// the packet length — the allocation-free encoder the batched client uses.
func PutQuery(buf []byte, key uint64) int {
	putHeader(buf, MsgQuery, 0, key, 0)
	return headerSize
}

// PutReply encodes a MsgReply into buf, returning the packet length. The
// server's batched loop rewrites each query packet into its reply in the
// same ring slot with this.
func PutReply(buf []byte, flag uint8, key, index uint64, value []byte) int {
	putHeader(buf, MsgReply, flag, key, index)
	return headerSize + copy(buf[headerSize:], value)
}

// PatchCached rewrites the cached_flag / cached_index fields of an encoded
// packet in place — the switch's zero-copy forward: a query datagram is
// stamped and sent on without ever being re-marshalled.
func PatchCached(buf []byte, flag uint8, index uint64) {
	buf[4] = flag
	binary.LittleEndian.PutUint64(buf[16:24], index)
}

// Unmarshal decodes a packet into m. The value slice aliases data.
func (m *Message) Unmarshal(data []byte) error {
	if len(data) < headerSize {
		return fmt.Errorf("%w: %d bytes", ErrBadMessage, len(data))
	}
	if binary.LittleEndian.Uint16(data[0:2]) != wireMagic {
		return fmt.Errorf("%w: bad magic", ErrBadMessage)
	}
	if data[2] != wireVersion {
		return fmt.Errorf("%w: version %d", ErrBadMessage, data[2])
	}
	switch MsgType(data[3]) {
	case MsgQuery, MsgReply, MsgPing, MsgPong, MsgUpdate, MsgUpdateAck,
		MsgMigratePull, MsgMigratePush, MsgMigrateDone,
		MsgGossip, MsgGossipAck, MsgArcDigest, MsgArcDigestAck:
		m.Type = MsgType(data[3])
	default:
		return fmt.Errorf("%w: type %d", ErrBadMessage, data[3])
	}
	m.CachedFlag = data[4]
	m.Key = binary.LittleEndian.Uint64(data[8:16])
	m.CachedIndex = binary.LittleEndian.Uint64(data[16:24])
	m.Value = data[headerSize:]
	return nil
}
