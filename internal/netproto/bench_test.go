package netproto

import (
	"fmt"
	"testing"

	"github.com/p4lru/p4lru/internal/engine"
	"github.com/p4lru/p4lru/internal/netproto/batchio"
)

// benchStack brings up a full loopback server + switch pair sized for
// sustained benchmark traffic.
func benchStack(b *testing.B) *Switch {
	b.Helper()
	srv, err := NewServer("127.0.0.1:0", 10000)
	if err != nil {
		b.Fatal(err)
	}
	sw, err := NewSwitch(SwitchConfig{ServerAddr: srv.Addr(), Policy: seriesSpec(4, 512)})
	if err != nil {
		srv.Close()
		b.Fatal(err)
	}
	b.Cleanup(func() {
		sw.Close()
		srv.Close()
	})
	return sw
}

// BenchmarkWireLadder is the packets-per-second ladder: the same Zipf
// workload driven through the full client → switch → server loopback stack
// at batch sizes 1/8/32/64. batch=1 is the classic one-datagram-per-syscall
// request/response path; the batched rungs pipeline a whole window through
// QueryBatch, so the per-query cost amortizes the syscalls (recvmmsg /
// sendmmsg on Linux) across the window — the wire analogue of the paper's
// per-stage packet parallelism. b.N counts individual queries on every rung,
// so ns/op is directly comparable across batch sizes.
func BenchmarkWireLadder(b *testing.B) {
	for _, batch := range []int{1, 8, 32, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			sw := benchStack(b)
			cl, err := NewClient(sw.Addr(), ClientConfig{
				Items: 10000, Skew: 1.2, Seed: 1, Batch: batch,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()

			// Warm the cache so the ladder measures the serving path, not
			// cold-miss index walks.
			for i := 0; i < 2048; i++ {
				if _, err := cl.Query(cl.NextKey()); err != nil {
					b.Fatal(err)
				}
			}

			b.ResetTimer()
			if batch == 1 {
				for i := 0; i < b.N; i++ {
					if _, err := cl.Query(cl.NextKey()); err != nil {
						b.Fatal(err)
					}
				}
			} else {
				keys := make([]uint64, batch)
				results := make([]QueryResult, batch)
				for i := 0; i < b.N; i += batch {
					n := batch
					if rem := b.N - i; rem < n {
						n = rem
					}
					for j := 0; j < n; j++ {
						keys[j] = cl.NextKey()
					}
					if _, err := cl.QueryBatch(keys[:n], results[:n]); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			qps := float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(qps, "queries/s")
		})
	}
}

// BenchmarkNetDecode measures the switch's per-packet decode work in
// isolation: unmarshal straight out of a ring slot, stamp the cached fields
// in place, and build the engine.Op the reply path submits. This is the
// inner loop of both batched reader goroutines and must never allocate —
// the -zeroalloc bench gate pins it.
func BenchmarkNetDecode(b *testing.B) {
	ring := batchio.NewRing(64, 2048)
	ds := ring.Datagrams()
	for i := range ds {
		ds[i].N = PutReply(ds[i].Buf, 1, uint64(i+1), uint64(i*64), []byte("sixty-four bytes of reply payload..."))
	}

	var msg Message
	var op engine.Op
	var sink uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := &ds[i&63]
		if err := msg.Unmarshal(d.Bytes()); err != nil {
			b.Fatal(err)
		}
		PatchCached(d.Bytes(), 2, msg.CachedIndex)
		op = engine.Op{Key: msg.Key, Value: msg.CachedIndex}
		sink += op.Key
	}
	if sink == 0 {
		b.Fatal("impossible: keys start at 1")
	}
}
