//go:build linux && arm64 && !p4lru_portable_net

package batchio

// recvmmsg/sendmmsg numbers for linux/arm64 (generic unistd.h table).
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
