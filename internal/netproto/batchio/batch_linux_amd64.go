//go:build linux && amd64 && !p4lru_portable_net

package batchio

// recvmmsg/sendmmsg numbers for linux/amd64; the frozen syscall package
// predates sendmmsg so both are pinned here.
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
