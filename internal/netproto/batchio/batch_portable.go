//go:build !linux || (!amd64 && !arm64) || p4lru_portable_net

package batchio

import (
	"net"
	"net/netip"
)

const batched = false

// The portable build needs no per-slot syscall scaffolding.
type ringSys struct{}

func (s *ringSys) init(n int) {}

type connSys struct{}

func (s *connSys) init(uc *net.UDPConn) error { return nil }

// ReadBatch reads exactly one datagram — the single-packet baseline the
// batched path is measured against. The batch-of-1 keeps callers identical
// across builds.
func (c *Conn) ReadBatch(r *Ring) (int, error) {
	n, _, _, addr, err := c.uc.ReadMsgUDPAddrPort(r.ds[0].Buf, nil)
	if err != nil {
		return 0, err
	}
	r.ds[0].N = n
	// Unmap v4-in-v6 so addresses compare equal with the fast path's.
	r.ds[0].Addr = netip.AddrPortFrom(addr.Addr().Unmap(), addr.Port())
	return 1, nil
}

// WriteBatch sends the first n datagrams one syscall each.
func (c *Conn) WriteBatch(r *Ring, n int) (int, error) {
	for i := 0; i < n; i++ {
		var err error
		if r.ds[i].Addr.IsValid() {
			_, err = c.uc.WriteToUDPAddrPort(r.ds[i].Bytes(), r.ds[i].Addr)
		} else {
			_, err = c.uc.Write(r.ds[i].Bytes())
		}
		if err != nil {
			return i, err
		}
	}
	return n, nil
}

// ListenReuse without SO_REUSEPORT: one socket that the n readers share.
func ListenReuse(addr string, n int) ([]*net.UDPConn, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, err
	}
	return []*net.UDPConn{pc.(*net.UDPConn)}, nil
}
