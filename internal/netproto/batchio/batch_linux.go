//go:build linux && (amd64 || arm64) && !p4lru_portable_net

package batchio

import (
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

const batched = true

// mmsghdr mirrors struct mmsghdr. Go pads the struct to 8-byte alignment on
// 64-bit arches, matching the kernel's layout (64 bytes with a 56-byte
// Msghdr); no explicit pad field so the declaration stays arch-agnostic.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
}

// ringSys holds the per-slot syscall scaffolding: one iovec, one mmsghdr and
// one sockaddr buffer per datagram slot, preallocated so batch calls touch
// no heap.
type ringSys struct {
	hdrs []mmsghdr
	iov  []syscall.Iovec
	rsa  []syscall.RawSockaddrAny
}

func (s *ringSys) init(n int) {
	s.hdrs = make([]mmsghdr, n)
	s.iov = make([]syscall.Iovec, n)
	s.rsa = make([]syscall.RawSockaddrAny, n)
	for i := range s.hdrs {
		s.hdrs[i].hdr.Iov = &s.iov[i]
		s.hdrs[i].hdr.Iovlen = 1
	}
}

// connSys carries the RawConn used to run recvmmsg/sendmmsg inside the
// runtime poller's Read/Write callbacks.
type connSys struct {
	rc syscall.RawConn
}

func (s *connSys) init(uc *net.UDPConn) error {
	rc, err := uc.SyscallConn()
	if err != nil {
		return err
	}
	s.rc = rc
	return nil
}

// ReadBatch fills r with up to r.Len() datagrams in one recvmmsg call,
// returning the count. It blocks (honouring the conn's read deadline) until
// at least one datagram arrives.
func (c *Conn) ReadBatch(r *Ring) (int, error) {
	n := len(r.ds)
	for i := 0; i < n; i++ {
		// Re-arm every slot: compaction may have swapped Buf slices
		// between slots, and the kernel clobbers Namelen on each call.
		r.sys.iov[i].Base = &r.ds[i].Buf[0]
		r.sys.iov[i].SetLen(len(r.ds[i].Buf))
		r.sys.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&r.sys.rsa[i]))
		r.sys.hdrs[i].hdr.Namelen = syscall.SizeofSockaddrAny
		r.sys.hdrs[i].n = 0
	}
	var got int
	var sysErr error
	err := c.sys.rc.Read(func(fd uintptr) bool {
		for {
			rn, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&r.sys.hdrs[0])), uintptr(n),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			if errno == syscall.EINTR {
				continue
			}
			if errno == syscall.EAGAIN {
				return false // park on the poller until readable
			}
			if errno != 0 {
				sysErr = errno
			} else {
				got = int(rn)
			}
			return true
		}
	})
	if err != nil {
		return 0, err
	}
	if sysErr != nil {
		return 0, &net.OpError{Op: "recvmmsg", Net: "udp", Addr: c.uc.LocalAddr(), Err: sysErr}
	}
	for i := 0; i < got; i++ {
		r.ds[i].N = int(r.sys.hdrs[i].n)
		r.ds[i].Addr = sockaddrToAddrPort(&r.sys.rsa[i])
	}
	return got, nil
}

// WriteBatch sends the first n datagrams of r, looping sendmmsg until the
// whole batch is on the wire (a partial send resumes from the first unsent
// header). A slot with the zero Addr is sent to the connected peer.
func (c *Conn) WriteBatch(r *Ring, n int) (int, error) {
	if n <= 0 {
		return 0, nil
	}
	for i := 0; i < n; i++ {
		r.sys.iov[i].Base = &r.ds[i].Buf[0]
		r.sys.iov[i].SetLen(r.ds[i].N)
		if r.ds[i].Addr.IsValid() {
			salen := addrPortToSockaddr(r.ds[i].Addr, &r.sys.rsa[i])
			r.sys.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&r.sys.rsa[i]))
			r.sys.hdrs[i].hdr.Namelen = salen
		} else {
			r.sys.hdrs[i].hdr.Name = nil
			r.sys.hdrs[i].hdr.Namelen = 0
		}
		r.sys.hdrs[i].n = 0
	}
	sent := 0
	var sysErr error
	err := c.sys.rc.Write(func(fd uintptr) bool {
		for sent < n {
			wn, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&r.sys.hdrs[sent])), uintptr(n-sent),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			if errno == syscall.EINTR {
				continue
			}
			if errno == syscall.EAGAIN {
				return false
			}
			if errno != 0 {
				sysErr = errno
				return true
			}
			sent += int(wn)
		}
		return true
	})
	if err != nil {
		return sent, err
	}
	if sysErr != nil {
		return sent, &net.OpError{Op: "sendmmsg", Net: "udp", Addr: c.uc.LocalAddr(), Err: sysErr}
	}
	return sent, nil
}

// sockaddrToAddrPort decodes a kernel-filled sockaddr into a netip.AddrPort,
// unmapping v4-in-v6 so addresses compare equal across socket families.
func sockaddrToAddrPort(rsa *syscall.RawSockaddrAny) netip.AddrPort {
	switch rsa.Addr.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		port := ntohs(sa.Port)
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), port)
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
		port := ntohs(sa.Port)
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr).Unmap(), port)
	}
	return netip.AddrPort{}
}

// addrPortToSockaddr encodes ap into rsa, returning the sockaddr length.
func addrPortToSockaddr(ap netip.AddrPort, rsa *syscall.RawSockaddrAny) uint32 {
	if ap.Addr().Is4() {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		*sa = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		sa.Addr = ap.Addr().As4()
		sa.Port = htons(ap.Port())
		return syscall.SizeofSockaddrInet4
	}
	sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
	*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
	sa.Addr = ap.Addr().As16()
	sa.Port = htons(ap.Port())
	return syscall.SizeofSockaddrInet6
}

// htons/ntohs convert a port between host order and the sockaddr's
// big-endian field without depending on host endianness: the uint16 is
// viewed as raw bytes.
func htons(p uint16) uint16 {
	var v uint16
	b := (*[2]byte)(unsafe.Pointer(&v))
	b[0] = byte(p >> 8)
	b[1] = byte(p)
	return v
}

func ntohs(p uint16) uint16 {
	b := (*[2]byte)(unsafe.Pointer(&p))
	return uint16(b[0])<<8 | uint16(b[1])
}

// soReusePort is unix.SO_REUSEPORT; the frozen syscall package predates it.
const soReusePort = 0xf

// ListenReuse binds n UDP sockets to addr with SO_REUSEPORT so the kernel
// spreads inbound flows across them — the per-core listener fan-out. With a
// ":0" addr the first bind picks the port and the rest join it.
func ListenReuse(addr string, n int) ([]*net.UDPConn, error) {
	if n <= 0 {
		n = 1
	}
	lc := net.ListenConfig{Control: func(network, address string, c syscall.RawConn) error {
		var serr error
		if err := c.Control(func(fd uintptr) {
			serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
		}); err != nil {
			return err
		}
		return serr
	}}
	conns := make([]*net.UDPConn, 0, n)
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(nil, "udp", addr)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, err
		}
		uc := pc.(*net.UDPConn)
		conns = append(conns, uc)
		if i == 0 {
			// Later binds must hit the same resolved port.
			addr = uc.LocalAddr().String()
		}
	}
	return conns, nil
}
