package batchio

import (
	"bytes"
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"
)

func listenLocal(t *testing.T) *net.UDPConn {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return pc.(*net.UDPConn)
}

// TestRoundTrip pushes a full ring of distinct datagrams through WriteBatch
// and drains them with ReadBatch, checking payloads and source addresses.
func TestRoundTrip(t *testing.T) {
	rx := listenLocal(t)
	defer rx.Close()
	tx := listenLocal(t)
	defer tx.Close()

	txc, err := NewConn(tx)
	if err != nil {
		t.Fatal(err)
	}
	rxc, err := NewConn(rx)
	if err != nil {
		t.Fatal(err)
	}

	const n = 16
	dst := rx.LocalAddr().(*net.UDPAddr).AddrPort()
	want := netip.AddrPortFrom(dst.Addr().Unmap(), dst.Port())
	out := NewRing(n, 512)
	for i, d := range out.Datagrams() {
		payload := []byte(fmt.Sprintf("datagram-%02d", i))
		copy(d.Buf, payload)
		out.Datagrams()[i].N = len(payload)
		out.Datagrams()[i].Addr = want
	}
	if sent, err := txc.WriteBatch(out, n); err != nil || sent != n {
		t.Fatalf("WriteBatch = %d, %v; want %d, nil", sent, err, n)
	}

	in := NewRing(n, 512)
	seen := make(map[string]bool)
	src := netip.AddrPortFrom(
		tx.LocalAddr().(*net.UDPAddr).AddrPort().Addr().Unmap(),
		tx.LocalAddr().(*net.UDPAddr).AddrPort().Port())
	deadline := time.Now().Add(5 * time.Second)
	for len(seen) < n {
		rxc.SetReadDeadline(deadline)
		got, err := rxc.ReadBatch(in)
		if err != nil {
			t.Fatalf("ReadBatch after %d/%d datagrams: %v", len(seen), n, err)
		}
		for _, d := range in.Datagrams()[:got] {
			if d.Addr != src {
				t.Fatalf("source addr %v, want %v", d.Addr, src)
			}
			seen[string(d.Bytes())] = true
		}
	}
	for i := 0; i < n; i++ {
		if !seen[fmt.Sprintf("datagram-%02d", i)] {
			t.Fatalf("payload %d never arrived; got %v", i, seen)
		}
	}
}

// TestRingReuseAfterSwap checks the invariant the zero-copy decode path
// leans on: after compaction swaps slots around, the next ReadBatch writes
// into whatever buffer each slot now holds — no stale aliases.
func TestRingReuseAfterSwap(t *testing.T) {
	rx := listenLocal(t)
	defer rx.Close()
	tx := listenLocal(t)
	defer tx.Close()
	txc, _ := NewConn(tx)
	rxc, _ := NewConn(rx)

	dst := rx.LocalAddr().(*net.UDPAddr).AddrPort()
	r := NewRing(4, 128)

	send := func(msg string) {
		out := NewRing(1, 128)
		d := out.Datagrams()
		copy(d[0].Buf, msg)
		d[0].N = len(msg)
		d[0].Addr = netip.AddrPortFrom(dst.Addr().Unmap(), dst.Port())
		if _, err := txc.WriteBatch(out, 1); err != nil {
			t.Fatal(err)
		}
	}
	recvOne := func() []byte {
		rxc.SetReadDeadline(time.Now().Add(5 * time.Second))
		got, err := rxc.ReadBatch(r)
		if err != nil {
			t.Fatal(err)
		}
		if got < 1 {
			t.Fatal("empty batch")
		}
		return r.Datagrams()[0].Bytes()
	}

	send("first-payload")
	first := append([]byte(nil), recvOne()...)

	// Shuffle the ring as a compaction pass would, then reuse it.
	r.Swap(0, 3)
	r.Swap(1, 2)

	send("second-payload")
	second := recvOne()
	if !bytes.Equal(second, []byte("second-payload")) {
		t.Fatalf("after swap, slot 0 read %q", second)
	}
	if !bytes.Equal(first, []byte("first-payload")) {
		t.Fatalf("copied-out first payload mutated to %q", first)
	}
}

// TestReadDeadline checks a blocked ReadBatch honours the conn deadline.
func TestReadDeadline(t *testing.T) {
	rx := listenLocal(t)
	defer rx.Close()
	c, err := NewConn(rx)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRing(4, 128)
	c.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err = c.ReadBatch(r)
	if err == nil {
		t.Fatal("ReadBatch returned without data or deadline error")
	}
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("want timeout error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
}

// TestListenReuse verifies every conn shares one port and any of them
// receives traffic aimed at that port.
func TestListenReuse(t *testing.T) {
	conns, err := ListenReuse("127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range conns {
		defer c.Close()
	}
	if Batched() && len(conns) != 4 {
		t.Fatalf("batched build returned %d conns, want 4", len(conns))
	}
	port := conns[0].LocalAddr().(*net.UDPAddr).Port
	for i, c := range conns {
		if p := c.LocalAddr().(*net.UDPAddr).Port; p != port {
			t.Fatalf("conn %d bound port %d, want %d", i, p, port)
		}
	}

	tx := listenLocal(t)
	defer tx.Close()
	dst := conns[0].LocalAddr().(*net.UDPAddr)
	stop := make(chan struct{})
	hits := make(chan int, 64)
	for i, c := range conns {
		bc, err := NewConn(c)
		if err != nil {
			t.Fatal(err)
		}
		go func(idx int, bc *Conn) {
			r := NewRing(8, 256)
			for {
				bc.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
				got, err := bc.ReadBatch(r)
				if err != nil {
					select {
					case <-stop:
						return
					default:
						continue
					}
				}
				for j := 0; j < got; j++ {
					hits <- idx
				}
			}
		}(i, bc)
	}
	const packets = 32
	for i := 0; i < packets; i++ {
		if _, err := tx.WriteToUDP([]byte("ping"), dst); err != nil {
			t.Fatal(err)
		}
	}
	received := 0
	timeout := time.After(5 * time.Second)
	for received < packets {
		select {
		case <-hits:
			received++
		case <-timeout:
			t.Fatalf("received %d/%d packets across reuse group", received, packets)
		}
	}
	close(stop)
}
