// Package batchio is the batched-socket layer under the netproto fast path:
// many UDP datagrams per syscall in both directions, over rings of reusable
// packet buffers, so the wire cost of serving scales with batches instead of
// packets.
//
// The paper's pipeline (§1.2) processes one packet per clock because every
// stage sees a steady stream of packets, not one packet per invocation; the
// software analogue is recvmmsg/sendmmsg, which hand the kernel a whole
// vector of datagrams per crossing. On Linux (amd64/arm64) ReadBatch and
// WriteBatch issue one recvmmsg/sendmmsg for up to Ring.Len() datagrams,
// integrated with the runtime poller through syscall.RawConn so read
// deadlines and Close keep their net.Conn semantics. Everywhere else — and
// on Linux when built with the `p4lru_portable_net` tag — the same API runs
// over ReadMsgUDPAddrPort/WriteToUDPAddrPort, one datagram per call: the
// single-packet baseline, bit-identical wire behaviour, no batching.
//
// A Ring owns its packet buffers and the per-slot syscall scaffolding
// (iovecs, mmsghdrs, sockaddr storage); nothing on the ReadBatch/WriteBatch
// path allocates. Addresses travel as netip.AddrPort values — comparable,
// pointer-free, safe to copy out of a ring slot before the slot is reused.
//
// ListenReuse completes the layer: N listener sockets bound to one address
// with SO_REUSEPORT, so the kernel fans flows out across per-core reader
// goroutines without a userspace dispatcher. Where SO_REUSEPORT is
// unavailable it returns a single socket for the callers to share.
package batchio

import (
	"net"
	"net/netip"
	"time"
)

// Datagram is one ring slot: a reusable packet buffer plus the peer address.
// After ReadBatch, Buf[:N] holds the payload and Addr the source; before
// WriteBatch, the caller sets N (payload length in Buf) and Addr (the
// destination; the zero AddrPort means "the connected peer").
//
// Datagrams are plain values: swapping two slots (Ring.Swap) just exchanges
// slice headers and scalars, which is how callers compact a batch in place —
// drop malformed packets by swapping keepers to the front.
type Datagram struct {
	Buf  []byte
	N    int
	Addr netip.AddrPort
}

// Bytes returns the valid payload, Buf[:N].
func (d *Datagram) Bytes() []byte { return d.Buf[:d.N] }

// Ring is a fixed set of Datagram slots plus the preallocated syscall
// scaffolding a batched read or write needs. A Ring is owned by one goroutine
// at a time; it can be handed between conns (read a batch from one socket,
// write the same buffers out another) but not used concurrently.
type Ring struct {
	ds  []Datagram
	sys ringSys
}

// NewRing builds a ring of n datagram slots with bufSize-byte buffers
// (n 0 = 64 slots, bufSize 0 = 2048 bytes).
func NewRing(n, bufSize int) *Ring {
	if n <= 0 {
		n = 64
	}
	if bufSize <= 0 {
		bufSize = 2048
	}
	r := &Ring{ds: make([]Datagram, n)}
	for i := range r.ds {
		r.ds[i].Buf = make([]byte, bufSize)
	}
	r.sys.init(n)
	return r
}

// Datagrams exposes the slots for in-place decode and compaction.
func (r *Ring) Datagrams() []Datagram { return r.ds }

// Len returns the slot count — the maximum batch per Read/WriteBatch.
func (r *Ring) Len() int { return len(r.ds) }

// Swap exchanges two slots (compaction: keep valid packets contiguous).
func (r *Ring) Swap(i, j int) { r.ds[i], r.ds[j] = r.ds[j], r.ds[i] }

// Conn wraps a *net.UDPConn with batched reads and writes against a Ring.
// Deadlines and Close act on the underlying conn exactly as for net.UDPConn:
// a read deadline kicks a blocked ReadBatch out with a timeout error, Close
// surfaces net.ErrClosed.
type Conn struct {
	uc  *net.UDPConn
	sys connSys
}

// NewConn wraps uc for batched I/O.
func NewConn(uc *net.UDPConn) (*Conn, error) {
	c := &Conn{uc: uc}
	if err := c.sys.init(uc); err != nil {
		return nil, err
	}
	return c, nil
}

// UDP returns the wrapped conn (for LocalAddr, deadlines, options).
func (c *Conn) UDP() *net.UDPConn { return c.uc }

// SetReadDeadline bounds blocked ReadBatch calls.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.uc.SetReadDeadline(t) }

// Close closes the underlying socket; blocked batch calls return net.ErrClosed.
func (c *Conn) Close() error { return c.uc.Close() }

// Batched reports whether this build moves multi-datagram batches per
// syscall (recvmmsg/sendmmsg) or falls back to one datagram per call.
func Batched() bool { return batched }
