package netproto

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"github.com/p4lru/p4lru/internal/lru"
)

// Switch is the in-network middlebox: a UDP proxy between clients and the
// server that carries the series-connected P4LRU3 index cache. Query packets
// consult the cache read-only and stamp cached_flag/cached_index; reply
// packets perform the only cache mutations (§3.2's query/update separation).
//
// A hardware pipeline serializes packets; this software stand-in uses a
// mutex around the cache instead, and a peer table to route replies back to
// the querying client (the role the network's addressing plays on a real
// switch path).
type Switch struct {
	clientConn *net.UDPConn // faces clients
	serverConn *net.UDPConn // faces the server
	serverAddr *net.UDPAddr

	mu    sync.Mutex
	cache *lru.Series[uint64]
	peers map[uint64]*net.UDPAddr // key → last querying client

	wg     sync.WaitGroup
	closed atomic.Bool

	// Stats.
	queries atomic.Int64
	hits    atomic.Int64
}

// NewSwitch starts a switch listening on listenAddr, forwarding to
// serverAddr, with a `levels`-deep series of P4LRU3 arrays of numUnits units.
func NewSwitch(listenAddr string, serverAddr *net.UDPAddr, levels, numUnits int, seed uint64) (*Switch, error) {
	la, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("netproto: resolve %q: %w", listenAddr, err)
	}
	clientConn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("netproto: listen client side: %w", err)
	}
	serverConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		clientConn.Close()
		return nil, fmt.Errorf("netproto: listen server side: %w", err)
	}
	sw := &Switch{
		clientConn: clientConn,
		serverConn: serverConn,
		serverAddr: serverAddr,
		cache:      lru.NewSeries3[uint64](levels, numUnits, seed, nil),
		peers:      make(map[uint64]*net.UDPAddr),
	}
	sw.wg.Add(2)
	go sw.clientLoop()
	go sw.serverLoop()
	return sw, nil
}

// Addr returns the client-facing address.
func (sw *Switch) Addr() *net.UDPAddr { return sw.clientConn.LocalAddr().(*net.UDPAddr) }

// Stats returns (queries seen, cache hits).
func (sw *Switch) Stats() (queries, hits int64) {
	return sw.queries.Load(), sw.hits.Load()
}

// CacheLen returns the number of cached indexes.
func (sw *Switch) CacheLen() int {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.cache.Len()
}

// Close stops both proxy directions.
func (sw *Switch) Close() error {
	sw.closed.Store(true)
	err1 := sw.clientConn.Close()
	err2 := sw.serverConn.Close()
	sw.wg.Wait()
	if err1 != nil {
		return err1
	}
	return err2
}

// clientLoop handles the query direction: client → (cache lookup) → server.
func (sw *Switch) clientLoop() {
	defer sw.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, peer, err := sw.clientConn.ReadFromUDP(buf)
		if err != nil {
			if sw.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		var msg Message
		if err := msg.Unmarshal(buf[:n]); err != nil || msg.Type != MsgQuery {
			continue
		}
		sw.queries.Add(1)

		// Read-only cache consult; stamp the header fields.
		sw.mu.Lock()
		idx, level, ok := sw.cache.Query(msg.Key)
		sw.peers[msg.Key] = peer
		sw.mu.Unlock()
		if ok {
			sw.hits.Add(1)
			msg.CachedFlag = uint8(level)
			msg.CachedIndex = idx
		} else {
			msg.CachedFlag = 0
			msg.CachedIndex = 0
		}

		if _, err := sw.serverConn.WriteToUDP(msg.Marshal(), sw.serverAddr); err != nil && sw.closed.Load() {
			return
		}
	}
}

// serverLoop handles the reply direction: server → (cache update) → client.
func (sw *Switch) serverLoop() {
	defer sw.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := sw.serverConn.ReadFromUDP(buf)
		if err != nil {
			if sw.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		var msg Message
		if err := msg.Unmarshal(buf[:n]); err != nil || msg.Type != MsgReply {
			continue
		}

		// The reply path performs the only cache mutation: promote the key
		// at its level, or insert at level 1 and cascade demotions.
		sw.mu.Lock()
		sw.cache.Reply(msg.Key, msg.CachedIndex, int(msg.CachedFlag))
		peer := sw.peers[msg.Key]
		sw.mu.Unlock()
		if peer == nil {
			continue
		}
		if _, err := sw.clientConn.WriteToUDP(msg.Marshal(), peer); err != nil && sw.closed.Load() {
			return
		}
	}
}
