package netproto

import (
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/engine"
	"github.com/p4lru/p4lru/internal/hashing"
	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/obs/span"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/resilience"
)

// Switch is the in-network middlebox: a UDP proxy between clients and the
// server that carries the series-connected P4LRU3 index cache. Query packets
// consult the cache read-only and stamp cached_flag/cached_index; reply
// packets perform the only cache mutations (§3.2's query/update separation).
//
// A hardware pipeline serializes packets per stage but processes one packet
// per clock because every P4LRU unit is independent (§1.2). This software
// stand-in gets the same independence from the sharded serving engine: the
// cache is split across engine shards by flow-key hash, packets for
// different shards never contend, and each direction is drained by several
// reader goroutines so multiple cores can carry traffic at once. The old
// single global mutex is gone.
type Switch struct {
	clientConn *net.UDPConn // faces clients
	serverConn *net.UDPConn // faces the server
	serverAddr *net.UDPAddr

	eng    *engine.Engine
	tracer *span.Tracer

	// peers routes replies back to the querying client (the role the
	// network's addressing plays on a real switch path). Striped so
	// concurrent readers touching different keys don't share a lock.
	peers     [peerStripes]peerStripe
	peerHash  hashing.Hash
	readers   int
	wg        sync.WaitGroup
	closeOnce sync.Once
	closed    atomic.Bool

	// Stats.
	queries atomic.Int64
	hits    atomic.Int64
}

const peerStripes = 64

type peerStripe struct {
	mu sync.Mutex
	m  map[uint64]*net.UDPAddr
}

// Option tunes a Switch beyond the required topology parameters.
type Option func(*switchConfig)

type switchConfig struct {
	shards  int
	readers int
	obs     *obs.Registry
	tracer  *span.Tracer
}

// WithShards fixes the engine shard count (default: GOMAXPROCS, capped so
// every shard keeps at least one cache unit per level).
func WithShards(n int) Option { return func(c *switchConfig) { c.shards = n } }

// WithReaders fixes the per-direction reader goroutine count (default:
// GOMAXPROCS, at least 2, at most 8).
func WithReaders(n int) Option { return func(c *switchConfig) { c.readers = n } }

// WithObs instruments the switch's engine (per-shard occupancy, queue
// depth, ops) on the given registry.
func WithObs(r *obs.Registry) Option { return func(c *switchConfig) { c.obs = r } }

// WithSpan traces both proxy directions and the switch's engine: query
// packets decompose into decode → cache lookup → forward, reply packets into
// decode → cache mutation → reply, and the engine's shard writers inherit
// the tracer for batch records.
func WithSpan(t *span.Tracer) Option { return func(c *switchConfig) { c.tracer = t } }

// NewSwitch starts a switch listening on listenAddr, forwarding to
// serverAddr, with a `levels`-deep series of P4LRU3 arrays of numUnits
// total units split across the engine's shards.
func NewSwitch(listenAddr string, serverAddr *net.UDPAddr, levels, numUnits int, seed uint64, opts ...Option) (*Switch, error) {
	cfg := switchConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.shards <= 0 {
		cfg.shards = runtime.GOMAXPROCS(0)
	}
	if cfg.shards > numUnits {
		cfg.shards = numUnits // ≥1 unit per shard and level
	}
	if cfg.readers <= 0 {
		cfg.readers = runtime.GOMAXPROCS(0)
		if cfg.readers < 2 {
			cfg.readers = 2
		}
		if cfg.readers > 8 {
			cfg.readers = 8
		}
	}

	la, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("netproto: resolve %q: %w", listenAddr, err)
	}
	clientConn, err := net.ListenUDP("udp", la)
	if err != nil {
		return nil, fmt.Errorf("netproto: listen client side: %w", err)
	}
	serverConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		clientConn.Close()
		return nil, fmt.Errorf("netproto: listen server side: %w", err)
	}

	unitsPerShard := numUnits / cfg.shards
	if unitsPerShard < 1 {
		unitsPerShard = 1
	}
	eng, err := engine.New(engine.Config{
		Shards: cfg.shards,
		Seed:   seed,
		Obs:    cfg.obs,
		Span:   cfg.tracer,
		NewCache: func(i int) policy.Cache {
			// Independent per-shard hash functions, like distinct pipes.
			return policy.NewSeries(levels, unitsPerShard, seed+uint64(i), nil)
		},
	})
	if err != nil {
		clientConn.Close()
		serverConn.Close()
		return nil, fmt.Errorf("netproto: engine: %w", err)
	}

	sw := &Switch{
		clientConn: clientConn,
		serverConn: serverConn,
		serverAddr: serverAddr,
		eng:        eng,
		tracer:     cfg.tracer,
		peerHash:   hashing.New(seed ^ 0x9ee2),
		readers:    cfg.readers,
	}
	for i := range sw.peers {
		sw.peers[i].m = make(map[uint64]*net.UDPAddr)
	}
	sw.wg.Add(2 * cfg.readers)
	for i := 0; i < cfg.readers; i++ {
		go sw.clientLoop()
		go sw.serverLoop()
	}
	return sw, nil
}

// Addr returns the client-facing address.
func (sw *Switch) Addr() *net.UDPAddr { return sw.clientConn.LocalAddr().(*net.UDPAddr) }

// Engine exposes the serving engine (shard routing and stats, for tests and
// observability wiring).
func (sw *Switch) Engine() *engine.Engine { return sw.eng }

// Stats returns (queries seen, cache hits).
func (sw *Switch) Stats() (queries, hits int64) {
	return sw.queries.Load(), sw.hits.Load()
}

// CacheLen returns the number of cached indexes across all shards.
func (sw *Switch) CacheLen() int { return sw.eng.Len() }

// Snapshot writes the cached (key, index) pairs in the engine's versioned
// snapshot format, so a restarting switch can come back warm instead of
// re-walking the index for every popular key.
func (sw *Switch) Snapshot(w io.Writer) error { return sw.eng.Snapshot(w) }

// RestoreSnapshot loads a Snapshot image into the cache through the normal
// insert path. The restore is best-effort by design: series levels are not
// preserved (every key re-enters at level 1 and re-earns promotion), and a
// snapshot larger than the cache admits only what the policy keeps.
func (sw *Switch) RestoreSnapshot(r io.Reader) (int, error) {
	return sw.eng.RestoreSnapshot(r)
}

// Health returns a probe aggregator wired to the switch's engine: the
// switch goes unready if a shard writer stalls or once Close begins.
func (sw *Switch) Health() *resilience.Health {
	h := resilience.NewHealth()
	h.Register("engine", sw.eng.Healthy)
	h.Register("shutdown", func() error {
		if sw.closed.Load() {
			return errors.New("netproto: switch shutting down")
		}
		return nil
	})
	return h
}

// Close stops both proxy directions and the engine, draining in-flight
// packet handling first: read deadlines kick blocked readers, the wait lets
// handlers finish their cache mutations and forwards, and only then do the
// sockets close. See Server.Close for why the old close-then-wait order
// lost replies.
func (sw *Switch) Close() error {
	var err1, err2 error
	sw.closeOnce.Do(func() {
		sw.closed.Store(true)
		now := time.Now()
		_ = sw.clientConn.SetReadDeadline(now)
		_ = sw.serverConn.SetReadDeadline(now)
		sw.wg.Wait()
		err1 = sw.clientConn.Close()
		err2 = sw.serverConn.Close()
		sw.eng.Close()
	})
	if err1 != nil {
		return err1
	}
	return err2
}

func (sw *Switch) peerStripeFor(key uint64) *peerStripe {
	return &sw.peers[sw.peerHash.Index(key, peerStripes)]
}

// clientLoop handles the query direction: client → (cache lookup) → server.
// Several loops run concurrently; the kernel fans incoming datagrams out
// across them, and the engine keeps lookups for different shards disjoint.
func (sw *Switch) clientLoop() {
	defer sw.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, peer, err := sw.clientConn.ReadFromUDP(buf)
		if err != nil {
			if sw.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		sp := sw.tracer.Start(0, 0)
		var msg Message
		if err := msg.Unmarshal(buf[:n]); err != nil || msg.Type != MsgQuery {
			continue
		}
		sp.SetKey(msg.Key)
		sp.Mark(span.StageDecode)
		sw.queries.Add(1)

		// Read-only cache consult on the key's home shard; stamp the
		// header fields.
		idx, tok, ok := sw.eng.QuerySpanned(msg.Key, &sp)
		st := sw.peerStripeFor(msg.Key)
		st.mu.Lock()
		st.m[msg.Key] = peer
		st.mu.Unlock()
		if ok {
			sw.hits.Add(1)
			sp.SetFlags(span.FlagHit)
			msg.CachedFlag = uint8(tok.Level())
			msg.CachedIndex = idx
		} else {
			msg.CachedFlag = 0
			msg.CachedIndex = 0
		}

		if _, err := sw.serverConn.WriteToUDP(msg.Marshal(), sw.serverAddr); err != nil && sw.closed.Load() {
			return
		}
		sp.Mark(span.StageWire)
		sp.Finish(span.KindQuery)
	}
}

// serverLoop handles the reply direction: server → (cache update) → client.
func (sw *Switch) serverLoop() {
	defer sw.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := sw.serverConn.ReadFromUDP(buf)
		if err != nil {
			if sw.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		sp := sw.tracer.Start(0, 0)
		var msg Message
		if err := msg.Unmarshal(buf[:n]); err != nil || msg.Type != MsgReply {
			continue
		}
		sp.SetKey(msg.Key)
		sp.SetShard(sw.eng.ShardFor(msg.Key))
		sp.Mark(span.StageDecode)

		// The reply path performs the only cache mutation: promote the key
		// at its level, or insert at level 1 and cascade demotions. Apply
		// is synchronous so the reply leaves the switch only after the
		// mutation — the same ordering the reply pipeline pass guarantees.
		sw.eng.Apply(engine.Op{
			Key:   msg.Key,
			Value: msg.CachedIndex,
			Token: policy.Token(msg.CachedFlag),
		})
		sp.Mark(span.StageApply)
		st := sw.peerStripeFor(msg.Key)
		st.mu.Lock()
		peer := st.m[msg.Key]
		st.mu.Unlock()
		if peer == nil {
			continue
		}
		if _, err := sw.clientConn.WriteToUDP(msg.Marshal(), peer); err != nil && sw.closed.Load() {
			return
		}
		sp.Mark(span.StageWire)
		sp.Finish(span.KindReply)
	}
}
