package netproto

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/engine"
	"github.com/p4lru/p4lru/internal/hashing"
	"github.com/p4lru/p4lru/internal/netproto/batchio"
	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/obs/span"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/resilience"
)

// Switch is the in-network middlebox: a UDP proxy between clients and the
// server that carries the series-connected P4LRU3 index cache. Query packets
// consult the cache read-only and stamp cached_flag/cached_index; reply
// packets perform the only cache mutations (§3.2's query/update separation).
//
// A hardware pipeline serializes packets per stage but processes one packet
// per clock because every P4LRU unit is independent (§1.2) — and because
// every stage sees a steady stream of packets, not one packet per
// invocation. This software stand-in now has both halves: the sharded
// engine keeps per-shard work disjoint, and the batchio layer moves whole
// recvmmsg/sendmmsg batches of datagrams per syscall, decoded in place in a
// ring of reusable buffers and forwarded by patching the cached fields into
// the original packet bytes — no per-packet allocation, no re-marshal, one
// syscall per batch in each direction. Reply batches decode straight into
// an engine.Op slice and go through ApplyBatch before any reply is
// forwarded, preserving the reply-after-mutation ordering the paper's
// pipeline pass guarantees.
type Switch struct {
	clientConns []*batchio.Conn // face clients (SO_REUSEPORT group on Linux)
	serverConns []*batchio.Conn // face the server, one per reader for reply affinity
	serverAddr  netip.AddrPort

	eng    *engine.Engine
	tracer *span.Tracer
	batch  int

	// peers routes replies back to the querying client (the role the
	// network's addressing plays on a real switch path). Striped so
	// concurrent readers touching different keys don't share a lock; the
	// values are netip.AddrPort — plain comparable values, so storing one
	// copies it out of the ring slot it was decoded from.
	peers     [peerStripes]peerStripe
	peerHash  hashing.Hash
	wg        sync.WaitGroup
	closeOnce sync.Once
	closed    atomic.Bool

	// Stats.
	queries     atomic.Int64
	hits        atomic.Int64
	recvBatches atomic.Int64
	recvPackets atomic.Int64
}

const peerStripes = 64

type peerStripe struct {
	mu sync.Mutex
	m  map[uint64]netip.AddrPort
}

// packetBufSize is the ring slot size: comfortably above header + value for
// every protocol message, far below the old 64KiB per-read scratch.
const packetBufSize = 2048

// SwitchConfig parameterizes NewSwitch. The zero value plus a ServerAddr is
// a working switch: loopback listener, the default series policy, engine
// shards and reader goroutines sized to the machine.
type SwitchConfig struct {
	// ListenAddr is the client-facing bind address (default "127.0.0.1:0").
	ListenAddr string
	// ServerAddr is where query packets are forwarded. Required.
	ServerAddr *net.UDPAddr
	// Policy declares the cache: kind, memory budget, series shape, seed.
	// The zero value means the default series deployment
	// (series:levels=4,unitcap=3 over policy.DefaultMemBytes). The spec's
	// memory budget is split evenly across the engine shards.
	Policy policy.Spec
	// Shards is the engine shard count (0 = GOMAXPROCS).
	Shards int
	// Readers is the per-direction reader goroutine count (0 = GOMAXPROCS,
	// at least 2, at most 8). On Linux each client-facing reader gets its
	// own SO_REUSEPORT socket.
	Readers int
	// Batch is the datagram ring size — the largest batch one
	// recvmmsg/sendmmsg moves (0 = 64).
	Batch int
	// Obs instruments the switch's engine (per-shard occupancy, queue
	// depth, ops) on the given registry.
	Obs *obs.Registry
	// Span traces both proxy directions and the switch's engine: query
	// packets decompose into decode → cache lookup → forward, reply packets
	// into decode → cache mutation → reply.
	Span *span.Tracer
}

func (c SwitchConfig) withDefaults() SwitchConfig {
	if c.ListenAddr == "" {
		c.ListenAddr = "127.0.0.1:0"
	}
	if c.Policy.Kind == "" {
		c.Policy.Kind = policy.KindSeries
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Readers <= 0 {
		c.Readers = runtime.GOMAXPROCS(0)
		if c.Readers < 2 {
			c.Readers = 2
		}
		if c.Readers > 8 {
			c.Readers = 8
		}
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	return c
}

// NewSwitch starts a switch from cfg: engine built from cfg.Policy,
// cfg.Readers batched reader loops per direction.
func NewSwitch(cfg SwitchConfig) (*Switch, error) {
	cfg = cfg.withDefaults()
	if cfg.ServerAddr == nil {
		return nil, fmt.Errorf("netproto: SwitchConfig.ServerAddr is required")
	}

	clientUDP, err := batchio.ListenReuse(cfg.ListenAddr, cfg.Readers)
	if err != nil {
		return nil, fmt.Errorf("netproto: listen client side: %w", err)
	}
	closeAll := func(conns []*net.UDPConn) {
		for _, c := range conns {
			c.Close()
		}
	}
	var serverUDP []*net.UDPConn
	for i := 0; i < cfg.Readers; i++ {
		// One server-facing socket per reader: the reply to a query
		// forwarded on socket i comes back to socket i, so reply batches
		// keep per-reader affinity without any demux map.
		uc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			closeAll(clientUDP)
			closeAll(serverUDP)
			return nil, fmt.Errorf("netproto: listen server side: %w", err)
		}
		serverUDP = append(serverUDP, uc)
	}

	eng, err := engine.NewFromSpec(cfg.Policy, engine.Config{
		Shards: cfg.Shards,
		Obs:    cfg.Obs,
		Span:   cfg.Span,
	})
	if err != nil {
		closeAll(clientUDP)
		closeAll(serverUDP)
		return nil, fmt.Errorf("netproto: engine: %w", err)
	}

	sw := &Switch{
		serverAddr: unmap(cfg.ServerAddr.AddrPort()),
		eng:        eng,
		tracer:     cfg.Span,
		batch:      cfg.Batch,
		peerHash:   hashing.New(cfg.Policy.Seed ^ 0x9ee2),
	}
	for i := range sw.peers {
		sw.peers[i].m = make(map[uint64]netip.AddrPort)
	}
	for _, uc := range clientUDP {
		bc, err := batchio.NewConn(uc)
		if err != nil {
			sw.closeConns()
			closeAll(serverUDP)
			eng.Close()
			return nil, fmt.Errorf("netproto: client conn: %w", err)
		}
		sw.clientConns = append(sw.clientConns, bc)
	}
	for _, uc := range serverUDP {
		bc, err := batchio.NewConn(uc)
		if err != nil {
			sw.closeConns()
			eng.Close()
			return nil, fmt.Errorf("netproto: server conn: %w", err)
		}
		sw.serverConns = append(sw.serverConns, bc)
	}

	sw.wg.Add(2 * cfg.Readers)
	for i := 0; i < cfg.Readers; i++ {
		// Portable builds get one client socket; readers share it (the
		// per-datagram reads are concurrency-safe).
		cc := sw.clientConns[i%len(sw.clientConns)]
		sc := sw.serverConns[i]
		go sw.clientLoop(cc, sc)
		go sw.serverLoop(sc, cc)
	}
	return sw, nil
}

// unmap normalizes v4-in-v6 so AddrPort values compare equal regardless of
// which socket family produced them.
func unmap(ap netip.AddrPort) netip.AddrPort {
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
}

func (sw *Switch) closeConns() {
	for _, c := range sw.clientConns {
		c.Close()
	}
	for _, c := range sw.serverConns {
		c.Close()
	}
}

// Addr returns the client-facing address.
func (sw *Switch) Addr() *net.UDPAddr {
	return sw.clientConns[0].UDP().LocalAddr().(*net.UDPAddr)
}

// Engine exposes the serving engine (shard routing and stats, for tests and
// observability wiring).
func (sw *Switch) Engine() *engine.Engine { return sw.eng }

// SwitchStats is one consistent-enough snapshot of the switch's serving
// counters — the single accessor that replaced the scattered tuple getters.
type SwitchStats struct {
	Queries     int64 // query packets decoded
	Hits        int64 // queries answered from the index cache
	CacheLen    int   // cached indexes across all engine shards
	RecvBatches int64 // batched reads (both directions)
	RecvPackets int64 // datagrams those reads carried
	Batched     bool  // this build moves multi-datagram batches per syscall
}

// Batched reports whether this build moves multi-datagram batches per
// syscall (recvmmsg/sendmmsg) or falls back to one datagram per syscall.
func Batched() bool { return batchio.Batched() }

// HitRate returns Hits/Queries (0 when idle).
func (st SwitchStats) HitRate() float64 {
	if st.Queries == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Queries)
}

// Stats snapshots the switch counters.
func (sw *Switch) Stats() SwitchStats {
	return SwitchStats{
		Queries:     sw.queries.Load(),
		Hits:        sw.hits.Load(),
		CacheLen:    sw.eng.Len(),
		RecvBatches: sw.recvBatches.Load(),
		RecvPackets: sw.recvPackets.Load(),
		Batched:     batchio.Batched(),
	}
}

// CacheLen returns the number of cached indexes across all shards.
func (sw *Switch) CacheLen() int { return sw.eng.Len() }

// Snapshot writes the cached (key, index) pairs in the engine's versioned
// snapshot format, so a restarting switch can come back warm instead of
// re-walking the index for every popular key.
func (sw *Switch) Snapshot(w io.Writer) error { return sw.eng.Snapshot(w) }

// RestoreSnapshot loads a Snapshot image into the cache through the normal
// insert path. The restore is best-effort by design: series levels are not
// preserved (every key re-enters at level 1 and re-earns promotion), and a
// snapshot larger than the cache admits only what the policy keeps.
func (sw *Switch) RestoreSnapshot(r io.Reader) (int, error) {
	return sw.eng.RestoreSnapshot(r)
}

// Health returns a probe aggregator wired to the switch's engine: the
// switch goes unready if a shard writer stalls or once Close begins.
func (sw *Switch) Health() *resilience.Health {
	h := resilience.NewHealth()
	h.Register("engine", sw.eng.Healthy)
	h.Register("shutdown", func() error {
		if sw.closed.Load() {
			return errors.New("netproto: switch shutting down")
		}
		return nil
	})
	return h
}

// Close stops both proxy directions and the engine, draining in-flight
// packet handling first: read deadlines kick blocked readers, the wait lets
// handlers finish their cache mutations and forwards, and only then do the
// sockets close. See Server.Close for why the old close-then-wait order
// lost replies.
func (sw *Switch) Close() error {
	var firstErr error
	sw.closeOnce.Do(func() {
		sw.closed.Store(true)
		now := time.Now()
		for _, c := range sw.clientConns {
			_ = c.SetReadDeadline(now)
		}
		for _, c := range sw.serverConns {
			_ = c.SetReadDeadline(now)
		}
		sw.wg.Wait()
		for _, c := range sw.clientConns {
			if err := c.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		for _, c := range sw.serverConns {
			if err := c.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		sw.eng.Close()
	})
	return firstErr
}

func (sw *Switch) peerStripeFor(key uint64) *peerStripe {
	return &sw.peers[sw.peerHash.Index(key, peerStripes)]
}

// clientLoop handles the query direction: client → (cache lookup) → server.
// One recvmmsg drains a batch of query packets; each is decoded in place,
// consulted against its home shard, stamped by patching cached_flag and
// cached_index into the original bytes, and retargeted at the server; one
// sendmmsg forwards the surviving batch. Malformed packets are dropped by
// compacting keepers to the front of the ring.
func (sw *Switch) clientLoop(cc, sc *batchio.Conn) {
	defer sw.wg.Done()
	ring := batchio.NewRing(sw.batch, packetBufSize)
	spans := make([]span.Span, sw.batch)
	for {
		got, err := cc.ReadBatch(ring)
		if err != nil {
			if sw.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		sw.recvBatches.Add(1)
		sw.recvPackets.Add(int64(got))
		ds := ring.Datagrams()
		keep := 0
		for i := 0; i < got; i++ {
			d := &ds[i]
			sp := sw.tracer.Start(0, 0)
			var msg Message
			if err := msg.Unmarshal(d.Bytes()); err != nil || msg.Type != MsgQuery {
				continue
			}
			sp.SetKey(msg.Key)
			sp.Mark(span.StageDecode)
			sw.queries.Add(1)

			// Read-only cache consult on the key's home shard; stamp the
			// header fields straight into the packet bytes.
			idx, tok, ok := sw.eng.QuerySpanned(msg.Key, &sp)
			st := sw.peerStripeFor(msg.Key)
			st.mu.Lock()
			st.m[msg.Key] = d.Addr
			st.mu.Unlock()
			if ok {
				sw.hits.Add(1)
				sp.SetFlags(span.FlagHit)
				PatchCached(d.Bytes(), uint8(tok.Level()), idx)
			} else {
				PatchCached(d.Bytes(), 0, 0)
			}
			d.Addr = sw.serverAddr
			if keep != i {
				ring.Swap(keep, i)
			}
			spans[keep] = sp
			keep++
		}
		if keep == 0 {
			continue
		}
		_, werr := sc.WriteBatch(ring, keep)
		for i := 0; i < keep; i++ {
			spans[i].Mark(span.StageWire)
			spans[i].Finish(span.KindQuery)
		}
		if werr != nil && sw.closed.Load() {
			return
		}
	}
}

// serverLoop handles the reply direction: server → (cache update) → client.
// A reply batch decodes straight into an engine.Op slice; the whole slice
// goes through the synchronous ApplyBatch — one lock visit per shard — and
// only then is the batch forwarded to the querying clients, so a reply
// leaves the switch strictly after its mutation, exactly the ordering the
// paper's reply pipeline pass guarantees per packet.
func (sw *Switch) serverLoop(sc, cc *batchio.Conn) {
	defer sw.wg.Done()
	ring := batchio.NewRing(sw.batch, packetBufSize)
	spans := make([]span.Span, sw.batch)
	addrs := make([]netip.AddrPort, sw.batch)
	ops := make([]engine.Op, 0, sw.batch)
	for {
		got, err := sc.ReadBatch(ring)
		if err != nil {
			if sw.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		sw.recvBatches.Add(1)
		sw.recvPackets.Add(int64(got))
		ds := ring.Datagrams()
		keep := 0
		ops = ops[:0]
		for i := 0; i < got; i++ {
			d := &ds[i]
			sp := sw.tracer.Start(0, 0)
			var msg Message
			if err := msg.Unmarshal(d.Bytes()); err != nil || msg.Type != MsgReply {
				continue
			}
			sp.SetKey(msg.Key)
			sp.SetShard(sw.eng.ShardFor(msg.Key))
			sp.Mark(span.StageDecode)

			ops = append(ops, engine.Op{
				Key:   msg.Key,
				Value: msg.CachedIndex,
				Token: policy.Token(msg.CachedFlag),
			})
			st := sw.peerStripeFor(msg.Key)
			st.mu.Lock()
			peer := st.m[msg.Key]
			st.mu.Unlock()
			if keep != i {
				ring.Swap(keep, i)
			}
			spans[keep] = sp
			addrs[keep] = peer
			keep++
		}
		if len(ops) > 0 {
			// The reply path performs the only cache mutations: promote each
			// key at its level, or insert at level 1 and cascade demotions.
			sw.eng.ApplyBatch(ops)
		}
		for i := 0; i < keep; i++ {
			spans[i].Mark(span.StageApply)
		}
		// Second compaction: replies whose querying peer is unknown (e.g. a
		// restarted switch seeing a stale reply) still applied their ops
		// above but have nowhere to go.
		send := 0
		for i := 0; i < keep; i++ {
			if !addrs[i].IsValid() {
				continue
			}
			ds[i].Addr = addrs[i]
			if send != i {
				ring.Swap(send, i)
			}
			spans[send] = spans[i]
			send++
		}
		if send == 0 {
			continue
		}
		_, werr := cc.WriteBatch(ring, send)
		for i := 0; i < send; i++ {
			spans[i].Mark(span.StageWire)
			spans[i].Finish(span.KindReply)
		}
		if werr != nil && sw.closed.Load() {
			return
		}
	}
}
