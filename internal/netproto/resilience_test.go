package netproto

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/resilience"
)

// TestServerCloseUnderLoad is the regression test for the close/drain race:
// Close used to tear the socket down before waiting for the reader
// goroutines, so handlers mid-resolve lost their replies. With the drain
// order every query the server read gets its reply out before the conn
// closes, so queries == replies must hold exactly.
func TestServerCloseUnderLoad(t *testing.T) {
	const items = 1000
	srv, err := NewServer("127.0.0.1:0", items)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			conn, err := net.DialUDP("udp", nil, srv.Addr())
			if err != nil {
				return
			}
			defer conn.Close()
			key := uint64(g * 251)
			for {
				select {
				case <-stop:
					return
				default:
				}
				msg := Message{Type: MsgQuery, Key: key%items + 1}
				key++
				_, _ = conn.Write(msg.Marshal())
			}
		}(g)
	}

	// Let traffic build, then close mid-stream.
	time.Sleep(30 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close under load: %v", err)
	}
	close(stop)
	wg.Wait()

	st := srv.Stats()
	if st.Queries == 0 {
		t.Fatal("no queries reached the server before Close — test proves nothing")
	}
	if st.Replies != st.Queries {
		t.Fatalf("Close dropped in-flight replies: queries=%d replies=%d", st.Queries, st.Replies)
	}
}

// TestSwitchWarmRestart snapshots a warm switch cache and restores it into a
// fresh switch of the same geometry: the restart comes back with a non-empty
// cache whose indexes still resolve to correct values (no stale serving).
func TestSwitchWarmRestart(t *testing.T) {
	const items = 500
	srv, err := NewServer("127.0.0.1:0", items)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sw1, err := NewSwitch(SwitchConfig{
		ServerAddr: srv.Addr(), Policy: seriesSpec(2, 64), Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl1, err := NewClient(sw1.Addr(), ClientConfig{Items: items, Skew: 1.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := cl1.Run(1500)
	cl1.Close()
	if st.Queries == 0 || st.Invalid > 0 {
		t.Fatalf("warm-up run: %+v", st)
	}
	if sw1.CacheLen() == 0 {
		t.Fatal("warm-up left the cache empty")
	}

	var snap bytes.Buffer
	if err := sw1.Snapshot(&snap); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := sw1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// "Restart": same levels/units/seed/shards, restored before traffic.
	sw2, err := NewSwitch(SwitchConfig{
		ServerAddr: srv.Addr(), Policy: seriesSpec(2, 64), Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sw2.Close()
	restored, err := sw2.RestoreSnapshot(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	// Restore is best-effort for a series cache (everything re-enters at
	// level 1), but it must not come back cold.
	if restored == 0 || sw2.CacheLen() == 0 {
		t.Fatalf("restore came back cold: restored=%d CacheLen=%d", restored, sw2.CacheLen())
	}

	// Collect resident keys first — querying inside Range would have the
	// reply path mutate the shard being iterated.
	var resident []uint64
	sw2.Engine().Range(func(k, v uint64) bool {
		if len(resident) < 20 {
			resident = append(resident, k)
		}
		return len(resident) < 20
	})

	cl2, err := NewClient(sw2.Addr(), ClientConfig{Items: items, Skew: 1.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	hits := 0
	for _, k := range resident {
		res, err := cl2.Query(k)
		if err != nil {
			t.Fatalf("post-restart Query(%d): %v", k, err)
		}
		if !res.Valid {
			t.Fatalf("restored index for key %d served a wrong value", k)
		}
		if res.Cached {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no warm hits after restore — restart came back cold")
	}
}

// TestServerShedderAndHealth drives the server's admission control and its
// readiness probe through the degradation ladder.
func TestServerShedderAndHealth(t *testing.T) {
	sh := resilience.NewShedder(resilience.ShedderConfig{TargetLatency: time.Millisecond, Alpha: 1})
	srv, err := NewServer("127.0.0.1:0", 100, ServerWithShedder(sh))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if err := srv.Health().Ready(); err != nil {
		t.Fatalf("idle server unready: %v", err)
	}

	conn, err := net.DialUDP("udp", nil, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	query := func() (replied bool) {
		if _, err := conn.Write((&Message{Type: MsgQuery, Key: 1}).Marshal()); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 64*1024)
		_ = conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		_, err := conn.Read(buf)
		return err == nil
	}

	if !query() {
		t.Fatal("healthy server did not reply")
	}

	// Saturate the latency EWMA: pressure 1 sheds everything and the
	// readiness probe goes unready.
	sh.Observe(50 * time.Millisecond)
	if err := srv.Health().Ready(); err == nil {
		t.Fatal("saturated server still reports ready")
	}
	if query() {
		t.Fatal("saturated server replied — query was not shed")
	}
	if srv.Stats().Shed == 0 {
		t.Fatal("shed counter did not move")
	}

	// Recovery: pressure collapses, admission and readiness return.
	sh.Observe(0)
	if err := srv.Health().Ready(); err != nil {
		t.Fatalf("recovered server unready: %v", err)
	}
	if !query() {
		t.Fatal("recovered server did not reply")
	}
	st := srv.Stats()
	if st.Replies+st.Shed != st.Queries {
		t.Fatalf("accounting: queries=%d replies=%d shed=%d", st.Queries, st.Replies, st.Shed)
	}
}
