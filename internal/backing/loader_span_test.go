package backing

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/obs/span"
	"github.com/p4lru/p4lru/internal/resilience"
)

// spanTracer returns an enabled capture-everything tracer for loader tests.
func spanTracer() *span.Tracer {
	tr := span.New(span.Config{SampleN: 1, RingSize: 256, RecalcEvery: 1 << 20})
	tr.SetEnabled(true)
	return tr
}

// findRec returns the captured record for key, failing the test if absent.
func findRec(t *testing.T, tr *span.Tracer, key uint64) span.Record {
	t.Helper()
	for _, rec := range tr.Snapshot() {
		if rec.Key == key {
			return rec
		}
	}
	t.Fatalf("no captured record for key %d", key)
	return span.Record{}
}

func TestGetSpannedCountsAttemptsAndRetries(t *testing.T) {
	tr := spanTracer()
	// Fail twice, then succeed: the span should count 3 attempts and carry
	// FlagRetried, with fetch time recorded for every round trip.
	var calls int
	store := storeFunc(func(ctx context.Context, key uint64) (uint64, error) {
		calls++
		if calls <= 2 {
			return 0, ErrUnavailable
		}
		return key * 2, nil
	})
	l := NewLoader(store, LoaderConfig{Attempts: 5, Backoff: 100 * time.Microsecond})

	sp := tr.Start(0, 7)
	v, err := l.GetSpanned(context.Background(), 7, &sp)
	sp.Finish(span.KindMiss)
	if err != nil || v != 14 {
		t.Fatalf("GetSpanned = (%d, %v)", v, err)
	}
	rec := findRec(t, tr, 7)
	if rec.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", rec.Attempts)
	}
	if rec.Flags&span.FlagRetried == 0 {
		t.Fatalf("missing FlagRetried: %+v", rec)
	}
	if rec.Stages[span.StageFetch] <= 0 {
		t.Fatalf("no fetch time recorded: %+v", rec)
	}
	// The backoff sleeps land in StageMiss, not StageFetch.
	if rec.Stages[span.StageMiss] < int64(100*time.Microsecond) {
		t.Fatalf("backoff not attributed to StageMiss: %+v", rec)
	}
}

func TestGetSpannedBreakerOpenFlag(t *testing.T) {
	tr := spanTracer()
	store := storeFunc(func(ctx context.Context, key uint64) (uint64, error) {
		return 0, ErrUnavailable
	})
	br := resilience.NewBreaker(resilience.BreakerConfig{ConsecutiveFailures: 2})
	l := NewLoader(store, LoaderConfig{Attempts: 2, Backoff: 50 * time.Microsecond, Breaker: br})

	// Trip the breaker with an untraced Get, then confirm the traced Get is
	// rejected with the flag set.
	_, _ = l.Get(context.Background(), 1)
	sp := tr.Start(0, 2)
	_, err := l.GetSpanned(context.Background(), 2, &sp)
	sp.Finish(span.KindMissFail)
	if !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("err = %v, want breaker rejection", err)
	}
	rec := findRec(t, tr, 2)
	if rec.Flags&span.FlagBreakerOpen == 0 {
		t.Fatalf("missing FlagBreakerOpen: %+v", rec)
	}
}

func TestGetSpannedCoalescedFlag(t *testing.T) {
	tr := spanTracer()
	store := &countingStore{inner: NewMapStore().Preload(100), delay: 20 * time.Millisecond}
	l := NewLoader(store, LoaderConfig{})

	// A leader occupies the flight; the traced follower coalesces onto it.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = l.Get(context.Background(), 5)
	}()
	for l.Inflight() == 0 { // wait until the leader holds its slot
		time.Sleep(100 * time.Microsecond)
	}
	sp := tr.Start(0, 5)
	v, err := l.GetSpanned(context.Background(), 5, &sp)
	sp.Finish(span.KindMiss)
	wg.Wait()
	if err != nil || v != 5^SynthSalt {
		t.Fatalf("GetSpanned = (%d, %v)", v, err)
	}
	if store.gets.Load() != 1 {
		t.Fatalf("store fetched %d times, want 1 (coalesced)", store.gets.Load())
	}
	rec := findRec(t, tr, 5)
	if rec.Flags&span.FlagCoalesced == 0 {
		t.Fatalf("missing FlagCoalesced: %+v", rec)
	}
	if rec.Stages[span.StageMiss] <= 0 {
		t.Fatalf("coalesced wait not attributed to StageMiss: %+v", rec)
	}
}

func TestGetSpannedHedgedFlag(t *testing.T) {
	tr := spanTracer()
	// First request stalls past the hedge delay; the hedge answers fast.
	var calls int32
	var mu sync.Mutex
	store := storeFunc(func(ctx context.Context, key uint64) (uint64, error) {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			select {
			case <-time.After(200 * time.Millisecond):
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}
		return key + 1, nil
	})
	l := NewLoader(store, LoaderConfig{
		Attempts: 1, Timeout: time.Second, Hedge: 5 * time.Millisecond,
	})
	sp := tr.Start(0, 9)
	v, err := l.GetSpanned(context.Background(), 9, &sp)
	sp.Finish(span.KindMiss)
	if err != nil || v != 10 {
		t.Fatalf("GetSpanned = (%d, %v)", v, err)
	}
	rec := findRec(t, tr, 9)
	if rec.Flags&span.FlagHedged == 0 {
		t.Fatalf("missing FlagHedged: %+v", rec)
	}
}

// storeFunc adapts a function to the Store interface for fault injection.
type storeFunc func(ctx context.Context, key uint64) (uint64, error)

func (f storeFunc) Get(ctx context.Context, key uint64) (uint64, error) { return f(ctx, key) }
func (f storeFunc) Put(ctx context.Context, key, val uint64) error      { return nil }
