package backing

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseStore builds a Store from its declarative string form, the
// `-backing` argument of `p4lru-bench replay`:
//
//	kind[:key=value,...]
//
// Kinds:
//
//	map                 in-memory map, synthesizing values for unknown keys
//	                    (synth=false to disable, items=N to preload 1..N)
//	btree               the kvindex B+ tree server (items=N, default 100000)
//
// Fault-model keys apply to every kind and wrap the store in a Faulty
// decorator when any is present: latency (Go duration added per op), err
// (per-op error probability), blackout (outage windows "from-to[;from-to]",
// Go durations measured from process start), seed.
//
// The wire-backed remote store is constructed by the CLI itself (it needs a
// live address and lives in internal/netproto, above this package).
func ParseStore(spec string) (Store, error) {
	kind, params, _ := strings.Cut(strings.TrimSpace(spec), ":")
	kind = strings.TrimSpace(kind)

	var (
		items  = 0
		synth  = true
		faulty FaultyConfig
		wrap   bool
	)
	if params != "" {
		for _, kv := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(kv, "=")
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			if !ok || val == "" {
				return nil, fmt.Errorf("backing: spec %q: bad parameter %q (want key=value)", spec, kv)
			}
			var err error
			switch key {
			case "items":
				items, err = strconv.Atoi(val)
			case "synth":
				synth, err = strconv.ParseBool(val)
			case "latency":
				faulty.Latency, err = time.ParseDuration(val)
				wrap = true
			case "err":
				faulty.ErrRate, err = strconv.ParseFloat(val, 64)
				wrap = true
			case "seed":
				faulty.Seed, err = strconv.ParseUint(val, 0, 64)
			case "blackout":
				faulty.Windows, err = parseWindows(val)
				wrap = true
			default:
				return nil, fmt.Errorf("backing: spec %q: unknown parameter %q", spec, key)
			}
			if err != nil {
				return nil, fmt.Errorf("backing: spec %q: parameter %q: %v", spec, key, err)
			}
		}
	}

	var store Store
	switch kind {
	case "map":
		m := NewMapStore()
		m.Synth = synth
		if items > 0 {
			m.Preload(items)
		}
		store = m
	case "btree":
		if items <= 0 {
			items = 100_000
		}
		store = NewBTree(items)
	default:
		return nil, fmt.Errorf("backing: unknown store kind %q (want map or btree)", kind)
	}
	if wrap {
		store = NewFaulty(store, faulty)
	}
	return store, nil
}

// parseWindows parses "from-to[;from-to]..." blackout windows.
func parseWindows(s string) ([]Window, error) {
	var out []Window
	for _, part := range strings.Split(s, ";") {
		from, to, ok := strings.Cut(part, "-")
		if !ok {
			return nil, fmt.Errorf("bad window %q (want from-to)", part)
		}
		f, err := time.ParseDuration(strings.TrimSpace(from))
		if err != nil {
			return nil, err
		}
		t, err := time.ParseDuration(strings.TrimSpace(to))
		if err != nil {
			return nil, err
		}
		if t <= f {
			return nil, fmt.Errorf("empty window %q", part)
		}
		out = append(out, Window{From: f, To: t})
	}
	return out, nil
}
