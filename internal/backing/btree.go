package backing

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/p4lru/p4lru/internal/kvindex"
)

// BTree adapts the kvindex database server (§3.2's backend: a B+ tree index
// over a value arena) as a Store, so the LruIndex server model is reusable
// as the second tier behind the serving engine.
//
// The uint64 a Get returns is the resolved database *index* — the quantity
// the paper's LruIndex caches — and every Get pays the B+ tree walk the
// cached index would have skipped. GetHinted is the full protocol shape
// (walk skipped when the caller supplies a cached index), which is what the
// differential test replays to pin this adapter's walk accounting against
// internal/kvindex's simulator.
//
// Put writes val into the key's arena slot (kvindex.Server.Write): the
// write-behind target when the engine caches value words. In the LruIndex
// deployment the cached uint64 is an index and evictions are clean; leave
// write-behind disabled there.
type BTree struct {
	srv *kvindex.Server

	// wmu serializes arena writes against reads of the same slot; the
	// B+ tree itself is read-only after load, so Gets share an RLock.
	wmu sync.RWMutex

	walksTaken   atomic.Uint64 // Gets resolved through the B+ tree
	walksSkipped atomic.Uint64 // Gets short-circuited by a valid hint
	nodesWalked  atomic.Uint64 // total B+ tree nodes visited
}

// NewBTree builds a fresh kvindex server of `items` sequential keys and
// wraps it.
func NewBTree(items int) *BTree {
	return NewBTreeOver(kvindex.NewServer(items))
}

// NewBTreeOver wraps an existing kvindex server. The adapter assumes sole
// write access to it.
func NewBTreeOver(srv *kvindex.Server) *BTree {
	if srv == nil {
		panic("backing: NewBTreeOver(nil server)")
	}
	return &BTree{srv: srv}
}

// Server exposes the wrapped database (for tests).
func (b *BTree) Server() *kvindex.Server { return b.srv }

// Get implements Store: a full B+ tree resolution of key, returning the
// database index.
func (b *BTree) Get(ctx context.Context, key uint64) (uint64, error) {
	return b.GetHinted(ctx, key, 0, false)
}

// GetHinted resolves key the way the wire server does: when hinted, the
// cached index short-circuits the walk (falling back to it only if the hint
// is corrupt); otherwise the B+ tree is walked and charged.
func (b *BTree) GetHinted(ctx context.Context, key, hint uint64, hinted bool) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	b.wmu.RLock()
	idx, _, nodes, ok := b.srv.Resolve(key, hint, hinted)
	b.wmu.RUnlock()
	if !ok {
		b.nodesWalked.Add(uint64(nodes))
		b.walksTaken.Add(1)
		return 0, ErrNotFound
	}
	if nodes == 0 {
		b.walksSkipped.Add(1)
	} else {
		b.walksTaken.Add(1)
		b.nodesWalked.Add(uint64(nodes))
	}
	return idx, nil
}

// Put implements Store: it writes val into key's arena slot, paying the
// locating walk.
func (b *BTree) Put(ctx context.Context, key, val uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	b.wmu.Lock()
	nodes, ok := b.srv.Write(key, val)
	b.wmu.Unlock()
	b.nodesWalked.Add(uint64(nodes))
	b.walksTaken.Add(1)
	if !ok {
		return ErrNotFound
	}
	return nil
}

// Stats returns (walks taken, walks skipped, nodes walked) — the same
// miss-cost accounting internal/kvindex's simulator reports, so the two
// miss-path models can be diffed.
func (b *BTree) Stats() (taken, skipped, nodes uint64) {
	return b.walksTaken.Load(), b.walksSkipped.Load(), b.nodesWalked.Load()
}
