package backing

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/obs"
)

// countingStore wraps a Store and counts Gets, with an optional per-Get
// delay so flights stay open long enough to coalesce against.
type countingStore struct {
	inner Store
	delay time.Duration
	gets  atomic.Uint64
	puts  atomic.Uint64
}

func (s *countingStore) Get(ctx context.Context, key uint64) (uint64, error) {
	s.gets.Add(1)
	if s.delay > 0 {
		t := time.NewTimer(s.delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return 0, ctx.Err()
		}
	}
	return s.inner.Get(ctx, key)
}

func (s *countingStore) Put(ctx context.Context, key, val uint64) error {
	s.puts.Add(1)
	return s.inner.Put(ctx, key, val)
}

func TestLoaderBasicGet(t *testing.T) {
	store := NewMapStore().Preload(100)
	l := NewLoader(store, LoaderConfig{})
	v, err := l.Get(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(7) ^ SynthSalt; v != want {
		t.Fatalf("Get(7) = %d, want %d", v, want)
	}
	if _, err := l.Get(context.Background(), 999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}
}

// TestLoaderSingleflightStorm is the acceptance-criteria coalescing test: a
// 100-goroutine same-key miss storm must collapse to a handful of store
// fetches (≥90% coalesced). Run with -race via `make race`.
func TestLoaderSingleflightStorm(t *testing.T) {
	store := &countingStore{inner: NewMapStore().Preload(10), delay: 20 * time.Millisecond}
	reg := obs.NewRegistry()
	l := NewLoader(store, LoaderConfig{MaxInflight: 8, Obs: reg})

	const goroutines = 100
	var wg sync.WaitGroup
	var failures atomic.Uint64
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := l.Get(context.Background(), 3)
			if err != nil || v != uint64(3)^SynthSalt {
				failures.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d/%d storm Gets failed", n, goroutines)
	}
	if fetches := store.gets.Load(); fetches > goroutines/10 {
		t.Errorf("storm cost %d store fetches, want ≤ %d (≥90%% coalesced)", fetches, goroutines/10)
	}
	coalesced := reg.CounterValue("backing_coalesced_total")
	if coalesced < goroutines*9/10 {
		t.Errorf("coalesced %d/%d waiters, want ≥ 90", coalesced, goroutines)
	}
	if loads := reg.CounterValue("backing_loads_total"); loads != goroutines {
		t.Errorf("backing_loads_total = %d, want %d", loads, goroutines)
	}
}

// TestLoaderRetriesTransientErrors pins the retry loop: a store that fails
// twice then succeeds is healed within a 3-attempt budget, and the retry
// counter records the two re-sends.
func TestLoaderRetriesTransientErrors(t *testing.T) {
	var calls atomic.Uint64
	store := FuncStore{GetFn: func(ctx context.Context, key uint64) (uint64, error) {
		if calls.Add(1) <= 2 {
			return 0, ErrUnavailable
		}
		return key * 10, nil
	}}
	reg := obs.NewRegistry()
	l := NewLoader(store, LoaderConfig{Attempts: 3, Backoff: time.Millisecond, BackoffCap: 2 * time.Millisecond, Obs: reg})
	v, err := l.Get(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if v != 50 {
		t.Fatalf("Get = %d, want 50", v)
	}
	if got := reg.CounterValue("backing_retries_total"); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
}

// TestLoaderNotFoundIsDefinitive: ErrNotFound must not burn the retry
// budget.
func TestLoaderNotFoundIsDefinitive(t *testing.T) {
	var calls atomic.Uint64
	store := FuncStore{GetFn: func(ctx context.Context, key uint64) (uint64, error) {
		calls.Add(1)
		return 0, ErrNotFound
	}}
	l := NewLoader(store, LoaderConfig{Attempts: 5})
	if _, err := l.Get(context.Background(), 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("store called %d times for a definitive miss, want 1", n)
	}
}

// TestLoaderFailFastBound is the acceptance-criteria latency bound: with
// the store in full blackout, a miss must return within
// attempts × timeout + attempts × backoff-cap (plus scheduling slack).
func TestLoaderFailFastBound(t *testing.T) {
	faulty := NewFaulty(NewMapStore().Preload(10), FaultyConfig{Seed: 1})
	faulty.SetBlackout(true)
	const (
		attempts = 3
		timeout  = 20 * time.Millisecond
		cap      = 10 * time.Millisecond
	)
	l := NewLoader(faulty, LoaderConfig{
		Attempts: attempts, Timeout: timeout, Backoff: 2 * time.Millisecond, BackoffCap: cap, Seed: 1,
	})
	start := time.Now()
	_, err := l.Get(context.Background(), 3)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Get succeeded during blackout")
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want wrapped ErrUnavailable", err)
	}
	bound := attempts*timeout + attempts*cap + 50*time.Millisecond
	if elapsed > bound {
		t.Errorf("blackout miss took %v, want < %v", elapsed, bound)
	}
	// A dark store refuses instantly, so in practice only the backoff
	// sleeps accumulate — well under one attempt timeout each.
	if elapsed > attempts*cap+timeout {
		t.Logf("note: blackout miss took %v (budget %v)", elapsed, attempts*cap+timeout)
	}
}

// TestLoaderHedging: a store whose first request hangs is rescued by the
// hedged second request.
func TestLoaderHedging(t *testing.T) {
	var calls atomic.Uint64
	store := FuncStore{GetFn: func(ctx context.Context, key uint64) (uint64, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done() // first request never answers
			return 0, ctx.Err()
		}
		return key + 1, nil
	}}
	reg := obs.NewRegistry()
	l := NewLoader(store, LoaderConfig{
		Attempts: 1, Timeout: 500 * time.Millisecond, Hedge: 5 * time.Millisecond, Obs: reg,
	})
	start := time.Now()
	v, err := l.Get(context.Background(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if v != 9 {
		t.Fatalf("Get = %d, want 9", v)
	}
	if elapsed := time.Since(start); elapsed >= 500*time.Millisecond {
		t.Errorf("hedge did not rescue the hung request (took %v)", elapsed)
	}
	if got := reg.CounterValue("backing_hedges_total"); got != 1 {
		t.Errorf("hedges = %d, want 1", got)
	}
}

// TestLoaderInflightBound: MaxInflight is a hard cap on concurrent store
// fetches across distinct keys.
func TestLoaderInflightBound(t *testing.T) {
	var inflight, peak atomic.Int64
	release := make(chan struct{})
	store := FuncStore{GetFn: func(ctx context.Context, key uint64) (uint64, error) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		<-release
		inflight.Add(-1)
		return key, nil
	}}
	l := NewLoader(store, LoaderConfig{MaxInflight: 4, Timeout: time.Second})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l.Get(context.Background(), uint64(i)) //nolint:errcheck
		}(i)
	}
	time.Sleep(30 * time.Millisecond) // let the pool saturate
	close(release)
	wg.Wait()
	if p := peak.Load(); p > 4 {
		t.Errorf("peak in-flight fetches = %d, want ≤ 4", p)
	}
}

// TestLoaderFillRunsOncePerFetch: the install hook fires once per fetch,
// not once per coalesced waiter.
func TestLoaderFillRunsOncePerFetch(t *testing.T) {
	var fills atomic.Uint64
	store := &countingStore{inner: NewMapStore().Preload(10), delay: 10 * time.Millisecond}
	l := NewLoader(store, LoaderConfig{
		Fill: func(key, val uint64) { fills.Add(1) },
	})
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Get(context.Background(), 4) //nolint:errcheck
		}()
	}
	wg.Wait()
	if f, g := fills.Load(), store.gets.Load(); f != g {
		t.Errorf("fill ran %d times for %d fetches", f, g)
	}
}

// TestLoaderFollowerCtxCancel: a coalesced waiter honours its own context
// even while the shared flight is still running.
func TestLoaderFollowerCtxCancel(t *testing.T) {
	store := &countingStore{inner: NewMapStore().Preload(10), delay: 200 * time.Millisecond}
	l := NewLoader(store, LoaderConfig{Timeout: time.Second})
	leaderStarted := make(chan struct{})
	go func() {
		close(leaderStarted)
		l.Get(context.Background(), 5) //nolint:errcheck
	}()
	<-leaderStarted
	time.Sleep(5 * time.Millisecond) // leader holds the flight
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := l.Get(ctx, 5)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("follower waited %v past its own deadline", elapsed)
	}
}
