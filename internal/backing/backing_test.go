package backing

import (
	"context"
	"errors"
	"testing"
)

func TestMapStoreBasics(t *testing.T) {
	s := NewMapStore().Preload(3)
	ctx := context.Background()

	v, err := s.Get(ctx, 2)
	if err != nil || v != uint64(2)^SynthSalt {
		t.Fatalf("Get(2) = %d, %v", v, err)
	}
	if _, err := s.Get(ctx, 99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}
	if err := s.Put(ctx, 99, 42); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Get(ctx, 99); err != nil || v != 42 {
		t.Fatalf("Get after Put = %d, %v", v, err)
	}
	if got := s.Len(); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
}

func TestMapStoreSynth(t *testing.T) {
	s := NewMapStore()
	s.Synth = true
	v, err := s.Get(context.Background(), 77)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(77) ^ SynthSalt; v != want {
		t.Fatalf("synth Get = %d, want %d", v, want)
	}
	if s.Len() != 1 {
		t.Errorf("synth value not memoized: Len = %d", s.Len())
	}
}

func TestMapStoreHonoursContext(t *testing.T) {
	s := NewMapStore().Preload(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Get(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("Get with cancelled ctx = %v, want Canceled", err)
	}
	if err := s.Put(ctx, 1, 2); !errors.Is(err, context.Canceled) {
		t.Errorf("Put with cancelled ctx = %v, want Canceled", err)
	}
}

func TestFuncStoreNilPut(t *testing.T) {
	s := FuncStore{GetFn: func(ctx context.Context, key uint64) (uint64, error) {
		return key, nil
	}}
	if err := s.Put(context.Background(), 1, 2); !errors.Is(err, ErrReadOnly) {
		t.Errorf("Put with nil PutFn = %v, want ErrReadOnly", err)
	}
}
