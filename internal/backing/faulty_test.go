package backing

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFaultyBlackoutToggle(t *testing.T) {
	f := NewFaulty(NewMapStore().Preload(10), FaultyConfig{})
	ctx := context.Background()

	if _, err := f.Get(ctx, 1); err != nil {
		t.Fatalf("healthy Get: %v", err)
	}
	f.SetBlackout(true)
	start := time.Now()
	if _, err := f.Get(ctx, 1); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("blackout Get = %v, want ErrUnavailable", err)
	}
	if err := f.Put(ctx, 1, 2); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("blackout Put = %v, want ErrUnavailable", err)
	}
	// A dark store must refuse immediately, not dawdle.
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Errorf("blackout ops took %v, want immediate refusal", elapsed)
	}
	f.SetBlackout(false)
	if _, err := f.Get(ctx, 1); err != nil {
		t.Fatalf("post-blackout Get: %v", err)
	}
	injected, passed := f.Stats()
	if injected != 2 || passed != 2 {
		t.Errorf("Stats = (%d, %d), want (2, 2)", injected, passed)
	}
}

func TestFaultyWindows(t *testing.T) {
	var now time.Duration
	f := NewFaulty(NewMapStore().Preload(10), FaultyConfig{
		Windows: []Window{{From: 10 * time.Second, To: 20 * time.Second}},
		Clock:   func() time.Duration { return now },
	})
	ctx := context.Background()

	for _, tc := range []struct {
		at   time.Duration
		dark bool
	}{
		{0, false},
		{10 * time.Second, true},
		{19 * time.Second, true},
		{20 * time.Second, false}, // window is half-open [From, To)
	} {
		now = tc.at
		_, err := f.Get(ctx, 1)
		if dark := errors.Is(err, ErrUnavailable); dark != tc.dark {
			t.Errorf("at %v: dark=%v, want %v (err %v)", tc.at, dark, tc.dark, err)
		}
	}
}

func TestFaultyErrRateDeterministic(t *testing.T) {
	run := func() (injected uint64) {
		f := NewFaulty(NewMapStore().Preload(1), FaultyConfig{ErrRate: 0.3, Seed: 42})
		for i := 0; i < 1000; i++ {
			f.Get(context.Background(), 1) //nolint:errcheck
		}
		injected, _ = f.Stats()
		return injected
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different fault sequences: %d vs %d", a, b)
	}
	// ~300 expected; allow a generous band since splitmix64 is not tuned.
	if a < 200 || a > 400 {
		t.Errorf("injected %d/1000 faults at rate 0.3", a)
	}
}

func TestFaultyLatencyHonoursContext(t *testing.T) {
	f := NewFaulty(NewMapStore().Preload(1), FaultyConfig{Latency: time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.Get(ctx, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("latency sleep ignored ctx: took %v", elapsed)
	}
}
