package backing

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/obs"
)

// WriteBehindConfig parameterizes NewWriteBehind.
type WriteBehindConfig struct {
	// QueueDepth bounds the dirty-pair queue (0 = 1024). Offer on a full
	// queue drops the pair and counts it — replacement must never stall
	// the cache behind a slow store.
	QueueDepth int
	// Workers is the number of drain goroutines (0 = 1).
	Workers int
	// Attempts, Timeout, Backoff and BackoffCap shape each Put's retry
	// loop, with the same semantics as LoaderConfig (0 = 3 attempts,
	// 100ms timeout, 1ms backoff doubling to a 50ms cap).
	Attempts   int
	Timeout    time.Duration
	Backoff    time.Duration
	BackoffCap time.Duration
	// Seed drives the backoff jitter.
	Seed uint64
	// Obs, when non-nil, receives backing_writebehind_puts_total,
	// backing_writebehind_errors_total, backing_writebehind_drops_total
	// and the backing_writebehind_depth gauge.
	Obs *obs.Registry
}

func (c WriteBehindConfig) withDefaults() WriteBehindConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.Timeout <= 0 {
		c.Timeout = 100 * time.Millisecond
	}
	if c.Backoff <= 0 {
		c.Backoff = time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 50 * time.Millisecond
	}
	return c
}

type dirtyPair struct{ key, val uint64 }

// WriteBehind drains evicted (key, value) pairs into a Store asynchronously:
// a bounded queue absorbs eviction bursts, worker goroutines apply Puts with
// the same timeout/backoff discipline the Loader uses, and a full queue
// sheds (and counts) rather than stalling the evicting writer. Offer is safe
// to call from engine shard writers (it never blocks and never panics after
// Close).
type WriteBehind struct {
	store Store
	cfg   WriteBehindConfig

	queue chan dirtyPair
	wg    sync.WaitGroup

	lifeMu sync.RWMutex
	closed bool

	offered atomic.Uint64 // pairs accepted into the queue
	drained atomic.Uint64 // pairs whose Put completed (or exhausted retries)
	drops   atomic.Uint64 // pairs shed on a full queue or after Close
	errors  atomic.Uint64 // pairs whose retry budget ran out

	jitterState atomic.Uint64

	puts, putErrs, dropped *obs.Counter
}

// NewWriteBehind builds and starts the drainer; it serves until Close.
func NewWriteBehind(store Store, cfg WriteBehindConfig) *WriteBehind {
	if store == nil {
		panic("backing: NewWriteBehind(nil store)")
	}
	cfg = cfg.withDefaults()
	w := &WriteBehind{
		store: store,
		cfg:   cfg,
		queue: make(chan dirtyPair, cfg.QueueDepth),
	}
	w.jitterState.Store(cfg.Seed*0x9e3779b97f4a7c15 + 0xd1f7ba11)
	if r := cfg.Obs; r != nil {
		w.puts = r.Counter("backing_writebehind_puts_total")
		w.putErrs = r.Counter("backing_writebehind_errors_total")
		w.dropped = r.Counter("backing_writebehind_drops_total")
		r.GaugeFunc("backing_writebehind_depth", func() float64 { return float64(len(w.queue)) })
	}
	w.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go w.worker()
	}
	return w
}

// Offer enqueues one dirty pair, reporting whether it was accepted. A full
// queue or a closed drainer drops the pair and counts it.
func (w *WriteBehind) Offer(key, val uint64) bool {
	w.lifeMu.RLock()
	defer w.lifeMu.RUnlock()
	if w.closed {
		w.drops.Add(1)
		w.dropped.Inc()
		return false
	}
	select {
	case w.queue <- dirtyPair{key, val}:
		w.offered.Add(1)
		return true
	default:
		w.drops.Add(1)
		w.dropped.Inc()
		return false
	}
}

// OnEvict adapts Offer to the engine's eviction-hook signature.
func (w *WriteBehind) OnEvict(key, val uint64) { w.Offer(key, val) }

// worker drains pairs until the queue closes.
func (w *WriteBehind) worker() {
	defer w.wg.Done()
	for p := range w.queue {
		w.drain(p)
		w.drained.Add(1)
	}
}

// drain applies one Put with per-attempt timeouts and capped, jittered
// exponential backoff. A pair whose budget runs out is counted, not
// requeued — write-behind is best-effort by design.
func (w *WriteBehind) drain(p dirtyPair) {
	backoff := w.cfg.Backoff
	for attempt := 0; attempt < w.cfg.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(w.jitter(backoff))
			backoff *= 2
			if backoff > w.cfg.BackoffCap {
				backoff = w.cfg.BackoffCap
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), w.cfg.Timeout)
		err := w.store.Put(ctx, p.key, p.val)
		cancel()
		if err == nil {
			w.puts.Inc()
			return
		}
	}
	w.errors.Add(1)
	w.putErrs.Inc()
}

// jitter maps a base delay to [base/2, base), like the Loader's.
func (w *WriteBehind) jitter(base time.Duration) time.Duration {
	if base <= 1 {
		return base
	}
	x := w.jitterState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	half := uint64(base / 2)
	return time.Duration(half + x%half)
}

// Flush blocks until every pair offered before the call has been drained
// (successfully or past its retry budget).
func (w *WriteBehind) Flush() {
	target := w.offered.Load()
	for w.drained.Load() < target {
		time.Sleep(100 * time.Microsecond)
	}
}

// Close drains the queued pairs, stops the workers and waits for them.
// Offer after Close reports false. Close is idempotent.
func (w *WriteBehind) Close() {
	w.lifeMu.Lock()
	if w.closed {
		w.lifeMu.Unlock()
		return
	}
	w.closed = true
	close(w.queue)
	w.lifeMu.Unlock()
	w.wg.Wait()
}

// Stats returns (offered, drained, dropped, put-failures).
func (w *WriteBehind) Stats() (offered, drained, dropped, failures uint64) {
	return w.offered.Load(), w.drained.Load(), w.drops.Load(), w.errors.Load()
}

// Depth returns the pairs currently queued.
func (w *WriteBehind) Depth() int { return len(w.queue) }
