package backing

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/kvindex"
	"github.com/p4lru/p4lru/internal/policy"
)

func TestBTreeGetReturnsIndex(t *testing.T) {
	b := NewBTree(100)
	ctx := context.Background()

	idx, err := b.Get(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(2 * kvindex.ValueSize); idx != want {
		t.Fatalf("Get(3) = %d, want arena offset %d", idx, want)
	}
	if _, err := b.Get(ctx, 1000); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}
	taken, skipped, nodes := b.Stats()
	if taken != 2 || skipped != 0 || nodes == 0 {
		t.Errorf("Stats = (%d, %d, %d), want 2 walks taken and nodes > 0", taken, skipped, nodes)
	}
}

func TestBTreeHintSkipsWalk(t *testing.T) {
	b := NewBTree(100)
	ctx := context.Background()

	idx, err := b.Get(ctx, 7) // full walk resolves the hint
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.GetHinted(ctx, 7, idx, true)
	if err != nil || got != idx {
		t.Fatalf("hinted Get = %d, %v, want %d", got, err, idx)
	}
	taken, skipped, nodesAfter := b.Stats()
	if taken != 1 || skipped != 1 {
		t.Errorf("Stats = (%d taken, %d skipped), want (1, 1)", taken, skipped)
	}
	// A corrupt hint falls back to the walk instead of failing.
	got, err = b.GetHinted(ctx, 7, 1<<40, true)
	if err != nil || got != idx {
		t.Fatalf("corrupt-hint Get = %d, %v, want fallback to %d", got, err, idx)
	}
	taken2, _, nodes2 := b.Stats()
	if taken2 != 2 || nodes2 <= nodesAfter {
		t.Errorf("corrupt hint did not charge a walk: taken=%d nodes=%d", taken2, nodes2)
	}
}

func TestBTreePutWritesArena(t *testing.T) {
	b := NewBTree(100)
	ctx := context.Background()
	if err := b.Put(ctx, 5, 12345); err != nil {
		t.Fatal(err)
	}
	idx, err := b.Get(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, value, _, ok := b.Server().Resolve(5, idx, true)
	if !ok {
		t.Fatal("Resolve failed after Put")
	}
	var got uint64
	for i := 7; i >= 0; i-- {
		got = got<<8 | uint64(value[i])
	}
	if got != 12345 {
		t.Errorf("arena word = %d, want 12345", got)
	}
	if err := b.Put(ctx, 1000, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("Put(absent) = %v, want ErrNotFound", err)
	}
}

// TestBTreeDifferentialVsKvindex replays the kvindex closed-loop simulation
// (Threads=1, so query order is strict) through the backing adapter and
// requires identical miss-cost accounting: same hit count and the same total
// B+ tree nodes walked. This pins the adapter's GetHinted to the wire
// server's resolution semantics.
func TestBTreeDifferentialVsKvindex(t *testing.T) {
	const (
		items   = 10_000
		queries = 20_000
		skew    = 1.1
		seed    = 7
	)
	for _, specStr := range []string{
		"p4lru3:mem=64KiB,seed=5",
		"series:levels=4,mem=64KiB,seed=5",
	} {
		t.Run(specStr, func(t *testing.T) {
			spec, err := policy.ParseSpec(specStr)
			if err != nil {
				t.Fatal(err)
			}
			simCache := policy.MustFromSpec(spec)
			repCache := policy.MustFromSpec(spec)

			simRes := kvindex.Run(kvindex.Config{
				Items: items, Threads: 1, Queries: queries,
				ZipfSkew: skew, Seed: seed, Cache: simCache,
			})

			// Replica: same seeded workload, same cache construction, the
			// adapter standing in for the server.
			bt := NewBTree(items)
			rng := rand.New(rand.NewSource(seed))
			zipf := rand.NewZipf(rng, skew, 1, uint64(items-1))
			ctx := context.Background()
			hits := 0
			for i := 0; i < queries; i++ {
				key := zipf.Uint64() + 1
				cachedIdx, tok, hit := repCache.Query(key)
				if hit {
					hits++
				}
				idx, err := bt.GetHinted(ctx, key, cachedIdx, hit)
				if err != nil {
					t.Fatalf("query %d key %d: %v", i, key, err)
				}
				// The P4LRU-family policies ignore the timestamp, so any
				// monotone clock reproduces the simulator's update sequence.
				repCache.Update(key, idx, tok, time.Duration(i))
			}

			if hits != simRes.Hits {
				t.Errorf("replica hits = %d, simulator hits = %d", hits, simRes.Hits)
			}
			taken, skipped, nodes := bt.Stats()
			if int64(nodes) != simRes.NodesWalked {
				t.Errorf("replica walked %d nodes, simulator walked %d", nodes, simRes.NodesWalked)
			}
			if int(skipped) != hits {
				t.Errorf("walks skipped = %d, want one per hit (%d)", skipped, hits)
			}
			if int(taken) != queries-hits {
				t.Errorf("walks taken = %d, want %d", taken, queries-hits)
			}
			if simRes.Errors != 0 {
				t.Errorf("simulator reported %d value errors", simRes.Errors)
			}
		})
	}
}
