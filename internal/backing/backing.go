// Package backing is the miss-path subsystem: the second tier behind the
// serving engine. The paper's caches are caches *in front of something* —
// LruTable fronts a key-value store and LruIndex pre-resolves a server-side
// B+ tree walk (§3.2) — and in-network caching only pays off if the path to
// that backing store is robust. This package supplies it:
//
//   - Store is the two-method contract (Get/Put) a backing tier implements.
//     Three implementations ship: MapStore (in-memory), BTree (the kvindex
//     database server as a reusable store) and netproto.RemoteStore (a
//     wire-protocol round trip; it lives in internal/netproto because the
//     engine sits between this package and the wire).
//   - Loader turns concurrent cache misses into disciplined fetches:
//     same-key misses coalesce into one in-flight call (singleflight), total
//     in-flight fetches are bounded by a semaphore, each attempt gets its
//     own context timeout, failures retry with capped exponential backoff
//     plus deterministic jitter, and an optional hedged second request
//     covers tail latency.
//   - WriteBehind drains engine evictions into the store through a bounded
//     queue so dirty values survive replacement instead of vanishing with
//     the cache line.
//   - Faulty decorates any Store with injected latency, a seeded error
//     rate and blackout windows, so tests can prove the degradation story:
//     hits keep serving at full speed, misses fail fast after the retry
//     budget.
//
// Everything reports through internal/obs (fetch/coalesce/retry/hedge
// counters, in-flight and queue-depth gauges, a miss-latency histogram);
// a nil registry costs one predictable branch.
package backing

import (
	"context"
	"errors"
	"sync"
)

// Store is the backing tier: the thing the cache is in front of. Get
// resolves a key to its stored uint64 (a value word, or for the LruIndex
// deployment the database index); Put writes one back. Implementations must
// be safe for concurrent use and must honour ctx cancellation — the Loader
// relies on it for per-attempt timeouts.
type Store interface {
	Get(ctx context.Context, key uint64) (uint64, error)
	Put(ctx context.Context, key, val uint64) error
}

// Sentinel errors a Store reports.
var (
	// ErrNotFound is a definitive miss: the key does not exist in the
	// store. The Loader does not retry it.
	ErrNotFound = errors.New("backing: key not found")
	// ErrUnavailable is a transient failure (injected fault, blackout,
	// lost datagram). The Loader retries it within its attempt budget.
	ErrUnavailable = errors.New("backing: store unavailable")
	// ErrReadOnly reports a Put against a store that cannot accept writes
	// (the wire-protocol remote store).
	ErrReadOnly = errors.New("backing: store is read-only")
)

// SynthSalt derives a deterministic synthetic value from a key
// (val = key ^ SynthSalt) — the same value scheme the kvindex arena and the
// netproto validity check use.
const SynthSalt = 0xbadc0ffee

// MapStore is the in-memory Store: a mutex-protected map. With Synth set,
// Get on an absent key fabricates (and memoizes) key ^ SynthSalt instead of
// returning ErrNotFound — the self-sourcing store replay and benchmarks use
// so any synthesized flow key resolves.
type MapStore struct {
	// Synth, when true, turns unknown-key Gets into deterministic
	// synthesized values instead of ErrNotFound. Set before first use.
	Synth bool

	mu sync.RWMutex
	m  map[uint64]uint64
}

// NewMapStore returns an empty in-memory store.
func NewMapStore() *MapStore {
	return &MapStore{m: make(map[uint64]uint64)}
}

// Preload stores n sequential keys (1..n) with synthetic values, mirroring
// the kvindex server's load.
func (s *MapStore) Preload(n int) *MapStore {
	s.mu.Lock()
	for i := 1; i <= n; i++ {
		s.m[uint64(i)] = uint64(i) ^ SynthSalt
	}
	s.mu.Unlock()
	return s
}

// Get implements Store.
func (s *MapStore) Get(ctx context.Context, key uint64) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		return v, nil
	}
	if !s.Synth {
		return 0, ErrNotFound
	}
	v = key ^ SynthSalt
	s.mu.Lock()
	s.m[key] = v
	s.mu.Unlock()
	return v, nil
}

// Put implements Store.
func (s *MapStore) Put(ctx context.Context, key, val uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	s.m[key] = val
	s.mu.Unlock()
	return nil
}

// Len returns the number of stored keys.
func (s *MapStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// FuncStore adapts plain functions as a Store — the cheapest way for a test
// to script store behaviour. A nil PutFn rejects writes with ErrReadOnly.
type FuncStore struct {
	GetFn func(ctx context.Context, key uint64) (uint64, error)
	PutFn func(ctx context.Context, key, val uint64) error
}

// Get implements Store.
func (s FuncStore) Get(ctx context.Context, key uint64) (uint64, error) {
	return s.GetFn(ctx, key)
}

// Put implements Store.
func (s FuncStore) Put(ctx context.Context, key, val uint64) error {
	if s.PutFn == nil {
		return ErrReadOnly
	}
	return s.PutFn(ctx, key, val)
}
