package backing

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/resilience"
)

func TestLoaderBreakerFailsFast(t *testing.T) {
	inner := NewMapStore().Preload(100)
	faulty := NewFaulty(inner, FaultyConfig{})
	br := resilience.NewBreaker(resilience.BreakerConfig{
		ConsecutiveFailures: 3, OpenFor: 50 * time.Millisecond, HalfOpenProbes: 1,
	})
	reg := obs.NewRegistry()
	l := NewLoader(faulty, LoaderConfig{
		Attempts: 3, Timeout: 50 * time.Millisecond,
		Backoff: time.Millisecond, BackoffCap: 2 * time.Millisecond,
		Breaker: br, Obs: reg,
	})
	ctx := context.Background()

	// Healthy store: fetches succeed, circuit stays closed.
	if v, err := l.Get(ctx, 1); err != nil || v != 1^SynthSalt {
		t.Fatalf("healthy Get = (%d, %v)", v, err)
	}
	if br.State() != resilience.Closed {
		t.Fatalf("breaker state = %v, want Closed", br.State())
	}

	// Blackout: the first Get burns its retry budget and trips the circuit.
	faulty.SetBlackout(true)
	if _, err := l.Get(ctx, 2); err == nil {
		t.Fatal("Get succeeded during blackout")
	}
	if br.State() != resilience.Open {
		t.Fatalf("breaker state after blackout Get = %v, want Open", br.State())
	}

	// Subsequent misses fail in one Allow() check — no attempts, no
	// backoff. Bound: far less than a single attempt timeout.
	fetchesBefore := reg.CounterValue("backing_fetches_total")
	start := time.Now()
	_, err := l.Get(ctx, 3)
	if !errors.Is(err, ErrCircuitOpen) || !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("open-circuit Get = %v, want ErrCircuitOpen", err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("open-circuit Get took %v — not failing fast", d)
	}
	if got := reg.CounterValue("backing_fetches_total"); got != fetchesBefore {
		t.Fatalf("open circuit still reached the store: fetches %d → %d", fetchesBefore, got)
	}

	// Recovery: after the cool-down a half-open probe closes the circuit.
	faulty.SetBlackout(false)
	time.Sleep(60 * time.Millisecond)
	if v, err := l.Get(ctx, 4); err != nil || v != 4^SynthSalt {
		t.Fatalf("post-recovery Get = (%d, %v)", v, err)
	}
	if br.State() != resilience.Closed {
		t.Fatalf("breaker state after probe success = %v, want Closed", br.State())
	}
}

func TestLoaderBreakerNotFoundIsSuccess(t *testing.T) {
	br := resilience.NewBreaker(resilience.BreakerConfig{ConsecutiveFailures: 2})
	l := NewLoader(NewMapStore(), LoaderConfig{Attempts: 1, Breaker: br})
	for i := 0; i < 10; i++ {
		if _, err := l.Get(context.Background(), uint64(i+1)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Get = %v, want ErrNotFound", err)
		}
	}
	if br.State() != resilience.Closed {
		t.Fatalf("definitive misses tripped the breaker (state %v)", br.State())
	}
}

func TestLoaderBreakerCallerCancelIsNeutral(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	st := FuncStore{GetFn: func(ctx context.Context, key uint64) (uint64, error) {
		select {
		case <-block:
			return key, nil
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}}
	br := resilience.NewBreaker(resilience.BreakerConfig{ConsecutiveFailures: 1, OpenFor: time.Hour})
	l := NewLoader(st, LoaderConfig{Attempts: 3, Timeout: time.Hour, Breaker: br})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := l.Get(ctx, 1)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Get = %v", err)
	}
	// The caller gave up; the store was never proven sick.
	if br.State() != resilience.Closed {
		t.Fatalf("caller cancellation tripped the breaker (state %v)", br.State())
	}
}
