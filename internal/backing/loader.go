package backing

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/obs/span"
	"github.com/p4lru/p4lru/internal/resilience"
)

// ErrCircuitOpen reports a Get rejected by the loader's circuit breaker
// without touching the store: the backend is known-dark and the miss fails
// fast instead of burning the retry budget. It wraps resilience.ErrOpen.
var ErrCircuitOpen = fmt.Errorf("backing: miss rejected: %w", resilience.ErrOpen)

// LoaderConfig parameterizes NewLoader. The zero value gets sane defaults.
type LoaderConfig struct {
	// Attempts is the total store round trips one Get may spend, hedges
	// excluded (0 = 3). ErrNotFound is definitive and never retried.
	Attempts int
	// Timeout bounds each attempt via a derived context (0 = 100ms).
	Timeout time.Duration
	// Backoff is the delay before the first retry; it doubles per retry
	// up to BackoffCap (0 = 1ms).
	Backoff time.Duration
	// BackoffCap caps the exponential backoff (0 = 50ms).
	BackoffCap time.Duration
	// Hedge, when positive and below Timeout, launches a second identical
	// request if the first has not resolved within this delay; the first
	// result wins. 0 disables hedging.
	Hedge time.Duration
	// MaxInflight bounds concurrent store fetches across all keys
	// (0 = 64). Coalesced waiters do not consume slots.
	MaxInflight int
	// Seed drives the deterministic backoff jitter.
	Seed uint64
	// Fill, when non-nil, is invoked exactly once per successful fetch
	// (by the singleflight leader, before waiters are released) — the hook
	// the tiered engine uses to install the value via its batch path.
	Fill func(key, val uint64)
	// Breaker, when non-nil, wraps the store in a circuit: every attempt
	// asks Allow first and records its outcome (a definitive ErrNotFound
	// counts as success — the store answered). While the circuit is open,
	// Get fails immediately with ErrCircuitOpen instead of spending
	// attempts against a dark backend; half-open probes ride the normal
	// attempt path. nil disables the circuit.
	Breaker *resilience.Breaker
	// Obs, when non-nil, receives the loader metrics: backing_loads_total,
	// backing_fetches_total, backing_coalesced_total, backing_retries_total,
	// backing_hedges_total, backing_errors_total, backing_inflight and the
	// backing_miss_latency_seconds histogram. nil costs nothing.
	Obs *obs.Registry
}

func (c LoaderConfig) withDefaults() LoaderConfig {
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	if c.Timeout <= 0 {
		c.Timeout = 100 * time.Millisecond
	}
	if c.Backoff <= 0 {
		c.Backoff = time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 50 * time.Millisecond
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	return c
}

// call is one in-flight singleflight fetch; waiters block on done.
type call struct {
	done chan struct{}
	val  uint64
	err  error
}

// Loader is the miss path: it fetches absent keys from a Store with
// coalescing, bounded concurrency, per-attempt timeouts, capped exponential
// backoff with deterministic jitter, and optional hedging. Safe for
// concurrent use.
type Loader struct {
	store Store
	cfg   LoaderConfig

	mu    sync.Mutex
	calls map[uint64]*call
	sem   chan struct{}

	jitterState atomic.Uint64

	loads, fetches, coalesced *obs.Counter
	retries, hedges, errs     *obs.Counter
	inflight                  *obs.Gauge
	missLatency               *obs.Histogram
}

// NewLoader builds a Loader over store.
func NewLoader(store Store, cfg LoaderConfig) *Loader {
	if store == nil {
		panic("backing: NewLoader(nil store)")
	}
	cfg = cfg.withDefaults()
	l := &Loader{
		store: store,
		cfg:   cfg,
		calls: make(map[uint64]*call),
		sem:   make(chan struct{}, cfg.MaxInflight),
	}
	l.jitterState.Store(cfg.Seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d)
	if r := cfg.Obs; r != nil {
		l.loads = r.Counter("backing_loads_total")
		l.fetches = r.Counter("backing_fetches_total")
		l.coalesced = r.Counter("backing_coalesced_total")
		l.retries = r.Counter("backing_retries_total")
		l.hedges = r.Counter("backing_hedges_total")
		l.errs = r.Counter("backing_errors_total")
		l.inflight = r.Gauge("backing_inflight")
		// 10µs .. ~40s in ×2 steps: store round trips through full
		// retry-budget failures.
		l.missLatency = r.Histogram("backing_miss_latency_seconds", obs.ExponentialBuckets(10e-6, 2, 22))
	}
	return l
}

// Get resolves key through the store. Concurrent Gets for the same key
// coalesce into one fetch whose result they all share; the caller's ctx
// still bounds its own wait. The fetch itself retries transient errors
// within the attempt budget, so a Get returns within roughly
// Attempts × Timeout plus the backoff sleeps (each ≤ BackoffCap).
func (l *Loader) Get(ctx context.Context, key uint64) (uint64, error) {
	return l.get(ctx, key, nil)
}

// GetSpanned is Get for callers carrying an open trace span. Per-attempt
// boundaries land in the span — StageFetch is time inside store round trips,
// StageMiss is everything around them (coalescing waits, inflight-slot
// waits, backoff sleeps) — and the span's flags record retries, hedges,
// breaker rejections and coalescing. The span is only ever touched from the
// calling goroutine (hedge requests race on their own goroutines and never
// see it), and the caller keeps ownership: the loader never finishes it.
// A nil or inactive sp degrades to Get.
func (l *Loader) GetSpanned(ctx context.Context, key uint64, sp *span.Span) (uint64, error) {
	return l.get(ctx, key, sp)
}

func (l *Loader) get(ctx context.Context, key uint64, sp *span.Span) (uint64, error) {
	l.loads.Inc()
	l.mu.Lock()
	if c, ok := l.calls[key]; ok {
		l.mu.Unlock()
		l.coalesced.Inc()
		sp.SetFlags(span.FlagCoalesced)
		select {
		case <-c.done:
			sp.Mark(span.StageMiss) // waited on another Get's fetch
			return c.val, c.err
		case <-ctx.Done():
			sp.Mark(span.StageMiss)
			return 0, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	l.calls[key] = c
	l.mu.Unlock()

	start := time.Now()
	c.val, c.err = l.lead(ctx, key, sp)
	if c.err != nil {
		l.errs.Inc()
	} else if l.cfg.Fill != nil {
		// Install before releasing waiters: anything that observed the
		// fetch also observes the cache fill (or at least its submission).
		l.cfg.Fill(key, c.val)
	}
	l.missLatency.Observe(time.Since(start).Seconds())

	// Retire the flight before releasing waiters so a Get arriving after
	// the result is sealed starts a fresh fetch instead of reading stale
	// state.
	l.mu.Lock()
	delete(l.calls, key)
	l.mu.Unlock()
	close(c.done)
	return c.val, c.err
}

// lead is the singleflight leader's path: acquire an in-flight slot, then
// run the retry loop.
func (l *Loader) lead(ctx context.Context, key uint64, sp *span.Span) (uint64, error) {
	select {
	case l.sem <- struct{}{}:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	l.inflight.Add(1)
	defer func() {
		<-l.sem
		l.inflight.Add(-1)
	}()

	backoff := l.cfg.Backoff
	var lastErr error
	for attempt := 0; attempt < l.cfg.Attempts; attempt++ {
		if attempt > 0 {
			l.retries.Inc()
			sp.SetFlags(span.FlagRetried)
			select {
			case <-time.After(l.jitter(backoff)):
			case <-ctx.Done():
				return 0, ctx.Err()
			}
			backoff *= 2
			if backoff > l.cfg.BackoffCap {
				backoff = l.cfg.BackoffCap
			}
		}
		// The circuit gate: while open, fail the whole Get immediately —
		// no attempts, no backoff sleeps — so a dark backend costs one
		// check instead of the full retry budget. Checked per attempt, not
		// just on entry, so a circuit tripped by concurrent fetches stops
		// this one's remaining retries too.
		if !l.cfg.Breaker.Allow() {
			sp.SetFlags(span.FlagBreakerOpen)
			sp.Mark(span.StageMiss)
			if lastErr != nil {
				return 0, fmt.Errorf("%w (after %d attempts, last: %v)", ErrCircuitOpen, attempt, lastErr)
			}
			return 0, ErrCircuitOpen
		}
		sp.IncAttempts()
		sp.Mark(span.StageMiss) // slot acquisition + backoff sleeps since the last boundary
		v, err := l.attempt(ctx, key, sp)
		sp.Mark(span.StageFetch) // the store round trip (hedges included)
		switch {
		case err == nil:
			l.cfg.Breaker.Record(true)
			return v, nil
		case errors.Is(err, ErrNotFound):
			// A definitive miss proves the store answered: circuit success.
			l.cfg.Breaker.Record(true)
			return 0, err
		case ctx.Err() != nil:
			// The caller gave up; that proves nothing about the store.
			l.cfg.Breaker.Cancel()
			return 0, ctx.Err()
		default:
			l.cfg.Breaker.Record(false)
		}
		lastErr = err
	}
	return 0, fmt.Errorf("backing: %d attempts failed: %w", l.cfg.Attempts, lastErr)
}

// attempt is one bounded store round trip, hedged when configured: if the
// primary request has not resolved within Hedge, an identical second request
// races it and the first result wins. The shared per-attempt context reaps
// the loser.
func (l *Loader) attempt(ctx context.Context, key uint64, sp *span.Span) (uint64, error) {
	actx, cancel := context.WithTimeout(ctx, l.cfg.Timeout)
	defer cancel()
	l.fetches.Inc()
	if l.cfg.Hedge <= 0 || l.cfg.Hedge >= l.cfg.Timeout {
		return l.store.Get(actx, key)
	}

	type result struct {
		val uint64
		err error
	}
	ch := make(chan result, 2) // buffered: the losing request never blocks
	launch := func() {
		go func() {
			v, err := l.store.Get(actx, key)
			ch <- result{v, err}
		}()
	}
	launch()
	pending, hedged := 1, false
	timer := time.NewTimer(l.cfg.Hedge)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				return r.val, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if pending == 0 {
				return 0, firstErr
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				l.hedges.Inc()
				l.fetches.Inc()
				sp.SetFlags(span.FlagHedged) // lead goroutine only: hedges never touch sp
				launch()
				pending++
			}
		case <-actx.Done():
			return 0, actx.Err()
		}
	}
}

// jitter maps a base delay to [base/2, base): "equal jitter", drawn from a
// seeded lock-free splitmix64 sequence so runs are reproducible.
func (l *Loader) jitter(base time.Duration) time.Duration {
	if base <= 1 {
		return base
	}
	x := l.jitterState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	half := uint64(base / 2)
	return time.Duration(half + x%half)
}

// Inflight returns the number of fetches currently holding slots.
func (l *Loader) Inflight() int { return len(l.sem) }
