package backing

import (
	"context"
	"sync/atomic"
	"time"
)

// Window is one scheduled outage: the store is dark for elapsed times in
// [From, To), measured on the Faulty clock.
type Window struct {
	From, To time.Duration
}

// FaultyConfig parameterizes NewFaulty.
type FaultyConfig struct {
	// Latency is added to every Get/Put before it reaches the inner store
	// (the sleep honours ctx, so attempt timeouts still bite).
	Latency time.Duration
	// ErrRate is the per-operation probability of ErrUnavailable,
	// drawn from a sequence seeded by Seed (deterministic given the same
	// operation order).
	ErrRate float64
	// Seed drives the error-rate draw.
	Seed uint64
	// Windows schedules blackouts against the clock. SetBlackout overrides
	// them in both directions while toggled on.
	Windows []Window
	// Clock reports elapsed time for Windows; nil means wall time since
	// NewFaulty. Tests inject a virtual clock here for determinism.
	Clock func() time.Duration
}

// Faulty decorates a Store with injected latency, a seeded error rate and
// blackout windows — the adversary the graceful-degradation tests run
// against. During a blackout every operation fails immediately with
// ErrUnavailable (a dark backend refuses, it does not dawdle), so callers
// see the fail-fast behaviour the retry budget is sized for.
type Faulty struct {
	inner Store
	cfg   FaultyConfig
	start time.Time

	blackout atomic.Bool
	rngState atomic.Uint64

	injected atomic.Uint64 // faults served (blackout + error rate)
	passed   atomic.Uint64 // operations forwarded to the inner store
}

// NewFaulty wraps inner with the configured fault model.
func NewFaulty(inner Store, cfg FaultyConfig) *Faulty {
	if inner == nil {
		panic("backing: NewFaulty(nil store)")
	}
	f := &Faulty{inner: inner, cfg: cfg, start: time.Now()}
	f.rngState.Store(cfg.Seed*0x9e3779b97f4a7c15 + 0x8badf00d)
	return f
}

// SetBlackout forces (or lifts) a full outage regardless of Windows.
func (f *Faulty) SetBlackout(on bool) { f.blackout.Store(on) }

// Stats returns (faults injected, operations forwarded).
func (f *Faulty) Stats() (injected, passed uint64) {
	return f.injected.Load(), f.passed.Load()
}

// dark reports whether the store is currently blacked out.
func (f *Faulty) dark() bool {
	if f.blackout.Load() {
		return true
	}
	if len(f.cfg.Windows) == 0 {
		return false
	}
	now := f.elapsed()
	for _, w := range f.cfg.Windows {
		if now >= w.From && now < w.To {
			return true
		}
	}
	return false
}

func (f *Faulty) elapsed() time.Duration {
	if f.cfg.Clock != nil {
		return f.cfg.Clock()
	}
	return time.Since(f.start)
}

// gate applies the fault model to one operation; a nil return means the
// operation may proceed to the inner store.
func (f *Faulty) gate(ctx context.Context) error {
	if f.dark() {
		f.injected.Add(1)
		return ErrUnavailable
	}
	if f.cfg.Latency > 0 {
		t := time.NewTimer(f.cfg.Latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if f.cfg.ErrRate > 0 && f.roll() < f.cfg.ErrRate {
		f.injected.Add(1)
		return ErrUnavailable
	}
	f.passed.Add(1)
	return nil
}

// roll draws the next [0,1) value from the seeded splitmix64 sequence.
func (f *Faulty) roll() float64 {
	x := f.rngState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// Get implements Store.
func (f *Faulty) Get(ctx context.Context, key uint64) (uint64, error) {
	if err := f.gate(ctx); err != nil {
		return 0, err
	}
	return f.inner.Get(ctx, key)
}

// Put implements Store.
func (f *Faulty) Put(ctx context.Context, key, val uint64) error {
	if err := f.gate(ctx); err != nil {
		return err
	}
	return f.inner.Put(ctx, key, val)
}
