package backing

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestParseStoreMap(t *testing.T) {
	s, err := ParseStore("map:items=10,synth=false")
	if err != nil {
		t.Fatal(err)
	}
	m, ok := s.(*MapStore)
	if !ok {
		t.Fatalf("got %T, want *MapStore", s)
	}
	if m.Len() != 10 || m.Synth {
		t.Errorf("Len=%d Synth=%v, want 10/false", m.Len(), m.Synth)
	}
	if _, err := m.Get(context.Background(), 999); !errors.Is(err, ErrNotFound) {
		t.Errorf("synth=false store fabricated a value (err %v)", err)
	}
}

func TestParseStoreMapDefaultSynth(t *testing.T) {
	s, err := ParseStore("map")
	if err != nil {
		t.Fatal(err)
	}
	if v, err := s.Get(context.Background(), 5); err != nil || v != uint64(5)^SynthSalt {
		t.Errorf("default map store Get = %d, %v (want synthesized)", v, err)
	}
}

func TestParseStoreBTree(t *testing.T) {
	s, err := ParseStore("btree:items=100")
	if err != nil {
		t.Fatal(err)
	}
	b, ok := s.(*BTree)
	if !ok {
		t.Fatalf("got %T, want *BTree", s)
	}
	if b.Server().Items() != 100 {
		t.Errorf("Items = %d, want 100", b.Server().Items())
	}
}

func TestParseStoreFaultWrap(t *testing.T) {
	s, err := ParseStore("map:items=10,err=0.5,seed=3")
	if err != nil {
		t.Fatal(err)
	}
	f, ok := s.(*Faulty)
	if !ok {
		t.Fatalf("got %T, want *Faulty wrapper", s)
	}
	if f.cfg.ErrRate != 0.5 || f.cfg.Seed != 3 {
		t.Errorf("cfg = %+v", f.cfg)
	}
}

func TestParseStoreBlackoutWindows(t *testing.T) {
	s, err := ParseStore("map:blackout=1s-2s;5s-6s,latency=1ms")
	if err != nil {
		t.Fatal(err)
	}
	f, ok := s.(*Faulty)
	if !ok {
		t.Fatalf("got %T, want *Faulty wrapper", s)
	}
	want := []Window{{From: time.Second, To: 2 * time.Second}, {From: 5 * time.Second, To: 6 * time.Second}}
	if len(f.cfg.Windows) != 2 || f.cfg.Windows[0] != want[0] || f.cfg.Windows[1] != want[1] {
		t.Errorf("Windows = %v, want %v", f.cfg.Windows, want)
	}
	if f.cfg.Latency != time.Millisecond {
		t.Errorf("Latency = %v", f.cfg.Latency)
	}
}

func TestParseStoreErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"redis",
		"map:items",
		"map:items=x",
		"map:wat=1",
		"map:blackout=2s-1s",
		"map:blackout=oops",
	} {
		if _, err := ParseStore(spec); err == nil {
			t.Errorf("ParseStore(%q) accepted", spec)
		}
	}
}
