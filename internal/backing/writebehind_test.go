package backing

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/obs"
)

func TestWriteBehindDrains(t *testing.T) {
	store := NewMapStore()
	reg := obs.NewRegistry()
	w := NewWriteBehind(store, WriteBehindConfig{Obs: reg})
	defer w.Close()

	for i := uint64(1); i <= 100; i++ {
		if !w.Offer(i, i*2) {
			t.Fatalf("Offer(%d) rejected with an empty queue", i)
		}
	}
	w.Flush()
	if got := store.Len(); got != 100 {
		t.Fatalf("store has %d keys after Flush, want 100", got)
	}
	if v, _ := store.Get(context.Background(), 7); v != 14 {
		t.Errorf("store[7] = %d, want 14", v)
	}
	offered, drained, dropped, failures := w.Stats()
	if offered != 100 || drained != 100 || dropped != 0 || failures != 0 {
		t.Errorf("Stats = (%d, %d, %d, %d), want (100, 100, 0, 0)", offered, drained, dropped, failures)
	}
	if got := reg.CounterValue("backing_writebehind_puts_total"); got != 100 {
		t.Errorf("puts counter = %d, want 100", got)
	}
}

func TestWriteBehindShedsOnFullQueue(t *testing.T) {
	block := make(chan struct{})
	store := FuncStore{
		GetFn: func(ctx context.Context, key uint64) (uint64, error) { return 0, ErrNotFound },
		PutFn: func(ctx context.Context, key, val uint64) error {
			<-block
			return nil
		},
	}
	w := NewWriteBehind(store, WriteBehindConfig{QueueDepth: 4, Timeout: 10 * time.Second})
	defer w.Close()

	// Saturate: 1 pair in the worker + 4 queued; everything beyond sheds.
	accepted := 0
	for i := uint64(0); i < 20; i++ {
		if w.Offer(i, i) {
			accepted++
		}
	}
	if accepted > 5 {
		t.Errorf("accepted %d pairs into a depth-4 queue", accepted)
	}
	_, _, dropped, _ := w.Stats()
	if int(dropped) != 20-accepted {
		t.Errorf("dropped = %d, want %d", dropped, 20-accepted)
	}
	close(block)
}

func TestWriteBehindRetriesThenGivesUp(t *testing.T) {
	var mu sync.Mutex
	calls := map[uint64]int{}
	store := FuncStore{
		GetFn: func(ctx context.Context, key uint64) (uint64, error) { return 0, ErrNotFound },
		PutFn: func(ctx context.Context, key, val uint64) error {
			mu.Lock()
			defer mu.Unlock()
			calls[key]++
			if key == 1 && calls[key] < 3 {
				return ErrUnavailable // heals on the third attempt
			}
			if key == 2 {
				return ErrUnavailable // never heals
			}
			return nil
		},
	}
	w := NewWriteBehind(store, WriteBehindConfig{
		Attempts: 3, Backoff: time.Millisecond, BackoffCap: 2 * time.Millisecond,
	})
	w.Offer(1, 10)
	w.Offer(2, 20)
	w.Flush()
	w.Close()

	mu.Lock()
	defer mu.Unlock()
	if calls[1] != 3 {
		t.Errorf("key 1 Put attempts = %d, want 3 (healed)", calls[1])
	}
	if calls[2] != 3 {
		t.Errorf("key 2 Put attempts = %d, want 3 (budget spent)", calls[2])
	}
	_, _, _, failures := w.Stats()
	if failures != 1 {
		t.Errorf("failures = %d, want 1", failures)
	}
}

// TestWriteBehindOfferAfterCloseNoPanic pins the lifecycle contract: Offer
// racing Close never panics on the closed queue, it just reports false.
func TestWriteBehindOfferAfterCloseNoPanic(t *testing.T) {
	w := NewWriteBehind(NewMapStore(), WriteBehindConfig{})
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 1000; i++ {
				w.Offer(uint64(g*1000+i), 1)
			}
		}(g)
	}
	close(start)
	time.Sleep(time.Millisecond)
	w.Close()
	wg.Wait()
	w.Close() // idempotent
	if !t.Failed() {
		offered, drained, dropped, _ := w.Stats()
		if drained != offered {
			t.Errorf("drained %d of %d offered", drained, offered)
		}
		if offered+dropped != 8000 {
			t.Errorf("offered %d + dropped %d != 8000", offered, dropped)
		}
	}
}
