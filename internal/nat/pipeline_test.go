package nat

import (
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/pipeline"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/trace"
)

// TestLruTableOnPipelineDataplane runs the whole LruTable simulation twice —
// once on the plain-Go P4LRU3 array and once on the pipeline-realized
// program (same hash seed) — and requires identical system-level results:
// the constraint-checked data plane tells the same story end to end.
func TestLruTableOnPipelineDataplane(t *testing.T) {
	tr := trace.Synthesize(trace.SynthConfig{
		Packets:   120_000,
		BaseFlows: 10_000,
		Segments:  20,
		Duration:  time.Second,
		Seed:      21,
	})
	const units = 1 << 10
	const seed = 77

	cfg := func(c policy.Cache) Config {
		return Config{Cache: c, SlowPathDelay: time.Millisecond}
	}

	plain := Run(tr, cfg(policy.NewP4LRU(3, units, seed, MergeNAT)))

	arr, err := pipeline.BuildCacheArray3("natdp", units, seed, pipeline.ModeRead, pipeline.TofinoBudget)
	if err != nil {
		t.Fatal(err)
	}
	piped := Run(tr, cfg(arr.AsPolicyCache()))

	if plain.Packets != piped.Packets ||
		plain.Hits != piped.Hits ||
		plain.PlaceholderHits != piped.PlaceholderHits ||
		plain.Misses != piped.Misses ||
		plain.SlowPathTrips != piped.SlowPathTrips {
		t.Fatalf("system results diverge:\nplain: %+v\npipeline: %+v", plain, piped)
	}
	if plain.AvgAddedLatency != piped.AvgAddedLatency {
		t.Errorf("latency diverges: %v vs %v", plain.AvgAddedLatency, piped.AvgAddedLatency)
	}
	if plain.CacheEntries != piped.CacheEntries {
		t.Errorf("final cache occupancy diverges: %d vs %d", plain.CacheEntries, piped.CacheEntries)
	}
	if piped.MissRate <= 0 {
		t.Error("pipeline run degenerate (no misses)")
	}
}
