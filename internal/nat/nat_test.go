package nat

import (
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/trace"
)

func testTrace(segments int, packets int) *trace.Trace {
	return trace.Synthesize(trace.SynthConfig{
		Packets:   packets,
		BaseFlows: packets / 20,
		Segments:  segments,
		Duration:  time.Second,
		Seed:      42,
	})
}

func newCache(kind policy.Kind, mem int) policy.Cache {
	return policy.NewForMemory(kind, mem, policy.Options{
		Seed:             1,
		Merge:            MergeNAT,
		TimeoutThreshold: 50 * time.Millisecond,
	})
}

func TestMergeNAT(t *testing.T) {
	if MergeNAT(5, Placeholder) != 5 {
		t.Error("placeholder overwrote a real translation")
	}
	if MergeNAT(Placeholder, 9) != 9 {
		t.Error("real translation did not land")
	}
	if MergeNAT(5, 9) != 9 {
		t.Error("newer translation did not land")
	}
}

func TestRunBasics(t *testing.T) {
	tr := testTrace(1, 50000)
	res := Run(tr, Config{
		Cache:         newCache(policy.KindP4LRU3, 256*1024),
		SlowPathDelay: time.Millisecond,
	})
	if res.Packets != len(tr.Packets) {
		t.Fatalf("packets = %d, want %d", res.Packets, len(tr.Packets))
	}
	if res.Hits+res.PlaceholderHits+res.Misses != res.Packets {
		t.Fatalf("accounting: %d + %d + %d != %d",
			res.Hits, res.PlaceholderHits, res.Misses, res.Packets)
	}
	if res.MissRate <= 0 || res.MissRate >= 1 {
		t.Errorf("miss rate = %v", res.MissRate)
	}
	if res.SlowPathTrips != res.Misses+res.PlaceholderHits {
		t.Errorf("slow path trips = %d, want %d", res.SlowPathTrips, res.Misses+res.PlaceholderHits)
	}
	if res.AvgAddedLatency <= 0 {
		t.Errorf("avg latency = %v", res.AvgAddedLatency)
	}
	if res.CacheEntries == 0 {
		t.Error("cache ended empty")
	}
}

func TestRunDeterministic(t *testing.T) {
	tr := testTrace(4, 20000)
	run := func() Result {
		return Run(tr, Config{
			Cache:         newCache(policy.KindP4LRU3, 64*1024),
			SlowPathDelay: time.Millisecond,
		})
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("runs differ:\n%+v\n%+v", a, b)
	}
}

// TestMissRateRisesWithConcurrency reproduces the Figure 9(a) trend: more
// concurrent flows ⇒ higher fast-path miss rate.
func TestMissRateRisesWithConcurrency(t *testing.T) {
	miss := map[int]float64{}
	for _, n := range []int{1, 60} {
		tr := testTrace(n, 100000)
		res := Run(tr, Config{
			Cache:         newCache(policy.KindP4LRU3, 128*1024),
			SlowPathDelay: time.Millisecond,
		})
		miss[n] = res.MissRate
	}
	if miss[60] <= miss[1] {
		t.Errorf("miss rate CAIDA60 %.4f not above CAIDA1 %.4f", miss[60], miss[1])
	}
}

// TestP4LRU3BeatsBaseline reproduces the headline Figure 9 comparison:
// the P4LRU3 cache must produce a lower miss rate (and hence latency) than
// the hash-table baseline at equal memory.
func TestP4LRU3BeatsBaseline(t *testing.T) {
	tr := testTrace(30, 100000)
	cfg := func(kind policy.Kind) Config {
		return Config{
			Cache:         newCache(kind, 128*1024),
			SlowPathDelay: time.Millisecond,
		}
	}
	p3 := Run(tr, cfg(policy.KindP4LRU3))
	p1 := Run(tr, cfg(policy.KindP4LRU1))
	if p3.MissRate >= p1.MissRate {
		t.Errorf("p4lru3 miss %.4f not below baseline %.4f", p3.MissRate, p1.MissRate)
	}
	if p3.AvgAddedLatency >= p1.AvgAddedLatency {
		t.Errorf("p4lru3 latency %v not below baseline %v", p3.AvgAddedLatency, p1.AvgAddedLatency)
	}
}

// TestLatencyScalesWithSlowPath: average added latency must grow with ΔT
// and stay between the fast-path floor and ΔT.
func TestLatencyScalesWithSlowPath(t *testing.T) {
	tr := testTrace(10, 50000)
	var prev time.Duration
	for _, dt := range []time.Duration{100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond} {
		res := Run(tr, Config{
			Cache:         newCache(policy.KindP4LRU3, 128*1024),
			SlowPathDelay: dt,
		})
		if res.AvgAddedLatency <= prev {
			t.Errorf("ΔT=%v: latency %v not increasing", dt, res.AvgAddedLatency)
		}
		if res.AvgAddedLatency >= dt+time.Microsecond {
			t.Errorf("ΔT=%v: avg latency %v above ΔT", dt, res.AvgAddedLatency)
		}
		prev = res.AvgAddedLatency
	}
}

// TestSlowPathFillsPlaceholders: after the slow-path reply lands, repeat
// traffic to the same flow must take the fast path with the real address.
func TestSlowPathFillsPlaceholders(t *testing.T) {
	// Two packets of the same flow, far enough apart for the reply.
	tr := &trace.Trace{Packets: []trace.Packet{
		{Time: 0, Flow: 77, Size: 100},
		{Time: 10 * time.Millisecond, Flow: 77, Size: 100},
	}}
	res := Run(tr, Config{
		Cache:         newCache(policy.KindP4LRU3, 64*1024),
		SlowPathDelay: time.Millisecond,
	})
	if res.Misses != 1 || res.Hits != 1 || res.PlaceholderHits != 0 {
		t.Errorf("miss/hit/placeholder = %d/%d/%d, want 1/1/0",
			res.Misses, res.Hits, res.PlaceholderHits)
	}
}

// TestPlaceholderHitBeforeReply: a second packet arriving before the reply
// must count as a placeholder hit (slow path, no second reply).
func TestPlaceholderHitBeforeReply(t *testing.T) {
	tr := &trace.Trace{Packets: []trace.Packet{
		{Time: 0, Flow: 77, Size: 100},
		{Time: 10 * time.Microsecond, Flow: 77, Size: 100}, // reply lands at 1ms
	}}
	res := Run(tr, Config{
		Cache:         newCache(policy.KindP4LRU3, 64*1024),
		SlowPathDelay: time.Millisecond,
	})
	if res.Misses != 1 || res.PlaceholderHits != 1 || res.Hits != 0 {
		t.Errorf("miss/hit/placeholder = %d/%d/%d, want 1/0/1",
			res.Misses, res.Hits, res.PlaceholderHits)
	}
	// Exactly one slow-path reply was generated for the miss; the
	// placeholder hit added a control-plane trip but no cache update.
	if res.SlowPathTrips != 2 {
		t.Errorf("slow path trips = %d, want 2", res.SlowPathTrips)
	}
}

// TestSimilarityOrdering: Figure 15(b) — P4LRU3 similarity above P4LRU1.
func TestSimilarityOrdering(t *testing.T) {
	tr := testTrace(20, 60000)
	run := func(kind policy.Kind) float64 {
		return Run(tr, Config{
			Cache:           newCache(kind, 32*1024),
			SlowPathDelay:   time.Millisecond,
			TrackSimilarity: true,
		}).Similarity
	}
	s3, s1 := run(policy.KindP4LRU3), run(policy.KindP4LRU1)
	if s3 <= s1 {
		t.Errorf("similarity p4lru3 %.3f not above p4lru1 %.3f", s3, s1)
	}
	ideal := run(policy.KindIdeal)
	if ideal != 1 {
		t.Errorf("ideal similarity = %.3f, want 1", ideal)
	}
}

func TestRunPanicsWithoutCache(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil cache accepted")
		}
	}()
	Run(&trace.Trace{}, Config{})
}
