// Package nat implements LruTable (§3.1): a data-plane network address
// translation system whose fast path is a P4LRU3 cache of NAT table entries,
// with the full table in control-plane memory behind a slow path of latency
// ΔT.
//
// Protocol, following the paper exactly:
//
//   - every packet's virtual address is inserted into the data-plane cache;
//   - cache hit with a real translation → fast path (pipeline latency only);
//   - cache miss → a placeholder is admitted and the packet consults the
//     control plane; after ΔT the looked-up translation re-traverses the
//     data plane and replaces the placeholder;
//   - cache hit on a placeholder → the packet still needs the control
//     plane, but does not re-traverse the cache (no duplicate reply).
//
// The replacement policy is pluggable (policy.Cache), which is how the
// Figure 12 comparative sweep runs.
package nat

import (
	"time"

	"github.com/p4lru/p4lru/internal/hashing"
	"github.com/p4lru/p4lru/internal/lru"
	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/simnet"
	"github.com/p4lru/p4lru/internal/trace"
)

// Placeholder is the value marking "translation pending" in the data plane
// (the paper uses 0x00000000 or 0xFFFFFFFF).
const Placeholder = 0

// MergeNAT is the value-merge discipline of the read-cache: a placeholder
// never overwrites a real translation, and a reply's real translation always
// lands. Install it as the cache's MergeFunc.
func MergeNAT(old, incoming uint64) uint64 {
	if incoming == Placeholder {
		return old
	}
	return incoming
}

// Config parameterizes a run.
type Config struct {
	// Cache is the data-plane cache (construct with MergeNAT as merge).
	Cache policy.Cache
	// SlowPathDelay is ΔT: the control-plane round trip.
	SlowPathDelay time.Duration
	// FastPathLatency is the added latency of a fast-path translation
	// (pipeline traversal; the paper measures ≈0.1 µs extra vs plain
	// forwarding).
	FastPathLatency time.Duration
	// TrackSimilarity enables the §4.2 LRU-similarity metric (costs time).
	TrackSimilarity bool
	// Obs, when non-nil, receives live run counters (nat_packets_total,
	// nat_hits_total, nat_misses_total, nat_evictions_total, …) so a metrics
	// endpoint can watch the run progress. nil costs nothing.
	Obs *obs.Registry
	// Tracer, when non-nil, records slow-path round trips as virtual-time
	// events (nat.slowpath.issue / nat.slowpath.install, payload = the
	// virtual address).
	Tracer *obs.Tracer
}

// metrics holds the pre-resolved counter handles of one run. The zero value
// holds nil counters, whose methods are no-ops — so the uninstrumented run
// increments unconditionally at the cost of one nil check per counter.
type metrics struct {
	packets, hits, placeholderHits, misses, evictions, slowPath *obs.Counter
}

func newMetrics(r *obs.Registry) metrics {
	return metrics{
		packets:         r.Counter("nat_packets_total"),
		hits:            r.Counter("nat_hits_total"),
		placeholderHits: r.Counter("nat_placeholder_hits_total"),
		misses:          r.Counter("nat_misses_total"),
		evictions:       r.Counter("nat_evictions_total"),
		slowPath:        r.Counter("nat_slowpath_trips_total"),
	}
}

// Result aggregates a run.
type Result struct {
	Packets         int
	Hits            int // fast-path hits with a real translation
	PlaceholderHits int // cache hit but translation still pending
	Misses          int // cache misses
	SlowPathTrips   int // control-plane lookups issued
	MissRate        float64
	AvgAddedLatency time.Duration
	Similarity      float64
	CacheEntries    int
}

// table is the control-plane NAT table: the real address for a virtual
// address is a deterministic non-placeholder function of it, standing in for
// the operator-populated table (the data plane never computes it — only the
// slow path does).
type table struct{ h hashing.Hash }

func (t table) realAddr(va uint64) uint64 {
	ra := t.h.Uint64(va)
	if ra == Placeholder {
		ra = 1
	}
	return ra
}

// Run replays the trace through the system.
func Run(tr *trace.Trace, cfg Config) Result {
	if cfg.Cache == nil {
		panic("nat: Config.Cache is nil")
	}
	if cfg.FastPathLatency == 0 {
		cfg.FastPathLatency = 100 * time.Nanosecond
	}
	eng := simnet.New()
	eng.SetTracer(cfg.Tracer)
	tbl := table{h: hashing.New(0x7ab1e)}

	var m metrics
	if cfg.Obs != nil {
		m = newMetrics(cfg.Obs)
	}

	var res Result
	var totalLatency time.Duration
	var tracker *lru.SimilarityTracker
	if cfg.TrackSimilarity {
		tracker = lru.NewSimilarityTracker()
	}

	for _, pkt := range tr.Packets {
		eng.RunUntil(pkt.Time) // deliver pending slow-path replies first
		va := pkt.Flow
		res.Packets++

		r := cfg.Cache.Update(va, Placeholder, 0, eng.Now())
		if tracker != nil {
			if r.Hit || r.Admitted {
				tracker.Touch(va)
			}
			if r.Evicted {
				tracker.Evict(r.EvictedKey)
			}
		}
		m.packets.Inc()
		if r.Evicted {
			m.evictions.Inc()
		}

		switch {
		case r.Hit:
			if v, _, _ := cfg.Cache.Query(va); v != Placeholder {
				res.Hits++
				totalLatency += cfg.FastPathLatency
				m.hits.Inc()
			} else {
				// Placeholder hit: slow path, but no cache re-traversal.
				res.PlaceholderHits++
				res.SlowPathTrips++
				totalLatency += cfg.SlowPathDelay + cfg.FastPathLatency
				m.placeholderHits.Inc()
				m.slowPath.Inc()
			}
		default:
			res.Misses++
			res.SlowPathTrips++
			totalLatency += cfg.SlowPathDelay + cfg.FastPathLatency
			m.misses.Inc()
			m.slowPath.Inc()
			eng.Trace("nat.slowpath.issue", va)
			// The reply re-traverses the data plane after ΔT, carrying the
			// real translation.
			eng.Schedule(cfg.SlowPathDelay, func() {
				eng.Trace("nat.slowpath.install", va)
				rr := cfg.Cache.Update(va, tbl.realAddr(va), 0, eng.Now())
				if tracker != nil {
					if rr.Hit || rr.Admitted {
						tracker.Touch(va)
					}
					if rr.Evicted {
						tracker.Evict(rr.EvictedKey)
					}
				}
				if rr.Evicted {
					m.evictions.Inc()
				}
			})
		}
	}
	eng.Run()

	if res.Packets > 0 {
		res.MissRate = float64(res.Misses) / float64(res.Packets)
		totalPkts := time.Duration(res.Packets)
		res.AvgAddedLatency = totalLatency / totalPkts
	}
	res.Similarity = 1
	if tracker != nil {
		res.Similarity = tracker.Similarity()
	}
	res.CacheEntries = cfg.Cache.Len()
	return res
}
