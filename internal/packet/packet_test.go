package packet

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"github.com/p4lru/p4lru/internal/trace"
)

func sampleTuple() FiveTuple {
	return FiveTuple{
		SrcIP:   [4]byte{10, 1, 2, 3},
		DstIP:   [4]byte{192, 168, 0, 9},
		SrcPort: 4444,
		DstPort: 53,
		Proto:   ProtoUDP,
	}
}

func TestBuildParseRoundTrip(t *testing.T) {
	for _, proto := range []uint8{ProtoUDP, ProtoTCP} {
		ft := sampleTuple()
		ft.Proto = proto
		for _, wireLen := range []int{0, 64, 200, 1514} {
			frame := Build(ft, wireLen)
			f, err := Parse(frame)
			if err != nil {
				t.Fatalf("proto %d len %d: %v", proto, wireLen, err)
			}
			if f.Tuple != ft {
				t.Fatalf("tuple %+v, want %+v", f.Tuple, ft)
			}
			want := wireLen
			if min := EthernetHeaderLen + IPv4HeaderLen + UDPHeaderLen; want < min {
				want = len(frame)
			}
			if f.WireLen != want {
				t.Errorf("wireLen %d, want %d", f.WireLen, want)
			}
		}
	}
}

func TestParseRejects(t *testing.T) {
	good := Build(sampleTuple(), 100)

	// Truncated.
	if _, err := Parse(good[:20]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}
	// Wrong EtherType.
	bad := append([]byte(nil), good...)
	bad[12] = 0x86
	if _, err := Parse(bad); !errors.Is(err, ErrNotIPv4) {
		t.Errorf("ethertype: %v", err)
	}
	// Corrupted IP header → checksum failure.
	bad = append([]byte(nil), good...)
	bad[EthernetHeaderLen+8] ^= 0xff // TTL
	if _, err := Parse(bad); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("checksum: %v", err)
	}
	// Unsupported protocol (rebuild checksum so it gets that far).
	bad = append([]byte(nil), good...)
	ip := bad[EthernetHeaderLen:]
	ip[9] = 1 // ICMP
	ip[10], ip[11] = 0, 0
	c := Checksum(ip[:IPv4HeaderLen])
	ip[10], ip[11] = byte(c>>8), byte(c)
	if _, err := Parse(bad); !errors.Is(err, ErrProto) {
		t.Errorf("proto: %v", err)
	}
}

func TestChecksum(t *testing.T) {
	// RFC 1071 example: the checksum of data including its own checksum
	// field is zero.
	hdr := Build(sampleTuple(), 64)[EthernetHeaderLen:][:IPv4HeaderLen]
	if Checksum(hdr) != 0 {
		t.Error("checksum over valid header not zero")
	}
	// Odd length handled.
	if Checksum([]byte{0x01}) != ^uint16(0x0100) {
		t.Errorf("odd-length checksum = %#x", Checksum([]byte{0x01}))
	}
}

func TestKeyProperties(t *testing.T) {
	a := sampleTuple()
	b := a
	b.SrcPort++
	if a.Key() == b.Key() {
		t.Error("port change did not change key")
	}
	if a.Key() != sampleTuple().Key() {
		t.Error("key not deterministic")
	}
}

func TestKeyCollisionRate(t *testing.T) {
	f := func(s1, d1 [4]byte, sp, dp uint16) bool {
		a := FiveTuple{SrcIP: s1, DstIP: d1, SrcPort: sp, DstPort: dp, Proto: ProtoTCP}
		b := a
		b.DstIP[3] ^= 1
		return a.Key() != b.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestTupleString(t *testing.T) {
	got := sampleTuple().String()
	if got != "10.1.2.3:4444→192.168.0.9:53/17" {
		t.Errorf("String() = %q", got)
	}
}

func TestPcapRoundTrip(t *testing.T) {
	src := trace.Synthesize(trace.SynthConfig{
		Packets: 5000, BaseFlows: 500, Segments: 2, Duration: time.Second, Seed: 4,
	})
	var buf bytes.Buffer
	if err := WritePcap(&buf, src); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Errorf("%d frames skipped", skipped)
	}
	if len(got.Packets) != len(src.Packets) {
		t.Fatalf("packets %d vs %d", len(got.Packets), len(src.Packets))
	}
	// Flow structure must survive: same number of distinct flows, and the
	// same packets-per-flow multiset (keys are rewritten to tuple keys).
	countFlows := func(tr *trace.Trace) map[uint64]int {
		m := map[uint64]int{}
		for _, p := range tr.Packets {
			m[p.Flow]++
		}
		return m
	}
	a, b := countFlows(src), countFlows(got)
	if len(a) != len(b) {
		t.Fatalf("flows %d vs %d", len(a), len(b))
	}
	hist := func(m map[uint64]int) map[int]int {
		h := map[int]int{}
		for _, c := range m {
			h[c]++
		}
		return h
	}
	ha, hb := hist(a), hist(b)
	for size, n := range ha {
		if hb[size] != n {
			t.Errorf("flow-size histogram differs at %d: %d vs %d", size, n, hb[size])
		}
	}
	// Sizes survive via orig_len even though frames are snapped.
	for i := range src.Packets {
		if got.Packets[i].Size != src.Packets[i].Size {
			t.Fatalf("packet %d size %d vs %d", i, got.Packets[i].Size, src.Packets[i].Size)
		}
	}
	// Timestamps survive at microsecond resolution, rebased to the first
	// packet (as ReadPcap documents).
	base := src.Packets[0].Time
	for i := range src.Packets {
		d := got.Packets[i].Time - (src.Packets[i].Time - base)
		if d < -time.Microsecond || d > time.Microsecond {
			t.Fatalf("packet %d time drift %v", i, d)
		}
	}
}

func TestReadPcapRejectsGarbage(t *testing.T) {
	for i, b := range [][]byte{
		nil,
		[]byte("short"),
		make([]byte, 24), // zero magic
	} {
		if _, _, err := ReadPcap(bytes.NewReader(b)); !errors.Is(err, ErrBadPcap) {
			t.Errorf("case %d: %v", i, err)
		}
	}
	// Wrong link type.
	var buf bytes.Buffer
	_ = WritePcap(&buf, &trace.Trace{})
	raw := buf.Bytes()
	raw[20] = 101 // LINKTYPE_RAW
	if _, _, err := ReadPcap(bytes.NewReader(raw)); !errors.Is(err, ErrBadPcap) {
		t.Errorf("link type: %v", err)
	}
}

func TestReadPcapTruncatedBody(t *testing.T) {
	src := trace.Synthesize(trace.SynthConfig{Packets: 100, BaseFlows: 10, Seed: 1})
	var buf bytes.Buffer
	if err := WritePcap(&buf, src); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-7]
	if _, _, err := ReadPcap(bytes.NewReader(cut)); err == nil {
		t.Error("truncated pcap accepted")
	}
}

func TestReadPcapSkipsForeignFrames(t *testing.T) {
	// Hand-assemble a capture with one valid frame and one ARP frame.
	var buf bytes.Buffer
	src := &trace.Trace{Packets: []trace.Packet{{Time: 0, Flow: 1, Size: 100}}}
	if err := WritePcap(&buf, src); err != nil {
		t.Fatal(err)
	}
	arp := make([]byte, 42)
	arp[12], arp[13] = 0x08, 0x06
	var rec [16]byte
	recLen := uint32(len(arp))
	putU32 := func(off int, v uint32) {
		rec[off] = byte(v)
		rec[off+1] = byte(v >> 8)
		rec[off+2] = byte(v >> 16)
		rec[off+3] = byte(v >> 24)
	}
	putU32(8, recLen)
	putU32(12, recLen)
	buf.Write(rec[:])
	buf.Write(arp)

	tr, skipped, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 || len(tr.Packets) != 1 {
		t.Errorf("skipped=%d packets=%d, want 1/1", skipped, len(tr.Packets))
	}
}

func BenchmarkParse(b *testing.B) {
	frame := Build(sampleTuple(), 1500)
	b.SetBytes(int64(len(frame)))
	for i := 0; i < b.N; i++ {
		if _, err := Parse(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTupleKey(b *testing.B) {
	ft := sampleTuple()
	var sink uint64
	for i := 0; i < b.N; i++ {
		ft.SrcPort = uint16(i)
		sink ^= ft.Key()
	}
	_ = sink
}
