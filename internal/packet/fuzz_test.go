package packet

import (
	"bytes"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/trace"
)

// FuzzParse: the frame parser must never panic on arbitrary bytes, and any
// frame it accepts must carry a self-consistent wire length.
func FuzzParse(f *testing.F) {
	f.Add(Build(sampleTuple(), 100))
	tcp := sampleTuple()
	tcp.Proto = ProtoTCP
	f.Add(Build(tcp, 1514))
	f.Add([]byte{})
	f.Add(make([]byte, EthernetHeaderLen+IPv4HeaderLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Parse(data)
		if err != nil {
			return
		}
		if fr.WireLen < EthernetHeaderLen+IPv4HeaderLen {
			t.Fatalf("accepted frame with wire length %d", fr.WireLen)
		}
		if fr.Tuple.Proto != ProtoTCP && fr.Tuple.Proto != ProtoUDP {
			t.Fatalf("accepted protocol %d", fr.Tuple.Proto)
		}
	})
}

// FuzzReadPcap: the capture reader must never panic; accepted captures must
// produce time-ordered... (pcap timestamps may jitter; we only require no
// panic and bounded sizes).
func FuzzReadPcap(f *testing.F) {
	tr := trace.Synthesize(trace.SynthConfig{
		Packets: 30, BaseFlows: 5, Duration: 10 * time.Millisecond, Seed: 2,
	})
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:30])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, _, err := ReadPcap(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, p := range got.Packets {
			if p.Size > 0xffff {
				t.Fatalf("size %d overflows", p.Size)
			}
		}
	})
}
