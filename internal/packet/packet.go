// Package packet provides the frame-level substrate: building and parsing
// Ethernet/IPv4/TCP/UDP headers (the 5-tuple extraction a data plane's
// parser performs, §3.3's flow keys) and reading/writing libpcap capture
// files so the simulators can consume real packet captures in place of the
// synthetic CAIDA_n traces.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Protocol numbers used by the parser.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// FiveTuple identifies a flow: the paper's ⟨srcIP, srcPort, dstIP, dstPort,
// protocol⟩.
type FiveTuple struct {
	SrcIP   [4]byte
	DstIP   [4]byte
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// String renders the tuple like "10.0.0.1:1234→10.0.0.2:80/6".
func (ft FiveTuple) String() string {
	return fmt.Sprintf("%s:%d→%s:%d/%d",
		netip.AddrFrom4(ft.SrcIP), ft.SrcPort,
		netip.AddrFrom4(ft.DstIP), ft.DstPort, ft.Proto)
}

// Key folds the tuple into the 64-bit flow key the caches use. It is a
// structural encoding mixed with one multiply-xorshift round — enough to
// spread adjacent addresses, deterministic across runs.
func (ft FiveTuple) Key() uint64 {
	hi := uint64(binary.BigEndian.Uint32(ft.SrcIP[:]))<<32 |
		uint64(binary.BigEndian.Uint32(ft.DstIP[:]))
	lo := uint64(ft.SrcPort)<<24 | uint64(ft.DstPort)<<8 | uint64(ft.Proto)
	x := hi ^ (lo * 0x9e3779b97f4a7c15)
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

// Header sizes.
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20
	UDPHeaderLen      = 8
	TCPHeaderLen      = 20
)

// etherTypeIPv4 is the only EtherType the parser accepts.
const etherTypeIPv4 = 0x0800

// Parse errors.
var (
	ErrTruncated   = errors.New("packet: truncated frame")
	ErrNotIPv4     = errors.New("packet: not IPv4")
	ErrBadChecksum = errors.New("packet: bad IPv4 header checksum")
	ErrProto       = errors.New("packet: unsupported transport protocol")
)

// Frame is a parsed packet.
type Frame struct {
	Tuple FiveTuple
	// WireLen is the IPv4 total length plus the Ethernet header — the byte
	// count a telemetry system charges the flow.
	WireLen int
}

// Parse decodes an Ethernet frame down to the transport ports. It verifies
// the IPv4 header checksum and rejects non-IPv4 and non-TCP/UDP frames.
func Parse(frame []byte) (Frame, error) {
	if len(frame) < EthernetHeaderLen+IPv4HeaderLen {
		return Frame{}, ErrTruncated
	}
	if binary.BigEndian.Uint16(frame[12:14]) != etherTypeIPv4 {
		return Frame{}, ErrNotIPv4
	}
	ip := frame[EthernetHeaderLen:]
	if ip[0]>>4 != 4 {
		return Frame{}, ErrNotIPv4
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(ip) < ihl {
		return Frame{}, ErrTruncated
	}
	if Checksum(ip[:ihl]) != 0 {
		return Frame{}, ErrBadChecksum
	}
	totalLen := int(binary.BigEndian.Uint16(ip[2:4]))
	if totalLen < ihl {
		return Frame{}, ErrTruncated
	}

	var f Frame
	f.Tuple.Proto = ip[9]
	copy(f.Tuple.SrcIP[:], ip[12:16])
	copy(f.Tuple.DstIP[:], ip[16:20])
	f.WireLen = EthernetHeaderLen + totalLen

	switch f.Tuple.Proto {
	case ProtoTCP, ProtoUDP:
		transport := ip[ihl:]
		if len(transport) < 4 {
			return Frame{}, ErrTruncated
		}
		f.Tuple.SrcPort = binary.BigEndian.Uint16(transport[0:2])
		f.Tuple.DstPort = binary.BigEndian.Uint16(transport[2:4])
	default:
		return Frame{}, fmt.Errorf("%w: %d", ErrProto, f.Tuple.Proto)
	}
	return f, nil
}

// Build constructs a minimal valid Ethernet+IPv4+transport frame for the
// tuple with the given wire length (Ethernet header included; clamped to at
// least the header stack). Payload bytes are zero.
func Build(ft FiveTuple, wireLen int) []byte {
	transportLen := UDPHeaderLen
	if ft.Proto == ProtoTCP {
		transportLen = TCPHeaderLen
	}
	minLen := EthernetHeaderLen + IPv4HeaderLen + transportLen
	if wireLen < minLen {
		wireLen = minLen
	}
	frame := make([]byte, wireLen)

	// Ethernet: locally administered MACs derived from the IPs.
	frame[0], frame[6] = 0x02, 0x02
	copy(frame[1:5], ft.DstIP[:])
	copy(frame[7:11], ft.SrcIP[:])
	binary.BigEndian.PutUint16(frame[12:14], etherTypeIPv4)

	ip := frame[EthernetHeaderLen:]
	ip[0] = 0x45 // v4, IHL 5
	totalLen := wireLen - EthernetHeaderLen
	binary.BigEndian.PutUint16(ip[2:4], uint16(totalLen))
	ip[8] = 64 // TTL
	ip[9] = ft.Proto
	copy(ip[12:16], ft.SrcIP[:])
	copy(ip[16:20], ft.DstIP[:])
	binary.BigEndian.PutUint16(ip[10:12], Checksum(ip[:IPv4HeaderLen]))

	transport := ip[IPv4HeaderLen:]
	binary.BigEndian.PutUint16(transport[0:2], ft.SrcPort)
	binary.BigEndian.PutUint16(transport[2:4], ft.DstPort)
	switch ft.Proto {
	case ProtoUDP:
		binary.BigEndian.PutUint16(transport[4:6], uint16(totalLen-IPv4HeaderLen))
	case ProtoTCP:
		transport[12] = TCPHeaderLen / 4 << 4 // data offset
	}
	return frame
}

// Checksum computes the RFC 1071 Internet checksum of b. Over a header with
// its checksum field populated it returns 0 iff the checksum is valid.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
