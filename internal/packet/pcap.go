package packet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"github.com/p4lru/p4lru/internal/trace"
)

// libpcap classic file format (little endian variant):
//
//	global header: magic 0xa1b2c3d4 | u16 major | u16 minor | i32 thiszone |
//	               u32 sigfigs | u32 snaplen | u32 linktype (1 = Ethernet)
//	per packet:    u32 ts_sec | u32 ts_usec | u32 incl_len | u32 orig_len | data
const (
	pcapMagicLE   = 0xa1b2c3d4
	pcapMagicBE   = 0xd4c3b2a1
	pcapVersionMa = 2
	pcapVersionMi = 4
	linkEthernet  = 1
)

// ErrBadPcap reports a malformed capture file.
var ErrBadPcap = errors.New("packet: bad pcap")

// WritePcap renders a trace as a libpcap capture of synthetic Ethernet/IPv4/
// UDP frames. Each flow gets a deterministic 5-tuple derived from its ID (so
// ReadPcap recovers one key per flow); packet sizes and timestamps come from
// the trace. Frames are truncated to snaplen 128 (headers always fit), with
// orig_len carrying the true wire length — exactly how real captures look.
func WritePcap(w io.Writer, tr *trace.Trace) error {
	const snaplen = 128
	bw := bufio.NewWriter(w)
	var gh [24]byte
	binary.LittleEndian.PutUint32(gh[0:4], pcapMagicLE)
	binary.LittleEndian.PutUint16(gh[4:6], pcapVersionMa)
	binary.LittleEndian.PutUint16(gh[6:8], pcapVersionMi)
	binary.LittleEndian.PutUint32(gh[16:20], snaplen)
	binary.LittleEndian.PutUint32(gh[20:24], linkEthernet)
	if _, err := bw.Write(gh[:]); err != nil {
		return err
	}

	var rec [16]byte
	for i, p := range tr.Packets {
		frame := Build(tupleForFlow(p.Flow), int(p.Size))
		incl := len(frame)
		if incl > snaplen {
			incl = snaplen
		}
		ts := p.Time
		binary.LittleEndian.PutUint32(rec[0:4], uint32(ts/time.Second))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(ts%time.Second/time.Microsecond))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(incl))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(frame)))
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("packet %d: %w", i, err)
		}
		if _, err := bw.Write(frame[:incl]); err != nil {
			return fmt.Errorf("packet %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// tupleForFlow derives a stable synthetic 5-tuple from a flow ID.
func tupleForFlow(flow uint64) FiveTuple {
	r := rand.New(rand.NewSource(int64(flow)*0x9e3779b9 + 7))
	var ft FiveTuple
	ft.SrcIP = [4]byte{10, byte(r.Intn(256)), byte(r.Intn(256)), byte(1 + r.Intn(254))}
	ft.DstIP = [4]byte{10, byte(r.Intn(256)), byte(r.Intn(256)), byte(1 + r.Intn(254))}
	ft.SrcPort = uint16(1024 + r.Intn(64000))
	ft.DstPort = uint16(1 + r.Intn(1024))
	ft.Proto = ProtoUDP
	if r.Intn(4) != 0 {
		ft.Proto = ProtoTCP
	}
	return ft
}

// ReadPcap parses an Ethernet capture into a trace: 5-tuples fold into flow
// keys, orig_len becomes the packet size, and timestamps are rebased to the
// first packet. Non-IPv4 or non-TCP/UDP frames are skipped (counted in
// skipped). Both byte orders are accepted.
func ReadPcap(r io.Reader) (tr *trace.Trace, skipped int, err error) {
	br := bufio.NewReader(r)
	var gh [24]byte
	if _, err := io.ReadFull(br, gh[:]); err != nil {
		return nil, 0, fmt.Errorf("%w: global header: %v", ErrBadPcap, err)
	}
	var order binary.ByteOrder
	switch binary.LittleEndian.Uint32(gh[0:4]) {
	case pcapMagicLE:
		order = binary.LittleEndian
	case pcapMagicBE:
		order = binary.BigEndian
	default:
		return nil, 0, fmt.Errorf("%w: magic %#x", ErrBadPcap, gh[0:4])
	}
	if lt := order.Uint32(gh[20:24]); lt != linkEthernet {
		return nil, 0, fmt.Errorf("%w: link type %d (want Ethernet)", ErrBadPcap, lt)
	}

	tr = &trace.Trace{}
	var rec [16]byte
	var base time.Duration = -1
	buf := make([]byte, 0, 1<<16)
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, 0, fmt.Errorf("%w: record header: %v", ErrBadPcap, err)
		}
		ts := time.Duration(order.Uint32(rec[0:4]))*time.Second +
			time.Duration(order.Uint32(rec[4:8]))*time.Microsecond
		incl := int(order.Uint32(rec[8:12]))
		orig := int(order.Uint32(rec[12:16]))
		if incl < 0 || incl > 1<<20 {
			return nil, 0, fmt.Errorf("%w: implausible incl_len %d", ErrBadPcap, incl)
		}
		buf = buf[:incl]
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, 0, fmt.Errorf("%w: record body: %v", ErrBadPcap, err)
		}

		f, perr := Parse(buf)
		if perr != nil {
			skipped++
			continue
		}
		if base < 0 {
			base = ts
		}
		size := orig
		if size > 0xffff {
			size = 0xffff
		}
		tr.Packets = append(tr.Packets, trace.Packet{
			Time: ts - base,
			Flow: f.Tuple.Key(),
			Size: uint16(size),
		})
	}
	return tr, skipped, nil
}
