package telemetry

import (
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/pipeline"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/sketch"
	"github.com/p4lru/p4lru/internal/trace"
)

// TestLruMonOnPipelineDataplane: the full telemetry system produces the same
// aggregate results whether the write-cache is the plain-Go array or the
// pipeline-realized P4LRU3 program.
func TestLruMonOnPipelineDataplane(t *testing.T) {
	tr := trace.Synthesize(trace.SynthConfig{
		Packets:   100_000,
		BaseFlows: 8_000,
		Segments:  10,
		Duration:  time.Second,
		Seed:      33,
	})
	const units = 1 << 10
	const seed = 55
	reset := 10 * time.Millisecond
	cfg := func(c policy.Cache) Config {
		return Config{
			Filter:    sketch.NewTowerDefault(0.01, reset, 9),
			Cache:     c,
			Threshold: 1500,
		}
	}

	plain, plainAn := Run(tr, cfg(policy.NewP4LRU(3, units, seed, Merge)), reset)

	arr, err := pipeline.BuildCacheArray3("mondp", units, seed, pipeline.ModeWrite, pipeline.TofinoBudget)
	if err != nil {
		t.Fatal(err)
	}
	piped, pipedAn := Run(tr, cfg(arr.AsPolicyCache()), reset)

	if plain != piped {
		t.Fatalf("system results diverge:\nplain: %+v\npipeline: %+v", plain, piped)
	}
	// The analyzers must agree flow by flow.
	if len(plainAn.TLen) != len(pipedAn.TLen) {
		t.Fatalf("analyzer flow counts diverge: %d vs %d", len(plainAn.TLen), len(pipedAn.TLen))
	}
	for f, v := range plainAn.TLen {
		if pipedAn.TLen[f] != v {
			t.Fatalf("flow %d measured %d on plain, %d on pipeline", f, v, pipedAn.TLen[f])
		}
	}
	if piped.Uploads == 0 {
		t.Error("pipeline run degenerate (no uploads)")
	}
}
