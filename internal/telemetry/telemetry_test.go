package telemetry

import (
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/sketch"
	"github.com/p4lru/p4lru/internal/trace"
)

func testTrace(segments, packets int) *trace.Trace {
	return trace.Synthesize(trace.SynthConfig{
		Packets:   packets,
		BaseFlows: packets / 20,
		Segments:  segments,
		Duration:  time.Second,
		Seed:      11,
	})
}

func cacheFor(kind policy.Kind, mem int) policy.Cache {
	return policy.NewForMemory(kind, mem, policy.Options{
		Seed:             2,
		Merge:            Merge,
		TimeoutThreshold: 20 * time.Millisecond,
	})
}

func cfgWith(cache policy.Cache, threshold uint32, reset time.Duration) Config {
	return Config{
		Filter:    sketch.NewTowerDefault(0.05, reset, 3),
		Cache:     cache,
		Threshold: threshold,
	}
}

func TestRunBasics(t *testing.T) {
	tr := testTrace(1, 60000)
	reset := 10 * time.Millisecond
	res, an := Run(tr, cfgWith(cacheFor(policy.KindP4LRU3, 64*1024), 1500, reset), reset)
	if res.Packets != len(tr.Packets) {
		t.Fatalf("packets = %d", res.Packets)
	}
	if res.Filtered+res.CacheHits+res.CacheMisses != res.Packets {
		t.Fatalf("accounting broken: %d+%d+%d != %d",
			res.Filtered, res.CacheHits, res.CacheMisses, res.Packets)
	}
	if res.Filtered == 0 {
		t.Error("filter dropped nothing — mouse flows should be filtered")
	}
	if res.CacheHits == 0 {
		t.Error("no cache hits — elephants should repeat")
	}
	if res.Uploads != res.CacheMisses {
		t.Errorf("uploads %d != misses %d for an always-admitting cache", res.Uploads, res.CacheMisses)
	}
	if res.UploadRatePPS <= 0 {
		t.Error("zero upload rate")
	}
	if len(an.TFP) == 0 {
		t.Error("analyzer registered no flows")
	}
}

// TestNoPerFlowOverestimation: the headline accuracy guarantee — the
// analyzer never over-reports a flow (absent fingerprint collisions), and
// under-reports only filtered bytes.
func TestNoPerFlowOverestimation(t *testing.T) {
	tr := testTrace(4, 80000)
	reset := 10 * time.Millisecond
	res, an := Run(tr, cfgWith(cacheFor(policy.KindP4LRU3, 64*1024), 1500, reset), reset)
	if res.Collisions > 0 {
		t.Skipf("fingerprint collision in synthetic trace (%d) — guarantee holds only without collisions", res.Collisions)
	}
	truth := map[uint64]uint64{}
	for _, p := range tr.Packets {
		truth[p.Flow] += uint64(p.Size)
	}
	var measuredTotal uint64
	for f, m := range an.TLen {
		if m > truth[f] {
			t.Fatalf("flow %d over-reported: measured %d > true %d", f, m, truth[f])
		}
		measuredTotal += m
	}
	if got := res.TotalBytes - measuredTotal; got != res.FilteredBytes {
		t.Errorf("unmeasured bytes %d != filtered bytes %d", got, res.FilteredBytes)
	}
}

// TestMaxFlowErrorBelowThreshold reproduces Figure 17(d): the per-flow
// per-interval undercount never exceeds the filter threshold.
func TestMaxFlowErrorBelowThreshold(t *testing.T) {
	tr := testTrace(2, 60000)
	for _, thr := range []uint32{1000, 3000, 8000} {
		reset := 10 * time.Millisecond
		res, _ := Run(tr, cfgWith(cacheFor(policy.KindP4LRU3, 64*1024), thr, reset), reset)
		if res.MaxFlowError >= uint64(thr) {
			t.Errorf("threshold %d: max flow error %d not below threshold", thr, res.MaxFlowError)
		}
		if res.MaxFlowError == 0 {
			t.Errorf("threshold %d: zero max error (filter inert?)", thr)
		}
	}
}

// TestUploadDropsWithBetterCache reproduces the Figure 11/14 ordering: the
// P4LRU3 cache uploads less than the hash-table baseline, while accuracy is
// unchanged.
func TestUploadDropsWithBetterCache(t *testing.T) {
	tr := testTrace(30, 120000)
	reset := 10 * time.Millisecond
	run := func(kind policy.Kind) Result {
		res, _ := Run(tr, cfgWith(cacheFor(kind, 48*1024), 1500, reset), reset)
		return res
	}
	p3 := run(policy.KindP4LRU3)
	p1 := run(policy.KindP4LRU1)
	if p3.Uploads >= p1.Uploads {
		t.Errorf("p4lru3 uploads %d not below baseline %d", p3.Uploads, p1.Uploads)
	}
	if p3.TotalErrorRate != p1.TotalErrorRate {
		t.Errorf("cache changed accuracy: %.6f vs %.6f — filter alone must set error",
			p3.TotalErrorRate, p1.TotalErrorRate)
	}
}

// TestThresholdTradeoff reproduces Figure 11(b)/17(b): raising the filter
// threshold lowers upload volume and raises total error.
func TestThresholdTradeoff(t *testing.T) {
	tr := testTrace(10, 80000)
	reset := 10 * time.Millisecond
	var prevUploads int
	var prevErr float64
	first := true
	for _, thr := range []uint32{500, 1500, 4500} {
		res, _ := Run(tr, cfgWith(cacheFor(policy.KindP4LRU3, 48*1024), thr, reset), reset)
		if !first {
			if res.Uploads >= prevUploads {
				t.Errorf("threshold %d: uploads %d did not drop from %d", thr, res.Uploads, prevUploads)
			}
			if res.TotalErrorRate <= prevErr {
				t.Errorf("threshold %d: error %.5f did not rise from %.5f", thr, res.TotalErrorRate, prevErr)
			}
		}
		prevUploads, prevErr, first = res.Uploads, res.TotalErrorRate, false
	}
}

// TestNonAdmittingCachePreservesAccuracy: even when the policy declines
// admissions (timeout), every passed byte reaches the analyzer.
func TestNonAdmittingCachePreservesAccuracy(t *testing.T) {
	tr := testTrace(4, 50000)
	reset := 10 * time.Millisecond
	res, an := Run(tr, cfgWith(cacheFor(policy.KindTimeout, 32*1024), 1500, reset), reset)
	if res.Collisions > 0 {
		t.Skip("fingerprint collision — skip exact accounting")
	}
	var measured uint64
	for _, m := range an.TLen {
		measured += m
	}
	if measured+res.FilteredBytes != res.TotalBytes {
		t.Errorf("measured %d + filtered %d != total %d",
			measured, res.FilteredBytes, res.TotalBytes)
	}
}

func TestNoFilterMeansNoError(t *testing.T) {
	tr := testTrace(1, 30000)
	res, _ := Run(tr, Config{Cache: cacheFor(policy.KindP4LRU3, 64*1024)}, 0)
	if res.Filtered != 0 || res.TotalErrorRate != 0 || res.MaxFlowError != 0 {
		t.Errorf("filterless run shows error: %+v", res)
	}
}

func TestCMAndCUFilters(t *testing.T) {
	tr := testTrace(4, 50000)
	reset := 10 * time.Millisecond
	for _, f := range []sketch.Filter{
		sketch.NewCountMin(2, 1<<14, reset, 5),
		sketch.NewCU(2, 1<<14, reset, 5),
	} {
		res, _ := Run(tr, Config{Filter: f, Cache: cacheFor(policy.KindP4LRU3, 64*1024), Threshold: 1500}, reset)
		if res.Filtered == 0 {
			t.Errorf("%s filter dropped nothing", f.Name())
		}
		if res.MaxFlowError >= 1500 {
			t.Errorf("%s: max error %d ≥ threshold", f.Name(), res.MaxFlowError)
		}
	}
}

func TestRunPanicsWithoutCache(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil cache accepted")
		}
	}()
	Run(&trace.Trace{}, Config{}, 0)
}

func TestAnalyzerCollisionCounting(t *testing.T) {
	an := NewAnalyzer()
	an.Upload(1, 0xabc, 0, 0)
	an.Upload(2, 0xabc, 0, 0) // same fingerprint, different flow
	if an.Collisions != 1 {
		t.Errorf("collisions = %d, want 1", an.Collisions)
	}
	// Credit goes to the first owner.
	an.creditFP(0xabc, 100)
	if an.TLen[1] != 100 || an.TLen[2] != 0 {
		t.Errorf("credit misrouted: %v", an.TLen)
	}
}
