// Package telemetry implements LruMon (§3.3): a data-plane network telemetry
// system that measures per-flow byte counts with no per-flow overestimation
// while minimizing the volume uploaded to the remote analyzer.
//
// Per packet ⟨f, len⟩:
//
//  1. Tower filter — two counter arrays with per-counter reset timestamps
//     estimate the flow's bytes within the current reset interval; packets
//     of flows under the threshold L are filtered out (mouse traffic).
//  2. Cache array — elephant packets enter a P4LRU3 write-cache keyed by a
//     32-bit fingerprint fp(f): a hit accumulates len; a miss inserts
//     ⟨fp(f), len⟩, evicts ⟨fp', len'⟩, and uploads ⟨f, fp', len'⟩.
//  3. Remote analyzer — keeps T_fp (flow → fingerprint) and T_len (flow →
//     measured bytes), crediting evicted lengths to the flows owning the
//     evicted fingerprints.
//
// Because every byte that passes the filter is eventually uploaded (or
// flushed from the cache at the end of the run), cache quality never changes
// *accuracy*, only the upload volume — the property §3.3 highlights and the
// tests verify.
package telemetry

import (
	"time"

	"github.com/p4lru/p4lru/internal/hashing"
	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/sketch"
	"github.com/p4lru/p4lru/internal/trace"
)

// Config parameterizes a run.
type Config struct {
	// Filter is the pre-filter (tower/cm/cu). nil disables filtering
	// (every packet is treated as an elephant).
	Filter sketch.Filter
	// Cache is the write-cache (construct with merge = addition).
	Cache policy.Cache
	// Threshold is the filter threshold L in bytes.
	Threshold uint32
	// FingerprintSeed selects fp(·).
	FingerprintSeed uint64
	// Obs, when non-nil, receives live run counters (telemetry_packets_total,
	// telemetry_filtered_total, telemetry_cache_hits_total,
	// telemetry_cache_misses_total, telemetry_uploads_total). nil costs
	// nothing.
	Obs *obs.Registry
	// Tracer, when non-nil, records each analyzer upload as a virtual-time
	// event (lrumon.upload, payload = the evicted fingerprint) stamped with
	// the packet's trace timestamp.
	Tracer *obs.Tracer
}

// metrics holds the pre-resolved handles of one run; the zero value is a
// no-op (nil-safe obs methods).
type metrics struct {
	packets, filtered, cacheHits, cacheMisses, uploads *obs.Counter
}

func newMetrics(r *obs.Registry) metrics {
	return metrics{
		packets:     r.Counter("telemetry_packets_total"),
		filtered:    r.Counter("telemetry_filtered_total"),
		cacheHits:   r.Counter("telemetry_cache_hits_total"),
		cacheMisses: r.Counter("telemetry_cache_misses_total"),
		uploads:     r.Counter("telemetry_uploads_total"),
	}
}

// Merge is the write-cache accumulation discipline.
func Merge(old, incoming uint64) uint64 { return old + incoming }

// Analyzer is the remote analyzer: T_fp and T_len, plus the reverse
// fingerprint map it derives (first flow to claim a fingerprint wins; 32-bit
// fingerprints make collisions negligible at the paper's scales).
type Analyzer struct {
	TFP      map[uint64]uint32 // flow → fingerprint
	TLen     map[uint64]uint64 // flow → measured bytes
	fpToFlow map[uint32]uint64
	// Collisions counts fingerprint claims that clashed with another flow.
	Collisions int
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		TFP:      make(map[uint64]uint32),
		TLen:     make(map[uint64]uint64),
		fpToFlow: make(map[uint32]uint64),
	}
}

// register makes sure flow f with fingerprint fp is present in both tables.
func (a *Analyzer) register(f uint64, fp uint32) {
	if _, ok := a.TFP[f]; ok {
		return
	}
	a.TFP[f] = fp
	a.TLen[f] += 0
	if owner, taken := a.fpToFlow[fp]; taken {
		if owner != f {
			a.Collisions++
		}
		return
	}
	a.fpToFlow[fp] = f
}

// creditFP adds bytes to the flow owning fingerprint fp.
func (a *Analyzer) creditFP(fp uint32, bytes uint64) {
	if f, ok := a.fpToFlow[fp]; ok {
		a.TLen[f] += bytes
	}
}

// Upload processes one data-plane entry ⟨f, fp(f), fp', len'⟩.
func (a *Analyzer) Upload(f uint64, fpF, fpEvicted uint32, lenEvicted uint64) {
	a.register(f, fpF)
	if fpEvicted != 0 {
		a.creditFP(fpEvicted, lenEvicted)
	}
}

// Result aggregates a run.
type Result struct {
	Packets    int
	TotalBytes uint64
	// Filtered counts mouse packets dropped by the filter; FilteredBytes
	// their bytes (the system's only source of undercount).
	Filtered      int
	FilteredBytes uint64
	// CacheHits / CacheMisses split the elephant packets.
	CacheHits   int
	CacheMisses int
	// Uploads is the number of entries pushed to the analyzer during the
	// run (the paper's upload volume); UploadRatePPS normalizes by trace
	// duration.
	Uploads       int
	UploadRatePPS float64
	// TotalErrorRate = FilteredBytes / TotalBytes (total underestimation
	// ratio, Figure 17a).
	TotalErrorRate float64
	// MaxFlowError is the largest per-flow undercount within one reset
	// interval (Figure 17d; provably below the threshold).
	MaxFlowError uint64
	// AnalyzerFlows is how many flows the analyzer tracked; Collisions the
	// fingerprint clashes it observed.
	AnalyzerFlows int
	Collisions    int
}

// Run replays the trace through the system and returns both the aggregate
// result and the analyzer state (for accuracy verification).
func Run(tr *trace.Trace, cfg Config, resetPeriod time.Duration) (Result, *Analyzer) {
	if cfg.Cache == nil {
		panic("telemetry: Config.Cache is nil")
	}
	fpHash := hashing.New(cfg.FingerprintSeed ^ 0xf1a9)
	an := NewAnalyzer()
	var res Result
	var m metrics
	if cfg.Obs != nil {
		m = newMetrics(cfg.Obs)
	}

	// Per-flow undercount within the current reset interval.
	type intervalErr struct {
		interval int64
		bytes    uint64
	}
	errs := make(map[uint64]*intervalErr)

	for _, pkt := range tr.Packets {
		res.Packets++
		m.packets.Inc()
		res.TotalBytes += uint64(pkt.Size)
		f := pkt.Flow
		l := uint32(pkt.Size)

		if cfg.Filter != nil {
			est := cfg.Filter.Add(f, l, pkt.Time)
			if est < cfg.Threshold {
				res.Filtered++
				m.filtered.Inc()
				res.FilteredBytes += uint64(l)
				iv := int64(0)
				if resetPeriod > 0 {
					iv = int64(pkt.Time / resetPeriod)
				}
				e := errs[f]
				if e == nil {
					e = &intervalErr{interval: iv}
					errs[f] = e
				}
				if e.interval != iv {
					e.interval, e.bytes = iv, 0
				}
				e.bytes += uint64(l)
				if e.bytes > res.MaxFlowError {
					res.MaxFlowError = e.bytes
				}
				continue
			}
		}

		fp := uint64(fpHash.Fingerprint(f))
		r := cfg.Cache.Update(fp, uint64(l), 0, pkt.Time)
		switch {
		case r.Hit:
			res.CacheHits++
			m.cacheHits.Inc()
		case r.Admitted:
			res.CacheMisses++
			res.Uploads++
			m.cacheMisses.Inc()
			m.uploads.Inc()
			cfg.Tracer.Record(pkt.Time, "lrumon.upload", r.EvictedKey)
			an.Upload(f, uint32(fp), uint32(r.EvictedKey), r.EvictedValue)
		default:
			// The policy declined to admit (timeout/elastic/coco): the
			// packet's bytes upload directly so no measurement is lost.
			res.CacheMisses++
			res.Uploads++
			m.cacheMisses.Inc()
			m.uploads.Inc()
			cfg.Tracer.Record(pkt.Time, "lrumon.upload", fp)
			an.Upload(f, uint32(fp), uint32(fp), uint64(l))
		}
	}

	// End of run: the analyzer collects the cache residue (control-plane
	// readout, not counted as upload traffic).
	cfg.Cache.Range(func(k, v uint64) bool {
		an.creditFP(uint32(k), v)
		return true
	})

	if res.TotalBytes > 0 {
		res.TotalErrorRate = float64(res.FilteredBytes) / float64(res.TotalBytes)
	}
	dur := time.Duration(0)
	if n := len(tr.Packets); n > 0 {
		dur = tr.Packets[n-1].Time
	}
	if dur > 0 {
		res.UploadRatePPS = float64(res.Uploads) / dur.Seconds()
	}
	res.AnalyzerFlows = len(an.TFP)
	res.Collisions = an.Collisions
	return res, an
}
