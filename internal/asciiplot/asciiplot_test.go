package asciiplot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	out := Render([]Series{
		{Name: "up", Xs: []float64{1, 2, 3, 4}, Ys: []float64{1, 2, 3, 4}},
		{Name: "down", Xs: []float64{1, 2, 3, 4}, Ys: []float64{4, 3, 2, 1}},
	}, Options{Title: "cross", Width: 40, Height: 10, XLabel: "x"})

	for _, want := range []string{"cross", "up", "down", "(x)", "●", "▲", "└"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + labels + 2 legend lines
	if len(lines) != 1+10+1+1+2 {
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestRenderEmpty(t *testing.T) {
	if got := Render(nil, Options{}); got != "(no data)\n" {
		t.Errorf("empty render = %q", got)
	}
	if got := Render([]Series{{Name: "x"}}, Options{}); got != "(no data)\n" {
		t.Errorf("pointless render = %q", got)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	out := Render([]Series{
		{Name: "flat", Xs: []float64{1, 2, 3}, Ys: []float64{5, 5, 5}},
	}, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "flat") {
		t.Errorf("constant series broke rendering:\n%s", out)
	}
}

func TestRenderLogX(t *testing.T) {
	out := Render([]Series{
		{Name: "sweep", Xs: []float64{1, 10, 100, 1000}, Ys: []float64{1, 2, 3, 4}},
	}, Options{Width: 30, Height: 6, LogX: true})
	if !strings.Contains(out, "1000") {
		t.Errorf("log-x axis labels missing:\n%s", out)
	}
	// Non-positive x values are skipped, not fatal.
	out = Render([]Series{
		{Name: "bad", Xs: []float64{0, 10}, Ys: []float64{1, 2}},
	}, Options{LogX: true})
	if out == "" {
		t.Error("empty output")
	}
}

func TestRenderMarkersOnCurve(t *testing.T) {
	out := Render([]Series{
		{Name: "a", Xs: []float64{0, 1}, Ys: []float64{0, 1}},
	}, Options{Width: 10, Height: 4})
	if strings.Count(out, "●") < 3 { // 2 data markers + 1 legend
		t.Errorf("markers missing:\n%s", out)
	}
}

func TestYAxisLabels(t *testing.T) {
	out := Render([]Series{
		{Name: "a", Xs: []float64{0, 1}, Ys: []float64{-2.5, 7.5}},
	}, Options{Width: 12, Height: 4})
	if !strings.Contains(out, "7.5") || !strings.Contains(out, "-2.5") {
		t.Errorf("y-axis bounds missing:\n%s", out)
	}
}
