// Package asciiplot renders (x, y) series as Unicode line charts for
// terminal output — the presentation layer of cmd/p4lru-bench's -plot mode.
// No external plotting stack: a Braille-dot canvas (2×4 dots per cell) with
// per-series glyph markers and a y-axis gutter.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is a named curve.
type Series struct {
	Name   string
	Xs, Ys []float64
}

// Options controls rendering.
type Options struct {
	// Width/Height of the plot area in terminal cells (defaults 64×16).
	Width, Height int
	// Title printed above the chart.
	Title string
	// XLabel printed below the axis.
	XLabel string
	// LogX plots x on a log10 scale (all x must be > 0).
	LogX bool
}

// markers cycles per series in the legend and on the curves.
var markers = []rune{'●', '▲', '■', '◆', '○', '△', '□', '◇'}

// Render draws the series into a string. Series with fewer than one point
// are skipped; an empty plot renders a note instead of panicking.
func Render(series []Series, opt Options) string {
	if opt.Width <= 0 {
		opt.Width = 64
	}
	if opt.Height <= 0 {
		opt.Height = 16
	}

	// Collect bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range series {
		for i := range s.Xs {
			x := s.Xs[i]
			if opt.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, s.Ys[i]), math.Max(maxY, s.Ys[i])
			n++
		}
	}
	if n == 0 {
		return "(no data)\n"
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}

	// Braille canvas: each cell holds 2×4 dots.
	dotsW, dotsH := opt.Width*2, opt.Height*4
	grid := make([][]uint8, opt.Height) // braille bit pattern per cell
	over := make([][]rune, opt.Height)  // marker overlay
	for r := range grid {
		grid[r] = make([]uint8, opt.Width)
		over[r] = make([]rune, opt.Width)
	}

	toDot := func(x, y float64) (int, int) {
		if opt.LogX {
			x = math.Log10(x)
		}
		dx := int(math.Round((x - minX) / (maxX - minX) * float64(dotsW-1)))
		dy := int(math.Round((y - minY) / (maxY - minY) * float64(dotsH-1)))
		return dx, dotsH - 1 - dy // flip: row 0 is the top
	}
	// Braille dot bit layout within a cell (col, row): standard U+2800 map.
	bit := [4][2]uint8{{0x01, 0x08}, {0x02, 0x10}, {0x04, 0x20}, {0x40, 0x80}}
	setDot := func(dx, dy int) {
		if dx < 0 || dy < 0 || dx >= dotsW || dy >= dotsH {
			return
		}
		grid[dy/4][dx/2] |= bit[dy%4][dx%2]
	}

	for si, s := range series {
		mark := markers[si%len(markers)]
		var px, py int
		first := true
		for i := range s.Xs {
			if opt.LogX && s.Xs[i] <= 0 {
				continue
			}
			dx, dy := toDot(s.Xs[i], s.Ys[i])
			if !first {
				drawLine(px, py, dx, dy, setDot)
			}
			px, py, first = dx, dy, false
			over[dy/4][dx/2] = mark
		}
	}

	// Assemble with a y-axis gutter.
	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	for r := 0; r < opt.Height; r++ {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%10.4g ┤", maxY)
		case opt.Height - 1:
			fmt.Fprintf(&b, "%10.4g ┤", minY)
		default:
			fmt.Fprintf(&b, "%10s ┤", "")
		}
		for c := 0; c < opt.Width; c++ {
			if over[r][c] != 0 {
				b.WriteRune(over[r][c])
			} else if grid[r][c] != 0 {
				b.WriteRune(rune(0x2800 + int(grid[r][c])))
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	axisMin, axisMax := minX, maxX
	if opt.LogX {
		axisMin, axisMax = math.Pow(10, minX), math.Pow(10, maxX)
	}
	fmt.Fprintf(&b, "%10s └%s\n", "", strings.Repeat("─", opt.Width))
	fmt.Fprintf(&b, "%11s%-.4g%s%.4g", "", axisMin,
		strings.Repeat(" ", max(1, opt.Width-12)), axisMax)
	if opt.XLabel != "" {
		fmt.Fprintf(&b, "  (%s)", opt.XLabel)
	}
	b.WriteByte('\n')

	// Legend.
	for si, s := range series {
		fmt.Fprintf(&b, "%11s%c %s\n", "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// drawLine rasterizes with Bresenham over the dot grid.
func drawLine(x0, y0, x1, y1 int, set func(int, int)) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		set(x0, y0)
		if x0 == x1 && y0 == y1 {
			return
		}
		if e2 := 2 * err; e2 >= dy {
			err += dy
			x0 += sx
		} else {
			err += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
