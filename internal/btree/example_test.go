package btree_test

import (
	"fmt"

	"github.com/p4lru/p4lru/internal/btree"
)

// The B+ tree maps keys to payload handles; Get reports how many nodes the
// walk visits — the work LruIndex's cached index skips.
func ExampleTree() {
	t := btree.New()
	for k := uint64(1); k <= 100_000; k++ {
		t.Put(k, k*64)
	}
	handle, nodes, ok := t.Get(31337)
	fmt.Printf("handle=%d nodes=%d ok=%v height=%d\n", handle, nodes, ok, t.Height())

	sum := uint64(0)
	t.Range(10, 14, func(k, v uint64) bool {
		sum += k
		return true
	})
	fmt.Println("range sum:", sum)
	// Output:
	// handle=2005568 nodes=6 ok=true height=6
	// range sum: 60
}
