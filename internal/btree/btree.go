// Package btree implements an in-memory B+ tree with uint64 keys — the
// database index substrate for the LruIndex system (§3.2).
//
// LruIndex caches the *index* of a key (in the paper, a 48-bit memory
// address) rather than its value, so the database server can skip the index
// walk when a query arrives pre-resolved. This package is that index: values
// are uint64 payload handles (arena offsets in the kvindex server), interior
// nodes hold only keys, and Get reports how many nodes the walk touched so
// the simulator can charge realistic per-node latency.
package btree

import "fmt"

// degree is the maximum number of children of an interior node. Leaves hold
// up to degree-1 keys. 16 keeps trees for 10^6 keys at height 5–6, similar
// to a disk-friendly B+ tree's depth with realistic fanout.
const degree = 16

const (
	maxKeys = degree - 1
	minKeys = maxKeys / 2
)

// Tree is a B+ tree mapping uint64 keys to uint64 payload handles.
// The zero value is not usable; call New.
type Tree struct {
	root *node
	size int
}

// node is either a leaf (children nil, vals parallel to keys) or an interior
// node (len(children) == len(keys)+1, vals nil). Leaves are linked for range
// scans.
type node struct {
	keys     []uint64
	vals     []uint64
	children []*node
	next     *node // leaf-chain link
}

func (n *node) leaf() bool { return n.children == nil }

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{}}
}

// Len returns the number of stored keys.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 for a lone leaf).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf(); n = n.children[0] {
		h++
	}
	return h
}

// search returns the index of the first key ≥ k in n.keys.
func search(keys []uint64, k uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the handle stored for k and the number of nodes visited by the
// walk (the work a cached index would skip).
func (t *Tree) Get(k uint64) (val uint64, nodes int, ok bool) {
	n := t.root
	nodes = 1
	for !n.leaf() {
		i := search(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			i++ // equal separator: key lives in the right subtree
		}
		n = n.children[i]
		nodes++
	}
	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		return n.vals[i], nodes, true
	}
	return 0, nodes, false
}

// Put inserts or replaces the handle for k. It reports whether the key was
// newly inserted.
func (t *Tree) Put(k, v uint64) bool {
	inserted, splitKey, right := t.insert(t.root, k, v)
	if right != nil {
		t.root = &node{
			keys:     []uint64{splitKey},
			children: []*node{t.root, right},
		}
	}
	if inserted {
		t.size++
	}
	return inserted
}

// insert adds k below n. If n splits, it returns the separator key and the
// new right sibling.
func (t *Tree) insert(n *node, k, v uint64) (inserted bool, splitKey uint64, right *node) {
	if n.leaf() {
		i := search(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			n.vals[i] = v
			return false, 0, nil
		}
		n.keys = insertAt(n.keys, i, k)
		n.vals = insertAt(n.vals, i, v)
		if len(n.keys) <= maxKeys {
			return true, 0, nil
		}
		// Split leaf: right half moves to a new node; separator is the
		// first key of the right node (B+ tree: separators duplicate leaf
		// keys).
		mid := len(n.keys) / 2
		r := &node{
			keys: append([]uint64(nil), n.keys[mid:]...),
			vals: append([]uint64(nil), n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = r
		return true, r.keys[0], r
	}

	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		i++
	}
	inserted, sk, r := t.insert(n.children[i], k, v)
	if r != nil {
		n.keys = insertAt(n.keys, i, sk)
		n.children = insertChildAt(n.children, i+1, r)
		if len(n.keys) > maxKeys {
			// Split interior: middle key moves up.
			mid := len(n.keys) / 2
			splitKey = n.keys[mid]
			right = &node{
				keys:     append([]uint64(nil), n.keys[mid+1:]...),
				children: append([]*node(nil), n.children[mid+1:]...),
			}
			n.keys = n.keys[:mid]
			n.children = n.children[:mid+1]
			return inserted, splitKey, right
		}
	}
	return inserted, 0, nil
}

// Delete removes k. It reports whether the key was present.
func (t *Tree) Delete(k uint64) bool {
	deleted := t.delete(t.root, k)
	if deleted {
		t.size--
	}
	if !t.root.leaf() && len(t.root.keys) == 0 {
		t.root = t.root.children[0]
	}
	return deleted
}

func (t *Tree) delete(n *node, k uint64) bool {
	if n.leaf() {
		i := search(n.keys, k)
		if i >= len(n.keys) || n.keys[i] != k {
			return false
		}
		n.keys = removeAt(n.keys, i)
		n.vals = removeAt(n.vals, i)
		return true
	}
	i := search(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		i++
	}
	deleted := t.delete(n.children[i], k)
	if deleted && len(n.children[i].keys) < minKeys {
		t.rebalance(n, i)
	}
	return deleted
}

// rebalance fixes an underflowing child n.children[i] by borrowing from a
// sibling or merging with one.
func (t *Tree) rebalance(parent *node, i int) {
	child := parent.children[i]

	// Borrow from the left sibling.
	if i > 0 {
		left := parent.children[i-1]
		if len(left.keys) > minKeys {
			if child.leaf() {
				last := len(left.keys) - 1
				child.keys = insertAt(child.keys, 0, left.keys[last])
				child.vals = insertAt(child.vals, 0, left.vals[last])
				left.keys = left.keys[:last]
				left.vals = left.vals[:last]
				parent.keys[i-1] = child.keys[0]
			} else {
				// Rotate through the parent separator.
				last := len(left.keys) - 1
				child.keys = insertAt(child.keys, 0, parent.keys[i-1])
				parent.keys[i-1] = left.keys[last]
				child.children = insertChildAt(child.children, 0, left.children[last+1])
				left.keys = left.keys[:last]
				left.children = left.children[:last+1]
			}
			return
		}
	}

	// Borrow from the right sibling.
	if i < len(parent.children)-1 {
		right := parent.children[i+1]
		if len(right.keys) > minKeys {
			if child.leaf() {
				child.keys = append(child.keys, right.keys[0])
				child.vals = append(child.vals, right.vals[0])
				right.keys = removeAt(right.keys, 0)
				right.vals = removeAt(right.vals, 0)
				parent.keys[i] = right.keys[0]
			} else {
				child.keys = append(child.keys, parent.keys[i])
				parent.keys[i] = right.keys[0]
				child.children = append(child.children, right.children[0])
				right.keys = removeAt(right.keys, 0)
				right.children = right.children[1:]
			}
			return
		}
	}

	// Merge with a sibling.
	if i > 0 {
		i-- // merge left sibling + child
	}
	left, right := parent.children[i], parent.children[i+1]
	if left.leaf() {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, parent.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	parent.keys = removeAt(parent.keys, i)
	parent.children = append(parent.children[:i+1], parent.children[i+2:]...)
}

// Range calls fn for every key in [lo, hi] in ascending order until fn
// returns false.
func (t *Tree) Range(lo, hi uint64, fn func(k, v uint64) bool) {
	n := t.root
	for !n.leaf() {
		i := search(n.keys, lo)
		if i < len(n.keys) && n.keys[i] == lo {
			i++
		}
		n = n.children[i]
	}
	for ; n != nil; n = n.next {
		for i, k := range n.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return
			}
			if !fn(k, n.vals[i]) {
				return
			}
		}
	}
}

// check validates B+ tree invariants (for tests): sorted keys, fanout
// bounds, uniform depth, leaf chain completeness.
func (t *Tree) check() error {
	depth := -1
	count := 0
	var walk func(n *node, d int, min, max uint64) error
	walk = func(n *node, d int, min, max uint64) error {
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i-1] >= n.keys[i] {
				return fmt.Errorf("unsorted keys at depth %d", d)
			}
		}
		if len(n.keys) > 0 {
			if n.keys[0] < min || n.keys[len(n.keys)-1] > max {
				return fmt.Errorf("key out of separator range at depth %d", d)
			}
		}
		if n.leaf() {
			if depth == -1 {
				depth = d
			} else if depth != d {
				return fmt.Errorf("leaf at depth %d, expected %d", d, depth)
			}
			if len(n.vals) != len(n.keys) {
				return fmt.Errorf("leaf vals/keys mismatch")
			}
			count += len(n.keys)
			if n != t.root && len(n.keys) < minKeys {
				return fmt.Errorf("leaf underflow: %d keys", len(n.keys))
			}
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("interior fanout mismatch")
		}
		if n != t.root && len(n.keys) < minKeys {
			return fmt.Errorf("interior underflow: %d keys", len(n.keys))
		}
		for i, c := range n.children {
			childMin, childMax := min, max
			if i > 0 {
				childMin = n.keys[i-1]
			}
			if i < len(n.keys) {
				childMax = n.keys[i] - 1
			}
			if err := walk(c, d+1, childMin, childMax); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, 0, ^uint64(0)); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("size %d but %d keys found", t.size, count)
	}
	return nil
}

func insertAt(s []uint64, i int, v uint64) []uint64 {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertChildAt(s []*node, i int, c *node) []*node {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = c
	return s
}

func removeAt[T any](s []T, i int) []T {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}
