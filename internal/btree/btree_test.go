package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("empty: len=%d height=%d", tr.Len(), tr.Height())
	}
	if _, _, ok := tr.Get(5); ok {
		t.Error("Get on empty tree found a key")
	}
	if tr.Delete(5) {
		t.Error("Delete on empty tree returned true")
	}
	if err := tr.check(); err != nil {
		t.Error(err)
	}
}

func TestPutGet(t *testing.T) {
	tr := New()
	for k := uint64(0); k < 1000; k++ {
		if !tr.Put(k, k*2) {
			t.Fatalf("Put(%d) not inserted", k)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("len = %d", tr.Len())
	}
	for k := uint64(0); k < 1000; k++ {
		v, nodes, ok := tr.Get(k)
		if !ok || v != k*2 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
		if nodes != tr.Height() {
			t.Fatalf("Get(%d) visited %d nodes, height is %d", k, nodes, tr.Height())
		}
	}
	if _, _, ok := tr.Get(1000); ok {
		t.Error("found absent key")
	}
	if err := tr.check(); err != nil {
		t.Error(err)
	}
}

func TestPutReplace(t *testing.T) {
	tr := New()
	tr.Put(7, 1)
	if tr.Put(7, 2) {
		t.Error("replace reported as insert")
	}
	if v, _, _ := tr.Get(7); v != 2 {
		t.Errorf("value = %d, want 2", v)
	}
	if tr.Len() != 1 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestHeightGrowth(t *testing.T) {
	tr := New()
	if tr.Height() != 1 {
		t.Fatal("fresh height")
	}
	for k := uint64(0); k < 100000; k++ {
		tr.Put(k, k)
	}
	h := tr.Height()
	if h < 4 || h > 7 {
		t.Errorf("height for 1e5 keys = %d, want 4–7 (degree %d)", h, degree)
	}
	if err := tr.check(); err != nil {
		t.Error(err)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	const n = 5000
	for k := uint64(0); k < n; k++ {
		tr.Put(k, k)
	}
	// Delete every other key.
	for k := uint64(0); k < n; k += 2 {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) = false", k)
		}
		if tr.Delete(k) {
			t.Fatalf("second Delete(%d) = true", k)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("len = %d", tr.Len())
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < n; k++ {
		_, _, ok := tr.Get(k)
		if want := k%2 == 1; ok != want {
			t.Fatalf("Get(%d) ok=%v, want %v", k, ok, want)
		}
	}
	// Delete the rest, in random order.
	keys := make([]uint64, 0, n/2)
	for k := uint64(1); k < n; k += 2 {
		keys = append(keys, k)
	}
	r := rand.New(rand.NewSource(1))
	r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	for _, k := range keys {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) = false", k)
		}
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("after deleting all: len=%d height=%d", tr.Len(), tr.Height())
	}
	if err := tr.check(); err != nil {
		t.Error(err)
	}
}

func TestRandomOpsAgainstMap(t *testing.T) {
	tr := New()
	ref := map[uint64]uint64{}
	r := rand.New(rand.NewSource(2))
	for op := 0; op < 50000; op++ {
		k := uint64(r.Intn(2000))
		switch r.Intn(3) {
		case 0:
			v := uint64(r.Int63())
			_, exists := ref[k]
			if got := tr.Put(k, v); got != !exists {
				t.Fatalf("op %d: Put(%d) inserted=%v, want %v", op, k, got, !exists)
			}
			ref[k] = v
		case 1:
			_, exists := ref[k]
			if got := tr.Delete(k); got != exists {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, exists)
			}
			delete(ref, k)
		case 2:
			want, exists := ref[k]
			got, _, ok := tr.Get(k)
			if ok != exists || (ok && got != want) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", op, k, got, ok, want, exists)
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: len %d vs ref %d", op, tr.Len(), len(ref))
		}
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
}

func TestRange(t *testing.T) {
	tr := New()
	for k := uint64(0); k < 100; k += 2 { // evens 0..98
		tr.Put(k, k+1)
	}
	var got []uint64
	tr.Range(10, 20, func(k, v uint64) bool {
		if v != k+1 {
			t.Fatalf("Range value mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	want := []uint64{10, 12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	tr.Range(0, 98, func(k, v uint64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early-stop visited %d", count)
	}
	// Full scan is sorted and complete.
	var all []uint64
	tr.Range(0, ^uint64(0), func(k, v uint64) bool {
		all = append(all, k)
		return true
	})
	if len(all) != tr.Len() || !sort.SliceIsSorted(all, func(i, j int) bool { return all[i] < all[j] }) {
		t.Errorf("full scan broken: %d keys", len(all))
	}
}

// Property: any insert sequence yields a tree containing exactly those keys,
// passing invariant checks.
func TestPutProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		tr := New()
		ref := map[uint64]bool{}
		for _, k := range keys {
			tr.Put(k, k)
			ref[k] = true
		}
		if tr.Len() != len(ref) {
			return false
		}
		if err := tr.check(); err != nil {
			return false
		}
		for k := range ref {
			if _, _, ok := tr.Get(k); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: interleaved insert/delete keeps invariants.
func TestMixedProperty(t *testing.T) {
	f := func(ops []int64) bool {
		tr := New()
		ref := map[uint64]bool{}
		for _, op := range ops {
			k := uint64(op) % 64
			if op%2 == 0 {
				tr.Put(k, k)
				ref[k] = true
			} else {
				tr.Delete(k)
				delete(ref, k)
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		return tr.check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGetNodeCountReflectsHeight(t *testing.T) {
	tr := New()
	for k := uint64(0); k < 1_000_000; k++ {
		tr.Put(k, k)
	}
	_, nodes, ok := tr.Get(999_999)
	if !ok {
		t.Fatal("key missing")
	}
	if nodes != tr.Height() {
		t.Errorf("walk touched %d nodes, height %d", nodes, tr.Height())
	}
	if tr.Height() < 5 {
		t.Errorf("height %d for 1e6 keys — index walk too cheap to matter", tr.Height())
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	for k := uint64(0); k < 1_000_000; k++ {
		tr.Put(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(uint64(i) % 1_000_000)
	}
}

func BenchmarkPut(b *testing.B) {
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Put(uint64(i), uint64(i))
	}
}
