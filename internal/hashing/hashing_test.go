package hashing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	h1, h2 := New(42), New(42)
	for k := uint64(0); k < 1000; k++ {
		if h1.Uint64(k) != h2.Uint64(k) {
			t.Fatalf("same seed, different hash for key %d", k)
		}
	}
}

func TestSeedIndependence(t *testing.T) {
	h1, h2 := New(1), New(2)
	same := 0
	for k := uint64(0); k < 1000; k++ {
		if h1.Uint64(k) == h2.Uint64(k) {
			same++
		}
	}
	if same > 0 {
		t.Errorf("seeds 1 and 2 collide on %d/1000 keys", same)
	}
}

func TestIndexInRange(t *testing.T) {
	h := New(7)
	for _, n := range []int{1, 2, 3, 7, 16, 100, 65536, 1 << 20} {
		for k := uint64(0); k < 2000; k++ {
			idx := h.Index(k, n)
			if idx < 0 || idx >= n {
				t.Fatalf("Index(%d, %d) = %d out of range", k, n, idx)
			}
		}
	}
}

func TestIndexPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Index(0) did not panic")
		}
	}()
	New(1).Index(5, 0)
}

func TestIndexUniformity(t *testing.T) {
	h := New(99)
	const n = 64
	const samples = 64 * 2000
	counts := make([]int, n)
	for k := uint64(0); k < samples; k++ {
		counts[h.Index(k, n)]++
	}
	mean := float64(samples) / n
	for i, c := range counts {
		if math.Abs(float64(c)-mean) > mean*0.25 {
			t.Errorf("bucket %d has %d entries, mean %.0f (>25%% skew)", i, c, mean)
		}
	}
}

func TestIndexNonPowerOfTwoUniformity(t *testing.T) {
	h := New(5)
	const n = 60
	const samples = 60 * 2000
	counts := make([]int, n)
	for k := uint64(0); k < samples; k++ {
		counts[h.Index(k, n)]++
	}
	mean := float64(samples) / n
	for i, c := range counts {
		if math.Abs(float64(c)-mean) > mean*0.25 {
			t.Errorf("bucket %d has %d entries, mean %.0f (>25%% skew)", i, c, mean)
		}
	}
}

func TestFingerprintNonZero(t *testing.T) {
	h := New(3)
	for k := uint64(0); k < 100000; k++ {
		if h.Fingerprint(k) == 0 {
			t.Fatalf("Fingerprint(%d) = 0", k)
		}
	}
}

func TestFingerprintCollisionRate(t *testing.T) {
	h := New(11)
	const n = 100000
	seen := make(map[uint32]bool, n)
	collisions := 0
	for k := uint64(0); k < n; k++ {
		fp := h.Fingerprint(k)
		if seen[fp] {
			collisions++
		}
		seen[fp] = true
	}
	// Birthday bound: expected ≈ n²/2^33 ≈ 1.2 collisions for n=1e5.
	if collisions > 20 {
		t.Errorf("%d fingerprint collisions in %d keys (expected ~1)", collisions, n)
	}
}

func TestBytesMatchesLengthSensitivity(t *testing.T) {
	h := New(4)
	a := h.Bytes([]byte{1, 2, 3})
	b := h.Bytes([]byte{1, 2, 3, 0})
	if a == b {
		t.Error("trailing zero byte does not change hash")
	}
	if h.Bytes(nil) != h.Bytes([]byte{}) {
		t.Error("nil and empty slices hash differently")
	}
}

func TestBytesAvalanche(t *testing.T) {
	h := New(8)
	base := h.Bytes([]byte("hello world, this is a test"))
	flipped := h.Bytes([]byte("hello world, this is a tesu"))
	diff := base ^ flipped
	bits := 0
	for diff != 0 {
		bits += int(diff & 1)
		diff >>= 1
	}
	if bits < 16 {
		t.Errorf("single-byte change flipped only %d/64 bits", bits)
	}
}

func TestFamilyDistinct(t *testing.T) {
	fs := Family(1234, 8)
	if len(fs) != 8 {
		t.Fatalf("Family returned %d members", len(fs))
	}
	for i := 0; i < len(fs); i++ {
		for j := i + 1; j < len(fs); j++ {
			same := 0
			for k := uint64(0); k < 200; k++ {
				if fs[i].Uint64(k) == fs[j].Uint64(k) {
					same++
				}
			}
			if same > 0 {
				t.Errorf("family members %d and %d agree on %d/200 keys", i, j, same)
			}
		}
	}
}

// Property: Uint32 depends on all 64 bits of the output (not a truncation).
func TestUint32Property(t *testing.T) {
	h := New(21)
	f := func(k uint64) bool {
		v64 := h.Uint64(k)
		v32 := h.Uint32(k)
		return v32 == uint32(v64^(v64>>32))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mix64 is injective on sampled inputs (no accidental constants).
func TestMixInjectiveProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return mix64(a) != mix64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	h := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= h.Uint64(uint64(i))
	}
	_ = sink
}

func BenchmarkIndexPow2(b *testing.B) {
	h := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= h.Index(uint64(i), 65536)
	}
	_ = sink
}
