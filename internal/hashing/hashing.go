// Package hashing provides the seeded hash family used throughout the
// repository: index hashes for cache/sketch arrays (the paper's h(·), h_i(·),
// g_1(·), g_2(·)) and fingerprint hashes (the paper's fp(·) in LruMon).
//
// The data plane computes CRC-based hashes; any family with good avalanche
// behaviour and independent seeds preserves the experiments. We use a
// splitmix64-style finalizer over the input words, which is fast, allocation
// free, and gives 64 well-mixed bits per call from which 32-bit values and
// array indexes are derived.
package hashing

import "encoding/binary"

// Hash is one member of the seeded hash family.
type Hash struct {
	seed uint64
}

// New returns the family member with the given seed. Distinct seeds give
// effectively independent hash functions.
func New(seed uint64) Hash {
	// Pre-mix the seed so that small consecutive seeds (0, 1, 2, ...) still
	// produce unrelated functions.
	return Hash{seed: mix64(seed ^ 0x9e3779b97f4a7c15)}
}

// Uint64 hashes a 64-bit key.
func (h Hash) Uint64(k uint64) uint64 {
	return mix64(k ^ h.seed)
}

// Uint32 hashes a 64-bit key down to 32 bits.
func (h Hash) Uint32(k uint64) uint32 {
	v := h.Uint64(k)
	return uint32(v ^ (v >> 32))
}

// Bytes hashes an arbitrary byte string.
func (h Hash) Bytes(b []byte) uint64 {
	acc := h.seed ^ uint64(len(b))*0x9e3779b97f4a7c15
	for len(b) >= 8 {
		acc = mix64(acc ^ binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) > 0 {
		var tail [8]byte
		copy(tail[:], b)
		acc = mix64(acc ^ binary.LittleEndian.Uint64(tail[:]) ^ uint64(len(b))<<56)
	}
	return mix64(acc)
}

// Index maps a 64-bit key uniformly onto [0, n). n must be positive.
// For power-of-two n this compiles to a mask; otherwise it uses the
// fixed-point multiply trick to avoid modulo bias without division.
func (h Hash) Index(k uint64, n int) int {
	if n <= 0 {
		panic("hashing: Index with non-positive n")
	}
	v := h.Uint64(k)
	if n&(n-1) == 0 {
		return int(v & uint64(n-1))
	}
	// Lemire's multiply-shift range reduction on the high 32 bits.
	return int((v >> 32) * uint64(n) >> 32)
}

// Fingerprint returns a non-zero 32-bit fingerprint of the key, matching the
// paper's 32-bit flow fingerprints. Zero is reserved so callers can use 0 as
// "empty slot".
func (h Hash) Fingerprint(k uint64) uint32 {
	fp := h.Uint32(k ^ 0x5bd1e995)
	if fp == 0 {
		fp = 1
	}
	return fp
}

// mix64 is the splitmix64 finalizer: a bijective avalanche on 64 bits.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Family returns n independent hash functions derived from a base seed,
// convenient for multi-array structures (TowerSketch rows, series-connected
// cache arrays).
func Family(baseSeed uint64, n int) []Hash {
	fs := make([]Hash, n)
	for i := range fs {
		fs[i] = New(baseSeed + uint64(i)*0x9e3779b97f4a7c15 + uint64(i)*uint64(i))
	}
	return fs
}
