package resilience_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/backing"
	"github.com/p4lru/p4lru/internal/engine"
	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/resilience"
)

// The chaos tests drive the full resilience stack — breaker-wrapped backing
// store, supervised engine writers, shedder admission — through injected
// failures and assert the degradation contract: the hit path never degrades,
// the failure paths fail fast, accounting always balances, and everything
// recovers once the fault clears. They run under -race in `make chaos`.

// TestChaosBackingBlackout black-holes the backing store under a serving
// Tiered engine: the breaker opens, misses fail in far less than one attempt
// budget, the hit path stays zero-alloc throughout, and a half-open probe
// closes the circuit after the store recovers.
func TestChaosBackingBlackout(t *testing.T) {
	const attemptTimeout = 25 * time.Millisecond

	inner := backing.NewMapStore().Preload(10_000)
	faulty := backing.NewFaulty(inner, backing.FaultyConfig{})
	// ConsecutiveFailures == the loader's attempt budget, so one blacked-out
	// miss is enough to trip the circuit.
	br := resilience.NewBreaker(resilience.BreakerConfig{
		ConsecutiveFailures: 2,
		OpenFor:             100 * time.Millisecond,
		HalfOpenProbes:      1,
		Name:                "backing",
	})
	// TargetLatency is generous on purpose: this test wants the breaker, not
	// the shedder, to own the blackout response.
	sh := resilience.NewShedder(resilience.ShedderConfig{TargetLatency: time.Second})

	e, err := engine.NewFromSpec(
		policy.Spec{Kind: policy.KindP4LRU3, MemBytes: 256 << 10, Seed: 21},
		engine.Config{Shards: 2, Block: true, Shedder: sh})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tiered := engine.NewTiered(e, faulty, backing.LoaderConfig{
		Attempts: 2, Timeout: attemptTimeout,
		Backoff: time.Millisecond, BackoffCap: 2 * time.Millisecond,
		Breaker: br,
	})

	// Warm the cache through the miss path, then pin down a resident key.
	ctx := context.Background()
	for k := uint64(1); k <= 512; k++ {
		if _, _, _, err := tiered.GetOrLoad(ctx, k); err != nil {
			t.Fatalf("warm-up GetOrLoad(%d): %v", k, err)
		}
	}
	e.Flush()
	hot := uint64(0)
	e.Range(func(k, v uint64) bool { hot = k; return false })
	if hot == 0 {
		t.Fatal("warm-up installed nothing")
	}

	// Blackout. The first miss burns its retry budget and trips the circuit.
	faulty.SetBlackout(true)
	if _, _, _, err := tiered.GetOrLoad(ctx, 1_000_001); err == nil {
		t.Fatal("GetOrLoad succeeded during blackout")
	}
	if br.State() != resilience.Open {
		t.Fatalf("breaker state after blackout miss = %v, want Open", br.State())
	}

	// Open circuit: misses fail in one Allow() check, well inside a single
	// attempt budget — no retries, no backoff, no store round trip.
	start := time.Now()
	_, _, _, err = tiered.GetOrLoad(ctx, 1_000_002)
	if !errors.Is(err, backing.ErrCircuitOpen) {
		t.Fatalf("open-circuit miss = %v, want ErrCircuitOpen", err)
	}
	if d := time.Since(start); d > attemptTimeout {
		t.Fatalf("open-circuit miss took %v, want < %v", d, attemptTimeout)
	}

	// The hit path is untouched by the blackout: still serving, still
	// zero-alloc.
	if allocs := testing.AllocsPerRun(1000, func() {
		if _, _, ok := e.Query(hot); !ok {
			t.Error("hot key evicted mid-measurement")
		}
	}); allocs != 0 {
		t.Fatalf("hit path allocates %.1f per query during blackout, want 0", allocs)
	}
	if _, _, hit, err := tiered.GetOrLoad(ctx, hot); !hit || err != nil {
		t.Fatalf("hot GetOrLoad during blackout = (hit=%v, err=%v)", hit, err)
	}

	// Recovery: after the cool-down, one successful half-open probe closes
	// the circuit and misses flow again.
	faulty.SetBlackout(false)
	time.Sleep(120 * time.Millisecond)
	if v, _, _, err := tiered.GetOrLoad(ctx, 9_000); err != nil || v != 9_000^backing.SynthSalt {
		t.Fatalf("post-recovery miss = (%d, %v)", v, err)
	}
	if br.State() != resilience.Closed {
		t.Fatalf("breaker state after recovery = %v, want Closed", br.State())
	}
}

// chaosPanicCache panics on Update of one poisoned key. Embedding the Cache
// interface (not a concrete type) hides any batch-updater fast path, so the
// engine applies batches through the per-op loop where the panic fires.
type chaosPanicCache struct {
	policy.Cache
	poison uint64
}

func (p *chaosPanicCache) Update(k, v uint64, tok policy.Token, now time.Duration) policy.Result {
	if k == p.poison {
		panic("chaos: injected writer panic")
	}
	return p.Cache.Update(k, v, tok, now)
}

// TestChaosWriterPanicsAndOverload floods a supervised engine from several
// producers while poisoned ops panic the writers and a saturated shedder
// drops load: the writers recover and keep going, every op is accounted for
// (offered == applied + dropped, submitted == applied + failed), and
// admission returns once the pressure clears.
func TestChaosWriterPanicsAndOverload(t *testing.T) {
	const poison = uint64(0xbadbad)
	reg := obs.NewRegistry()
	sh := resilience.NewShedder(resilience.ShedderConfig{
		TargetLatency: time.Millisecond, Alpha: 1, Obs: reg,
	})
	e, err := engine.New(engine.Config{
		Shards: 2, BatchSize: 8, QueueDepth: 4, Obs: reg, Shedder: sh,
		NewCache: func(i int) policy.Cache {
			return &chaosPanicCache{Cache: policy.NewP4LRU(3, 256, uint64(i+1), nil), poison: poison}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Phase 1: concurrent flood with poison mixed in. Tiny queues mean some
	// ops drop on pressure; poisoned batches panic the writers.
	var offered atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5_000; i++ {
				key := uint64(g*100_000 + i + 1)
				if i%100 == 0 {
					key = poison
				}
				e.Submit(engine.Op{Key: key, Value: uint64(i)})
				offered.Add(1)
			}
		}(g)
	}
	wg.Wait()

	// Phase 2: saturate the latency signal — everything sheds.
	sh.Observe(time.Second)
	shedBase := sh.Stats()
	for i := 0; i < 100; i++ {
		if e.Submit(engine.Op{Key: uint64(900_000 + i), Value: 1}) {
			t.Fatal("saturated shedder admitted a submit")
		}
		offered.Add(1)
	}
	if st := sh.Stats(); st.Shed[resilience.PriNormal] != shedBase.Shed[resilience.PriNormal]+100 {
		t.Fatalf("shed accounting: %d → %d, want +100",
			shedBase.Shed[resilience.PriNormal], st.Shed[resilience.PriNormal])
	}

	// Flush must not hang: panicked ops count toward the flush target.
	e.Flush()

	var submitted, applied, dropped, failed, panics uint64
	for _, st := range e.Stats() {
		submitted += st.Submitted
		applied += st.Applied
		dropped += st.Dropped
		failed += st.Failed
		panics += st.Panics
	}
	if panics == 0 {
		t.Fatal("no writer panics recovered — injection did not fire")
	}
	if offered.Load() != applied+dropped {
		t.Fatalf("accounting: offered=%d applied=%d dropped=%d", offered.Load(), applied, dropped)
	}
	if submitted != applied+failed {
		t.Fatalf("queue accounting: submitted=%d applied=%d failed=%d", submitted, applied, failed)
	}
	if got := reg.SumCounters("engine_writer_panics_total"); got != panics {
		t.Fatalf("obs panic counter = %d, Stats say %d", got, panics)
	}

	// Recovery: pressure clears, the engine serves and accepts again.
	sh.Observe(0)
	if !e.Submit(engine.Op{Key: 424242, Value: 7}) {
		t.Fatal("recovered engine rejected a submit")
	}
	e.Flush()
	if v, _, ok := e.Query(424242); !ok || v != 7 {
		t.Fatalf("Query after chaos = (%d, %v), want (7, true)", v, ok)
	}
}
