package resilience

import (
	"errors"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/obs"
)

// virtualClock is a manually advanced time source.
type virtualClock struct{ now time.Time }

func (c *virtualClock) Now() time.Time          { return c.now }
func (c *virtualClock) Advance(d time.Duration) { c.now = c.now.Add(d) }
func newClock() *virtualClock                   { return &virtualClock{now: time.Unix(1000, 0)} }
func testBreaker(cfg BreakerConfig, c *virtualClock) *Breaker {
	cfg.Clock = c.Now
	return NewBreaker(cfg)
}

func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	clk := newClock()
	b := testBreaker(BreakerConfig{ConsecutiveFailures: 3, OpenFor: time.Second}, clk)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.Record(false)
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state after 2 failures = %v, want Closed", got)
	}
	b.Allow()
	b.Record(false)
	if got := b.State(); got != Open {
		t.Fatalf("state after 3 consecutive failures = %v, want Open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before the cool-down")
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	clk := newClock()
	b := testBreaker(BreakerConfig{ConsecutiveFailures: 3}, clk)
	for i := 0; i < 10; i++ {
		b.Record(false)
		b.Record(false)
		b.Record(true) // breaks the run
	}
	if got := b.State(); got != Closed {
		t.Fatalf("state = %v, want Closed (runs never reached 3)", got)
	}
}

func TestBreakerRatioTrip(t *testing.T) {
	clk := newClock()
	// 50% failures over a window of 8, never 4 consecutive.
	b := testBreaker(BreakerConfig{ConsecutiveFailures: 100, FailureRatio: 0.5, Window: 8}, clk)
	for i := 0; i < 8 && b.State() == Closed; i++ {
		b.Record(i%2 == 0) // alternate success/failure
	}
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want Open from the ratio trip", got)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	clk := newClock()
	reg := obs.NewRegistry()
	b := testBreaker(BreakerConfig{
		ConsecutiveFailures: 2, OpenFor: time.Second, HalfOpenProbes: 2,
		Name: "t", Obs: reg,
	}, clk)
	b.Record(false)
	b.Record(false)
	if got := b.State(); got != Open {
		t.Fatalf("state = %v, want Open", got)
	}

	// Cool-down not yet elapsed: still rejecting.
	clk.Advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker admitted a call 1ms before the cool-down elapsed")
	}

	// Cool-down elapsed: exactly HalfOpenProbes concurrent probes admitted.
	clk.Advance(2 * time.Millisecond)
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open breaker rejected its probe quota")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted more than HalfOpenProbes concurrent probes")
	}
	if got := b.State(); got != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen", got)
	}

	// Both probes succeed: closed again, calls flow.
	b.Record(true)
	b.Record(true)
	if got := b.State(); got != Closed {
		t.Fatalf("state after probe successes = %v, want Closed", got)
	}
	if !b.Allow() {
		t.Fatal("re-closed breaker rejected a call")
	}
	b.Record(true)
	if v := reg.CounterValue(`resilience_breaker_opens_total{name="t"}`); v != 1 {
		t.Fatalf("opens counter = %d, want 1", v)
	}
	if v := reg.CounterValue(`resilience_breaker_probes_total{name="t"}`); v != 2 {
		t.Fatalf("probes counter = %d, want 2", v)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newClock()
	b := testBreaker(BreakerConfig{ConsecutiveFailures: 1, OpenFor: time.Second, HalfOpenProbes: 3}, clk)
	b.Record(false)
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker rejected its first probe")
	}
	b.Record(false)
	if got := b.State(); got != Open {
		t.Fatalf("state after failed probe = %v, want Open", got)
	}
	// The cool-down restarted at the failed probe.
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a call immediately")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker rejected a probe after the second cool-down")
	}
	b.Record(true)
}

func TestBreakerCheck(t *testing.T) {
	clk := newClock()
	b := testBreaker(BreakerConfig{ConsecutiveFailures: 1, OpenFor: time.Second}, clk)
	if err := b.Check(); err != nil {
		t.Fatalf("closed breaker Check = %v, want nil", err)
	}
	b.Record(false)
	if err := b.Check(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker Check = %v, want ErrOpen", err)
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker must admit everything")
	}
	b.Record(false)
	if got := b.State(); got != Closed {
		t.Fatalf("nil breaker State = %v, want Closed", got)
	}
}

// TestBreakerOnStateChange: the observer sees every edge of the full
// trip/probe/recovery cycle in order — closed→open on the trip, open→half-open
// when the cool-down lapses inside Allow, half-open→open on a sick probe, and
// half-open→closed on recovery — and it may re-enter the breaker, because it
// fires after the lock is released.
func TestBreakerOnStateChange(t *testing.T) {
	type edge struct{ from, to State }
	var seen []edge
	var reentrant State
	clk := newClock()
	cfg := BreakerConfig{
		Name:                "backing",
		ConsecutiveFailures: 2,
		OpenFor:             time.Second,
		HalfOpenProbes:      1,
	}
	var b *Breaker
	cfg.Clock = clk.Now
	cfg.OnStateChange = func(name string, from, to State) {
		if name != "backing" {
			t.Fatalf("observer got name %q, want \"backing\"", name)
		}
		seen = append(seen, edge{from, to})
		// Re-entrancy: the callback fires outside the lock, so it may read
		// the breaker it observes.
		reentrant = b.State()
	}
	b = NewBreaker(cfg)

	b.Record(true) // no transition, no callback
	b.Record(false)
	b.Record(false) // trip: closed → open
	if b.Allow() {
		t.Fatal("open breaker admitted a call")
	}
	clk.Advance(time.Second)
	if !b.Allow() { // cool-down lapsed: open → half-open, probe granted
		t.Fatal("half-open breaker rejected the probe")
	}
	b.Record(false) // sick probe: half-open → open
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("second probe rejected")
	}
	b.Record(true) // healthy probe: half-open → closed

	want := []edge{
		{Closed, Open},
		{Open, HalfOpen},
		{HalfOpen, Open},
		{Open, HalfOpen},
		{HalfOpen, Closed},
	}
	if len(seen) != len(want) {
		t.Fatalf("observer saw %d edges %v, want %d %v", len(seen), seen, len(want), want)
	}
	for i, e := range want {
		if seen[i] != e {
			t.Fatalf("edge %d = %v, want %v", i, seen[i], e)
		}
	}
	if reentrant != Closed {
		t.Fatalf("re-entrant State() inside the final callback = %v, want Closed", reentrant)
	}
}
