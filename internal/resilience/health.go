package resilience

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// Check is one named readiness probe: nil means healthy. Checks must be safe
// for concurrent use and fast — they run on every /readyz scrape.
type Check func() error

// Health aggregates named checks into liveness and readiness probes, the
// interface an orchestrator (or a curious operator) reads the degradation
// ladder through:
//
//	/healthz  — liveness: 200 while the process serves HTTP at all
//	/readyz   — readiness: 200 when every check passes, 503 with a JSON
//	            per-check report otherwise
//
// Register a Breaker.Check to go unready while the backing circuit is open,
// a Shedder.Check to go unready when foreground work is being shed, and an
// engine health func to go unready when a shard writer stalls.
type Health struct {
	mu     sync.RWMutex
	checks map[string]Check
}

// NewHealth returns an empty (always-ready) aggregator.
func NewHealth() *Health {
	return &Health{checks: make(map[string]Check)}
}

// Register adds (or replaces) a named check. A nil check deletes the name.
func (h *Health) Register(name string, c Check) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if c == nil {
		delete(h.checks, name)
		return
	}
	h.checks[name] = c
}

// Ready runs every check and returns the first failure in name order
// (nil when all pass).
func (h *Health) Ready() error {
	for _, r := range h.report() {
		if r.err != nil {
			return r.err
		}
	}
	return nil
}

type checkResult struct {
	name string
	err  error
}

func (h *Health) report() []checkResult {
	h.mu.RLock()
	names := make([]string, 0, len(h.checks))
	for name := range h.checks {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]checkResult, len(names))
	checks := make([]Check, len(names))
	for i, name := range names {
		checks[i] = h.checks[name]
	}
	h.mu.RUnlock()
	for i, c := range checks {
		out[i] = checkResult{name: names[i], err: c()}
	}
	return out
}

// ServeHTTP implements http.Handler, dispatching on the request path:
// "/healthz" (liveness) and "/readyz" (readiness). Mount it on both paths,
// or at a mux root that forwards them.
func (h *Health) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	switch req.URL.Path {
	case "/healthz":
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok\n"))
	case "/readyz":
		results := h.report()
		type entry struct {
			Status string `json:"status"`
			Error  string `json:"error,omitempty"`
		}
		body := struct {
			Status string           `json:"status"`
			Checks map[string]entry `json:"checks"`
		}{Status: "ready", Checks: make(map[string]entry, len(results))}
		code := http.StatusOK
		for _, r := range results {
			e := entry{Status: "ok"}
			if r.err != nil {
				e = entry{Status: "failing", Error: r.err.Error()}
				body.Status = "unready"
				code = http.StatusServiceUnavailable
			}
			body.Checks[r.name] = e
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(body)
	default:
		http.NotFound(w, req)
	}
}
