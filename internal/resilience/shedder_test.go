package resilience

import (
	"errors"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/obs"
)

func TestShedderIdleAdmitsEverything(t *testing.T) {
	s := NewShedder(ShedderConfig{})
	for _, pri := range []Priority{PriLow, PriNormal, PriHigh} {
		if !s.Admit(pri, 0) {
			t.Fatalf("idle shedder shed %v work", pri)
		}
	}
	if lvl := s.Level(0); lvl != 0 {
		t.Fatalf("idle level = %d, want 0", lvl)
	}
}

func TestShedderQueuePressureLadder(t *testing.T) {
	s := NewShedder(ShedderConfig{ShedLowAt: 0.5, ShedNormalAt: 0.75, ShedHighAt: 0.95})
	cases := []struct {
		frac              float64
		low, normal, high bool
		level             int
	}{
		{0.0, true, true, true, 0},
		{0.49, true, true, true, 0},
		{0.6, false, true, true, 1},
		{0.8, false, false, true, 2},
		{1.0, false, false, false, 3},
	}
	for _, c := range cases {
		if got := s.Admit(PriLow, c.frac); got != c.low {
			t.Errorf("Admit(low, %.2f) = %v, want %v", c.frac, got, c.low)
		}
		if got := s.Admit(PriNormal, c.frac); got != c.normal {
			t.Errorf("Admit(normal, %.2f) = %v, want %v", c.frac, got, c.normal)
		}
		if got := s.Admit(PriHigh, c.frac); got != c.high {
			t.Errorf("Admit(high, %.2f) = %v, want %v", c.frac, got, c.high)
		}
		if got := s.Level(c.frac); got != c.level {
			t.Errorf("Level(%.2f) = %d, want %d", c.frac, got, c.level)
		}
	}
}

func TestShedderLatencyPressure(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewShedder(ShedderConfig{TargetLatency: 10 * time.Millisecond, Alpha: 1, Obs: reg})
	// EWMA at the target: pressure 0.5 — low-priority work sheds.
	s.Observe(10 * time.Millisecond)
	if s.Admit(PriLow, 0) {
		t.Fatal("low-priority work admitted with EWMA at the target")
	}
	if !s.Admit(PriNormal, 0) {
		t.Fatal("normal-priority work shed with EWMA only at the target")
	}
	// EWMA at 2× target saturates pressure at 1: everything sheds.
	s.Observe(20 * time.Millisecond)
	if s.Admit(PriHigh, 0) {
		t.Fatal("high-priority work admitted at saturation")
	}
	if lvl := s.Level(0); lvl != 3 {
		t.Fatalf("saturated level = %d, want 3", lvl)
	}
	// Recovery: fast samples pull the EWMA back down.
	s.Observe(0)
	if !s.Admit(PriLow, 0) {
		t.Fatal("low-priority work still shed after the EWMA recovered")
	}
	if v := reg.CounterValue(`resilience_shed_total{priority="low"}`); v != 1 {
		t.Fatalf("low shed counter = %d, want 1", v)
	}
}

func TestShedderStatsBalance(t *testing.T) {
	s := NewShedder(ShedderConfig{})
	const n = 1000
	admitted := 0
	for i := 0; i < n; i++ {
		frac := float64(i) / n // sweep the ladder
		if s.Admit(PriNormal, frac) {
			admitted++
		}
	}
	st := s.Stats()
	if got := st.Admitted[PriNormal] + st.Shed[PriNormal]; got != n {
		t.Fatalf("admitted+shed = %d, want %d", got, n)
	}
	if st.Admitted[PriNormal] != uint64(admitted) {
		t.Fatalf("Stats.Admitted = %d, caller counted %d", st.Admitted[PriNormal], admitted)
	}
	if st.Shed[PriNormal] == 0 {
		t.Fatal("sweep to full queues shed nothing")
	}
}

func TestShedderCheck(t *testing.T) {
	s := NewShedder(ShedderConfig{TargetLatency: 10 * time.Millisecond, Alpha: 1})
	if err := s.Check(); err != nil {
		t.Fatalf("idle Check = %v, want nil", err)
	}
	s.Observe(20 * time.Millisecond) // pressure 1 → level 3
	if err := s.Check(); !errors.Is(err, ErrShed) {
		t.Fatalf("saturated Check = %v, want ErrShed", err)
	}
}

func TestShedderNilSafe(t *testing.T) {
	var s *Shedder
	if !s.Admit(PriLow, 1) {
		t.Fatal("nil shedder must admit everything")
	}
	s.Observe(time.Second)
	if s.Level(1) != 0 || s.Pressure(1) != 0 {
		t.Fatal("nil shedder must report zero pressure")
	}
	_ = s.Stats()
	if err := s.Check(); err != nil {
		t.Fatalf("nil shedder Check = %v, want nil", err)
	}
}

func TestPriorityString(t *testing.T) {
	for pri, want := range map[Priority]string{PriLow: "low", PriNormal: "normal", PriHigh: "high", 9: "invalid"} {
		if got := pri.String(); got != want {
			t.Errorf("Priority(%d).String() = %q, want %q", pri, got, want)
		}
	}
}
