package resilience

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
)

func TestHealthEmptyIsReady(t *testing.T) {
	h := NewHealth()
	if err := h.Ready(); err != nil {
		t.Fatalf("empty Health.Ready = %v, want nil", err)
	}
}

func TestHealthReadyzReportsFailingCheck(t *testing.T) {
	h := NewHealth()
	h.Register("ok", func() error { return nil })
	boom := errors.New("shard 3 stalled")
	h.Register("engine", func() error { return boom })

	if err := h.Ready(); !errors.Is(err, boom) {
		t.Fatalf("Ready = %v, want the failing check's error", err)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("/readyz status = %d, want 503", rec.Code)
	}
	var body struct {
		Status string `json:"status"`
		Checks map[string]struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		} `json:"checks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad /readyz JSON: %v", err)
	}
	if body.Status != "unready" {
		t.Fatalf("status = %q, want unready", body.Status)
	}
	if body.Checks["engine"].Error != "shard 3 stalled" {
		t.Fatalf("engine check error = %q", body.Checks["engine"].Error)
	}
	if body.Checks["ok"].Status != "ok" {
		t.Fatalf("ok check status = %q", body.Checks["ok"].Status)
	}

	// Fix the check: ready again.
	h.Register("engine", func() error { return nil })
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("/readyz after fix = %d, want 200", rec.Code)
	}
}

func TestHealthHealthzAlwaysOK(t *testing.T) {
	h := NewHealth()
	h.Register("down", func() error { return errors.New("down") })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("/healthz = %d, want 200 (liveness ignores readiness checks)", rec.Code)
	}
}

func TestHealthUnregister(t *testing.T) {
	h := NewHealth()
	h.Register("x", func() error { return errors.New("x") })
	h.Register("x", nil)
	if err := h.Ready(); err != nil {
		t.Fatalf("Ready after unregister = %v, want nil", err)
	}
}
