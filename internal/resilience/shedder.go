package resilience

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/obs"
)

// ShedderConfig parameterizes NewShedder. The zero value gets sane defaults.
type ShedderConfig struct {
	// TargetLatency is the slow-path latency the EWMA is judged against:
	// at the target the latency pressure is 0.5 — the rung where low-priority
	// work starts shedding (0 = 5ms).
	TargetLatency time.Duration
	// Alpha is the EWMA weight of each new sample in (0, 1] (0 = 0.2).
	Alpha float64
	// ShedLowAt, ShedNormalAt, ShedHighAt are the pressure watermarks at
	// which each priority starts shedding (0 = 0.5, 0.75, 0.95). Pressure is
	// max(queue fraction, latency ratio), both in [0, 1].
	ShedLowAt, ShedNormalAt, ShedHighAt float64
	// Name labels the shedder's metrics, e.g. `{name="engine"}`.
	Name string
	// Obs, when non-nil, receives resilience_shed_total{priority=...},
	// resilience_admitted_total{priority=...}, resilience_shed_level and
	// resilience_latency_ewma_seconds. nil costs nothing.
	Obs *obs.Registry
}

func (c ShedderConfig) withDefaults() ShedderConfig {
	if c.TargetLatency <= 0 {
		c.TargetLatency = 5 * time.Millisecond
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.2
	}
	if c.ShedLowAt <= 0 {
		c.ShedLowAt = 0.5
	}
	if c.ShedNormalAt <= 0 {
		c.ShedNormalAt = 0.75
	}
	if c.ShedHighAt <= 0 {
		c.ShedHighAt = 0.95
	}
	return c
}

// Shedder is admission control: a degradation ladder that sheds work
// lowest-priority first as pressure rises, instead of letting queues grow
// without bound. Pressure combines two signals:
//
//   - the instantaneous queue fraction the caller passes to Admit (the
//     engine passes its shard queue fullness; callers without a queue pass 0),
//   - an EWMA of slow-path latency fed through Observe, normalized so the
//     configured target latency maps to pressure 0.5 and twice the target
//     saturates at 1.
//
// Admit is allocation-free and lock-free (atomic loads plus a compare), so
// it can gate the engine submit path without measurable cost. Safe for
// concurrent use.
type Shedder struct {
	cfg ShedderConfig

	ewmaBits atomic.Uint64 // float64 seconds, CAS-updated

	admitted [numPriorities]atomic.Uint64
	shed     [numPriorities]atomic.Uint64

	admittedC [numPriorities]*obs.Counter
	shedC     [numPriorities]*obs.Counter
}

// NewShedder builds a shedder at pressure 0 (everything admitted).
func NewShedder(cfg ShedderConfig) *Shedder {
	cfg = cfg.withDefaults()
	s := &Shedder{cfg: cfg}
	if r := cfg.Obs; r != nil {
		for p := PriLow; p <= PriHigh; p++ {
			label := labelFor(cfg.Name, p)
			s.admittedC[p] = r.Counter("resilience_admitted_total" + label)
			s.shedC[p] = r.Counter("resilience_shed_total" + label)
		}
		suffix := ""
		if cfg.Name != "" {
			suffix = `{name="` + cfg.Name + `"}`
		}
		r.GaugeFunc("resilience_shed_level"+suffix, func() float64 { return float64(s.Level(0)) })
		r.GaugeFunc("resilience_latency_ewma_seconds"+suffix, func() float64 { return s.ewma() })
	}
	return s
}

func labelFor(name string, p Priority) string {
	if name == "" {
		return fmt.Sprintf(`{priority="%s"}`, p)
	}
	return fmt.Sprintf(`{name="%s",priority="%s"}`, name, p)
}

// Observe feeds one slow-path latency sample into the EWMA.
func (s *Shedder) Observe(lat time.Duration) {
	if s == nil {
		return
	}
	v := lat.Seconds()
	for {
		old := s.ewmaBits.Load()
		cur := math.Float64frombits(old)
		var next float64
		if old == 0 {
			next = v // first sample seeds the average
		} else {
			next = cur + s.cfg.Alpha*(v-cur)
		}
		if s.ewmaBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

func (s *Shedder) ewma() float64 {
	return math.Float64frombits(s.ewmaBits.Load())
}

// Pressure combines the caller's instantaneous queue fraction with the
// latency EWMA: max(queueFrac, ewma/(2×target)), clamped to [0, 1].
func (s *Shedder) Pressure(queueFrac float64) float64 {
	if s == nil {
		return 0
	}
	lp := s.ewma() / (2 * s.cfg.TargetLatency.Seconds())
	p := queueFrac
	if lp > p {
		p = lp
	}
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Admit decides whether work of the given priority proceeds at the current
// pressure (the caller supplies its instantaneous queue fraction; 0 when it
// has no queue). A false return has already been counted against pri.
func (s *Shedder) Admit(pri Priority, queueFrac float64) bool {
	if s == nil {
		return true
	}
	if s.Pressure(queueFrac) >= s.watermark(pri) {
		s.shed[pri].Add(1)
		s.shedC[pri].Inc()
		return false
	}
	s.admitted[pri].Add(1)
	s.admittedC[pri].Inc()
	return true
}

func (s *Shedder) watermark(pri Priority) float64 {
	switch pri {
	case PriLow:
		return s.cfg.ShedLowAt
	case PriNormal:
		return s.cfg.ShedNormalAt
	default:
		return s.cfg.ShedHighAt
	}
}

// Level reports the degradation rung at the given queue fraction: 0 = admit
// everything, 1 = shedding low, 2 = shedding low+normal, 3 = shedding all.
func (s *Shedder) Level(queueFrac float64) int {
	if s == nil {
		return 0
	}
	p := s.Pressure(queueFrac)
	switch {
	case p >= s.cfg.ShedHighAt:
		return 3
	case p >= s.cfg.ShedNormalAt:
		return 2
	case p >= s.cfg.ShedLowAt:
		return 1
	default:
		return 0
	}
}

// ShedderStats is the per-priority accounting snapshot.
type ShedderStats struct {
	Admitted [3]uint64 // indexed by Priority
	Shed     [3]uint64
}

// Stats snapshots the per-priority admit/shed counters.
func (s *Shedder) Stats() ShedderStats {
	var out ShedderStats
	if s == nil {
		return out
	}
	for p := 0; p < numPriorities; p++ {
		out.Admitted[p] = s.admitted[p].Load()
		out.Shed[p] = s.shed[p].Load()
	}
	return out
}

// Check is a Health probe: an error once the ladder sheds normal-priority
// work on latency alone (the process is degraded even for foreground work).
func (s *Shedder) Check() error {
	if s == nil {
		return nil
	}
	if lvl := s.Level(0); lvl >= 2 {
		return fmt.Errorf("%w: degradation level %d (latency EWMA %.3fs)", ErrShed, lvl, s.ewma())
	}
	return nil
}
