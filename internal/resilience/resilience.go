// Package resilience keeps the serving engine answering when its
// surroundings misbehave. The paper's core operational claim is that the
// data plane never stalls on the control plane (§2, §4.4): a P4LRU switch
// keeps forwarding at line rate whether or not the server behind it is
// healthy, because the hit path and the slow path are physically separate
// pipelines. This package is the software transplant of that separation —
// the mechanisms that keep a degraded dependency from dragging the hit path
// down with it:
//
//   - Breaker is a circuit breaker (closed → open → half-open) wrapped
//     around the backing store: once the store blacks out, misses fail in
//     one Allow() check instead of burning the full retry budget, and
//     half-open probes detect recovery without re-flooding a convalescent
//     backend.
//   - Shedder is admission control: a degradation ladder driven by queue
//     fullness and an EWMA of miss latency that sheds work lowest-priority
//     first, with per-priority drop accounting — measured degradation
//     instead of silent unbounded queue growth.
//   - Health aggregates named checks (breaker state, shedder level, engine
//     watchdog) behind /healthz and /readyz HTTP probes so an orchestrator
//     can see the degradation ladder from outside the process.
//
// The fourth resilience mechanism — shard-writer supervision, graceful
// drain, and snapshot/restore — lives in internal/engine, because it needs
// the engine's internals; this package supplies the parts that are policy,
// not plumbing. Everything here is allocation-free on the admit/allow hot
// paths and reports through internal/obs (nil registry costs one branch).
package resilience

import "errors"

// Sentinel errors the resilience layer reports.
var (
	// ErrOpen means a circuit breaker rejected the call without trying the
	// dependency: the circuit is open and the cool-down has not elapsed.
	ErrOpen = errors.New("resilience: circuit open")
	// ErrShed means admission control rejected the work at the current
	// degradation level. The caller should not retry immediately — shedding
	// exists to reduce offered load.
	ErrShed = errors.New("resilience: load shed")
)

// Priority orders work for the shedder's degradation ladder. Higher
// priorities survive deeper into overload.
type Priority uint8

const (
	// PriLow is the first work shed: speculative fetches, cache-miss loads,
	// background refills.
	PriLow Priority = iota
	// PriNormal is the default for foreground mutations (engine submits).
	PriNormal
	// PriHigh is shed only at total saturation: synchronous reply-path
	// mutations and control operations.
	PriHigh

	numPriorities = 3
)

// String returns the ladder name ("low", "normal", "high").
func (p Priority) String() string {
	switch p {
	case PriLow:
		return "low"
	case PriNormal:
		return "normal"
	case PriHigh:
		return "high"
	default:
		return "invalid"
	}
}
