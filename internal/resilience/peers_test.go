package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPeerGateCreatesAndReuses(t *testing.T) {
	g := NewPeerGate(BreakerConfig{ConsecutiveFailures: 2})
	a := g.Peer("node-a")
	if a == nil {
		t.Fatal("nil breaker")
	}
	if g.Peer("node-a") != a {
		t.Fatal("second Peer() returned a different breaker")
	}
	if g.Peer("node-b") == a {
		t.Fatal("distinct peers share a breaker")
	}
}

func TestPeerGateCheckNamesOpenPeers(t *testing.T) {
	g := NewPeerGate(BreakerConfig{ConsecutiveFailures: 1, OpenFor: time.Hour})
	if err := g.Check(); err != nil {
		t.Fatalf("empty gate unhealthy: %v", err)
	}
	b := g.Peer("node-a")
	g.Peer("node-b") // stays closed
	b.Record(false)  // trips (ConsecutiveFailures=1)
	err := g.Check()
	if err == nil {
		t.Fatal("open peer not reported")
	}
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("Check error %v does not wrap ErrOpen", err)
	}
	if got := g.Open(); len(got) != 1 || got[0] != "node-a" {
		t.Fatalf("Open() = %v, want [node-a]", got)
	}
	if g.States()["node-b"] != Closed {
		t.Fatal("healthy peer reported non-closed")
	}
}

func TestPeerGateDropResetsBreaker(t *testing.T) {
	g := NewPeerGate(BreakerConfig{ConsecutiveFailures: 1, OpenFor: time.Hour})
	g.Peer("node-a").Record(false)
	if g.Peer("node-a").State() != Open {
		t.Fatal("breaker did not trip")
	}
	g.Drop("node-a")
	if g.Peer("node-a").State() != Closed {
		t.Fatal("rejoined peer inherited the old open breaker")
	}
}

// TestBreakerLiveMirrorsState pins the atomic fast path against the locked
// state through a full closed → open → half-open → closed cycle.
func TestBreakerLiveMirrorsState(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := NewBreaker(BreakerConfig{
		ConsecutiveFailures: 2, OpenFor: time.Second, HalfOpenProbes: 1, Clock: clock,
	})
	if !b.Live() {
		t.Fatal("fresh breaker not live")
	}
	b.Record(false)
	b.Record(false)
	if b.Live() {
		t.Fatal("live after trip")
	}
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open probe rejected")
	}
	if b.Live() {
		t.Fatal("live while half-open")
	}
	b.Record(true)
	if !b.Live() {
		t.Fatal("not live after probe success closed it")
	}
	var nilB *Breaker
	if !nilB.Live() {
		t.Fatal("nil breaker must be live")
	}
}

func TestPeerGateConcurrent(t *testing.T) {
	g := NewPeerGate(BreakerConfig{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids := []string{"a", "b", "c", "d"}
			for j := 0; j < 1000; j++ {
				b := g.Peer(ids[(i+j)%len(ids)])
				if b.Live() {
					b.Record(true)
				}
				if j%100 == 0 {
					g.Drop(ids[j%len(ids)])
					_ = g.Check()
				}
			}
		}(i)
	}
	wg.Wait()
}
