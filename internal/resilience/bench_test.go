package resilience

import (
	"testing"
	"time"
)

// BenchmarkBreakerAllow measures the closed-state gate the miss path pays
// per fetch. Must stay allocation-free (bench-smoke gates on it).
func BenchmarkBreakerAllow(b *testing.B) {
	br := NewBreaker(BreakerConfig{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if br.Allow() {
			br.Record(true)
		}
	}
}

// BenchmarkShedderAdmit measures the admission gate the engine submit path
// pays per batch. Must stay allocation-free (bench-smoke gates on it).
func BenchmarkShedderAdmit(b *testing.B) {
	s := NewShedder(ShedderConfig{})
	s.Observe(time.Millisecond)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Admit(PriNormal, 0.25)
	}
}
