package resilience

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/obs"
)

// State is a breaker's position in the closed → open → half-open cycle.
type State int32

const (
	// Closed is the healthy state: calls flow, failures are counted.
	Closed State = iota
	// HalfOpen admits a bounded number of probe calls after the cool-down;
	// their outcomes decide between Closed and Open.
	HalfOpen
	// Open rejects every call until the cool-down elapses.
	Open
)

// String names the state for metrics and health reports.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	default:
		return "invalid"
	}
}

// BreakerConfig parameterizes NewBreaker. The zero value gets sane defaults.
type BreakerConfig struct {
	// ConsecutiveFailures opens the breaker after this many failures in a
	// row (0 = 5).
	ConsecutiveFailures int
	// FailureRatio additionally opens the breaker when the failure fraction
	// over the last Window outcomes reaches this value — catches a store
	// that fails often but never quite consecutively. 0 disables the ratio
	// trip; values are clamped to (0, 1].
	FailureRatio float64
	// Window is the number of recent outcomes the ratio is computed over
	// (0 = 32). A ratio trip needs at least Window/2 recorded outcomes, so
	// a single early failure cannot open the breaker.
	Window int
	// OpenFor is the cool-down an open breaker waits before letting
	// half-open probes through (0 = 500ms).
	OpenFor time.Duration
	// HalfOpenProbes is both the number of concurrent probes half-open
	// admits and the number of consecutive probe successes that close the
	// breaker (0 = 3). Any probe failure reopens it.
	HalfOpenProbes int
	// Clock supplies the time source (nil = time.Now). Tests inject a
	// virtual clock here so cool-downs are deterministic.
	Clock func() time.Time
	// Name labels the breaker's metrics, e.g. `{name="backing"}`.
	Name string
	// OnStateChange, when non-nil, observes every state transition. It runs
	// after the breaker's lock is released, on the goroutine whose Allow or
	// Record caused the transition — callbacks may call back into the
	// breaker, but slow callbacks delay that caller. The cluster tier hangs
	// hint-log replay off the open → closed recovery edge here.
	OnStateChange func(name string, from, to State)
	// Obs, when non-nil, receives resilience_breaker_state,
	// resilience_breaker_opens_total, resilience_breaker_rejected_total and
	// resilience_breaker_probes_total. nil costs nothing.
	Obs *obs.Registry
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.ConsecutiveFailures <= 0 {
		c.ConsecutiveFailures = 5
	}
	if c.FailureRatio > 1 {
		c.FailureRatio = 1
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 500 * time.Millisecond
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 3
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Breaker is a circuit breaker: Allow before the call, Record after.
// Closed, every call flows and outcomes are tallied; a run of consecutive
// failures (or a failure ratio over the rolling window) trips it Open, which
// rejects calls instantly until the cool-down elapses; then HalfOpen admits
// a few probes whose outcomes either close it again or re-open it.
//
// Safe for concurrent use. Allow and Record are mutex-guarded but
// allocation-free — the breaker sits on the miss path, never the hit path,
// so a short critical section is cheap relative to a store round trip.
type Breaker struct {
	cfg BreakerConfig

	// liveState mirrors state for the lock-free Live() read path; setState
	// is the only writer.
	liveState atomic.Int32

	mu          sync.Mutex
	state       State
	consecutive int       // consecutive failures while closed
	window      []bool    // ring of recent outcomes (true = failure)
	windowLen   int       // outcomes recorded, ≤ len(window)
	windowPos   int       // next ring slot
	openedAt    time.Time // when the breaker last tripped
	probes      int       // probes admitted this half-open round
	probeOK     int       // consecutive probe successes

	opens, rejected, probesTotal *obs.Counter
	stateGauge                   *obs.Gauge
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	b := &Breaker{cfg: cfg, window: make([]bool, cfg.Window)}
	if r := cfg.Obs; r != nil {
		label := ""
		if cfg.Name != "" {
			label = `{name="` + cfg.Name + `"}`
		}
		b.opens = r.Counter("resilience_breaker_opens_total" + label)
		b.rejected = r.Counter("resilience_breaker_rejected_total" + label)
		b.probesTotal = r.Counter("resilience_breaker_probes_total" + label)
		b.stateGauge = r.Gauge("resilience_breaker_state" + label)
	}
	return b
}

// Allow reports whether a call may proceed. Open: false (rejection counted)
// until the cool-down elapses, at which point the breaker moves to half-open
// and admits up to HalfOpenProbes concurrent probes. Every Allow()=true MUST
// be matched by exactly one Record, or half-open probe slots leak.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	from := b.state
	ok := b.allowLocked()
	to := b.state
	b.mu.Unlock()
	b.notify(from, to)
	return ok
}

func (b *Breaker) allowLocked() bool {
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Clock().Sub(b.openedAt) < b.cfg.OpenFor {
			b.rejected.Inc()
			return false
		}
		b.setState(HalfOpen)
		b.probes, b.probeOK = 0, 0
		fallthrough
	case HalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			b.rejected.Inc()
			return false
		}
		b.probes++
		b.probesTotal.Inc()
		return true
	}
	return true
}

// Record reports one call outcome (success=true for a healthy response —
// including a definitive not-found, which proves the dependency answered).
func (b *Breaker) Record(success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	from := b.state
	b.recordLocked(success)
	to := b.state
	b.mu.Unlock()
	b.notify(from, to)
}

func (b *Breaker) recordLocked(success bool) {
	switch b.state {
	case Closed:
		b.window[b.windowPos] = !success
		b.windowPos = (b.windowPos + 1) % len(b.window)
		if b.windowLen < len(b.window) {
			b.windowLen++
		}
		if success {
			b.consecutive = 0
			return
		}
		b.consecutive++
		if b.consecutive >= b.cfg.ConsecutiveFailures || b.ratioTripped() {
			b.trip()
		}
	case HalfOpen:
		b.probes--
		if !success {
			b.trip() // a sick probe: back to open, restart the cool-down
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenProbes {
			b.setState(Closed)
			b.consecutive = 0
			b.windowLen, b.windowPos = 0, 0
		}
	case Open:
		// A straggler from before the trip; its outcome is stale news.
	}
}

// Cancel returns an Allow()ed slot without recording an outcome — for calls
// abandoned by the caller (context cancellation) before the dependency
// answered, which prove nothing about its health. Exactly one of Record or
// Cancel must follow every Allow()=true.
func (b *Breaker) Cancel() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen && b.probes > 0 {
		b.probes--
	}
}

// ratioTripped reports whether the rolling-window failure ratio crossed the
// configured threshold (with at least half a window of evidence).
func (b *Breaker) ratioTripped() bool {
	if b.cfg.FailureRatio <= 0 || b.windowLen < len(b.window)/2 {
		return false
	}
	fails := 0
	for i := 0; i < b.windowLen; i++ {
		if b.window[i] {
			fails++
		}
	}
	return float64(fails) >= b.cfg.FailureRatio*float64(b.windowLen)
}

// trip moves to Open and stamps the cool-down start. Caller holds b.mu.
func (b *Breaker) trip() {
	b.setState(Open)
	b.openedAt = b.cfg.Clock()
	b.opens.Inc()
	b.consecutive = 0
	b.windowLen, b.windowPos = 0, 0
}

// setState records the transition and mirrors it to the state gauge
// (0 closed, 1 half-open, 2 open) and the atomic Live mirror. Caller holds
// b.mu.
func (b *Breaker) setState(s State) {
	b.state = s
	b.liveState.Store(int32(s))
	b.stateGauge.Set(float64(s))
}

// notify fires the configured state-change observer for a from → to edge.
// Called after b.mu is released; a no-op when nothing changed.
func (b *Breaker) notify(from, to State) {
	if from != to && b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(b.cfg.Name, from, to)
	}
}

// Live reports whether the breaker is closed, from an atomic mirror of the
// state — one load, no lock. It is the hot-path gate for callers that issue
// many calls per breaker (a cluster router fanning queries across peers):
// while Live() is true the call proceeds without Allow's mutex, with
// failures always Recorded and successes Recorded on a sample; once Live()
// turns false the caller falls back to the full Allow/Record protocol,
// which owns the open → half-open probe bookkeeping. A nil breaker is live.
func (b *Breaker) Live() bool {
	return b == nil || b.liveState.Load() == int32(Closed)
}

// State returns the current state.
func (b *Breaker) State() State {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Check is a Health probe: nil while closed or probing, ErrOpen while open.
func (b *Breaker) Check() error {
	if b.State() == Open {
		return ErrOpen
	}
	return nil
}
