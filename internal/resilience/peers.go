package resilience

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// PeerGate manages one Breaker per named peer for components that talk to a
// dynamic set of remote nodes (the cluster router). Per-backend breakers
// guard a single dependency; a horizontal tier needs the same closed → open
// → half-open discipline per peer, created as peers join and dropped as
// they leave, with one aggregate health check over the whole set — a dead
// node then fails in one Live()/Allow() check instead of timing out every
// query routed at it, while its healthy neighbours keep serving.
//
// Breakers are created on first use from the configured template, with the
// peer's id as the breaker Name (so per-peer obs metrics come for free).
// Safe for concurrent use; Peer on the hot path is one RLock + map hit.
type PeerGate struct {
	cfg BreakerConfig

	mu    sync.RWMutex
	peers map[string]*Breaker
}

// NewPeerGate builds an empty gate whose breakers are stamped from cfg
// (cfg.Name is overridden per peer).
func NewPeerGate(cfg BreakerConfig) *PeerGate {
	return &PeerGate{cfg: cfg, peers: make(map[string]*Breaker)}
}

// Peer returns id's breaker, creating a fresh closed one on first use.
func (g *PeerGate) Peer(id string) *Breaker {
	g.mu.RLock()
	b := g.peers[id]
	g.mu.RUnlock()
	if b != nil {
		return b
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if b = g.peers[id]; b == nil {
		cfg := g.cfg
		cfg.Name = id
		b = NewBreaker(cfg)
		g.peers[id] = b
	}
	return b
}

// Drop forgets id's breaker — call when the peer leaves the membership so a
// rejoin starts with a clean (closed) breaker.
func (g *PeerGate) Drop(id string) {
	g.mu.Lock()
	delete(g.peers, id)
	g.mu.Unlock()
}

// States snapshots every peer's breaker state.
func (g *PeerGate) States() map[string]State {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[string]State, len(g.peers))
	for id, b := range g.peers {
		out[id] = b.State()
	}
	return out
}

// Open returns the ids whose breakers are currently open, sorted.
func (g *PeerGate) Open() []string {
	var open []string
	for id, s := range g.States() {
		if s == Open {
			open = append(open, id)
		}
	}
	sort.Strings(open)
	return open
}

// Check is a Health probe over the whole peer set: nil while every breaker
// is closed or probing, an error naming the open peers otherwise.
func (g *PeerGate) Check() error {
	if open := g.Open(); len(open) > 0 {
		return fmt.Errorf("%w: peers [%s]", ErrOpen, strings.Join(open, " "))
	}
	return nil
}
