package policy

import (
	"fmt"
	"time"
)

// Clock is the CLOCK approximation of LRU that MemC3 uses on CPUs (§1.1 of
// the paper): entries sit in a ring with one reference bit each; a hit sets
// the bit, and the eviction hand sweeps the ring clearing bits until it
// finds a cleared one. It needs an unbounded sweep per miss — fine on a CPU,
// impossible in a switch pipeline — so it serves here as a software
// reference point between the ideal LRU and the deployable P4LRU.
type Clock struct {
	keys  []uint64
	vals  []uint64
	ref   []bool
	used  []bool
	index map[uint64]int
	hand  int
	merge MergeFunc
}

// NewClock builds a CLOCK cache with the given capacity.
func NewClock(capacity int, merge MergeFunc) *Clock {
	if capacity < 1 {
		panic(fmt.Sprintf("policy: clock capacity %d", capacity))
	}
	return &Clock{
		keys:  make([]uint64, capacity),
		vals:  make([]uint64, capacity),
		ref:   make([]bool, capacity),
		used:  make([]bool, capacity),
		index: make(map[uint64]int, capacity),
		merge: merge,
	}
}

// Name implements Cache.
func (c *Clock) Name() string { return "clock" }

// Query implements Cache.
func (c *Clock) Query(k uint64) (uint64, Token, bool) {
	if i, ok := c.index[k]; ok {
		return c.vals[i], NoToken, true
	}
	return 0, NoToken, false
}

// Update implements Cache.
func (c *Clock) Update(k, v uint64, _ Token, _ time.Duration) Result {
	var res Result
	if i, ok := c.index[k]; ok {
		res.Hit = true
		c.ref[i] = true
		if c.merge != nil {
			c.vals[i] = c.merge(c.vals[i], v)
		} else {
			c.vals[i] = v
		}
		return res
	}
	res.Admitted = true

	// Find a victim slot: first unused, else sweep the hand.
	slot := -1
	if len(c.index) < len(c.keys) {
		for i, used := range c.used {
			if !used {
				slot = i
				break
			}
		}
	}
	if slot < 0 {
		for {
			if !c.ref[c.hand] {
				slot = c.hand
				c.hand = (c.hand + 1) % len(c.keys)
				break
			}
			c.ref[c.hand] = false
			c.hand = (c.hand + 1) % len(c.keys)
		}
		res.Evicted = true
		res.EvictedKey = c.keys[slot]
		res.EvictedValue = c.vals[slot]
		delete(c.index, c.keys[slot])
	}

	c.used[slot] = true
	c.keys[slot], c.vals[slot] = k, v
	c.ref[slot] = false // inserted cold, as CLOCK does
	c.index[k] = slot
	return res
}

// Len implements Cache.
func (c *Clock) Len() int { return len(c.index) }

// Capacity implements Cache.
func (c *Clock) Capacity() int { return len(c.keys) }

// Range implements Cache.
func (c *Clock) Range(fn func(k, v uint64) bool) {
	for i, used := range c.used {
		if used {
			if _, live := c.index[c.keys[i]]; live && !fn(c.keys[i], c.vals[i]) {
				return
			}
		}
	}
}

var _ Cache = (*Clock)(nil)
