package policy

import (
	"time"

	"github.com/p4lru/p4lru/internal/lru"
)

// Op is one replacement-state mutation in batch form: the (key, value,
// token, time) quadruple of Cache.Update. The serving engine queues ops in
// this shape and BatchUpdater caches consume whole slices of them without
// per-op conversion.
type Op struct {
	Key, Value uint64
	Token      Token
	Now        time.Duration
}

// BatchUpdater is an optional Cache capability: applying a whole op batch
// in one call, semantically identical to calling Update(op.Key, op.Value,
// op.Token, op.Now) for each op in order with the Results discarded.
// Implementations use the batch to amortize per-op overhead — the flat
// P4LRU3 core hashes all keys up front and walks its slabs in a
// cache-friendly pass. The engine's shard writers apply each queued batch
// through this interface when the shard's cache provides it.
type BatchUpdater interface {
	UpdateBatch(ops []Op)
}

// EvictBatchUpdater is an optional Cache capability layered on BatchUpdater:
// apply a whole op batch AND report every eviction to onEvict, in op order.
// The serving engine prefers this interface when an eviction hook (the
// write-behind drain) is configured, so a cache can keep a fast batch path
// even while its replacements are being observed — the flat P4LRU3 core
// applies per-op flat updates (no interface dispatch, no allocation) instead
// of its eviction-blind slab walk.
type EvictBatchUpdater interface {
	UpdateBatchEvict(ops []Op, onEvict func(key, val uint64))
}

// FlatP4LRU3 is the p4lru3 policy on the struct-of-arrays core
// (lru.FlatArray3) instead of the generic interface-based array. It is
// behaviourally identical to NewP4LRU(3, units, seed, merge) with the same
// parameters — the differential tests pin this — while removing interface
// dispatch and per-unit pointer chases from the hot path: Query and Update
// are zero-allocation, and UpdateBatch applies engine op batches through
// the core's batched slab walk.
//
// NewForMemory and the spec layer construct this type for KindP4LRU3, so
// the simulators, experiments, serving engine and replay all run on the
// flat core by default; NewP4LRU(3, ...) remains the generic oracle.
type FlatP4LRU3 struct {
	arr *lru.FlatArray3
	// keys/vals are the reusable batch scratch: UpdateBatch splits the op
	// structs into the parallel key/value slices the core's slab walk takes.
	keys, vals []uint64
}

var (
	_ Cache             = (*FlatP4LRU3)(nil)
	_ BatchUpdater      = (*FlatP4LRU3)(nil)
	_ EvictBatchUpdater = (*FlatP4LRU3)(nil)
	_ ConcurrentReader  = (*FlatP4LRU3)(nil)
)

// NewFlatP4LRU3 builds a flat-core p4lru3 policy with numUnits units.
func NewFlatP4LRU3(numUnits int, seed uint64, merge MergeFunc) *FlatP4LRU3 {
	return &FlatP4LRU3{arr: lru.NewFlatArray3(numUnits, seed, merge)}
}

// Name implements Cache. The flat core is an implementation detail: it
// reports "p4lru3" so experiment output is identical to the generic array.
func (p *FlatP4LRU3) Name() string { return "p4lru3" }

// Query implements Cache.
func (p *FlatP4LRU3) Query(k uint64) (uint64, Token, bool) {
	v, ok := p.arr.Lookup(k)
	return v, NoToken, ok
}

// ConcurrentQuery implements ConcurrentReader: the flat core's per-unit
// seqlock makes Query safe concurrent with the single shard writer, so the
// serving engine queries with no lock at all.
func (p *FlatP4LRU3) ConcurrentQuery() bool { return true }

// Update implements Cache. P4LRU always admits.
func (p *FlatP4LRU3) Update(k, v uint64, _ Token, _ time.Duration) Result {
	return fromLRU(p.arr.Update(k, v))
}

// UpdateBatch implements BatchUpdater: the ops are split into parallel
// key/value slices (reused across calls, so steady-state batches allocate
// nothing) and applied through the core's batched slab walk. Tokens and
// times are ignored, as in Update.
func (p *FlatP4LRU3) UpdateBatch(ops []Op) {
	if cap(p.keys) < len(ops) {
		p.keys = make([]uint64, len(ops))
		p.vals = make([]uint64, len(ops))
	}
	keys, vals := p.keys[:len(ops)], p.vals[:len(ops)]
	for i := range ops {
		keys[i] = ops[i].Key
		vals[i] = ops[i].Value
	}
	p.arr.UpdateBatch(keys, vals)
}

// UpdateBatchEvict implements EvictBatchUpdater: per-op updates on the flat
// core (each returns its Result, so evictions are visible) instead of the
// batched slab walk, which discards them. Still zero-allocation and free of
// interface dispatch; the price is losing the batch's hash-ahead locality.
func (p *FlatP4LRU3) UpdateBatchEvict(ops []Op, onEvict func(key, val uint64)) {
	for i := range ops {
		r := p.arr.Update(ops[i].Key, ops[i].Value)
		if r.Evicted {
			onEvict(r.EvictedKey, r.EvictedValue)
		}
	}
}

// Len implements Cache.
func (p *FlatP4LRU3) Len() int { return p.arr.Len() }

// Capacity implements Cache.
func (p *FlatP4LRU3) Capacity() int { return p.arr.Capacity() }

// Range implements Cache.
func (p *FlatP4LRU3) Range(fn func(k, v uint64) bool) { p.arr.Range(fn) }

// Flat exposes the underlying flat array (for differential tests and the
// pipeline programs).
func (p *FlatP4LRU3) Flat() *lru.FlatArray3 { return p.arr }
