package policy

// Token is the typed query→update ticket that replaces the old opaque
// `flag int` in the Cache interface. It carries policy-private residency
// state from a read-only Query to the Update that completes the same
// logical access — the software form of the cached_flag header field the
// paper's packets carry between the query and reply pipeline passes (§3.2).
//
// The series-connection contract: a series-connected cache returns the
// 1-based level that held the key (NoToken on a miss), and the caller must
// hand exactly that token back to Update for the same key so the reply path
// can promote in place (token = level i) or insert at level 1 and cascade
// demotions (token = NoToken). Tokens are not transferable between keys and
// not durable across intervening updates: like the wire header, a token is
// consumed by the single Update it was issued for. Every non-series policy
// issues NoToken and ignores the token on Update.
type Token uint8

// NoToken is the zero Token: the key was not resident at Query time (or the
// policy does not use tokens). It matches the wire encoding cached_flag = 0.
const NoToken Token = 0

// Cached reports whether the token signals residency at Query time.
func (t Token) Cached() bool { return t != NoToken }

// Level returns the 1-based series level the token encodes, or 0 for
// NoToken. For non-series policies this is always 0.
func (t Token) Level() int { return int(t) }
