// Package policy provides the replacement policies the paper's evaluation
// sweeps (§4.2.1): the P4LRU family, the ideal LRU upper bound, and the
// three data-plane baselines — the plain hash table (equivalent to P4LRU1,
// the testbed "Baseline"), the timeout policy (Beaucoup/NetSeer style), and
// the two LFU-flavoured policies built on Elastic sketch and CocoSketch
// bucket replacement.
//
// Every policy implements Cache, so the LruTable/LruIndex/LruMon simulators
// can swap replacement strategies without caring which one is installed, and
// NewForMemory sizes any policy to an equal memory budget using the
// data-plane cost model documented per policy.
package policy

import (
	"fmt"
	"time"

	"github.com/p4lru/p4lru/internal/lru"
)

// Result mirrors lru.Result for uint64 values, plus an admission flag:
// P4LRU and the ideal LRU always admit on a miss, but the timeout, elastic
// and coco policies may decline to displace a fresh/strong resident.
type Result struct {
	Hit          bool
	Admitted     bool // key newly admitted (miss path only)
	Evicted      bool
	EvictedKey   uint64
	EvictedValue uint64
}

// fromLRU lifts an lru.Result; P4LRU-family caches always admit on miss.
func fromLRU(r lru.Result[uint64]) Result {
	return Result{
		Hit:          r.Hit,
		Admitted:     !r.Hit,
		Evicted:      r.Evicted,
		EvictedKey:   r.EvictedKey,
		EvictedValue: r.EvictedValue,
	}
}

// MergeFunc combines a cached value with an incoming one on a hit; nil means
// replace.
type MergeFunc = lru.MergeFunc[uint64]

// Cache is the uniform replacement-policy interface. Values are uint64 —
// wide enough for every system (real addresses, 48-bit database indexes,
// byte counts).
type Cache interface {
	// Name identifies the policy in experiment output ("p4lru3", "timeout", ...).
	Name() string
	// Query looks k up without modifying replacement state. The returned
	// Token must be passed to the subsequent Update for the same key; see
	// Token for the series-connection contract it carries (the
	// series-connected P4LRU encodes the cached_flag level; everything
	// else returns NoToken).
	Query(k uint64) (v uint64, tok Token, ok bool)
	// Update performs a replacement-state-modifying access: promote on hit,
	// admit (possibly evicting) on miss — or decline to admit, for policies
	// that do (timeout, elastic, coco). tok is the Token the matching Query
	// returned (NoToken for blind updates).
	Update(k, v uint64, tok Token, now time.Duration) Result
	// Len is the number of cached entries; Capacity the maximum.
	Len() int
	Capacity() int
	// Range iterates all cached (key, value) pairs until fn returns false
	// (control-plane style readout; LruMon's end-of-run flush uses it).
	Range(fn func(k, v uint64) bool)
}

// ConcurrentReader is an optional Cache capability: a policy whose Query is
// safe to run concurrently with a single writer's Update returns true, and
// the serving engine then queries it with no lock at all. The flat cores
// (FlatP4LRU2/3/4, FlatSeries) implement it via their per-unit seqlocks, as
// does Synchronized, which takes its own read lock internally. The generic
// interface-based policies mutate multi-word buckets non-atomically and do
// not implement it — the engine wraps those in Synchronized.
type ConcurrentReader interface {
	ConcurrentQuery() bool
}

// ---------------------------------------------------------------------------
// P4LRU family
// ---------------------------------------------------------------------------

// P4LRU wraps a parallel-connected array of P4LRU units (§1.2) as a Cache.
// unitCap 1 reproduces the plain hash table (one entry per bucket, always
// replace) — the testbed Baseline.
type P4LRU struct {
	arr     *lru.Array[uint64]
	unitCap int
}

// NewP4LRU builds an array of numUnits P4LRU units of capacity unitCap
// (1–4 use the data-plane implementations; larger n uses the generic unit).
func NewP4LRU(unitCap, numUnits int, seed uint64, merge MergeFunc) *P4LRU {
	var newUnit func() lru.UnitCache[uint64]
	switch unitCap {
	case 2:
		newUnit = func() lru.UnitCache[uint64] { return lru.NewUnit2[uint64](merge) }
	case 3:
		newUnit = func() lru.UnitCache[uint64] { return lru.NewUnit3[uint64](merge) }
	case 4:
		newUnit = func() lru.UnitCache[uint64] { return lru.NewUnit4[uint64](merge) }
	default:
		newUnit = func() lru.UnitCache[uint64] { return lru.NewUnit[uint64](unitCap, merge) }
	}
	return &P4LRU{arr: lru.NewArray(numUnits, seed, newUnit), unitCap: unitCap}
}

// Name implements Cache.
func (p *P4LRU) Name() string { return fmt.Sprintf("p4lru%d", p.unitCap) }

// Query implements Cache.
func (p *P4LRU) Query(k uint64) (uint64, Token, bool) {
	v, ok := p.arr.Lookup(k)
	return v, NoToken, ok
}

// Update implements Cache. P4LRU always admits.
func (p *P4LRU) Update(k, v uint64, _ Token, _ time.Duration) Result {
	return fromLRU(p.arr.Update(k, v))
}

// Len implements Cache.
func (p *P4LRU) Len() int { return p.arr.Len() }

// Capacity implements Cache.
func (p *P4LRU) Capacity() int { return p.arr.Capacity() }

// Range implements Cache.
func (p *P4LRU) Range(fn func(k, v uint64) bool) { p.arr.Range(fn) }

// Array exposes the underlying array (for pipeline differential tests).
func (p *P4LRU) Array() *lru.Array[uint64] { return p.arr }

// Series wraps the series-connection of §3.2 as a Cache. Query returns the
// 1-based level as flag; Update routes through the reply path.
type Series struct {
	s *lru.Series[uint64]
}

// NewSeries builds `levels` series-connected arrays of P4LRU3 units.
func NewSeries(levels, numUnits int, seed uint64, merge MergeFunc) *Series {
	return &Series{s: lru.NewSeries3(levels, numUnits, seed, merge)}
}

// NewSeriesUnitCap builds a series with configurable per-unit capacity
// (1, 2, 3 or 4) — Figure 16(a)/(b) sweeps this.
func NewSeriesUnitCap(unitCap, levels, numUnits int, seed uint64, merge MergeFunc) *Series {
	var newUnit func() lru.UnitCache[uint64]
	switch unitCap {
	case 2:
		newUnit = func() lru.UnitCache[uint64] { return lru.NewUnit2[uint64](merge) }
	case 3:
		newUnit = func() lru.UnitCache[uint64] { return lru.NewUnit3[uint64](merge) }
	case 4:
		newUnit = func() lru.UnitCache[uint64] { return lru.NewUnit4[uint64](merge) }
	default:
		newUnit = func() lru.UnitCache[uint64] { return lru.NewUnit[uint64](unitCap, merge) }
	}
	return &Series{s: lru.NewSeries(levels, numUnits, seed, newUnit)}
}

// Name implements Cache.
func (c *Series) Name() string { return fmt.Sprintf("series%d", c.s.Levels()) }

// Query implements Cache: the token is the 1-based series level.
func (c *Series) Query(k uint64) (uint64, Token, bool) {
	v, level, ok := c.s.Query(k)
	return v, Token(level), ok
}

// Update implements Cache: tok is the level token from the matching Query.
func (c *Series) Update(k, v uint64, tok Token, _ time.Duration) Result {
	return fromLRU(c.s.Reply(k, v, tok.Level()))
}

// Len implements Cache.
func (c *Series) Len() int { return c.s.Len() }

// Capacity implements Cache.
func (c *Series) Capacity() int { return c.s.Capacity() }

// Range implements Cache.
func (c *Series) Range(fn func(k, v uint64) bool) { c.s.Range(fn) }

// Inner exposes the underlying series (for the ablation experiments).
func (c *Series) Inner() *lru.Series[uint64] { return c.s }

// Ideal wraps lru.Ideal as a Cache — the LRU_IDEAL upper bound.
type Ideal struct {
	c *lru.Ideal[uint64]
}

// NewIdeal builds an ideal LRU with the given total capacity.
func NewIdeal(capacity int, merge MergeFunc) *Ideal {
	return &Ideal{c: lru.NewIdeal(capacity, merge)}
}

// Name implements Cache.
func (c *Ideal) Name() string { return "ideal" }

// Query implements Cache.
func (c *Ideal) Query(k uint64) (uint64, Token, bool) {
	v, ok := c.c.Lookup(k)
	return v, NoToken, ok
}

// Update implements Cache.
func (c *Ideal) Update(k, v uint64, _ Token, _ time.Duration) Result {
	return fromLRU(c.c.Update(k, v))
}

// Range implements Cache.
func (c *Ideal) Range(fn func(k, v uint64) bool) { c.c.Range(fn) }

// Len implements Cache.
func (c *Ideal) Len() int { return c.c.Len() }

// Capacity implements Cache.
func (c *Ideal) Capacity() int { return c.c.Cap() }
