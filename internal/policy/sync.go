package policy

import (
	"sync"
	"time"
)

// Synchronized wraps a Cache with a mutex. The simulators are
// single-goroutine by design (a pipeline serializes packets), but servers
// embedding a cache across connection handlers — like the netproto switch —
// need the locked form.
type Synchronized struct {
	mu    sync.Mutex
	inner Cache
}

// Synchronize returns a goroutine-safe view of c. All access must then go
// through the wrapper.
func Synchronize(c Cache) *Synchronized {
	if c == nil {
		panic("policy: Synchronize(nil)")
	}
	return &Synchronized{inner: c}
}

// Name implements Cache.
func (s *Synchronized) Name() string { return s.inner.Name() }

// Query implements Cache.
func (s *Synchronized) Query(k uint64) (uint64, Token, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Query(k)
}

// Update implements Cache.
func (s *Synchronized) Update(k, v uint64, tok Token, now time.Duration) Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Update(k, v, tok, now)
}

// Len implements Cache.
func (s *Synchronized) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Len()
}

// Capacity implements Cache.
func (s *Synchronized) Capacity() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Capacity()
}

// Range implements Cache. fn runs under the lock; it must not call back into
// the wrapper.
func (s *Synchronized) Range(fn func(k, v uint64) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Range(fn)
}

var _ Cache = (*Synchronized)(nil)
