package policy

import (
	"sync"
	"time"
)

// Synchronized wraps a Cache with a read-write mutex. The simulators are
// single-goroutine by design (a pipeline serializes packets), but servers
// embedding a cache across connection handlers — like the netproto switch —
// need the locked form. Queries take the read lock (so concurrent readers
// proceed in parallel), mutations the write lock; the wrapper therefore
// satisfies ConcurrentReader, and the serving engine uses it to give every
// policy — flat or not — a Query path that needs no engine-level lock.
type Synchronized struct {
	mu    sync.RWMutex
	inner Cache
	// batch/evictBatch are the inner cache's optional batch capabilities,
	// captured once at construction so the wrapper can delegate under a
	// single lock acquisition per batch instead of one per op.
	batch      BatchUpdater
	evictBatch EvictBatchUpdater
}

// Synchronize returns a goroutine-safe view of c. All access must then go
// through the wrapper. If c already reports ConcurrentQuery, it is returned
// unchanged — it needs no wrapping.
func Synchronize(c Cache) Cache {
	if c == nil {
		panic("policy: Synchronize(nil)")
	}
	if cr, ok := c.(ConcurrentReader); ok && cr.ConcurrentQuery() {
		return c
	}
	s := &Synchronized{inner: c}
	s.batch, _ = c.(BatchUpdater)
	s.evictBatch, _ = c.(EvictBatchUpdater)
	return s
}

// Name implements Cache.
func (s *Synchronized) Name() string { return s.inner.Name() }

// Query implements Cache under the read lock.
func (s *Synchronized) Query(k uint64) (uint64, Token, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Query(k)
}

// ConcurrentQuery implements ConcurrentReader: the wrapper's own read lock
// makes Query safe against concurrent mutators, so callers (the serving
// engine) need no lock of their own.
func (s *Synchronized) ConcurrentQuery() bool { return true }

// Update implements Cache under the write lock.
func (s *Synchronized) Update(k, v uint64, tok Token, now time.Duration) Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Update(k, v, tok, now)
}

// UpdateBatch implements BatchUpdater: one write-lock acquisition covers the
// whole batch, delegating to the inner cache's batch path when it has one.
func (s *Synchronized) UpdateBatch(ops []Op) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.batch != nil {
		s.batch.UpdateBatch(ops)
		return
	}
	for i := range ops {
		s.inner.Update(ops[i].Key, ops[i].Value, ops[i].Token, ops[i].Now)
	}
}

// UpdateBatchEvict implements EvictBatchUpdater under one write-lock
// acquisition. onEvict runs under the lock; it must not call back into the
// wrapper.
func (s *Synchronized) UpdateBatchEvict(ops []Op, onEvict func(key, val uint64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evictBatch != nil {
		s.evictBatch.UpdateBatchEvict(ops, onEvict)
		return
	}
	for i := range ops {
		r := s.inner.Update(ops[i].Key, ops[i].Value, ops[i].Token, ops[i].Now)
		if r.Evicted {
			onEvict(r.EvictedKey, r.EvictedValue)
		}
	}
}

// Len implements Cache.
func (s *Synchronized) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Len()
}

// Capacity implements Cache.
func (s *Synchronized) Capacity() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inner.Capacity()
}

// Range implements Cache. fn runs under the read lock; it must not call
// back into the wrapper's mutating methods.
func (s *Synchronized) Range(fn func(k, v uint64) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.inner.Range(fn)
}

var (
	_ Cache             = (*Synchronized)(nil)
	_ ConcurrentReader  = (*Synchronized)(nil)
	_ BatchUpdater      = (*Synchronized)(nil)
	_ EvictBatchUpdater = (*Synchronized)(nil)
)
