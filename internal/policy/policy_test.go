package policy

import (
	"math/rand"
	"testing"
	"time"
)

func allKinds() []Kind {
	return []Kind{KindP4LRU1, KindP4LRU2, KindP4LRU3, KindP4LRU4,
		KindIdeal, KindTimeout, KindElastic, KindCoco}
}

// TestInterfaceContract drives every policy through the common protocol.
func TestInterfaceContract(t *testing.T) {
	for _, kind := range allKinds() {
		c := NewForMemory(kind, 64*1024, Options{Seed: 1})
		if c.Name() == "" {
			t.Errorf("%s: empty name", kind)
		}
		if c.Len() != 0 {
			t.Errorf("%s: fresh Len = %d", kind, c.Len())
		}
		if c.Capacity() <= 0 {
			t.Errorf("%s: capacity = %d", kind, c.Capacity())
		}

		// A fresh cache admits the first key (all policies admit into an
		// empty bucket).
		res := c.Update(42, 100, 0, 0)
		if res.Hit {
			t.Errorf("%s: first update hit", kind)
		}
		v, flag, ok := c.Query(42)
		if !ok || v != 100 {
			t.Errorf("%s: Query after insert = %d,%v", kind, v, ok)
		}
		res = c.Update(42, 200, flag, time.Millisecond)
		if !res.Hit {
			t.Errorf("%s: re-update not a hit", kind)
		}
		if v, _, _ := c.Query(42); v != 200 {
			t.Errorf("%s: value after hit = %d", kind, v)
		}
		if c.Len() != 1 {
			t.Errorf("%s: Len = %d, want 1", kind, c.Len())
		}
	}
}

// TestQueryReadOnly: Query must never change subsequent behaviour.
func TestQueryReadOnly(t *testing.T) {
	for _, kind := range allKinds() {
		a := NewForMemory(kind, 8*1024, Options{Seed: 2})
		b := NewForMemory(kind, 8*1024, Options{Seed: 2})
		r := rand.New(rand.NewSource(3))
		for i := 0; i < 5000; i++ {
			k := uint64(r.Intn(2000))
			// a gets spurious queries interleaved; b does not.
			a.Query(k ^ 0xdead)
			ra := a.Update(k, uint64(i), 0, time.Duration(i))
			rb := b.Update(k, uint64(i), 0, time.Duration(i))
			if ra != rb {
				t.Fatalf("%s: step %d diverged: %+v vs %+v", kind, i, ra, rb)
			}
		}
	}
}

// TestMergeSemantics: write-cache accumulation must work for every policy.
func TestMergeSemantics(t *testing.T) {
	add := func(old, in uint64) uint64 { return old + in }
	for _, kind := range allKinds() {
		c := NewForMemory(kind, 64*1024, Options{Seed: 4, Merge: add})
		c.Update(7, 10, 0, 0)
		c.Update(7, 5, 0, 0)
		if v, _, _ := c.Query(7); v != 15 {
			t.Errorf("%s: merged value = %d, want 15", kind, v)
		}
	}
}

func TestTimeoutPolicy(t *testing.T) {
	c := NewTimeout(1, 100*time.Millisecond, 1, nil)
	c.Update(1, 10, 0, 0)
	// Fresh resident: colliding key not admitted.
	res := c.Update(2, 20, 0, 50*time.Millisecond)
	if res.Hit || res.Evicted {
		t.Fatalf("fresh collision: %+v", res)
	}
	if _, _, ok := c.Query(2); ok {
		t.Fatal("non-admitted key present")
	}
	// Expired resident: replaced.
	res = c.Update(2, 20, 0, 200*time.Millisecond)
	if !res.Evicted || res.EvictedKey != 1 || res.EvictedValue != 10 {
		t.Fatalf("expired collision: %+v", res)
	}
	if _, _, ok := c.Query(1); ok {
		t.Fatal("evicted key still present")
	}
	// Hits refresh the timestamp.
	c.Update(2, 21, 0, 250*time.Millisecond)
	res = c.Update(3, 30, 0, 320*time.Millisecond) // only 70ms since refresh
	if res.Evicted {
		t.Fatalf("refresh ignored: %+v", res)
	}
}

func TestElasticPolicy(t *testing.T) {
	c := NewElastic(1, 8, 1, nil)
	c.Update(1, 10, 0, 0)
	// 7 collisions: resident survives (votes 7 < 8×1).
	for i := 0; i < 7; i++ {
		if res := c.Update(2, 20, 0, 0); res.Evicted {
			t.Fatalf("evicted after %d negative votes", i+1)
		}
	}
	// 8th collision evicts.
	res := c.Update(2, 20, 0, 0)
	if !res.Evicted || res.EvictedKey != 1 {
		t.Fatalf("8th collision: %+v", res)
	}
	// Hits strengthen the resident: now 2 positive votes → 16 collisions needed.
	c.Update(2, 20, 0, 0)
	for i := 0; i < 15; i++ {
		if res := c.Update(3, 30, 0, 0); res.Evicted {
			t.Fatalf("evicted after %d/16 negative votes", i+1)
		}
	}
	if res := c.Update(3, 30, 0, 0); !res.Evicted {
		t.Fatal("16th collision did not evict")
	}
}

func TestCocoPolicyStatistics(t *testing.T) {
	// With a single bucket and alternating keys, coco replacement is
	// probabilistic 1/counter; over many trials the newcomer takes over a
	// plausible fraction of the time.
	replaced := 0
	const trials = 2000
	for s := 0; s < trials; s++ {
		c := NewCoco(1, uint64(s), nil)
		c.Update(1, 10, 0, 0)
		if res := c.Update(2, 20, 0, 0); res.Evicted {
			replaced++
		}
	}
	// Second access has counter=2 ⇒ P(replace) = 1/2.
	frac := float64(replaced) / trials
	if frac < 0.42 || frac > 0.58 {
		t.Errorf("coco replacement fraction = %.3f, want ≈0.5", frac)
	}
}

func TestCocoFrequencyBias(t *testing.T) {
	// A heavy flow should end up owning its bucket far more often than a
	// light one.
	heavyWins := 0
	const trials = 500
	for s := 0; s < trials; s++ {
		c := NewCoco(1, uint64(s), nil)
		r := rand.New(rand.NewSource(int64(s)))
		for i := 0; i < 200; i++ {
			if r.Intn(10) == 0 { // light flow: 10%
				c.Update(2, 2, 0, 0)
			} else { // heavy flow: 90%
				c.Update(1, 1, 0, 0)
			}
		}
		if _, _, ok := c.Query(1); ok {
			heavyWins++
		}
	}
	if frac := float64(heavyWins) / trials; frac < 0.75 {
		t.Errorf("heavy flow owns bucket %.2f of trials, want ≥0.75", frac)
	}
}

// TestLRUOrderingOnSkewedStream reproduces the evaluation's headline
// ordering at equal memory: ideal ≥ p4lru3 ≥ p4lru2 ≥ p4lru1 hit rate, and
// p4lru3 above the LFU-ish baselines, on a recency-friendly stream.
func TestLRUOrderingOnSkewedStream(t *testing.T) {
	const mem = 32 * 1024
	// Working set slides: key popularity is Zipf but the hot set drifts,
	// rewarding recency over frequency.
	run := func(kind Kind) float64 {
		c := NewForMemory(kind, mem, Options{Seed: 5, TimeoutThreshold: 2 * time.Millisecond})
		r := rand.New(rand.NewSource(6))
		zipf := rand.NewZipf(r, 1.2, 1, 1<<14)
		hits, total := 0, 0
		for i := 0; i < 300000; i++ {
			drift := uint64(i / 3000 * 97)
			k := zipf.Uint64() + drift
			total++
			if res := c.Update(k, 1, 0, time.Duration(i)*time.Microsecond); res.Hit {
				hits++
			}
		}
		return float64(hits) / float64(total)
	}
	rates := map[Kind]float64{}
	for _, k := range []Kind{KindIdeal, KindP4LRU3, KindP4LRU2, KindP4LRU1, KindElastic, KindCoco} {
		rates[k] = run(k)
	}
	if !(rates[KindIdeal] >= rates[KindP4LRU3]) {
		t.Errorf("ideal %.4f < p4lru3 %.4f", rates[KindIdeal], rates[KindP4LRU3])
	}
	if !(rates[KindP4LRU3] > rates[KindP4LRU1]) {
		t.Errorf("p4lru3 %.4f not above p4lru1 %.4f", rates[KindP4LRU3], rates[KindP4LRU1])
	}
	if !(rates[KindP4LRU2] > rates[KindP4LRU1]) {
		t.Errorf("p4lru2 %.4f not above p4lru1 %.4f", rates[KindP4LRU2], rates[KindP4LRU1])
	}
	if !(rates[KindP4LRU3] > rates[KindElastic]) {
		t.Errorf("p4lru3 %.4f not above elastic %.4f", rates[KindP4LRU3], rates[KindElastic])
	}
	if !(rates[KindP4LRU3] > rates[KindCoco]) {
		t.Errorf("p4lru3 %.4f not above coco %.4f", rates[KindP4LRU3], rates[KindCoco])
	}
}

func TestSeriesPolicy(t *testing.T) {
	c := NewSeries(4, 16, 1, nil)
	if c.Name() != "series4" {
		t.Errorf("name = %s", c.Name())
	}
	// Protocol: query miss → update with flag 0 inserts.
	_, flag, ok := c.Query(9)
	if ok || flag != 0 {
		t.Fatalf("fresh query: flag=%d ok=%v", flag, ok)
	}
	c.Update(9, 90, flag, 0)
	v, flag, ok := c.Query(9)
	if !ok || flag != 1 || v != 90 {
		t.Fatalf("after insert: v=%d flag=%d ok=%v", v, flag, ok)
	}
	c.Update(9, 91, flag, 0)
	if v, _, _ := c.Query(9); v != 91 {
		t.Errorf("after promote: v=%d", v)
	}
	if c.Capacity() != 4*16*3 {
		t.Errorf("capacity = %d", c.Capacity())
	}
}

func TestNewForMemoryValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"tiny":    func() { NewForMemory(KindP4LRU3, 4, Options{}) },
		"unknown": func() { NewForMemory(Kind("nope"), 1024, Options{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMemorySizing(t *testing.T) {
	// Equal memory ⇒ p4lru3 holds slightly fewer entries than the plain
	// hash table (state overhead), timeout fewer still (timestamps).
	mem := 12000
	p1 := NewForMemory(KindP4LRU1, mem, Options{Seed: 1})
	p3 := NewForMemory(KindP4LRU3, mem, Options{Seed: 1})
	to := NewForMemory(KindTimeout, mem, Options{Seed: 1})
	if p1.Capacity() != 1500 {
		t.Errorf("p4lru1 capacity = %d, want 1500", p1.Capacity())
	}
	if got := p3.Capacity(); got != 3*(mem/25) {
		t.Errorf("p4lru3 capacity = %d, want %d", got, 3*(mem/25))
	}
	if to.Capacity() != 1000 {
		t.Errorf("timeout capacity = %d, want 1000", to.Capacity())
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"timeout": func() { NewTimeout(0, time.Second, 1, nil) },
		"elastic": func() { NewElastic(0, 8, 1, nil) },
		"coco":    func() { NewCoco(0, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkP4LRU3Policy(b *testing.B) {
	c := NewForMemory(KindP4LRU3, 1<<20, Options{Seed: 1})
	r := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(r, 1.1, 1, 1<<20)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = zipf.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Update(keys[i&(1<<16-1)], 1, 0, time.Duration(i))
	}
}

func TestSeriesUnitCapVariants(t *testing.T) {
	for _, cap := range []int{1, 2, 3, 4, 5} {
		c := NewSeriesUnitCap(cap, 2, 8, 1, nil)
		if got := c.Capacity(); got != 2*8*cap {
			t.Errorf("cap %d: capacity %d, want %d", cap, got, 2*8*cap)
		}
		// Basic protocol works for every unit size.
		_, flag, ok := c.Query(5)
		if ok {
			t.Fatalf("cap %d: fresh hit", cap)
		}
		c.Update(5, 50, flag, 0)
		if v, _, ok := c.Query(5); !ok || v != 50 {
			t.Errorf("cap %d: Query = %d,%v", cap, v, ok)
		}
	}
}

func TestCacheRangeImplementations(t *testing.T) {
	for _, kind := range allKinds() {
		c := NewForMemory(kind, 16*1024, Options{Seed: 9})
		for k := uint64(1); k <= 40; k++ {
			c.Update(k, k*3, 0, 0)
		}
		count := 0
		c.Range(func(k, v uint64) bool {
			got, _, ok := c.Query(k)
			if !ok || got != v {
				t.Fatalf("%s: Range pair (%d,%d) not confirmed (%d,%v)", kind, k, v, got, ok)
			}
			count++
			return true
		})
		if count != c.Len() {
			t.Errorf("%s: Range visited %d, Len %d", kind, count, c.Len())
		}
		// Early stop.
		visited := 0
		c.Range(func(k, v uint64) bool {
			visited++
			return false
		})
		if c.Len() > 0 && visited != 1 {
			t.Errorf("%s: early stop visited %d", kind, visited)
		}
	}
}

func TestSeriesRangeViaPolicy(t *testing.T) {
	c := NewSeries(3, 4, 1, nil)
	for k := uint64(1); k <= 30; k++ {
		_, flag, _ := c.Query(k)
		c.Update(k, k, flag, 0)
	}
	count := 0
	c.Range(func(k, v uint64) bool {
		count++
		return true
	})
	if count != c.Len() {
		t.Errorf("series Range visited %d, Len %d", count, c.Len())
	}
}
