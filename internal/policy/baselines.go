package policy

import (
	"fmt"
	"math/rand"
	"time"
)

// ---------------------------------------------------------------------------
// Timeout policy (Beaucoup / NetSeer style, §1.1)
// ---------------------------------------------------------------------------

// Timeout is the timeout replacement policy: a single-entry-per-bucket hash
// table where each entry carries its last access time. On a collision the
// resident entry is replaced only if its timestamp has expired; otherwise
// the incoming key is not admitted. The threshold must be tuned per workload
// — the drawback the paper calls out, and Figure 12–14 sweeps.
type Timeout struct {
	keys      []uint64
	vals      []uint64
	last      []time.Duration
	used      []bool
	hash      indexHash
	threshold time.Duration
	size      int
	merge     MergeFunc
}

// NewTimeout builds a timeout cache with `buckets` single-entry buckets.
func NewTimeout(buckets int, threshold time.Duration, seed uint64, merge MergeFunc) *Timeout {
	if buckets < 1 {
		panic(fmt.Sprintf("policy: timeout with %d buckets", buckets))
	}
	return &Timeout{
		keys:      make([]uint64, buckets),
		vals:      make([]uint64, buckets),
		last:      make([]time.Duration, buckets),
		used:      make([]bool, buckets),
		hash:      newIndexHash(seed),
		threshold: threshold,
		merge:     merge,
	}
}

// Name implements Cache.
func (c *Timeout) Name() string { return "timeout" }

// Query implements Cache.
func (c *Timeout) Query(k uint64) (uint64, Token, bool) {
	i := c.hash.index(k, len(c.keys))
	if c.used[i] && c.keys[i] == k {
		return c.vals[i], 0, true
	}
	return 0, 0, false
}

// Update implements Cache.
func (c *Timeout) Update(k, v uint64, _ Token, now time.Duration) Result {
	var res Result
	i := c.hash.index(k, len(c.keys))
	switch {
	case c.used[i] && c.keys[i] == k:
		res.Hit = true
		if c.merge != nil {
			c.vals[i] = c.merge(c.vals[i], v)
		} else {
			c.vals[i] = v
		}
		c.last[i] = now
	case !c.used[i]:
		c.used[i] = true
		res.Admitted = true
		c.keys[i], c.vals[i], c.last[i] = k, v, now
		c.size++
	case now-c.last[i] > c.threshold:
		res.Admitted = true
		res.Evicted = true
		res.EvictedKey, res.EvictedValue = c.keys[i], c.vals[i]
		c.keys[i], c.vals[i], c.last[i] = k, v, now
	default:
		// Resident entry is still fresh: the incoming key is not admitted.
	}
	return res
}

// Range implements Cache.
func (c *Timeout) Range(fn func(k, v uint64) bool) {
	for i, used := range c.used {
		if used && !fn(c.keys[i], c.vals[i]) {
			return
		}
	}
}

// Len implements Cache.
func (c *Timeout) Len() int { return c.size }

// Capacity implements Cache.
func (c *Timeout) Capacity() int { return len(c.keys) }

// ---------------------------------------------------------------------------
// Elastic sketch replacement (LFU-flavoured, §4.2.1 "Elastic")
// ---------------------------------------------------------------------------

// Elastic applies the Elastic sketch heavy-part bucket discipline as a cache
// replacement policy: each bucket holds one entry with a positive vote
// counter for the resident flow and a negative vote counter for colliding
// flows. When negative/positive ≥ λ the resident is evicted. Frequent flows
// therefore stick — including long after their last access, which is the
// pathology P4LRU fixes.
type Elastic struct {
	keys   []uint64
	vals   []uint64
	votePo []uint32
	voteNe []uint32
	used   []bool
	hash   indexHash
	lambda uint32
	size   int
	merge  MergeFunc
}

// NewElastic builds an elastic-replacement cache. lambda is the eviction
// vote ratio (the Elastic sketch paper uses 8).
func NewElastic(buckets int, lambda uint32, seed uint64, merge MergeFunc) *Elastic {
	if buckets < 1 {
		panic(fmt.Sprintf("policy: elastic with %d buckets", buckets))
	}
	if lambda == 0 {
		lambda = 8
	}
	return &Elastic{
		keys:   make([]uint64, buckets),
		vals:   make([]uint64, buckets),
		votePo: make([]uint32, buckets),
		voteNe: make([]uint32, buckets),
		used:   make([]bool, buckets),
		hash:   newIndexHash(seed),
		lambda: lambda,
		merge:  merge,
	}
}

// Name implements Cache.
func (c *Elastic) Name() string { return "elastic" }

// Query implements Cache.
func (c *Elastic) Query(k uint64) (uint64, Token, bool) {
	i := c.hash.index(k, len(c.keys))
	if c.used[i] && c.keys[i] == k {
		return c.vals[i], 0, true
	}
	return 0, 0, false
}

// Update implements Cache.
func (c *Elastic) Update(k, v uint64, _ Token, _ time.Duration) Result {
	var res Result
	i := c.hash.index(k, len(c.keys))
	switch {
	case c.used[i] && c.keys[i] == k:
		res.Hit = true
		c.votePo[i]++
		if c.merge != nil {
			c.vals[i] = c.merge(c.vals[i], v)
		} else {
			c.vals[i] = v
		}
	case !c.used[i]:
		c.used[i] = true
		res.Admitted = true
		c.keys[i], c.vals[i] = k, v
		c.votePo[i], c.voteNe[i] = 1, 0
		c.size++
	default:
		c.voteNe[i]++
		if c.voteNe[i] >= c.lambda*c.votePo[i] {
			res.Admitted = true
			res.Evicted = true
			res.EvictedKey, res.EvictedValue = c.keys[i], c.vals[i]
			c.keys[i], c.vals[i] = k, v
			c.votePo[i], c.voteNe[i] = 1, 0
		}
	}
	return res
}

// Range implements Cache.
func (c *Elastic) Range(fn func(k, v uint64) bool) {
	for i, used := range c.used {
		if used && !fn(c.keys[i], c.vals[i]) {
			return
		}
	}
}

// Len implements Cache.
func (c *Elastic) Len() int { return c.size }

// Capacity implements Cache.
func (c *Elastic) Capacity() int { return len(c.keys) }

// ---------------------------------------------------------------------------
// CocoSketch replacement (frequency-proportional, §4.2.1 "Coco")
// ---------------------------------------------------------------------------

// Coco applies CocoSketch's unbiased bucket replacement as a cache policy:
// each bucket keeps one entry with a counter; a colliding key increments the
// counter and takes over the bucket with probability 1/counter. Heavy flows
// win buckets proportionally to their frequency.
type Coco struct {
	keys  []uint64
	vals  []uint64
	count []uint32
	used  []bool
	hash  indexHash
	rng   *rand.Rand
	size  int
	merge MergeFunc
}

// NewCoco builds a CocoSketch-replacement cache.
func NewCoco(buckets int, seed uint64, merge MergeFunc) *Coco {
	if buckets < 1 {
		panic(fmt.Sprintf("policy: coco with %d buckets", buckets))
	}
	return &Coco{
		keys:  make([]uint64, buckets),
		vals:  make([]uint64, buckets),
		count: make([]uint32, buckets),
		used:  make([]bool, buckets),
		hash:  newIndexHash(seed),
		rng:   rand.New(rand.NewSource(int64(seed) ^ 0x5eed)),
		merge: merge,
	}
}

// Name implements Cache.
func (c *Coco) Name() string { return "coco" }

// Query implements Cache.
func (c *Coco) Query(k uint64) (uint64, Token, bool) {
	i := c.hash.index(k, len(c.keys))
	if c.used[i] && c.keys[i] == k {
		return c.vals[i], 0, true
	}
	return 0, 0, false
}

// Update implements Cache.
func (c *Coco) Update(k, v uint64, _ Token, _ time.Duration) Result {
	var res Result
	i := c.hash.index(k, len(c.keys))
	switch {
	case c.used[i] && c.keys[i] == k:
		res.Hit = true
		c.count[i]++
		if c.merge != nil {
			c.vals[i] = c.merge(c.vals[i], v)
		} else {
			c.vals[i] = v
		}
	case !c.used[i]:
		c.used[i] = true
		res.Admitted = true
		c.keys[i], c.vals[i], c.count[i] = k, v, 1
		c.size++
	default:
		c.count[i]++
		if c.rng.Float64() < 1/float64(c.count[i]) {
			res.Admitted = true
			res.Evicted = true
			res.EvictedKey, res.EvictedValue = c.keys[i], c.vals[i]
			c.keys[i], c.vals[i] = k, v
		}
	}
	return res
}

// Range implements Cache.
func (c *Coco) Range(fn func(k, v uint64) bool) {
	for i, used := range c.used {
		if used && !fn(c.keys[i], c.vals[i]) {
			return
		}
	}
}

// Len implements Cache.
func (c *Coco) Len() int { return c.size }

// Capacity implements Cache.
func (c *Coco) Capacity() int { return len(c.keys) }

var (
	_ Cache = (*P4LRU)(nil)
	_ Cache = (*Series)(nil)
	_ Cache = (*Ideal)(nil)
	_ Cache = (*Timeout)(nil)
	_ Cache = (*Elastic)(nil)
	_ Cache = (*Coco)(nil)
)
