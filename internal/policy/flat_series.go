package policy

import (
	"fmt"
	"time"

	"github.com/p4lru/p4lru/internal/lru"
)

// FlatSeries wraps the series connection on flat cores (lru.FlatSeries) as
// a Cache — the serving counterpart of Series, with wait-free reads on
// every level. Behaviour (level structure, token contract, demotion
// cascade) is identical to Series with the same parameters; the
// differential tests pin this.
type FlatSeries struct {
	s *lru.FlatSeries
}

var (
	_ Cache             = (*FlatSeries)(nil)
	_ BatchUpdater      = (*FlatSeries)(nil)
	_ EvictBatchUpdater = (*FlatSeries)(nil)
	_ ConcurrentReader  = (*FlatSeries)(nil)
)

// NewFlatSeries builds `levels` series-connected flat arrays of per-unit
// capacity unitCap (2, 3 or 4 — the capacities with flat cores).
func NewFlatSeries(unitCap, levels, numUnits int, seed uint64, merge MergeFunc) *FlatSeries {
	return &FlatSeries{s: lru.NewFlatSeries(unitCap, levels, numUnits, seed, merge)}
}

// Name implements Cache; it matches Series.Name so experiment output is
// unchanged by the flat core.
func (c *FlatSeries) Name() string { return fmt.Sprintf("series%d", c.s.Levels()) }

// Query implements Cache: the token is the 1-based series level.
func (c *FlatSeries) Query(k uint64) (uint64, Token, bool) {
	v, level, ok := c.s.Query(k)
	return v, Token(level), ok
}

// ConcurrentQuery implements ConcurrentReader: every level reads through
// its seqlock, so Query is safe concurrent with the shard writer's replies.
func (c *FlatSeries) ConcurrentQuery() bool { return true }

// Update implements Cache: tok is the level token from the matching Query.
func (c *FlatSeries) Update(k, v uint64, tok Token, _ time.Duration) Result {
	return fromLRU(c.s.Reply(k, v, tok.Level()))
}

// UpdateBatch implements BatchUpdater. The series reply path is inherently
// per-op (each op carries its own level token and may cascade demotions),
// so the batch is a plain loop — what the interface buys here is one
// dispatch per batch instead of one per op on the engine's write path.
func (c *FlatSeries) UpdateBatch(ops []Op) {
	for i := range ops {
		c.s.Reply(ops[i].Key, ops[i].Value, ops[i].Token.Level())
	}
}

// UpdateBatchEvict implements EvictBatchUpdater: the per-op replies expose
// the entry expelled from the last level, which is the series' eviction.
func (c *FlatSeries) UpdateBatchEvict(ops []Op, onEvict func(key, val uint64)) {
	for i := range ops {
		r := c.s.Reply(ops[i].Key, ops[i].Value, ops[i].Token.Level())
		if r.Evicted {
			onEvict(r.EvictedKey, r.EvictedValue)
		}
	}
}

// Len implements Cache.
func (c *FlatSeries) Len() int { return c.s.Len() }

// Capacity implements Cache.
func (c *FlatSeries) Capacity() int { return c.s.Capacity() }

// Range implements Cache.
func (c *FlatSeries) Range(fn func(k, v uint64) bool) { c.s.Range(fn) }

// Flat exposes the underlying flat series (for differential tests and the
// duplication diagnostics).
func (c *FlatSeries) Flat() *lru.FlatSeries { return c.s }
