package policy

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestClockBasics(t *testing.T) {
	c := NewClock(3, nil)
	if c.Name() != "clock" || c.Capacity() != 3 {
		t.Fatalf("name=%s cap=%d", c.Name(), c.Capacity())
	}
	for k := uint64(1); k <= 3; k++ {
		res := c.Update(k, k*10, 0, 0)
		if res.Hit || res.Evicted || !res.Admitted {
			t.Fatalf("fill %d: %+v", k, res)
		}
	}
	// Hit key 1: its reference bit protects it from the next sweep.
	if res := c.Update(1, 11, 0, 0); !res.Hit {
		t.Fatal("hit missed")
	}
	res := c.Update(4, 40, 0, 0)
	if !res.Evicted {
		t.Fatal("full clock did not evict")
	}
	if res.EvictedKey == 1 {
		t.Error("referenced entry evicted first")
	}
	if _, _, ok := c.Query(1); !ok {
		t.Error("referenced key gone")
	}
	if c.Len() != 3 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestClockSweepClearsBits(t *testing.T) {
	c := NewClock(2, nil)
	c.Update(1, 1, 0, 0)
	c.Update(2, 2, 0, 0)
	c.Update(1, 1, 0, 0) // ref(1)
	c.Update(2, 2, 0, 0) // ref(2)
	// All referenced: the sweep clears both bits and evicts the first
	// cleared slot rather than spinning forever.
	res := c.Update(3, 3, 0, 0)
	if !res.Evicted {
		t.Fatal("no eviction with all bits set")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
}

// TestClockApproximatesLRU: on a recency-skewed stream CLOCK should land
// between the plain hash table and the ideal LRU.
func TestClockApproximatesLRU(t *testing.T) {
	run := func(c Cache) float64 {
		r := rand.New(rand.NewSource(5))
		zipf := rand.NewZipf(r, 1.2, 1, 1<<14)
		hits, total := 0, 0
		for i := 0; i < 200000; i++ {
			k := zipf.Uint64() + uint64(i/4000)*37
			total++
			if c.Update(k, 1, 0, time.Duration(i)).Hit {
				hits++
			}
		}
		return float64(hits) / float64(total)
	}
	const entries = 2048
	clock := run(NewClock(entries, nil))
	ideal := run(NewIdeal(entries, nil))
	hash := run(NewP4LRU(1, entries, 1, nil))
	if hash >= clock {
		t.Errorf("clock %.4f not above hash table %.4f", clock, hash)
	}
	// CLOCK tracks LRU closely; the reference bits give it a slight
	// frequency flavour that can even edge past strict LRU on Zipf
	// streams, so assert proximity rather than ordering.
	if diff := clock - ideal; diff < -0.01 || diff > 0.01 {
		t.Errorf("clock %.4f not within 1%% of ideal %.4f", clock, ideal)
	}
}

func TestClockRange(t *testing.T) {
	c := NewClock(4, nil)
	c.Update(1, 10, 0, 0)
	c.Update(2, 20, 0, 0)
	got := map[uint64]uint64{}
	c.Range(func(k, v uint64) bool {
		got[k] = v
		return true
	})
	if len(got) != 2 || got[1] != 10 || got[2] != 20 {
		t.Errorf("Range = %v", got)
	}
}

func TestClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClock(0) did not panic")
		}
	}()
	NewClock(0, nil)
}

func TestSynchronizedParallelAccess(t *testing.T) {
	c := Synchronize(NewP4LRU(3, 256, 1, nil))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 20000; i++ {
				k := uint64(r.Intn(4000))
				switch i % 3 {
				case 0:
					c.Update(k, uint64(i), 0, 0)
				case 1:
					c.Query(k)
				default:
					c.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() == 0 || c.Len() > c.Capacity() {
		t.Errorf("len %d out of bounds after parallel access", c.Len())
	}
	if c.Name() != "p4lru3" {
		t.Errorf("name = %s", c.Name())
	}
	count := 0
	c.Range(func(k, v uint64) bool {
		count++
		return true
	})
	if count != c.Len() {
		t.Errorf("Range visited %d, len %d", count, c.Len())
	}
}

func TestSynchronizePanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Synchronize(nil) did not panic")
		}
	}()
	Synchronize(nil)
}
