package policy

import (
	"strings"
	"testing"
	"time"
)

// eqSpec compares every string-representable field (Merge is a func and
// never set by ParseSpec).
func eqSpec(a, b Spec) bool {
	return a.Kind == b.Kind && a.MemBytes == b.MemBytes && a.Levels == b.Levels &&
		a.UnitCap == b.UnitCap && a.Seed == b.Seed &&
		a.TimeoutThreshold == b.TimeoutThreshold && a.ElasticLambda == b.ElasticLambda
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"p4lru3", Spec{Kind: KindP4LRU3}},
		{"p4lru3:mem=1MiB,seed=7", Spec{Kind: KindP4LRU3, MemBytes: 1 << 20, Seed: 7}},
		{"series:levels=4,mem=400KiB", Spec{Kind: KindSeries, Levels: 4, MemBytes: 400 << 10}},
		{"series:levels=2,unitcap=4,mem=65536", Spec{Kind: KindSeries, Levels: 2, UnitCap: 4, MemBytes: 65536}},
		{"timeout:timeout=50ms,mem=256KiB", Spec{Kind: KindTimeout, TimeoutThreshold: 50 * time.Millisecond, MemBytes: 256 << 10}},
		{"elastic:lambda=16", Spec{Kind: KindElastic, ElasticLambda: 16}},
		{" ideal : mem = 2GiB ", Spec{Kind: KindIdeal, MemBytes: 2 << 30}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if !eqSpec(got, c.want) {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"p4lru3:mem",         // no value
		"p4lru3:mem=oops",    // bad size
		"p4lru3:bogus=1",     // unknown key
		"p4lru3:mem=-4KiB",   // negative
		"timeout:timeout=5x", // bad duration
	} {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", in)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	specs := []Spec{
		{Kind: KindP4LRU3},
		{Kind: KindP4LRU3, MemBytes: 1 << 20, Seed: 7},
		{Kind: KindSeries, Levels: 4, MemBytes: 400 << 10},
		{Kind: KindSeries, Levels: 2, UnitCap: 4, MemBytes: 12345},
		{Kind: KindTimeout, TimeoutThreshold: 50 * time.Millisecond, ElasticLambda: 3},
	}
	for _, s := range specs {
		got, err := ParseSpec(s.String())
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", s.String(), err)
			continue
		}
		if !eqSpec(got, s) {
			t.Errorf("round trip via %q = %+v, want %+v", s.String(), got, s)
		}
	}
}

func TestNewFromSpecMatchesNewForMemory(t *testing.T) {
	// A spec-built cache must be behaviourally identical to the
	// NewForMemory-built one at equal parameters.
	for _, kind := range []Kind{KindP4LRU1, KindP4LRU3, KindTimeout, KindElastic, KindCoco, KindIdeal, KindClock} {
		a := MustFromSpec(Spec{Kind: kind, MemBytes: 32 * 1024, Seed: 9})
		b := NewForMemory(kind, 32*1024, Options{Seed: 9})
		if a.Name() != b.Name() || a.Capacity() != b.Capacity() {
			t.Errorf("%s: spec cache (%s, cap %d) != NewForMemory cache (%s, cap %d)",
				kind, a.Name(), a.Capacity(), b.Name(), b.Capacity())
		}
		for i := uint64(0); i < 5000; i++ {
			ra := a.Update(i%701, i, 0, time.Duration(i))
			rb := b.Update(i%701, i, 0, time.Duration(i))
			if ra != rb {
				t.Fatalf("%s: update %d diverged: %+v vs %+v", kind, i, ra, rb)
			}
		}
	}
}

func TestNewFromSpecSeries(t *testing.T) {
	c := MustFromSpec(Spec{Kind: KindSeries, Levels: 4, MemBytes: 400 << 10, Seed: 1})
	// Same sizing rule the LruIndex deployment always used: mem/levels/25
	// units per level, 3 entries per unit, 4 levels.
	wantUnits := 400 << 10 / 4 / 25
	if got := c.Capacity(); got != wantUnits*3*4 {
		t.Errorf("series capacity = %d, want %d", got, wantUnits*3*4)
	}
	if c.Name() != "series4" {
		t.Errorf("series name = %q", c.Name())
	}

	// Token round trip through the series contract.
	c.Update(42, 100, NoToken, 0)
	_, tok, ok := c.Query(42)
	if !ok || !tok.Cached() || tok.Level() != 1 {
		t.Fatalf("query after insert: ok=%v tok=%v", ok, tok)
	}
	if res := c.Update(42, 100, tok, 0); !res.Hit {
		t.Error("tokened update did not hit")
	}
}

func TestNewFromSpecErrors(t *testing.T) {
	for _, s := range []Spec{
		{},                              // no kind
		{Kind: "bogus"},                 // unknown kind
		{Kind: KindP4LRU3, MemBytes: 8}, // too small
		{Kind: KindP4LRU3, Levels: 4},   // levels on a non-series kind
		{Kind: KindSeries, Levels: -1},  // bad shape
		{Kind: KindTimeout, UnitCap: 3}, // unitcap on a non-series kind
	} {
		if _, err := NewFromSpec(s); err == nil {
			t.Errorf("NewFromSpec(%+v) succeeded, want error", s)
		}
	}
}

func TestDefaultMemBytes(t *testing.T) {
	c := MustFromSpec(Spec{Kind: KindP4LRU1})
	want := NewForMemory(KindP4LRU1, DefaultMemBytes, Options{})
	if c.Capacity() != want.Capacity() {
		t.Errorf("default-mem capacity = %d, want %d", c.Capacity(), want.Capacity())
	}
	if !strings.HasPrefix(c.Name(), "p4lru1") {
		t.Errorf("name = %q", c.Name())
	}
}
