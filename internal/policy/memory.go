package policy

import (
	"fmt"
	"time"

	"github.com/p4lru/p4lru/internal/hashing"
)

// indexHash is a thin wrapper so bucket-array policies share one index-hash
// implementation.
type indexHash struct{ h hashing.Hash }

func newIndexHash(seed uint64) indexHash       { return indexHash{h: hashing.New(seed)} }
func (ih indexHash) index(k uint64, n int) int { return ih.h.Index(k, n) }

// Data-plane per-bucket memory cost model, in bytes. Keys and values are
// 32-bit on the switch (fingerprints, IPv4 addresses, counter words); every
// policy is charged the metadata it actually keeps so the equal-memory
// sweeps of Figures 12–15 are fair:
//
//	p4lruN unit : N×(key+val) + 1B state  = 8N+1
//	hash (p4lru1): key+val                = 8
//	timeout     : key+val + 4B timestamp  = 12
//	elastic     : key+val + 2×2B votes    = 12
//	coco        : key+val + 4B counter    = 12
//	ideal       : key+val (charitably free bookkeeping) = 8
const (
	bytesPerEntryKV  = 8
	bytesPerUnitMeta = 1
	bytesPerAuxWord  = 4
)

// Kind names a replacement policy for NewForMemory.
type Kind string

// The policy kinds the experiments sweep.
const (
	KindP4LRU1  Kind = "p4lru1" // plain hash table — the testbed Baseline
	KindP4LRU2  Kind = "p4lru2"
	KindP4LRU3  Kind = "p4lru3"
	KindP4LRU4  Kind = "p4lru4"
	KindIdeal   Kind = "ideal"
	KindTimeout Kind = "timeout"
	KindElastic Kind = "elastic"
	KindCoco    Kind = "coco"
	// KindClock is the MemC3-style CLOCK approximation — a CPU-only
	// reference point (its eviction sweep cannot run in a pipeline).
	KindClock Kind = "clock"
)

// Options tunes policy-specific knobs for NewForMemory.
type Options struct {
	// Merge is applied on hits (nil = replace).
	Merge MergeFunc
	// TimeoutThreshold is the timeout policy's expiry (0 picks 100ms, a
	// mid-sweep value; experiments tune it as the paper did).
	TimeoutThreshold time.Duration
	// ElasticLambda is the eviction vote ratio (0 picks 8).
	ElasticLambda uint32
	// Seed selects hash functions and coco randomness.
	Seed uint64
}

// NewForMemory builds the named policy sized to memBytes using the cost
// model above.
func NewForMemory(kind Kind, memBytes int, opt Options) Cache {
	if memBytes < 16 {
		panic(fmt.Sprintf("policy: memory budget %dB too small", memBytes))
	}
	if opt.TimeoutThreshold == 0 {
		opt.TimeoutThreshold = 100 * time.Millisecond
	}
	if opt.ElasticLambda == 0 {
		opt.ElasticLambda = 8
	}
	switch kind {
	case KindP4LRU1:
		return NewP4LRU(1, atLeast1(memBytes/bytesPerEntryKV), opt.Seed, opt.Merge)
	case KindP4LRU2:
		// Like KindP4LRU3: the deployed configuration runs on the flat
		// struct-of-arrays core; NewP4LRU(2, ...) remains the generic oracle.
		return NewFlatP4LRU2(atLeast1(memBytes/(2*bytesPerEntryKV+bytesPerUnitMeta)), opt.Seed, opt.Merge)
	case KindP4LRU3:
		// The deployed configuration runs on the flat struct-of-arrays core;
		// NewP4LRU(3, ...) remains the generic oracle the differential tests
		// compare against. Same unit count, seed and semantics.
		return NewFlatP4LRU3(atLeast1(memBytes/(3*bytesPerEntryKV+bytesPerUnitMeta)), opt.Seed, opt.Merge)
	case KindP4LRU4:
		return NewFlatP4LRU4(atLeast1(memBytes/(4*bytesPerEntryKV+bytesPerUnitMeta)), opt.Seed, opt.Merge)
	case KindIdeal:
		return NewIdeal(atLeast1(memBytes/bytesPerEntryKV), opt.Merge)
	case KindTimeout:
		return NewTimeout(atLeast1(memBytes/(bytesPerEntryKV+bytesPerAuxWord)), opt.TimeoutThreshold, opt.Seed, opt.Merge)
	case KindElastic:
		return NewElastic(atLeast1(memBytes/(bytesPerEntryKV+bytesPerAuxWord)), opt.ElasticLambda, opt.Seed, opt.Merge)
	case KindCoco:
		return NewCoco(atLeast1(memBytes/(bytesPerEntryKV+bytesPerAuxWord)), opt.Seed, opt.Merge)
	case KindClock:
		// key+val plus the reference bit (charged a byte).
		return NewClock(atLeast1(memBytes/(bytesPerEntryKV+1)), opt.Merge)
	default:
		panic(fmt.Sprintf("policy: unknown kind %q", kind))
	}
}

func atLeast1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
