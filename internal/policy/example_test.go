package policy_test

import (
	"fmt"
	"time"

	"github.com/p4lru/p4lru/internal/policy"
)

// Every replacement policy hides behind the same Cache interface; sizing by
// memory keeps comparisons fair.
func ExampleNewForMemory() {
	for _, kind := range []policy.Kind{policy.KindP4LRU3, policy.KindP4LRU1, policy.KindTimeout} {
		c := policy.NewForMemory(kind, 10_000, policy.Options{Seed: 1})
		fmt.Printf("%-8s %d entries\n", c.Name(), c.Capacity())
	}
	// Output:
	// p4lru3   1200 entries
	// p4lru1   1250 entries
	// timeout  833 entries
}

// The timeout policy admits a colliding key only once the resident entry's
// timestamp has expired — the Beaucoup/NetSeer discipline.
func ExampleTimeout() {
	c := policy.NewTimeout(1, 100*time.Millisecond, 1, nil)
	c.Update(1, 10, 0, 0)

	fresh := c.Update(2, 20, 0, 50*time.Millisecond)
	fmt.Println("while fresh, admitted:", fresh.Admitted)

	expired := c.Update(2, 20, 0, 200*time.Millisecond)
	fmt.Println("after expiry, admitted:", expired.Admitted, "evicted:", expired.EvictedKey)
	// Output:
	// while fresh, admitted: false
	// after expiry, admitted: true evicted: 1
}
