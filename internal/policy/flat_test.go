package policy

import (
	"math/rand"
	"testing"
	"time"
)

// TestFlatP4LRU3MatchesGeneric replays a random access stream through the
// flat-core policy and the generic-array oracle with identical parameters
// and requires identical Query/Update observables — the policy-level form
// of the lru differential tests, covering the fromLRU lifting too.
func TestFlatP4LRU3MatchesGeneric(t *testing.T) {
	add := func(old, in uint64) uint64 { return old + in }
	for _, tc := range []struct {
		name  string
		merge MergeFunc
	}{
		{"replace", nil},
		{"merge-add", add},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const units = 128
			flat := NewFlatP4LRU3(units, 3, tc.merge)
			gen := NewP4LRU(3, units, 3, tc.merge)
			if flat.Capacity() != gen.Capacity() {
				t.Fatalf("capacity diverged: flat %d generic %d", flat.Capacity(), gen.Capacity())
			}
			r := rand.New(rand.NewSource(5))
			for step := 0; step < 40000; step++ {
				k := uint64(r.Int63n(units*4)) + 1
				fv, ftok, fok := flat.Query(k)
				gv, gtok, gok := gen.Query(k)
				if fv != gv || ftok != gtok || fok != gok {
					t.Fatalf("Query(%d) diverged: flat (%d,%v,%v) generic (%d,%v,%v)",
						k, fv, ftok, fok, gv, gtok, gok)
				}
				v := uint64(step + 1)
				fr := flat.Update(k, v, ftok, time.Duration(step))
				gr := gen.Update(k, v, gtok, time.Duration(step))
				if fr != gr {
					t.Fatalf("Update(%d) diverged: flat %+v generic %+v", k, fr, gr)
				}
				if step%1000 == 0 && flat.Len() != gen.Len() {
					t.Fatalf("Len diverged at step %d: flat %d generic %d", step, flat.Len(), gen.Len())
				}
			}
			// Same final contents.
			want := map[uint64]uint64{}
			gen.Range(func(k, v uint64) bool { want[k] = v; return true })
			got := map[uint64]uint64{}
			flat.Range(func(k, v uint64) bool { got[k] = v; return true })
			if len(got) != len(want) {
				t.Fatalf("final contents diverged: flat %d entries, generic %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("final value diverged for key %d: flat %d generic %d", k, got[k], v)
				}
			}
		})
	}
}

// TestFlatP4LRU3UpdateBatchMatchesLoop pins the BatchUpdater contract:
// UpdateBatch(ops) must leave the cache in exactly the state of the
// equivalent Update loop.
func TestFlatP4LRU3UpdateBatchMatchesLoop(t *testing.T) {
	const units = 64
	batched := NewFlatP4LRU3(units, 9, nil)
	looped := NewFlatP4LRU3(units, 9, nil)
	r := rand.New(rand.NewSource(17))
	for round := 0; round < 40; round++ {
		ops := make([]Op, r.Intn(300)+1)
		for i := range ops {
			ops[i] = Op{Key: uint64(r.Int63n(units*4)) + 1, Value: uint64(r.Int63())}
		}
		batched.UpdateBatch(ops)
		for _, op := range ops {
			looped.Update(op.Key, op.Value, op.Token, op.Now)
		}
	}
	if batched.Len() != looped.Len() {
		t.Fatalf("Len diverged: batched %d looped %d", batched.Len(), looped.Len())
	}
	looped.Range(func(k, v uint64) bool {
		got, _, ok := batched.Query(k)
		if !ok || got != v {
			t.Fatalf("key %d: batched (%d,%v), want (%d,true)", k, got, ok, v)
		}
		return true
	})
}

// TestFlatP4LRU3ZeroAlloc pins 0 allocs/op on the policy hot paths.
func TestFlatP4LRU3ZeroAlloc(t *testing.T) {
	p := NewFlatP4LRU3(1<<10, 1, nil)
	ops := make([]Op, 256)
	for i := range ops {
		ops[i] = Op{Key: uint64(i * 2654435761), Value: uint64(i)}
	}
	var k uint64
	if n := testing.AllocsPerRun(1000, func() {
		k++
		p.Update(k&0xfff, k, NoToken, 0)
	}); n != 0 {
		t.Errorf("Update allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		k++
		p.Query(k & 0xfff)
	}); n != 0 {
		t.Errorf("Query allocates %v/op, want 0", n)
	}
	p.UpdateBatch(ops) // grow the scratch once
	if n := testing.AllocsPerRun(100, func() {
		p.UpdateBatch(ops)
	}); n != 0 {
		t.Errorf("UpdateBatch allocates %v/batch, want 0", n)
	}
}

// TestSpecBuildsFlatCore pins the construction route: every data-plane
// unit capacity (p4lru2/3/4) and the series build flat seqlock cores that
// report ConcurrentQuery, while the generic array remains the oracle behind
// NewP4LRU/NewSeriesUnitCap.
func TestSpecBuildsFlatCore(t *testing.T) {
	c, err := NewFromSpec(Spec{Kind: KindP4LRU3, MemBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	flat, ok := c.(*FlatP4LRU3)
	if !ok {
		t.Fatalf("p4lru3 spec built %T, want *FlatP4LRU3", c)
	}
	if _, ok := c.(BatchUpdater); !ok {
		t.Fatal("flat core does not implement BatchUpdater")
	}
	if c.Name() != "p4lru3" {
		t.Fatalf("flat core reports name %q, want p4lru3", c.Name())
	}
	// Same sizing as the generic cost model.
	gen := NewP4LRU(3, atLeast1(64*1024/(3*bytesPerEntryKV+bytesPerUnitMeta)), 0, nil)
	if flat.Capacity() != gen.Capacity() {
		t.Fatalf("flat capacity %d != generic cost-model capacity %d", flat.Capacity(), gen.Capacity())
	}

	for _, tc := range []struct {
		kind Kind
		want string
	}{
		{KindP4LRU2, "p4lru2"},
		{KindP4LRU4, "p4lru4"},
	} {
		c, err := NewFromSpec(Spec{Kind: tc.kind, MemBytes: 64 * 1024})
		if err != nil {
			t.Fatal(err)
		}
		switch c.(type) {
		case *FlatP4LRU2, *FlatP4LRU4:
		default:
			t.Fatalf("%s spec built %T, want a flat core", tc.kind, c)
		}
		if c.Name() != tc.want {
			t.Fatalf("%s spec reports name %q, want %q", tc.kind, c.Name(), tc.want)
		}
		if cr, ok := c.(ConcurrentReader); !ok || !cr.ConcurrentQuery() {
			t.Fatalf("%s flat core does not report ConcurrentQuery", tc.kind)
		}
	}
	c, err = NewFromSpec(Spec{Kind: KindSeries, MemBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	fs, ok := c.(*FlatSeries)
	if !ok {
		t.Fatalf("series spec built %T, want *FlatSeries", c)
	}
	if fs.Name() != "series4" {
		t.Fatalf("flat series reports name %q, want series4", fs.Name())
	}
	if cr, ok := c.(ConcurrentReader); !ok || !cr.ConcurrentQuery() {
		t.Fatal("flat series does not report ConcurrentQuery")
	}
	// Odd unit capacities stay on the generic series.
	c, err = NewFromSpec(Spec{Kind: KindSeries, UnitCap: 5, MemBytes: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*Series); !ok {
		t.Fatalf("unitcap=5 series spec built %T, want the generic *Series", c)
	}
}
