package policy

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// KindSeries is the series-connected P4LRU deployment (§3.2) as a Spec kind.
// It is not a NewForMemory kind — the series has an extra shape parameter
// (levels) — so it lives here, in the Spec layer, where shape parameters
// have a home.
const KindSeries Kind = "series"

// Spec is the declarative form of a policy configuration: everything needed
// to construct a Cache, in one value with a parseable string form. It is the
// single construction entry point the CLIs, the experiments and the serving
// engine share — NewFromSpec replaces the per-caller NewForMemory plumbing.
//
// The string form is "kind" or "kind:key=value,key=value,...", e.g.
//
//	p4lru3:mem=1MiB,seed=7
//	series:levels=4,mem=400KiB
//	timeout:mem=256KiB,timeout=50ms
//
// Keys: mem (bytes, or with B/KiB/MiB/GiB suffix), seed, levels and unitcap
// (series only), timeout (Go duration), lambda (elastic vote ratio).
// Merge cannot be spelled in a string — set it programmatically after
// parsing (it is a function).
type Spec struct {
	// Kind names the policy: any NewForMemory Kind, or KindSeries.
	Kind Kind
	// MemBytes is the total memory budget (0 = DefaultMemBytes).
	MemBytes int
	// Levels is the series-connection depth (series only; 0 = 4, the
	// paper's LruIndex deployment).
	Levels int
	// UnitCap is the per-unit capacity for series (0 = 3, i.e. P4LRU3).
	UnitCap int
	// Seed selects the hash family member and policy randomness.
	Seed uint64
	// TimeoutThreshold is the timeout policy's expiry (0 = NewForMemory's
	// 100ms default).
	TimeoutThreshold time.Duration
	// ElasticLambda is the elastic policy's eviction vote ratio (0 = 8).
	ElasticLambda uint32
	// Merge is applied on hits (nil = replace). Not representable in the
	// string form.
	Merge MergeFunc
}

// DefaultMemBytes is the memory budget a Spec gets when none is given —
// the 400KiB mid-sweep point the CLIs default to.
const DefaultMemBytes = 400 * 1024

// ParseSpec parses the string form documented on Spec. Unset keys are left
// zero so callers can layer their own defaults before NewFromSpec applies
// the global ones.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	kind, params, _ := strings.Cut(strings.TrimSpace(s), ":")
	kind = strings.TrimSpace(kind)
	if kind == "" {
		return spec, fmt.Errorf("policy: empty spec %q", s)
	}
	spec.Kind = Kind(kind)
	if params == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(params, ",") {
		key, val, ok := strings.Cut(kv, "=")
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if !ok || val == "" {
			return spec, fmt.Errorf("policy: spec %q: bad parameter %q (want key=value)", s, kv)
		}
		var err error
		switch key {
		case "mem":
			spec.MemBytes, err = parseMemBytes(val)
		case "seed":
			spec.Seed, err = strconv.ParseUint(val, 0, 64)
		case "levels":
			spec.Levels, err = strconv.Atoi(val)
		case "unitcap":
			spec.UnitCap, err = strconv.Atoi(val)
		case "timeout":
			spec.TimeoutThreshold, err = time.ParseDuration(val)
		case "lambda":
			var v uint64
			v, err = strconv.ParseUint(val, 10, 32)
			spec.ElasticLambda = uint32(v)
		default:
			return spec, fmt.Errorf("policy: spec %q: unknown parameter %q", s, key)
		}
		if err != nil {
			return spec, fmt.Errorf("policy: spec %q: parameter %q: %v", s, key, err)
		}
	}
	return spec, nil
}

// parseMemBytes parses a memory size: a bare byte count or a count with a
// B/KiB/MiB/GiB suffix (also accepting the loose K/M/G shorthands).
func parseMemBytes(s string) (int, error) {
	mult := 1
	num := s
	for _, suf := range []struct {
		name string
		mult int
	}{
		{"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10},
		{"G", 1 << 30}, {"M", 1 << 20}, {"K", 1 << 10}, {"B", 1},
	} {
		if strings.HasSuffix(s, suf.name) {
			mult = suf.mult
			num = strings.TrimSuffix(s, suf.name)
			break
		}
	}
	n, err := strconv.Atoi(strings.TrimSpace(num))
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("negative size %q", s)
	}
	return n * mult, nil
}

// String renders the spec in the parseable form (omitting zero-valued keys
// and the unspellable Merge). ParseSpec(spec.String()) round-trips every
// string-representable field.
func (s Spec) String() string {
	var parts []string
	if s.MemBytes != 0 {
		parts = append(parts, "mem="+formatMemBytes(s.MemBytes))
	}
	if s.Levels != 0 {
		parts = append(parts, fmt.Sprintf("levels=%d", s.Levels))
	}
	if s.UnitCap != 0 {
		parts = append(parts, fmt.Sprintf("unitcap=%d", s.UnitCap))
	}
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	if s.TimeoutThreshold != 0 {
		parts = append(parts, "timeout="+s.TimeoutThreshold.String())
	}
	if s.ElasticLambda != 0 {
		parts = append(parts, fmt.Sprintf("lambda=%d", s.ElasticLambda))
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return string(s.Kind)
	}
	return string(s.Kind) + ":" + strings.Join(parts, ",")
}

// formatMemBytes renders a byte count with the largest exact binary suffix.
func formatMemBytes(n int) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return strconv.Itoa(n)
	}
}

// SeriesMemBytes returns the memory budget that makes NewFromSpec build a
// series of exactly `units` units per level — the inverse of the cost model
// above, for callers (and deprecated shims) that think in unit counts
// rather than bytes. Zero levels/unitCap get the spec defaults (4 and 3).
func SeriesMemBytes(levels, unitCap, units int) int {
	if levels <= 0 {
		levels = 4
	}
	if unitCap <= 0 {
		unitCap = 3
	}
	if units < 1 {
		units = 1
	}
	return levels * units * (unitCap*bytesPerEntryKV + bytesPerUnitMeta)
}

// NewFromSpec constructs the cache a Spec describes. Zero-valued fields get
// defaults: DefaultMemBytes of memory, 4 levels and unit capacity 3 for
// series, NewForMemory's timeout/lambda defaults for the baselines.
func NewFromSpec(s Spec) (Cache, error) {
	if s.Kind == "" {
		return nil, fmt.Errorf("policy: spec has no kind")
	}
	mem := s.MemBytes
	if mem == 0 {
		mem = DefaultMemBytes
	}
	if mem < 16 {
		return nil, fmt.Errorf("policy: memory budget %dB too small", mem)
	}
	if s.Kind == KindSeries {
		levels := s.Levels
		if levels == 0 {
			levels = 4
		}
		unitCap := s.UnitCap
		if unitCap == 0 {
			unitCap = 3
		}
		if levels < 1 || unitCap < 1 {
			return nil, fmt.Errorf("policy: series spec with levels=%d unitcap=%d", levels, unitCap)
		}
		// Same cost model as NewForMemory's p4lruN entry: N×(key+val) per
		// unit plus one state byte, split evenly across the levels.
		units := mem / levels / (unitCap*bytesPerEntryKV + bytesPerUnitMeta)
		if units < 1 {
			units = 1
		}
		// Unit capacities with flat cores (2, 3, 4 — all the data-plane
		// widths) get the seqlock series; NewSeriesUnitCap remains the
		// generic oracle, and serves the odd capacities.
		switch unitCap {
		case 2, 3, 4:
			return NewFlatSeries(unitCap, levels, units, s.Seed, s.Merge), nil
		}
		return NewSeriesUnitCap(unitCap, levels, units, s.Seed, s.Merge), nil
	}
	if s.Levels != 0 || s.UnitCap != 0 {
		return nil, fmt.Errorf("policy: levels/unitcap only apply to kind %q, not %q", KindSeries, s.Kind)
	}
	switch s.Kind {
	case KindP4LRU1, KindP4LRU2, KindP4LRU3, KindP4LRU4, KindIdeal,
		KindTimeout, KindElastic, KindCoco, KindClock:
	default:
		return nil, fmt.Errorf("policy: unknown kind %q", s.Kind)
	}
	return NewForMemory(s.Kind, mem, Options{
		Merge:            s.Merge,
		TimeoutThreshold: s.TimeoutThreshold,
		ElasticLambda:    s.ElasticLambda,
		Seed:             s.Seed,
	}), nil
}

// MustFromSpec is NewFromSpec for statically known specs (the experiment
// tables); it panics on error.
func MustFromSpec(s Spec) Cache {
	c, err := NewFromSpec(s)
	if err != nil {
		panic(err)
	}
	return c
}
