package policy

import (
	"time"

	"github.com/p4lru/p4lru/internal/lru"
)

// FlatP4LRU2 is the p4lru2 policy on the 2-wide flat core (lru.FlatArray2),
// behaviourally identical to NewP4LRU(2, units, seed, merge) with the same
// parameters — the differential tests pin this. Like FlatP4LRU3, queries are
// wait-free (per-unit seqlock), so the serving engine runs Query with no
// lock while the shard writer mutates.
type FlatP4LRU2 struct {
	arr        *lru.FlatArray2
	keys, vals []uint64
}

var (
	_ Cache             = (*FlatP4LRU2)(nil)
	_ BatchUpdater      = (*FlatP4LRU2)(nil)
	_ EvictBatchUpdater = (*FlatP4LRU2)(nil)
	_ ConcurrentReader  = (*FlatP4LRU2)(nil)
)

// NewFlatP4LRU2 builds a flat-core p4lru2 policy with numUnits units.
func NewFlatP4LRU2(numUnits int, seed uint64, merge MergeFunc) *FlatP4LRU2 {
	return &FlatP4LRU2{arr: lru.NewFlatArray2(numUnits, seed, merge)}
}

// Name implements Cache; the flat core is an implementation detail.
func (p *FlatP4LRU2) Name() string { return "p4lru2" }

// Query implements Cache.
func (p *FlatP4LRU2) Query(k uint64) (uint64, Token, bool) {
	v, ok := p.arr.Lookup(k)
	return v, NoToken, ok
}

// ConcurrentQuery implements ConcurrentReader: reads are seqlock-safe
// against the single shard writer.
func (p *FlatP4LRU2) ConcurrentQuery() bool { return true }

// Update implements Cache. P4LRU always admits.
func (p *FlatP4LRU2) Update(k, v uint64, _ Token, _ time.Duration) Result {
	return fromLRU(p.arr.Update(k, v))
}

// UpdateBatch implements BatchUpdater via the core's batched slab walk.
func (p *FlatP4LRU2) UpdateBatch(ops []Op) {
	if cap(p.keys) < len(ops) {
		p.keys = make([]uint64, len(ops))
		p.vals = make([]uint64, len(ops))
	}
	keys, vals := p.keys[:len(ops)], p.vals[:len(ops)]
	for i := range ops {
		keys[i] = ops[i].Key
		vals[i] = ops[i].Value
	}
	p.arr.UpdateBatch(keys, vals)
}

// UpdateBatchEvict implements EvictBatchUpdater with per-op flat updates,
// whose Results expose the evictions the blind batch walk discards.
func (p *FlatP4LRU2) UpdateBatchEvict(ops []Op, onEvict func(key, val uint64)) {
	for i := range ops {
		r := p.arr.Update(ops[i].Key, ops[i].Value)
		if r.Evicted {
			onEvict(r.EvictedKey, r.EvictedValue)
		}
	}
}

// Len implements Cache.
func (p *FlatP4LRU2) Len() int { return p.arr.Len() }

// Capacity implements Cache.
func (p *FlatP4LRU2) Capacity() int { return p.arr.Capacity() }

// Range implements Cache.
func (p *FlatP4LRU2) Range(fn func(k, v uint64) bool) { p.arr.Range(fn) }

// Flat exposes the underlying flat array.
func (p *FlatP4LRU2) Flat() *lru.FlatArray2 { return p.arr }

// FlatP4LRU4 is the p4lru4 policy on the 4-wide flat core (lru.FlatArray4),
// behaviourally identical to NewP4LRU(4, units, seed, merge); same wait-free
// read contract as the other flat policies.
type FlatP4LRU4 struct {
	arr        *lru.FlatArray4
	keys, vals []uint64
}

var (
	_ Cache             = (*FlatP4LRU4)(nil)
	_ BatchUpdater      = (*FlatP4LRU4)(nil)
	_ EvictBatchUpdater = (*FlatP4LRU4)(nil)
	_ ConcurrentReader  = (*FlatP4LRU4)(nil)
)

// NewFlatP4LRU4 builds a flat-core p4lru4 policy with numUnits units.
func NewFlatP4LRU4(numUnits int, seed uint64, merge MergeFunc) *FlatP4LRU4 {
	return &FlatP4LRU4{arr: lru.NewFlatArray4(numUnits, seed, merge)}
}

// Name implements Cache; the flat core is an implementation detail.
func (p *FlatP4LRU4) Name() string { return "p4lru4" }

// Query implements Cache.
func (p *FlatP4LRU4) Query(k uint64) (uint64, Token, bool) {
	v, ok := p.arr.Lookup(k)
	return v, NoToken, ok
}

// ConcurrentQuery implements ConcurrentReader.
func (p *FlatP4LRU4) ConcurrentQuery() bool { return true }

// Update implements Cache. P4LRU always admits.
func (p *FlatP4LRU4) Update(k, v uint64, _ Token, _ time.Duration) Result {
	return fromLRU(p.arr.Update(k, v))
}

// UpdateBatch implements BatchUpdater via the core's batched slab walk.
func (p *FlatP4LRU4) UpdateBatch(ops []Op) {
	if cap(p.keys) < len(ops) {
		p.keys = make([]uint64, len(ops))
		p.vals = make([]uint64, len(ops))
	}
	keys, vals := p.keys[:len(ops)], p.vals[:len(ops)]
	for i := range ops {
		keys[i] = ops[i].Key
		vals[i] = ops[i].Value
	}
	p.arr.UpdateBatch(keys, vals)
}

// UpdateBatchEvict implements EvictBatchUpdater with per-op flat updates.
func (p *FlatP4LRU4) UpdateBatchEvict(ops []Op, onEvict func(key, val uint64)) {
	for i := range ops {
		r := p.arr.Update(ops[i].Key, ops[i].Value)
		if r.Evicted {
			onEvict(r.EvictedKey, r.EvictedValue)
		}
	}
}

// Len implements Cache.
func (p *FlatP4LRU4) Len() int { return p.arr.Len() }

// Capacity implements Cache.
func (p *FlatP4LRU4) Capacity() int { return p.arr.Capacity() }

// Range implements Cache.
func (p *FlatP4LRU4) Range(fn func(k, v uint64) bool) { p.arr.Range(fn) }

// Flat exposes the underlying flat array.
func (p *FlatP4LRU4) Flat() *lru.FlatArray4 { return p.arr }
