package sketch

import (
	"math/rand"
	"testing"
	"time"
)

func TestTowerNeverUndercounts(t *testing.T) {
	tw := NewTower([]int{1 << 12, 1 << 11}, []uint{8, 16}, 0, 1)
	truth := map[uint64]uint32{}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		k := uint64(r.Intn(3000))
		d := uint32(r.Intn(100) + 1)
		truth[k] += d
		tw.Add(k, d, 0)
	}
	for k, want := range truth {
		got := tw.Estimate(k, 0)
		// One-sided within saturation: an estimate below truth is only
		// legal when the truth exceeds what the widest counter can hold.
		if got < want && want <= 65535 {
			t.Fatalf("key %d: estimate %d < truth %d", k, got, want)
		}
	}
}

func TestTowerSaturation(t *testing.T) {
	tw := NewTower([]int{16, 8}, []uint{8, 16}, 0, 1)
	// Push one key past the 8-bit limit: the 16-bit level must take over.
	var est uint32
	for i := 0; i < 30; i++ {
		est = tw.Add(42, 100, 0)
	}
	if est != 3000 {
		t.Errorf("estimate after 30×100 = %d, want 3000 (8-bit row saturated)", est)
	}
	// Past the 16-bit limit too: estimate pins at the widest saturation.
	for i := 0; i < 700; i++ {
		est = tw.Add(42, 100, 0)
	}
	if est != 65535 {
		t.Errorf("fully saturated estimate = %d, want 65535", est)
	}
}

func TestTowerPeriodicReset(t *testing.T) {
	period := 10 * time.Millisecond
	tw := NewTowerDefault(0.001, period, 1)
	tw.Add(7, 500, 0)
	if got := tw.Estimate(7, time.Millisecond); got < 500 {
		t.Fatalf("same interval estimate = %d", got)
	}
	// Next interval: counter lazily resets.
	if got := tw.Add(7, 100, period+time.Millisecond); got != 100 {
		t.Errorf("post-reset estimate = %d, want 100", got)
	}
	// Estimate without Add also sees the stale epoch as zeroed.
	tw2 := NewTowerDefault(0.001, period, 2)
	tw2.Add(9, 300, 0)
	if got := tw2.Estimate(9, 3*period); got != 0 {
		t.Errorf("stale-epoch Estimate = %d, want 0", got)
	}
}

func TestTowerEstimateReadOnly(t *testing.T) {
	tw := NewTowerDefault(0.001, 0, 1)
	tw.Add(5, 100, 0)
	a := tw.Estimate(5, 0)
	b := tw.Estimate(5, 0)
	if a != b || a != 100 {
		t.Errorf("repeated estimates differ or wrong: %d, %d", a, b)
	}
}

func TestCountMinNeverUndercounts(t *testing.T) {
	cm := NewCountMin(2, 1<<12, 0, 3)
	truth := map[uint64]uint32{}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		k := uint64(r.Intn(3000))
		d := uint32(r.Intn(1500) + 1)
		truth[k] += d
		cm.Add(k, d, 0)
	}
	for k, want := range truth {
		if got := cm.Estimate(k, 0); got < want {
			t.Fatalf("key %d: estimate %d < truth %d", k, got, want)
		}
	}
}

func TestCUNeverUndercountsAndBeatsCM(t *testing.T) {
	cm := NewCountMin(2, 1<<10, 0, 4)
	cu := NewCU(2, 1<<10, 0, 4)
	truth := map[uint64]uint32{}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 40000; i++ {
		k := uint64(r.Intn(5000))
		d := uint32(r.Intn(100) + 1)
		truth[k] += d
		cm.Add(k, d, 0)
		cu.Add(k, d, 0)
	}
	var cmErr, cuErr float64
	for k, want := range truth {
		cuGot := cu.Estimate(k, 0)
		if cuGot < want {
			t.Fatalf("CU undercounts key %d: %d < %d", k, cuGot, want)
		}
		cmErr += float64(cm.Estimate(k, 0) - want)
		cuErr += float64(cuGot - want)
	}
	if cuErr > cmErr {
		t.Errorf("CU total error %.0f exceeds CM %.0f", cuErr, cmErr)
	}
}

func TestCountMinReset(t *testing.T) {
	period := time.Millisecond
	cm := NewCountMin(2, 256, period, 5)
	cm.Add(1, 1000, 0)
	if got := cm.Add(1, 50, 5*period); got != 50 {
		t.Errorf("post-reset add = %d, want 50", got)
	}
}

func TestEpochWraps(t *testing.T) {
	// 8-bit epochs wrap at 256 intervals; a counter untouched for exactly
	// 256 intervals aliases — that is the documented data-plane behaviour,
	// but touching each interval must keep resetting.
	period := time.Millisecond
	cm := NewCountMin(1, 16, period, 6)
	for i := 0; i < 600; i++ {
		got := cm.Add(3, 7, time.Duration(i)*period)
		if got != 7 {
			t.Fatalf("interval %d: estimate %d, want 7 (reset each interval)", i, got)
		}
	}
}

func TestMemoryBytes(t *testing.T) {
	tw := NewTower([]int{1 << 20, 1 << 19}, []uint{8, 16}, 0, 1)
	want := 1<<20 + (1<<19)*2
	if got := tw.MemoryBytes(); got != want {
		t.Errorf("tower memory = %d, want %d", got, want)
	}
	cm := NewCountMin(2, 1000, 0, 1)
	if got := cm.MemoryBytes(); got != 8000 {
		t.Errorf("cm memory = %d, want 8000", got)
	}
}

func TestNames(t *testing.T) {
	if NewTowerDefault(0.01, 0, 1).Name() != "tower" {
		t.Error("tower name")
	}
	if NewCountMin(1, 1, 0, 1).Name() != "cm" {
		t.Error("cm name")
	}
	if NewCU(1, 1, 0, 1).Name() != "cu" {
		t.Error("cu name")
	}
}

func TestConstructorValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"tower-empty":    func() { NewTower(nil, nil, 0, 1) },
		"tower-mismatch": func() { NewTower([]int{4}, []uint{8, 16}, 0, 1) },
		"row-width":      func() { NewCountMin(1, 0, 0, 1) },
		"cm-depth":       func() { NewCountMin(0, 4, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestTowerAccuracyOnSkewedStream: mouse flows must mostly stay below an
// elephant threshold while elephants exceed it — the filter property LruMon
// relies on.
func TestTowerFilterSeparation(t *testing.T) {
	tw := NewTowerDefault(0.01, 0, 7) // ~10k counters
	r := rand.New(rand.NewSource(4))
	// 100 elephants × 100 packets × 1500B; 5000 mice × 1 packet × 64B.
	type pkt struct {
		k uint64
		s uint32
	}
	var pkts []pkt
	for e := 0; e < 100; e++ {
		for i := 0; i < 100; i++ {
			pkts = append(pkts, pkt{uint64(e), 1500})
		}
	}
	for m := 0; m < 5000; m++ {
		pkts = append(pkts, pkt{uint64(1000 + m), 64})
	}
	r.Shuffle(len(pkts), func(i, j int) { pkts[i], pkts[j] = pkts[j], pkts[i] })
	const threshold = 3000
	elephantPass := map[uint64]bool{}
	mousePass := 0
	for _, p := range pkts {
		if tw.Add(p.k, p.s, 0) >= threshold {
			if p.k < 1000 {
				elephantPass[p.k] = true
			} else {
				mousePass++
			}
		}
	}
	if len(elephantPass) != 100 {
		t.Errorf("only %d/100 elephants passed the filter", len(elephantPass))
	}
	if mousePass > 250 { // a few collisions are expected
		t.Errorf("%d mouse packets passed the filter", mousePass)
	}
}

func BenchmarkTowerAdd(b *testing.B) {
	tw := NewTowerDefault(1, 10*time.Millisecond, 1)
	for i := 0; i < b.N; i++ {
		tw.Add(uint64(i%100000), 1500, time.Duration(i)*time.Microsecond)
	}
}

func BenchmarkCUAdd(b *testing.B) {
	cu := NewCU(2, 1<<19, 10*time.Millisecond, 1)
	for i := 0; i < b.N; i++ {
		cu.Add(uint64(i%100000), 1500, time.Duration(i)*time.Microsecond)
	}
}
