package sketch_test

import (
	"fmt"
	"time"

	"github.com/p4lru/p4lru/internal/sketch"
)

// The Tower filter estimates per-interval flow bytes; counters lazily reset
// each period, so mouse traffic never accumulates past the threshold.
func ExampleTower() {
	reset := 10 * time.Millisecond
	tw := sketch.NewTowerDefault(0.01, reset, 1)

	// An elephant sends ten full-size packets in one interval.
	var est uint32
	for i := 0; i < 10; i++ {
		est = tw.Add(0xe1e, 1500, 0)
	}
	fmt.Println("elephant estimate:", est, "≥ threshold:", est >= 1500)

	// Next interval: the counter starts over.
	fmt.Println("after reset:", tw.Add(0xe1e, 1500, reset+time.Millisecond))
	// Output:
	// elephant estimate: 15000 ≥ threshold: true
	// after reset: 1500
}
