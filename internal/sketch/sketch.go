// Package sketch implements the approximate counting structures LruMon uses
// to filter mouse flows (§3.3): TowerSketch (the paper's default), the
// Count-Min sketch, and the conservative-update (CU) sketch.
//
// Every sketch supports the data-plane reset discipline of §3.3: each counter
// carries an 8-bit epoch timestamp and is lazily zeroed the first time it is
// touched in a new reset interval — the millisecond-scale "periodic counter
// reset" that bounds how much mouse traffic accumulates. Estimates within an
// interval never under-count a flow (they are one-sided, which is what makes
// LruMon's maximum per-flow error provably at most the filter threshold).
package sketch

import (
	"fmt"
	"time"

	"github.com/p4lru/p4lru/internal/hashing"
)

// Filter is the interface LruMon expects from its pre-filter.
type Filter interface {
	// Add credits delta bytes to key at time now and returns the estimated
	// byte count of key within the current reset interval (including delta).
	Add(key uint64, delta uint32, now time.Duration) uint32
	// Estimate returns the current-interval estimate without modifying
	// counters.
	Estimate(key uint64, now time.Duration) uint32
	// MemoryBytes reports counter memory for equal-memory comparisons.
	MemoryBytes() int
	// Name identifies the filter in experiment output.
	Name() string
}

// counterRow is one array of saturating counters with lazy epoch reset.
type counterRow struct {
	vals   []uint32
	epochs []uint8
	max    uint32 // saturation value (255 for 8-bit, 65535 for 16-bit, ...)
	hash   hashing.Hash
}

func newCounterRow(width int, bits uint, seed uint64) *counterRow {
	if width < 1 {
		panic(fmt.Sprintf("sketch: row width %d", width))
	}
	if bits < 1 || bits > 32 {
		panic(fmt.Sprintf("sketch: counter bits %d", bits))
	}
	return &counterRow{
		vals:   make([]uint32, width),
		epochs: make([]uint8, width),
		max:    uint32(1<<bits - 1),
		hash:   hashing.New(seed),
	}
}

// touch lazily resets the counter if its epoch is stale and returns its index.
func (r *counterRow) touch(key uint64, epoch uint8) int {
	i := r.hash.Index(key, len(r.vals))
	if r.epochs[i] != epoch {
		r.epochs[i] = epoch
		r.vals[i] = 0
	}
	return i
}

func (r *counterRow) add(key uint64, delta uint32, epoch uint8) uint32 {
	i := r.touch(key, epoch)
	v := r.vals[i]
	if v > r.max-delta || v+delta > r.max { // saturating add
		v = r.max
	} else {
		v += delta
	}
	r.vals[i] = v
	return v
}

// read returns the counter value, treating a stale epoch as zero. It does
// not modify state.
func (r *counterRow) read(key uint64, epoch uint8) uint32 {
	i := r.hash.Index(key, len(r.vals))
	if r.epochs[i] != epoch {
		return 0
	}
	return r.vals[i]
}

// epochOf maps a timestamp to the 8-bit epoch counter the data plane keeps.
func epochOf(now, period time.Duration) uint8 {
	if period <= 0 {
		return 0
	}
	return uint8(now / period)
}

// Tower is the TowerSketch: stacked counter arrays of halving width and
// doubling counter bits (the paper's C1: 2^20 8-bit counters over
// C2: 2^19 16-bit counters). The estimate is the minimum across levels,
// treating saturated counters as unbounded.
type Tower struct {
	rows        []*counterRow
	resetPeriod time.Duration
}

// NewTower builds a TowerSketch. widths[i] counters of bits[i] bits per
// level. resetPeriod ≤ 0 disables periodic reset.
func NewTower(widths []int, bits []uint, resetPeriod time.Duration, seed uint64) *Tower {
	if len(widths) == 0 || len(widths) != len(bits) {
		panic("sketch: tower needs matching non-empty widths and bits")
	}
	t := &Tower{resetPeriod: resetPeriod}
	for i := range widths {
		t.rows = append(t.rows, newCounterRow(widths[i], bits[i], seed+uint64(i)*7919))
	}
	return t
}

// NewTowerDefault builds the paper's LruMon configuration scaled by factor f:
// 2^20·f 8-bit counters and 2^19·f 16-bit counters.
func NewTowerDefault(f float64, resetPeriod time.Duration, seed uint64) *Tower {
	w1 := int(float64(1<<20) * f)
	w2 := int(float64(1<<19) * f)
	if w1 < 1 {
		w1 = 1
	}
	if w2 < 1 {
		w2 = 1
	}
	return NewTower([]int{w1, w2}, []uint{8, 16}, resetPeriod, seed)
}

// Name implements Filter.
func (t *Tower) Name() string { return "tower" }

// Add implements Filter.
func (t *Tower) Add(key uint64, delta uint32, now time.Duration) uint32 {
	epoch := epochOf(now, t.resetPeriod)
	est := ^uint32(0)
	for _, r := range t.rows {
		v := r.add(key, delta, epoch)
		if v < r.max && v < est { // saturated ⇒ unbounded
			est = v
		}
	}
	if est == ^uint32(0) {
		// Every level saturated: report the largest saturation bound.
		for _, r := range t.rows {
			if r.max > 0 && (est == ^uint32(0) || r.max > est) {
				est = r.max
			}
		}
	}
	return est
}

// Estimate implements Filter.
func (t *Tower) Estimate(key uint64, now time.Duration) uint32 {
	epoch := epochOf(now, t.resetPeriod)
	est := ^uint32(0)
	for _, r := range t.rows {
		v := r.read(key, epoch)
		if v < r.max && v < est {
			est = v
		}
	}
	if est == ^uint32(0) {
		for _, r := range t.rows {
			if r.max > est || est == ^uint32(0) {
				est = r.max
			}
		}
	}
	return est
}

// MemoryBytes implements Filter.
func (t *Tower) MemoryBytes() int {
	total := 0
	for _, r := range t.rows {
		bits := 0
		for m := r.max; m > 0; m >>= 1 {
			bits++
		}
		total += len(r.vals) * bits / 8
	}
	return total
}

// CountMin is the classical Count-Min sketch: d rows of w 32-bit counters,
// estimate = min over rows.
type CountMin struct {
	rows         []*counterRow
	resetPeriod  time.Duration
	conservative bool
}

// NewCountMin builds a d×w Count-Min sketch.
func NewCountMin(d, w int, resetPeriod time.Duration, seed uint64) *CountMin {
	if d < 1 {
		panic(fmt.Sprintf("sketch: count-min depth %d", d))
	}
	cm := &CountMin{resetPeriod: resetPeriod}
	for i := 0; i < d; i++ {
		cm.rows = append(cm.rows, newCounterRow(w, 32, seed+uint64(i)*104729))
	}
	return cm
}

// NewCU builds a conservative-update sketch: identical shape to Count-Min,
// but Add only increments the rows currently at the minimum, halving typical
// overestimation.
func NewCU(d, w int, resetPeriod time.Duration, seed uint64) *CountMin {
	cm := NewCountMin(d, w, resetPeriod, seed)
	cm.conservative = true
	return cm
}

// Name implements Filter.
func (c *CountMin) Name() string {
	if c.conservative {
		return "cu"
	}
	return "cm"
}

// Add implements Filter.
func (c *CountMin) Add(key uint64, delta uint32, now time.Duration) uint32 {
	epoch := epochOf(now, c.resetPeriod)
	if !c.conservative {
		est := ^uint32(0)
		for _, r := range c.rows {
			if v := r.add(key, delta, epoch); v < est {
				est = v
			}
		}
		return est
	}
	// Conservative update: raise every counter to at most min+delta.
	idx := make([]int, len(c.rows))
	min := ^uint32(0)
	for i, r := range c.rows {
		idx[i] = r.touch(key, epoch)
		if v := r.vals[idx[i]]; v < min {
			min = v
		}
	}
	target := min + delta
	for i, r := range c.rows {
		if r.vals[idx[i]] < target {
			r.vals[idx[i]] = target
		}
	}
	return target
}

// Estimate implements Filter.
func (c *CountMin) Estimate(key uint64, now time.Duration) uint32 {
	epoch := epochOf(now, c.resetPeriod)
	est := ^uint32(0)
	for _, r := range c.rows {
		if v := r.read(key, epoch); v < est {
			est = v
		}
	}
	return est
}

// MemoryBytes implements Filter.
func (c *CountMin) MemoryBytes() int {
	total := 0
	for _, r := range c.rows {
		total += len(r.vals) * 4
	}
	return total
}

var (
	_ Filter = (*Tower)(nil)
	_ Filter = (*CountMin)(nil)
)
