package obs

import (
	"runtime"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}

	// A nil counter is a valid no-op handle.
	var nilC *Counter
	nilC.Inc()
	nilC.Add(7)
	if got := nilC.Value(); got != 0 {
		t.Fatalf("nil Value = %d, want 0", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("Value = %v, want 2.5", got)
	}
	g.Add(-1.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("Value = %v, want 1", got)
	}

	var nilG *Gauge
	nilG.Set(3)
	nilG.Add(1)
	if got := nilG.Value(); got != 0 {
		t.Fatalf("nil Value = %v, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 556.5 {
		t.Fatalf("Sum = %v, want 556.5", got)
	}
	bounds, counts := h.snapshot()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("snapshot shape: %d bounds, %d counts", len(bounds), len(counts))
	}
	// Bucket semantics: le=1 gets {0.5, 1}, le=10 gets {5}, le=100 gets
	// {50}, overflow gets {500}.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, counts[i], w, counts)
		}
	}

	var nilH *Histogram
	nilH.Observe(1)
	if nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil histogram should be a no-op")
	}
}

func TestHistogramSortsBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{100, 1, 10})
	h.Observe(5)
	bounds, counts := h.snapshot()
	if bounds[0] != 1 || bounds[1] != 10 || bounds[2] != 100 {
		t.Fatalf("bounds not sorted: %v", bounds)
	}
	if counts[1] != 1 {
		t.Fatalf("5 should land in le=10, counts %v", counts)
	}
}

func TestExponentialBuckets(t *testing.T) {
	got := ExponentialBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExponentialBuckets = %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExponentialBuckets(0, 2, 3) should panic")
		}
	}()
	ExponentialBuckets(0, 2, 3)
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total")
	c2 := r.Counter("x_total")
	if c1 != c2 {
		t.Fatal("Counter should return the same handle for the same name")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge should return the same handle for the same name")
	}
	h1 := r.Histogram("h", []float64{1, 2})
	h2 := r.Histogram("h", []float64{5, 6, 7}) // bounds fixed at first registration
	if h1 != h2 {
		t.Fatal("Histogram should return the same handle for the same name")
	}
	bounds, _ := h2.snapshot()
	if len(bounds) != 2 || bounds[0] != 1 {
		t.Fatalf("bounds changed on re-registration: %v", bounds)
	}

	// A nil registry hands out nil (no-op) handles.
	var nilR *Registry
	if nilR.Counter("c") != nil || nilR.Gauge("g") != nil || nilR.Histogram("h", nil) != nil {
		t.Fatal("nil registry should return nil handles")
	}
	nilR.GaugeFunc("f", func() float64 { return 1 })
	if nilR.CounterValue("c") != 0 || nilR.SumCounters("") != 0 {
		t.Fatal("nil registry reads should be 0")
	}
}

func TestCounterValueAndSum(t *testing.T) {
	r := NewRegistry()
	r.Counter(`nat_hits_total`).Add(3)
	r.Counter(`nat_misses_total`).Add(4)
	r.Counter(`telemetry_packets_total`).Add(100)
	if got := r.CounterValue("nat_hits_total"); got != 3 {
		t.Fatalf("CounterValue = %d, want 3", got)
	}
	if got := r.CounterValue("absent_total"); got != 0 {
		t.Fatalf("CounterValue(absent) = %d, want 0", got)
	}
	if got := r.SumCounters("nat_"); got != 7 {
		t.Fatalf("SumCounters(nat_) = %d, want 7", got)
	}
	if got := r.SumCounters(""); got != 107 {
		t.Fatalf("SumCounters(\"\") = %d, want 107", got)
	}
}

// TestConcurrentUpdates hammers one registry from GOMAXPROCS goroutines; run
// under -race it checks the lock-free hot path and the get-or-create lock.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 10_000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hammer_total")
			g := r.Gauge("hammer_gauge")
			h := r.Histogram("hammer_hist", []float64{0.25, 0.5, 0.75})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) / 4)
				if i%1000 == 0 { // exercise concurrent readers too
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()

	want := uint64(workers * perWorker)
	if got := r.CounterValue("hammer_total"); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if got := r.Gauge("hammer_gauge").Value(); got != float64(want) {
		t.Fatalf("gauge = %v, want %d", got, want)
	}
	if got := r.Histogram("hammer_hist", nil).Count(); got != want {
		t.Fatalf("histogram count = %d, want %d", got, want)
	}
}

// TestHotPathAllocs pins the zero-allocation guarantee of the instrumented
// hot path: resolved handles must not allocate on update, including the nil
// (uninstrumented) handles.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 2, 4, 8})
	var nilC *Counter
	var nilH *Histogram

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(1) }},
		{"Histogram.Observe", func() { h.Observe(3) }},
		{"nil Counter.Inc", func() { nilC.Inc() }},
		{"nil Histogram.Observe", func() { nilH.Observe(3) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(100, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_hist", ExponentialBuckets(1e-6, 2, 12))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}
