// Package obs is the repository's observability substrate: cheap atomic
// counters, gauges and fixed-bucket histograms organized in named registries,
// plus a virtual-time event tracer (ring buffer) and exporters (Prometheus
// text format, JSON snapshot, expvar, HTTP with pprof).
//
// Design constraints, in order:
//
//   - The hot path is O(1) and allocation-free. Metric handles are resolved
//     once (get-or-create under a lock) and then updated with a single atomic
//     instruction; instrumented code holds *Counter/*Gauge/*Histogram
//     pointers and nil-checks them, so the uninstrumented path costs one
//     predictable branch and nothing else.
//   - Dependency-free: standard library only, and no imports of other
//     internal packages — internal/pipeline, internal/simnet and the three
//     systems all import obs, never the reverse.
//   - Metric names follow Prometheus conventions (`snake_case`, `_total`
//     suffix on counters) and may embed a label set verbatim, e.g.
//     `pipeline_register_accesses_total{program="lrutable",register="nat.key1"}`.
//     The registry treats the full string as the identity; the exporter
//     splits base name from labels when emitting TYPE lines.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can go up and down. It stores the
// float64 bit pattern atomically.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d (CAS loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: cumulative observation counts per
// upper bound plus a sum. Buckets are chosen at registration time and never
// change, so Observe is a short linear scan plus two atomic adds.
type Histogram struct {
	bounds []float64 // ascending finite upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bit pattern, CAS-accumulated
	count  atomic.Uint64
	exVal  atomic.Uint64 // exemplar value, float64 bit pattern
	exID   atomic.Uint64 // exemplar span id (0 = none attached yet)
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// AttachExemplar pins a representative observation to the histogram: the
// value and the span ID of a captured trace that exhibits it. The exporter
// surfaces the pair so a scraped quantile can be chased back to a concrete
// waterfall on /debug/ops. Last writer wins — two atomic stores, no lock,
// safe (and cheap) from the record path.
func (h *Histogram) AttachExemplar(v float64, spanID uint64) {
	if h == nil || spanID == 0 {
		return
	}
	h.exVal.Store(math.Float64bits(v))
	h.exID.Store(spanID)
}

// Exemplar returns the last attached (value, span ID), or ok=false if none
// was ever attached.
func (h *Histogram) Exemplar() (v float64, spanID uint64, ok bool) {
	if h == nil {
		return 0, 0, false
	}
	id := h.exID.Load()
	if id == 0 {
		return 0, 0, false
	}
	return math.Float64frombits(h.exVal.Load()), id, true
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot returns (finite bounds, per-bucket counts incl. overflow).
func (h *Histogram) snapshot() ([]float64, []uint64) {
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.bounds, counts
}

// DefBuckets is a general-purpose latency bucket ladder in seconds,
// mirroring the Prometheus client default.
var DefBuckets = []float64{
	.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// Label renders one `key="value"` label pair with the value escaped per the
// Prometheus text exposition rules (backslash, double quote, newline), for
// embedding in metric names: r.Counter("hits_total{" + obs.Label("store", spec) + "}").
func Label(key, value string) string {
	var b strings.Builder
	b.Grow(len(key) + len(value) + 3)
	b.WriteString(key)
	b.WriteString(`="`)
	for i := 0; i < len(value); i++ {
		switch c := value[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// ExponentialBuckets returns n bounds starting at start, multiplying by
// factor: the usual way to cover several decades of latency or size.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: bad ExponentialBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Registry is a named set of metrics. Lookup is get-or-create and safe for
// concurrent use; the returned handles are the hot-path API.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	gaugeFns map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		gaugeFns: make(map[string]func() float64),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the CLIs serve.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it if absent.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if absent.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given finite upper bounds (ascending) if absent. Bounds are fixed at
// first registration; later calls with different bounds return the original.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if len(bounds) == 0 {
			bounds = DefBuckets
		}
		bs := make([]float64, len(bounds))
		copy(bs, bounds)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers a gauge whose value is computed at export time —
// occupancy readouts and other derived quantities that would be wasteful to
// maintain on the hot path. Re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFns[name] = fn
	r.mu.Unlock()
}

// CounterValue returns the value of a registered counter (0 if absent) —
// an exporter-side convenience for progress reporting.
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	return c.Value()
}

// SumCounters returns the summed value of every registered counter whose
// full name starts with prefix.
func (r *Registry) SumCounters(prefix string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total uint64
	for name, c := range r.counters {
		if strings.HasPrefix(name, prefix) {
			total += c.Value()
		}
	}
	return total
}
