package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTracerBasic(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(1*time.Microsecond, "a", 1)
	tr.Record(2*time.Microsecond, "b", 2)
	if tr.Len() != 2 || tr.Total() != 2 {
		t.Fatalf("Len=%d Total=%d, want 2, 2", tr.Len(), tr.Total())
	}
	evs := tr.Events()
	if evs[0].Kind != "a" || evs[1].Kind != "b" {
		t.Fatalf("order wrong: %+v", evs)
	}
}

func TestTracerWrap(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Record(time.Duration(i)*time.Millisecond, "ev", uint64(i))
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.Total() != 5 {
		t.Fatalf("Total = %d, want 5", tr.Total())
	}
	evs := tr.Events()
	// After wrapping, the buffer holds the last 3 events oldest-first.
	for i, want := range []uint64{2, 3, 4} {
		if evs[i].Payload != want {
			t.Fatalf("Events() = %+v, want payloads [2 3 4]", evs)
		}
	}
}

func TestTracerNil(t *testing.T) {
	var tr *Tracer
	tr.Record(time.Second, "x", 1) // must not panic
	if tr.Len() != 0 || tr.Total() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer should be a no-op")
	}
	if err := tr.Dump(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestTracerDump(t *testing.T) {
	tr := NewTracer(4)
	tr.Record(1500*time.Microsecond, "nat.slowpath.issue", 42)
	var b strings.Builder
	if err := tr.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "1.5ms") || !strings.Contains(out, "nat.slowpath.issue") || !strings.Contains(out, "42") {
		t.Fatalf("Dump output missing fields:\n%s", out)
	}
}

func TestTracerMinCapacity(t *testing.T) {
	tr := NewTracer(0) // clamps to 1
	tr.Record(0, "a", 0)
	tr.Record(0, "b", 0)
	if tr.Len() != 1 || tr.Events()[0].Kind != "b" {
		t.Fatalf("capacity-1 tracer should keep only the newest event: %+v", tr.Events())
	}
}
