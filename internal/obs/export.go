package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Exemplar links a histogram to one concrete captured trace: a recorded
// value plus the span ID of the operation that produced it (resolvable on
// the /debug/ops endpoint).
type Exemplar struct {
	Value  float64 `json:"value"`
	SpanID uint64  `json:"span_id"`
}

// HistogramSnapshot is the exportable state of one histogram. Bounds holds
// the finite upper bounds; Counts has one extra trailing entry for the
// overflow (+Inf) bucket. The representation is JSON-safe (no ±Inf).
type HistogramSnapshot struct {
	Count    uint64    `json:"count"`
	Sum      float64   `json:"sum"`
	Bounds   []float64 `json:"bounds"`
	Counts   []uint64  `json:"counts"`
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Quantile estimates the q-quantile (0 < q < 1) of the recorded
// distribution by linear interpolation inside the containing bucket —
// Prometheus's histogram_quantile. The overflow bucket has no upper edge,
// so a quantile landing there reports the largest finite bound (a known
// underestimate). An empty histogram reports 0.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 || len(h.Counts) != len(h.Bounds)+1 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	cum := 0.0
	for i, n := range h.Counts {
		prev := cum
		cum += float64(n)
		if cum < target || n == 0 {
			continue
		}
		if i == len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		return lo + (h.Bounds[i]-lo)*(target-prev)/float64(n)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a point-in-time copy of a registry, the payload of the JSON
// exporter and the expvar publisher. Function gauges are evaluated at
// snapshot time and folded into Gauges.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	fns := make(map[string]func() float64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		fns[k] = v
	}
	r.mu.RUnlock()

	for name, c := range counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range fns {
		s.Gauges[name] = fn() // functions are evaluated outside the lock
	}
	for name, h := range hists {
		bounds, counts := h.snapshot()
		bs := make([]float64, len(bounds))
		copy(bs, bounds)
		hs := HistogramSnapshot{
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: bs,
			Counts: counts,
		}
		if v, id, ok := h.Exemplar(); ok {
			hs.Exemplar = &Exemplar{Value: v, SpanID: id}
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// splitName separates a metric name from its embedded label set:
// `foo_total{a="b"}` → (`foo_total`, `a="b"`).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// withLabel re-joins a base name with a label set plus one extra pair.
func withLabel(base, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return base
	case labels == "":
		return base + "{" + extra + "}"
	case extra == "":
		return base + "{" + labels + "}"
	}
	return base + "{" + labels + "," + extra + "}"
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): `# TYPE` per metric family, histograms as
// cumulative `_bucket`/`_sum`/`_count` series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder

	typed := map[string]bool{} // one TYPE line per family
	emitType := func(family, kind string) {
		if !typed[family] {
			typed[family] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", family, kind)
		}
	}

	for _, name := range sortedKeys(s.Counters) {
		base, _ := splitName(name)
		emitType(base, "counter")
		fmt.Fprintf(&b, "%s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		base, _ := splitName(name)
		emitType(base, "gauge")
		fmt.Fprintf(&b, "%s %s\n", name, formatFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		base, labels := splitName(name)
		emitType(base, "histogram")
		cum := uint64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			le := `le="` + formatFloat(bound) + `"`
			fmt.Fprintf(&b, "%s %d\n", withLabel(base+"_bucket", labels, le), cum)
		}
		fmt.Fprintf(&b, "%s %d\n", withLabel(base+"_bucket", labels, `le="+Inf"`), h.Count)
		fmt.Fprintf(&b, "%s %s\n", withLabel(base+"_sum", labels, ""), formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s %d\n", withLabel(base+"_count", labels, ""), h.Count)
		if ex := h.Exemplar; ex != nil {
			// Exemplars are emitted as a comment so version-0.0.4 text
			// parsers (which predate OpenMetrics '#' exemplar syntax on the
			// sample line) stay compatible; humans and our own tools read it.
			fmt.Fprintf(&b, "# exemplar %s %s span_id=%d\n",
				name, formatFloat(ex.Value), ex.SpanID)
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PublishExpvar exposes the registry under the given expvar name (visible on
// /debug/vars). Publishing the same name twice is a no-op rather than the
// expvar panic, so tests and multiple CLIs can share the default registry.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	reg := r
	expvar.Publish(name, expvar.Func(func() interface{} { return reg.Snapshot() }))
}
