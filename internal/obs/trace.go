package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one traced occurrence at a virtual-time instant: the simulators
// stamp events with the discrete-event clock (internal/simnet), not wall
// time, so traces are deterministic across runs.
type Event struct {
	VTime   time.Duration `json:"vtime"`
	Kind    string        `json:"kind"`
	Payload uint64        `json:"payload"`
}

// Tracer is a fixed-capacity ring buffer of events: recording never
// allocates after construction and never blocks a simulation on I/O; when
// the buffer wraps, the oldest events are overwritten. A nil *Tracer is a
// valid no-op recorder, so call sites need no nil checks.
type Tracer struct {
	mu    sync.Mutex
	buf   []Event
	next  int    // write cursor
	total uint64 // events ever recorded (≥ len(buf) once wrapped)
}

// NewTracer returns a tracer holding the last `capacity` events.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Record appends an event. Safe on a nil tracer (no-op).
func (t *Tracer) Record(vt time.Duration, kind string, payload uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, Event{VTime: vt, Kind: kind, Payload: payload})
	} else {
		t.buf[t.next] = Event{VTime: vt, Kind: kind, Payload: payload}
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.total++
	t.mu.Unlock()
}

// Total returns how many events were ever recorded (including overwritten
// ones).
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Len returns how many events are currently buffered.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Events returns the buffered events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if len(t.buf) == cap(t.buf) { // wrapped: oldest is at the write cursor
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Dump writes the buffered events as one line each: `vtime kind payload`.
func (t *Tracer) Dump(w io.Writer) error {
	for _, ev := range t.Events() {
		if _, err := fmt.Fprintf(w, "%12v  %-28s %d\n", ev.VTime, ev.Kind, ev.Payload); err != nil {
			return err
		}
	}
	return nil
}
