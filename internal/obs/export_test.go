package obs

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func testRegistry() *Registry {
	r := NewRegistry()
	r.Counter(`pipeline_cache_hits_total{array="nat"}`).Add(7)
	r.Counter(`pipeline_cache_misses_total{array="nat"}`).Add(2)
	r.Gauge("occupancy").Set(3.5)
	r.GaugeFunc("derived", func() float64 { return 9 })
	h := r.Histogram(`latency_seconds{sys="kv"}`, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	return r
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := testRegistry()
	want := r.Snapshot()

	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal([]byte(buf.String()), &got); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch\n got: %+v\nwant: %+v", got, want)
	}
	if got.Gauges["derived"] != 9 {
		t.Fatalf("function gauge not folded in: %+v", got.Gauges)
	}
}

func TestWritePrometheus(t *testing.T) {
	var buf strings.Builder
	if err := testRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	want := []string{
		"# TYPE pipeline_cache_hits_total counter",
		`pipeline_cache_hits_total{array="nat"} 7`,
		`pipeline_cache_misses_total{array="nat"} 2`,
		"# TYPE occupancy gauge",
		"occupancy 3.5",
		"derived 9",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{sys="kv",le="0.1"} 1`,
		`latency_seconds_bucket{sys="kv",le="1"} 2`, // cumulative
		`latency_seconds_bucket{sys="kv",le="+Inf"} 3`,
		`latency_seconds_sum{sys="kv"} 5.55`,
		`latency_seconds_count{sys="kv"} 3`,
	}
	for _, line := range want {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("missing line %q in output:\n%s", line, got)
		}
	}
	// Exactly one TYPE line per family even with multiple labeled series.
	if n := strings.Count(got, "# TYPE pipeline_cache_hits_total"); n != 1 {
		t.Errorf("%d TYPE lines for pipeline_cache_hits_total, want 1", n)
	}
}

func TestSplitName(t *testing.T) {
	cases := []struct{ in, base, labels string }{
		{"plain_total", "plain_total", ""},
		{`x_total{a="b"}`, "x_total", `a="b"`},
		{`x_total{a="b",c="d"}`, "x_total", `a="b",c="d"`},
		{"weird{", "weird{", ""}, // unterminated: left alone
	}
	for _, tc := range cases {
		base, labels := splitName(tc.in)
		if base != tc.base || labels != tc.labels {
			t.Errorf("splitName(%q) = (%q, %q), want (%q, %q)",
				tc.in, base, labels, tc.base, tc.labels)
		}
	}
	if got := withLabel("m", `a="b"`, `le="5"`); got != `m{a="b",le="5"}` {
		t.Errorf("withLabel = %q", got)
	}
	if got := withLabel("m", "", ""); got != "m" {
		t.Errorf("withLabel bare = %q", got)
	}
}

func TestNilRegistrySnapshot(t *testing.T) {
	var r *Registry
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestPublishExpvar(t *testing.T) {
	r := testRegistry()
	r.PublishExpvar("obs_test_reg")
	r.PublishExpvar("obs_test_reg") // second publish must not panic
	v := expvar.Get("obs_test_reg")
	if v == nil {
		t.Fatal("registry not published")
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(v.String()), &s); err != nil {
		t.Fatalf("expvar value is not a JSON snapshot: %v", err)
	}
	if s.Counters[`pipeline_cache_hits_total{array="nat"}`] != 7 {
		t.Fatalf("expvar snapshot wrong: %+v", s)
	}
}

func TestHandler(t *testing.T) {
	srv := httptest.NewServer(testRegistry().Handler())
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, `pipeline_cache_hits_total{array="nat"} 7`) {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	body, ct = get("/metrics.json")
	if ct != "application/json" {
		t.Errorf("/metrics.json content type = %q", ct)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(body), &s); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v", err)
	}

	if body, _ = get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestHistogramSnapshotQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", []float64{10, 20, 40, 80})
	// 10 samples in (10,20], 10 in (20,40].
	for i := 0; i < 10; i++ {
		h.Observe(15)
		h.Observe(30)
	}
	snap := r.Snapshot().Histograms["q"]

	if got := snap.Quantile(0.5); got != 20 {
		t.Errorf("Quantile(0.5) = %v, want 20 (bucket edge)", got)
	}
	if got := snap.Quantile(0.25); got != 15 {
		t.Errorf("Quantile(0.25) = %v, want 15 (interpolated)", got)
	}
	if got := snap.Quantile(0.75); got != 30 {
		t.Errorf("Quantile(0.75) = %v, want 30 (interpolated)", got)
	}
	if got := snap.Quantile(1); got != 40 {
		t.Errorf("Quantile(1) = %v, want 40", got)
	}

	// Quantiles landing in the overflow bucket report the largest finite
	// bound rather than inventing an upper edge.
	h.Observe(1000)
	snap = r.Snapshot().Histograms["q"]
	if got := snap.Quantile(0.999); got != 80 {
		t.Errorf("overflow Quantile = %v, want 80", got)
	}

	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
}
