package span

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// StageJSON is one waterfall segment of a dumped trace.
type StageJSON struct {
	Stage string  `json:"stage"`
	NS    int64   `json:"ns"`
	Frac  float64 `json:"frac"` // share of the op's total
}

// RecordJSON is the wire form of one captured trace on /debug/ops.
type RecordJSON struct {
	ID       uint64      `json:"id"`
	Kind     string      `json:"kind"`
	Key      uint64      `json:"key"`
	Shard    int32       `json:"shard"`
	Batch    uint16      `json:"batch,omitempty"`
	Attempts uint8       `json:"attempts,omitempty"`
	Flags    []string    `json:"flags,omitempty"`
	StartNS  int64       `json:"start_ns"` // ns since tracer start
	TotalNS  int64       `json:"total_ns"`
	StageSum int64       `json:"stage_sum_ns"`
	Stages   []StageJSON `json:"stages"` // zero-duration stages omitted
}

// OpsDump is the /debug/ops response body.
type OpsDump struct {
	Recorded      uint64       `json:"recorded"`       // spans finished since start
	Captured      uint64       `json:"captured"`       // spans written to rings
	TailThreshold float64      `json:"tail_threshold_seconds"`
	Ops           []RecordJSON `json:"ops"` // slowest first
}

// toJSON converts a Record for the dump.
func (r *Record) toJSON() RecordJSON {
	out := RecordJSON{
		ID:       r.ID,
		Kind:     r.Kind.String(),
		Key:      r.Key,
		Shard:    r.Shard,
		Batch:    r.Batch,
		Attempts: r.Attempts,
		Flags:    r.Flags.Names(),
		StartNS:  r.Start,
		TotalNS:  r.Total,
		StageSum: r.StageSum(),
	}
	for i := Stage(0); i < NumStages; i++ {
		if d := r.Stages[i]; d > 0 {
			frac := 0.0
			if r.Total > 0 {
				frac = float64(d) / float64(r.Total)
			}
			out.Stages = append(out.Stages, StageJSON{Stage: i.String(), NS: d, Frac: frac})
		}
	}
	return out
}

// Handler serves the captured traces as JSON waterfalls, slowest first.
// Query parameters: ?n=50 caps the count (default 50, max 1000);
// ?id=123 returns only the record with that capture ID (404 if it has
// already been overwritten).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		if idStr := req.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 10, 64)
			if err != nil {
				http.Error(w, "bad id", http.StatusBadRequest)
				return
			}
			for _, rec := range t.Snapshot() {
				if rec.ID == id {
					w.Header().Set("Content-Type", "application/json")
					enc := json.NewEncoder(w)
					enc.SetIndent("", "  ")
					_ = enc.Encode(rec.toJSON())
					return
				}
			}
			http.Error(w, "span not found (evicted from ring?)", http.StatusNotFound)
			return
		}

		n := 50
		if nStr := req.URL.Query().Get("n"); nStr != "" {
			if v, err := strconv.Atoi(nStr); err == nil && v > 0 {
				n = v
			}
		}
		if n > 1000 {
			n = 1000
		}

		recorded, captured := t.Stats()
		dump := OpsDump{
			Recorded:      recorded,
			Captured:      captured,
			TailThreshold: t.TailThreshold().Seconds(),
			Ops:           []RecordJSON{},
		}
		for _, rec := range t.Slowest(n) {
			rec := rec
			dump.Ops = append(dump.Ops, rec.toJSON())
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(dump)
	})
}

// Waterfall renders one record as a human-readable single line, e.g.
//
//	#12 miss key=42 shard=3 2.1ms [queue_wait 3% | fetch 92% | miss 5%] attempts=2 flags=retried,tail
//
// for logs and the console view.
func (r *Record) Waterfall() string {
	out := "#" + strconv.FormatUint(r.ID, 10) + " " + r.Kind.String() +
		" key=" + strconv.FormatUint(r.Key, 10) +
		" shard=" + strconv.Itoa(int(r.Shard)) +
		" " + time.Duration(r.Total).String() + " ["
	first := true
	for i := Stage(0); i < NumStages; i++ {
		d := r.Stages[i]
		if d <= 0 {
			continue
		}
		if !first {
			out += " | "
		}
		first = false
		pct := int64(0)
		if r.Total > 0 {
			pct = d * 100 / r.Total
		}
		out += i.String() + " " + strconv.FormatInt(pct, 10) + "%"
	}
	out += "]"
	if r.Attempts > 0 {
		out += " attempts=" + strconv.Itoa(int(r.Attempts))
	}
	if names := r.Flags.Names(); len(names) > 0 {
		out += " flags="
		for i, n := range names {
			if i > 0 {
				out += ","
			}
			out += n
		}
	}
	return out
}
