// Package span is the per-operation tracing layer: an allocation-free,
// always-on recorder that timestamps each serving operation at stage
// boundaries (wire decode → shard queue wait → policy apply / query fast
// path → miss fetch → backing attempt(s) → reply) and answers the question
// aggregate counters cannot — WHERE a slow op spent its time.
//
// The paper's pipeline argument (§1.2) is exactly this decomposition: a
// hardware P4LRU packet crosses fixed stages with a known per-stage budget,
// so "slow" is always attributable. The software stack re-earns that
// property here: every traced op produces a fixed-width Record whose stage
// durations sum to its end-to-end latency (each interval between marks is
// attributed to exactly one stage), feeding
//
//   - stage-decomposed histograms (span_stage_seconds{stage=...},
//     span_total_seconds) in the caller's obs.Registry, exported through
//     the existing Prometheus/JSON paths with exemplar attachment;
//   - per-shard lock-free ring buffers of captured Records under tail
//     sampling: every op slower than a live-updated p99 threshold is kept,
//     plus one uniform exemplar every SampleN ops, so the rings hold the
//     interesting tail without retaining millions of hits;
//   - the /debug/ops HTTP handler (see handler.go), which dumps the slowest
//     captured traces as JSON waterfalls.
//
// Hot-path contract: when tracing is off, instrumented code pays one nil
// check plus one atomic load (Tracer.Enabled) and nothing else. When on,
// Span values live on the caller's stack, Records are fixed-width structs
// with no pointers, ring slots are written by index through atomics, and
// nothing on the record path allocates — testing.AllocsPerRun pins this.
//
// Concurrency: the rings are lock-free. A writer claims a slot with one
// atomic cursor increment and publishes through a per-slot sequence word
// (odd while a write is in flight, advanced to even when stable), so
// snapshot readers skip in-flight slots and retry torn reads instead of
// blocking writers. All slot accesses are atomic word operations — the
// race detector sees a clean program.
package span

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/obs"
)

// Stage identifies one latency segment of an operation's life. Stages mirror
// the serving pipeline: not every op visits every stage (a cache hit is
// decode→query→wire; a miss adds miss/fetch), and an unvisited stage simply
// records zero.
type Stage uint8

const (
	// StageDecode is wire decode: bytes off the socket to a parsed message.
	StageDecode Stage = iota
	// StageQueue is shard queue wait: submit-side enqueue to writer dequeue.
	StageQueue
	// StageApply is replacement-state mutation: one batch (or one Apply)
	// under the shard write lock.
	StageApply
	// StageQuery is the read fast path: the shard cache lookup.
	StageQuery
	// StageMiss is miss-path overhead outside the store round trips:
	// singleflight coalescing waits, inflight-slot waits, backoff sleeps,
	// and the install of a fetched value.
	StageMiss
	// StageFetch is time inside backing store round trips (all attempts,
	// hedges included).
	StageFetch
	// StageWire is the reply send: marshalled bytes back onto the socket.
	StageWire

	// NumStages bounds the per-record stage array.
	NumStages
)

var stageNames = [NumStages]string{
	"decode", "queue_wait", "apply", "query", "miss", "fetch", "wire",
}

// String returns the snake_case stage label used in metric names.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage%d", uint8(s))
}

// Kind classifies a finished operation.
type Kind uint8

const (
	// KindNone marks an unwritten record; Finish never emits it.
	KindNone Kind = iota
	// KindHit is a read that found its key resident.
	KindHit
	// KindReadMiss is a plain query miss with no miss path behind it.
	KindReadMiss
	// KindMiss is a miss resolved through the backing store.
	KindMiss
	// KindMissFail is a miss whose fetch failed (retry budget, breaker,
	// timeout).
	KindMissFail
	// KindBatch is one shard-writer batch: queue wait plus batch apply.
	KindBatch
	// KindQuery is a switch/server query-direction packet.
	KindQuery
	// KindReply is a switch/server reply-direction packet.
	KindReply
	// KindShed is an op declined by admission control.
	KindShed
	// KindMigrate is one cluster key-range migration: a range-filtered
	// snapshot streamed from a source peer (StageFetch) and restored into
	// its new owner (StageApply).
	KindMigrate
)

var kindNames = [...]string{
	"none", "hit", "read_miss", "miss", "miss_fail", "batch", "query", "reply", "shed", "migrate",
}

// String returns the kind label used in /debug/ops output.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind%d", uint8(k))
}

// Flags annotate a record with boolean facts about the op's path.
type Flags uint16

const (
	// FlagHit marks a switch query packet answered from the cache.
	FlagHit Flags = 1 << iota
	// FlagRetried marks a miss that spent more than one fetch attempt.
	FlagRetried
	// FlagHedged marks a fetch that launched a hedged second request.
	FlagHedged
	// FlagBreakerOpen marks a miss rejected by an open circuit breaker.
	FlagBreakerOpen
	// FlagShed marks an op declined by the load shedder.
	FlagShed
	// FlagError marks an op that finished with an error.
	FlagError
	// FlagCoalesced marks a miss served by another Get's in-flight fetch.
	FlagCoalesced
	// FlagTail marks a capture made because the op crossed the live tail
	// threshold.
	FlagTail
	// FlagExemplar marks a capture made by the uniform 1-in-N sampler.
	FlagExemplar
)

var flagNames = []struct {
	f    Flags
	name string
}{
	{FlagHit, "hit"},
	{FlagRetried, "retried"},
	{FlagHedged, "hedged"},
	{FlagBreakerOpen, "breaker_open"},
	{FlagShed, "shed"},
	{FlagError, "error"},
	{FlagCoalesced, "coalesced"},
	{FlagTail, "tail"},
	{FlagExemplar, "exemplar"},
}

// Names expands the flag set into its labels (allocates; diagnostics only).
func (f Flags) Names() []string {
	var out []string
	for _, fn := range flagNames {
		if f&fn.f != 0 {
			out = append(out, fn.name)
		}
	}
	return out
}

// Record is one finished operation's trace: fixed width, no pointers, safe
// to copy by value and to store by index into a preallocated ring. Times are
// nanoseconds; Start is measured from the tracer's epoch.
type Record struct {
	ID       uint64           // capture sequence number (1-based; 0 = never captured)
	Key      uint64           // the op's cache key (0 when unknown, e.g. pre-decode)
	Start    int64            // op start, ns since the tracer epoch
	Total    int64            // end-to-end ns
	Stages   [NumStages]int64 // ns attributed to each stage
	Shard    int32            // home shard (ring index is Shard mod rings)
	Batch    uint16           // ops in the batch, for KindBatch records
	Attempts uint8            // backing store attempts spent
	Kind     Kind
	Flags    Flags
}

// recWords is the ring-slot word count: 4 scalar words, NumStages stage
// words, and one packed metadata word.
const recWords = 4 + int(NumStages) + 1

// encode packs the record into atomic-store-ready words.
func (r *Record) encode(w *[recWords]uint64) {
	w[0] = r.ID
	w[1] = r.Key
	w[2] = uint64(r.Start)
	w[3] = uint64(r.Total)
	for i := 0; i < int(NumStages); i++ {
		w[4+i] = uint64(r.Stages[i])
	}
	w[recWords-1] = uint64(uint16(r.Shard)) | uint64(r.Batch)<<16 |
		uint64(r.Attempts)<<32 | uint64(r.Kind)<<40 | uint64(r.Flags)<<48
}

// decode is encode's inverse.
func (r *Record) decode(w *[recWords]uint64) {
	r.ID = w[0]
	r.Key = w[1]
	r.Start = int64(w[2])
	r.Total = int64(w[3])
	for i := 0; i < int(NumStages); i++ {
		r.Stages[i] = int64(w[4+i])
	}
	meta := w[recWords-1]
	r.Shard = int32(int16(meta))
	r.Batch = uint16(meta >> 16)
	r.Attempts = uint8(meta >> 32)
	r.Kind = Kind(meta >> 40)
	r.Flags = Flags(meta >> 48)
}

// StageSum returns the summed stage nanoseconds — equal to Total up to the
// unattributed sliver between the last Mark and Finish.
func (r *Record) StageSum() int64 {
	var sum int64
	for _, d := range r.Stages {
		sum += d
	}
	return sum
}

// slot is one ring entry: a sequence word (odd while a write is in flight)
// plus the record's words. Everything is atomic, so concurrent snapshot
// reads are race-free and merely skip or retry slots being rewritten.
type slot struct {
	seq atomic.Uint64
	w   [recWords]atomic.Uint64
}

// ring is one shard's capture buffer. The cursor claims slots; the newest
// len(slots) captures survive.
type ring struct {
	pos atomic.Uint64
	_   [56]byte // keep shard cursors off each other's cache line
	buf []slot
}

func (r *ring) store(rec *Record) {
	i := r.pos.Add(1) - 1
	s := &r.buf[i&uint64(len(r.buf)-1)]
	s.seq.Add(1) // odd: write in flight
	var w [recWords]uint64
	rec.encode(&w)
	for j := range w {
		s.w[j].Store(w[j])
	}
	s.seq.Add(1) // even: published
}

// snapshot appends every stable record to out. A slot rewritten mid-read is
// retried a few times, then skipped — readers never block writers.
func (r *ring) snapshot(out []Record) []Record {
	for i := range r.buf {
		s := &r.buf[i]
		for try := 0; try < 3; try++ {
			s1 := s.seq.Load()
			if s1 == 0 || s1&1 == 1 {
				break // never written, or a write is in flight right now
			}
			var w [recWords]uint64
			for j := range w {
				w[j] = s.w[j].Load()
			}
			if s.seq.Load() != s1 {
				continue // torn read: a writer lapped us
			}
			var rec Record
			rec.decode(&w)
			out = append(out, rec)
			break
		}
	}
	return out
}

// Config parameterizes New. The zero value gets sane defaults.
type Config struct {
	// Shards is the ring count; pass the engine's shard count so captures
	// for different shards never contend (0 = 1). Records from shard s land
	// in ring s mod Shards.
	Shards int
	// RingSize is the per-shard capture capacity in records, rounded up to
	// a power of two (0 = 256).
	RingSize int
	// SampleN is the uniform exemplar period: one op in every SampleN is
	// captured regardless of latency (0 = 8192; negative disables uniform
	// sampling).
	SampleN int
	// TailPct is the quantile the live tail threshold tracks: ops slower
	// than the running TailPct-quantile are always captured (0 = 0.99).
	TailPct float64
	// RecalcEvery is how many finished ops pass between threshold
	// recalculations (0 = 1024).
	RecalcEvery int
	// Obs, when non-nil, receives span_stage_seconds{stage=...} and
	// span_total_seconds histograms plus span_ops_total /
	// span_captured_total counters. nil records rings only.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.RingSize <= 0 {
		c.RingSize = 256
	}
	if c.SampleN == 0 {
		c.SampleN = 8192
	}
	if c.TailPct <= 0 || c.TailPct >= 1 {
		c.TailPct = 0.99
	}
	if c.RecalcEvery <= 0 {
		c.RecalcEvery = 1024
	}
	return c
}

// latBucketCount covers log2(total ns) for any int64 duration.
const latBucketCount = 65

// Tracer owns the rings, the sampling state and the stage histograms. A nil
// *Tracer is a valid disabled tracer: every method no-ops, so call sites
// need no nil checks beyond the Enabled gate they already take.
type Tracer struct {
	cfg     Config
	epoch   time.Time
	enabled atomic.Bool

	rings       []ring
	nextID      atomic.Uint64
	uniformTick atomic.Uint64

	// Live tail threshold: a coarse log2-ns histogram of recent totals,
	// decayed by half at every recalculation so the threshold tracks the
	// current workload rather than the all-time distribution.
	tailNS     atomic.Int64
	latOps     atomic.Uint64
	latBuckets [latBucketCount]atomic.Uint64

	recorded  *obs.Counter // every finished span
	captured  *obs.Counter // spans written to a ring
	totalHist *obs.Histogram
	stageHist [NumStages]*obs.Histogram
}

// stageBuckets covers 250ns .. ~4s in ×4 steps — the whole range from a
// shard-local query to a full retry-budget miss failure.
func stageBuckets() []float64 { return obs.ExponentialBuckets(250e-9, 4, 13) }

// New builds a Tracer. It starts disabled; call SetEnabled(true) to record.
func New(cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	size := 1
	for size < cfg.RingSize {
		size <<= 1
	}
	t := &Tracer{cfg: cfg, epoch: time.Now()}
	t.rings = make([]ring, cfg.Shards)
	for i := range t.rings {
		t.rings[i].buf = make([]slot, size)
	}
	// Until the first recalculation there is no distribution to threshold
	// against; only uniform exemplars capture.
	t.tailNS.Store(math.MaxInt64)
	// Stats() needs the counters even with no registry; the histograms stay
	// nil (nil-safe no-ops) in that case.
	t.recorded = &obs.Counter{}
	t.captured = &obs.Counter{}
	if r := cfg.Obs; r != nil {
		t.recorded = r.Counter("span_ops_total")
		t.captured = r.Counter("span_captured_total")
		t.totalHist = r.Histogram("span_total_seconds", stageBuckets())
		for i := Stage(0); i < NumStages; i++ {
			t.stageHist[i] = r.Histogram(
				"span_stage_seconds{stage=\""+stageNames[i]+"\"}", stageBuckets())
		}
		r.GaugeFunc("span_tail_threshold_seconds", func() float64 {
			thr := t.tailNS.Load()
			if thr == math.MaxInt64 {
				return 0
			}
			return float64(thr) * 1e-9
		})
	}
	return t
}

// Enabled reports whether spans should be recorded — the single gate
// instrumented code checks on the hot path (nil check + one atomic load).
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled flips recording. Spans started before a flip finish normally.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// now is the tracer clock: monotonic ns since the epoch, allocation-free.
func (t *Tracer) now() int64 { return int64(time.Since(t.epoch)) }

// Clock exposes the tracer clock for callers that must stamp a timestamp to
// carry across goroutines (the engine stamps batch enqueue times with it).
// Returns 0 on a nil tracer.
func (t *Tracer) Clock() int64 {
	if t == nil {
		return 0
	}
	return t.now()
}

// Start opens a span for one op on the given shard. When tracing is off the
// returned Span is inert and every method on it no-ops.
func (t *Tracer) Start(shard int, key uint64) Span {
	if !t.Enabled() {
		return Span{}
	}
	n := t.now()
	return Span{t: t, last: n, rec: Record{Key: key, Shard: int32(shard), Start: n}}
}

// StartAt opens a span whose clock began at startNS (a prior Clock reading)
// — for ops whose first stage elapsed before the current goroutine saw them,
// like a batch waiting in a shard queue.
func (t *Tracer) StartAt(startNS int64, shard int, key uint64) Span {
	if !t.Enabled() {
		return Span{}
	}
	return Span{t: t, last: startNS, rec: Record{Key: key, Shard: int32(shard), Start: startNS}}
}

// TailThreshold returns the live capture threshold (0 until the first
// recalculation establishes a distribution).
func (t *Tracer) TailThreshold() time.Duration {
	if t == nil {
		return 0
	}
	thr := t.tailNS.Load()
	if thr == math.MaxInt64 {
		return 0
	}
	return time.Duration(thr)
}

// Stats returns (spans finished, spans captured into rings).
func (t *Tracer) Stats() (recorded, captured uint64) {
	if t == nil {
		return 0, 0
	}
	return t.recorded.Value(), t.captured.Value()
}

// Snapshot copies every stable captured record out of the rings (allocates;
// not for the hot path).
func (t *Tracer) Snapshot() []Record {
	if t == nil {
		return nil
	}
	out := make([]Record, 0, len(t.rings)*len(t.rings[0].buf))
	for i := range t.rings {
		out = t.rings[i].snapshot(out)
	}
	return out
}

// Slowest returns up to n captured records, slowest first.
func (t *Tracer) Slowest(n int) []Record {
	recs := t.Snapshot()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Total > recs[j].Total })
	if n > 0 && len(recs) > n {
		recs = recs[:n]
	}
	return recs
}

// finish is the record path: histograms, threshold bookkeeping, the
// sampling decision, and (for the sampled minority) the ring write and
// exemplar attachment. Allocation-free.
func (t *Tracer) finish(rec *Record) {
	t.recorded.Inc()
	for i := Stage(0); i < NumStages; i++ {
		if d := rec.Stages[i]; d > 0 {
			t.stageHist[i].Observe(float64(d) * 1e-9)
		}
	}
	t.totalHist.Observe(float64(rec.Total) * 1e-9)

	b := bits.Len64(uint64(rec.Total))
	t.latBuckets[b].Add(1)
	if n := t.latOps.Add(1); n%uint64(t.cfg.RecalcEvery) == 0 {
		t.recalcThreshold()
	}

	tail := rec.Total >= t.tailNS.Load()
	uniform := t.cfg.SampleN > 0 && t.uniformTick.Add(1)%uint64(t.cfg.SampleN) == 0
	if !tail && !uniform {
		return
	}
	if tail {
		rec.Flags |= FlagTail
	}
	if uniform {
		rec.Flags |= FlagExemplar
	}
	rec.ID = t.nextID.Add(1)
	t.captured.Inc()
	t.rings[int(uint32(rec.Shard))%len(t.rings)].store(rec)

	// Exemplar attachment: the total histogram and the op's dominant stage
	// both point at this capture, so a scraped quantile can be chased to
	// the exact waterfall on /debug/ops.
	sec := float64(rec.Total) * 1e-9
	t.totalHist.AttachExemplar(sec, rec.ID)
	var maxStage Stage
	var maxNS int64
	for i := Stage(0); i < NumStages; i++ {
		if rec.Stages[i] > maxNS {
			maxNS = rec.Stages[i]
			maxStage = i
		}
	}
	if maxNS > 0 {
		t.stageHist[maxStage].AttachExemplar(float64(maxNS)*1e-9, rec.ID)
	}
}

// recalcThreshold re-derives the tail threshold from the coarse log2
// histogram and decays it by half, so the threshold follows the recent
// distribution. The bucket upper edge overestimates the true quantile by at
// most 2x — deliberately conservative: a too-high threshold captures fewer,
// strictly slower ops.
func (t *Tracer) recalcThreshold() {
	var counts [latBucketCount]uint64
	var total uint64
	for i := range t.latBuckets {
		c := t.latBuckets[i].Load()
		counts[i] = c
		total += c
	}
	if total == 0 {
		return
	}
	target := uint64(float64(total) * t.cfg.TailPct)
	var cum uint64
	thr := int64(math.MaxInt64)
	for i, c := range counts {
		cum += c
		if cum > target {
			if i >= 63 {
				thr = math.MaxInt64
			} else {
				thr = int64(1) << uint(i)
			}
			break
		}
	}
	t.tailNS.Store(thr)
	for i := range t.latBuckets {
		if h := counts[i] / 2; h > 0 {
			t.latBuckets[i].Add(^(h - 1)) // subtract what we observed: safe under concurrent Adds
		}
	}
}

// Span is one op's in-flight trace, built on the caller's stack. The zero
// Span is inert; all methods are safe on it (and on a nil *Span), so call
// sites thread spans unconditionally and pay nothing when tracing is off.
type Span struct {
	t    *Tracer
	last int64
	rec  Record
}

// Active reports whether this span is recording.
func (s *Span) Active() bool { return s != nil && s.t != nil }

// SetKey fills the op key once known (packets decode after arrival).
func (s *Span) SetKey(k uint64) {
	if s.Active() {
		s.rec.Key = k
	}
}

// SetShard fills the home shard once routed.
func (s *Span) SetShard(i int) {
	if s.Active() {
		s.rec.Shard = int32(i)
	}
}

// SetFlags ORs fact flags into the record.
func (s *Span) SetFlags(f Flags) {
	if s.Active() {
		s.rec.Flags |= f
	}
}

// SetBatch records the op count of a writer batch.
func (s *Span) SetBatch(n int) {
	if s.Active() {
		if n > int(^uint16(0)) {
			n = int(^uint16(0))
		}
		s.rec.Batch = uint16(n)
	}
}

// IncAttempts counts one backing store attempt.
func (s *Span) IncAttempts() {
	if s.Active() && s.rec.Attempts < ^uint8(0) {
		s.rec.Attempts++
	}
}

// Attempts returns the attempts counted so far.
func (s *Span) Attempts() uint8 {
	if !s.Active() {
		return 0
	}
	return s.rec.Attempts
}

// Mark attributes the time since the previous boundary (Start or the last
// Mark) to the given stage and advances the boundary. Because every interval
// lands in exactly one stage, the stage sum tracks the end-to-end total.
func (s *Span) Mark(st Stage) {
	if !s.Active() {
		return
	}
	n := s.t.now()
	s.rec.Stages[st] += n - s.last
	s.last = n
}

// Finish seals the span: stamps the total, classifies it, and hands the
// record to the tracer (histograms always; ring capture when sampled). The
// span is inert afterwards.
func (s *Span) Finish(k Kind) {
	if !s.Active() {
		return
	}
	t := s.t
	s.t = nil
	s.rec.Total = t.now() - s.rec.Start
	if s.rec.Total < 0 {
		s.rec.Total = 0
	}
	s.rec.Kind = k
	t.finish(&s.rec)
}
