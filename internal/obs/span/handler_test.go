package span

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestHandlerDumpsSlowestWaterfalls(t *testing.T) {
	tr := New(Config{SampleN: 1, RingSize: 16, RecalcEvery: 1 << 20})
	tr.SetEnabled(true)
	for i, d := range []time.Duration{time.Millisecond, 8 * time.Millisecond, 2 * time.Millisecond} {
		sp := tr.StartAt(tr.Clock()-int64(d), 1, uint64(i))
		sp.Mark(StageFetch)
		sp.SetFlags(FlagRetried)
		sp.IncAttempts()
		sp.IncAttempts()
		sp.Finish(KindMiss)
	}

	rr := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/ops?n=2", nil))
	if rr.Code != 200 {
		t.Fatalf("status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var dump OpsDump
	if err := json.Unmarshal(rr.Body.Bytes(), &dump); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if dump.Recorded != 3 || dump.Captured != 3 {
		t.Fatalf("dump counters: %+v", dump)
	}
	if len(dump.Ops) != 2 {
		t.Fatalf("n=2 returned %d ops", len(dump.Ops))
	}
	top := dump.Ops[0]
	if top.TotalNS < dump.Ops[1].TotalNS {
		t.Fatal("ops not sorted slowest first")
	}
	if top.Key != 1 || top.Kind != "miss" || top.Attempts != 2 {
		t.Fatalf("top op: %+v", top)
	}
	var hasRetried bool
	for _, f := range top.Flags {
		hasRetried = hasRetried || f == "retried"
	}
	if !hasRetried {
		t.Fatalf("flags missing retried: %v", top.Flags)
	}
	// The waterfall invariant the acceptance criteria pin: stage sum within
	// clock skew of total (here exact, since marks and finish share a clock).
	var sum int64
	for _, st := range top.Stages {
		sum += st.NS
	}
	if sum != top.StageSum {
		t.Fatalf("stage list sums %d, StageSum says %d", sum, top.StageSum)
	}
	if top.StageSum > top.TotalNS {
		t.Fatalf("stage sum %d exceeds total %d", top.StageSum, top.TotalNS)
	}
}

func TestHandlerByID(t *testing.T) {
	tr := New(Config{SampleN: 1, RecalcEvery: 1 << 20})
	tr.SetEnabled(true)
	sp := tr.Start(0, 42)
	sp.Finish(KindHit)
	recs := tr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("captured %d", len(recs))
	}
	id := recs[0].ID

	rr := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/ops?id="+strconv.FormatUint(id, 10), nil))
	if rr.Code != 200 {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	var rec RecordJSON
	if err := json.Unmarshal(rr.Body.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != id || rec.Key != 42 {
		t.Fatalf("got %+v", rec)
	}

	rr = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/ops?id=999999", nil))
	if rr.Code != 404 {
		t.Fatalf("missing id: status %d", rr.Code)
	}

	rr = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/ops?id=bogus", nil))
	if rr.Code != 400 {
		t.Fatalf("bad id: status %d", rr.Code)
	}
}

func TestWaterfallString(t *testing.T) {
	rec := Record{
		ID: 7, Key: 42, Shard: 3, Kind: KindMiss,
		Total:    int64(10 * time.Millisecond),
		Attempts: 2,
		Flags:    FlagRetried | FlagTail,
	}
	rec.Stages[StageQueue] = int64(time.Millisecond)
	rec.Stages[StageFetch] = int64(9 * time.Millisecond)
	s := rec.Waterfall()
	for _, want := range []string{"#7", "miss", "key=42", "shard=3", "queue_wait 10%", "fetch 90%", "attempts=2", "retried", "tail"} {
		if !strings.Contains(s, want) {
			t.Fatalf("waterfall %q missing %q", s, want)
		}
	}
}
