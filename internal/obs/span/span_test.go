package span

import (
	"sync"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/obs"
)

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	in := Record{
		ID:       42,
		Key:      0xdeadbeefcafe,
		Start:    123456789,
		Total:    987654,
		Shard:    17,
		Batch:    300,
		Attempts: 3,
		Kind:     KindMiss,
		Flags:    FlagRetried | FlagHedged | FlagTail,
	}
	for i := range in.Stages {
		in.Stages[i] = int64(i+1) * 1000
	}
	var w [recWords]uint64
	in.encode(&w)
	var out Record
	out.decode(&w)
	if out != in {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}
}

func TestDisabledTracerIsInert(t *testing.T) {
	var nilTracer *Tracer
	if nilTracer.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := nilTracer.Start(0, 1)
	sp.Mark(StageQuery)
	sp.SetFlags(FlagHit)
	sp.Finish(KindHit) // must not panic
	if nilTracer.Snapshot() != nil {
		t.Fatal("nil tracer returned records")
	}

	tr := New(Config{})
	if tr.Enabled() {
		t.Fatal("fresh tracer should start disabled")
	}
	sp = tr.Start(0, 1)
	if sp.Active() {
		t.Fatal("span from disabled tracer is active")
	}
	sp.Finish(KindHit)
	if rec, _ := tr.Stats(); rec != 0 {
		t.Fatalf("disabled tracer recorded %d spans", rec)
	}
}

func TestStageSumMatchesTotal(t *testing.T) {
	tr := New(Config{SampleN: 1})
	tr.SetEnabled(true)
	sp := tr.Start(2, 99)
	time.Sleep(2 * time.Millisecond)
	sp.Mark(StageQuery)
	time.Sleep(3 * time.Millisecond)
	sp.Mark(StageFetch)
	sp.Finish(KindMiss)

	recs := tr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("want 1 captured record, got %d", len(recs))
	}
	rec := recs[0]
	if rec.Key != 99 || rec.Shard != 2 || rec.Kind != KindMiss {
		t.Fatalf("bad record identity: %+v", rec)
	}
	if rec.Stages[StageQuery] < int64(time.Millisecond) {
		t.Fatalf("query stage too small: %v", time.Duration(rec.Stages[StageQuery]))
	}
	if rec.Stages[StageFetch] < int64(2*time.Millisecond) {
		t.Fatalf("fetch stage too small: %v", time.Duration(rec.Stages[StageFetch]))
	}
	// Every interval between marks lands in exactly one stage, so the sum
	// can only miss the sliver between the last Mark and Finish.
	if diff := rec.Total - rec.StageSum(); diff < 0 || diff > int64(time.Millisecond) {
		t.Fatalf("stage sum %v vs total %v (diff %v)",
			time.Duration(rec.StageSum()), time.Duration(rec.Total), time.Duration(diff))
	}
}

func TestUniformSampling(t *testing.T) {
	// RecalcEvery larger than the op count keeps the tail threshold at its
	// initial MaxInt64, so only the uniform sampler captures.
	tr := New(Config{SampleN: 4, RecalcEvery: 1 << 20})
	tr.SetEnabled(true)
	const ops = 100
	for i := 0; i < ops; i++ {
		sp := tr.Start(0, uint64(i))
		sp.Finish(KindHit)
	}
	recorded, captured := tr.Stats()
	if recorded != ops {
		t.Fatalf("recorded = %d, want %d", recorded, ops)
	}
	if captured != ops/4 {
		t.Fatalf("captured = %d, want %d (1 in 4)", captured, ops/4)
	}
	for _, rec := range tr.Snapshot() {
		if rec.Flags&FlagExemplar == 0 {
			t.Fatalf("uniform capture missing FlagExemplar: %+v", rec)
		}
	}
}

func TestTailSampling(t *testing.T) {
	tr := New(Config{SampleN: -1, RecalcEvery: 64, TailPct: 0.99, RingSize: 64})
	tr.SetEnabled(true)
	// Establish a fast distribution (~1µs ops) so the recalculated p99
	// threshold lands far below the upcoming slow op.
	for i := 0; i < 256; i++ {
		sp := tr.StartAt(tr.Clock()-int64(time.Microsecond), 0, uint64(i))
		sp.Finish(KindHit)
	}
	if thr := tr.TailThreshold(); thr <= 0 || thr > time.Millisecond {
		t.Fatalf("tail threshold = %v, want (0, 1ms]", thr)
	}
	_, before := tr.Stats()

	sp := tr.StartAt(tr.Clock()-int64(50*time.Millisecond), 0, 777)
	sp.Mark(StageFetch)
	sp.Finish(KindMiss)

	_, after := tr.Stats()
	if after != before+1 {
		t.Fatalf("slow op not captured: captured %d -> %d", before, after)
	}
	var found bool
	for _, rec := range tr.Snapshot() {
		if rec.Key == 777 {
			found = true
			if rec.Flags&FlagTail == 0 {
				t.Fatalf("tail capture missing FlagTail: %+v", rec)
			}
			if rec.Total < int64(40*time.Millisecond) {
				t.Fatalf("slow op total = %v", time.Duration(rec.Total))
			}
		}
	}
	if !found {
		t.Fatal("slow op not in ring snapshot")
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	tr := New(Config{SampleN: 1, RingSize: 4, RecalcEvery: 1 << 20})
	tr.SetEnabled(true)
	const ops = 100
	for i := 0; i < ops; i++ {
		sp := tr.Start(0, uint64(i))
		sp.Finish(KindHit)
	}
	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("snapshot holds %d records, want ring size 4", len(recs))
	}
	for _, rec := range recs {
		if rec.ID <= ops-4 {
			t.Fatalf("stale record survived wrap: ID %d (newest 4 are %d..%d)", rec.ID, ops-3, ops)
		}
	}
}

func TestSlowestOrdersByTotal(t *testing.T) {
	tr := New(Config{SampleN: 1, RingSize: 16, RecalcEvery: 1 << 20})
	tr.SetEnabled(true)
	for _, d := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 2 * time.Millisecond} {
		sp := tr.StartAt(tr.Clock()-int64(d), 0, uint64(d))
		sp.Finish(KindMiss)
	}
	top := tr.Slowest(2)
	if len(top) != 2 {
		t.Fatalf("Slowest(2) returned %d", len(top))
	}
	if top[0].Total < top[1].Total {
		t.Fatalf("not sorted: %v before %v", top[0].Total, top[1].Total)
	}
	if top[0].Key != uint64(5*time.Millisecond) {
		t.Fatalf("slowest is key %d, want the 5ms op", top[0].Key)
	}
}

func TestFinishZeroAllocWithSamplingActive(t *testing.T) {
	// The acceptance gate: sampling ACTIVE (every op captured into the ring
	// plus exemplar attachment) and still zero allocations per op.
	reg := obs.NewRegistry()
	tr := New(Config{SampleN: 1, Obs: reg, RecalcEvery: 64})
	tr.SetEnabled(true)
	key := uint64(0)
	allocs := testing.AllocsPerRun(1000, func() {
		key++
		sp := tr.Start(3, key)
		sp.Mark(StageQuery)
		sp.SetFlags(FlagHit)
		sp.Finish(KindHit)
	})
	if allocs != 0 {
		t.Fatalf("traced op allocated %v times/op, want 0", allocs)
	}
}

func TestObsHistogramsPopulated(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(Config{SampleN: 1, Obs: reg})
	tr.SetEnabled(true)
	sp := tr.StartAt(tr.Clock()-int64(time.Millisecond), 0, 1)
	sp.Mark(StageQueue)
	sp.Finish(KindBatch)

	snap := reg.Snapshot()
	if h := snap.Histograms["span_total_seconds"]; h.Count != 1 {
		t.Fatalf("span_total_seconds count = %d", h.Count)
	}
	h := snap.Histograms[`span_stage_seconds{stage="queue_wait"}`]
	if h.Count != 1 {
		t.Fatalf("queue_wait stage histogram count = %d", h.Count)
	}
	if h.Exemplar == nil || h.Exemplar.SpanID == 0 {
		t.Fatal("captured span did not attach an exemplar to its dominant stage")
	}
	if snap.Counters["span_ops_total"] != 1 || snap.Counters["span_captured_total"] != 1 {
		t.Fatalf("span counters: %+v", snap.Counters)
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	tr := New(Config{Shards: 4, SampleN: 1, RingSize: 32, RecalcEvery: 16})
	tr.SetEnabled(true)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				sp := tr.Start(g, uint64(i))
				sp.Mark(StageQuery)
				sp.Finish(KindHit)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, rec := range tr.Snapshot() {
				if rec.ID == 0 {
					t.Error("snapshot returned an unpublished record")
					return
				}
			}
		}
	}()
	// Let the reader overlap the writers, then stop it and wait for all.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done
	if rec, _ := tr.Stats(); rec != 4*5000 {
		t.Fatalf("recorded %d, want %d", rec, 4*5000)
	}
}
