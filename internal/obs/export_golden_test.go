package obs

import (
	"bufio"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a deterministic registry exercising every exporter
// feature: counters and gauges with and without labels, a histogram with
// observations across buckets plus the overflow bucket, an attached
// exemplar, and label values that need text-format escaping.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("requests_total").Add(1234)
	r.Counter(`requests_total{shard="0"}`).Add(70)
	r.Counter(`requests_total{shard="1"}`).Add(30)
	r.Counter("weird_total{" + Label("path", `C:\tmp "x"`+"\nend") + "}").Add(5)
	r.Gauge("occupancy").Set(0.75)
	r.Gauge(`queue_depth{shard="0"}`).Set(12)

	h := r.Histogram("latency_seconds", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0005, 0.002, 0.003, 0.05, 0.5, 2.5} {
		h.Observe(v)
	}
	h.AttachExemplar(2.5, 7)
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	path := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("Prometheus output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestPrometheusInvariants re-parses the exporter's own output and checks
// the text-format contracts golden bytes alone can't explain: bucket counts
// are cumulative and monotone, the +Inf bucket equals _count, _sum matches
// the histogram's sum, and escaped label values survive unmangled.
func TestPrometheusInvariants(t *testing.T) {
	r := goldenRegistry()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}

	var buckets []uint64
	var infBucket, count uint64
	var sum float64
	var sawEscaped bool
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Split on the LAST space: escaped label values may contain spaces,
		// the sample value never does.
		cut := strings.LastIndexByte(line, ' ')
		if cut < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		name, val := line[:cut], line[cut+1:]
		switch {
		case strings.HasPrefix(name, `latency_seconds_bucket{le="+Inf"}`):
			infBucket, _ = strconv.ParseUint(val, 10, 64)
		case strings.HasPrefix(name, "latency_seconds_bucket"):
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", val, err)
			}
			buckets = append(buckets, n)
		case name == "latency_seconds_sum":
			sum, _ = strconv.ParseFloat(val, 64)
		case name == "latency_seconds_count":
			count, _ = strconv.ParseUint(val, 10, 64)
		case strings.HasPrefix(name, "weird_total"):
			if name == `weird_total{path="C:\\tmp \"x\"\nend"}` {
				sawEscaped = true
			} else {
				t.Fatalf("label escaping mangled: %q", name)
			}
		}
	}

	for i := 1; i < len(buckets); i++ {
		if buckets[i] < buckets[i-1] {
			t.Fatalf("buckets not cumulative: %v", buckets)
		}
	}
	if len(buckets) == 0 || infBucket == 0 {
		t.Fatal("histogram series missing from output")
	}
	if buckets[len(buckets)-1] > infBucket {
		t.Fatalf("finite bucket %d exceeds +Inf bucket %d", buckets[len(buckets)-1], infBucket)
	}
	if infBucket != count {
		t.Fatalf("+Inf bucket %d != _count %d", infBucket, count)
	}
	wantSum := 0.0005 + 0.002 + 0.003 + 0.05 + 0.5 + 2.5
	if diff := sum - wantSum; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("_sum %v, want %v", sum, wantSum)
	}
	if count != 6 {
		t.Fatalf("_count %d, want 6", count)
	}
	if !sawEscaped {
		t.Fatal("escaped-label counter missing from output")
	}
}

// TestLabelEscaping pins the Label helper against the three characters the
// text exposition format requires escaping in label values.
func TestLabelEscaping(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", `k="plain"`},
		{`ba\ck`, `k="ba\\ck"`},
		{`qu"ote`, `k="qu\"ote"`},
		{"new\nline", `k="new\nline"`},
	}
	for _, c := range cases {
		if got := Label("k", c.in); got != c.want {
			t.Errorf("Label(k, %q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestJSONExemplarRoundTrip verifies the snapshot carries the exemplar.
func TestJSONExemplarRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x_seconds", []float64{1})
	h.Observe(0.5)
	if ex := r.Snapshot().Histograms["x_seconds"].Exemplar; ex != nil {
		t.Fatalf("exemplar before attach: %+v", ex)
	}
	h.AttachExemplar(0.5, 99)
	ex := r.Snapshot().Histograms["x_seconds"].Exemplar
	if ex == nil || ex.SpanID != 99 || ex.Value != 0.5 {
		t.Fatalf("exemplar after attach: %+v", ex)
	}
}
