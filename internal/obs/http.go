package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving this registry:
//
//	/metrics        Prometheus text exposition format
//	/metrics.json   JSON snapshot (the exporter round-trip format)
//	/debug/vars     expvar (includes the registry once PublishExpvar ran)
//	/debug/pprof/*  net/http/pprof profiles
//
// The mux is private — nothing is registered on http.DefaultServeMux.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts serving the registry on addr (e.g. ":9090") in a background
// goroutine and returns the listener's resolved address (useful with ":0")
// and the server for shutdown. The registry is also published to expvar as
// "p4lru".
func Serve(addr string, r *Registry) (string, *http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	r.PublishExpvar("p4lru")
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv, nil
}
