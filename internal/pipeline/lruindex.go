package pipeline

import "fmt"

// This file realizes the complete LruIndex data plane (§3.2) as one
// executable pipeline program: L series-connected P4LRU3 cache arrays
// traversed by two packet kinds distinguished by FieldPType —
//
//	query  (ptype 0): every level is consulted read-only; the first level
//	       holding the key stamps cached_flag/cached_index.
//	reply  (ptype 1): the only cache mutations. cached_flag = i ≥ 1 promotes
//	       the key inside level i; cached_flag = 0 runs a full update on
//	       level 1 and demotes each level's evicted entry to the *tail* of
//	       the next level, all in a single pipeline pass (the evicted
//	       key/value ride the PHV between levels).
//
// Every register is touched at most once per packet on every path — the
// program would not Run otherwise — and the whole data plane is
// differentially tested against lru.Series.

// PHV fields of the LruIndex program (inputs: FieldKey, FieldVal,
// FieldPType, FieldFlag; outputs: FieldFlag, FieldIndex after a query).
const (
	// FieldFlag is the packet's cached_flag: 0 or the 1-based level.
	FieldFlag = "cached_flag"
	// FieldIndex is the packet's cached_index.
	FieldIndex = "cached_index"
)

// state3PermTable is Table 1 in flat form: state3PermTable[code][pos] is the
// value slot S(pos) (0-based). Kept in sync with internal/lru by the
// differential tests.
var state3PermTable = [6][3]uint64{
	0: {1, 2, 0}, // (1 2 3 / 2 3 1)
	1: {0, 2, 1}, // (1 2 3 / 1 3 2)
	2: {2, 0, 1}, // (1 2 3 / 3 1 2)
	3: {2, 1, 0}, // (1 2 3 / 3 2 1)
	4: {0, 1, 2}, // identity — the initial state
	5: {1, 0, 2}, // (1 2 3 / 2 1 3)
}

// state3Slot is the 18-entry decode table: (state code << 2 | keyPos) → the
// value slot S(keyPos). One MAU table serves the query path (pos = match
// position), the update path (pos = 0 after transition), and the tail path
// (pos = 2, the LRU slot).
var state3Slot = func() map[uint64]uint64 {
	t := make(map[uint64]uint64, 18)
	for code := uint64(0); code < 6; code++ {
		for pos := uint64(0); pos < 3; pos++ {
			t[code<<2|pos] = state3PermTable[code][pos]
		}
	}
	return t
}()

// IndexDataplane is the runnable LruIndex pipeline program.
type IndexDataplane struct {
	prog   *Program
	levels int
	units  int
}

// QueryOutcome reports a query packet's header rewrite.
type QueryOutcome struct {
	Flag  int    // 0 = not cached, i = cached at level i
	Index uint64 // cached_index when Flag ≠ 0
}

// BuildLruIndexDataplane assembles the L-level program. Seeds match
// lru.NewSeries3(levels, numUnits, seed, nil), which the differential tests
// rely on. Keys must be nonzero (key 0 is the hardware's empty slot).
func BuildLruIndexDataplane(levels, numUnits int, seed uint64, budget Budget) (*IndexDataplane, error) {
	if levels < 1 || levels > 4 {
		return nil, fmt.Errorf("pipeline: lruindex dataplane with %d levels", levels)
	}
	if numUnits < 1 {
		return nil, fmt.Errorf("pipeline: lruindex dataplane with %d units", numUnits)
	}
	b := NewBuilder("lruindex-dataplane", budget, levels)

	key := F(FieldKey)
	isQuery := G(F(FieldPType), CmpEQ, C(0))
	isReply := G(F(FieldPType), CmpEQ, C(1))

	// carryK/carryV hold the entry demoted out of the previous level on the
	// miss-reply path. Level 1's "demotion input" is the packet itself.
	for lv := 1; lv <= levels; lv++ {
		name := fmt.Sprintf("lv%d", lv)
		idxF := name + ".idx"
		idx := F(idxF)
		ev1, ev2, ev3 := name+".ev1", name+".ev2", name+".ev3"
		opF := name + ".op"
		stateF := name + ".state"
		slotF := name + ".slot"
		qhitF := name + ".qpos" // 0 = no query match, i = match at key[i]

		// This level runs a full update when the reply's flag addresses it
		// (flag == lv, or flag == 0 for level 1); it runs a tail insert on
		// the miss-reply path for levels ≥ 2 when the previous level
		// demoted a real (nonzero) key.
		updGuards := func(extra ...Guard) []Guard {
			gs := []Guard{isReply}
			if lv == 1 {
				gs = append(gs, G(F(FieldFlag), CmpLE, C(1)))
			} else {
				gs = append(gs, G(F(FieldFlag), CmpEQ, C(uint64(lv))))
			}
			return append(gs, extra...)
		}
		tailGuards := func(extra ...Guard) []Guard {
			gs := []Guard{isReply,
				G(F(FieldFlag), CmpEQ, C(0)),
				G(F("carryK"), CmpNE, C(0))}
			return append(gs, extra...)
		}
		// The key this level updates with: the packet key (update path).
		upKey := key

		// Stage A: index hashes. The update path indexes by the packet
		// key; the tail path by the carried key. Both are computed (hash
		// bits are cheap); the SALU steps pick the right one.
		stA := b.Stage()
		lvSeed := seed + uint64(lv-1)*0x9e3779b9
		stA.HashIndex(idxF, key, numUnits, lvSeed)
		if lv > 1 {
			stA.HashIndex(name+".tidx", F("carryK"), numUnits, lvSeed)
		}
		stA.Set(opF, C(0))
		tidx := idx
		if lv > 1 {
			tidx = F(name + ".tidx")
		}

		// Stage B: key[1]. Query: read. Update: swap.
		stB := b.Stage()
		key1 := stB.Register(name+".key1", 32, numUnits)
		stB.Action(key1, SALUAction{Name: "read", True: SALUBranch{Op: OpKeep, Out: OutOld}})
		stB.Action(key1, SALUAction{Name: "swap",
			True: SALUBranch{Op: OpSet, Operand: upKey, Out: OutOld}})
		stB.SALU(key1, "read", idx, ev1, isQuery)
		stB.SALU(key1, "swap", idx, ev1, updGuards()...)

		// Stage C: hit-at-1 detection + key[2].
		stC := b.Stage()
		stC.Set(opF, C(1), G(F(ev1), CmpEQ, upKey))
		stC.Set(qhitF, C(1), isQuery, G(F(ev1), CmpEQ, key))
		key2 := stC.Register(name+".key2", 32, numUnits)
		stC.Action(key2, SALUAction{Name: "read", True: SALUBranch{Op: OpKeep, Out: OutOld}})
		stC.Action(key2, SALUAction{Name: "swap",
			True: SALUBranch{Op: OpSet, Operand: F(ev1), Out: OutOld}})
		stC.SALU(key2, "read", idx, ev2, isQuery)
		stC.SALU(key2, "swap", idx, ev2, updGuards(G(F(ev1), CmpNE, upKey))...)

		// Stage D: hit-at-2 detection + key[3]. The tail path touches only
		// this key register, replacing the LRU key.
		stD := b.Stage()
		stD.Set(opF, C(2), G(F(opF), CmpNE, C(1)), G(F(ev2), CmpEQ, upKey))
		stD.Set(qhitF, C(2), isQuery, G(F(qhitF), CmpEQ, C(0)), G(F(ev2), CmpEQ, key))
		key3 := stD.Register(name+".key3", 32, numUnits)
		stD.Action(key3, SALUAction{Name: "read", True: SALUBranch{Op: OpKeep, Out: OutOld}})
		stD.Action(key3, SALUAction{Name: "swap",
			True: SALUBranch{Op: OpSet, Operand: F(ev2), Out: OutOld}})
		stD.Action(key3, SALUAction{Name: "settail",
			True: SALUBranch{Op: OpSet, Operand: F("carryK"), Out: OutOld}})
		stD.SALU(key3, "read", idx, ev3, isQuery)
		stD.SALU(key3, "swap", idx, ev3,
			updGuards(G(F(opF), CmpNE, C(1)), G(F(ev2), CmpNE, upKey))...)
		if lv > 1 {
			stD.SALU(key3, "settail", tidx, name+".tailEvK", tailGuards()...)
		}

		// Stage E: hit-at-3 detection + the state register. Update path
		// transitions; query and tail paths read.
		stE := b.Stage()
		stE.Set(opF, C(3), updGuards(G(F(opF), CmpEQ, C(0)), G(F(ev3), CmpEQ, upKey))...)
		stE.Set(qhitF, C(3), isQuery, G(F(qhitF), CmpEQ, C(0)), G(F(ev3), CmpEQ, key))
		state := stE.Register(name+".state", 8, numUnits)
		stE.Action(state, SALUAction{Name: "read", True: SALUBranch{Op: OpKeep, Out: OutOld}})
		stE.Action(state, SALUAction{Name: "op2",
			Pred:  &SALUPred{Op: CmpGE, Operand: C(4)},
			True:  SALUBranch{Op: OpXor, Operand: C(1), Out: OutNew},
			False: SALUBranch{Op: OpXor, Operand: C(3), Out: OutNew}})
		stE.Action(state, SALUAction{Name: "op3",
			Pred:  &SALUPred{Op: CmpGE, Operand: C(2)},
			True:  SALUBranch{Op: OpSub, Operand: C(2), Out: OutNew},
			False: SALUBranch{Op: OpAdd, Operand: C(4), Out: OutNew}})
		stE.SALU(state, "read", idx, stateF, isQuery)
		stE.SALU(state, "read", idx, stateF, updGuards(G(F(opF), CmpEQ, C(1)))...) // op1 = no change
		stE.SALU(state, "op2", idx, stateF, updGuards(G(F(opF), CmpEQ, C(2)))...)
		stE.SALU(state, "op3", idx, stateF,
			updGuards(G(F(opF), CmpNE, C(1)), G(F(opF), CmpNE, C(2)))...)
		if lv > 1 {
			stE.SALU(state, "read", tidx, stateF, tailGuards()...)
		}

		// Stage F: decode inputs. Query: pos = match position − 1; update:
		// pos = 0 (slot of the new MRU key under the transitioned state);
		// tail: pos = 2 (the LRU slot). The three writers are guard-disjoint.
		stF := b.Stage()
		stF.ALU(name+".code", F(stateF), OpShl, C(2))
		stF.ALU(name+".pos", F(qhitF), OpSub, C(1), isQuery, G(F(qhitF), CmpNE, C(0)))
		stF.Set(name+".pos", C(0), updGuards()...)
		stF.Set(name+".pos", C(2), tailGuards()...)
		stF2 := b.Stage()
		stF2.ALU(name+".codepos", F(name+".code"), OpOr, F(name+".pos"))
		stF3 := b.Stage()
		stF3.Table(slotF, F(name+".codepos"), state3Slot, 0)

		// Stages G/H/I: the three value registers, selected by slot.
		for v := 0; v < 3; v++ {
			stV := b.Stage()
			r := stV.Register(fmt.Sprintf("%s.val%d", name, v+1), 48, numUnits)
			sel := G(F(slotF), CmpEQ, C(uint64(v)))
			stV.Action(r, SALUAction{Name: "read", True: SALUBranch{Op: OpKeep, Out: OutOld}})
			stV.Action(r, SALUAction{Name: "write",
				True: SALUBranch{Op: OpSet, Operand: F(FieldVal), Out: OutOld}})
			stV.Action(r, SALUAction{Name: "settail",
				True: SALUBranch{Op: OpSet, Operand: F("carryV"), Out: OutOld}})
			// Query read (only when this level matched).
			stV.SALU(r, "read", idx, name+".qval", sel, isQuery, G(F(qhitF), CmpNE, C(0)))
			// Update write: hit updates in place, miss overwrites the
			// evicted slot — both are OpSet with the packet value.
			stV.SALU(r, "write", idx, name+".evval", append(updGuards(), sel)...)
			if lv > 1 {
				stV.SALU(r, "settail", tidx, name+".tailEvV", append(tailGuards(), sel)...)
			}
		}

		// Stage J: header rewrite (query path) and demotion carry
		// (miss-reply path).
		stJ := b.Stage()
		stJ.Set(FieldFlag, C(uint64(lv)), isQuery,
			G(F(FieldFlag), CmpEQ, C(0)), G(F(qhitF), CmpNE, C(0)))
		stJ.Set(FieldIndex, F(name+".qval"), isQuery,
			G(F(FieldFlag), CmpEQ, C(0)), G(F(qhitF), CmpNE, C(0)))
		if lv == 1 {
			// The entry rotated out of level 1 (key 0 when the unit had a
			// free slot — the carryK != 0 guards downstream skip those).
			stJ.Set("carryK", F(ev3), isReply, G(F(FieldFlag), CmpEQ, C(0)),
				G(F(opF), CmpEQ, C(0)))
			stJ.Set("carryV", F(name+".evval"), isReply, G(F(FieldFlag), CmpEQ, C(0)),
				G(F(opF), CmpEQ, C(0)))
		} else {
			stJ.Set("carryK", F(name+".tailEvK"), tailGuards()...)
			stJ.Set("carryV", F(name+".tailEvV"), tailGuards()...)
		}

		// Control-plane init: identity cache state.
		for i := 0; i < numUnits; i++ {
			state.SetCell(i, state3Initial)
		}
	}

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &IndexDataplane{prog: prog, levels: levels, units: numUnits}, nil
}

// Program exposes the underlying program.
func (d *IndexDataplane) Program() *Program { return d.prog }

// Query pushes a query packet (read-only) and returns the header rewrite.
func (d *IndexDataplane) Query(key uint64) (QueryOutcome, error) {
	phv := NewPHV(map[string]uint64{FieldKey: key, FieldPType: 0})
	if err := d.prog.Run(phv); err != nil {
		return QueryOutcome{}, err
	}
	return QueryOutcome{
		Flag:  int(phv.Get(FieldFlag)),
		Index: phv.Get(FieldIndex),
	}, nil
}

// Reply pushes a reply packet carrying the resolved index `val` and the
// cached_flag from the matching query.
func (d *IndexDataplane) Reply(key, val uint64, flag int) error {
	phv := NewPHV(map[string]uint64{
		FieldKey:   key,
		FieldVal:   val,
		FieldPType: 1,
		FieldFlag:  uint64(flag),
	})
	return d.prog.Run(phv)
}
