package pipeline

import (
	"fmt"
	"strings"

	"github.com/p4lru/p4lru/internal/hashing"
)

// hashingNew keeps step construction terse.
func hashingNew(seed uint64) hashing.Hash { return hashing.New(seed) }

// Budget is the per-pipeline resource model the builder validates against
// and Report normalizes by. The numbers are the publicly cited Tofino-1
// per-pipe figures (12 MAU stages; 4 stateful ALUs per stage; 80 SRAM blocks
// of 128×1024 bits per stage; ~400 hash output bits per stage across its
// hash units; 32 VLIW instruction slots per stage). They are a model, not a
// datasheet: Table 2 comparisons are qualitative.
type Budget struct {
	Stages           int
	SALUsPerStage    int
	SRAMBitsPerStage int
	HashBitsPerStage int
	VLIWPerStage     int
}

// TofinoBudget is the default budget.
var TofinoBudget = Budget{
	Stages:           12,
	SALUsPerStage:    4,
	SRAMBitsPerStage: 80 * 128 * 1024,
	HashBitsPerStage: 416,
	VLIWPerStage:     32,
}

// Builder assembles a Program stage by stage.
type Builder struct {
	name   string
	budget Budget
	stages []*Stage
	regs   map[string]bool
	err    error
	pipes  int
}

// NewBuilder starts a program. pipes is how many of the switch's pipelines
// the program occupies (LruIndex folds 2–4; it scales the Report budget).
func NewBuilder(name string, budget Budget, pipes int) *Builder {
	if pipes < 1 {
		pipes = 1
	}
	return &Builder{name: name, budget: budget, regs: map[string]bool{}, pipes: pipes}
}

func (b *Builder) fail(format string, args ...interface{}) {
	if b.err == nil {
		b.err = fmt.Errorf("pipeline %q: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// Stage appends a new stage and returns its builder.
func (b *Builder) Stage() *StageBuilder {
	st := &Stage{index: len(b.stages)}
	b.stages = append(b.stages, st)
	if len(b.stages) > b.budget.Stages*b.pipes {
		b.fail("stage %d exceeds budget of %d stages × %d pipes",
			st.index, b.budget.Stages, b.pipes)
	}
	return &StageBuilder{b: b, st: st}
}

// Build validates per-stage budgets and returns the program.
func (b *Builder) Build() (*Program, error) {
	for _, st := range b.stages {
		// One stateful ALU per register with attached actions (a Tofino
		// SALU serves one register memory and holds up to 4 register
		// actions of 2 arithmetic branches each).
		st.saluCount = 0
		for _, r := range st.registers {
			if len(r.actions) > 4 {
				b.fail("register %q carries %d actions (SALU limit 4)", r.name, len(r.actions))
			}
			if len(r.actions) > 0 {
				st.saluCount++
			}
		}
		if st.saluCount > b.budget.SALUsPerStage {
			b.fail("stage %d uses %d SALUs (budget %d)", st.index, st.saluCount, b.budget.SALUsPerStage)
		}
		sram := 0
		for _, r := range st.registers {
			sram += r.width * len(r.cells)
		}
		if sram > b.budget.SRAMBitsPerStage {
			b.fail("stage %d uses %d SRAM bits (budget %d)", st.index, sram, b.budget.SRAMBitsPerStage)
		}
		if st.hashBits > b.budget.HashBitsPerStage {
			b.fail("stage %d uses %d hash bits (budget %d)", st.index, st.hashBits, b.budget.HashBitsPerStage)
		}
		if st.vliw > b.budget.VLIWPerStage {
			b.fail("stage %d uses %d VLIW slots (budget %d)", st.index, st.vliw, b.budget.VLIWPerStage)
		}
	}
	if b.err != nil {
		return nil, b.err
	}
	return &Program{name: b.name, stages: b.stages, budget: b.budget, pipes: b.pipes}, nil
}

// StageBuilder adds resources and steps to one stage.
type StageBuilder struct {
	b  *Builder
	st *Stage
}

// Register declares a register array of `cells` cells of `width` bits in
// this stage.
func (s *StageBuilder) Register(name string, width, cells int) *Register {
	if width < 1 || width > 64 {
		s.b.fail("register %q width %d out of [1,64]", name, width)
	}
	if cells < 1 {
		s.b.fail("register %q has %d cells", name, cells)
	}
	if s.b.regs[name] {
		s.b.fail("register %q declared twice", name)
	}
	s.b.regs[name] = true
	r := &Register{
		name:    name,
		width:   width,
		cells:   make([]uint64, maxInt(cells, 1)),
		stage:   s.st.index,
		actions: map[string]*SALUAction{},
	}
	s.st.registers = append(s.st.registers, r)
	return r
}

// Action attaches a register action (one stateful ALU) to a register that
// lives in this stage.
func (s *StageBuilder) Action(r *Register, a SALUAction) {
	if r.stage != s.st.index {
		s.b.fail("action %q on register %q from stage %d attached in stage %d",
			a.Name, r.name, r.stage, s.st.index)
		return
	}
	if _, dup := r.actions[a.Name]; dup {
		s.b.fail("register %q action %q declared twice", r.name, a.Name)
		return
	}
	cp := a
	r.actions[a.Name] = &cp
}

// SALU appends a step invoking action `action` of register r at cell
// Index(phv), writing the branch output into outField ("" to discard).
func (s *StageBuilder) SALU(r *Register, action string, index Operand, outField string, guards ...Guard) {
	if r.stage != s.st.index {
		s.b.fail("SALU step on register %q (stage %d) placed in stage %d", r.name, r.stage, s.st.index)
		return
	}
	if _, ok := r.actions[action]; !ok {
		s.b.fail("SALU step references unknown action %q on register %q", action, r.name)
		return
	}
	s.st.steps = append(s.st.steps, &saluStep{
		guards: guards, reg: r, action: action, index: index, outField: outField,
	})
}

// ALU appends a VLIW instruction dst = a <op> b.
func (s *StageBuilder) ALU(dst string, a Operand, op ALUOp, b Operand, guards ...Guard) {
	s.st.steps = append(s.st.steps, &aluStep{guards: guards, dst: dst, a: a, op: op, b: b})
	s.st.vliw++
}

// Set appends dst = operand. (ALU semantics are dst = a <op> b with OpSet
// yielding b, so the value rides in the b position.)
func (s *StageBuilder) Set(dst string, v Operand, guards ...Guard) {
	s.ALU(dst, C(0), OpSet, v, guards...)
}

// HashIndex appends dst = uniform index of src over [0, mod) using the hash
// engine (charged ceil(log2 mod) hash bits).
func (s *StageBuilder) HashIndex(dst string, src Operand, mod int, seed uint64, guards ...Guard) {
	if mod < 1 {
		s.b.fail("hash step %q with modulus %d", dst, mod)
		return
	}
	bits := 0
	for m := mod - 1; m > 0; m >>= 1 {
		bits++
	}
	s.st.steps = append(s.st.steps, &hashStep{
		guards: guards, dst: dst, src: src, bits: bits, mod: mod, hash: hashingNew(seed),
	})
	s.st.hashBits += bits
}

// HashBits appends dst = bits-wide hash of src (fingerprints).
func (s *StageBuilder) HashBits(dst string, src Operand, bits int, seed uint64, guards ...Guard) {
	if bits < 1 || bits > 64 {
		s.b.fail("hash step %q with %d bits", dst, bits)
		return
	}
	s.st.steps = append(s.st.steps, &hashStep{
		guards: guards, dst: dst, src: src, bits: bits, hash: hashingNew(seed),
	})
	s.st.hashBits += bits
}

// Table appends an exact-match table step dst = entries[key] (deflt on miss).
func (s *StageBuilder) Table(dst string, key Operand, entries map[uint64]uint64, deflt uint64, guards ...Guard) {
	cp := make(map[uint64]uint64, len(entries))
	for k, v := range entries {
		cp[k] = v
	}
	s.st.steps = append(s.st.steps, &tableStep{guards: guards, dst: dst, key: key, entries: cp, deflt: deflt})
	s.st.tableEnts += len(entries)
}

// ---------------------------------------------------------------------------
// Resource accounting (Table 2)
// ---------------------------------------------------------------------------

// Resources summarizes what a program consumes.
type Resources struct {
	Pipes        int
	Stages       int
	Registers    int
	SRAMBits     int
	SALUs        int
	HashBits     int
	VLIW         int
	TableEntries int
}

// Resources tallies the program's usage.
func (p *Program) Resources() Resources {
	res := Resources{Pipes: p.pipes, Stages: len(p.stages)}
	for _, st := range p.stages {
		res.Registers += len(st.registers)
		for _, r := range st.registers {
			res.SRAMBits += r.width * len(r.cells)
		}
		res.SALUs += st.saluCount
		res.HashBits += st.hashBits
		res.VLIW += st.vliw
		res.TableEntries += st.tableEnts
	}
	return res
}

// Report renders usage as percentages of the program's budget across the
// pipes it occupies — the shape of the paper's Table 2.
func (p *Program) Report() string {
	r := p.Resources()
	b := p.budget
	pct := func(used, per int) float64 {
		total := per * b.Stages * p.pipes
		if total == 0 {
			return 0
		}
		return 100 * float64(used) / float64(total)
	}
	lines := []string{
		fmt.Sprintf("program %s (%d pipe(s), %d stages)", p.name, p.pipes, r.Stages),
		fmt.Sprintf("  Hash Bits    %6.2f%%", pct(r.HashBits, b.HashBitsPerStage)),
		fmt.Sprintf("  SRAM         %6.2f%%", pct(r.SRAMBits, b.SRAMBitsPerStage)),
		fmt.Sprintf("  Stateful ALU %6.2f%%", pct(r.SALUs, b.SALUsPerStage)),
		fmt.Sprintf("  VLIW instr   %6.2f%%", pct(r.VLIW, b.VLIWPerStage)),
		fmt.Sprintf("  Stages       %6.2f%%", 100*float64(r.Stages)/float64(b.Stages*p.pipes)),
	}
	return strings.Join(lines, "\n")
}

// UtilizationRow returns Table 2 style percentages keyed by resource name.
func (p *Program) UtilizationRow() map[string]float64 {
	r := p.Resources()
	b := p.budget
	pct := func(used, per int) float64 {
		total := per * b.Stages * p.pipes
		if total == 0 {
			return 0
		}
		return 100 * float64(used) / float64(total)
	}
	return map[string]float64{
		"hash_bits":    pct(r.HashBits, b.HashBitsPerStage),
		"sram":         pct(r.SRAMBits, b.SRAMBitsPerStage),
		"stateful_alu": pct(r.SALUs, b.SALUsPerStage),
		"vliw":         pct(r.VLIW, b.VLIWPerStage),
		"stages":       100 * float64(r.Stages) / float64(b.Stages*p.pipes),
	}
}

// UtilizationKeys returns the row keys in display order.
func UtilizationKeys() []string {
	return []string{"hash_bits", "sram", "stateful_alu", "vliw", "stages"}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
