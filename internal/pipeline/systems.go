package pipeline

import "fmt"

// This file assembles the data-plane programs of the three systems as the
// paper deploys them (Table 2): LruTable on one pipe, LruIndex folded over
// two or four pipes, LruMon over two. They exist to (a) prove the layouts
// fit the budget — Build fails otherwise — and (b) regenerate Table 2's
// resource-utilization rows. The behavioural simulations in internal/nat,
// internal/kvindex and internal/telemetry use the plain-Go structures; the
// per-packet cache behaviour of the pipeline realization is differentially
// verified through CacheArray3.

// BuildLruTableSystem is the §3.1 NAT system: one pipeline holding a 2^16
// unit P4LRU3 read-cache plus the address-translation glue (parse/forward
// stages).
func BuildLruTableSystem(numUnits int, seed uint64, budget Budget) (*Program, error) {
	if numUnits < 1 {
		return nil, fmt.Errorf("pipeline: lrutable with %d units", numUnits)
	}
	b := NewBuilder("lrutable", budget, 1)

	// Parse stage: extract the virtual address into the cache key and tag
	// the packet direction.
	st := b.Stage()
	st.Set(FieldKey, F("dst_ip"))
	st.Set(FieldVal, F("reply_addr"))
	st.Set(FieldPType, F("is_reply"))

	ports, _ := addCacheArray3(b, "nat", numUnits, seed, ModeRead)

	// Forward stage: on a fast-path hit rewrite the destination address
	// from the cached translation; otherwise punt to the slow path.
	fw := b.Stage()
	fw.Set("out_ip", F(ports.ValOut), G(F(ports.Op), CmpNE, C(0)))
	fw.Set("to_slow_path", C(1), G(F(ports.Op), CmpEQ, C(0)))

	return b.Build()
}

// BuildLruIndexSystem is the §3.2 query-acceleration system: `pipes`
// series-connected 2^16-unit P4LRU3 arrays, one per folded pipeline
// (the paper runs the 4-pipe version and also supports 2 and 3).
func BuildLruIndexSystem(pipes, numUnits int, seed uint64, budget Budget) (*Program, error) {
	if pipes < 1 || pipes > 4 {
		return nil, fmt.Errorf("pipeline: lruindex with %d pipes", pipes)
	}
	if numUnits < 1 {
		return nil, fmt.Errorf("pipeline: lruindex with %d units", numUnits)
	}
	b := NewBuilder("lruindex", budget, pipes)
	for i := 0; i < pipes; i++ {
		ports, _ := addCacheArray3(b, fmt.Sprintf("idx%d", i+1), numUnits, seed+uint64(i)*0x9e3779b9, ModeRead)
		// Each level records its hit into the packet's cached_flag.
		st := b.Stage()
		st.Set("cached_flag", C(uint64(i+1)), G(F(ports.Op), CmpNE, C(0)))
		st.Set("cached_index", F(ports.ValOut), G(F(ports.Op), CmpNE, C(0)))
	}
	return b.Build()
}

// BuildLruMonSystem is the §3.3 telemetry system over two folded pipes: the
// Tower filter (2^20 8-bit + 2^19 16-bit counters, each paired with an 8-bit
// reset timestamp packed into the same cell) feeding a 2^17-unit P4LRU3
// write-cache keyed by 32-bit flow fingerprints.
func BuildLruMonSystem(cacheUnits int, towerScale float64, seed uint64, budget Budget) (*Program, error) {
	if cacheUnits < 1 {
		return nil, fmt.Errorf("pipeline: lrumon with %d cache units", cacheUnits)
	}
	if towerScale <= 0 {
		return nil, fmt.Errorf("pipeline: lrumon tower scale %v", towerScale)
	}
	w1 := atLeast(int(float64(1<<20)*towerScale), 1)
	w2 := atLeast(int(float64(1<<19)*towerScale), 1)

	b := NewBuilder("lrumon", budget, 2)

	// Filter pipe: two tower levels. Counter and timestamp share a cell
	// (8+8 and 16+8→24 bits); one SALU action per level increments the
	// counter, lazily resetting on epoch change (predicate on the packed
	// timestamp byte — modelled as the add branch here; the behavioural
	// twin lives in internal/sketch).
	stH := b.Stage()
	stH.HashIndex("g1", F(FieldKey), w1, seed+11)
	stH.HashIndex("g2", F(FieldKey), w2, seed+13)
	stH.HashBits("fp", F(FieldKey), 32, seed+17)

	// A full-size tower level (2^20 × 16-bit cells = 16 Mbit) exceeds one
	// stage's SRAM, so — as on the real chip — each level is sliced into
	// two half-width register arrays in consecutive stages, selected by
	// index range.
	half1, half2 := (w1+1)/2, (w2+1)/2
	stR := b.Stage()
	stR.ALU("g1hi", F("g1"), OpSub, C(uint64(half1)))
	stR.ALU("g2hi", F("g2"), OpSub, C(uint64(half2)))

	addSlice := func(reg string, width, cells int, sat uint64, idxOp Operand, out string, guards ...Guard) {
		st := b.Stage()
		r := st.Register(reg, width, atLeast(cells, 1))
		st.Action(r, SALUAction{
			Name:  "inc",
			Pred:  &SALUPred{Op: CmpLE, Operand: C(sat)},
			True:  SALUBranch{Op: OpAdd, Operand: F(FieldVal), Out: OutNew},
			False: SALUBranch{Op: OpKeep, Out: OutOld},
		})
		st.SALU(r, "inc", idxOp, out, guards...)
	}
	addSlice("tower.c1a", 16, half1, 0xff, F("g1"), "est1", G(F("g1"), CmpLT, C(uint64(half1))))
	addSlice("tower.c1b", 16, w1-half1, 0xff, F("g1hi"), "est1", G(F("g1"), CmpGE, C(uint64(half1))))
	addSlice("tower.c2a", 24, half2, 0xffff, F("g2"), "est2", G(F("g2"), CmpLT, C(uint64(half2))))
	addSlice("tower.c2b", 24, w2-half2, 0xffff, F("g2hi"), "est2", G(F("g2"), CmpGE, C(uint64(half2))))

	// Threshold gate: pass = min(est1, est2) ≥ L. The min and compare run
	// in MAU arithmetic.
	stT := b.Stage()
	stT.Set("est", F("est1"), G(F("est1"), CmpLE, F("est2")))
	stT.Set("est", F("est2"), G(F("est2"), CmpLT, F("est1")))
	stP := b.Stage()
	stP.Set("pass", C(1), G(F("est"), CmpGE, F("threshold")))

	// Cache pipe: the P4LRU3 write-cache keyed by the fingerprint.
	stK := b.Stage()
	stK.Set(FieldKey, F("fp"))
	_, _ = addCacheArray3(b, "mon", cacheUnits, seed, ModeWrite)

	return b.Build()
}

func atLeast(v, lo int) int {
	if v < lo {
		return lo
	}
	return v
}
