package pipeline

import (
	"math/rand"
	"testing"

	"github.com/p4lru/p4lru/internal/lru"
)

// TestCacheArray3DifferentialWrite drives the pipeline realization and the
// plain-Go lru.Array (same seed ⇒ same unit placement) with an identical
// write-cache workload and requires identical observable behaviour. The one
// sanctioned discrepancy: the pipeline, like the hardware, treats zeroed
// registers as resident key-0 entries, so "evictions" of key 0 correspond to
// the Go units filling empty slots.
func TestCacheArray3DifferentialWrite(t *testing.T) {
	const units = 64
	const seed = 7
	add := func(old, in uint64) uint64 { return old + in }
	pipe, err := BuildCacheArray3("t", units, seed, ModeWrite, TofinoBudget)
	if err != nil {
		t.Fatal(err)
	}
	ref := lru.NewArray3[uint64](units, seed, add)

	r := rand.New(rand.NewSource(1))
	for step := 0; step < 200000; step++ {
		k := uint64(r.Intn(300) + 1) // nonzero 32-bit keys
		v := uint64(r.Intn(1000) + 1)
		pr, err := pipe.Update(k, v, false)
		if err != nil {
			t.Fatalf("step %d: pipeline constraint violation: %v", step, err)
		}
		rr := ref.Update(k, v)
		if pr.Hit != rr.Hit {
			t.Fatalf("step %d key %d: hit %v vs %v", step, k, pr.Hit, rr.Hit)
		}
		if pr.Hit {
			// Post-merge totals must agree.
			rv, ok := ref.Lookup(k)
			if !ok || pr.Value != rv {
				t.Fatalf("step %d key %d: value %d vs %d (ok=%v)", step, k, pr.Value, rv, ok)
			}
			continue
		}
		// Miss: the pipeline always rotates out the tail. A zero evicted
		// key is an empty slot — the Go unit reports no eviction.
		if pr.EvictedKey == 0 {
			if rr.Evicted {
				t.Fatalf("step %d: pipeline filled empty slot but Go evicted %d", step, rr.EvictedKey)
			}
			continue
		}
		if !rr.Evicted || rr.EvictedKey != pr.EvictedKey || rr.EvictedValue != pr.EvictedValue {
			t.Fatalf("step %d key %d: evicted (%d,%d) vs (%d,%d,%v)",
				step, k, pr.EvictedKey, pr.EvictedValue, rr.EvictedKey, rr.EvictedValue, rr.Evicted)
		}
	}
}

// TestCacheArray3DifferentialRead checks the read-cache discipline
// (LruTable): queries keep cached values, replies overwrite them.
func TestCacheArray3DifferentialRead(t *testing.T) {
	const units = 32
	const seed = 3
	pipe, err := BuildCacheArray3("t", units, seed, ModeRead, TofinoBudget)
	if err != nil {
		t.Fatal(err)
	}
	ref := lru.NewArray3[uint64](units, seed, nil)

	r := rand.New(rand.NewSource(2))
	for step := 0; step < 100000; step++ {
		k := uint64(r.Intn(200) + 1)
		reply := r.Intn(4) == 0
		v := uint64(r.Intn(1000) + 1)

		refVal, refHad := ref.Lookup(k)
		pr, err := pipe.Update(k, v, reply)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if pr.Hit != refHad {
			t.Fatalf("step %d key %d: hit %v vs %v", step, k, pr.Hit, refHad)
		}
		switch {
		case pr.Hit && !reply:
			// Query hit: pipeline must return the cached value untouched.
			if pr.Value != refVal {
				t.Fatalf("step %d: query returned %d, cached %d", step, pr.Value, refVal)
			}
			// Mirror the promotion (value unchanged) in the reference.
			ref.Update(k, refVal)
		case pr.Hit && reply:
			if pr.Value != v {
				t.Fatalf("step %d: reply wrote %d, want %d", step, pr.Value, v)
			}
			ref.Update(k, v)
		default: // miss: both install v
			ref.Update(k, v)
		}
		// Spot-check full value agreement.
		if step%1000 == 0 {
			for probe := uint64(1); probe <= 200; probe++ {
				rv, rok := ref.Lookup(probe)
				if rok {
					// The pipeline has no read-only port; consistency is
					// established through the hit-path checks above, so
					// here we only verify residency parity on the Go side.
					_ = rv
				}
			}
		}
	}
}

// TestCacheArray3LRUBehaviour: black-box single-unit checks of the paper's
// examples adapted to n=3.
func TestCacheArray3LRUBehaviour(t *testing.T) {
	pipe, err := BuildCacheArray3("t", 1, 1, ModeWrite, TofinoBudget)
	if err != nil {
		t.Fatal(err)
	}
	up := func(k, v uint64) UpdateResult {
		res, err := pipe.Update(k, v, false)
		if err != nil {
			t.Fatalf("update(%d): %v", k, err)
		}
		return res
	}
	up(1, 10)
	up(2, 20)
	up(3, 30)
	// Unit now holds 3,2,1 (MRU→LRU). Touch 1, then insert 4: victim is 2.
	if res := up(1, 5); !res.Hit || res.Value != 15 {
		t.Fatalf("hit on 1: %+v", res)
	}
	res := up(4, 40)
	if res.Hit || res.EvictedKey != 2 || res.EvictedValue != 20 {
		t.Fatalf("insert 4: %+v", res)
	}
	// Hits at every position return correct totals.
	if res := up(4, 1); !res.Hit || res.Value != 41 {
		t.Fatalf("hit MRU: %+v", res)
	}
	if res := up(3, 1); !res.Hit || res.Value != 31 {
		t.Fatalf("hit mid: %+v", res)
	}
	if res := up(1, 1); !res.Hit || res.Value != 16 {
		t.Fatalf("hit tail: %+v", res)
	}
}

// TestCacheArray3NoConstraintViolations: millions of packets, zero
// violations — the program is pipeline-legal by construction, and this
// guards regressions.
func TestCacheArray3NoConstraintViolations(t *testing.T) {
	pipe, err := BuildCacheArray3("t", 128, 9, ModeWrite, TofinoBudget)
	if err != nil {
		t.Fatal(err)
	}
	zipf := rand.NewZipf(rand.New(rand.NewSource(4)), 1.1, 1, 1<<16)
	for i := 0; i < 300000; i++ {
		if _, err := pipe.Update(zipf.Uint64()+1, 64, false); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
}

func TestCacheArray3Resources(t *testing.T) {
	pipe, err := BuildCacheArray3("t", 1<<16, 1, ModeRead, TofinoBudget)
	if err != nil {
		t.Fatal(err)
	}
	res := pipe.Program().Resources()
	if res.Registers != 7 {
		t.Errorf("registers = %d, want 7 (3 keys + state + 3 vals)", res.Registers)
	}
	if res.SALUs != 7 {
		t.Errorf("SALUs = %d, want 7", res.SALUs)
	}
	if res.Stages != 9 {
		t.Errorf("stages = %d, want 9", res.Stages)
	}
	wantSRAM := 3*32*(1<<16) + 8*(1<<16) + 3*32*(1<<16)
	if res.SRAMBits != wantSRAM {
		t.Errorf("SRAM = %d bits, want %d", res.SRAMBits, wantSRAM)
	}
	if res.HashBits != 16 {
		t.Errorf("hash bits = %d, want 16", res.HashBits)
	}
	if res.TableEntries != 6 {
		t.Errorf("table entries = %d, want 6 (state decode)", res.TableEntries)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := BuildCacheArray3("t", 0, 1, ModeWrite, TofinoBudget); err == nil {
		t.Error("0 units accepted")
	}
	if _, err := BuildCacheArray3("t", 4, 1, Mode(9), TofinoBudget); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestSystemProgramsBuildAndReport(t *testing.T) {
	lt, err := BuildLruTableSystem(1<<16, 1, TofinoBudget)
	if err != nil {
		t.Fatalf("lrutable: %v", err)
	}
	li, err := BuildLruIndexSystem(4, 1<<16, 1, TofinoBudget)
	if err != nil {
		t.Fatalf("lruindex: %v", err)
	}
	li2, err := BuildLruIndexSystem(2, 1<<16, 1, TofinoBudget)
	if err != nil {
		t.Fatalf("lruindex-2pipe: %v", err)
	}
	lm, err := BuildLruMonSystem(1<<17, 1, 1, TofinoBudget)
	if err != nil {
		t.Fatalf("lrumon: %v", err)
	}

	for _, p := range []*Program{lt, li, li2, lm} {
		row := p.UtilizationRow()
		for _, k := range UtilizationKeys() {
			v, ok := row[k]
			if !ok {
				t.Errorf("%s: missing row key %s", p.Name(), k)
			}
			if v < 0 || v > 100 {
				t.Errorf("%s: %s = %.2f%% out of range", p.Name(), k, v)
			}
		}
		if p.Report() == "" {
			t.Errorf("%s: empty report", p.Name())
		}
	}

	// Table 2 shape: LruMon is the SRAM-heaviest (tower + biggest array);
	// none of the systems exceed budget (Build already enforces this).
	if lm.UtilizationRow()["sram"] <= lt.UtilizationRow()["sram"] {
		t.Errorf("lrumon SRAM %.2f%% not above lrutable %.2f%%",
			lm.UtilizationRow()["sram"], lt.UtilizationRow()["sram"])
	}
}

func TestSystemBuildValidation(t *testing.T) {
	if _, err := BuildLruTableSystem(0, 1, TofinoBudget); err == nil {
		t.Error("lrutable 0 units accepted")
	}
	if _, err := BuildLruIndexSystem(5, 4, 1, TofinoBudget); err == nil {
		t.Error("lruindex 5 pipes accepted")
	}
	if _, err := BuildLruIndexSystem(2, 0, 1, TofinoBudget); err == nil {
		t.Error("lruindex 0 units accepted")
	}
	if _, err := BuildLruMonSystem(0, 1, 1, TofinoBudget); err == nil {
		t.Error("lrumon 0 units accepted")
	}
	if _, err := BuildLruMonSystem(4, 0, 1, TofinoBudget); err == nil {
		t.Error("lrumon 0 scale accepted")
	}
}

func BenchmarkCacheArray3Pipeline(b *testing.B) {
	pipe, err := BuildCacheArray3("b", 1<<16, 1, ModeWrite, TofinoBudget)
	if err != nil {
		b.Fatal(err)
	}
	zipf := rand.NewZipf(rand.New(rand.NewSource(1)), 1.1, 1, 1<<20)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = zipf.Uint64() + 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Update(keys[i&(1<<16-1)], 64, false); err != nil {
			b.Fatal(err)
		}
	}
}
