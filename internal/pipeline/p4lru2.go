package pipeline

import "fmt"

// CacheArray2 is the P4LRU2 deployment of §2.3.1: two key registers, a
// one-bit state register whose single SALU action covers both transition
// branches (S and S^1 — one stateful ALU suffices, as the paper notes), and
// two value registers, in 6 stages.
type CacheArray2 struct {
	prog  *Program
	ports arrayPorts
	units int
}

// BuildCacheArray2 assembles and validates a P4LRU2 cache-array program
// (write-cache discipline). Seeds match lru.NewArray with Unit2 units.
func BuildCacheArray2(name string, numUnits int, seed uint64, budget Budget) (*CacheArray2, error) {
	if numUnits < 1 {
		return nil, fmt.Errorf("pipeline: cache array with %d units", numUnits)
	}
	b := NewBuilder(name, budget, 1)
	p := portsFor(name)
	key := F(FieldKey)
	idxF := name + ".idx"
	idx := F(idxF)
	evk1 := name + ".evk1"

	// Stage 0: index hash + defaults.
	st0 := b.Stage()
	st0.HashIndex(idxF, key, numUnits, seed)
	st0.Set(p.Op, C(0))

	// Stage 1: unconditional swap of key[1].
	st1 := b.Stage()
	key1 := st1.Register(name+".key1", 32, numUnits)
	st1.Action(key1, SALUAction{
		Name: "swap",
		True: SALUBranch{Op: OpSet, Operand: key, Out: OutOld},
	})
	st1.SALU(key1, "swap", idx, evk1)

	// Stage 2: hit-at-1 detection + conditional swap of key[2].
	st2 := b.Stage()
	st2.Set(p.Op, C(1), G(F(evk1), CmpEQ, key))
	key2 := st2.Register(name+".key2", 32, numUnits)
	st2.Action(key2, SALUAction{
		Name: "swap",
		True: SALUBranch{Op: OpSet, Operand: F(evk1), Out: OutOld},
	})
	st2.SALU(key2, "swap", idx, p.EvKey, G(F(evk1), CmpNE, key))

	// Stage 3: hit-at-2 detection + the one-bit state DFA. §2.3.1: hit at
	// key[1] keeps S; hit at key[2] or a miss flips it — both transitions
	// fit a single register action pair on one SALU.
	st3 := b.Stage()
	st3.Set(p.Op, C(2), G(F(p.Op), CmpNE, C(1)), G(F(p.EvKey), CmpEQ, key))
	state := st3.Register(name+".state", 1, numUnits)
	st3.Action(state, SALUAction{
		Name: "keep",
		True: SALUBranch{Op: OpKeep, Out: OutNew},
	})
	st3.Action(state, SALUAction{
		Name: "flip",
		True: SALUBranch{Op: OpXor, Operand: C(1), Out: OutNew},
	})
	st3.SALU(state, "keep", idx, p.State, G(F(p.Op), CmpEQ, C(1)))
	st3.SALU(state, "flip", idx, p.State, G(F(p.Op), CmpNE, C(1)))

	// Stage 4/5: the two value registers; the new MRU key's slot is
	// val[S'(1)] = S' itself for n=2 (state 0 → slot 0, state 1 → slot 1).
	for i := 0; i < 2; i++ {
		st := b.Stage()
		r := st.Register(fmt.Sprintf("%s.val%d", name, i+1), 32, numUnits)
		sel := G(F(p.State), CmpEQ, C(uint64(i)))
		st.Action(r, SALUAction{
			Name: "merge",
			True: SALUBranch{Op: OpAdd, Operand: F(FieldVal), Out: OutNew},
		})
		st.Action(r, SALUAction{
			Name: "insert",
			True: SALUBranch{Op: OpSet, Operand: F(FieldVal), Out: OutOld},
		})
		st.SALU(r, "merge", idx, p.ValOut, sel, G(F(p.Op), CmpNE, C(0)))
		st.SALU(r, "insert", idx, p.ValOut, sel, G(F(p.Op), CmpEQ, C(0)))
	}

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &CacheArray2{prog: prog, ports: p, units: numUnits}, nil
}

// Program exposes the underlying program.
func (c *CacheArray2) Program() *Program { return c.prog }

// Update pushes one write-cache packet through the pipeline.
func (c *CacheArray2) Update(key, val uint64) (UpdateResult, error) {
	phv := NewPHV(map[string]uint64{FieldKey: key, FieldVal: val})
	if err := c.prog.Run(phv); err != nil {
		return UpdateResult{}, err
	}
	op := phv.Get(c.ports.Op)
	res := UpdateResult{Hit: op != 0, HitPos: int(op), Value: phv.Get(c.ports.ValOut)}
	if op == 0 {
		res.EvictedKey = phv.Get(c.ports.EvKey)
		res.EvictedValue = phv.Get(c.ports.ValOut)
	}
	return res, nil
}
