package pipeline

import (
	"time"

	"github.com/p4lru/p4lru/internal/policy"
)

// PolicyCache adapts a CacheArray3 to policy.Cache, so the system simulators
// (internal/nat, internal/telemetry) can run *directly on the
// pipeline-realized data plane* instead of the plain-Go structures — the
// strongest end-to-end check that the constraint-enforcing program and the
// reference implementation tell the same system-level story.
//
// Conventions: keys are nonzero 32-bit values (key 0 is the hardware's empty
// slot). In ModeRead, an update with value 0 is a query-direction packet
// (placeholder insert / read-only hit) and a nonzero value is a reply
// carrying a translation — exactly the LruTable protocol with
// nat.Placeholder = 0. Query/Len/Range are control-plane readouts.
type PolicyCache struct {
	arr *CacheArray3
}

// AsPolicyCache wraps the array. A pipeline constraint violation inside
// Update panics: the programs are validated to never violate (differential
// tests), so a violation is a program bug, not an input condition.
func (c *CacheArray3) AsPolicyCache() *PolicyCache { return &PolicyCache{arr: c} }

// Name implements policy.Cache.
func (p *PolicyCache) Name() string { return "p4lru3-pipeline" }

// Query implements policy.Cache (control-plane readout).
func (p *PolicyCache) Query(k uint64) (uint64, policy.Token, bool) {
	v, ok := p.arr.Lookup(k)
	return v, policy.NoToken, ok
}

// Update implements policy.Cache by pushing a packet through the program.
func (p *PolicyCache) Update(k, v uint64, _ policy.Token, _ time.Duration) policy.Result {
	reply := p.arr.mode == ModeRead && v != 0
	res, err := p.arr.Update(k, v, reply)
	if err != nil {
		panic("pipeline: constraint violation in validated program: " + err.Error())
	}
	out := policy.Result{Hit: res.Hit, Admitted: !res.Hit}
	if !res.Hit && res.EvictedKey != 0 {
		out.Evicted = true
		out.EvictedKey = res.EvictedKey
		out.EvictedValue = res.EvictedValue
	}
	return out
}

// Len implements policy.Cache (control-plane readout).
func (p *PolicyCache) Len() int { return p.arr.Len() }

// Capacity implements policy.Cache.
func (p *PolicyCache) Capacity() int { return p.arr.Units() * 3 }

// Range implements policy.Cache (control-plane readout).
func (p *PolicyCache) Range(fn func(k, v uint64) bool) { p.arr.Range(fn) }

var _ policy.Cache = (*PolicyCache)(nil)
