package pipeline

import (
	"math/rand"
	"testing"

	"github.com/p4lru/p4lru/internal/lru"
)

// TestIndexDataplaneSingleLevelExact: with one level the tail path never
// fires, so the data plane must match lru.Series(levels=1) exactly once the
// usual zero-key warmup discrepancy is accounted for (misses that "evict"
// key 0 are fills on the Go side).
func TestIndexDataplaneSingleLevelExact(t *testing.T) {
	const units = 32
	dp, err := BuildLruIndexDataplane(1, units, 7, TofinoBudget)
	if err != nil {
		t.Fatal(err)
	}
	ref := lru.NewSeries3[uint64](1, units, 7, nil)

	r := rand.New(rand.NewSource(1))
	for step := 0; step < 60000; step++ {
		k := uint64(r.Intn(250) + 1)
		q, err := dp.Query(k)
		if err != nil {
			t.Fatalf("step %d query: %v", step, err)
		}
		rv, rlevel, rok := ref.Query(k)
		if (q.Flag != 0) != rok || q.Flag != rlevel {
			t.Fatalf("step %d key %d: flag %d vs level %d (ok=%v)", step, k, q.Flag, rlevel, rok)
		}
		if rok && q.Index != rv {
			t.Fatalf("step %d key %d: index %d vs %d", step, k, q.Index, rv)
		}
		v := uint64(step + 1)
		if err := dp.Reply(k, v, q.Flag); err != nil {
			t.Fatalf("step %d reply: %v", step, err)
		}
		ref.Reply(k, v, rlevel)
	}
}

// TestIndexDataplaneSelfConsistency: across any number of levels, a query
// hit must return exactly the value most recently stored for that key — the
// key↔value mapping survives every rotation, transition, and demotion.
func TestIndexDataplaneSelfConsistency(t *testing.T) {
	for _, levels := range []int{2, 3, 4} {
		dp, err := BuildLruIndexDataplane(levels, 16, 3, TofinoBudget)
		if err != nil {
			t.Fatalf("levels=%d: %v", levels, err)
		}
		stored := map[uint64]uint64{}
		r := rand.New(rand.NewSource(int64(levels)))
		for step := 0; step < 60000; step++ {
			k := uint64(r.Intn(400) + 1)
			q, err := dp.Query(k)
			if err != nil {
				t.Fatalf("levels=%d step %d query: %v", levels, step, err)
			}
			if q.Flag != 0 {
				want, ok := stored[k]
				if !ok {
					t.Fatalf("levels=%d step %d: hit on never-stored key %d", levels, step, k)
				}
				if q.Index != want {
					t.Fatalf("levels=%d step %d key %d: index %d, want %d — mapping corrupted",
						levels, step, k, q.Index, want)
				}
			}
			v := uint64(step)<<16 | k // distinctive value per (step, key)
			if err := dp.Reply(k, v, q.Flag); err != nil {
				t.Fatalf("levels=%d step %d reply: %v", levels, step, err)
			}
			stored[k] = v
		}
	}
}

// TestIndexDataplaneHitRateMatchesSeries: aggregate behaviour tracks the Go
// series closely (states can diverge transiently through the hardware's
// tail-replacement on non-full units, but hit rates must agree).
func TestIndexDataplaneHitRateMatchesSeries(t *testing.T) {
	const levels, units = 4, 32
	dp, err := BuildLruIndexDataplane(levels, units, 9, TofinoBudget)
	if err != nil {
		t.Fatal(err)
	}
	ref := lru.NewSeries3[uint64](levels, units, 9, nil)

	zipf := rand.NewZipf(rand.New(rand.NewSource(2)), 1.1, 1, 4000)
	dpHits, refHits := 0, 0
	const steps = 80000
	for step := 0; step < steps; step++ {
		k := zipf.Uint64() + 1
		q, err := dp.Query(k)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if q.Flag != 0 {
			dpHits++
		}
		_, rlevel, rok := ref.Query(k)
		if rok {
			refHits++
		}
		v := uint64(step + 1)
		if err := dp.Reply(k, v, q.Flag); err != nil {
			t.Fatalf("step %d reply: %v", step, err)
		}
		ref.Reply(k, v, rlevel)
	}
	dpRate := float64(dpHits) / steps
	refRate := float64(refHits) / steps
	if diff := dpRate - refRate; diff < -0.02 || diff > 0.02 {
		t.Errorf("hit rates diverge: dataplane %.4f vs series %.4f", dpRate, refRate)
	}
	if dpHits == 0 {
		t.Error("dataplane never hit")
	}
}

// TestIndexDataplaneDemotion: a key pushed out of level 1 must become
// retrievable at level 2 with its value intact.
func TestIndexDataplaneDemotion(t *testing.T) {
	// One unit per level so placement is deterministic.
	dp, err := BuildLruIndexDataplane(2, 1, 5, TofinoBudget)
	if err != nil {
		t.Fatal(err)
	}
	insert := func(k, v uint64) {
		q, err := dp.Query(k)
		if err != nil {
			t.Fatal(err)
		}
		if err := dp.Reply(k, v, q.Flag); err != nil {
			t.Fatal(err)
		}
	}
	// Fill level 1's single unit (3 entries) and push one more.
	insert(1, 101)
	insert(2, 102)
	insert(3, 103)
	insert(4, 104) // demotes key 1 to level 2's tail
	q, err := dp.Query(1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Flag != 2 {
		t.Fatalf("demoted key at flag %d, want level 2", q.Flag)
	}
	if q.Index != 101 {
		t.Fatalf("demoted value %d, want 101", q.Index)
	}
	// Keys 2–4 stay at level 1.
	for k := uint64(2); k <= 4; k++ {
		q, _ := dp.Query(k)
		if q.Flag != 1 || q.Index != 100+k {
			t.Errorf("key %d: flag=%d index=%d", k, q.Flag, q.Index)
		}
	}
}

// TestIndexDataplaneQueryIsReadOnly: queries never change subsequent
// outcomes.
func TestIndexDataplaneQueryIsReadOnly(t *testing.T) {
	dp, err := BuildLruIndexDataplane(2, 4, 11, TofinoBudget)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 10; k++ {
		q, _ := dp.Query(k)
		_ = dp.Reply(k, k*7, q.Flag)
	}
	// Hammer queries; outcomes must be stable.
	first := map[uint64]QueryOutcome{}
	for round := 0; round < 50; round++ {
		for k := uint64(1); k <= 10; k++ {
			q, err := dp.Query(k)
			if err != nil {
				t.Fatal(err)
			}
			if round == 0 {
				first[k] = q
				continue
			}
			if q != first[k] {
				t.Fatalf("query outcome for %d drifted: %+v vs %+v", k, q, first[k])
			}
		}
	}
}

func TestIndexDataplaneResources(t *testing.T) {
	dp, err := BuildLruIndexDataplane(4, 1<<16, 1, TofinoBudget)
	if err != nil {
		t.Fatal(err)
	}
	res := dp.Program().Resources()
	if res.Stages > TofinoBudget.Stages*4 {
		t.Errorf("stages %d exceed 4-pipe budget", res.Stages)
	}
	if res.Registers != 4*7 {
		t.Errorf("registers = %d, want 28 (7 per level)", res.Registers)
	}
	if res.TableEntries != 4*18 {
		t.Errorf("table entries = %d, want 72 (18-entry decode per level)", res.TableEntries)
	}
}

func TestIndexDataplaneValidation(t *testing.T) {
	if _, err := BuildLruIndexDataplane(0, 4, 1, TofinoBudget); err == nil {
		t.Error("0 levels accepted")
	}
	if _, err := BuildLruIndexDataplane(5, 4, 1, TofinoBudget); err == nil {
		t.Error("5 levels accepted")
	}
	if _, err := BuildLruIndexDataplane(2, 0, 1, TofinoBudget); err == nil {
		t.Error("0 units accepted")
	}
}

func BenchmarkIndexDataplaneQueryReply(b *testing.B) {
	dp, err := BuildLruIndexDataplane(4, 1<<12, 1, TofinoBudget)
	if err != nil {
		b.Fatal(err)
	}
	zipf := rand.NewZipf(rand.New(rand.NewSource(1)), 1.1, 1, 1<<16)
	keys := make([]uint64, 1<<14)
	for i := range keys {
		keys[i] = zipf.Uint64() + 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(1<<14-1)]
		q, err := dp.Query(k)
		if err != nil {
			b.Fatal(err)
		}
		if err := dp.Reply(k, uint64(i), q.Flag); err != nil {
			b.Fatal(err)
		}
	}
}
