package pipeline

import (
	"strings"
	"testing"
)

// buildOneRegProgram makes a minimal program: one counter register with an
// "inc" action, plus optionally a second step touching the same register.
func buildOneRegProgram(t *testing.T, doubleAccess bool) *Program {
	t.Helper()
	b := NewBuilder("test", TofinoBudget, 1)
	st := b.Stage()
	r := st.Register("ctr", 32, 16)
	st.Action(r, SALUAction{Name: "inc", True: SALUBranch{Op: OpAdd, Operand: C(1), Out: OutNew}})
	st.SALU(r, "inc", F("idx"), "out")
	if doubleAccess {
		st.SALU(r, "inc", F("idx"), "out2")
	}
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestSALUBasics(t *testing.T) {
	p := buildOneRegProgram(t, false)
	for i := 1; i <= 3; i++ {
		phv := NewPHV(map[string]uint64{"idx": 5})
		if err := p.Run(phv); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if got := phv.Get("out"); got != uint64(i) {
			t.Errorf("run %d: out = %d", i, got)
		}
	}
}

// TestSecondDataTraversalRejected: the central §2.1 constraint — touching
// the same register twice in one packet is a violation.
func TestSecondDataTraversalRejected(t *testing.T) {
	p := buildOneRegProgram(t, true)
	err := p.Run(NewPHV(map[string]uint64{"idx": 0}))
	if err == nil || !strings.Contains(err.Error(), "second data traversal") {
		t.Fatalf("double register access not rejected: %v", err)
	}
}

// TestGuardedSecondAccessAllowed: two steps on one register whose guards are
// disjoint never both execute, so the program is legal per packet.
func TestGuardedSecondAccessAllowed(t *testing.T) {
	b := NewBuilder("test", TofinoBudget, 1)
	st := b.Stage()
	r := st.Register("ctr", 32, 4)
	st.Action(r, SALUAction{Name: "inc", True: SALUBranch{Op: OpAdd, Operand: C(1), Out: OutNew}})
	st.Action(r, SALUAction{Name: "dec", True: SALUBranch{Op: OpSub, Operand: C(1), Out: OutNew}})
	st.SALU(r, "inc", F("idx"), "out", G(F("sel"), CmpEQ, C(0)))
	st.SALU(r, "dec", F("idx"), "out", G(F("sel"), CmpNE, C(0)))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(NewPHV(map[string]uint64{"idx": 1, "sel": 0})); err != nil {
		t.Fatalf("inc path: %v", err)
	}
	if err := p.Run(NewPHV(map[string]uint64{"idx": 1, "sel": 1})); err != nil {
		t.Fatalf("dec path: %v", err)
	}
	if got := r.Cell(1); got != 0 {
		t.Errorf("cell = %d, want 0 after inc+dec", got)
	}
}

// TestStageVisibility: PHV writes are invisible within their own stage and
// visible in the next — the pipeline property that forces P4LRU's layout.
func TestStageVisibility(t *testing.T) {
	b := NewBuilder("test", TofinoBudget, 1)
	st0 := b.Stage()
	st0.Set("x", C(7))
	st0.ALU("sameStage", F("x"), OpAdd, C(0)) // reads stage-entry x (0)
	st1 := b.Stage()
	st1.ALU("nextStage", F("x"), OpAdd, C(0)) // reads committed x (7)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	phv := NewPHV(nil)
	if err := p.Run(phv); err != nil {
		t.Fatal(err)
	}
	if got := phv.Get("sameStage"); got != 0 {
		t.Errorf("same-stage read = %d, want 0 (stage-entry view)", got)
	}
	if got := phv.Get("nextStage"); got != 7 {
		t.Errorf("next-stage read = %d, want 7", got)
	}
}

func TestVLIWConflictRejected(t *testing.T) {
	b := NewBuilder("test", TofinoBudget, 1)
	st := b.Stage()
	st.Set("x", C(1))
	st.Set("x", C(2))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	err = p.Run(NewPHV(nil))
	if err == nil || !strings.Contains(err.Error(), "VLIW conflict") {
		t.Fatalf("double field write not rejected: %v", err)
	}
}

func TestRegisterWidthMasking(t *testing.T) {
	b := NewBuilder("test", TofinoBudget, 1)
	st := b.Stage()
	r := st.Register("st8", 8, 2)
	st.Action(r, SALUAction{Name: "add", True: SALUBranch{Op: OpAdd, Operand: F("d"), Out: OutNew}})
	st.SALU(r, "add", C(0), "out")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	phv := NewPHV(map[string]uint64{"d": 300})
	if err := p.Run(phv); err != nil {
		t.Fatal(err)
	}
	if got := phv.Get("out"); got != 300&0xff {
		t.Errorf("8-bit register value = %d, want %d", got, 300&0xff)
	}
}

func TestIndexOutOfRange(t *testing.T) {
	p := buildOneRegProgram(t, false)
	if err := p.Run(NewPHV(map[string]uint64{"idx": 99})); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestSALUPredicateBranches(t *testing.T) {
	// Reproduce the op3 arithmetic: S-2 if S≥2 else S+4, and check both
	// branches fire correctly.
	b := NewBuilder("test", TofinoBudget, 1)
	st := b.Stage()
	r := st.Register("state", 8, 1)
	st.Action(r, SALUAction{
		Name:  "op3",
		Pred:  &SALUPred{Op: CmpGE, Operand: C(2)},
		True:  SALUBranch{Op: OpSub, Operand: C(2), Out: OutNew},
		False: SALUBranch{Op: OpAdd, Operand: C(4), Out: OutNew},
	})
	st.SALU(r, "op3", C(0), "s")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	r.SetCell(0, 4)
	want := []uint64{2, 0, 4, 2, 0, 4} // the C3 cycle of Figure 5
	for i, w := range want {
		phv := NewPHV(nil)
		if err := p.Run(phv); err != nil {
			t.Fatal(err)
		}
		if got := phv.Get("s"); got != w {
			t.Fatalf("step %d: state %d, want %d", i, got, w)
		}
	}
}

func TestBudgetViolations(t *testing.T) {
	tiny := Budget{Stages: 2, SALUsPerStage: 1, SRAMBitsPerStage: 1024, HashBitsPerStage: 8, VLIWPerStage: 1}

	// Too many stages.
	b := NewBuilder("stages", tiny, 1)
	for i := 0; i < 3; i++ {
		b.Stage()
	}
	if _, err := b.Build(); err == nil {
		t.Error("stage overflow accepted")
	}

	// Too many SALUs in one stage.
	b = NewBuilder("salus", tiny, 1)
	st := b.Stage()
	r1 := st.Register("a", 8, 4)
	r2 := st.Register("b", 8, 4)
	st.Action(r1, SALUAction{Name: "x", True: SALUBranch{Op: OpKeep}})
	st.Action(r2, SALUAction{Name: "x", True: SALUBranch{Op: OpKeep}})
	if _, err := b.Build(); err == nil {
		t.Error("SALU overflow accepted")
	}

	// SRAM overflow.
	b = NewBuilder("sram", tiny, 1)
	b.Stage().Register("big", 32, 1024)
	if _, err := b.Build(); err == nil {
		t.Error("SRAM overflow accepted")
	}

	// Hash bits overflow.
	b = NewBuilder("hash", tiny, 1)
	b.Stage().HashBits("h", F("k"), 32, 1)
	if _, err := b.Build(); err == nil {
		t.Error("hash overflow accepted")
	}

	// VLIW overflow.
	b = NewBuilder("vliw", tiny, 1)
	st = b.Stage()
	st.Set("a", C(1))
	st.Set("b", C(2))
	if _, err := b.Build(); err == nil {
		t.Error("VLIW overflow accepted")
	}

	// Too many actions on one register.
	b = NewBuilder("actions", TofinoBudget, 1)
	st = b.Stage()
	r := st.Register("r", 8, 4)
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		st.Action(r, SALUAction{Name: n, True: SALUBranch{Op: OpKeep}})
	}
	if _, err := b.Build(); err == nil {
		t.Error("5 register actions accepted (SALU holds 4)")
	}

	// Duplicate register name.
	b = NewBuilder("dup", TofinoBudget, 1)
	st = b.Stage()
	st.Register("r", 8, 4)
	b.Stage().Register("r", 8, 4)
	if _, err := b.Build(); err == nil {
		t.Error("duplicate register accepted")
	}
}

func TestTableStep(t *testing.T) {
	b := NewBuilder("table", TofinoBudget, 1)
	st := b.Stage()
	st.Table("out", F("in"), map[uint64]uint64{1: 10, 2: 20}, 99)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for in, want := range map[uint64]uint64{1: 10, 2: 20, 3: 99} {
		phv := NewPHV(map[string]uint64{"in": in})
		if err := p.Run(phv); err != nil {
			t.Fatal(err)
		}
		if got := phv.Get("out"); got != want {
			t.Errorf("table[%d] = %d, want %d", in, got, want)
		}
	}
}

func TestHashIndexDeterministicAndBounded(t *testing.T) {
	b := NewBuilder("hash", TofinoBudget, 1)
	b.Stage().HashIndex("i", F("k"), 100, 42)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]uint64{}
	for k := uint64(0); k < 1000; k++ {
		phv := NewPHV(map[string]uint64{"k": k})
		if err := p.Run(phv); err != nil {
			t.Fatal(err)
		}
		i := phv.Get("i")
		if i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
		seen[k] = i
	}
	// Re-run: same mapping.
	for k, want := range seen {
		phv := NewPHV(map[string]uint64{"k": k})
		_ = p.Run(phv)
		if phv.Get("i") != want {
			t.Fatal("hash index not deterministic")
		}
	}
}

func TestFieldToFieldGuards(t *testing.T) {
	b := NewBuilder("guards", TofinoBudget, 1)
	st := b.Stage()
	st.Set("eq", C(1), G(F("a"), CmpEQ, F("b")))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	phv := NewPHV(map[string]uint64{"a": 5, "b": 5})
	_ = p.Run(phv)
	if phv.Get("eq") != 1 {
		t.Error("field==field guard did not fire")
	}
	phv = NewPHV(map[string]uint64{"a": 5, "b": 6})
	_ = p.Run(phv)
	if phv.Get("eq") != 0 {
		t.Error("field==field guard fired spuriously")
	}
}
