// Package pipeline models a Tofino-style RMT (Reconfigurable Match Table)
// packet-processing pipeline precisely enough to *validate* the data-plane
// constraints the paper's design revolves around (§2.1, §2.3):
//
//   - a packet traverses the stages strictly in order;
//   - each register array can be accessed at most once per packet — the
//     "no second data traversal" rule that rules out classical LRU;
//   - register state can only be mutated by a stateful ALU (SALU) whose
//     program is one predicate over the stored value plus two arithmetic
//     branches (±/XOR/assign with a constant or a header field), mirroring
//     Tofino's register action model ("read register – lookup table – write
//     register" is inexpressible, exactly as §2.3 notes);
//   - PHV writes made in a stage become visible only in later stages
//     (intra-stage steps execute on the stage-entry view);
//   - per-stage and per-pipeline resource budgets (stages, SALUs, SRAM,
//     hash bits) are enforced at build time and reported like Table 2.
//
// The P4LRU programs in this package are differentially tested against the
// plain-Go implementations in internal/lru: same hash placement, same
// observable behaviour. Where internal/lru tracks an explicit fill count,
// the pipeline — like the real switch — starts from zeroed registers and
// treats key 0 as an ordinary resident entry; the differential tests account
// for exactly that discrepancy and nothing else.
package pipeline

import (
	"fmt"

	"github.com/p4lru/p4lru/internal/hashing"
)

// CmpOp is a comparison operator usable in guards and SALU predicates.
type CmpOp int

// Comparison operators.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (op CmpOp) eval(a, b uint64) bool {
	switch op {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	}
	panic(fmt.Sprintf("pipeline: bad CmpOp %d", op))
}

// ALUOp is an arithmetic operation available to SALU branches and VLIW
// steps. The set matches what a Tofino SALU/action can do in one pass:
// assignment, add/sub/xor/and/or, and constant shifts; no multiplies, no
// loops, no indirect table lookups.
type ALUOp int

// ALU operations.
const (
	OpKeep ALUOp = iota // leave the destination unchanged
	OpSet               // dst = operand
	OpAdd               // dst = dst + operand
	OpSub               // dst = dst - operand
	OpXor               // dst = dst ^ operand
	OpAnd               // dst = dst & operand
	OpOr                // dst = dst | operand
	OpShl               // dst = dst << operand
	OpShr               // dst = dst >> operand
)

func (op ALUOp) eval(old, operand uint64) uint64 {
	switch op {
	case OpKeep:
		return old
	case OpSet:
		return operand
	case OpAdd:
		return old + operand
	case OpSub:
		return old - operand
	case OpXor:
		return old ^ operand
	case OpAnd:
		return old & operand
	case OpOr:
		return old | operand
	case OpShl:
		return old << (operand & 63)
	case OpShr:
		return old >> (operand & 63)
	}
	panic(fmt.Sprintf("pipeline: bad ALUOp %d", op))
}

// Operand is a constant or a PHV field reference.
type Operand struct {
	field   string
	constV  uint64
	isConst bool
}

// F references a PHV field.
func F(name string) Operand { return Operand{field: name} }

// C is a constant operand.
func C(v uint64) Operand { return Operand{constV: v, isConst: true} }

func (o Operand) value(phv *PHV) uint64 {
	if o.isConst {
		return o.constV
	}
	return phv.Get(o.field)
}

// Guard is one conjunct of a step guard: A op B, where A and B may both be
// PHV fields (Tofino gateways compare header fields). A step runs only if
// every guard term holds on the stage-entry PHV view.
type Guard struct {
	A  Operand
	Op CmpOp
	B  Operand
}

// G builds a guard term.
func G(a Operand, op CmpOp, b Operand) Guard { return Guard{A: a, Op: op, B: b} }

func guardsHold(gs []Guard, phv *PHV) bool {
	for _, g := range gs {
		if !g.Op.eval(g.A.value(phv), g.B.value(phv)) {
			return false
		}
	}
	return true
}

// PHV is the packet header vector: the named fields a packet carries through
// the pipeline. Writes are staged and committed at stage boundaries.
type PHV struct {
	cur     map[string]uint64
	pending map[string]uint64
	written map[string]bool // VLIW conflict detection within a stage
}

// NewPHV builds a PHV with the given initial fields.
func NewPHV(fields map[string]uint64) *PHV {
	p := &PHV{
		cur:     make(map[string]uint64, len(fields)+8),
		pending: make(map[string]uint64, 8),
		written: make(map[string]bool, 8),
	}
	for k, v := range fields {
		p.cur[k] = v
	}
	return p
}

// Get returns the stage-entry value of a field (0 if never written).
func (p *PHV) Get(name string) uint64 { return p.cur[name] }

// set stages a write; it becomes visible at the next stage boundary.
func (p *PHV) set(name string, v uint64) error {
	if p.written[name] {
		return fmt.Errorf("pipeline: field %q written twice in one stage (VLIW conflict)", name)
	}
	p.written[name] = true
	p.pending[name] = v
	return nil
}

// commit applies pending writes (stage boundary).
func (p *PHV) commit() {
	for k, v := range p.pending {
		p.cur[k] = v
		delete(p.pending, k)
	}
	for k := range p.written {
		delete(p.written, k)
	}
}

// Register is a stateful register array living in one stage.
type Register struct {
	name    string
	width   int // bits per cell (≤ 64)
	cells   []uint64
	stage   int
	actions map[string]*SALUAction
	// m carries the per-register-array instrumentation counters, attached by
	// Program.Instrument. nil (the default) keeps the hot path free of any
	// metric work beyond one predictable branch.
	m *regMetrics
}

// Name returns the register name.
func (r *Register) Name() string { return r.name }

// Cell reads cell i directly (tests and diagnostics only — the data plane
// itself can only go through SALU actions).
func (r *Register) Cell(i int) uint64 { return r.cells[i] }

// SetCell writes cell i directly (control-plane style initialization).
func (r *Register) SetCell(i int, v uint64) { r.cells[i] = v & r.mask() }

func (r *Register) mask() uint64 {
	if r.width == 64 {
		return ^uint64(0)
	}
	return 1<<uint(r.width) - 1
}

// SALUPred is the single predicate a SALU evaluates against the stored
// value: `reg <op> operand`.
type SALUPred struct {
	Op      CmpOp
	Operand Operand
}

// OutSel selects what a SALU branch emits to the PHV.
type OutSel int

// Output selections.
const (
	OutOld OutSel = iota // the value before the update
	OutNew               // the value after the update
)

// SALUBranch is one of the two arithmetic branches of a register action.
type SALUBranch struct {
	Op      ALUOp
	Operand Operand
	Out     OutSel
}

// SALUAction is one register action: a predicate over the stored value
// selecting between two branches. Each action consumes one stateful ALU.
type SALUAction struct {
	Name  string
	Pred  *SALUPred // nil ⇒ always take True
	True  SALUBranch
	False SALUBranch
}

// Step is one primitive operation inside a stage.
type step interface {
	run(phv *PHV, pkt *packetCtx) error
}

// saluStep invokes one named action on a register, at the cell selected by
// Index, writing the branch output to OutField (if non-empty).
type saluStep struct {
	guards   []Guard
	reg      *Register
	action   string
	index    Operand
	outField string
}

func (s *saluStep) run(phv *PHV, pkt *packetCtx) error {
	if !guardsHold(s.guards, phv) {
		return nil
	}
	if pkt.accessed[s.reg] {
		return fmt.Errorf("pipeline: register %q accessed twice by one packet (second data traversal)", s.reg.name)
	}
	pkt.accessed[s.reg] = true

	idx := int(s.index.value(phv))
	if idx < 0 || idx >= len(s.reg.cells) {
		return fmt.Errorf("pipeline: register %q index %d out of range [0,%d)", s.reg.name, idx, len(s.reg.cells))
	}
	act := s.reg.actions[s.action]
	if act == nil {
		return fmt.Errorf("pipeline: register %q has no action %q", s.reg.name, s.action)
	}

	old := s.reg.cells[idx]
	takeTrue := act.Pred == nil || act.Pred.Op.eval(old, act.Pred.Operand.value(phv))
	branch := act.True
	if !takeTrue {
		branch = act.False
	}
	newV := branch.Op.eval(old, branch.Operand.value(phv)) & s.reg.mask()
	s.reg.cells[idx] = newV

	if m := s.reg.m; m != nil {
		m.accesses.Inc()
		if takeTrue {
			m.branchTrue.Inc()
		} else {
			m.branchFalse.Inc()
		}
	}

	if s.outField != "" {
		out := old
		if branch.Out == OutNew {
			out = newV
		}
		return phv.set(s.outField, out)
	}
	return nil
}

// aluStep is a VLIW instruction: dst = a <op> b on PHV fields.
type aluStep struct {
	guards []Guard
	dst    string
	a      Operand
	op     ALUOp
	b      Operand
}

func (s *aluStep) run(phv *PHV, pkt *packetCtx) error {
	if !guardsHold(s.guards, phv) {
		return nil
	}
	return phv.set(s.dst, s.op.eval(s.a.value(phv), s.b.value(phv)))
}

// hashStep computes a hash of a PHV field into dst using bits output bits.
type hashStep struct {
	guards []Guard
	dst    string
	src    Operand
	bits   int
	hash   hashing.Hash
	mod    int // when >0, index into [0, mod) instead of bit mask
}

func (s *hashStep) run(phv *PHV, pkt *packetCtx) error {
	if !guardsHold(s.guards, phv) {
		return nil
	}
	v := s.src.value(phv)
	var out uint64
	if s.mod > 0 {
		out = uint64(s.hash.Index(v, s.mod))
	} else {
		out = s.hash.Uint64(v) & (1<<uint(s.bits) - 1)
	}
	return phv.set(s.dst, out)
}

// tableStep is an exact-match MAU table: dst = table[key], or Default on
// miss. Sized tables model both the tiny SALU-adjacent tables (≤16 entries)
// and ordinary match tables.
type tableStep struct {
	guards  []Guard
	dst     string
	key     Operand
	entries map[uint64]uint64
	deflt   uint64
}

func (s *tableStep) run(phv *PHV, pkt *packetCtx) error {
	if !guardsHold(s.guards, phv) {
		return nil
	}
	v, ok := s.entries[s.key.value(phv)]
	if !ok {
		v = s.deflt
	}
	return phv.set(s.dst, v)
}

// packetCtx tracks per-packet constraint state.
type packetCtx struct {
	accessed map[*Register]bool
}

// Stage is an ordered list of steps sharing one stage-entry PHV view.
type Stage struct {
	index int
	steps []step
	// resource accounting
	registers []*Register
	saluCount int
	hashBits  int
	vliw      int
	tableEnts int
}

// Program is a built, validated pipeline program.
type Program struct {
	name   string
	stages []*Stage
	budget Budget
	pipes  int
	// m carries the per-program instrumentation counters (see Instrument);
	// nil means uninstrumented.
	m *progMetrics
}

// Name returns the program name.
func (p *Program) Name() string { return p.name }

// Run pushes one packet (its PHV) through the pipeline, enforcing the
// data-plane constraints. On constraint violation it returns an error and
// the packet is considered dropped; register state may be partially updated
// (as it would be on hardware — the compiler is supposed to reject such
// programs, and the tests assert we never hit one at runtime).
func (p *Program) Run(phv *PHV) error {
	pkt := &packetCtx{accessed: make(map[*Register]bool, 8)}
	for _, st := range p.stages {
		for _, s := range st.steps {
			if err := s.run(phv, pkt); err != nil {
				if m := p.m; m != nil {
					m.packets.Inc()
					m.drops.Inc()
				}
				return fmt.Errorf("stage %d: %w", st.index, err)
			}
		}
		phv.commit()
	}
	if m := p.m; m != nil {
		m.packets.Inc()
	}
	return nil
}
