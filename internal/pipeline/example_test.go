package pipeline_test

import (
	"fmt"

	"github.com/p4lru/p4lru/internal/pipeline"
)

// A program that touches the same register twice in one packet — the essence
// of classical LRU — is rejected at runtime: the "second data traversal"
// rule of §2.1.
func ExampleProgram_Run_secondTraversal() {
	b := pipeline.NewBuilder("illegal", pipeline.TofinoBudget, 1)
	st := b.Stage()
	head := st.Register("queue.head", 32, 8)
	st.Action(head, pipeline.SALUAction{
		Name: "swap",
		True: pipeline.SALUBranch{Op: pipeline.OpSet, Operand: pipeline.F("key"), Out: pipeline.OutOld},
	})
	st.SALU(head, "swap", pipeline.C(0), "first")
	st.SALU(head, "swap", pipeline.C(0), "second") // classical LRU's write-back

	prog, _ := b.Build()
	err := prog.Run(pipeline.NewPHV(map[string]uint64{"key": 7}))
	fmt.Println(err)
	// Output:
	// stage 0: pipeline: register "queue.head" accessed twice by one packet (second data traversal)
}

// BuildCacheArray3 deploys P4LRU3 as a 9-stage program; each unit costs
// seven registers (3 keys + state + 3 values) = seven stateful ALU memories.
func ExampleBuildCacheArray3() {
	arr, err := pipeline.BuildCacheArray3("demo", 1<<16, 1, pipeline.ModeWrite, pipeline.TofinoBudget)
	if err != nil {
		panic(err)
	}
	res := arr.Program().Resources()
	fmt.Printf("stages=%d registers=%d SALUs=%d\n", res.Stages, res.Registers, res.SALUs)

	arr.Update(10, 1500, false)
	arr.Update(10, 64, false)
	out, _ := arr.Update(10, 1, false)
	fmt.Printf("hit=%v total=%d\n", out.Hit, out.Value)
	// Output:
	// stages=9 registers=7 SALUs=7
	// hit=true total=1565
}
