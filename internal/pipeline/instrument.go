package pipeline

import (
	"fmt"

	"github.com/p4lru/p4lru/internal/obs"
)

// This file is the pipeline side of the observability layer: Instrument
// attaches obs counters to a built program so every SALU access and branch
// decision is countable per stage and per register array, the way the
// paper's Table 2 discussion reasons about SALU activity. Instrumentation is
// strictly opt-in and attached after Build: the uninstrumented hot path pays
// one nil check per SALU step and nothing else (BenchmarkPipeline and the
// allocation tests pin this).

// regMetrics are the per-register-array counters.
type regMetrics struct {
	accesses    *obs.Counter // SALU invocations on this array
	branchTrue  *obs.Counter // predicate selected the True branch
	branchFalse *obs.Counter // predicate selected the False branch
}

// progMetrics are the per-program counters.
type progMetrics struct {
	packets *obs.Counter // packets pushed through Run
	drops   *obs.Counter // constraint-violating packets (must stay 0)
}

// Instrument attaches counters for this program and every register array to
// the registry. Metric names embed the program, stage and register as
// Prometheus labels:
//
//	pipeline_packets_total{program="lrutable"}
//	pipeline_drops_total{program="lrutable"}
//	pipeline_register_accesses_total{program="lrutable",stage="1",register="nat.key1"}
//	pipeline_salu_branch_total{program="lrutable",stage="4",register="nat.state",branch="true"}
//
// Instrumenting twice (or with the same registry) is idempotent in effect:
// the same named counters are reattached.
func (p *Program) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	p.m = &progMetrics{
		packets: r.Counter(fmt.Sprintf("pipeline_packets_total{program=%q}", p.name)),
		drops:   r.Counter(fmt.Sprintf("pipeline_drops_total{program=%q}", p.name)),
	}
	for _, st := range p.stages {
		for _, reg := range st.registers {
			label := fmt.Sprintf("program=%q,stage=\"%d\",register=%q", p.name, st.index, reg.name)
			reg.m = &regMetrics{
				accesses:    r.Counter("pipeline_register_accesses_total{" + label + "}"),
				branchTrue:  r.Counter("pipeline_salu_branch_total{" + label + ",branch=\"true\"}"),
				branchFalse: r.Counter("pipeline_salu_branch_total{" + label + ",branch=\"false\"}"),
			}
		}
	}
}

// Uninstrument detaches all counters, restoring the zero-cost path.
func (p *Program) Uninstrument() {
	p.m = nil
	for _, st := range p.stages {
		for _, reg := range st.registers {
			reg.m = nil
		}
	}
}

// arrayMetrics are the cache-level hit/miss/evict counters of a CacheArray3.
type arrayMetrics struct {
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter // nonzero keys pushed out (empty-slot fills excluded)
}

// Instrument attaches both the program-level counters and cache-level
// hit/miss/evict counters plus an occupancy gauge (evaluated at export time
// by control-plane readout, so the packet path never pays for it):
//
//	pipeline_cache_hits_total{array="nat"}
//	pipeline_cache_misses_total{array="nat"}
//	pipeline_cache_evictions_total{array="nat"}
//	pipeline_cache_occupancy{array="nat"}
func (c *CacheArray3) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	c.prog.Instrument(r)
	label := fmt.Sprintf("array=%q", c.prog.name)
	c.m = &arrayMetrics{
		hits:      r.Counter("pipeline_cache_hits_total{" + label + "}"),
		misses:    r.Counter("pipeline_cache_misses_total{" + label + "}"),
		evictions: r.Counter("pipeline_cache_evictions_total{" + label + "}"),
	}
	arr := c
	r.GaugeFunc("pipeline_cache_occupancy{"+label+"}", func() float64 {
		return float64(arr.Len())
	})
}
