package pipeline

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/p4lru/p4lru/internal/obs"
)

// TestCacheArray3Instrument drives an instrumented array and checks that the
// obs counters agree exactly with the results Update reported.
func TestCacheArray3Instrument(t *testing.T) {
	const units = 64
	pipe, err := BuildCacheArray3("nat", units, 7, ModeWrite, TofinoBudget)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	pipe.Instrument(reg)

	var hits, misses, evictions, packets uint64
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 50000; i++ {
		res, err := pipe.Update(uint64(r.Intn(500)+1), 64, false)
		if err != nil {
			t.Fatal(err)
		}
		packets++
		if res.Hit {
			hits++
		} else {
			misses++
			if res.EvictedKey != 0 {
				evictions++
			}
		}
	}

	check := func(name string, want uint64) {
		t.Helper()
		if got := reg.CounterValue(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	check(`pipeline_cache_hits_total{array="nat"}`, hits)
	check(`pipeline_cache_misses_total{array="nat"}`, misses)
	check(`pipeline_cache_evictions_total{array="nat"}`, evictions)
	check(`pipeline_packets_total{program="nat"}`, packets)
	check(`pipeline_drops_total{program="nat"}`, 0)

	// The first key probe and the state SALU are unguarded — exactly one
	// access per packet each; the later probes short-circuit after a hit and
	// the value SALUs are guard-gated, so those fire less than once per
	// packet.
	snap := reg.Snapshot()
	for _, name := range []string{"nat.key1", "nat.state"} {
		sum := uint64(0)
		for label, v := range snap.Counters {
			if strings.HasPrefix(label, "pipeline_register_accesses_total{") &&
				strings.Contains(label, `register="`+name+`"`) {
				sum += v
			}
		}
		if sum != packets {
			t.Errorf("%s accesses = %d, want %d", name, sum, packets)
		}
	}
	accesses := reg.SumCounters("pipeline_register_accesses_total")
	if accesses < 2*packets || accesses > 7*packets {
		t.Errorf("register accesses = %d, want within [%d, %d]", accesses, 2*packets, 7*packets)
	}
	// Each access resolves its predicate to exactly one branch.
	if got := reg.SumCounters("pipeline_salu_branch_total"); got != accesses {
		t.Errorf("branch total = %d, want %d (one branch per access)", got, accesses)
	}

	// The occupancy gauge is a function gauge evaluated at snapshot time.
	snap = reg.Snapshot()
	occ, ok := snap.Gauges[`pipeline_cache_occupancy{array="nat"}`]
	if !ok {
		t.Fatalf("occupancy gauge missing from snapshot: %v", snap.Gauges)
	}
	if want := float64(pipe.Len()); occ != want {
		t.Errorf("occupancy = %v, want %v", occ, want)
	}
	if occ <= 0 || occ > units*3 {
		t.Errorf("occupancy %v outside (0, %d]", occ, units*3)
	}
}

// TestUninstrument confirms the counters stop moving once detached.
func TestUninstrument(t *testing.T) {
	pipe, err := BuildCacheArray3("u", 16, 1, ModeWrite, TofinoBudget)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	pipe.Instrument(reg)
	if _, err := pipe.Update(1, 1, false); err != nil {
		t.Fatal(err)
	}
	before := reg.CounterValue(`pipeline_packets_total{program="u"}`)
	if before != 1 {
		t.Fatalf("instrumented packet not counted: %d", before)
	}

	pipe.Program().Uninstrument()
	if _, err := pipe.Update(2, 1, false); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue(`pipeline_packets_total{program="u"}`); got != before {
		t.Fatalf("uninstrumented packet still counted: %d", got)
	}
}

// benchKeys builds the shared Zipf key set for the pipeline benchmarks.
func benchKeys() []uint64 {
	zipf := rand.NewZipf(rand.New(rand.NewSource(1)), 1.1, 1, 1<<20)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = zipf.Uint64() + 1
	}
	return keys
}

// BenchmarkPipeline is the uninstrumented hot path — the baseline the
// observability layer must not perturb (no allocations, ≤2% throughput).
func BenchmarkPipeline(b *testing.B) {
	pipe, err := BuildCacheArray3("b", 1<<16, 1, ModeWrite, TofinoBudget)
	if err != nil {
		b.Fatal(err)
	}
	keys := benchKeys()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Update(keys[i&(1<<16-1)], 64, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineInstrumented is the same workload with live counters.
func BenchmarkPipelineInstrumented(b *testing.B) {
	pipe, err := BuildCacheArray3("b", 1<<16, 1, ModeWrite, TofinoBudget)
	if err != nil {
		b.Fatal(err)
	}
	pipe.Instrument(obs.NewRegistry())
	keys := benchKeys()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Update(keys[i&(1<<16-1)], 64, false); err != nil {
			b.Fatal(err)
		}
	}
}
