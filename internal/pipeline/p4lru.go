package pipeline

import (
	"fmt"

	"github.com/p4lru/p4lru/internal/hashing"
)

// Mode selects the value-update discipline of a P4LRU cache-array program.
type Mode int

// Cache modes.
const (
	// ModeWrite is the LruMon discipline: a hit accumulates the incoming
	// value into the cached one (val[p1] += v).
	ModeWrite Mode = iota
	// ModeRead is the LruTable/LruIndex discipline: a hit returns the
	// cached value untouched unless the packet is a reply (ptype=1), in
	// which case the cached value is overwritten (placeholder fill).
	ModeRead
)

// Global PHV input fields shared by all P4LRU programs. Callers populate
// them before Run; each cache array writes its outputs under its own name
// prefix (see arrayPorts).
const (
	FieldKey   = "key"
	FieldVal   = "val"
	FieldPType = "ptype" // 0 = query/data packet, 1 = reply carrying a value
)

// arrayPorts names the per-array output fields.
type arrayPorts struct {
	Op     string // 0 = miss, i = hit at key[i]
	State  string // post-transition cache state code
	EvKey  string // key leaving the unit on a miss
	ValOut string // branch output of the value SALU
}

func portsFor(name string) arrayPorts {
	return arrayPorts{
		Op:     name + ".op",
		State:  name + ".state",
		EvKey:  name + ".evk3",
		ValOut: name + ".valout",
	}
}

// state3Decode mirrors Table 1: code → 0-based value slot of key[1]
// (p1 = S(1)). Kept in sync with internal/lru by the differential tests.
var state3Decode = map[uint64]uint64{0: 1, 1: 0, 2: 2, 3: 2, 4: 0, 5: 1}

// state3Initial is the Table 1 code of the identity permutation. Data-plane
// registers power up zeroed; the control plane writes this code into every
// state cell at configuration time (addCacheArray3 does so before returning).
const state3Initial = 4

// arrayRegs exposes a cache array's registers for control-plane readout
// (Lookup/Range on CacheArray3). The data plane itself never touches them
// outside SALU steps.
type arrayRegs struct {
	keys  [3]*Register
	state *Register
	vals  [3]*Register
}

// addCacheArray3 appends the 9-stage P4LRU3 cache-array program to b: per
// unit, three 32-bit key registers, one 8-bit state register carrying the
// three §2.3.2 arithmetic actions, and three 32-bit value registers. It
// returns the output ports and registers. Composable: LruIndex appends it
// four times.
func addCacheArray3(b *Builder, name string, numUnits int, seed uint64, mode Mode) (arrayPorts, arrayRegs) {
	p := portsFor(name)
	key := F(FieldKey)
	idxF := name + ".idx"
	evk1 := name + ".evk1"
	evk2 := name + ".evk2"
	p1F := name + ".p1"
	idx := F(idxF)

	// Stage 0: index hash + metadata defaults.
	st0 := b.Stage()
	st0.HashIndex(idxF, key, numUnits, seed)
	st0.Set(p.Op, C(0))

	var regs arrayRegs

	// Stage 1: unconditional swap of key[1].
	st1 := b.Stage()
	key1 := st1.Register(name+".key1", 32, numUnits)
	regs.keys[0] = key1
	st1.Action(key1, SALUAction{
		Name: "swap",
		True: SALUBranch{Op: OpSet, Operand: key, Out: OutOld},
	})
	st1.SALU(key1, "swap", idx, evk1)

	// Stage 2: hit-at-1 detection; conditional swap of key[2] with the key
	// evicted from stage 1.
	st2 := b.Stage()
	st2.Set(p.Op, C(1), G(F(evk1), CmpEQ, key))
	key2 := st2.Register(name+".key2", 32, numUnits)
	regs.keys[1] = key2
	st2.Action(key2, SALUAction{
		Name: "swap",
		True: SALUBranch{Op: OpSet, Operand: F(evk1), Out: OutOld},
	})
	st2.SALU(key2, "swap", idx, evk2, G(F(evk1), CmpNE, key))

	// Stage 3: hit-at-2 detection; conditional swap of key[3].
	st3 := b.Stage()
	st3.Set(p.Op, C(2), G(F(p.Op), CmpNE, C(1)), G(F(evk2), CmpEQ, key))
	key3 := st3.Register(name+".key3", 32, numUnits)
	regs.keys[2] = key3
	st3.Action(key3, SALUAction{
		Name: "swap",
		True: SALUBranch{Op: OpSet, Operand: F(evk2), Out: OutOld},
	})
	st3.SALU(key3, "swap", idx, p.EvKey,
		G(F(p.Op), CmpNE, C(1)), G(F(evk2), CmpNE, key))

	// Stage 4: hit-at-3 detection; the cache-state DFA — three register
	// actions carrying exactly the §2.3.2 stateful-ALU arithmetic.
	st4 := b.Stage()
	st4.Set(p.Op, C(3),
		G(F(p.Op), CmpEQ, C(0)), G(F(p.EvKey), CmpEQ, key))
	state := st4.Register(name+".state", 8, numUnits)
	regs.state = state
	st4.Action(state, SALUAction{ // Operation 1: no change
		Name: "op1",
		True: SALUBranch{Op: OpKeep, Out: OutNew},
	})
	st4.Action(state, SALUAction{ // Operation 2: S^1 if S≥4 else S^3
		Name:  "op2",
		Pred:  &SALUPred{Op: CmpGE, Operand: C(4)},
		True:  SALUBranch{Op: OpXor, Operand: C(1), Out: OutNew},
		False: SALUBranch{Op: OpXor, Operand: C(3), Out: OutNew},
	})
	st4.Action(state, SALUAction{ // Operation 3: S-2 if S≥2 else S+4
		Name:  "op3",
		Pred:  &SALUPred{Op: CmpGE, Operand: C(2)},
		True:  SALUBranch{Op: OpSub, Operand: C(2), Out: OutNew},
		False: SALUBranch{Op: OpAdd, Operand: C(4), Out: OutNew},
	})
	st4.SALU(state, "op1", idx, p.State, G(F(p.Op), CmpEQ, C(1)))
	st4.SALU(state, "op2", idx, p.State, G(F(p.Op), CmpEQ, C(2)))
	st4.SALU(state, "op3", idx, p.State,
		G(F(p.Op), CmpNE, C(1)), G(F(p.Op), CmpNE, C(2)))

	// Stage 5: decode p1 = S(1) through a 6-entry match table.
	st5 := b.Stage()
	st5.Table(p1F, F(p.State), state3Decode, 0)

	// Stages 6–8: the three value registers; p1 selects which one.
	for i := 0; i < 3; i++ {
		st := b.Stage()
		r := st.Register(fmt.Sprintf("%s.val%d", name, i+1), 32, numUnits)
		regs.vals[i] = r
		pi := G(F(p1F), CmpEQ, C(uint64(i)))
		hit := G(F(p.Op), CmpNE, C(0))
		miss := G(F(p.Op), CmpEQ, C(0))
		switch mode {
		case ModeWrite:
			st.Action(r, SALUAction{
				Name: "merge",
				True: SALUBranch{Op: OpAdd, Operand: F(FieldVal), Out: OutNew},
			})
			st.SALU(r, "merge", idx, p.ValOut, pi, hit)
		case ModeRead:
			st.Action(r, SALUAction{
				Name: "read",
				True: SALUBranch{Op: OpKeep, Out: OutOld},
			})
			st.Action(r, SALUAction{
				Name: "write",
				True: SALUBranch{Op: OpSet, Operand: F(FieldVal), Out: OutNew},
			})
			st.SALU(r, "read", idx, p.ValOut, pi, hit, G(F(FieldPType), CmpEQ, C(0)))
			st.SALU(r, "write", idx, p.ValOut, pi, hit, G(F(FieldPType), CmpEQ, C(1)))
		}
		st.Action(r, SALUAction{
			Name: "insert",
			True: SALUBranch{Op: OpSet, Operand: F(FieldVal), Out: OutOld},
		})
		st.SALU(r, "insert", idx, p.ValOut, pi, miss)
	}

	// Control-plane initialization: every unit starts in the identity
	// cache state (Table 1 code 4).
	for i := 0; i < numUnits; i++ {
		state.SetCell(i, state3Initial)
	}
	return p, regs
}

// CacheArray3 is a parallel-connected array of P4LRU3 units realized as a
// pipeline program.
type CacheArray3 struct {
	prog  *Program
	ports arrayPorts
	regs  arrayRegs
	hash  hashing.Hash
	units int
	mode  Mode
	// m carries hit/miss/evict counters when Instrument attached them; nil
	// (the default) keeps Update metric-free.
	m *arrayMetrics
}

// UpdateResult is the observable outcome of one packet.
type UpdateResult struct {
	// Hit is true when the key was present (op != 0).
	Hit bool
	// HitPos is the 1-based key position on a hit (the paper's i).
	HitPos int
	// EvictedKey/EvictedValue leave the cache on a miss. The pipeline has
	// no fill counter — like the hardware, a "miss" in a not-yet-full unit
	// evicts a zero key (an empty slot), which callers treat as no
	// eviction.
	EvictedKey   uint64
	EvictedValue uint64
	// Value is the post-update cached value on a hit (ModeWrite: the new
	// accumulated total; ModeRead: the cached value, or the written value
	// for a reply packet).
	Value uint64
}

// BuildCacheArray3 assembles and validates a standalone cache-array program.
// numUnits is the paper's 2^16/2^17 array width; seed selects the index hash
// (matching lru.NewArray3 with the same seed, which the differential tests
// rely on).
func BuildCacheArray3(name string, numUnits int, seed uint64, mode Mode, budget Budget) (*CacheArray3, error) {
	if numUnits < 1 {
		return nil, fmt.Errorf("pipeline: cache array with %d units", numUnits)
	}
	if mode != ModeWrite && mode != ModeRead {
		return nil, fmt.Errorf("pipeline: unknown mode %d", mode)
	}
	b := NewBuilder(name, budget, 1)
	ports, regs := addCacheArray3(b, name, numUnits, seed, mode)
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &CacheArray3{
		prog: prog, ports: ports, regs: regs,
		hash: hashing.New(seed), units: numUnits, mode: mode,
	}, nil
}

// Program exposes the underlying pipeline program (resource reports).
func (c *CacheArray3) Program() *Program { return c.prog }

// Units returns the array width.
func (c *CacheArray3) Units() int { return c.units }

// Update pushes one packet through the pipeline. In ModeRead, reply marks
// the packet as carrying a value to install (ptype=1).
func (c *CacheArray3) Update(key, val uint64, reply bool) (UpdateResult, error) {
	pt := uint64(0)
	if reply {
		pt = 1
	}
	phv := NewPHV(map[string]uint64{FieldKey: key, FieldVal: val, FieldPType: pt})
	if err := c.prog.Run(phv); err != nil {
		return UpdateResult{}, err
	}
	op := phv.Get(c.ports.Op)
	res := UpdateResult{Hit: op != 0, HitPos: int(op), Value: phv.Get(c.ports.ValOut)}
	if op == 0 {
		res.EvictedKey = phv.Get(c.ports.EvKey)
		res.EvictedValue = phv.Get(c.ports.ValOut)
	}
	if m := c.m; m != nil {
		if res.Hit {
			m.hits.Inc()
		} else {
			m.misses.Inc()
			if res.EvictedKey != 0 {
				m.evictions.Inc()
			}
		}
	}
	return res, nil
}

// Lookup is a control-plane readout: it inspects the registers of the unit
// addressed by key and returns the cached value. Unlike Update it is not a
// packet and is exempt from the per-packet access discipline (the control
// plane reads registers freely). Key 0 denotes an empty slot.
func (c *CacheArray3) Lookup(key uint64) (uint64, bool) {
	if key == 0 {
		return 0, false
	}
	idx := c.hash.Index(key, c.units)
	state := c.regs.state.Cell(idx)
	perm, ok := state3DecodeFull(state)
	if !ok {
		return 0, false
	}
	for pos := 0; pos < 3; pos++ {
		if c.regs.keys[pos].Cell(idx) == key {
			return c.regs.vals[perm[pos]].Cell(idx), true
		}
	}
	return 0, false
}

// Range iterates all resident (key, value) pairs by control-plane readout
// until fn returns false.
func (c *CacheArray3) Range(fn func(k, v uint64) bool) {
	for idx := 0; idx < c.units; idx++ {
		perm, ok := state3DecodeFull(c.regs.state.Cell(idx))
		if !ok {
			continue
		}
		for pos := 0; pos < 3; pos++ {
			k := c.regs.keys[pos].Cell(idx)
			if k == 0 {
				continue
			}
			if !fn(k, c.regs.vals[perm[pos]].Cell(idx)) {
				return
			}
		}
	}
}

// Len counts resident entries (nonzero keys) by control-plane readout.
func (c *CacheArray3) Len() int {
	n := 0
	for idx := 0; idx < c.units; idx++ {
		for pos := 0; pos < 3; pos++ {
			if c.regs.keys[pos].Cell(idx) != 0 {
				n++
			}
		}
	}
	return n
}

// state3DecodeFull returns the full Table 1 permutation for a state code.
func state3DecodeFull(code uint64) ([3]int, bool) {
	if code > 5 {
		return [3]int{}, false
	}
	t := state3PermTable[code]
	return [3]int{int(t[0]), int(t[1]), int(t[2])}, true
}
