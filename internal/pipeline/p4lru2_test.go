package pipeline

import (
	"math/rand"
	"testing"

	"github.com/p4lru/p4lru/internal/lru"
)

// TestCacheArray2Differential: the P4LRU2 pipeline program matches the
// plain-Go Unit2 array (zero-key warmup discrepancy aside).
func TestCacheArray2Differential(t *testing.T) {
	const units = 64
	const seed = 5
	add := func(old, in uint64) uint64 { return old + in }
	pipe, err := BuildCacheArray2("t2", units, seed, TofinoBudget)
	if err != nil {
		t.Fatal(err)
	}
	ref := lru.NewArray(units, seed, func() lru.UnitCache[uint64] {
		return lru.NewUnit2[uint64](add)
	})

	r := rand.New(rand.NewSource(1))
	for step := 0; step < 150000; step++ {
		k := uint64(r.Intn(250) + 1)
		v := uint64(r.Intn(900) + 1)
		pr, err := pipe.Update(k, v)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		rr := ref.Update(k, v)
		if pr.Hit != rr.Hit {
			t.Fatalf("step %d key %d: hit %v vs %v", step, k, pr.Hit, rr.Hit)
		}
		if pr.Hit {
			rv, _ := ref.Lookup(k)
			if pr.Value != rv {
				t.Fatalf("step %d key %d: value %d vs %d", step, k, pr.Value, rv)
			}
			continue
		}
		if pr.EvictedKey == 0 {
			if rr.Evicted {
				t.Fatalf("step %d: phantom fill but Go evicted %d", step, rr.EvictedKey)
			}
			continue
		}
		if !rr.Evicted || rr.EvictedKey != pr.EvictedKey || rr.EvictedValue != pr.EvictedValue {
			t.Fatalf("step %d: evicted (%d,%d) vs (%d,%d,%v)",
				step, pr.EvictedKey, pr.EvictedValue, rr.EvictedKey, rr.EvictedValue, rr.Evicted)
		}
	}
}

// TestCacheArray2Resources: §2.3.1 — one SALU covers the whole state DFA;
// five registers total.
func TestCacheArray2Resources(t *testing.T) {
	pipe, err := BuildCacheArray2("t2", 1<<16, 1, TofinoBudget)
	if err != nil {
		t.Fatal(err)
	}
	res := pipe.Program().Resources()
	if res.Registers != 5 {
		t.Errorf("registers = %d, want 5 (2 keys + state + 2 vals)", res.Registers)
	}
	if res.SALUs != 5 {
		t.Errorf("SALUs = %d, want 5", res.SALUs)
	}
	if res.Stages != 6 {
		t.Errorf("stages = %d, want 6", res.Stages)
	}
	// The state register is a single bit per unit.
	wantSRAM := 2*32*(1<<16) + 1*(1<<16) + 2*32*(1<<16)
	if res.SRAMBits != wantSRAM {
		t.Errorf("SRAM = %d, want %d", res.SRAMBits, wantSRAM)
	}
}

func TestCacheArray2Validation(t *testing.T) {
	if _, err := BuildCacheArray2("t2", 0, 1, TofinoBudget); err == nil {
		t.Error("0 units accepted")
	}
}

func BenchmarkCacheArray2Pipeline(b *testing.B) {
	pipe, err := BuildCacheArray2("b2", 1<<16, 1, TofinoBudget)
	if err != nil {
		b.Fatal(err)
	}
	zipf := rand.NewZipf(rand.New(rand.NewSource(1)), 1.1, 1, 1<<20)
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = zipf.Uint64() + 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Update(keys[i&(1<<16-1)], 64); err != nil {
			b.Fatal(err)
		}
	}
}
