package simnet

import (
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/obs"
)

// TestTrace checks that engine events are stamped with the virtual clock at
// the instant they fire, not wall time or schedule time.
func TestTrace(t *testing.T) {
	e := New()
	tr := obs.NewTracer(16)
	e.SetTracer(tr)
	if e.Tracer() != tr {
		t.Fatal("Tracer() should return the attached tracer")
	}

	e.Schedule(2*time.Millisecond, func() { e.Trace("second", 2) })
	e.Schedule(1*time.Millisecond, func() {
		e.Trace("first", 1)
		e.Schedule(5*time.Millisecond, func() { e.Trace("third", 3) })
	})
	e.Run()

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events: %+v", len(evs), evs)
	}
	want := []struct {
		vt   time.Duration
		kind string
	}{
		{1 * time.Millisecond, "first"},
		{2 * time.Millisecond, "second"},
		{6 * time.Millisecond, "third"},
	}
	for i, w := range want {
		if evs[i].VTime != w.vt || evs[i].Kind != w.kind {
			t.Errorf("event %d = %+v, want %v %q", i, evs[i], w.vt, w.kind)
		}
	}
}

// TestTraceWithoutTracer: an engine without a tracer ignores Trace calls.
func TestTraceWithoutTracer(t *testing.T) {
	e := New()
	e.Schedule(time.Millisecond, func() { e.Trace("ignored", 0) })
	e.Run() // must not panic
	if e.Tracer() != nil {
		t.Fatal("tracer should be nil by default")
	}
}
