package simnet

import (
	"testing"
	"time"
)

func TestOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if e.Now() != 3*time.Millisecond {
		t.Errorf("final time = %v", e.Now())
	}
}

func TestFIFOAtSameTime(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestCascadingEvents(t *testing.T) {
	e := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.Schedule(time.Millisecond, tick)
		}
	}
	e.Schedule(0, tick)
	e.Run()
	if count != 5 {
		t.Errorf("ticks = %d", count)
	}
	if e.Now() != 4*time.Millisecond {
		t.Errorf("final time = %v", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	fired := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() { fired++ })
	}
	e.RunUntil(5 * time.Millisecond)
	if fired != 5 {
		t.Errorf("fired = %d, want 5", fired)
	}
	if e.Now() != 5*time.Millisecond {
		t.Errorf("now = %v", e.Now())
	}
	if e.Pending() != 5 {
		t.Errorf("pending = %d", e.Pending())
	}
	// RunUntil advances the clock even with no events in range.
	e.RunUntil(5500 * time.Microsecond)
	if e.Now() != 5500*time.Microsecond {
		t.Errorf("now after idle advance = %v", e.Now())
	}
}

func TestStepEmpty(t *testing.T) {
	e := New()
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestSchedulePanics(t *testing.T) {
	e := New()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative delay did not panic")
			}
		}()
		e.Schedule(-time.Second, func() {})
	}()
	e.Schedule(time.Second, func() {})
	e.Run()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("past At did not panic")
			}
		}()
		e.At(time.Millisecond, func() {})
	}()
}

func TestZeroDelay(t *testing.T) {
	e := New()
	ran := false
	e.Schedule(0, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Errorf("zero-delay: ran=%v now=%v", ran, e.Now())
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	e := New()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			e.Run()
		}
	}
	e.Run()
}
