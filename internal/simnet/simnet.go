// Package simnet is a small deterministic discrete-event engine used by the
// system simulators: LruTable's slow-path round trips, LruIndex's query/reply
// latencies, and LruMon's upload stream all schedule future events against a
// virtual clock instead of wall time, replacing the paper's DPDK testbed with
// a reproducible latency model.
package simnet

import (
	"container/heap"
	"fmt"
	"time"

	"github.com/p4lru/p4lru/internal/obs"
)

// Engine is a deterministic discrete-event executor. Events fire in
// (time, scheduling-order) order; callbacks may schedule further events.
// Not safe for concurrent use — simulations are single-goroutine by design.
type Engine struct {
	now    time.Duration
	pq     eventHeap
	seq    uint64
	tracer *obs.Tracer
}

type event struct {
	at  time.Duration
	seq uint64
	do  func()
}

// New returns an engine with the clock at zero.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.pq) }

// SetTracer installs a virtual-time event tracer; Trace calls record into
// it stamped with the engine clock. nil detaches (and Trace becomes free).
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer = t }

// Tracer returns the installed tracer (nil when untraced).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// Trace records an event at the current virtual time. Without an installed
// tracer this is a no-op (obs.Tracer methods are nil-safe), so simulation
// code can trace unconditionally.
func (e *Engine) Trace(kind string, payload uint64) {
	e.tracer.Record(e.now, kind, payload)
}

// Schedule runs do after delay (≥ 0) of virtual time.
func (e *Engine) Schedule(delay time.Duration, do func()) {
	if delay < 0 {
		panic(fmt.Sprintf("simnet: negative delay %v", delay))
	}
	e.At(e.now+delay, do)
}

// At runs do at absolute virtual time t (≥ Now).
func (e *Engine) At(t time.Duration, do func()) {
	if t < e.now {
		panic(fmt.Sprintf("simnet: schedule at %v before now %v", t, e.now))
	}
	heap.Push(&e.pq, &event{at: t, seq: e.seq, do: do})
	e.seq++
}

// Step fires the earliest event. It reports whether an event ran.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(*event)
	e.now = ev.at
	ev.do()
	return true
}

// Run fires events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires all events scheduled at or before t, then advances the
// clock to t.
func (e *Engine) RunUntil(t time.Duration) {
	for len(e.pq) > 0 && e.pq[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// eventHeap orders by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
