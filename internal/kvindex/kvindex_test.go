package kvindex

import (
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/policy"
)

func seriesCache(levels, units int) policy.Cache {
	return policy.NewSeries(levels, units, 1, nil)
}

func TestServer(t *testing.T) {
	srv := NewServer(10000)
	if srv.Items() != 10000 {
		t.Fatalf("items = %d", srv.Items())
	}
	if srv.IndexHeight() < 3 {
		t.Errorf("index height = %d, implausibly flat", srv.IndexHeight())
	}
	// Walk path and cached path agree.
	idx, val, nodes, ok := srv.lookup(42, 0, false)
	if !ok || nodes != srv.IndexHeight() {
		t.Fatalf("walk lookup: ok=%v nodes=%d", ok, nodes)
	}
	idx2, val2, nodes2, ok2 := srv.lookup(42, idx, true)
	if !ok2 || nodes2 != 0 || idx2 != idx || val2 != val {
		t.Fatalf("cached lookup mismatch: (%d,%d,%d) vs (%d,%d)", idx2, val2, nodes2, idx, val)
	}
	// Corrupt cached index falls back to the walk.
	_, val3, nodes3, ok3 := srv.lookup(42, 1<<60, true)
	if !ok3 || nodes3 == 0 || val3 != val {
		t.Fatalf("corrupt-index fallback: ok=%v nodes=%d", ok3, nodes3)
	}
}

func TestRunNaive(t *testing.T) {
	res := Run(Config{Items: 10000, Threads: 2, Queries: 20000, Seed: 1})
	if res.Queries != 20000 {
		t.Fatalf("queries = %d", res.Queries)
	}
	if res.Errors != 0 {
		t.Fatalf("%d value errors", res.Errors)
	}
	if res.Hits != 0 || res.HitRate != 0 {
		t.Errorf("naive run recorded hits: %d", res.Hits)
	}
	if res.ThroughputTPS <= 0 || res.AvgLatency <= 0 {
		t.Errorf("throughput %v latency %v", res.ThroughputTPS, res.AvgLatency)
	}
	if res.P50Latency <= 0 || res.P99Latency < res.P50Latency {
		t.Errorf("latency percentiles implausible: p50=%v p99=%v", res.P50Latency, res.P99Latency)
	}
	// Every query walked the full index.
	if res.NodesWalked == 0 {
		t.Error("no nodes walked")
	}
}

func TestRunCached(t *testing.T) {
	res := Run(Config{
		Items: 10000, Threads: 4, Queries: 40000, Seed: 2,
		Cache: seriesCache(4, 1024),
	})
	if res.Errors != 0 {
		t.Fatalf("%d value errors (stale cached index?)", res.Errors)
	}
	if res.HitRate <= 0.2 {
		t.Errorf("hit rate = %.3f, expected a warm cache on Zipf keys", res.HitRate)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := func() Config {
		return Config{Items: 5000, Threads: 4, Queries: 10000, Seed: 3,
			Cache: seriesCache(2, 256)}
	}
	a, b := Run(cfg()), Run(cfg())
	if a != b {
		t.Errorf("runs differ:\n%+v\n%+v", a, b)
	}
}

// TestCacheAcceleratesThroughput reproduces Figure 10(b)'s premise: the
// cached system outruns the naive one, and the P4LRU3 series beats the
// hash-table baseline.
func TestCacheAcceleratesThroughput(t *testing.T) {
	base := Config{Items: 50_000, Threads: 8, Queries: 60_000, Seed: 4}

	naive := Run(base)

	cached := base
	cached.Cache = seriesCache(4, 2048)
	withCache := Run(cached)

	baseline := base
	baseline.Cache = policy.NewP4LRU(1, 4*2048*3, 1, nil)
	withBaseline := Run(baseline)

	if withCache.ThroughputTPS <= naive.ThroughputTPS {
		t.Errorf("cached throughput %.0f not above naive %.0f",
			withCache.ThroughputTPS, naive.ThroughputTPS)
	}
	if withCache.ThroughputTPS <= withBaseline.ThroughputTPS {
		t.Errorf("p4lru3 series %.0f not above hash baseline %.0f",
			withCache.ThroughputTPS, withBaseline.ThroughputTPS)
	}
	speedup := withCache.ThroughputTPS / naive.ThroughputTPS
	if speedup < 1.05 || speedup > 3 {
		t.Errorf("speedup = %.2f, expected a moderate acceleration", speedup)
	}
}

// TestThroughputScalesWithThreads reproduces Figure 10(a)'s shape:
// throughput grows with the thread count, sublinearly once server cores
// saturate.
func TestThroughputScalesWithThreads(t *testing.T) {
	tps := map[int]float64{}
	for _, threads := range []int{1, 4, 8} {
		cfg := Config{Items: 20_000, Threads: threads, Queries: 30_000, Seed: 5,
			Cache: seriesCache(4, 1024), ServerCores: 4}
		tps[threads] = Run(cfg).ThroughputTPS
	}
	if !(tps[8] > tps[4] && tps[4] > tps[1]) {
		t.Errorf("throughput not increasing: %v", tps)
	}
	// Sublinear at 8 threads on 4 cores.
	if tps[8] >= 8*tps[1] {
		t.Errorf("throughput 8 threads %.0f implausibly linear vs 1 thread %.0f", tps[8], tps[1])
	}
}

// TestHitsSkipIndexWalk: cached queries must not walk the B+ tree.
func TestHitsSkipIndexWalk(t *testing.T) {
	cfg := Config{Items: 10_000, Threads: 1, Queries: 20_000, Seed: 6,
		Cache: seriesCache(4, 1024)}
	res := Run(cfg)
	srv := NewServer(cfg.Items)
	maxWalk := int64(res.Queries-res.Hits) * int64(srv.IndexHeight())
	if res.NodesWalked > maxWalk {
		t.Errorf("nodes walked %d exceeds misses × height %d", res.NodesWalked, maxWalk)
	}
	if res.NodesWalked == 0 {
		t.Error("no walks at all")
	}
}

// TestLatencyIncludesRTT: average latency is at least the RTT plus the
// arena fetch.
func TestLatencyIncludesRTT(t *testing.T) {
	rtt := 50 * time.Microsecond
	res := Run(Config{Items: 1000, Threads: 1, Queries: 2000, Seed: 7, RTT: rtt})
	if res.AvgLatency < rtt {
		t.Errorf("latency %v below RTT %v", res.AvgLatency, rtt)
	}
}

func TestFewerQueriesThanThreads(t *testing.T) {
	res := Run(Config{Items: 1000, Threads: 16, Queries: 3, Seed: 8})
	if res.Queries != 3 {
		t.Errorf("queries = %d, want 3", res.Queries)
	}
}
