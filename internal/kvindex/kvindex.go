// Package kvindex implements LruIndex (§3.2): an in-network query
// acceleration system. Unlike NetCache, which caches key-value pairs, the
// switch caches each key's database *index* (a 48-bit memory address), so
// the server can skip its B+ tree walk; values of arbitrary length stay on
// the server.
//
// The packet protocol carries two extra header fields:
//
//	cached_flag  — 0, or the 1-based series level that holds the key
//	cached_index — the cached address when cached_flag ≠ 0
//
// Query packets consult the cache read-only; reply packets perform the only
// cache mutations (promote on hit, insert + demote-cascade on miss) — the
// query/update separation that makes the series connection duplicate-free.
//
// The simulator is a closed-loop client model over the discrete-event
// engine: each of T threads keeps one query outstanding; the server has a
// bounded number of cores, each query costing a B+ tree walk (skipped when
// pre-resolved) plus a value fetch.
package kvindex

import (
	"encoding/binary"
	"math/rand"
	"time"

	"github.com/p4lru/p4lru/internal/btree"
	"github.com/p4lru/p4lru/internal/lru"
	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/quantile"
	"github.com/p4lru/p4lru/internal/simnet"
)

// ValueSize is the server's value length (the paper's configuration).
const ValueSize = 64

// Server is the database: a B+ tree index over a flat value arena.
type Server struct {
	index *btree.Tree
	arena []byte
}

// NewServer loads `items` sequential keys (1..items) with deterministic
// 64-byte values.
func NewServer(items int) *Server {
	s := &Server{index: btree.New(), arena: make([]byte, items*ValueSize)}
	for i := 0; i < items; i++ {
		k := uint64(i + 1)
		off := uint64(i * ValueSize)
		s.index.Put(k, off)
		binary.LittleEndian.PutUint64(s.arena[off:], k^0xbadc0ffee)
	}
	return s
}

// Items returns the number of stored keys.
func (s *Server) Items() int { return len(s.arena) / ValueSize }

// IndexHeight returns the B+ tree height (walk length a cached index skips).
func (s *Server) IndexHeight() int { return s.index.Height() }

// Resolve is the exported lookup used by the wire-protocol server in
// internal/netproto: it resolves a key via the cached index when provided
// (nodes = 0) or through the B+ tree, returning the index, the raw 64-byte
// value, and the walk's node count.
func (s *Server) Resolve(key uint64, cachedIndex uint64, cached bool) (idx uint64, value []byte, nodes int, ok bool) {
	idx, _, nodes, ok = s.lookup(key, cachedIndex, cached)
	if !ok {
		return 0, nil, nodes, false
	}
	return idx, s.arena[idx : idx+ValueSize], nodes, true
}

// Write stores an 8-byte value word at key's arena slot, returning the B+
// tree walk cost of locating it — the server-side write a write-behind
// drain performs. It is not safe to call concurrently with reads of the
// same slot; callers that mix the two (the backing-store adapter) serialize
// around it.
func (s *Server) Write(key, val uint64) (nodes int, ok bool) {
	off, nodes, ok := s.index.Get(key)
	if !ok {
		return nodes, false
	}
	binary.LittleEndian.PutUint64(s.arena[off:], val)
	return nodes, true
}

// lookup resolves a key: via the cached index if provided (nodes = 0), else
// through the B+ tree. It returns the index, the first value word, and the
// node count of the walk.
func (s *Server) lookup(key uint64, cachedIndex uint64, cached bool) (idx uint64, val uint64, nodes int, ok bool) {
	if cached {
		if cachedIndex+8 <= uint64(len(s.arena)) {
			return cachedIndex, binary.LittleEndian.Uint64(s.arena[cachedIndex:]), 0, true
		}
		// A corrupt cached index falls back to the walk.
	}
	off, nodes, ok := s.index.Get(key)
	if !ok {
		return 0, 0, nodes, false
	}
	return off, binary.LittleEndian.Uint64(s.arena[off:]), nodes, true
}

// Config parameterizes a run.
type Config struct {
	// Items is the database size.
	Items int
	// Threads is the number of closed-loop query threads.
	Threads int
	// Queries is the total query budget across threads.
	Queries int
	// ZipfSkew shapes key popularity (>1; the paper's YCSB workload at
	// α=0.9 corresponds to the default 1.1 head concentration).
	ZipfSkew float64
	// Seed drives the workload.
	Seed int64
	// Cache is the in-network cache (nil = the Naive Solution: no cache).
	Cache policy.Cache
	// RTT is the client↔server network round trip through the switch.
	RTT time.Duration
	// NodeTime is the per-B+tree-node walk cost on the server (the work a
	// cached index avoids); ArenaTime the value fetch.
	NodeTime  time.Duration
	ArenaTime time.Duration
	// ServerCores bounds server parallelism.
	ServerCores int
	// TrackSimilarity enables the §4.2 LRU-similarity metric over the
	// cache's admissions and evictions.
	TrackSimilarity bool
	// Obs, when non-nil, receives live run counters (kvindex_queries_total,
	// kvindex_hits_total, kvindex_nodes_walked_total) and a query-latency
	// histogram (kvindex_query_latency_seconds). nil costs nothing.
	Obs *obs.Registry
	// Tracer, when non-nil, records each completed query as a virtual-time
	// event (kvindex.query.done, payload = round-trip latency in ns).
	Tracer *obs.Tracer
}

// metrics holds the pre-resolved handles of one run; the zero value is a
// no-op (nil-safe obs methods).
type metrics struct {
	queries, hits, nodesWalked *obs.Counter
	latency                    *obs.Histogram
}

func newMetrics(r *obs.Registry) metrics {
	return metrics{
		queries:     r.Counter("kvindex_queries_total"),
		hits:        r.Counter("kvindex_hits_total"),
		nodesWalked: r.Counter("kvindex_nodes_walked_total"),
		// 1 µs .. ~4 ms in ×2 steps, covering RTT through deep-tree walks.
		latency: r.Histogram("kvindex_query_latency_seconds", obs.ExponentialBuckets(1e-6, 2, 12)),
	}
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Items <= 0 {
		out.Items = 100_000
	}
	if out.Threads <= 0 {
		out.Threads = 1
	}
	if out.Queries <= 0 {
		out.Queries = 100_000
	}
	if out.ZipfSkew == 0 {
		out.ZipfSkew = 1.1
	}
	if out.RTT == 0 {
		out.RTT = 8 * time.Microsecond
	}
	if out.NodeTime == 0 {
		out.NodeTime = 400 * time.Nanosecond
	}
	if out.ArenaTime == 0 {
		out.ArenaTime = 600 * time.Nanosecond
	}
	if out.ServerCores <= 0 {
		out.ServerCores = 4
	}
	return out
}

// Result aggregates a run.
type Result struct {
	Queries       int
	Hits          int
	HitRate       float64
	AvgLatency    time.Duration
	ThroughputTPS float64
	NodesWalked   int64 // total B+ tree nodes visited (work not saved)
	Errors        int   // value mismatches (must be zero)
	Similarity    float64
	// P50Latency/P99Latency are streaming-quantile estimates of the
	// client-observed round trip (P² estimator).
	P50Latency time.Duration
	P99Latency time.Duration
}

// Run executes the closed-loop simulation.
func Run(cfg Config) Result {
	c := cfg.withDefaults()
	eng := simnet.New()
	eng.SetTracer(c.Tracer)
	var m metrics
	if c.Obs != nil {
		m = newMetrics(c.Obs)
	}
	srv := NewServer(c.Items)
	rng := rand.New(rand.NewSource(c.Seed))
	zipf := rand.NewZipf(rng, c.ZipfSkew, 1, uint64(c.Items-1))

	var res Result
	var totalLatency time.Duration
	issued := 0
	var tracker *lru.SimilarityTracker
	if c.TrackSimilarity && c.Cache != nil {
		tracker = lru.NewSimilarityTracker()
	}

	p50, p99 := quantile.New(0.5), quantile.New(0.99)

	// Server cores: earliest-free assignment.
	cores := make([]time.Duration, c.ServerCores)

	var issue func()
	issue = func() {
		if issued >= c.Queries {
			return
		}
		issued++
		key := zipf.Uint64() + 1 // stored keys are 1-based
		start := eng.Now()

		// Switch, query direction: read-only cache consult. The token
		// carries the series level (cached_flag); hit is the residency
		// signal for every cache shape.
		var cachedIdx uint64
		tok := policy.NoToken
		hit := false
		if c.Cache != nil {
			cachedIdx, tok, hit = c.Cache.Query(key)
		}

		// Arrive at the server after half an RTT; wait for a core.
		arrival := start + c.RTT/2
		coreIdx := 0
		for i := 1; i < len(cores); i++ {
			if cores[i] < cores[coreIdx] {
				coreIdx = i
			}
		}
		begin := arrival
		if cores[coreIdx] > begin {
			begin = cores[coreIdx]
		}
		idx, val, nodes, ok := srv.lookup(key, cachedIdx, hit)
		service := c.ArenaTime + time.Duration(nodes)*c.NodeTime
		finish := begin + service
		cores[coreIdx] = finish
		res.NodesWalked += int64(nodes)

		if !ok || val != key^0xbadc0ffee {
			res.Errors++
		}
		if hit {
			res.Hits++
			m.hits.Inc()
		}
		m.nodesWalked.Add(uint64(nodes))

		// Reply traverses the switch (cache mutation) and reaches the
		// client after the other half RTT.
		eng.At(finish, func() {
			if c.Cache != nil {
				r := c.Cache.Update(key, idx, tok, eng.Now())
				if tracker != nil {
					if r.Hit || r.Admitted {
						tracker.Touch(key)
					}
					if r.Evicted {
						tracker.Evict(r.EvictedKey)
					}
				}
			}
		})
		eng.At(finish+c.RTT/2, func() {
			res.Queries++
			lat := eng.Now() - start
			totalLatency += lat
			p50.Add(float64(lat))
			p99.Add(float64(lat))
			m.queries.Inc()
			m.latency.Observe(lat.Seconds())
			eng.Trace("kvindex.query.done", uint64(lat))
			issue() // closed loop: this thread issues its next query
		})
	}

	for t := 0; t < c.Threads && t < c.Queries; t++ {
		issue()
	}
	eng.Run()

	res.Similarity = 1
	if tracker != nil {
		res.Similarity = tracker.Similarity()
	}
	if res.Queries > 0 {
		res.AvgLatency = totalLatency / time.Duration(res.Queries)
		res.P50Latency = time.Duration(p50.Value())
		res.P99Latency = time.Duration(p99.Value())
		res.HitRate = float64(res.Hits) / float64(res.Queries)
		if eng.Now() > 0 {
			res.ThroughputTPS = float64(res.Queries) / eng.Now().Seconds()
		}
	}
	return res
}
