package ostat

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var s Set
	if s.Len() != 0 {
		t.Errorf("empty Len = %d", s.Len())
	}
	if s.Contains(0) {
		t.Error("empty set contains 0")
	}
	if s.Rank(100) != 0 {
		t.Errorf("empty Rank = %d", s.Rank(100))
	}
	if _, ok := s.Min(); ok {
		t.Error("empty Min ok")
	}
	if _, ok := s.Max(); ok {
		t.Error("empty Max ok")
	}
	if _, ok := s.Kth(1); ok {
		t.Error("empty Kth ok")
	}
	if s.Delete(5) {
		t.Error("delete from empty returned true")
	}
}

func TestInsertContainsDelete(t *testing.T) {
	var s Set
	keys := []int64{5, 1, 9, 3, 7, -2, 100}
	for _, k := range keys {
		if !s.Insert(k) {
			t.Errorf("Insert(%d) = false", k)
		}
	}
	if s.Insert(5) {
		t.Error("duplicate Insert(5) = true")
	}
	if s.Len() != len(keys) {
		t.Errorf("Len = %d, want %d", s.Len(), len(keys))
	}
	for _, k := range keys {
		if !s.Contains(k) {
			t.Errorf("Contains(%d) = false", k)
		}
	}
	if s.Contains(4) {
		t.Error("Contains(4) = true")
	}
	if !s.Delete(3) {
		t.Error("Delete(3) = false")
	}
	if s.Contains(3) {
		t.Error("Contains(3) after delete")
	}
	if s.Delete(3) {
		t.Error("second Delete(3) = true")
	}
	if s.Len() != len(keys)-1 {
		t.Errorf("Len after delete = %d", s.Len())
	}
}

func TestRank(t *testing.T) {
	var s Set
	for _, k := range []int64{10, 20, 30, 40, 50} {
		s.Insert(k)
	}
	cases := []struct {
		key  int64
		want int
	}{
		{5, 0}, {10, 1}, {15, 1}, {20, 2}, {35, 3}, {50, 5}, {99, 5},
	}
	for _, c := range cases {
		if got := s.Rank(c.key); got != c.want {
			t.Errorf("Rank(%d) = %d, want %d", c.key, got, c.want)
		}
	}
}

func TestMinMaxKth(t *testing.T) {
	var s Set
	keys := []int64{42, 7, 19, 3, 88}
	for _, k := range keys {
		s.Insert(k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if min, _ := s.Min(); min != keys[0] {
		t.Errorf("Min = %d, want %d", min, keys[0])
	}
	if max, _ := s.Max(); max != keys[len(keys)-1] {
		t.Errorf("Max = %d", max)
	}
	for i, want := range keys {
		got, ok := s.Kth(i + 1)
		if !ok || got != want {
			t.Errorf("Kth(%d) = %d,%v, want %d", i+1, got, ok, want)
		}
	}
	if _, ok := s.Kth(0); ok {
		t.Error("Kth(0) ok")
	}
	if _, ok := s.Kth(len(keys) + 1); ok {
		t.Error("Kth(n+1) ok")
	}
}

// TestAgainstReference drives the treap alongside a sorted-slice reference
// with a random operation mix.
func TestAgainstReference(t *testing.T) {
	var s Set
	ref := map[int64]bool{}
	r := rand.New(rand.NewSource(7))
	for op := 0; op < 20000; op++ {
		k := int64(r.Intn(500))
		switch r.Intn(3) {
		case 0:
			got := s.Insert(k)
			want := !ref[k]
			if got != want {
				t.Fatalf("op %d: Insert(%d) = %v, want %v", op, k, got, want)
			}
			ref[k] = true
		case 1:
			got := s.Delete(k)
			if got != ref[k] {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, ref[k])
			}
			delete(ref, k)
		case 2:
			want := 0
			for rk := range ref {
				if rk <= k {
					want++
				}
			}
			if got := s.Rank(k); got != want {
				t.Fatalf("op %d: Rank(%d) = %d, want %d", op, k, got, want)
			}
		}
		if s.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, s.Len(), len(ref))
		}
	}
}

// Property: after inserting any set of keys, Rank(Kth(i)) == i.
func TestRankKthInverseProperty(t *testing.T) {
	f := func(keys []int64) bool {
		var s Set
		for _, k := range keys {
			s.Insert(k)
		}
		for i := 1; i <= s.Len(); i++ {
			k, ok := s.Kth(i)
			if !ok || s.Rank(k) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: monotonically increasing inserts keep rank = position.
func TestSequentialInsertRanks(t *testing.T) {
	var s Set
	for i := int64(1); i <= 1000; i++ {
		s.Insert(i)
		if got := s.Rank(i); got != int(i) {
			t.Fatalf("Rank(%d) = %d", i, got)
		}
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	var s Set
	for i := 0; i < b.N; i++ {
		s.Insert(int64(i))
		if i >= 100000 {
			s.Delete(int64(i - 100000))
		}
	}
}

func BenchmarkRank(b *testing.B) {
	var s Set
	for i := int64(0); i < 100000; i++ {
		s.Insert(i * 3)
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= s.Rank(int64(i % 300000))
	}
	_ = sink
}
