// Package ostat provides an order-statistic set over int64 keys — a
// randomized treap supporting O(log n) insert, delete, and rank queries.
//
// The LRU-similarity metric of the paper's §4.2 needs, for every evicted
// cache entry, the rank of its last-access time among the last-access times
// of all currently cached entries; with millions of evictions a balanced
// order-statistic structure is required.
package ostat

// Set is an order-statistic set of distinct int64 keys.
// The zero value is an empty set ready to use.
type Set struct {
	root *node
	rng  uint64
}

type node struct {
	key         int64
	prio        uint32
	size        int
	left, right *node
}

func size(n *node) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *node) update() {
	n.size = 1 + size(n.left) + size(n.right)
}

// nextPrio is an xorshift64* PRNG; treap priorities only need to be
// well-scattered, not cryptographic.
func (s *Set) nextPrio() uint32 {
	if s.rng == 0 {
		s.rng = 0x2545f4914f6cdd1d
	}
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	return uint32(s.rng >> 32)
}

// Len returns the number of keys in the set.
func (s *Set) Len() int { return size(s.root) }

// split partitions t into (< key, ≥ key).
func split(t *node, key int64) (l, r *node) {
	if t == nil {
		return nil, nil
	}
	if t.key < key {
		t.right, r = split(t.right, key)
		t.update()
		return t, r
	}
	l, t.left = split(t.left, key)
	t.update()
	return l, t
}

// merge joins l and r assuming every key in l is smaller than every key in r.
func merge(l, r *node) *node {
	switch {
	case l == nil:
		return r
	case r == nil:
		return l
	case l.prio >= r.prio:
		l.right = merge(l.right, r)
		l.update()
		return l
	default:
		r.left = merge(l, r.left)
		r.update()
		return r
	}
}

// Insert adds key to the set. It reports whether the key was newly added
// (false if already present).
func (s *Set) Insert(key int64) bool {
	if s.Contains(key) {
		return false
	}
	l, r := split(s.root, key)
	n := &node{key: key, prio: s.nextPrio(), size: 1}
	s.root = merge(merge(l, n), r)
	return true
}

// Delete removes key from the set. It reports whether the key was present.
func (s *Set) Delete(key int64) bool {
	l, r := split(s.root, key)
	mid, rest := split(r, key+1)
	s.root = merge(l, rest)
	return mid != nil
}

// Contains reports whether key is in the set.
func (s *Set) Contains(key int64) bool {
	n := s.root
	for n != nil {
		switch {
		case key < n.key:
			n = n.left
		case key > n.key:
			n = n.right
		default:
			return true
		}
	}
	return false
}

// Rank returns the number of keys ≤ key (1-based rank of key if present).
func (s *Set) Rank(key int64) int {
	rank := 0
	n := s.root
	for n != nil {
		if key < n.key {
			n = n.left
		} else {
			rank += size(n.left) + 1
			n = n.right
		}
	}
	return rank
}

// Min returns the smallest key. ok is false for an empty set.
func (s *Set) Min() (key int64, ok bool) {
	n := s.root
	if n == nil {
		return 0, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, true
}

// Max returns the largest key. ok is false for an empty set.
func (s *Set) Max() (key int64, ok bool) {
	n := s.root
	if n == nil {
		return 0, false
	}
	for n.right != nil {
		n = n.right
	}
	return n.key, true
}

// Kth returns the k-th smallest key (1-based). ok is false if k is out of
// range.
func (s *Set) Kth(k int) (key int64, ok bool) {
	if k < 1 || k > s.Len() {
		return 0, false
	}
	n := s.root
	for {
		ls := size(n.left)
		switch {
		case k <= ls:
			n = n.left
		case k == ls+1:
			return n.key, true
		default:
			k -= ls + 1
			n = n.right
		}
	}
}
