package experiments

import (
	"time"

	"github.com/p4lru/p4lru/internal/lru"
	"github.com/p4lru/p4lru/internal/nat"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/trace"
)

// AblationSeries quantifies the §3.2 design choice the paper motivates but
// does not plot: the query/update-separated reply path versus the naive
// immediate-insertion mode, which duplicates keys across levels. One panel
// reports hit rate, the other the fraction of accesses finding the key
// duplicated.
func AblationSeries(s Scale) []Figure {
	keys := trace.ZipfKeys(s.Items, 1.1, s.Queries, s.Seed)
	mem := p4lru3MemoryBytes(s)

	hitFig := Figure{ID: "ablation-series-hit", Title: "series connection: hit rate vs levels",
		XLabel: "levels", YLabel: "hit rate"}
	dupFig := Figure{ID: "ablation-series-dup", Title: "series connection: duplicated-key fraction vs levels",
		XLabel: "levels", YLabel: "duplicate fraction"}

	sepHit := Series{Name: "reply-path"}
	naiveHit := Series{Name: "immediate"}
	sepDup := Series{Name: "reply-path"}
	naiveDup := Series{Name: "immediate"}

	for _, levels := range []int{1, 2, 3, 4, 6} {
		units := mem / levels / 25
		if units < 1 {
			units = 1
		}
		// Reply-path mode.
		sep := lru.NewSeries3[uint64](levels, units, uint64(s.Seed), nil)
		hits, dupes := 0, 0
		for i, k := range keys {
			_, level, ok := sep.Query(k)
			if ok {
				hits++
			}
			sep.Reply(k, uint64(i), level)
			if sep.Contains(k) > 1 {
				dupes++
			}
		}
		sepHit.Points = append(sepHit.Points, Point{X: float64(levels), Y: float64(hits) / float64(len(keys))})
		sepDup.Points = append(sepDup.Points, Point{X: float64(levels), Y: float64(dupes) / float64(len(keys))})

		// Naive immediate mode.
		nai := lru.NewSeries3[uint64](levels, units, uint64(s.Seed), nil)
		hits, dupes = 0, 0
		for i, k := range keys {
			if nai.AccessImmediate(k, uint64(i)) {
				hits++
			}
			if nai.Contains(k) > 1 {
				dupes++
			}
		}
		naiveHit.Points = append(naiveHit.Points, Point{X: float64(levels), Y: float64(hits) / float64(len(keys))})
		naiveDup.Points = append(naiveDup.Points, Point{X: float64(levels), Y: float64(dupes) / float64(len(keys))})
	}
	hitFig.Series = []Series{sepHit, naiveHit}
	dupFig.Series = []Series{sepDup, naiveDup}
	return []Figure{hitFig, dupFig}
}

// AblationP4LRU4 evaluates the §2.3.3 extension: P4LRU4 against P4LRU2/3 at
// equal memory in the LruTable setting. Deeper units approximate LRU better
// but buy fewer units per byte (4 keys + state per unit).
func AblationP4LRU4(s Scale) []Figure {
	tr := traceFor(s, 60)
	fig := Figure{ID: "ablation-p4lru4", Title: "P4LRU2/3/4 at equal memory (LruTable)",
		XLabel: "memory (bytes)", YLabel: "slow-path rate"}
	for _, kind := range []policy.Kind{policy.KindP4LRU2, policy.KindP4LRU3, policy.KindP4LRU4} {
		ser := Series{Name: string(kind)}
		for _, mem := range memorySweep(s) {
			res := nat.Run(tr, nat.Config{
				Cache:         natCache(kind, mem, uint64(s.Seed), 0),
				SlowPathDelay: time.Millisecond,
				Obs:           registry(),
			})
			ser.Points = append(ser.Points, Point{X: float64(mem), Y: slowPathRate(res)})
		}
		fig.Series = append(fig.Series, ser)
	}
	return []Figure{fig}
}

// AblationClock compares the deployable P4LRU3 against the CPU-side cache
// designs the paper's introduction surveys: MemC3's CLOCK approximation and
// the exact list-based LRU, at equal memory in the LruTable setting. CLOCK's
// unbounded eviction sweep cannot run in a pipeline; the question this
// ablation answers is how much hit rate the pipeline-legal design gives up
// against software.
func AblationClock(s Scale) []Figure {
	tr := traceFor(s, 60)
	fig := Figure{ID: "ablation-clock", Title: "P4LRU3 vs CPU-side CLOCK and ideal LRU (LruTable)",
		XLabel: "memory (bytes)", YLabel: "slow-path rate"}
	for _, kind := range []policy.Kind{policy.KindP4LRU1, policy.KindP4LRU3, policy.KindClock, policy.KindIdeal} {
		ser := Series{Name: string(kind)}
		for _, mem := range memorySweep(s) {
			res := nat.Run(tr, nat.Config{
				Cache:         natCache(kind, mem, uint64(s.Seed), 0),
				SlowPathDelay: time.Millisecond,
				Obs:           registry(),
			})
			ser.Points = append(ser.Points, Point{X: float64(mem), Y: slowPathRate(res)})
		}
		fig.Series = append(fig.Series, ser)
	}
	return []Figure{fig}
}

// AblationEncoding measures the cost of the encoded stateful-ALU state
// machines against the generic permutation implementation (same behaviour,
// verified by the differential tests; this reports wall-clock per update).
func AblationEncoding(s Scale) []Figure {
	keys := trace.ZipfKeys(1<<16, 1.1, s.Queries, s.Seed)
	fig := Figure{ID: "ablation-encoding", Title: "encoded vs generic unit update cost",
		XLabel: "unit capacity", YLabel: "ns/op"}

	timeRun := func(u lru.UnitCache[uint64]) float64 {
		start := time.Now()
		for i, k := range keys {
			u.Update(k%64, uint64(i))
		}
		return float64(time.Since(start).Nanoseconds()) / float64(len(keys))
	}

	enc := Series{Name: "encoded"}
	gen := Series{Name: "generic"}
	for _, c := range []int{2, 3, 4} {
		var u lru.UnitCache[uint64]
		switch c {
		case 2:
			u = lru.NewUnit2[uint64](nil)
		case 3:
			u = lru.NewUnit3[uint64](nil)
		case 4:
			u = lru.NewUnit4[uint64](nil)
		}
		enc.Points = append(enc.Points, Point{X: float64(c), Y: timeRun(u)})
		gen.Points = append(gen.Points, Point{X: float64(c), Y: timeRun(lru.NewUnit[uint64](c, nil))})
	}
	fig.Series = []Series{enc, gen}
	return []Figure{fig}
}
