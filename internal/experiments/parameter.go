package experiments

import (
	"time"

	"github.com/p4lru/p4lru/internal/kvindex"
	"github.com/p4lru/p4lru/internal/nat"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/sketch"
	"github.com/p4lru/p4lru/internal/telemetry"
)

// parameterKinds is the P4LRU family ladder of the §4.2.2 experiments.
var parameterKinds = []policy.Kind{
	policy.KindIdeal, policy.KindP4LRU1, policy.KindP4LRU2, policy.KindP4LRU3,
}

// Fig15 is the LruTable parameter study: slow-path miss rate and LRU
// similarity against memory (a, b) and against ΔT (c, d) for LRU_IDEAL and
// P4LRU1/2/3.
func Fig15(s Scale) []Figure {
	tr := traceFor(s, 60)
	run := func(kind policy.Kind, mem int, dt time.Duration) nat.Result {
		return nat.Run(tr, nat.Config{
			Cache:           natCache(kind, mem, uint64(s.Seed), 0),
			SlowPathDelay:   dt,
			TrackSimilarity: true,
			Obs:             registry(),
		})
	}
	names := kindNames(parameterKinds)

	// Panel pair builder: one simulation per cell yields both metrics.
	panels := func(idSuffix, axisTitle, xLabel string, xs []float64,
		cell func(kind policy.Kind, xi int) nat.Result) (Figure, Figure) {
		results := make([][]nat.Result, len(parameterKinds))
		for i := range results {
			results[i] = make([]nat.Result, len(xs))
		}
		parallelFor(len(parameterKinds)*len(xs), func(j int) {
			ni, xi := j/len(xs), j%len(xs)
			results[ni][xi] = cell(parameterKinds[ni], xi)
		})
		miss := Figure{ID: "fig15" + idSuffix[:1], Title: "LruTable parameter: miss rate vs " + axisTitle,
			XLabel: xLabel, YLabel: "slow-path rate"}
		sim := Figure{ID: "fig15" + idSuffix[1:], Title: "LruTable parameter: LRU similarity vs " + axisTitle,
			XLabel: xLabel, YLabel: "similarity"}
		for ni, name := range names {
			m := Series{Name: name, Points: make([]Point, len(xs))}
			sm := Series{Name: name, Points: make([]Point, len(xs))}
			for xi, x := range xs {
				m.Points[xi] = Point{X: x, Y: slowPathRate(results[ni][xi])}
				sm.Points[xi] = Point{X: x, Y: results[ni][xi].Similarity}
			}
			miss.Series = append(miss.Series, m)
			sim.Series = append(sim.Series, sm)
		}
		return miss, sim
	}

	mems := memorySweep(s)
	missMem, simMem := panels("ab", "memory", "memory (bytes)", intsToFloats(mems),
		func(kind policy.Kind, xi int) nat.Result {
			return run(kind, mems[xi], time.Millisecond)
		})

	mem := p4lru3MemoryBytes(s)
	missDT, simDT := panels("cd", "ΔT", "ΔT (µs)", durationsToMicros(deltaTSweep),
		func(kind policy.Kind, xi int) nat.Result {
			return run(kind, mem, deltaTSweep[xi])
		})
	return []Figure{missMem, simMem, missDT, simDT}
}

// seriesForUnitCap builds a series-connected cache with unit capacity c and
// `levels` levels inside a total memory budget.
func seriesForUnitCap(unitCap, levels, mem int, seed uint64) policy.Cache {
	return policy.MustFromSpec(policy.Spec{
		Kind:     policy.KindSeries,
		UnitCap:  unitCap,
		Levels:   levels,
		MemBytes: mem,
		Seed:     seed,
	})
}

// Fig16 is the LruIndex parameter study: miss rate (a) and LRU similarity
// (b) against the number of series-connection levels for P4LRU1/2/3 units,
// then miss rate against memory (c) and ΔT (d) at the default 4 levels.
func Fig16(s Scale) []Figure {
	run := func(cache policy.Cache, arena time.Duration) kvindex.Result {
		cfg := kvindex.Config{
			Items:           s.Items,
			Threads:         8,
			Queries:         s.Queries,
			Seed:            s.Seed,
			Cache:           cache,
			TrackSimilarity: true,
			Obs:             registry(),
		}
		if arena > 0 {
			cfg.ArenaTime = arena
			cfg.NodeTime = arena / 2
		}
		return kvindex.Run(cfg)
	}
	mem := p4lru3MemoryBytes(s)
	unitCaps := []int{1, 2, 3}
	capNames := make([]string, len(unitCaps))
	for i, c := range unitCaps {
		capNames[i] = string(kindForUnitCap(c))
	}

	// Panels (a)/(b): one run per (unitCap, levels) yields both metrics.
	levelSweep := []int{1, 2, 3, 4, 5, 6}
	levelXs := intsToFloats(levelSweep)
	results := make([][]kvindex.Result, len(unitCaps))
	for i := range results {
		results[i] = make([]kvindex.Result, len(levelSweep))
	}
	parallelFor(len(unitCaps)*len(levelSweep), func(j int) {
		ni, xi := j/len(levelSweep), j%len(levelSweep)
		results[ni][xi] = run(seriesForUnitCap(unitCaps[ni], levelSweep[xi], mem, uint64(s.Seed)), 0)
	})
	missLv := Figure{ID: "fig16a", Title: "LruIndex parameter: miss rate vs connection levels",
		XLabel: "levels", YLabel: "miss rate"}
	simLv := Figure{ID: "fig16b", Title: "LruIndex parameter: LRU similarity vs connection levels",
		XLabel: "levels", YLabel: "similarity"}
	for ni, name := range capNames {
		m := Series{Name: name, Points: make([]Point, len(levelSweep))}
		sm := Series{Name: name, Points: make([]Point, len(levelSweep))}
		for xi, x := range levelXs {
			m.Points[xi] = Point{X: x, Y: 1 - results[ni][xi].HitRate}
			sm.Points[xi] = Point{X: x, Y: results[ni][xi].Similarity}
		}
		missLv.Series = append(missLv.Series, m)
		simLv.Series = append(simLv.Series, sm)
	}

	// Panel (c): miss vs memory at 4 levels, plus the ideal LRU.
	mems := memorySweep(s)
	missMem := Figure{ID: "fig16c", Title: "LruIndex parameter: miss rate vs memory (4 levels)",
		XLabel: "memory (bytes)", YLabel: "miss rate"}
	missMem.Series = grid(capNames, intsToFloats(mems), func(ni, xi int) float64 {
		return 1 - run(seriesForUnitCap(unitCaps[ni], 4, mems[xi], uint64(s.Seed)), 0).HitRate
	})
	ideal := Series{Name: "ideal", Points: sweep(intsToFloats(mems), func(x float64) float64 {
		c := policy.MustFromSpec(policy.Spec{
			Kind: policy.KindIdeal, MemBytes: int(x), Seed: uint64(s.Seed),
		})
		return 1 - run(c, 0).HitRate
	})}
	missMem.Series = append(missMem.Series, ideal)

	// Panel (d): miss vs ΔT at 4 levels.
	dts := []time.Duration{1 * time.Microsecond, 4 * time.Microsecond,
		16 * time.Microsecond, 64 * time.Microsecond}
	missDT := Figure{ID: "fig16d", Title: "LruIndex parameter: miss rate vs ΔT (4 levels)",
		XLabel: "ΔT (µs)", YLabel: "miss rate"}
	missDT.Series = grid(capNames, durationsToMicros(dts), func(ni, xi int) float64 {
		return 1 - run(seriesForUnitCap(unitCaps[ni], 4, mem, uint64(s.Seed)), dts[xi]).HitRate
	})
	return []Figure{missLv, simLv, missMem, missDT}
}

func kindForUnitCap(c int) policy.Kind {
	switch c {
	case 1:
		return policy.KindP4LRU1
	case 2:
		return policy.KindP4LRU2
	case 3:
		return policy.KindP4LRU3
	case 4:
		return policy.KindP4LRU4
	}
	return policy.Kind("p4lru?")
}

// Fig17 is the LruMon parameter study over the Tower filter: total error
// rate (a) and upload rate (b) against the bandwidth threshold for several
// reset periods, upload against total error (c), and the per-flow maximum
// error against the byte threshold (d).
func Fig17(s Scale) []Figure {
	tr := traceFor(s, 60)
	mem := p4lru3MemoryBytes(s)
	resetPeriods := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
	bandwidths := []float64{0.05e6, 0.1e6, 0.2e6, 0.4e6, 0.8e6} // bytes/second

	type sample struct {
		bw        float64
		threshold uint32
		res       telemetry.Result
	}
	samples := make([][]sample, len(resetPeriods))
	for i := range samples {
		samples[i] = make([]sample, len(bandwidths))
	}
	parallelFor(len(resetPeriods)*len(bandwidths), func(j int) {
		ri, bi := j/len(bandwidths), j%len(bandwidths)
		reset := resetPeriods[ri]
		bw := bandwidths[bi]
		thr := uint32(bw * reset.Seconds())
		if thr < 64 {
			thr = 64
		}
		res, _ := telemetry.Run(tr, telemetry.Config{
			Filter:    sketch.NewTowerDefault(towerScaleFor(s), reset, uint64(s.Seed)+5),
			Cache:     monCache(policy.KindP4LRU3, mem, uint64(s.Seed), 0),
			Threshold: thr,
			Obs:       registry(),
		}, reset)
		samples[ri][bi] = sample{bw: bw, threshold: thr, res: res}
	})

	errFig := Figure{ID: "fig17a", Title: "LruMon parameter: total error vs bandwidth threshold",
		XLabel: "bw threshold (MB/s)", YLabel: "total error rate"}
	upFig := Figure{ID: "fig17b", Title: "LruMon parameter: upload rate vs bandwidth threshold",
		XLabel: "bw threshold (MB/s)", YLabel: "uploads KPPS"}
	tradeFig := Figure{ID: "fig17c", Title: "LruMon parameter: upload rate vs total error",
		XLabel: "total error rate", YLabel: "uploads KPPS"}
	maxFig := Figure{ID: "fig17d", Title: "LruMon parameter: max flow error vs threshold",
		XLabel: "threshold (bytes)", YLabel: "max flow error (bytes)"}

	for ri, reset := range resetPeriods {
		name := reset.String()
		errS := Series{Name: name}
		upS := Series{Name: name}
		trS := Series{Name: name}
		mxS := Series{Name: name}
		for _, sm := range samples[ri] {
			mbps := sm.bw / 1e6
			errS.Points = append(errS.Points, Point{X: mbps, Y: sm.res.TotalErrorRate})
			upS.Points = append(upS.Points, Point{X: mbps, Y: sm.res.UploadRatePPS / 1e3})
			trS.Points = append(trS.Points, Point{X: sm.res.TotalErrorRate, Y: sm.res.UploadRatePPS / 1e3})
			mxS.Points = append(mxS.Points, Point{X: float64(sm.threshold), Y: float64(sm.res.MaxFlowError)})
		}
		errFig.Series = append(errFig.Series, errS)
		upFig.Series = append(upFig.Series, upS)
		tradeFig.Series = append(tradeFig.Series, trS)
		maxFig.Series = append(maxFig.Series, mxS)
	}
	// Reference bound y = x for panel (d): the error must stay below it.
	bound := Series{Name: "threshold-bound"}
	seen := map[uint32]bool{}
	for ri := range resetPeriods {
		for _, sm := range samples[ri] {
			if !seen[sm.threshold] {
				seen[sm.threshold] = true
				bound.Points = append(bound.Points, Point{X: float64(sm.threshold), Y: float64(sm.threshold)})
			}
		}
	}
	maxFig.Series = append(maxFig.Series, bound)

	return []Figure{errFig, upFig, tradeFig, maxFig}
}
