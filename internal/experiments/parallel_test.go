package experiments

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestParallelForCompletes(t *testing.T) {
	const n = 100
	var done [n]atomic.Bool
	parallelFor(n, func(i int) { done[i].Store(true) })
	for i := range done {
		if !done[i].Load() {
			t.Fatalf("point %d never ran", i)
		}
	}
}

// TestParallelForPanic: a panicking point must surface on the caller as a
// *PointPanic naming the failing index, after the other points completed.
func TestParallelForPanic(t *testing.T) {
	const n = 50
	const bad = 17
	sentinel := errors.New("cell blew up")
	var completed atomic.Int64

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic was swallowed")
		}
		pp, ok := r.(*PointPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *PointPanic", r, r)
		}
		if pp.Index != bad {
			t.Errorf("Index = %d, want %d", pp.Index, bad)
		}
		if !errors.Is(pp.Unwrap(), sentinel) {
			t.Errorf("Unwrap = %v, want %v", pp.Unwrap(), sentinel)
		}
		if !strings.Contains(pp.Error(), "point 17 panicked") {
			t.Errorf("Error() = %q", pp.Error())
		}
		if len(pp.Stack) == 0 {
			t.Error("no stack captured")
		}
		// Workers drained the remaining points instead of deadlocking.
		if got := completed.Load(); got != n-1 {
			t.Errorf("%d points completed, want %d", got, n-1)
		}
	}()

	parallelFor(n, func(i int) {
		if i == bad {
			panic(sentinel)
		}
		completed.Add(1)
	})
	t.Fatal("parallelFor returned normally")
}

// TestParallelForPanicSequential covers the single-worker path (n == 1).
func TestParallelForPanicSequential(t *testing.T) {
	defer func() {
		pp, ok := recover().(*PointPanic)
		if !ok || pp.Index != 0 || pp.Value != "boom" {
			t.Fatalf("recovered %+v", pp)
		}
	}()
	parallelFor(1, func(int) { panic("boom") })
}

// TestPointPanicUnwrapNonError: non-error panic values unwrap to nil.
func TestPointPanicUnwrapNonError(t *testing.T) {
	pp := &PointPanic{Index: 3, Value: "not an error"}
	if pp.Unwrap() != nil {
		t.Fatalf("Unwrap = %v, want nil", pp.Unwrap())
	}
}
