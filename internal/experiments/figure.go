// Package experiments regenerates every table and figure of the paper's
// evaluation (§4): one function per experiment, shared by the
// cmd/p4lru-bench CLI, the bench_test.go harness, and the regression tests
// that pin the qualitative shapes (who wins, which direction trends point).
//
// Absolute numbers differ from the paper — the substrate is a simulator fed
// synthetic CAIDA-like traces, not a Tofino testbed replaying CAIDA 2018 —
// but each experiment reproduces the published series structure: same
// panels, same sweeps, same competing systems.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Series is a named curve.
type Series struct {
	Name   string
	Points []Point
}

// Figure is one panel: a set of curves over a common axis.
type Figure struct {
	ID     string // e.g. "fig12a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Format renders the figure as an aligned text table: one row per x value,
// one column per series.
func (f Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %16s", s.Name)
	}
	b.WriteByte('\n')

	for _, x := range f.xs() {
		fmt.Fprintf(&b, "%-14.6g", x)
		for _, s := range f.Series {
			if y, ok := s.at(x); ok {
				fmt.Fprintf(&b, " %16.6g", y)
			} else {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure as x,series1,series2,... rows.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString("x")
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	for _, x := range f.xs() {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			b.WriteByte(',')
			if y, ok := s.at(x); ok {
				fmt.Fprintf(&b, "%g", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// xs returns the union of x values across series, ascending.
func (f Figure) xs() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func (s Series) at(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Rows returns the number of x rows Format and CSV render (the union of x
// values across series).
func (f Figure) Rows() int { return len(f.xs()) }

// Get returns the named series, or nil.
func (f Figure) Get(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// Scale sizes every experiment, so tests run small and the CLI runs at
// paper-like proportions. The paper's testbed: ≈2.6e7 packets over 1.3–2.4e6
// flows against 2^16–2^17 cache units; Default keeps the packets-per-unit
// and flows-per-unit ratios at a tractable absolute size.
type Scale struct {
	// Packets per synthesized trace; BaseFlows the CAIDA_1 flow count.
	Packets   int
	BaseFlows int
	// Units is the cache-array width for the testbed experiments
	// (the paper's 2^16, scaled).
	Units int
	// Items and Queries size the LruIndex database experiments.
	Items   int
	Queries int
	// Seed fixes all randomness.
	Seed int64
}

// DefaultScale is used by cmd/p4lru-bench.
func DefaultScale() Scale {
	return Scale{
		Packets:   2_000_000,
		BaseFlows: 100_000,
		Units:     1 << 14,
		Items:     200_000,
		Queries:   300_000,
		Seed:      1,
	}
}

// TestScale keeps the regression tests fast.
func TestScale() Scale {
	return Scale{
		Packets:   150_000,
		BaseFlows: 8_000,
		Units:     1 << 10,
		Items:     20_000,
		Queries:   40_000,
		Seed:      1,
	}
}

// Runner is the registry entry for one experiment.
type Runner struct {
	ID          string
	Description string
	Run         func(Scale) []Figure
}

// All returns the experiment registry in presentation order.
func All() []Runner {
	return []Runner{
		{"table2", "hardware resource usage of the three systems (Table 2)", Table2},
		{"fig9", "LruTable testbed: miss rate and added latency vs concurrency", Fig9},
		{"fig10", "LruIndex testbed: throughput vs threads, speedup vs items", Fig10},
		{"fig11", "LruMon testbed: upload rate vs concurrency and threshold", Fig11},
		{"fig12", "LruTable comparative: miss rate vs memory and ΔT", Fig12},
		{"fig13", "LruIndex comparative: miss rate vs memory and ΔT", Fig13},
		{"fig14", "LruMon comparative: miss rate vs memory and threshold", Fig14},
		{"fig15", "LruTable parameter: miss rate and LRU similarity", Fig15},
		{"fig16", "LruIndex parameter: connection levels, memory, ΔT", Fig16},
		{"fig17", "LruMon parameter: error/upload vs bandwidth threshold", Fig17},
		{"ablation-series", "series connection: reply-path vs naive immediate insertion", AblationSeries},
		{"ablation-p4lru4", "P4LRU4 extension vs P4LRU2/3 at equal memory", AblationP4LRU4},
		{"ablation-clock", "P4LRU3 vs CPU-side CLOCK and ideal LRU", AblationClock},
		{"ablation-encoding", "encoded ALU state machines vs generic permutation units", AblationEncoding},
	}
}

// Find returns the runner with the given id.
func Find(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
