package experiments

import (
	"sync/atomic"

	"github.com/p4lru/p4lru/internal/obs"
)

// obsReg is the registry every experiment run reports into (nil = off).
// Stored atomically because sweeps read it from worker goroutines.
var obsReg atomic.Pointer[obs.Registry]

// Instrument routes the live counters of every subsequent experiment run
// (nat_*, kvindex_*, telemetry_* metric families) into r, so a metrics
// endpoint can watch a sweep progress packet by packet. Pass nil to detach.
// The registry is shared across concurrent experiment points — counters are
// atomic, so the totals stay exact.
func Instrument(r *obs.Registry) {
	obsReg.Store(r)
}

// registry returns the installed registry (nil when uninstrumented).
func registry() *obs.Registry { return obsReg.Load() }
