package experiments

import "fmt"

// Claim is one verifiable headline statement from the paper's evaluation.
type Claim struct {
	ID        string
	Statement string
	Pass      bool
	Detail    string
}

// Verify reruns the evaluation at the given scale and checks the paper's
// qualitative claims — the artifact-evaluation entry point
// (`p4lru-bench verify`). The same assertions run in the regression tests;
// this form prints them against any scale.
func Verify(s Scale) []Claim {
	var claims []Claim
	add := func(id, statement string, pass bool, detail string, args ...interface{}) {
		claims = append(claims, Claim{
			ID: id, Statement: statement, Pass: pass,
			Detail: fmt.Sprintf(detail, args...),
		})
	}
	mean := func(f Figure, name string) float64 {
		ser := f.Get(name)
		if ser == nil || len(ser.Points) == 0 {
			return -1
		}
		sum := 0.0
		for _, p := range ser.Points {
			sum += p.Y
		}
		return sum / float64(len(ser.Points))
	}
	last := func(f Figure, name string) float64 {
		ser := f.Get(name)
		if ser == nil || len(ser.Points) == 0 {
			return -1
		}
		return ser.Points[len(ser.Points)-1].Y
	}

	// LruTable testbed (Figure 9).
	fig9 := Fig9(s)
	p3, base := last(fig9[0], "p4lru3"), last(fig9[0], "baseline")
	add("fig9", "LruTable: P4LRU3 misses less than the hash-table baseline",
		p3 < base, "miss %.4f vs %.4f at max concurrency", p3, base)

	// LruIndex testbed (Figure 10).
	fig10 := Fig10(s)
	cached, naive := last(fig10[0], "p4lru3"), last(fig10[0], "naive")
	add("fig10", "LruIndex: the index cache accelerates query throughput",
		cached > naive, "%.1f vs %.1f KTPS at 8 threads", cached, naive)

	// LruMon testbed (Figure 11).
	fig11 := Fig11(s)
	up3, upBase := mean(fig11[0], "p4lru3"), mean(fig11[0], "baseline")
	add("fig11", "LruMon: P4LRU3 uploads less than the baseline",
		up3 < upBase, "mean %.1f vs %.1f KPPS", up3, upBase)

	// Comparatives (Figures 12–14): P4LRU3 lowest mean miss rate.
	for _, c := range []struct {
		id   string
		figs []Figure
		name string
	}{
		{"fig12", Fig12(s), "LruTable"},
		{"fig13", Fig13(s), "LruIndex"},
		{"fig14", Fig14(s), "LruMon"},
	} {
		p3 := mean(c.figs[0], "p4lru3")
		worst := ""
		pass := true
		detail := fmt.Sprintf("p4lru3 %.4f", p3)
		for _, other := range []string{"coco", "elastic", "timeout"} {
			v := mean(c.figs[0], other)
			detail += fmt.Sprintf(", %s %.4f", other, v)
			if p3 >= v {
				pass = false
				worst = other
			}
		}
		add(c.id, fmt.Sprintf("%s: P4LRU3 beats Coco, Elastic and tuned Timeout", c.name),
			pass, "%s%s", detail, failNote(worst))
	}

	// Figure 15: similarity ladder.
	fig15 := Fig15(s)
	s3, s2, s1 := mean(fig15[1], "p4lru3"), mean(fig15[1], "p4lru2"), mean(fig15[1], "p4lru1")
	add("fig15", "LRU similarity: P4LRU3 > P4LRU2 > P4LRU1; ideal ≡ 1",
		s3 > s2 && s2 > s1 && mean(fig15[1], "ideal") == 1,
		"similarity %.3f / %.3f / %.3f", s3, s2, s1)

	// Figure 16: more levels help, and P4LRU3's similarity-vs-levels slope
	// flips sign versus P4LRU1 (the paper's 4-level argument).
	fig16 := Fig16(s)
	p3lv := fig16[0].Get("p4lru3")
	levelsHelp := p3lv != nil && len(p3lv.Points) >= 4 &&
		p3lv.Points[3].Y <= p3lv.Points[0].Y
	sim3 := fig16[1].Get("p4lru3")
	sim1 := fig16[1].Get("p4lru1")
	signFlip := sim1 != nil && sim3 != nil &&
		sim1.Points[len(sim1.Points)-1].Y > sim1.Points[0].Y && // p4lru1 rises
		sim3.Points[len(sim3.Points)-1].Y < maxY(sim3.Points) // p4lru3 peaks early
	add("fig16", "Series connection: 4 levels beat 1; P4LRU3's similarity peaks at low depth",
		levelsHelp && signFlip, "levelsHelp=%v signFlip=%v", levelsHelp, signFlip)

	// Figure 17: per-flow max error bounded by the filter threshold.
	fig17 := Fig17(s)
	bounded := true
	for _, ser := range fig17[3].Series {
		if ser.Name == "threshold-bound" {
			continue
		}
		for _, p := range ser.Points {
			if p.Y >= p.X {
				bounded = false
			}
		}
	}
	add("fig17", "LruMon: max per-flow error never exceeds the filter threshold",
		bounded, "bounded=%v", bounded)

	// Series ablation: reply path never duplicates keys.
	abl := AblationSeries(s)
	noDup := mean(abl[1], "reply-path") == 0
	hasDup := last(abl[1], "immediate") > 0
	add("ablation-series", "Query/update separation eliminates duplicate entries",
		noDup && hasDup, "reply-path dup=%.4f, immediate dup=%.4f",
		mean(abl[1], "reply-path"), last(abl[1], "immediate"))

	return claims
}

func failNote(worst string) string {
	if worst == "" {
		return ""
	}
	return " — lost to " + worst
}

func maxY(pts []Point) float64 {
	m := pts[0].Y
	for _, p := range pts {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}
