package experiments

import (
	"time"

	"github.com/p4lru/p4lru/internal/kvindex"
	"github.com/p4lru/p4lru/internal/nat"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/sketch"
	"github.com/p4lru/p4lru/internal/telemetry"
)

// comparativeKinds are the policies of the §4.2.1 comparison, in the
// paper's legend order.
var comparativeKinds = []policy.Kind{
	policy.KindCoco, policy.KindElastic, policy.KindTimeout, policy.KindP4LRU3,
}

func kindNames(kinds []policy.Kind) []string {
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = string(k)
	}
	return names
}

// timeoutGrid is the threshold grid searched to give the timeout policy its
// best configuration, as the paper "meticulously adjusted" it.
var timeoutGrid = []time.Duration{
	2 * time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond, 250 * time.Millisecond,
}

// bestTimeout runs `metric` (lower is better) over the grid and returns the
// best value achieved.
func bestTimeout(metric func(threshold time.Duration) float64) float64 {
	best := metric(timeoutGrid[0])
	for _, thr := range timeoutGrid[1:] {
		if v := metric(thr); v < best {
			best = v
		}
	}
	return best
}

// tuned evaluates one comparative cell: the timeout policy gets its
// threshold grid-searched; every other policy runs once with threshold 0.
func tuned(kind policy.Kind, metric func(threshold time.Duration) float64) float64 {
	if kind == policy.KindTimeout {
		return bestTimeout(metric)
	}
	return metric(0)
}

// memorySweep returns the cache-memory axis for this scale, centred on the
// default array's footprint.
func memorySweep(s Scale) []int {
	base := p4lru3MemoryBytes(s)
	return []int{base / 4, base / 2, base, base * 2, base * 4}
}

// deltaTSweep is the slow-path/query-latency axis.
var deltaTSweep = []time.Duration{
	1 * time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
	1 * time.Millisecond, 10 * time.Millisecond,
}

func durationsToMicros(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d) / 1e3
	}
	return out
}

// Fig12 is the LruTable comparative experiment: slow-path miss rate against
// cache memory (a) and against slow-path latency ΔT (b), for Coco, Elastic,
// the tuned Timeout, and P4LRU3 on the CAIDA_60-like trace.
func Fig12(s Scale) []Figure {
	tr := traceFor(s, 60)
	run := func(kind policy.Kind, mem int, dt, timeout time.Duration) float64 {
		res := nat.Run(tr, nat.Config{
			Cache:         natCache(kind, mem, uint64(s.Seed), timeout),
			SlowPathDelay: dt,
			Obs:           registry(),
		})
		return slowPathRate(res)
	}

	mems := memorySweep(s)
	memFig := Figure{ID: "fig12a", Title: "LruTable comparative: miss rate vs memory",
		XLabel: "memory (bytes)", YLabel: "slow-path rate"}
	memFig.Series = grid(kindNames(comparativeKinds), intsToFloats(mems), func(ni, xi int) float64 {
		kind := comparativeKinds[ni]
		return tuned(kind, func(thr time.Duration) float64 {
			return run(kind, mems[xi], time.Millisecond, thr)
		})
	})

	mem := p4lru3MemoryBytes(s)
	dtFig := Figure{ID: "fig12b", Title: "LruTable comparative: miss rate vs ΔT",
		XLabel: "ΔT (µs)", YLabel: "slow-path rate"}
	dtFig.Series = grid(kindNames(comparativeKinds), durationsToMicros(deltaTSweep), func(ni, xi int) float64 {
		kind := comparativeKinds[ni]
		return tuned(kind, func(thr time.Duration) float64 {
			return run(kind, mem, deltaTSweep[xi], thr)
		})
	})
	return []Figure{memFig, dtFig}
}

// indexCacheFor builds the LruIndex cache for a comparative policy at equal
// memory: P4LRU3 gets the 4-level series deployment; the single-bucket
// policies get one table of the same footprint.
func indexCacheFor(kind policy.Kind, mem int, seed uint64, timeout time.Duration) policy.Cache {
	if kind == policy.KindP4LRU3 {
		return lruIndexSeries(4, mem, seed)
	}
	return policy.MustFromSpec(policy.Spec{
		Kind:             kind,
		MemBytes:         mem,
		Seed:             seed,
		TimeoutThreshold: timeout,
	})
}

// Fig13 is the LruIndex comparative experiment: cache miss rate against
// memory (a) and against the database query latency ΔT (b).
func Fig13(s Scale) []Figure {
	run := func(kind policy.Kind, mem int, arena, timeout time.Duration) float64 {
		res := kvindex.Run(kvindex.Config{
			Items:     s.Items,
			Threads:   8,
			Queries:   s.Queries,
			Seed:      s.Seed,
			Cache:     indexCacheFor(kind, mem, uint64(s.Seed), timeout),
			ArenaTime: arena,
			NodeTime:  arena / 2,
			Obs:       registry(),
		})
		return 1 - res.HitRate
	}

	mems := memorySweep(s)
	memFig := Figure{ID: "fig13a", Title: "LruIndex comparative: miss rate vs memory",
		XLabel: "memory (bytes)", YLabel: "miss rate"}
	memFig.Series = grid(kindNames(comparativeKinds), intsToFloats(mems), func(ni, xi int) float64 {
		kind := comparativeKinds[ni]
		return tuned(kind, func(thr time.Duration) float64 {
			return run(kind, mems[xi], 0, thr)
		})
	})

	dts := []time.Duration{1 * time.Microsecond, 4 * time.Microsecond,
		16 * time.Microsecond, 64 * time.Microsecond}
	mem := p4lru3MemoryBytes(s)
	dtFig := Figure{ID: "fig13b", Title: "LruIndex comparative: miss rate vs ΔT",
		XLabel: "ΔT (µs)", YLabel: "miss rate"}
	dtFig.Series = grid(kindNames(comparativeKinds), durationsToMicros(dts), func(ni, xi int) float64 {
		kind := comparativeKinds[ni]
		return tuned(kind, func(thr time.Duration) float64 {
			return run(kind, mem, dts[xi], thr)
		})
	})
	return []Figure{memFig, dtFig}
}

// Fig14 is the LruMon comparative experiment: cache miss rate against
// memory (a) and against the filter threshold (b), Tower filter.
func Fig14(s Scale) []Figure {
	const reset = 10 * time.Millisecond
	tr := traceFor(s, 60)
	run := func(kind policy.Kind, mem int, threshold uint32, timeout time.Duration) float64 {
		res, _ := telemetry.Run(tr, telemetry.Config{
			Filter:    sketch.NewTowerDefault(towerScaleFor(s), reset, uint64(s.Seed)+3),
			Cache:     monCache(kind, mem, uint64(s.Seed), timeout),
			Threshold: threshold,
			Obs:       registry(),
		}, reset)
		total := res.CacheHits + res.CacheMisses
		if total == 0 {
			return 0
		}
		return float64(res.CacheMisses) / float64(total)
	}

	mems := memorySweep(s)
	memFig := Figure{ID: "fig14a", Title: "LruMon comparative: miss rate vs memory",
		XLabel: "memory (bytes)", YLabel: "cache miss rate"}
	memFig.Series = grid(kindNames(comparativeKinds), intsToFloats(mems), func(ni, xi int) float64 {
		kind := comparativeKinds[ni]
		return tuned(kind, func(thr time.Duration) float64 {
			return run(kind, mems[xi], 1500, thr)
		})
	})

	thresholds := []uint32{500, 1000, 1500, 3000, 6000}
	thrXs := make([]float64, len(thresholds))
	for i, t := range thresholds {
		thrXs[i] = float64(t)
	}
	mem := p4lru3MemoryBytes(s)
	thrFig := Figure{ID: "fig14b", Title: "LruMon comparative: miss rate vs filter threshold",
		XLabel: "threshold (bytes)", YLabel: "cache miss rate"}
	thrFig.Series = grid(kindNames(comparativeKinds), thrXs, func(ni, xi int) float64 {
		kind := comparativeKinds[ni]
		return tuned(kind, func(to time.Duration) float64 {
			return run(kind, mem, thresholds[xi], to)
		})
	})
	return []Figure{memFig, thrFig}
}
