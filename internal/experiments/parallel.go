package experiments

import (
	"runtime"
	"sync"
)

// parallelFor runs job(0..n-1) concurrently, bounded by the CPU count. Each
// experiment point is an independent simulation over shared *read-only*
// inputs (the synthesized trace), so sweeps parallelize safely; results are
// written into pre-indexed slots, keeping output order deterministic.
func parallelFor(n int, job func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// sweep evaluates y = eval(x) for every x concurrently and returns the
// points in input order.
func sweep(xs []float64, eval func(x float64) float64) []Point {
	pts := make([]Point, len(xs))
	parallelFor(len(xs), func(i int) {
		pts[i] = Point{X: xs[i], Y: eval(xs[i])}
	})
	return pts
}

// grid evaluates a full (series × x) matrix concurrently and returns one
// Series per name, points in x order.
func grid(names []string, xs []float64, cell func(ni, xi int) float64) []Series {
	series := make([]Series, len(names))
	for i, n := range names {
		series[i] = Series{Name: n, Points: make([]Point, len(xs))}
	}
	parallelFor(len(names)*len(xs), func(j int) {
		ni, xi := j/len(xs), j%len(xs)
		series[ni].Points[xi] = Point{X: xs[xi], Y: cell(ni, xi)}
	})
	return series
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}
