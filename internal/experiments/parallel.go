package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// PointPanic is the error value parallelFor re-panics with when an
// experiment point panics inside a worker goroutine: it carries the failing
// point index and the original panic value plus stack, instead of letting a
// bare goroutine panic kill the process with no indication of which sweep
// cell failed.
type PointPanic struct {
	Index int    // the parallelFor point that panicked
	Value any    // the original panic value
	Stack []byte // the worker's stack at panic time
}

func (p *PointPanic) Error() string {
	return fmt.Sprintf("experiments: point %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// Unwrap exposes the original panic value when it was an error.
func (p *PointPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// parallelFor runs job(0..n-1) concurrently, bounded by the CPU count. Each
// experiment point is an independent simulation over shared *read-only*
// inputs (the synthesized trace), so sweeps parallelize safely; results are
// written into pre-indexed slots, keeping output order deterministic.
//
// A panicking point does not crash the whole sweep from inside a goroutine:
// the first panic is captured (workers keep draining so nothing deadlocks),
// and after every worker finishes it is re-raised on the caller as a
// *PointPanic carrying the failing index.
func parallelFor(n int, job func(i int)) {
	var (
		panicOnce sync.Once
		captured  *PointPanic
	)
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() {
					captured = &PointPanic{Index: i, Value: r, Stack: debug.Stack()}
				})
			}
		}()
		job(i)
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					run(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	if captured != nil {
		panic(captured)
	}
}

// sweep evaluates y = eval(x) for every x concurrently and returns the
// points in input order.
func sweep(xs []float64, eval func(x float64) float64) []Point {
	pts := make([]Point, len(xs))
	parallelFor(len(xs), func(i int) {
		pts[i] = Point{X: xs[i], Y: eval(xs[i])}
	})
	return pts
}

// grid evaluates a full (series × x) matrix concurrently and returns one
// Series per name, points in x order.
func grid(names []string, xs []float64, cell func(ni, xi int) float64) []Series {
	series := make([]Series, len(names))
	for i, n := range names {
		series[i] = Series{Name: n, Points: make([]Point, len(xs))}
	}
	parallelFor(len(names)*len(xs), func(j int) {
		ni, xi := j/len(xs), j%len(xs)
		series[ni].Points[xi] = Point{X: xs[xi], Y: cell(ni, xi)}
	})
	return series
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}
