package experiments

import (
	"strings"
	"testing"
)

// lastY returns the y of the last point of the named series.
func lastY(t *testing.T, f Figure, name string) float64 {
	t.Helper()
	s := f.Get(name)
	if s == nil || len(s.Points) == 0 {
		t.Fatalf("%s: series %q missing or empty", f.ID, name)
	}
	return s.Points[len(s.Points)-1].Y
}

func meanY(t *testing.T, f Figure, name string) float64 {
	t.Helper()
	s := f.Get(name)
	if s == nil || len(s.Points) == 0 {
		t.Fatalf("%s: series %q missing or empty", f.ID, name)
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.Y
	}
	return sum / float64(len(s.Points))
}

func TestFigureFormatAndCSV(t *testing.T) {
	f := Figure{
		ID: "x", Title: "t", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{1, 10}, {2, 20}}},
			{Name: "b", Points: []Point{{1, 11}}},
		},
	}
	out := f.Format()
	if !strings.Contains(out, "a") || !strings.Contains(out, "-") {
		t.Errorf("Format missing pieces:\n%s", out)
	}
	csv := f.CSV()
	if !strings.HasPrefix(csv, "x,a,b\n1,10,11\n2,20,\n") {
		t.Errorf("CSV = %q", csv)
	}
}

func TestRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range All() {
		if r.ID == "" || r.Description == "" || r.Run == nil {
			t.Errorf("incomplete runner %+v", r.ID)
		}
		if ids[r.ID] {
			t.Errorf("duplicate id %s", r.ID)
		}
		ids[r.ID] = true
	}
	for _, want := range []string{"table2", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17"} {
		if !ids[want] {
			t.Errorf("registry missing %s", want)
		}
	}
	if _, ok := Find("fig9"); !ok {
		t.Error("Find(fig9) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) succeeded")
	}
}

func TestTable2(t *testing.T) {
	figs := Table2(TestScale())
	if len(figs) != 1 {
		t.Fatalf("%d figures", len(figs))
	}
	f := figs[0]
	if len(f.Series) != 3 {
		t.Fatalf("%d systems", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.Points) != 5 {
			t.Errorf("%s: %d resources", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y < 0 || p.Y > 100 {
				t.Errorf("%s: utilization %.2f%% out of range", s.Name, p.Y)
			}
		}
	}
}

func TestFig9Shapes(t *testing.T) {
	figs := Fig9(TestScale())
	if len(figs) != 2 {
		t.Fatalf("%d figures", len(figs))
	}
	miss, lat := figs[0], figs[1]
	// P4LRU3 beats the baseline on both panels at the highest concurrency.
	if lastY(t, miss, "p4lru3") >= lastY(t, miss, "baseline") {
		t.Errorf("fig9a: p4lru3 %.4f not below baseline %.4f",
			lastY(t, miss, "p4lru3"), lastY(t, miss, "baseline"))
	}
	if lastY(t, lat, "p4lru3") >= lastY(t, lat, "baseline") {
		t.Errorf("fig9b: p4lru3 latency not below baseline")
	}
	// Miss rate rises with concurrency.
	s := miss.Get("p4lru3")
	if s.Points[len(s.Points)-1].Y <= s.Points[0].Y {
		t.Errorf("fig9a: p4lru3 miss rate does not rise with concurrency: %v", s.Points)
	}
}

func TestFig10Shapes(t *testing.T) {
	figs := Fig10(TestScale())
	thr, sp := figs[0], figs[1]
	// Cached beats naive at 8 threads; p4lru3 at or above baseline.
	if lastY(t, thr, "p4lru3") <= lastY(t, thr, "naive") {
		t.Errorf("fig10a: cached %.0f not above naive %.0f",
			lastY(t, thr, "p4lru3"), lastY(t, thr, "naive"))
	}
	// Throughput grows with threads.
	s := thr.Get("p4lru3")
	if s.Points[len(s.Points)-1].Y <= s.Points[0].Y {
		t.Errorf("fig10a: throughput not increasing")
	}
	// Speedups are ≥ ~1 for the cached systems.
	if meanY(t, sp, "p4lru3") < 1 {
		t.Errorf("fig10b: mean p4lru3 speedup %.2f < 1", meanY(t, sp, "p4lru3"))
	}
	if meanY(t, sp, "p4lru3") <= meanY(t, sp, "baseline")*0.98 {
		t.Errorf("fig10b: p4lru3 speedup %.3f clearly below baseline %.3f",
			meanY(t, sp, "p4lru3"), meanY(t, sp, "baseline"))
	}
}

func TestFig11Shapes(t *testing.T) {
	figs := Fig11(TestScale())
	up, thr := figs[0], figs[1]
	if meanY(t, up, "p4lru3") >= meanY(t, up, "baseline") {
		t.Errorf("fig11a: p4lru3 upload %.1f not below baseline %.1f",
			meanY(t, up, "p4lru3"), meanY(t, up, "baseline"))
	}
	// Upload falls as the threshold rises.
	s := thr.Get("p4lru3")
	if s.Points[len(s.Points)-1].Y >= s.Points[0].Y {
		t.Errorf("fig11b: upload did not fall with threshold: %v", s.Points)
	}
}

func TestFig12Shapes(t *testing.T) {
	figs := Fig12(TestScale())
	mem := figs[0]
	// P4LRU3 has the lowest mean miss rate of the four policies.
	p3 := meanY(t, mem, "p4lru3")
	for _, other := range []string{"coco", "elastic", "timeout"} {
		if p3 >= meanY(t, mem, other) {
			t.Errorf("fig12a: p4lru3 %.4f not below %s %.4f", p3, other, meanY(t, mem, other))
		}
	}
	// More memory ⇒ fewer misses for p4lru3.
	s := mem.Get("p4lru3")
	if s.Points[len(s.Points)-1].Y >= s.Points[0].Y {
		t.Errorf("fig12a: p4lru3 miss rate not falling with memory: %v", s.Points)
	}
}

func TestFig13Shapes(t *testing.T) {
	figs := Fig13(TestScale())
	mem := figs[0]
	p3 := meanY(t, mem, "p4lru3")
	for _, other := range []string{"coco", "elastic", "timeout"} {
		if p3 >= meanY(t, mem, other) {
			t.Errorf("fig13a: p4lru3 %.4f not below %s %.4f", p3, other, meanY(t, mem, other))
		}
	}
}

func TestFig14Shapes(t *testing.T) {
	figs := Fig14(TestScale())
	mem := figs[0]
	p3 := meanY(t, mem, "p4lru3")
	for _, other := range []string{"coco", "elastic", "timeout"} {
		if p3 >= meanY(t, mem, other) {
			t.Errorf("fig14a: p4lru3 %.4f not below %s %.4f", p3, other, meanY(t, mem, other))
		}
	}
}

func TestFig15Shapes(t *testing.T) {
	figs := Fig15(TestScale())
	missMem, simMem := figs[0], figs[1]
	// Ideal ≤ p4lru3 ≤ p4lru2 ≤ p4lru1 on miss rate (mean over sweep).
	if !(meanY(t, missMem, "ideal") <= meanY(t, missMem, "p4lru3")) {
		t.Errorf("fig15a: ideal above p4lru3")
	}
	if !(meanY(t, missMem, "p4lru3") < meanY(t, missMem, "p4lru1")) {
		t.Errorf("fig15a: p4lru3 not below p4lru1")
	}
	// Similarity ladder: ideal = 1 > p4lru3 > p4lru2 > p4lru1.
	for _, p := range simMem.Get("ideal").Points {
		if p.Y != 1 {
			t.Errorf("fig15b: ideal similarity %.3f ≠ 1", p.Y)
		}
	}
	if !(meanY(t, simMem, "p4lru3") > meanY(t, simMem, "p4lru2") &&
		meanY(t, simMem, "p4lru2") > meanY(t, simMem, "p4lru1")) {
		t.Errorf("fig15b: similarity ladder broken: p4lru3=%.3f p4lru2=%.3f p4lru1=%.3f",
			meanY(t, simMem, "p4lru3"), meanY(t, simMem, "p4lru2"), meanY(t, simMem, "p4lru1"))
	}
}

func TestFig16Shapes(t *testing.T) {
	figs := Fig16(TestScale())
	missLv := figs[0]
	// P4LRU3 series has the lowest miss rate at every level count.
	p3 := missLv.Get("p4lru3")
	p1 := missLv.Get("p4lru1")
	for i := range p3.Points {
		if p3.Points[i].Y >= p1.Points[i].Y {
			t.Errorf("fig16a: at %v levels p4lru3 %.4f not below p4lru1 %.4f",
				p3.Points[i].X, p3.Points[i].Y, p1.Points[i].Y)
		}
	}
	// More levels help the CAIDA-like/Zipf workload (4+ levels no worse
	// than 1 level).
	if p3.Points[3].Y > p3.Points[0].Y {
		t.Errorf("fig16a: 4 levels (%.4f) worse than 1 level (%.4f)",
			p3.Points[3].Y, p3.Points[0].Y)
	}
}

func TestFig17Shapes(t *testing.T) {
	figs := Fig17(TestScale())
	errFig, upFig, _, maxFig := figs[0], figs[1], figs[2], figs[3]
	for _, s := range errFig.Series {
		// Error rises with the bandwidth threshold.
		if s.Points[len(s.Points)-1].Y <= s.Points[0].Y {
			t.Errorf("fig17a %s: error not rising: %v", s.Name, s.Points)
		}
	}
	for _, s := range upFig.Series {
		// Upload falls with the threshold.
		if s.Points[len(s.Points)-1].Y >= s.Points[0].Y {
			t.Errorf("fig17b %s: upload not falling: %v", s.Name, s.Points)
		}
	}
	// Max error stays below the threshold bound.
	for _, s := range maxFig.Series {
		if s.Name == "threshold-bound" {
			continue
		}
		for _, p := range s.Points {
			if p.Y >= p.X {
				t.Errorf("fig17d %s: max error %.0f ≥ threshold %.0f", s.Name, p.Y, p.X)
			}
		}
	}
}

func TestAblationSeriesShapes(t *testing.T) {
	figs := AblationSeries(TestScale())
	hit, dup := figs[0], figs[1]
	if meanY(t, hit, "reply-path") < meanY(t, hit, "immediate") {
		t.Errorf("ablation: reply-path hit rate %.4f below immediate %.4f",
			meanY(t, hit, "reply-path"), meanY(t, hit, "immediate"))
	}
	// Reply path never duplicates; immediate mode does (at >1 level).
	if meanY(t, dup, "reply-path") != 0 {
		t.Errorf("ablation: reply-path produced duplicates")
	}
	im := dup.Get("immediate")
	foundDup := false
	for _, p := range im.Points {
		if p.X > 1 && p.Y > 0 {
			foundDup = true
		}
	}
	if !foundDup {
		t.Error("ablation: immediate mode produced no duplicates")
	}
}

func TestAblationP4LRU4Shapes(t *testing.T) {
	figs := AblationP4LRU4(TestScale())
	f := figs[0]
	// P4LRU4 at least matches P4LRU2 (deeper units, same memory).
	if meanY(t, f, "p4lru4") > meanY(t, f, "p4lru2") {
		t.Errorf("p4lru4 mean miss %.4f above p4lru2 %.4f",
			meanY(t, f, "p4lru4"), meanY(t, f, "p4lru2"))
	}
}

func TestAblationEncodingRuns(t *testing.T) {
	figs := AblationEncoding(TestScale())
	for _, s := range figs[0].Series {
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Errorf("%s: non-positive ns/op at cap %v", s.Name, p.X)
			}
		}
	}
}

func TestAblationClockShapes(t *testing.T) {
	figs := AblationClock(TestScale())
	f := figs[0]
	// CPU-side policies (clock, ideal) at or below P4LRU3; P4LRU3 below the
	// hash table; CLOCK close to ideal.
	if meanY(t, f, "clock") > meanY(t, f, "p4lru3") {
		t.Errorf("clock mean %.4f above p4lru3 %.4f", meanY(t, f, "clock"), meanY(t, f, "p4lru3"))
	}
	if meanY(t, f, "p4lru3") >= meanY(t, f, "p4lru1") {
		t.Errorf("p4lru3 %.4f not below p4lru1 %.4f", meanY(t, f, "p4lru3"), meanY(t, f, "p4lru1"))
	}
	if d := meanY(t, f, "clock") - meanY(t, f, "ideal"); d < -0.01 || d > 0.01 {
		t.Errorf("clock %.4f not within 1%% of ideal %.4f", meanY(t, f, "clock"), meanY(t, f, "ideal"))
	}
}

// TestVerifyAllClaimsHold: the artifact-evaluation checker must pass every
// claim at test scale (it reruns the full evaluation, so this is the
// heaviest test in the package).
func TestVerifyAllClaimsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("verify reruns the whole evaluation")
	}
	claims := Verify(TestScale())
	if len(claims) < 10 {
		t.Fatalf("only %d claims checked", len(claims))
	}
	for _, c := range claims {
		if !c.Pass {
			t.Errorf("claim %s failed: %s (%s)", c.ID, c.Statement, c.Detail)
		}
		if c.Detail == "" {
			t.Errorf("claim %s has no detail", c.ID)
		}
	}
}
