package experiments

import (
	"time"

	"github.com/p4lru/p4lru/internal/kvindex"
	"github.com/p4lru/p4lru/internal/nat"
	"github.com/p4lru/p4lru/internal/pipeline"
	"github.com/p4lru/p4lru/internal/policy"
	"github.com/p4lru/p4lru/internal/sketch"
	"github.com/p4lru/p4lru/internal/telemetry"
	"github.com/p4lru/p4lru/internal/trace"
)

// concurrencySweep is the CAIDA_n axis of the testbed figures.
var concurrencySweep = []int{1, 10, 20, 30, 40, 50, 60}

// traceFor synthesizes the CAIDA_n stand-in at this scale. Traces span one
// second, matching §4.2's rescaling.
func traceFor(s Scale, segments int) *trace.Trace {
	return trace.Synthesize(trace.SynthConfig{
		Packets:   s.Packets,
		BaseFlows: s.BaseFlows,
		Segments:  segments,
		Duration:  time.Second,
		Seed:      s.Seed,
	})
}

// p4lru3MemoryBytes is the memory the testbed P4LRU3 array occupies; the
// equal-memory baselines are sized from it.
func p4lru3MemoryBytes(s Scale) int { return s.Units * 25 }

// Table2 regenerates the hardware resource usage table from the pipeline
// programs of the three systems at the paper's deployment sizes. X encodes
// the resource: 0=hash bits, 1=SRAM, 2=stateful ALUs, 3=VLIW, 4=stages.
//
// When the bench harness instruments the experiments (-metrics), Table2 also
// pushes a short Zipf workload through an instrumented pipeline array: the
// dynamic complement of the static rows, so per-stage SALU access/branch and
// cache hit/miss/evict counters are live on /metrics during `run all`.
func Table2(s Scale) []Figure {
	budget := pipeline.TofinoBudget
	if r := registry(); r != nil {
		arr, err := pipeline.BuildCacheArray3("lrutable", 1<<12, 1, pipeline.ModeWrite, budget)
		if err != nil {
			panic(err)
		}
		arr.Instrument(r)
		for i, k := range trace.ZipfKeys(1<<14, 1.1, s.Queries, s.Seed) {
			if _, err := arr.Update(k+1, uint64(i)+1, false); err != nil {
				panic(err)
			}
		}
	}
	lt, err := pipeline.BuildLruTableSystem(1<<16, 1, budget)
	if err != nil {
		panic(err)
	}
	li, err := pipeline.BuildLruIndexSystem(4, 1<<16, 1, budget)
	if err != nil {
		panic(err)
	}
	lm, err := pipeline.BuildLruMonSystem(1<<17, 1, 1, budget)
	if err != nil {
		panic(err)
	}

	fig := Figure{
		ID:     "table2",
		Title:  "resource utilization %, per occupied pipes (0=hash bits, 1=SRAM, 2=stateful ALU, 3=VLIW, 4=stages)",
		XLabel: "resource",
		YLabel: "percent",
	}
	for _, sys := range []struct {
		name string
		prog *pipeline.Program
	}{{"lrutable", lt}, {"lruindex", li}, {"lrumon", lm}} {
		row := sys.prog.UtilizationRow()
		ser := Series{Name: sys.name}
		for i, key := range pipeline.UtilizationKeys() {
			ser.Points = append(ser.Points, Point{X: float64(i), Y: row[key]})
		}
		fig.Series = append(fig.Series, ser)
	}
	return []Figure{fig}
}

// natCache builds the LruTable data-plane cache for one policy at equal
// memory.
func natCache(kind policy.Kind, mem int, seed uint64, timeout time.Duration) policy.Cache {
	return policy.MustFromSpec(policy.Spec{
		Kind:             kind,
		MemBytes:         mem,
		Seed:             seed,
		TimeoutThreshold: timeout,
		Merge:            nat.MergeNAT,
	})
}

// Fig9 is the LruTable testbed experiment: fast-path miss rate (a) and
// added forwarding latency (b) against trace concurrency, P4LRU3 vs the
// hash-table baseline.
func Fig9(s Scale) []Figure {
	const slowPath = 5 * time.Microsecond
	mem := p4lru3MemoryBytes(s)

	missFig := Figure{ID: "fig9a", Title: "LruTable testbed: miss rate vs concurrency",
		XLabel: "CAIDA_n", YLabel: "slow-path rate"}
	latFig := Figure{ID: "fig9b", Title: "LruTable testbed: added latency vs concurrency",
		XLabel: "CAIDA_n", YLabel: "latency (µs)"}

	traces := make([]*trace.Trace, len(concurrencySweep))
	parallelFor(len(traces), func(i int) { traces[i] = traceFor(s, concurrencySweep[i]) })

	systems := []struct {
		name string
		kind policy.Kind
	}{{"p4lru3", policy.KindP4LRU3}, {"baseline", policy.KindP4LRU1}}
	results := make([][]nat.Result, len(systems))
	for i := range results {
		results[i] = make([]nat.Result, len(traces))
	}
	parallelFor(len(systems)*len(traces), func(j int) {
		si, ti := j/len(traces), j%len(traces)
		results[si][ti] = nat.Run(traces[ti], nat.Config{
			Cache:         natCache(systems[si].kind, mem, uint64(s.Seed), 0),
			SlowPathDelay: slowPath,
			Obs:           registry(),
		})
	})
	for si, sys := range systems {
		miss := Series{Name: sys.name, Points: make([]Point, len(traces))}
		lat := Series{Name: sys.name, Points: make([]Point, len(traces))}
		for ti, n := range concurrencySweep {
			res := results[si][ti]
			miss.Points[ti] = Point{X: float64(n), Y: slowPathRate(res)}
			lat.Points[ti] = Point{X: float64(n), Y: float64(res.AvgAddedLatency) / 1e3}
		}
		missFig.Series = append(missFig.Series, miss)
		latFig.Series = append(latFig.Series, lat)
	}
	return []Figure{missFig, latFig}
}

func slowPathRate(r nat.Result) float64 {
	if r.Packets == 0 {
		return 0
	}
	return float64(r.SlowPathTrips) / float64(r.Packets)
}

// lruIndexSeries builds the two-pipe (two-level) LruIndex cache used by the
// testbed figures, sized to `mem` bytes total.
func lruIndexSeries(levels, mem int, seed uint64) policy.Cache {
	return policy.MustFromSpec(policy.Spec{
		Kind:     policy.KindSeries,
		Levels:   levels,
		MemBytes: mem,
		Seed:     seed,
	})
}

// Fig10 is the LruIndex testbed experiment: query throughput against thread
// count (a) and speedup over the naive solution against database size (b).
func Fig10(s Scale) []Figure {
	mem := p4lru3MemoryBytes(s)
	baseCfg := func() kvindex.Config {
		return kvindex.Config{
			Items:   s.Items,
			Queries: s.Queries,
			Seed:    s.Seed,
			Obs:     registry(),
		}
	}

	thrFig := Figure{ID: "fig10a", Title: "LruIndex testbed: throughput vs threads",
		XLabel: "threads", YLabel: "KTPS"}
	systems := []struct {
		name  string
		cache func() policy.Cache
	}{
		{"p4lru3", func() policy.Cache { return lruIndexSeries(2, mem, uint64(s.Seed)) }},
		{"baseline", func() policy.Cache {
			return policy.MustFromSpec(policy.Spec{
				Kind: policy.KindP4LRU1, MemBytes: mem, Seed: uint64(s.Seed),
			})
		}},
		{"naive", func() policy.Cache { return nil }},
	}
	for _, sys := range systems {
		ser := Series{Name: sys.name}
		for _, threads := range []int{1, 2, 4, 8} {
			cfg := baseCfg()
			cfg.Threads = threads
			cfg.Cache = sys.cache()
			res := kvindex.Run(cfg)
			ser.Points = append(ser.Points, Point{X: float64(threads), Y: res.ThroughputTPS / 1e3})
		}
		thrFig.Series = append(thrFig.Series, ser)
	}

	spFig := Figure{ID: "fig10b", Title: "LruIndex testbed: speedup vs items (8 threads)",
		XLabel: "items", YLabel: "speedup vs naive"}
	itemSweep := []int{s.Items / 4, s.Items / 2, s.Items, s.Items * 2}
	for _, sys := range systems[:2] { // speedup is relative to naive
		ser := Series{Name: sys.name}
		for _, items := range itemSweep {
			cfg := baseCfg()
			cfg.Items = items
			cfg.Threads = 8
			naive := kvindex.Run(cfg)
			cfg.Cache = sys.cache()
			cached := kvindex.Run(cfg)
			ser.Points = append(ser.Points, Point{
				X: float64(items),
				Y: cached.ThroughputTPS / naive.ThroughputTPS,
			})
		}
		spFig.Series = append(spFig.Series, ser)
	}
	return []Figure{thrFig, spFig}
}

// monCache builds the LruMon write-cache for one policy at equal memory.
func monCache(kind policy.Kind, mem int, seed uint64, timeout time.Duration) policy.Cache {
	return policy.MustFromSpec(policy.Spec{
		Kind:             kind,
		MemBytes:         mem,
		Seed:             seed,
		TimeoutThreshold: timeout,
		Merge:            telemetry.Merge,
	})
}

// towerScaleFor keeps the filter proportioned to the trace: the paper pairs
// 2^20 counters with 2.6e7 packets; we keep counters ≈ packets/25.
func towerScaleFor(s Scale) float64 {
	return float64(s.Packets) / 25 / float64(1<<20)
}

// Fig11 is the LruMon testbed experiment with the CM-sketch filter: upload
// rate against concurrency (a) and against the filter threshold (b).
func Fig11(s Scale) []Figure {
	const reset = 10 * time.Millisecond
	mem := p4lru3MemoryBytes(s)
	cmWidth := int(float64(s.Packets) / 25)
	if cmWidth < 64 {
		cmWidth = 64
	}

	traces := make([]*trace.Trace, len(concurrencySweep))
	parallelFor(len(traces), func(i int) { traces[i] = traceFor(s, concurrencySweep[i]) })
	caida60 := traces[len(traces)-1] // the sweep ends at CAIDA_60

	run := func(kind policy.Kind, tr *trace.Trace, threshold uint32) telemetry.Result {
		res, _ := telemetry.Run(tr, telemetry.Config{
			Filter:    sketch.NewCountMin(2, cmWidth/2, reset, uint64(s.Seed)+7),
			Cache:     monCache(kind, mem, uint64(s.Seed), 0),
			Threshold: threshold,
			Obs:       registry(),
		}, reset)
		return res
	}

	sysNames := []string{"p4lru3", "baseline"}
	sysKinds := []policy.Kind{policy.KindP4LRU3, policy.KindP4LRU1}

	xs := make([]float64, len(concurrencySweep))
	for i, n := range concurrencySweep {
		xs[i] = float64(n)
	}
	upFig := Figure{ID: "fig11a", Title: "LruMon testbed (CM filter): upload rate vs concurrency",
		XLabel: "CAIDA_n", YLabel: "uploads KPPS"}
	upFig.Series = grid(sysNames, xs, func(ni, xi int) float64 {
		return run(sysKinds[ni], traces[xi], 1500).UploadRatePPS / 1e3
	})

	thresholds := []uint32{500, 1000, 1500, 3000, 6000}
	thrXs := make([]float64, len(thresholds))
	for i, t := range thresholds {
		thrXs[i] = float64(t)
	}
	thrFig := Figure{ID: "fig11b", Title: "LruMon testbed (CM filter): upload rate vs threshold (CAIDA_60)",
		XLabel: "threshold (bytes)", YLabel: "uploads KPPS"}
	thrFig.Series = grid(sysNames, thrXs, func(ni, xi int) float64 {
		return run(sysKinds[ni], caida60, thresholds[xi]).UploadRatePPS / 1e3
	})
	return []Figure{upFig, thrFig}
}
