package cluster

import (
	"time"

	"github.com/p4lru/p4lru/internal/netproto"
)

// Anti-entropy: two mechanisms keep replicas of the hot set convergent.
//
// Read repair rides the query path. The hot-key fan probes replicas in
// rotation; when one replica hits after another answered a miss, the miss is
// divergence observed for free, and a repair job is enqueued for the lagging
// replica. The queue is bounded (overflow is dropped and counted — repair is
// an optimization, never backpressure on reads) and drained by one worker at
// a configured rate. The worker re-reads the key from its current ring owner
// at drain time — the owner is the authority, and the value that triggered
// the job may itself be stale by then — and installs the owner's value at
// the divergent replica.
//
// The digest sweep catches what reads can't see: value divergence. A replica
// that holds a *different* value still answers "hit", so the fan never
// observes it. Periodically the sweep walks the published hot set and, for
// each key, compares the owner's arc digest (pair count + xor over the
// degenerate single-position arc (pos-1, pos]) against each replica's. The
// arc pins exactly the ring position the key hashes to, so both sides digest
// the same key set regardless of what else they cache — count or xor
// disagreement means a missing or divergent copy, and the key is enqueued
// through the same repair queue.

// repairJob names one suspected-divergent copy: key, and the replica to
// re-fill from the owner.
type repairJob struct {
	key uint64
	dst string
}

// enqueueRepair offers a job to the bounded queue, never blocking the
// caller; a full queue drops the job and counts it.
func (r *Router) enqueueRepair(key uint64, dst string) {
	if r.repairQ == nil {
		return
	}
	select {
	case r.repairQ <- repairJob{key: key, dst: dst}:
		r.repairsQueued.Inc()
	default:
		r.repairsDropped.Inc()
	}
}

// repairLoop is the single drain worker: rate-limited by a ticker so a
// divergence storm (a node returning from a partition with a cold or stale
// hot set) refills at a bounded trickle instead of a thundering herd.
func (r *Router) repairLoop() {
	defer close(r.repDone)
	tick := time.NewTicker(time.Second / time.Duration(r.cfg.RepairRate))
	defer tick.Stop()
	for {
		var j repairJob
		select {
		case <-r.repStop:
			return
		case j = <-r.repairQ:
		}
		select {
		case <-r.repStop:
			return
		case <-tick.C:
		}
		r.repairOne(j)
	}
}

// repairOne re-reads j.key from its current owner and installs the owner's
// value at j.dst. Every step is best-effort: a vanished member, a miss at
// the owner (the key cooled off and was evicted) or a failed install just
// abandons the job — the next read or sweep will re-detect live divergence.
func (r *Router) repairOne(j repairJob) {
	st := r.state.Load()
	if st.ring.Size() == 0 || st.peers[j.dst] == nil {
		return
	}
	owner := st.ring.OwnerAt(st.ring.Pos(j.key))
	if owner == j.dst {
		return // ownership moved; the migration path owns this copy now
	}
	v, ok, err := r.queryPeer(st, owner, j.key)
	if err != nil || !ok {
		return
	}
	if r.updatePeer(st, j.dst, j.key, v) == nil {
		r.repairsApplied.Inc()
	}
}

// sweepLoop runs the digest sweep on its configured cadence.
func (r *Router) sweepLoop() {
	defer close(r.swpDone)
	t := time.NewTicker(r.cfg.RepairSweepEvery)
	defer t.Stop()
	for {
		select {
		case <-r.swpStop:
			return
		case <-t.C:
		}
		r.sweepOnce()
	}
}

// sweepOnce digests every published hot key on its owner and replicas and
// enqueues repairs for disagreeing copies. Exported through the test
// build only via the loop; tests with the sweep disabled call it directly
// for deterministic timing.
func (r *Router) sweepOnce() {
	st := r.state.Load()
	if r.hot == nil || st.ring.Size() < 2 {
		return
	}
	keys := r.hot.Keys()
	if len(keys) == 0 {
		return
	}
	r.sweeps.Inc()
	for _, key := range keys {
		pos := st.ring.Pos(key)
		ids := st.ring.ReplicasAt(pos, r.replicas())
		if len(ids) < 2 {
			continue
		}
		// pos-1 wraps at 0; arcContains treats from > to as wrapping, so the
		// arc still pins exactly position pos.
		arcs := [][2]uint64{{pos - 1, pos}}
		want, err := r.peerDigest(st, ids[0], arcs)
		if err != nil {
			continue
		}
		for _, id := range ids[1:] {
			got, err := r.peerDigest(st, id, arcs)
			if err != nil {
				continue
			}
			if got != want {
				r.sweepDiverged.Inc()
				r.enqueueRepair(key, id)
			}
		}
	}
}

// peerDigest runs one Digest call through the member's breaker.
func (r *Router) peerDigest(st *ringState, id string, arcs [][2]uint64) (netproto.ArcDigest, error) {
	p := st.peers[id]
	if p == nil {
		return netproto.ArcDigest{}, ErrNoNodes
	}
	var d netproto.ArcDigest
	err := r.do(id, func() error {
		var derr error
		d, derr = p.Digest(arcs)
		return derr
	})
	return d, err
}
