package cluster

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/netproto"
)

// Membership is a SWIM-style converging view of the cluster: one entry per
// known member carrying an (incarnation, status) verdict, merged with peers'
// views by gossip exchange. Verdict precedence is total and deterministic —
// a higher incarnation wins outright; at equal incarnation the graver status
// wins (alive < suspect < dead < left) — so any two tables that have seen
// the same evidence agree, regardless of message order, and the whole
// cluster converges without a coordinator.
//
// Incarnations implement refutation: only fresh evidence can resurrect a
// member someone declared suspect or dead. A node that learns of its own
// suspicion bumps its incarnation past the accusation (Merge does this when
// the table was built with a self id); an operator explicitly re-joining a
// failed node does the same through Alive. A stale "it's fine" at the old
// incarnation loses to the standing accusation, which is what stops a
// flapping node from oscillating the ring.
//
// The table version counts accepted changes — a cheap convergence gauge
// (cluster_membership_version): stable cluster, stable number; two routers
// disagreeing will both still be moving.
//
// Safe for concurrent use.
type Membership struct {
	self string

	version atomic.Uint64

	mu      sync.Mutex
	entries map[string]*memberInfo
}

// memberInfo is one tracked member: the gossiped digest plus local
// bookkeeping (when the verdict last changed, for suspicion timeouts and
// digest selection).
type memberInfo struct {
	d       netproto.MemberDigest
	changed uint64    // table version when d last changed (digest selection)
	since   time.Time // wall time of the last status change (suspect expiry)
}

// NewMembership builds a table. self, when non-empty, is the id this table
// speaks for: its entry is seeded alive at the given plane addresses, and
// Merge refutes accusations against it by incarnation bump. Routers (which
// are observers, not members) pass "".
func NewMembership(self, udpAddr, tcpAddr string) *Membership {
	m := &Membership{self: self, entries: make(map[string]*memberInfo)}
	if self != "" {
		m.entries[self] = &memberInfo{
			d:       netproto.MemberDigest{ID: self, UDPAddr: udpAddr, TCPAddr: tcpAddr, Status: netproto.MemberAlive},
			changed: m.bump(),
			since:   time.Now(),
		}
	}
	return m
}

// Version returns the count of accepted table changes.
func (m *Membership) Version() uint64 { return m.version.Load() }

// bump advances the table version and returns the new value.
func (m *Membership) bump() uint64 { return m.version.Add(1) }

// touch stamps e as changed now. Caller holds m.mu.
func (m *Membership) touch(e *memberInfo) {
	e.changed = m.bump()
	e.since = time.Now()
}

// Alive records a positive local observation of id (an explicit Join, or
// the prober seeing a suspected peer answer again): if the member was under
// any accusation, the verdict is overridden at incarnation+1 so it beats
// the standing accusation in every peer's table. Pure SWIM reserves the
// bump for the accused itself; this table also grants it to the prober,
// which has the same direct evidence — it converges identically and lets
// an address-less in-process cluster recover without the node gossiping.
// Empty addr arguments preserve any previously known addresses.
func (m *Membership) Alive(id, udpAddr, tcpAddr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entries[id]
	if e == nil {
		e = &memberInfo{d: netproto.MemberDigest{ID: id, Status: netproto.MemberAlive}}
		m.entries[id] = e
		e.d.UDPAddr, e.d.TCPAddr = udpAddr, tcpAddr
		m.touch(e)
		return
	}
	if udpAddr != "" {
		e.d.UDPAddr = udpAddr
	}
	if tcpAddr != "" {
		e.d.TCPAddr = tcpAddr
	}
	if e.d.Status != netproto.MemberAlive {
		e.d.Status = netproto.MemberAlive
		e.d.Incarnation++
		m.touch(e)
	}
}

// Suspect records a local accusation against id at its current incarnation.
// Only an alive member can become suspect; reports whether anything changed.
func (m *Membership) Suspect(id string) bool {
	return m.accuse(id, netproto.MemberSuspect)
}

// Confirm records a local death verdict for id at its current incarnation.
func (m *Membership) Confirm(id string) bool {
	return m.accuse(id, netproto.MemberDead)
}

// Left records id's deliberate departure.
func (m *Membership) Left(id string) bool {
	return m.accuse(id, netproto.MemberLeft)
}

func (m *Membership) accuse(id string, status uint8) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entries[id]
	if e == nil || e.d.Status >= status {
		return false
	}
	e.d.Status = status
	m.touch(e)
	return true
}

// Status returns id's current verdict and whether the member is known.
func (m *Membership) Status(id string) (uint8, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entries[id]
	if e == nil {
		return 0, false
	}
	return e.d.Status, true
}

// SuspectedFor returns how long id has held a suspect verdict (0 if it is
// not currently suspect) — the prober's suspect → dead escalation timer.
func (m *Membership) SuspectedFor(id string) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.entries[id]
	if e == nil || e.d.Status != netproto.MemberSuspect {
		return 0
	}
	return time.Since(e.since)
}

// Entries returns the full table as digests, sorted by id.
func (m *Membership) Entries() []netproto.MemberDigest {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]netproto.MemberDigest, 0, len(m.entries))
	for _, e := range m.entries {
		out = append(out, e.d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Digest selects what one gossip datagram carries: the most recently
// changed entries first (news spreads before stable state), capped at the
// wire bound. Small clusters ship their whole table every exchange.
func (m *Membership) Digest() []netproto.MemberDigest {
	m.mu.Lock()
	defer m.mu.Unlock()
	infos := make([]*memberInfo, 0, len(m.entries))
	for _, e := range m.entries {
		infos = append(infos, e)
	}
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].changed != infos[j].changed {
			return infos[i].changed > infos[j].changed
		}
		return infos[i].d.ID < infos[j].d.ID
	})
	if len(infos) > netproto.MaxGossipEntries {
		infos = infos[:netproto.MaxGossipEntries]
	}
	out := make([]netproto.MemberDigest, len(infos))
	for i, e := range infos {
		out[i] = e.d
	}
	return out
}

// Merge folds a peer's digest into the table under the precedence rules and
// reports whether anything was accepted — the caller's cue to reconcile the
// ring against the new view. Accusations against the table's own id are not
// adopted; they are refuted by bumping the self incarnation past them.
func (m *Membership) Merge(in []netproto.MemberDigest) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	changed := false
	for _, d := range in {
		if d.ID == "" {
			continue
		}
		e := m.entries[d.ID]
		if d.ID == m.self {
			// Refutation: out-live any accusation at or ahead of our
			// incarnation; ignore stale ones.
			if e != nil && d.Status != netproto.MemberAlive && d.Incarnation >= e.d.Incarnation {
				e.d.Incarnation = d.Incarnation + 1
				e.d.Status = netproto.MemberAlive
				m.touch(e)
				changed = true
			}
			continue
		}
		if e == nil {
			cp := d
			m.entries[d.ID] = &memberInfo{d: cp}
			m.touch(m.entries[d.ID])
			changed = true
			continue
		}
		// Addresses travel independently of verdicts: adopt whatever fills
		// a gap (an in-process join learns its wire addresses later).
		if e.d.UDPAddr == "" && d.UDPAddr != "" {
			e.d.UDPAddr = d.UDPAddr
		}
		if e.d.TCPAddr == "" && d.TCPAddr != "" {
			e.d.TCPAddr = d.TCPAddr
		}
		switch {
		case d.Incarnation > e.d.Incarnation:
			e.d.Incarnation, e.d.Status = d.Incarnation, d.Status
			m.touch(e)
			changed = true
		case d.Incarnation == e.d.Incarnation && d.Status > e.d.Status:
			e.d.Status = d.Status
			m.touch(e)
			changed = true
		}
	}
	return changed
}

// Exchange is one gossip round from the receiving side: merge the sender's
// digest, answer with our own (post-merge) view. Its signature matches
// netproto.NodeConfig.Gossip so a node server can be wired directly:
//
//	netproto.NewNodeServer(addr, netproto.NodeConfig{Engine: e, Gossip: m.Exchange})
func (m *Membership) Exchange(in []netproto.MemberDigest) []netproto.MemberDigest {
	m.Merge(in)
	return m.Digest()
}

// Forget drops id from the table entirely — used when an operator re-joins
// a previously departed member under a resolver that must re-learn it, and
// by tests. Gossip from peers that still remember the old verdict will
// re-introduce the entry under normal precedence.
func (m *Membership) Forget(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.entries[id]; ok {
		delete(m.entries, id)
		m.bump()
	}
}
