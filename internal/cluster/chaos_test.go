package cluster

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/netproto"
	"github.com/p4lru/p4lru/internal/resilience"
)

// TestChaosClusterNodeDeath is the cluster tier's acceptance gate, run
// under -race by `make chaos`: four in-process nodes replay a Zipf
// workload; one node is killed mid-replay. The per-peer breaker must trip
// and the failure detector must evict the corpse within the stall window,
// survivors must absorb its hash ranges via replica-sourced snapshot
// migration, the post-recovery hit ratio must land within 5 percentage
// points of the pre-kill steady state, and no update acked by a surviving
// owner may be lost.
func TestChaosClusterNodeDeath(t *testing.T) {
	const (
		nodes    = 4
		keyspace = 4096
	)

	r, peers := newTestCluster(t, nodes, Config{
		Replicas:       3,
		HotK:           256,
		HeartbeatEvery: 15 * time.Millisecond,
		DualReadFor:    5 * time.Second,
		Breaker: resilience.BreakerConfig{
			ConsecutiveFailures: 3,
			OpenFor:             30 * time.Second, // a corpse stays dead for this test
		},
	})

	value := func(k uint64) uint64 { return k ^ 0xabcdef }
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.2, 1, keyspace-1)
	loads := 0
	load := func(k uint64) (uint64, error) { loads++; return value(k), nil }
	replay := func(ops int) (hitRatio float64) {
		before := loads
		for i := 0; i < ops; i++ {
			k := zipf.Uint64() + 1
			v, err := r.GetOrLoad(k, load)
			if err != nil {
				t.Fatalf("GetOrLoad(%d): %v", k, err)
			}
			if v != value(k) {
				t.Fatalf("GetOrLoad(%d) = %d, want %d", k, v, value(k))
			}
		}
		return 1 - float64(loads-before)/float64(ops)
	}

	// Warm up, then measure the steady state.
	replay(30000)
	preHit := replay(20000)
	if preHit < 0.5 {
		t.Fatalf("pre-kill hit ratio %.1f%% — workload not cacheable enough to measure recovery", preHit*100)
	}

	// Ack an update for every key; remember which ones a survivor owns.
	victim := r.Ring().Owner(zipf.Uint64() + 1) // any member; pick the hottest key's owner
	acked := map[uint64]uint64{}
	for k := uint64(1); k <= keyspace; k++ {
		if r.Ring().Owner(k) == victim {
			continue // the victim's ranges are cache loss by design
		}
		if err := r.Update(k, value(k)); err == nil {
			acked[k] = value(k)
		}
	}
	if len(acked) == 0 {
		t.Fatal("no acked updates on surviving ranges")
	}

	// Kill. The breaker and failure detector must evict the node within
	// the stall window while the replay keeps running.
	peers[victim].Kill()
	killedAt := time.Now()
	const stallWindow = 5 * time.Second
	for len(r.Members()) == nodes {
		if time.Since(killedAt) > stallWindow {
			t.Fatalf("victim %q not auto-failed within %v", victim, stallWindow)
		}
		replay(200)
	}
	t.Logf("victim %q evicted after %v; members now %v", victim, time.Since(killedAt), r.Members())
	if containsStr(r.Members(), victim) {
		t.Fatalf("victim %q still a member", victim)
	}

	// Survivors must have absorbed the victim's ranges via migration.
	st := r.state.Load()
	if got := st.ring.Size(); got != nodes-1 {
		t.Fatalf("%d members after failover, want %d", got, nodes-1)
	}

	// Recovery replay, then the post-kill steady state.
	replay(30000)
	postHit := replay(20000)
	t.Logf("hit ratio: pre-kill %.2f%%, post-recovery %.2f%%", preHit*100, postHit*100)
	if postHit < preHit-0.05 {
		t.Fatalf("post-recovery hit ratio %.2f%% is more than 5 points below pre-kill %.2f%%",
			postHit*100, preHit*100)
	}

	// Zero lost acknowledged updates on surviving ranges.
	lost := 0
	for k, v := range acked {
		got, ok, err := r.Query(k)
		if err != nil || !ok || got != v {
			lost++
			if lost <= 5 {
				t.Errorf("acked update %d lost: got (%d, %v, %v), want (%d, true, nil)", k, got, ok, err, v)
			}
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d acknowledged updates on surviving ranges lost", lost, len(acked))
	}
}

// TestChaosGossipNodeDeath is the self-healing acceptance gate: a
// gossip-enabled 3-node ring (R=2) loses one node mid-replay and must
// converge WITHOUT any explicit Fail call — breaker trip files the suspect
// accusation, the suspicion window hardens it to dead, and reconcile evicts
// the corpse with replica re-streaming. The post-recovery hit ratio must
// land within 2 percentage points of the pre-kill steady state and no
// update acked by a surviving owner may be lost.
func TestChaosGossipNodeDeath(t *testing.T) {
	const (
		nodes    = 3
		keyspace = 4096
	)

	r, peers := newTestCluster(t, nodes, Config{
		Gossip:         true,
		Replicas:       2,
		HotK:           256,
		HeartbeatEvery: 15 * time.Millisecond,
		SuspectAfter:   60 * time.Millisecond,
		DualReadFor:    5 * time.Second,
		Breaker: resilience.BreakerConfig{
			ConsecutiveFailures: 3,
			OpenFor:             30 * time.Second, // the corpse stays dead
		},
	})

	value := func(k uint64) uint64 { return k ^ 0xabcdef }
	rng := rand.New(rand.NewSource(2))
	zipf := rand.NewZipf(rng, 1.2, 1, keyspace-1)
	loads := 0
	load := func(k uint64) (uint64, error) { loads++; return value(k), nil }
	replay := func(ops int) (hitRatio float64) {
		before := loads
		for i := 0; i < ops; i++ {
			k := zipf.Uint64() + 1
			v, err := r.GetOrLoad(k, load)
			if err != nil {
				t.Fatalf("GetOrLoad(%d): %v", k, err)
			}
			if v != value(k) {
				t.Fatalf("GetOrLoad(%d) = %d, want %d", k, v, value(k))
			}
		}
		return 1 - float64(loads-before)/float64(ops)
	}

	replay(30000)
	preHit := replay(20000)
	if preHit < 0.5 {
		t.Fatalf("pre-kill hit ratio %.1f%% — workload not cacheable enough to measure recovery", preHit*100)
	}

	victim := r.Ring().Owner(zipf.Uint64() + 1)
	acked := map[uint64]uint64{}
	for k := uint64(1); k <= keyspace; k++ {
		if r.Ring().Owner(k) == victim {
			continue // the victim's ranges are cache loss by design
		}
		if err := r.Update(k, value(k)); err == nil {
			acked[k] = value(k)
		}
	}
	if len(acked) == 0 {
		t.Fatal("no acked updates on surviving ranges")
	}

	// Kill — and call NOTHING. The heartbeat pings must trip the breaker,
	// the trip must file a suspect verdict, the suspicion window must
	// harden it to dead, and reconcile must evict the corpse.
	peers[victim].Kill()
	killedAt := time.Now()
	const stallWindow = 5 * time.Second
	for len(r.Members()) == nodes {
		if time.Since(killedAt) > stallWindow {
			t.Fatalf("victim %q not gossip-evicted within %v", victim, stallWindow)
		}
		replay(200)
	}
	t.Logf("victim %q evicted after %v via gossip; members now %v",
		victim, time.Since(killedAt), r.Members())
	if containsStr(r.Members(), victim) {
		t.Fatalf("victim %q still a member", victim)
	}
	if s, ok := r.Membership().Status(victim); !ok || s != netproto.MemberDead {
		t.Fatalf("membership verdict for victim = (%d, %v), want dead", s, ok)
	}

	replay(30000)
	postHit := replay(20000)
	t.Logf("hit ratio: pre-kill %.2f%%, post-recovery %.2f%%", preHit*100, postHit*100)
	if postHit < preHit-0.02 {
		t.Fatalf("post-recovery hit ratio %.2f%% is more than 2 points below pre-kill %.2f%%",
			postHit*100, preHit*100)
	}

	lost := 0
	for k, v := range acked {
		got, ok, err := r.Query(k)
		if err != nil || !ok || got != v {
			lost++
			if lost <= 5 {
				t.Errorf("acked update %d lost: got (%d, %v, %v), want (%d, true, nil)", k, got, ok, err, v)
			}
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d acknowledged updates on surviving ranges lost", lost, len(acked))
	}
}

// TestChaosPartitionHealHintReplay: a link cut (partition, not death) parks
// writes as hints behind the open breaker; the suspicion window is generous
// enough that the heal wins the race, the breaker re-closes on a half-open
// probe, the suspect verdict is refuted, and the parked writes replay into
// the partitioned node — which never leaves the ring.
func TestChaosPartitionHealHintReplay(t *testing.T) {
	const warm = 2000
	r, peers := newTestCluster(t, 3, Config{
		Gossip:         true,
		HeartbeatEvery: 15 * time.Millisecond,
		SuspectAfter:   5 * time.Second, // the heal must beat the confirm
		Breaker: resilience.BreakerConfig{
			ConsecutiveFailures: 1,
			OpenFor:             100 * time.Millisecond,
			HalfOpenProbes:      1,
		},
	})

	// Warm every node and record the acked pre-cut writes.
	acked := map[uint64]uint64{}
	for k := uint64(1); k <= warm; k++ {
		if err := r.Update(k, k*7); err == nil {
			acked[k] = k * 7
		}
	}
	if len(acked) != warm {
		t.Fatalf("only %d/%d warm writes acked", len(acked), warm)
	}

	const victim = "node-1"
	peers[victim].CutLink()
	waitFor(t, 2*time.Second, "the cut to be suspected", func() bool {
		s, ok := r.Membership().Status(victim)
		return ok && s == netproto.MemberSuspect
	})

	// Writes to the dark node's arcs are hinted, not lost. Use keys beyond
	// the warm range: hint replay is keep-existing (a resident post-recovery
	// value must win over a stale hint), so only non-resident keys make the
	// replay observable directly.
	hinted := map[uint64]uint64{}
	for k := uint64(warm + 1); k <= warm+50000 && len(hinted) < 32; k++ {
		if r.Ring().Owner(k) != victim {
			continue
		}
		switch err := r.Update(k, k*13); {
		case errors.Is(err, ErrHinted):
			hinted[k] = k * 13
		case err == nil:
			t.Fatalf("Update(%d) to cut node acked cleanly", k)
		}
	}
	if len(hinted) == 0 {
		t.Fatal("no writes were hinted during the partition")
	}
	if containsStr(r.Members(), victim) == false {
		t.Fatalf("victim evicted during partition; SuspectAfter did not hold")
	}

	// Heal. The next half-open heartbeat probe re-proves the node: breaker
	// closes, the suspect verdict is refuted, and the hints drain.
	peers[victim].HealLink()
	waitFor(t, 3*time.Second, "hint replay into the healed node", func() bool {
		if r.hints.pendingFor(victim) != 0 {
			return false
		}
		for k, v := range hinted {
			if got, _, ok := peers[victim].eng.Query(k); !ok || got != v {
				return false
			}
		}
		return true
	})
	waitFor(t, 2*time.Second, "the suspect verdict to be refuted", func() bool {
		s, ok := r.Membership().Status(victim)
		return ok && s == netproto.MemberAlive
	})
	if !containsStr(r.Members(), victim) {
		t.Fatalf("victim missing from ring after heal: %v", r.Members())
	}

	// Zero acked-before-cut writes lost anywhere in the cluster.
	for k, v := range acked {
		if got, ok, err := r.Query(k); err != nil || !ok || got != v {
			t.Fatalf("pre-cut write %d lost across partition+heal: (%d, %v, %v)", k, got, ok, err)
		}
	}
}

// TestChaosKilledNodeRejoins: after a failover, the same node id can Join
// again and is warmed by migration like any newcomer.
func TestChaosKilledNodeRejoins(t *testing.T) {
	r, peers := newTestCluster(t, 3, Config{Replicas: 2, HotK: 64})
	for k := uint64(1); k <= 2000; k++ {
		if err := r.Update(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	peers["node-1"].Kill()
	if err := r.Fail("node-1"); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	reborn := NewLocalPeer(newTestEngine(t), testSeed)
	peers["node-1"] = reborn
	if err := r.Join("node-1", reborn); err != nil {
		t.Fatalf("re-Join: %v", err)
	}
	if got := len(r.Members()); got != 3 {
		t.Fatalf("%d members after rejoin, want 3", got)
	}
	misses := 0
	for k := uint64(1); k <= 2000; k++ {
		if v, ok, err := r.Query(k); err != nil {
			t.Fatalf("Query(%d): %v", k, err)
		} else if !ok || v != k*3 {
			misses++ // keys that lived only on the corpse are cache loss, not errors
		}
	}
	if frac := float64(misses) / 2000; frac > 0.60 {
		t.Fatalf("%.0f%% of keys lost across fail+rejoin — migration did not warm the reborn node", frac*100)
	}
}
