package cluster

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/engine"
	"github.com/p4lru/p4lru/internal/hashing"
	"github.com/p4lru/p4lru/internal/netproto"
	"github.com/p4lru/p4lru/internal/policy"
)

// Peer is one engine node as the router sees it: point operations plus the
// two halves of a migration stream. *netproto.NodeClient implements it over
// the wire; LocalPeer implements it in-process for single-binary clusters,
// benchmarks and chaos tests.
type Peer interface {
	// Ping round-trips a heartbeat.
	Ping() error
	// Query reads key: (value, true) on a hit.
	Query(key uint64) (uint64, bool, error)
	// Update installs key → val; a nil return means the node applied it
	// before acking (the router's durability point).
	Update(key, val uint64) error
	// OpenPull streams the node's contents inside arcs as a self-delimiting
	// snapshot image; the caller closes the stream.
	OpenPull(arcs [][2]uint64) (io.ReadCloser, error)
	// Push restores a snapshot image into the node, returning the installed
	// pair count. keepExisting skips keys already resident — the mode used
	// after a ring swap, when the node may hold fresher writes.
	Push(r io.Reader, keepExisting bool) (int, error)
	// Gossip exchanges membership digests: the node merges out and answers
	// with its own (post-merge) view. A node with no membership attached
	// answers (nil, nil).
	Gossip(out []netproto.MemberDigest) ([]netproto.MemberDigest, error)
	// Digest summarizes the node's contents inside arcs as a (count, xor)
	// pair — the anti-entropy sweep's comparison primitive.
	Digest(arcs [][2]uint64) (netproto.ArcDigest, error)
	// Addrs returns the node's advertised plane addresses (UDP ops, TCP
	// migration), or empty strings for an in-process peer.
	Addrs() (udp, tcp string)
	// Close releases the peer handle (not the node behind it).
	Close() error
}

var _ Peer = (*netproto.NodeClient)(nil)

// ErrPeerDown reports an operation against a LocalPeer whose node was
// killed. It wraps netproto.ErrUnreachable so the router's breaker
// classification treats in-process and remote node death identically.
var ErrPeerDown = fmt.Errorf("cluster: peer down: %w", netproto.ErrUnreachable)

// LocalPeer adapts an in-process engine to the Peer interface. Kill makes
// every subsequent operation fail like an unreachable remote node —
// deterministic node death for chaos tests — and Revive undoes it. CutLink
// fails the same way but models a network partition instead of node death:
// the engine keeps its data and other handles to the same engine still
// reach it, so HealLink restores a node that diverged rather than died.
type LocalPeer struct {
	eng    *engine.Engine
	hash   hashing.Hash
	epoch  time.Time
	dead   atomic.Bool
	cut    atomic.Bool
	down   atomic.Bool // dead || cut, pre-folded for the router's fast path
	member atomic.Pointer[Membership]
}

// NewLocalPeer wraps eng. ringSeed must match the cluster's Config.Seed so
// migration range filters slice the same key sets the ring assigns.
func NewLocalPeer(eng *engine.Engine, ringSeed uint64) *LocalPeer {
	return &LocalPeer{eng: eng, hash: hashing.New(ringSeed), epoch: time.Now()}
}

// Engine exposes the wrapped engine (tests assert on its contents).
func (p *LocalPeer) Engine() *engine.Engine { return p.eng }

// AttachMembership gives the peer a node-side membership table: Gossip
// exchanges route through it, making the in-process node a full gossip
// participant (it spreads what it knows, including itself).
func (p *LocalPeer) AttachMembership(m *Membership) { p.member.Store(m) }

// Membership returns the attached node-side table, or nil.
func (p *LocalPeer) Membership() *Membership { return p.member.Load() }

// refreshDown folds the two failure flags into the single load the router's
// devirtualized query path checks.
func (p *LocalPeer) refreshDown() { p.down.Store(p.dead.Load() || p.cut.Load()) }

// Kill makes the peer unreachable (node death). Idempotent.
func (p *LocalPeer) Kill() { p.dead.Store(true); p.refreshDown() }

// Revive brings a killed peer back. Idempotent.
func (p *LocalPeer) Revive() { p.dead.Store(false); p.refreshDown() }

// CutLink severs this handle's link to the node — a partition, not a death.
// The cut is per-handle: wrap the same engine in two LocalPeers to partition
// one router's view while another still reaches the node. Idempotent.
func (p *LocalPeer) CutLink() { p.cut.Store(true); p.refreshDown() }

// HealLink restores a cut link. Idempotent.
func (p *LocalPeer) HealLink() { p.cut.Store(false); p.refreshDown() }

// Ping implements Peer.
func (p *LocalPeer) Ping() error {
	if p.down.Load() {
		return ErrPeerDown
	}
	return nil
}

// Query implements Peer.
func (p *LocalPeer) Query(key uint64) (uint64, bool, error) {
	if p.down.Load() {
		return 0, false, ErrPeerDown
	}
	v, _, ok := p.eng.Query(key)
	return v, ok, nil
}

// Update implements Peer: synchronous apply, so returning nil is an ack.
func (p *LocalPeer) Update(key, val uint64) error {
	if p.down.Load() {
		return ErrPeerDown
	}
	p.eng.Apply(engine.Op{Key: key, Value: val, Token: policy.NoToken, Now: time.Since(p.epoch)})
	return nil
}

// OpenPull implements Peer: the snapshot is streamed through a pipe so
// local and remote sources look identical to the migration executor.
func (p *LocalPeer) OpenPull(arcs [][2]uint64) (io.ReadCloser, error) {
	if p.down.Load() {
		return nil, ErrPeerDown
	}
	pr, pw := io.Pipe()
	go func() {
		pw.CloseWithError(p.eng.SnapshotFiltered(pw, func(key uint64) bool {
			return arcsContain(arcs, p.hash.Uint64(key))
		}))
	}()
	return pr, nil
}

// Push implements Peer.
func (p *LocalPeer) Push(r io.Reader, keepExisting bool) (int, error) {
	if p.down.Load() {
		return 0, ErrPeerDown
	}
	if keepExisting {
		return p.eng.RestoreSnapshotIfAbsent(r)
	}
	return p.eng.RestoreSnapshot(r)
}

// Gossip implements Peer through the attached membership table; a node
// without one is mute but not broken — it answers with an empty view.
func (p *LocalPeer) Gossip(out []netproto.MemberDigest) ([]netproto.MemberDigest, error) {
	if p.down.Load() {
		return nil, ErrPeerDown
	}
	m := p.member.Load()
	if m == nil {
		return nil, nil
	}
	return m.Exchange(out), nil
}

// Digest implements Peer: count + xor of the engine's residents whose ring
// position falls inside arcs, matching the node server's computation.
func (p *LocalPeer) Digest(arcs [][2]uint64) (netproto.ArcDigest, error) {
	if p.down.Load() {
		return netproto.ArcDigest{}, ErrPeerDown
	}
	var d netproto.ArcDigest
	p.eng.Range(func(k, v uint64) bool {
		if arcsContain(arcs, p.hash.Uint64(k)) {
			d.Pairs++
			d.XOR ^= netproto.PairDigest(k, v)
		}
		return true
	})
	return d, nil
}

// Addrs implements Peer: an in-process node has no wire addresses.
func (p *LocalPeer) Addrs() (string, string) { return "", "" }

// Close implements Peer. The engine is owned by the caller.
func (p *LocalPeer) Close() error { return nil }
