package cluster

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/engine"
	"github.com/p4lru/p4lru/internal/hashing"
	"github.com/p4lru/p4lru/internal/netproto"
	"github.com/p4lru/p4lru/internal/policy"
)

// Peer is one engine node as the router sees it: point operations plus the
// two halves of a migration stream. *netproto.NodeClient implements it over
// the wire; LocalPeer implements it in-process for single-binary clusters,
// benchmarks and chaos tests.
type Peer interface {
	// Ping round-trips a heartbeat.
	Ping() error
	// Query reads key: (value, true) on a hit.
	Query(key uint64) (uint64, bool, error)
	// Update installs key → val; a nil return means the node applied it
	// before acking (the router's durability point).
	Update(key, val uint64) error
	// OpenPull streams the node's contents inside arcs as a self-delimiting
	// snapshot image; the caller closes the stream.
	OpenPull(arcs [][2]uint64) (io.ReadCloser, error)
	// Push restores a snapshot image into the node, returning the installed
	// pair count. keepExisting skips keys already resident — the mode used
	// after a ring swap, when the node may hold fresher writes.
	Push(r io.Reader, keepExisting bool) (int, error)
	// Close releases the peer handle (not the node behind it).
	Close() error
}

var _ Peer = (*netproto.NodeClient)(nil)

// ErrPeerDown reports an operation against a LocalPeer whose node was
// killed. It wraps netproto.ErrUnreachable so the router's breaker
// classification treats in-process and remote node death identically.
var ErrPeerDown = fmt.Errorf("cluster: peer down: %w", netproto.ErrUnreachable)

// LocalPeer adapts an in-process engine to the Peer interface. Kill makes
// every subsequent operation fail like an unreachable remote node —
// deterministic node death for chaos tests — and Revive undoes it.
type LocalPeer struct {
	eng   *engine.Engine
	hash  hashing.Hash
	epoch time.Time
	dead  atomic.Bool
}

// NewLocalPeer wraps eng. ringSeed must match the cluster's Config.Seed so
// migration range filters slice the same key sets the ring assigns.
func NewLocalPeer(eng *engine.Engine, ringSeed uint64) *LocalPeer {
	return &LocalPeer{eng: eng, hash: hashing.New(ringSeed), epoch: time.Now()}
}

// Engine exposes the wrapped engine (tests assert on its contents).
func (p *LocalPeer) Engine() *engine.Engine { return p.eng }

// Kill makes the peer unreachable. Idempotent.
func (p *LocalPeer) Kill() { p.dead.Store(true) }

// Revive brings a killed peer back. Idempotent.
func (p *LocalPeer) Revive() { p.dead.Store(false) }

// Ping implements Peer.
func (p *LocalPeer) Ping() error {
	if p.dead.Load() {
		return ErrPeerDown
	}
	return nil
}

// Query implements Peer.
func (p *LocalPeer) Query(key uint64) (uint64, bool, error) {
	if p.dead.Load() {
		return 0, false, ErrPeerDown
	}
	v, _, ok := p.eng.Query(key)
	return v, ok, nil
}

// Update implements Peer: synchronous apply, so returning nil is an ack.
func (p *LocalPeer) Update(key, val uint64) error {
	if p.dead.Load() {
		return ErrPeerDown
	}
	p.eng.Apply(engine.Op{Key: key, Value: val, Token: policy.NoToken, Now: time.Since(p.epoch)})
	return nil
}

// OpenPull implements Peer: the snapshot is streamed through a pipe so
// local and remote sources look identical to the migration executor.
func (p *LocalPeer) OpenPull(arcs [][2]uint64) (io.ReadCloser, error) {
	if p.dead.Load() {
		return nil, ErrPeerDown
	}
	pr, pw := io.Pipe()
	go func() {
		pw.CloseWithError(p.eng.SnapshotFiltered(pw, func(key uint64) bool {
			return arcsContain(arcs, p.hash.Uint64(key))
		}))
	}()
	return pr, nil
}

// Push implements Peer.
func (p *LocalPeer) Push(r io.Reader, keepExisting bool) (int, error) {
	if p.dead.Load() {
		return 0, ErrPeerDown
	}
	if keepExisting {
		return p.eng.RestoreSnapshotIfAbsent(r)
	}
	return p.eng.RestoreSnapshot(r)
}

// Close implements Peer. The engine is owned by the caller.
func (p *LocalPeer) Close() error { return nil }
