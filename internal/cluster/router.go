package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/p4lru/p4lru/internal/engine"
	"github.com/p4lru/p4lru/internal/netproto"
	"github.com/p4lru/p4lru/internal/obs"
	"github.com/p4lru/p4lru/internal/obs/span"
	"github.com/p4lru/p4lru/internal/resilience"
)

// ErrNoNodes reports an operation against a router whose ring is empty.
var ErrNoNodes = errors.New("cluster: ring has no nodes")

// ErrHinted reports an update whose owner was unreachable: the write was
// parked in the hint log for replay when the owner (or its successor)
// recovers. It is acceptance at reduced durability, not an ack — the value
// is not resident anywhere yet.
var ErrHinted = errors.New("cluster: owner unreachable; update parked as hint")

// ErrDegraded reports a miss-path load shed while the router is partitioned
// away from the ring majority: serving local arcs stays correct, but
// re-loading every unreachable arc's key from the backing store would hand
// the origin the full remote working set at the worst possible moment.
var ErrDegraded = errors.New("cluster: degraded (minority partition); remote-miss load shed")

// Config parameterizes New. The zero value gets sane defaults.
type Config struct {
	// Seed derives the ring-position hash and vnode placement. Every router
	// and NodeServer in one cluster must share it.
	Seed uint64
	// VNodes is the virtual nodes per member (0 = 64). More vnodes smooth
	// ownership imbalance at the cost of a deeper membership-change plan.
	VNodes int
	// Replicas is the total copy count for hot keys, owner included
	// (0 or 1 = no replication).
	Replicas int
	// HotK is how many top keys the CU-sketch tracker promotes to the
	// replicated hot set (0 = 128; negative disables hot tracking, and with
	// it replication fan-out).
	HotK int
	// Breaker parameterizes the per-peer circuit breakers. Name is
	// overridden per peer; Obs defaults to Config.Obs.
	Breaker resilience.BreakerConfig
	// HeartbeatEvery is the ping cadence of the failure detector
	// (0 = 250ms; negative disables the loop — membership then changes only
	// through explicit Join/Leave/Fail calls).
	HeartbeatEvery time.Duration
	// DualReadFor is how long after a membership swap a miss in a moved arc
	// retries the arc's previous holder (0 = 2s). It must comfortably cover
	// a migration stream's duration.
	DualReadFor time.Duration
	// Gossip enables SWIM-style membership: each heartbeat tick exchanges
	// versioned digests with one rotating peer, joins learned members
	// through Resolver, and runs failures through the suspect → dead
	// pipeline (with refutation) instead of failing a member the moment its
	// breaker opens. Off, membership changes only through explicit
	// Join/Leave/Fail plus the legacy breaker-open auto-fail.
	Gossip bool
	// SuspectAfter is how long a member stays suspect before this router
	// confirms it dead and removes it (0 = 4×HeartbeatEvery, or 1s when the
	// heartbeat loop is disabled). A suspect whose breaker re-closes within
	// the window is refuted back to alive at a higher incarnation.
	SuspectAfter time.Duration
	// Resolver dials a peer handle for a member learned through gossip.
	// nil = DialNode on the digest's advertised addresses (address-less
	// digests are skipped). Handles the router resolves itself are owned by
	// the router and closed when the member is pruned.
	Resolver func(netproto.MemberDigest) (Peer, error)
	// RepairQueue bounds the read-repair queue (0 = 256; negative disables
	// read repair and the digest sweep).
	RepairQueue int
	// RepairRate caps repair installs per second (0 = 128).
	RepairRate int
	// RepairSweepEvery is the anti-entropy digest sweep cadence over the
	// published hot set (0 = 2s; negative disables the sweep, leaving only
	// read-path repair).
	RepairSweepEvery time.Duration
	// HintCap bounds each peer's hinted-handoff log (0 = 1024 parked
	// updates; negative disables hinted handoff — updates to unreachable
	// owners then fail outright as before).
	HintCap int
	// Shedder, when non-nil, arbitrates remote-miss loads while the router
	// is degraded (majority of peers unreachable): GetOrLoad sheds them at
	// PriLow instead of stampeding the backing store. nil sheds them all.
	Shedder *resilience.Shedder
	// Obs, when non-nil, receives the cluster_* metrics.
	Obs *obs.Registry
	// Span, when non-nil, records one KindMigrate span per executed
	// range transfer (StageFetch = pull open, StageApply = push+restore).
	Span *span.Tracer
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.HotK == 0 {
		c.HotK = 128
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 250 * time.Millisecond
	}
	if c.DualReadFor <= 0 {
		c.DualReadFor = 2 * time.Second
	}
	if c.SuspectAfter <= 0 {
		if c.HeartbeatEvery > 0 {
			c.SuspectAfter = 4 * c.HeartbeatEvery
		} else {
			c.SuspectAfter = time.Second
		}
	}
	if c.RepairQueue == 0 {
		c.RepairQueue = 256
	}
	if c.RepairRate <= 0 {
		c.RepairRate = 128
	}
	if c.RepairSweepEvery == 0 {
		c.RepairSweepEvery = 2 * time.Second
	}
	if c.HintCap == 0 {
		c.HintCap = 1024
	}
	if c.Breaker.Obs == nil {
		c.Breaker.Obs = c.Obs
	}
	return c
}

// dualWindow marks a set of hash arcs that recently changed hands: until
// the deadline, a read miss inside the arcs retries source (the previous
// holder) and re-installs hits at the new owner. Windows ride the immutable
// ringState, so the query path reads them without locks.
type dualWindow struct {
	arcs   [][2]uint64
	source string
	until  time.Time
}

// ringState is the router's atomically-swapped view of the cluster: the
// ring, the peer handles (including tombstones — departed members kept
// reachable while a dual-read window still points at them), and the active
// windows. peerArr/brkArr mirror peers and the peer gate, aligned with
// ring.Members() — the owner query path indexes them directly instead of
// paying two string-map lookups per query.
type ringState struct {
	ring    *Ring
	peers   map[string]Peer
	peerArr []Peer
	// engArr/deadArr devirtualize in-process peers: where peerArr[i] is a
	// *LocalPeer, engArr[i] is its engine and deadArr[i] its kill flag, so
	// the query fast path reaches engine.Query with one direct call instead
	// of two interface-dispatched frames.
	engArr  []*engine.Engine
	deadArr []*atomic.Bool
	brkArr  []*resilience.Breaker
	windows []dualWindow
}

// index builds the member-aligned fast-path arrays. Called once per swap.
func (st *ringState) index(gate *resilience.PeerGate) {
	members := st.ring.Members()
	st.peerArr = make([]Peer, len(members))
	st.engArr = make([]*engine.Engine, len(members))
	st.deadArr = make([]*atomic.Bool, len(members))
	st.brkArr = make([]*resilience.Breaker, len(members))
	for i, id := range members {
		st.peerArr[i] = st.peers[id]
		if lp, ok := st.peers[id].(*LocalPeer); ok {
			st.engArr[i] = lp.eng
			st.deadArr[i] = &lp.down
		}
		st.brkArr[i] = gate.Peer(id)
	}
}

// Router fronts a set of engine nodes as one Engine-shaped cache: Query,
// Update and GetOrLoad place keys on ring owners, fan hot keys across
// replicas, and survive node death behind per-peer circuit breakers.
// Membership changes (Join/Leave/Fail, or the heartbeat failure detector)
// move only the affected hash ranges, streamed as range-filtered snapshots,
// with a dual-read window masking the handoff.
//
// All methods are safe for concurrent use. The read path is lock-free:
// one atomic state load, a ring binary search, and a breaker liveness load.
type Router struct {
	cfg  Config
	gate *resilience.PeerGate
	hot  *hotKeys

	// member is the router's gossip view of the cluster (nil unless
	// Config.Gossip); hints is the hinted-handoff log (nil when disabled).
	member *Membership
	hints  *hintLog

	state atomic.Pointer[ringState]

	mu     sync.Mutex      // serializes membership changes
	owned  map[string]Peer // handles the router dialed itself; guarded by mu
	closed atomic.Bool
	hbStop chan struct{}
	hbDone chan struct{}

	repairQ          chan repairJob
	repStop, repDone chan struct{}
	swpStop, swpDone chan struct{}

	// bgMu + bg fence short-lived background work (hint replays) so Close
	// can wait it out instead of letting it outlive the router.
	bgMu sync.Mutex
	bg   sync.WaitGroup

	degraded atomic.Bool   // minority-partition mode, refreshed each heartbeat
	gossipRR atomic.Uint64 // rotates the per-tick gossip partner

	okSample atomic.Uint64 // samples breaker success recording on the fast path
	rr       atomic.Uint64 // rotates hot-key read fan-out across replicas

	queries, hits, fanReads       *obs.Counter
	dualReads, dualHits           *obs.Counter
	updates, replicaFanFails      *obs.Counter
	migrations, migratedPairs     *obs.Counter
	autoFails                     *obs.Counter
	gossipRounds, gossipMerges    *obs.Counter
	suspects, confirms            *obs.Counter
	repairsQueued, repairsApplied *obs.Counter
	repairsDropped, sweeps        *obs.Counter
	sweepDiverged                 *obs.Counter
	hintsParked, hintsReplayed    *obs.Counter
	hintsDropped, degradedSheds   *obs.Counter
	nodesGauge, degradedGauge     *obs.Gauge
}

// New builds a router with an empty ring; add nodes with Join (or, with
// Gossip enabled, join one seed and let the digest exchange find the rest).
func New(cfg Config) *Router {
	cfg = cfg.withDefaults()
	r := &Router{cfg: cfg, owned: map[string]Peer{}}
	// Chain the router's own breaker observer in front of any caller's: the
	// recovery edge (→ closed) triggers hint replay and suspect refutation,
	// the trip edge (→ open) feeds the gossip suspect pipeline.
	userCB := cfg.Breaker.OnStateChange
	cfg.Breaker.OnStateChange = func(name string, from, to resilience.State) {
		if userCB != nil {
			userCB(name, from, to)
		}
		r.onBreakerChange(name, from, to)
	}
	r.cfg.Breaker = cfg.Breaker
	r.gate = resilience.NewPeerGate(cfg.Breaker)
	if cfg.Gossip {
		// The router is a gossip observer, not a member: it has no self
		// entry, so it spreads and adopts verdicts but never refutes one.
		r.member = NewMembership("", "", "")
	}
	if cfg.HintCap > 0 {
		r.hints = newHintLog(cfg.HintCap)
	}
	if cfg.HotK > 0 && cfg.Replicas > 1 {
		// Hot-key tracking only matters when there are successors to
		// replicate to; without replication the tracker would tax every
		// query for nothing.
		r.hot = newHotKeys(cfg.HotK, cfg.Seed)
	}
	empty := &ringState{
		ring:  NewRing(cfg.Seed, cfg.VNodes, nil),
		peers: map[string]Peer{},
	}
	empty.index(r.gate)
	r.state.Store(empty)
	if reg := cfg.Obs; reg != nil {
		r.queries = reg.Counter("cluster_queries_total")
		r.hits = reg.Counter("cluster_hits_total")
		r.fanReads = reg.Counter("cluster_fan_reads_total")
		r.dualReads = reg.Counter("cluster_dual_reads_total")
		r.dualHits = reg.Counter("cluster_dual_hits_total")
		r.updates = reg.Counter("cluster_updates_total")
		r.replicaFanFails = reg.Counter("cluster_replica_fan_fails_total")
		r.migrations = reg.Counter("cluster_migrations_total")
		r.migratedPairs = reg.Counter("cluster_migrated_pairs_total")
		r.autoFails = reg.Counter("cluster_auto_fails_total")
		r.gossipRounds = reg.Counter("cluster_gossip_rounds_total")
		r.gossipMerges = reg.Counter("cluster_gossip_merges_total")
		r.suspects = reg.Counter("cluster_suspects_total")
		r.confirms = reg.Counter("cluster_confirms_total")
		r.repairsQueued = reg.Counter("cluster_repairs_enqueued_total")
		r.repairsApplied = reg.Counter("cluster_repairs_applied_total")
		r.repairsDropped = reg.Counter("cluster_repairs_dropped_total")
		r.sweeps = reg.Counter("cluster_sweeps_total")
		r.sweepDiverged = reg.Counter("cluster_sweep_divergence_total")
		r.hintsParked = reg.Counter("cluster_hints_parked_total")
		r.hintsReplayed = reg.Counter("cluster_hints_replayed_total")
		r.hintsDropped = reg.Counter("cluster_hints_dropped_total")
		r.degradedSheds = reg.Counter("cluster_degraded_sheds_total")
		r.nodesGauge = reg.Gauge("cluster_nodes")
		r.degradedGauge = reg.Gauge("cluster_degraded")
		reg.GaugeFunc("cluster_hot_keys", func() float64 {
			return float64(len(r.hot.Keys()))
		})
		reg.GaugeFunc("cluster_hints_pending", func() float64 {
			return float64(r.hints.pending())
		})
		if r.member != nil {
			reg.GaugeFunc("cluster_membership_version", func() float64 {
				return float64(r.member.Version())
			})
		}
	}
	if cfg.RepairQueue > 0 {
		r.repairQ = make(chan repairJob, cfg.RepairQueue)
		r.repStop = make(chan struct{})
		r.repDone = make(chan struct{})
		go r.repairLoop()
		if cfg.RepairSweepEvery > 0 && r.hot != nil {
			r.swpStop = make(chan struct{})
			r.swpDone = make(chan struct{})
			go r.sweepLoop()
		}
	}
	if cfg.HeartbeatEvery > 0 {
		r.hbStop = make(chan struct{})
		r.hbDone = make(chan struct{})
		go r.heartbeatLoop()
	}
	return r
}

// Close stops the failure detector, the repair workers and any in-flight
// hint replays, then closes peer handles the router dialed itself. Handles
// passed to Join (and their engines) belong to the caller and are left open.
func (r *Router) Close() {
	if !r.closed.CompareAndSwap(false, true) {
		return
	}
	if r.hbStop != nil {
		close(r.hbStop)
		<-r.hbDone
	}
	if r.swpStop != nil {
		close(r.swpStop)
		<-r.swpDone
	}
	if r.repStop != nil {
		close(r.repStop)
		<-r.repDone
	}
	// closed is set, so goBG admits nothing new. The empty critical section
	// is a barrier: a goBG that read closed=false before the flag flipped
	// holds bgMu until its Add lands, so the Wait below observes it.
	r.bgMu.Lock()
	r.bgMu.Unlock() //nolint:staticcheck // barrier, see above
	r.bg.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, p := range r.owned {
		_ = p.Close()
		delete(r.owned, id)
	}
}

// goBG runs f on a tracked background goroutine, refusing after Close so
// replays cannot outlive the router and touch closed peers.
func (r *Router) goBG(f func()) {
	r.bgMu.Lock()
	if r.closed.Load() {
		r.bgMu.Unlock()
		return
	}
	r.bg.Add(1)
	r.bgMu.Unlock()
	go func() {
		defer r.bg.Done()
		f()
	}()
}

// Membership returns the router's gossip view (nil unless Config.Gossip).
func (r *Router) Membership() *Membership { return r.member }

// Degraded reports whether the router is in minority-partition mode: more
// than half its ring members unreachable, remote-miss loads being shed.
func (r *Router) Degraded() bool { return r.degraded.Load() }

// PendingHints reports how many writes are parked in the hint log awaiting
// an unreachable peer's recovery (0 when hinted handoff is disabled).
func (r *Router) PendingHints() int { return r.hints.pending() }

// Ring returns the current ring (immutable).
func (r *Router) Ring() *Ring { return r.state.Load().ring }

// Members returns the current sorted member list.
func (r *Router) Members() []string { return r.state.Load().ring.Members() }

// HotKeys returns the currently-published replicated hot set.
func (r *Router) HotKeys() []uint64 { return r.hot.Keys() }

// replicas returns the effective copy count.
func (r *Router) replicas() int {
	if r.hot == nil {
		return 1
	}
	return r.cfg.Replicas
}

// do runs one call against peer id through its breaker. While the breaker
// is live (closed) the call proceeds on the lock-free path — failures are
// always recorded, successes on a 1-in-16 sample, which keeps the breaker's
// mutex off the per-query path. Once the breaker trips, calls fall back to
// the full Allow/Record protocol that owns the half-open probe bookkeeping.
func (r *Router) do(id string, f func() error) error {
	b := r.gate.Peer(id)
	if b.Live() {
		err := f()
		if err != nil {
			b.Record(false)
		} else if r.okSample.Add(1)&15 == 0 {
			b.Record(true)
		}
		return err
	}
	if !b.Allow() {
		return fmt.Errorf("cluster: peer %s: %w", id, resilience.ErrOpen)
	}
	err := f()
	b.Record(err == nil)
	return err
}

// queryPeer reads key from one member through its breaker. The breaker
// protocol is inlined rather than routed through do() so the per-query
// path stays closure-free (and so allocation-free on local peers).
func (r *Router) queryPeer(st *ringState, id string, key uint64) (uint64, bool, error) {
	p := st.peers[id]
	if p == nil {
		return 0, false, fmt.Errorf("cluster: no peer handle for %q", id)
	}
	b := r.gate.Peer(id)
	if b.Live() {
		v, ok, err := p.Query(key)
		if err != nil {
			b.Record(false)
		} else if r.okSample.Add(1)&15 == 0 {
			b.Record(true)
		}
		return v, ok, err
	}
	if !b.Allow() {
		return 0, false, fmt.Errorf("cluster: peer %s: %w", id, resilience.ErrOpen)
	}
	v, ok, err := p.Query(key)
	b.Record(err == nil)
	return v, ok, err
}

// queryIdx is queryPeer addressed by Members() index — the owner fast path.
// It touches only the member-aligned arrays built at swap time, so a hit
// costs one atomic state load, one breaker liveness load and the peer call
// (direct, not interface-dispatched, for in-process peers). Success
// recording is sampled on key bits rather than a shared counter: across a
// key population it still averages 1-in-16, without an atomic RMW
// contended by every query. The tripped-breaker branch lives in
// queryIdxSlow to keep this body within the inliner's budget.
func (r *Router) queryIdx(st *ringState, i int, key uint64) (uint64, bool, error) {
	b := st.brkArr[i]
	if !b.Live() {
		return r.queryIdxSlow(st, i, key)
	}
	if e := st.engArr[i]; e != nil && !st.deadArr[i].Load() {
		v, _, ok := e.Query(key)
		if key&15 == 0 {
			b.Record(true)
		}
		return v, ok, nil
	}
	v, ok, err := st.peerArr[i].Query(key)
	if err != nil {
		b.Record(false)
	} else if key&15 == 0 {
		b.Record(true)
	}
	return v, ok, err
}

// queryIdxSlow is queryIdx's tripped-breaker path: the full Allow/Record
// protocol that owns the half-open probe bookkeeping.
func (r *Router) queryIdxSlow(st *ringState, i int, key uint64) (uint64, bool, error) {
	b := st.brkArr[i]
	if !b.Allow() {
		return 0, false, fmt.Errorf("cluster: peer %s: %w", st.ring.Members()[i], resilience.ErrOpen)
	}
	v, ok, err := st.peerArr[i].Query(key)
	b.Record(err == nil)
	return v, ok, err
}

// updatePeer installs key → val at one member through its breaker.
func (r *Router) updatePeer(st *ringState, id string, key, val uint64) error {
	p := st.peers[id]
	if p == nil {
		return fmt.Errorf("cluster: no peer handle for %q", id)
	}
	return r.do(id, func() error { return p.Update(key, val) })
}

// Query reads key from its ring owner; hot keys rotate across the replica
// set instead, so elephant flows spread over R nodes and survive any
// single replica's death. A miss inside an active dual-read window retries
// the arc's previous holder and re-installs hits at the new owner.
//
// The error is non-nil only when no replica could answer at all — a miss
// from a live owner is (0, false, nil), exactly like engine.Query plus ok.
func (r *Router) Query(key uint64) (uint64, bool, error) {
	st := r.state.Load()
	if st.ring.Size() == 0 {
		return 0, false, ErrNoNodes
	}
	r.queries.Inc()
	if r.hot != nil {
		r.hot.Touch(key)
	}

	if st.ring.Size() == 1 && len(st.windows) == 0 {
		// Solo fast path: one member owns the whole circle, so skip the
		// position hash and ring walk entirely. The in-process happy path is
		// additionally hand-inlined — this is the benchmarked overhead of
		// fronting a single engine with the router.
		if b := st.brkArr[0]; b.Live() {
			if e := st.engArr[0]; e != nil && !st.deadArr[0].Load() {
				v, _, ok := e.Query(key)
				if key&15 == 0 {
					b.Record(true)
				}
				if ok {
					r.hits.Inc()
				}
				return v, ok, nil
			}
		}
		v, ok, err := r.queryIdx(st, 0, key)
		if ok {
			r.hits.Inc()
		}
		return v, ok, err
	}

	pos := st.ring.Pos(key)
	if r.hot == nil || !r.hot.Hot(key) {
		idx := st.ring.OwnerIdxAt(pos)
		v, ok, err := r.queryIdx(st, idx, key)
		if ok {
			r.hits.Inc()
			return v, true, nil
		}
		if v, ok = r.dualRead(st, pos, key, st.ring.Members()[idx]); ok {
			return v, true, nil
		}
		return 0, false, err
	}

	r.fanReads.Inc()
	ids := st.ring.ReplicasAt(pos, r.replicas())
	start := int(r.rr.Add(1)) % len(ids)
	var lastErr error
	answered := false
	// Replicas that answered a miss before another replica hit have observably
	// diverged from the hot set — free read-repair triggers. The fixed array
	// keeps the fan path allocation-free.
	var missed [8]string
	nm := 0
	for i := 0; i < len(ids); i++ {
		id := ids[(start+i)%len(ids)]
		v, ok, err := r.queryPeer(st, id, key)
		if err != nil {
			lastErr = err
			continue
		}
		answered = true
		if ok {
			r.hits.Inc()
			for j := 0; j < nm; j++ {
				r.enqueueRepair(key, missed[j])
			}
			return v, true, nil
		}
		if nm < len(missed) {
			missed[nm] = id
			nm++
		}
	}
	if v, ok := r.dualRead(st, pos, key, ""); ok {
		return v, true, nil
	}
	if answered {
		return 0, false, nil
	}
	return 0, false, lastErr
}

// dualRead retries a miss at the previous holder of pos's arc when a
// migration window is still open, re-installing hits at the current owner.
// queried is a member already asked this query (skipped as source).
func (r *Router) dualRead(st *ringState, pos, key uint64, queried string) (uint64, bool) {
	if len(st.windows) == 0 {
		return 0, false
	}
	now := time.Now()
	for i := range st.windows {
		w := &st.windows[i]
		if w.source == queried || now.After(w.until) || !arcsContain(w.arcs, pos) {
			continue
		}
		p := st.peers[w.source]
		if p == nil {
			continue
		}
		r.dualReads.Inc()
		var v uint64
		var ok bool
		err := r.do(w.source, func() error {
			var qerr error
			v, ok, qerr = p.Query(key)
			return qerr
		})
		if err != nil || !ok {
			continue
		}
		r.dualHits.Inc()
		r.hits.Inc()
		owner := st.ring.OwnerAt(pos)
		if owner != w.source {
			_ = r.updatePeer(st, owner, key, v) // warm the new owner; best-effort
		}
		return v, true
	}
	return 0, false
}

// Update installs key → val at its ring owner synchronously — a nil return
// means the owner applied and acked it. Hot keys additionally fan to the
// replica successors, best-effort: a replica that misses an update serves a
// stale read only until the next fan reaches it, and the owner remains the
// authority.
//
// When the owner is unreachable (breaker open, node mute) and hinted
// handoff is enabled, the write is parked in the owner's hint log and
// ErrHinted returned: accepted at reduced durability, replayed when the
// owner recovers or rerouted if it is confirmed dead. Callers that need the
// hard ack treat ErrHinted as a failure; callers that want availability
// treat it as success.
func (r *Router) Update(key, val uint64) error {
	st := r.state.Load()
	if st.ring.Size() == 0 {
		return ErrNoNodes
	}
	r.updates.Inc()
	pos := st.ring.Pos(key)
	if r.replicas() == 1 || !r.hot.Hot(key) {
		owner := st.ring.OwnerAt(pos)
		err := r.updatePeer(st, owner, key, val)
		if err != nil && r.parkHint(owner, key, val, err) {
			return ErrHinted
		}
		return err
	}
	ids := st.ring.ReplicasAt(pos, r.replicas())
	err := r.updatePeer(st, ids[0], key, val)
	if err != nil && r.parkHint(ids[0], key, val, err) {
		err = ErrHinted
	}
	for _, id := range ids[1:] {
		if ferr := r.updatePeer(st, id, key, val); ferr != nil {
			r.replicaFanFails.Inc()
			r.parkHint(id, key, val, ferr)
		}
	}
	return err
}

// parkHint parks key → val for an unreachable peer, reporting whether it
// did. Only down-class failures (unreachable, timed out, breaker open) are
// hintable — an error from a node that answered means the write was seen
// and refused, and replaying it later would be wrong.
func (r *Router) parkHint(id string, key, val uint64, err error) bool {
	if r.hints == nil || !isDownClass(err) {
		return false
	}
	if r.hints.park(id, key, val) {
		r.hintsDropped.Inc()
	}
	r.hintsParked.Inc()
	return true
}

// isDownClass reports whether err says the peer could not be reached at
// all, as opposed to reached-and-refused.
func isDownClass(err error) bool {
	return errors.Is(err, netproto.ErrUnreachable) ||
		errors.Is(err, netproto.ErrTimeout) ||
		errors.Is(err, resilience.ErrOpen)
}

// GetOrLoad reads key, falling back to load on a miss and installing the
// loaded value — the cluster-wide analogue of tiered GetOrLoad. A failed
// install is not an error (it costs a future miss, not correctness).
//
// While the router is degraded (minority partition), misses caused by an
// unreachable owner are shed instead of loaded: local arcs keep serving at
// full fidelity, but the partitioned arcs' working set is not re-fetched
// from the backing store wholesale. With a Shedder configured the shed is
// arbitrated at PriLow (light pressure lets loads through); without one
// every such miss is shed.
func (r *Router) GetOrLoad(key uint64, load func(key uint64) (uint64, error)) (uint64, error) {
	v, ok, err := r.Query(key)
	if ok {
		return v, nil
	}
	if errors.Is(err, ErrNoNodes) {
		return 0, err
	}
	if err != nil && r.degraded.Load() {
		// The miss is unreachability, not absence — the owner may well hold
		// the key on the other side of the partition.
		if sh := r.cfg.Shedder; sh == nil || !sh.Admit(resilience.PriLow, 0) {
			r.degradedSheds.Inc()
			return 0, ErrDegraded
		}
	}
	v, err = load(key)
	if err != nil {
		return 0, err
	}
	_ = r.Update(key, v)
	return v, nil
}

// Join adds node id (reached through peer) to the ring. Ownership of the
// affected arcs is migrated to the new node *before* the ring swap — the
// node serves its first query already warm — and a dual-read window covers
// writes that raced the stream. The router does not take ownership of the
// peer handle. With gossip enabled the join also asserts the member alive
// in the membership table (refuting any standing accusation), so a
// re-joined node spreads to other routers.
func (r *Router) Join(id string, peer Peer) error {
	return r.join(id, peer, false)
}

func (r *Router) join(id string, peer Peer, owned bool) error {
	if id == "" || peer == nil {
		return fmt.Errorf("cluster: Join needs a node id and a peer")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Load() {
		return fmt.Errorf("cluster: router closed")
	}
	st := r.state.Load()
	if containsStr(st.ring.Members(), id) {
		return fmt.Errorf("cluster: %q is already a member", id)
	}
	next := NewRing(r.cfg.Seed, r.cfg.VNodes, append(append([]string{}, st.ring.Members()...), id))
	peers := clonePeers(st.peers)
	peers[id] = peer
	if owned {
		r.owned[id] = peer
	}
	if r.member != nil {
		udp, tcp := peer.Addrs()
		r.member.Alive(id, udp, tcp)
	}

	// Migrate-then-swap: the stream runs while old owners still serve the
	// arcs, so nothing is overwritten and the new node starts warm.
	transfers := Plan(st.ring, next, r.replicas())
	windows := r.execute(peers, transfers, "", false)
	r.swap(st, next, peers, windows)
	// A member that died holding hints and came back under the same id gets
	// them replayed now rather than waiting for a breaker edge.
	r.replayHintsFor(id)
	return nil
}

// Leave removes node id gracefully: the ring is swapped first (writes stop
// arriving), then the departing node streams the moved arcs to their new
// holders, with a dual-read window covering reads in between. The peer
// handle stays reachable as a tombstone until its windows expire — close it
// after ~DualReadFor, not immediately.
func (r *Router) Leave(id string) error {
	return r.remove(id, false)
}

// Fail removes node id as dead: the ring is swapped immediately and the
// moved arcs are re-streamed from surviving replicas (there are none to
// recover from unless Replicas > 1 — un-replicated keys on a dead node are
// a cache miss, not data loss). The heartbeat failure detector calls this
// automatically when a peer's breaker opens.
func (r *Router) Fail(id string) error {
	return r.remove(id, true)
}

func (r *Router) remove(id string, dead bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.state.Load()
	if !containsStr(st.ring.Members(), id) {
		return fmt.Errorf("cluster: %q is not a member", id)
	}
	if r.member != nil {
		if dead {
			if r.member.Confirm(id) {
				r.confirms.Inc()
			}
		} else {
			r.member.Left(id)
		}
	}
	members := make([]string, 0, st.ring.Size()-1)
	for _, m := range st.ring.Members() {
		if m != id {
			members = append(members, m)
		}
	}
	next := NewRing(r.cfg.Seed, r.cfg.VNodes, members)
	peers := clonePeers(st.peers)
	if dead {
		delete(peers, id) // no dual reads at a corpse
		r.gate.Drop(id)
	}

	// Swap-then-migrate: traffic leaves the node at the swap; the streams
	// that follow restore keep-existing, so writes landing at the new
	// owners meanwhile are never rolled back, and dual-read windows mask
	// the gap until each arc's stream completes.
	transfers := Plan(st.ring, next, r.replicas())
	skip := ""
	if dead {
		skip = id
	}
	r.swap(st, next, peers, r.windowsFor(transfers, skip, next))
	r.executeAfterSwap(transfers, skip)
	if dead {
		r.rerouteHints(id)
	}
	return nil
}

// rerouteHints re-addresses a confirmed-dead member's parked hints through
// the normal update path: the ring has already swapped, so each write lands
// at (or parks for) the key's new owner. Background — replay competes with
// live traffic, never blocks the membership change.
func (r *Router) rerouteHints(id string) {
	if r.hints == nil {
		return
	}
	pairs := r.hints.take(id)
	if len(pairs) == 0 {
		return
	}
	r.goBG(func() {
		n := 0
		for k, v := range pairs {
			if err := r.Update(k, v); err == nil || errors.Is(err, ErrHinted) {
				n++
			}
		}
		r.hintsReplayed.Add(uint64(n))
	})
}

// replayHintsFor streams a recovered member's parked hints back to it as a
// keep-existing snapshot (writes accepted since recovery win). A failed
// replay re-parks the batch — the breaker that just closed can trip again
// mid-stream. Background, via goBG. Safe to call with r.mu held.
func (r *Router) replayHintsFor(id string) {
	if r.hints == nil || r.hints.pendingFor(id) == 0 {
		return
	}
	r.goBG(func() {
		pairs := r.hints.take(id)
		if len(pairs) == 0 {
			return
		}
		st := r.state.Load()
		p := st.peers[id]
		if p == nil || !containsStr(st.ring.Members(), id) {
			// The member moved on while the replay was queued; reroute.
			n := 0
			for k, v := range pairs {
				if err := r.Update(k, v); err == nil || errors.Is(err, ErrHinted) {
					n++
				}
			}
			r.hintsReplayed.Add(uint64(n))
			return
		}
		n, err := pushPairs(p, pairs)
		if err != nil {
			for k, v := range pairs {
				r.hints.park(id, k, v)
			}
			return
		}
		r.hintsReplayed.Add(uint64(n))
	})
}

// windowsFor opens one dual-read window per transfer before the streams
// run, pointing at the first usable source.
func (r *Router) windowsFor(transfers []Transfer, skip string, next *Ring) []dualWindow {
	st := r.state.Load()
	until := time.Now().Add(r.cfg.DualReadFor)
	var out []dualWindow
	for _, t := range transfers {
		for _, s := range t.Sources {
			if s == skip || st.peers[s] == nil {
				continue
			}
			out = append(out, dualWindow{arcs: t.Arcs, source: s, until: until})
			break
		}
	}
	return out
}

// executeAfterSwap runs the post-swap migration streams (keep-existing
// restores). Caller holds r.mu; the swapped state is already live.
func (r *Router) executeAfterSwap(transfers []Transfer, skip string) {
	st := r.state.Load()
	r.execute(st.peers, transfers, skip, true)
}

// execute streams every transfer from its first healthy source into its
// destination. keepExisting selects the restore mode (true after a swap).
// Returns dual-read windows for the arcs that moved, pointing at the
// source that served each stream.
func (r *Router) execute(peers map[string]Peer, transfers []Transfer, skip string, keepExisting bool) []dualWindow {
	var windows []dualWindow
	until := time.Now().Add(r.cfg.DualReadFor)
	for _, t := range transfers {
		dst := peers[t.Dest]
		if dst == nil {
			continue
		}
		for _, s := range t.Sources {
			if s == skip || peers[s] == nil {
				continue
			}
			sp := r.cfg.Span.Start(0, 0)
			rc, err := peers[s].OpenPull(t.Arcs)
			if err != nil {
				sp.Finish(span.KindMigrate)
				continue
			}
			sp.Mark(span.StageFetch)
			n, err := dst.Push(rc, keepExisting)
			rc.Close()
			sp.Mark(span.StageApply)
			sp.SetBatch(n)
			sp.Finish(span.KindMigrate)
			if err != nil {
				continue
			}
			r.migrations.Inc()
			r.migratedPairs.Add(uint64(n))
			windows = append(windows, dualWindow{arcs: t.Arcs, source: s, until: until})
			break
		}
	}
	return windows
}

// swap publishes the new membership, carrying over unexpired windows and
// pruning tombstone peers no window references anymore. Caller holds r.mu.
func (r *Router) swap(st *ringState, next *Ring, peers map[string]Peer, windows []dualWindow) {
	now := time.Now()
	for _, w := range st.windows {
		if now.Before(w.until) {
			windows = append(windows, w)
		}
	}
	// Tombstones: peers out of the ring stay only while a window needs them.
	for id := range peers {
		if containsStr(next.Members(), id) {
			continue
		}
		needed := false
		for _, w := range windows {
			if w.source == id {
				needed = true
				break
			}
		}
		if !needed {
			delete(peers, id)
		}
	}
	ns := &ringState{ring: next, peers: peers, windows: windows}
	ns.index(r.gate)
	r.state.Store(ns)
	r.nodesGauge.Set(float64(next.Size()))
	// Handles the router dialed itself die with their membership: once a
	// resolved peer is out of the ring and past its windows, close it.
	for id, p := range r.owned {
		if peers[id] == nil {
			_ = p.Close()
			delete(r.owned, id)
		}
	}
}

// pruneWindows drops expired windows (and with them, stale tombstones).
func (r *Router) pruneWindows() {
	st := r.state.Load()
	now := time.Now()
	expired := false
	for _, w := range st.windows {
		if now.After(w.until) {
			expired = true
			break
		}
	}
	if !expired {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st = r.state.Load()
	r.swap(st, st.ring, clonePeers(st.peers), nil)
}

// heartbeatLoop is the failure detector: each tick pings every peer
// through its breaker, runs one gossip exchange (when enabled), and either
// escalates open breakers through the suspect → dead pipeline (gossip) or
// auto-fails them directly (legacy). The cadence carries seeded ±10%
// jitter: a fleet of routers stamped from one config must not probe every
// node in lockstep, or each heartbeat interval lands the whole fleet's ping
// fan on the same instant.
func (r *Router) heartbeatLoop() {
	defer close(r.hbDone)
	rng := rand.New(rand.NewSource(int64(r.cfg.Seed)*0x9e3779b9 + 0x5bd1e995))
	next := func() time.Duration {
		j := r.cfg.HeartbeatEvery / 10
		if j <= 0 {
			return r.cfg.HeartbeatEvery
		}
		return r.cfg.HeartbeatEvery - j + time.Duration(rng.Int63n(int64(2*j)))
	}
	t := time.NewTimer(next())
	defer t.Stop()
	for {
		select {
		case <-r.hbStop:
			return
		case <-t.C:
		}
		r.heartbeatTick()
		t.Reset(next())
	}
}

// heartbeatTick is one failure-detector round.
func (r *Router) heartbeatTick() {
	st := r.state.Load()
	for id, p := range st.peers {
		p := p
		_ = r.do(id, func() error { return p.Ping() })
	}
	if r.member != nil {
		r.gossipTick(st)
	} else {
		for _, id := range r.gate.Open() {
			if containsStr(r.state.Load().ring.Members(), id) {
				r.autoFails.Inc()
				_ = r.Fail(id)
			}
		}
	}
	r.refreshDegraded()
	r.pruneWindows()
}

// gossipTick runs the membership side of one heartbeat round: exchange
// digests with one rotating partner, convert local breaker evidence into
// verdicts (open → suspect, re-closed → alive, suspect past the window →
// dead), then reconcile the ring against the converged table.
func (r *Router) gossipTick(st *ringState) {
	members := st.ring.Members()
	if len(members) > 0 {
		id := members[int(r.gossipRR.Add(1))%len(members)]
		if p := st.peers[id]; p != nil {
			var reply []netproto.MemberDigest
			err := r.do(id, func() error {
				var gerr error
				reply, gerr = p.Gossip(r.member.Digest())
				return gerr
			})
			r.gossipRounds.Inc()
			if err == nil && r.member.Merge(reply) {
				r.gossipMerges.Inc()
			}
		}
	}
	for _, id := range r.gate.Open() {
		if containsStr(members, id) && r.member.Suspect(id) {
			r.suspects.Inc()
		}
	}
	for _, d := range r.member.Entries() {
		if d.Status != netproto.MemberSuspect {
			continue
		}
		if containsStr(members, d.ID) && r.gate.Peer(d.ID).State() == resilience.Closed {
			// The breaker recovered inside the suspicion window: direct
			// evidence the accusation was wrong — refute it.
			r.member.Alive(d.ID, "", "")
			continue
		}
		if r.member.SuspectedFor(d.ID) > r.cfg.SuspectAfter {
			if r.member.Confirm(d.ID) {
				r.confirms.Inc()
			}
		}
	}
	r.reconcile()
}

// reconcile drives the ring toward the membership table's verdicts: alive
// members not yet in the ring are resolved and joined (warm, via the
// migrate-then-swap path), dead and departed members are removed (replica
// re-streaming, hint rerouting). Suspects stay in the ring — their breakers
// shield the query path while the accusation either hardens or is refuted.
func (r *Router) reconcile() {
	if r.member == nil {
		return
	}
	for _, d := range r.member.Entries() {
		inRing := containsStr(r.state.Load().ring.Members(), d.ID)
		switch d.Status {
		case netproto.MemberAlive:
			if inRing {
				continue
			}
			p, owned, err := r.resolve(d)
			if err != nil || p == nil {
				continue
			}
			if err := r.join(d.ID, p, owned); err != nil && owned {
				_ = p.Close()
			}
		case netproto.MemberDead:
			if inRing {
				r.autoFails.Inc()
				_ = r.remove(d.ID, true)
			}
		case netproto.MemberLeft:
			if inRing {
				_ = r.remove(d.ID, false)
			}
		}
	}
}

// resolve dials a peer handle for a gossip-learned member. The returned
// owned flag marks handles the router must close when the member is pruned.
func (r *Router) resolve(d netproto.MemberDigest) (Peer, bool, error) {
	if r.cfg.Resolver != nil {
		p, err := r.cfg.Resolver(d)
		return p, true, err
	}
	if d.UDPAddr == "" || d.TCPAddr == "" {
		return nil, false, nil // nothing to dial; wait for addresses to gossip in
	}
	ua, err := net.ResolveUDPAddr("udp", d.UDPAddr)
	if err != nil {
		return nil, false, err
	}
	p, err := netproto.DialNode(ua, d.TCPAddr, 0, 0)
	if err != nil {
		return nil, false, err
	}
	return p, true, nil
}

// onBreakerChange is the router's own breaker observer (chained in front of
// any caller-provided one): the recovery edge triggers hint replay and
// suspect refutation, the trip edge files the gossip accusation without
// waiting for the next heartbeat tick.
func (r *Router) onBreakerChange(id string, from, to resilience.State) {
	switch {
	case to == resilience.Closed && from != resilience.Closed:
		if r.member != nil {
			if s, known := r.member.Status(id); known && s == netproto.MemberSuspect {
				r.member.Alive(id, "", "")
			}
		}
		r.replayHintsFor(id)
	case to == resilience.Open && r.member != nil:
		if containsStr(r.state.Load().ring.Members(), id) && r.member.Suspect(id) {
			r.suspects.Inc()
		}
	}
}

// refreshDegraded recomputes minority-partition mode: degraded when more
// than half the ring's members sit behind open breakers — this router, not
// the cluster, is probably the one cut off.
func (r *Router) refreshDegraded() {
	st := r.state.Load()
	open := 0
	for _, id := range r.gate.Open() {
		if containsStr(st.ring.Members(), id) {
			open++
		}
	}
	deg := st.ring.Size() > 1 && open*2 > st.ring.Size()
	if r.degraded.Swap(deg) != deg {
		v := 0.0
		if deg {
			v = 1
		}
		r.degradedGauge.Set(v)
	}
}

func clonePeers(in map[string]Peer) map[string]Peer {
	out := make(map[string]Peer, len(in)+1)
	for k, v := range in {
		out[k] = v
	}
	return out
}
