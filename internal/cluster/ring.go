// Package cluster scales the single-node engine out to a set of peer nodes
// behind one Engine-shaped front: a consistent-hash ring with virtual nodes
// places every flow key on an owner, a Router fans queries and updates to
// the right peers over netproto, hot keys (tracked with a CU sketch) are
// replicated to successor nodes, and membership changes move only the
// affected hash ranges between nodes as range-filtered snapshot streams
// with a dual-read window masking the handoff.
package cluster

import (
	"fmt"
	"sort"
	"strconv"

	"github.com/p4lru/p4lru/internal/hashing"
)

// Ring is an immutable consistent-hash ring: each member contributes
// VNodes points on the 64-bit hash circle, and a key at position h belongs
// to the member owning the first point clockwise from h (wrapping). Rings
// are rebuilt wholesale on membership change and swapped atomically, so
// every method is safe for concurrent use and allocation behavior is
// documented per method.
type Ring struct {
	hash    hashing.Hash
	vnodes  int
	members []string // sorted
	points  []point  // sorted by pos
}

// point is one virtual node: a position on the circle and the index of the
// member that owns it.
type point struct {
	pos   uint64
	owner int32
}

// NewRing builds a ring of members (order-insensitive, deduplicated) with
// vnodes virtual nodes each. The seed must match across every router and
// node server in one cluster — it derives both the key-position hash and
// the vnode positions, and a mismatch would make peers disagree about which
// keys a hash arc covers.
func NewRing(seed uint64, vnodes int, members []string) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]struct{}, len(members))
	for _, m := range members {
		if _, dup := seen[m]; !dup {
			seen[m] = struct{}{}
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		hash:    hashing.New(seed),
		vnodes:  vnodes,
		members: uniq,
		points:  make([]point, 0, len(uniq)*vnodes),
	}
	buf := make([]byte, 0, 64)
	for mi, m := range uniq {
		for v := 0; v < vnodes; v++ {
			buf = append(buf[:0], m...)
			buf = append(buf, '#')
			buf = strconv.AppendInt(buf, int64(v), 10)
			r.points = append(r.points, point{pos: r.hash.Bytes(buf), owner: int32(mi)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		// A position collision between two members' vnodes is ~impossible
		// at 64 bits, but resolve it deterministically by member order so
		// every ring built from the same inputs agrees.
		return r.points[i].owner < r.points[j].owner
	})
	return r
}

// Members returns the sorted member list (shared slice — do not mutate).
func (r *Ring) Members() []string { return r.members }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// Pos maps a key to its ring position.
func (r *Ring) Pos(key uint64) uint64 { return r.hash.Uint64(key) }

// ceil returns the index of the first point with pos ≥ h, wrapping to 0.
func (r *Ring) ceil(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// OwnerAt returns the member owning ring position h. Allocation-free —
// this is the router's per-query path.
func (r *Ring) OwnerAt(h uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.members[r.points[r.ceil(h)].owner]
}

// OwnerIdxAt returns the Members() index of the member owning ring
// position h (-1 on an empty ring) — the allocation-free handle the
// router's fast path uses to index its member-aligned peer arrays.
func (r *Ring) OwnerIdxAt(h uint64) int {
	if len(r.points) == 0 {
		return -1
	}
	return int(r.points[r.ceil(h)].owner)
}

// Owner returns the member owning key.
func (r *Ring) Owner(key uint64) string { return r.OwnerAt(r.Pos(key)) }

// ReplicasAt returns up to n distinct members for ring position h: the
// owner first, then successors walking clockwise. Allocates the result.
func (r *Ring) ReplicasAt(h uint64, n int) []string {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := int64(0) // member-index bitmap; member counts stay well under 64 in practice
	var seenMap map[int32]struct{}
	if len(r.members) > 64 {
		seenMap = make(map[int32]struct{}, n)
	}
	for i, steps := r.ceil(h), 0; steps < len(r.points) && len(out) < n; steps++ {
		o := r.points[i].owner
		taken := false
		if seenMap != nil {
			_, taken = seenMap[o]
		} else {
			taken = seen&(1<<uint(o)) != 0
		}
		if !taken {
			if seenMap != nil {
				seenMap[o] = struct{}{}
			} else {
				seen |= 1 << uint(o)
			}
			out = append(out, r.members[o])
		}
		i++
		if i == len(r.points) {
			i = 0
		}
	}
	return out
}

// Replicas returns up to n distinct members for key, owner first.
func (r *Ring) Replicas(key uint64, n int) []string { return r.ReplicasAt(r.Pos(key), n) }

// arcContains reports whether ring position h falls in the half-open arc
// (from, to], wrapping through zero when from ≥ to; a degenerate arc with
// from == to covers the whole circle.
func arcContains(a [2]uint64, h uint64) bool {
	from, to := a[0], a[1]
	if from < to {
		return from < h && h <= to
	}
	return h > from || h <= to
}

// arcsContain reports whether any arc covers h.
func arcsContain(arcs [][2]uint64, h uint64) bool {
	for _, a := range arcs {
		if arcContains(a, h) {
			return true
		}
	}
	return false
}

// Transfer is one migration assignment from a membership change: Dest must
// receive the keys whose positions fall in Arcs, and any member of Sources
// (old replica holders, old owner first) can stream them.
type Transfer struct {
	Dest    string
	Sources []string
	Arcs    [][2]uint64
}

// Plan computes the migrations a membership change requires: for every
// elementary arc of the circle (delimited by the union of both rings'
// points), any member that is in the new ring's replica set but not the
// old one must fetch that arc from the old holders. Only affected arcs
// appear — the consistent-hash guarantee that a join or leave moves
// ~1/N of the circle shows up here as a short transfer list.
//
// replicas is the total copy count (owner included, min 1). Old holders
// that are known dead are the caller's problem: filter Transfer.Sources
// before executing.
func Plan(old, next *Ring, replicas int) []Transfer {
	if next == nil || len(next.points) == 0 || old == nil || len(old.points) == 0 {
		return nil // bootstrap or shutdown: nothing to copy from / to
	}
	if replicas < 1 {
		replicas = 1
	}

	// The union of both rings' point positions partitions the circle into
	// arcs on which both replica sets are constant.
	cuts := make([]uint64, 0, len(old.points)+len(next.points))
	for _, p := range old.points {
		cuts = append(cuts, p.pos)
	}
	for _, p := range next.points {
		cuts = append(cuts, p.pos)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	cuts = dedupeU64(cuts)

	type destKey struct {
		dest    string
		sources string // "\x00"-joined, preserves preference order
	}
	grouped := make(map[destKey]*Transfer)
	var order []destKey

	for i := range cuts {
		to := cuts[i]
		from := cuts[(i+len(cuts)-1)%len(cuts)] // predecessor, wrapping
		// Probe at the arc's inclusive right endpoint: every position in
		// (from, to] resolves to the same replica sets.
		oldSet := old.ReplicasAt(to, replicas)
		newSet := next.ReplicasAt(to, replicas)
		for _, dest := range newSet {
			if containsStr(oldSet, dest) {
				continue
			}
			k := destKey{dest: dest, sources: joinKey(oldSet)}
			t := grouped[k]
			if t == nil {
				t = &Transfer{Dest: dest, Sources: oldSet}
				grouped[k] = t
				order = append(order, k)
			}
			// Coalesce with the previous arc when contiguous.
			if n := len(t.Arcs); n > 0 && t.Arcs[n-1][1] == from {
				t.Arcs[n-1][1] = to
			} else {
				t.Arcs = append(t.Arcs, [2]uint64{from, to})
			}
		}
	}

	out := make([]Transfer, 0, len(order))
	for _, k := range order {
		out = append(out, *grouped[k])
	}
	return out
}

// dedupeU64 removes adjacent duplicates from a sorted slice, in place.
func dedupeU64(s []uint64) []uint64 {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func containsStr(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func joinKey(s []string) string {
	n := 0
	for _, x := range s {
		n += len(x) + 1
	}
	b := make([]byte, 0, n)
	for _, x := range s {
		b = append(b, x...)
		b = append(b, 0)
	}
	return string(b)
}

// String describes the ring for logs.
func (r *Ring) String() string {
	return fmt.Sprintf("ring{%d members, %d vnodes}", len(r.members), r.vnodes)
}
