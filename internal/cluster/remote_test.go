package cluster

import (
	"fmt"
	"testing"
	"time"

	"github.com/p4lru/p4lru/internal/netproto"
)

// TestRouterOverRemotePeers runs the router against real NodeServers on
// loopback — *netproto.NodeClient as the Peer implementation — covering
// query, synchronous update acks, join-time migration and graceful leave
// over the actual wire.
func TestRouterOverRemotePeers(t *testing.T) {
	const seed = testSeed
	r := New(Config{Seed: seed, HeartbeatEvery: -1})
	defer r.Close()

	newNode := func(i int) (string, *netproto.NodeClient) {
		t.Helper()
		srv, err := netproto.NewNodeServer("127.0.0.1:0", netproto.NodeConfig{
			Engine:   newTestEngine(t),
			RingSeed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		cl, err := netproto.DialNode(srv.UDPAddr(), srv.TCPAddr(), 200*time.Millisecond, 2)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return fmt.Sprintf("node-%d", i), cl
	}

	for i := 0; i < 2; i++ {
		id, cl := newNode(i)
		if err := r.Join(id, cl); err != nil {
			t.Fatalf("Join(%s): %v", id, err)
		}
	}

	const keys = 800
	for k := uint64(1); k <= keys; k++ {
		if err := r.Update(k, k+1); err != nil {
			t.Fatalf("Update(%d): %v", k, err)
		}
	}
	for k := uint64(1); k <= keys; k++ {
		if v, ok, err := r.Query(k); !ok || v != k+1 || err != nil {
			t.Fatalf("Query(%d) = (%d, %v, %v)", k, v, ok, err)
		}
	}

	// A third node joins over the wire and is warmed by TCP migration.
	id, cl := newNode(2)
	if err := r.Join(id, cl); err != nil {
		t.Fatalf("Join(%s): %v", id, err)
	}
	for k := uint64(1); k <= keys; k++ {
		if v, ok, err := r.Query(k); !ok || v != k+1 || err != nil {
			t.Fatalf("Query(%d) after remote join = (%d, %v, %v)", k, v, ok, err)
		}
	}

	// Graceful leave streams the departing node's ranges back out.
	if err := r.Leave("node-0"); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	for k := uint64(1); k <= keys; k++ {
		if v, ok, err := r.Query(k); !ok || v != k+1 || err != nil {
			t.Fatalf("Query(%d) after remote leave = (%d, %v, %v)", k, v, ok, err)
		}
	}
}
