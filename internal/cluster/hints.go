package cluster

import (
	"io"
	"sync"

	"github.com/p4lru/p4lru/internal/engine"
)

// hintLog parks updates addressed to unreachable peers — hinted handoff.
// One entry per (peer, key) holding the latest value: hints are idempotent
// installs, so a key rewritten while its owner is down costs one slot, not
// one per write. Each peer's log is bounded; at capacity the oldest distinct
// key is evicted (the newest write is the one worth keeping), and the caller
// counts the drop.
//
// Replay drains a peer's log in one take and streams it as a synthesized
// snapshot restored keep-existing: writes the recovered node accepted after
// it came back are fresher than any parked hint and are never rolled back.
// The inverse staleness — a partitioned (not dead) node whose old residents
// beat the hints — is reconciled by the anti-entropy sweep, not the replay.
type hintLog struct {
	mu     sync.Mutex
	capPer int
	byPeer map[string]*peerHints
}

// peerHints is one peer's parked updates: latest value per key, plus the
// distinct-key insertion order the capacity eviction walks.
type peerHints struct {
	vals  map[uint64]uint64
	order []uint64
}

func newHintLog(capPer int) *hintLog {
	return &hintLog{capPer: capPer, byPeer: make(map[string]*peerHints)}
}

// park records key → val for peer id, reporting whether an older hint was
// evicted to make room.
func (h *hintLog) park(id string, key, val uint64) (evicted bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	ph := h.byPeer[id]
	if ph == nil {
		ph = &peerHints{vals: make(map[uint64]uint64)}
		h.byPeer[id] = ph
	}
	if _, dup := ph.vals[key]; !dup {
		if len(ph.order) >= h.capPer {
			delete(ph.vals, ph.order[0])
			// Shift rather than re-slice: the backing array is at capacity
			// and stays bounded instead of crawling forward.
			copy(ph.order, ph.order[1:])
			ph.order = ph.order[:len(ph.order)-1]
			evicted = true
		}
		ph.order = append(ph.order, key)
	}
	ph.vals[key] = val
	return
}

// take removes and returns every hint parked for id (nil if none).
func (h *hintLog) take(id string) map[uint64]uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	ph := h.byPeer[id]
	if ph == nil {
		return nil
	}
	delete(h.byPeer, id)
	return ph.vals
}

// pendingFor reports how many hints are parked for id.
func (h *hintLog) pendingFor(id string) int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ph := h.byPeer[id]
	if ph == nil {
		return 0
	}
	return len(ph.vals)
}

// pending reports the total parked hints across all peers (the gauge).
func (h *hintLog) pending() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, ph := range h.byPeer {
		n += len(ph.vals)
	}
	return n
}

// pushPairs streams pairs into p as a synthesized snapshot image restored
// keep-existing — RestoreSnapshotIfAbsent semantics, the replay contract
// (see hintLog). Returns the installed pair count.
func pushPairs(p Peer, pairs map[uint64]uint64) (int, error) {
	pr, pw := io.Pipe()
	go func() {
		sw, err := engine.NewSnapshotWriter(pw)
		if err != nil {
			pw.CloseWithError(err)
			return
		}
		for k, v := range pairs {
			if err := sw.Add(k, v); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.CloseWithError(sw.Close())
	}()
	return p.Push(pr, true)
}
